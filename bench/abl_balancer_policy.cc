// Ablation B: load-metric policy for the balancer.
//
// Paper section 4.3/5.1: the prototype balances on "a weighted
// combination of node throughput and cache misses" and the authors note
// both that this is primitive and that perfectly balanced load is not
// necessarily ideal (section 5.3.2). This ablation sweeps the weighting
// (throughput-only, miss-only, the default mix, and balancing disabled)
// under the figure-5 workload shift.
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

int main(int argc, char** argv) {
  banner("Ablation B — balancer load-metric policy",
         "paper: sections 4.3, 5.1, 5.3.2");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  struct Policy {
    const char* name;
    double w_tp;
    double w_miss;
    bool enabled;
    MdsParams::BalancerMetric metric;
  };
  const Policy policies[] = {
      {"disabled", 0.0, 0.0, false, MdsParams::BalancerMetric::kWeightedLoad},
      {"throughput_only", 1.0, 0.0, true,
       MdsParams::BalancerMetric::kWeightedLoad},
      {"miss_only", 0.0, 3.0, true, MdsParams::BalancerMetric::kWeightedLoad},
      {"mixed_default", 1.0, 3.0, true,
       MdsParams::BalancerMetric::kWeightedLoad},
      {"utilization_vector", 0.0, 0.0, true,
       MdsParams::BalancerMetric::kUtilizationVector},
  };

  CsvWriter csv(csv_path("abl_balancer_policy"));
  csv.header({"policy", "avg_tput_after_shift", "min_tput_after_shift",
              "max_tput_after_shift", "migrations"});

  ConsoleTable table({"policy", "avg", "min", "max", "migr"});
  for (const Policy& p : policies) {
    SimConfig cfg = shift_config(StrategyKind::kDynamicSubtree);
    if (quick) {
      cfg.num_mds = 6;
      cfg.fs.num_users = 144;
      cfg.num_clients = 360;
      cfg.duration = 40 * kSecond;
      cfg.shifting.shift_at = 12 * kSecond;
    }
    cfg.mds.load_weight_throughput = p.w_tp;
    cfg.mds.load_weight_miss = p.w_miss;
    cfg.mds.balancer_metric = p.metric;
    if (!p.enabled) {
      // Effectively never trigger.
      cfg.mds.balance_trigger = 1e18;
    }
    ClusterSim cluster(cfg);
    cluster.run();
    Metrics& m = cluster.metrics();
    const SimTime t0 = cfg.shifting.shift_at + 5 * kSecond;
    const SimTime t1 = cfg.duration;
    std::uint64_t migrations = 0;
    for (int i = 0; i < cluster.num_mds(); ++i) {
      migrations += cluster.mds(i).stats().migrations_out;
    }
    const double avg =
        m.avg_throughput().mean_in(t0, t1, /*include_end=*/true);
    const double mn =
        m.min_throughput().mean_in(t0, t1, /*include_end=*/true);
    const double mx =
        m.max_throughput().mean_in(t0, t1, /*include_end=*/true);
    csv.field(p.name).field(avg).field(mn).field(mx).field(migrations);
    csv.end_row();
    table.add_row({p.name, fmt_double(avg, 0), fmt_double(mn, 0),
                   fmt_double(mx, 0), std::to_string(migrations)});
    std::cout << "  [" << p.name << "] avg " << fmt_double(avg, 0)
              << " ops/s after shift, " << migrations << " migrations\n";
  }
  table.print("Post-shift per-MDS throughput by balancer policy");
  std::cout << "\nExpected: any balancing beats none under the shift; the "
               "policies differ in how much spread (min..max) they leave — "
               "the paper's point that 'fair' is not automatically "
               "optimal.\nCSV: "
            << csv_path("abl_balancer_policy") << "\n";
  return 0;
}

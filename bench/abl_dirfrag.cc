// Ablation D: dynamic directory fragmentation under a checkpoint storm.
//
// Paper section 4.3: "if a single directory becomes extraordinarily large
// or busy ... an individual directory's contents can be hashed across the
// cluster." The scientific N-to-N burst (every client creates its own
// file in the same run directory) is exactly the motivating workload.
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

int main(int argc, char** argv) {
  banner("Ablation D — dynamic directory fragmentation",
         "paper: section 4.3 (hash/unhash of hot directories)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  CsvWriter csv(csv_path("abl_dirfrag"));
  csv.header({"dirfrag", "avg_mds_throughput_ops", "mean_latency_ms",
              "failures", "fragment_events", "merge_events"});

  ConsoleTable table({"dirfrag", "tput", "latency_ms", "frag/merge"});
  for (bool enabled : {false, true}) {
    SimConfig cfg;
    cfg.strategy = StrategyKind::kDynamicSubtree;
    cfg.num_mds = quick ? 4 : 8;
    cfg.num_clients = quick ? 200 : 600;
    cfg.fs.num_users = 16;
    cfg.fs.nodes_per_user = 100;
    cfg.fs.num_projects = 2;
    cfg.fs.project_runs = 2;
    cfg.fs.project_dir_files = 1500;
    cfg.workload = WorkloadKind::kScientific;
    cfg.scientific.compute_phase = 2 * kSecond;
    cfg.scientific.ops_per_burst = 30;
    cfg.scientific.n_to_1_fraction = 0.2;  // mostly create storms
    cfg.mds.dirfrag_enabled = enabled;
    cfg.mds.dirfrag_size_threshold = 2000;
    cfg.mds.dirfrag_temp_threshold = 400.0;
    cfg.duration = 20 * kSecond;
    cfg.warmup = 4 * kSecond;

    ClusterSim cluster(cfg);
    cluster.run();
    Metrics& m = cluster.metrics();
    const double tput = m.avg_mds_throughput(cluster.sim().now());
    const double lat = m.client_latency().mean() * 1e3;
    csv.field(std::int64_t{enabled ? 1 : 0})
        .field(tput)
        .field(lat)
        .field(m.total_failures())
        .field(cluster.dirfrag().fragment_events)
        .field(cluster.dirfrag().merge_events);
    csv.end_row();
    table.add_row({enabled ? "on" : "off", fmt_double(tput, 0),
                   fmt_double(lat, 1),
                   std::to_string(cluster.dirfrag().fragment_events) + "/" +
                       std::to_string(cluster.dirfrag().merge_events)});
    std::cout << "  [dirfrag " << (enabled ? "on" : "off") << "] "
              << fmt_double(tput, 0) << " ops/s/MDS, latency "
              << fmt_double(lat, 1) << " ms, frag events "
              << cluster.dirfrag().fragment_events << "\n";
  }
  table.print("Checkpoint storm with/without directory fragmentation");
  std::cout << "\nExpected: fragmentation spreads the create hot-spot "
               "across the cluster (higher throughput, lower latency) and "
               "merges the directory back after the storm.\nCSV: "
            << csv_path("abl_dirfrag") << "\n";
  return 0;
}

// Ablation F: GPFS-style distributed attribute updates under a shared-
// write storm (paper section 4.2).
//
// The scientific N-to-1 burst becomes a *write* storm: every client
// repeatedly bumps the size/mtime of the same shared file (parallel
// writers appending to a common output). Without distributed updates,
// every setattr funnels through — and is serialized (journaled) at — the
// file's authority. With them, replica holders absorb writes locally and
// ship batched deltas.
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

void run_mode(bool distributed, CsvWriter& csv, ConsoleTable& table,
              bool quick) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = quick ? 4 : 8;
  cfg.num_clients = quick ? 240 : 640;
  cfg.fs.num_users = 16;
  cfg.fs.nodes_per_user = 100;
  cfg.fs.num_projects = 1;
  cfg.fs.project_runs = 2;
  cfg.fs.project_dir_files = 200;
  cfg.workload = WorkloadKind::kScientific;
  cfg.scientific.compute_phase = kSecond;
  cfg.scientific.ops_per_burst = 40;
  cfg.scientific.n_to_1_fraction = 1.0;        // every burst shares a file
  cfg.scientific.n_to_1_write_fraction = 0.7;  // ... and mostly writes it
  cfg.mds.distributed_attr_updates = distributed;
  cfg.mds.replication_threshold = 200.0;  // the shared file replicates fast
  cfg.mds.popularity_half_life = kSecond;
  cfg.duration = 16 * kSecond;
  cfg.warmup = 3 * kSecond;

  ClusterSim cluster(cfg);
  cluster.run();
  Metrics& m = cluster.metrics();
  const double tput = m.avg_mds_throughput(cluster.sim().now());
  const Summary lat = m.client_latency();
  std::uint64_t local = 0, flushes = 0, callbacks = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    local += cluster.mds(i).stats().attr_local_updates;
    flushes += cluster.mds(i).stats().attr_flushes_applied;
    callbacks += cluster.mds(i).stats().attr_callbacks;
  }
  const char* mode = distributed ? "distributed" : "authority_serialized";
  csv.field(mode)
      .field(tput)
      .field(lat.mean() * 1e3)
      .field(lat.max() * 1e3)
      .field(local)
      .field(flushes)
      .field(callbacks);
  csv.end_row();
  table.add_row({mode, fmt_double(tput, 0), fmt_double(lat.mean() * 1e3, 2),
                 fmt_double(lat.max() * 1e3, 1), std::to_string(local),
                 std::to_string(flushes), std::to_string(callbacks)});
  std::cout << "  [" << mode << "] " << fmt_double(tput, 0)
            << " ops/s/MDS, mean latency "
            << fmt_double(lat.mean() * 1e3, 2) << " ms, absorbed locally "
            << local << ", batched flushes " << flushes << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  banner("Ablation F — distributed attribute updates (shared writers)",
         "paper: section 4.2 (the GPFS-style monotone-attribute scheme)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  CsvWriter csv(csv_path("abl_distributed_attrs"));
  csv.header({"mode", "avg_mds_throughput_ops", "mean_latency_ms",
              "max_latency_ms", "local_updates", "flushes", "callbacks"});
  ConsoleTable table({"mode", "tput", "lat_ms", "max_ms", "local",
                      "flushes", "callbacks"});
  run_mode(false, csv, table, quick);
  run_mode(true, csv, table, quick);
  table.print("Shared-write storm on one file");
  std::cout << "\nExpected: with distributed updates, most writes are "
               "absorbed at replicas and batched (latency drops, the "
               "authority stops being the serialization point).\nCSV: "
            << csv_path("abl_distributed_attrs") << "\n";
  return 0;
}

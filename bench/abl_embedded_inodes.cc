// Ablation A: embedded inodes / whole-directory prefetch on vs off.
//
// The paper attributes the FileHash-vs-DirHash gap to exactly this
// mechanism ("the benefits of this approach are best seen by contrasting
// the performance of the directory and file hashing strategies, which are
// otherwise identical", section 5.3). Here we isolate it on a static
// subtree partition: identical partition, identical workload, only the
// storage granularity changes.
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

int main(int argc, char** argv) {
  banner("Ablation A — embedded inodes / directory-granularity prefetch",
         "paper: sections 4.5 and 5.3 (FileHash vs DirHash contrast)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  CsvWriter csv(csv_path("abl_embedded_inodes"));
  csv.header({"strategy", "embedded", "avg_mds_throughput_ops", "hit_rate",
              "mean_latency_ms", "disk_reads_per_reply"});

  ConsoleTable table({"config", "tput", "hit%", "latency_ms",
                      "reads/reply"});
  for (StrategyKind k :
       {StrategyKind::kStaticSubtree, StrategyKind::kDirHash}) {
    for (int embedded : {1, 0}) {
      SimConfig cfg = scaled_system_config(k, quick ? 4 : 8);
      cfg.force_whole_dir_io = embedded;
      double reads_per_reply = 0.0;
      const RunResult r = run_one(cfg, [&](ClusterSim& cluster) {
        std::uint64_t reads = 0, replies = 0;
        for (int i = 0; i < cluster.num_mds(); ++i) {
          reads += cluster.mds(i).disk().reads();
          replies += cluster.mds(i).stats().replies_sent;
        }
        reads_per_reply = replies > 0 ? static_cast<double>(reads) /
                                            static_cast<double>(replies)
                                      : 0.0;
      });
      csv.field(strategy_name(k))
          .field(std::int64_t{embedded})
          .field(r.avg_mds_throughput)
          .field(r.hit_rate)
          .field(r.mean_latency_ms)
          .field(reads_per_reply);
      csv.end_row();
      table.add_row({std::string(strategy_name(k)) +
                         (embedded ? "+embedded" : "+per-inode"),
                     fmt_double(r.avg_mds_throughput, 0),
                     fmt_double(r.hit_rate * 100, 1),
                     fmt_double(r.mean_latency_ms, 1),
                     fmt_double(reads_per_reply, 3)});
    }
  }
  table.print("Embedded inodes on/off");
  std::cout << "\nExpected: per-inode I/O costs a large throughput factor "
               "on both partitions (no prefetch, one transaction per "
               "inode).\nCSV: "
            << csv_path("abl_embedded_inodes") << "\n";
  return 0;
}

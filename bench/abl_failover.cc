// Ablation E: MDS failover — journal-replay cache warming on takeover.
//
// Paper section 4.6: "the log represents an approximation of that node's
// working set, allowing the memory cache to be quickly preloaded with
// millions of records on startup or after a failure", and "[OSD-hosted]
// shared access facilitates takeover in the case of a node failure."
//
// One node is killed mid-run; survivors inherit its subtrees. With warm
// takeover, the heir replays the dead node's journal from shared storage;
// cold takeover pages the working set back in one miss at a time. We
// measure the throughput dip and the time to recover.
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

struct Outcome {
  double before;        // per-survivor ops/s pre-kill
  double dip;           // first 4 s after the kill
  double settled;       // last 10 s of the run
  double post_kill_hit; // cluster hit rate in the 6 s after the kill
  std::uint64_t retries;
};

Outcome run_mode(bool warm, CsvWriter& csv, bool quick) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = quick ? 4 : 8;
  cfg.num_clients = quick ? 240 : 600;
  cfg.fs.num_users = 24 * cfg.num_mds;
  cfg.fs.nodes_per_user = 400;
  cfg.mds.cache_capacity = 3000;
  cfg.duration = 40 * kSecond;
  cfg.warmup = 3 * kSecond;
  cfg.client_retry.request_timeout = kSecond;

  const SimTime kill_at = 12 * kSecond;
  ClusterSim cluster(cfg);
  cluster.run_until(kill_at);

  // Snapshot cache counters at the kill instant for a windowed hit rate.
  std::uint64_t hits0 = 0, misses0 = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    if (i == 1) continue;
    hits0 += cluster.mds(i).cache().stats().hits;
    misses0 += cluster.mds(i).cache().stats().misses;
  }
  cluster.fail_mds(1, warm);
  cluster.run_until(kill_at + 6 * kSecond);
  std::uint64_t hits1 = 0, misses1 = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    if (i == 1) continue;
    hits1 += cluster.mds(i).cache().stats().hits;
    misses1 += cluster.mds(i).cache().stats().misses;
  }
  cluster.run_until(cfg.duration);

  Metrics& m = cluster.metrics();
  Outcome o{};
  // Per-survivor throughput (the dead node reports zero after the kill).
  const double scale =
      static_cast<double>(cfg.num_mds) / (cfg.num_mds - 1);
  o.before = m.avg_throughput().mean_in(cfg.warmup, kill_at);
  o.dip = m.avg_throughput().mean_in(kill_at, kill_at + 4 * kSecond) * scale;
  o.settled = m.avg_throughput().mean_in(cfg.duration - 10 * kSecond,
                                         cfg.duration,
                                         /*include_end=*/true) *
              scale;
  const std::uint64_t dh = hits1 - hits0;
  const std::uint64_t dm = misses1 - misses0;
  o.post_kill_hit =
      dh + dm > 0 ? static_cast<double>(dh) / static_cast<double>(dh + dm)
                  : 0.0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    o.retries += cluster.client(c).stats().retries;
  }
  const char* mode = warm ? "warm_takeover" : "cold_takeover";
  for (const auto& p : m.avg_throughput().points()) {
    csv.field(mode).field(to_seconds(p.time)).field(p.value);
    csv.end_row();
  }
  std::cout << "  [" << mode << "] per-node tput before "
            << fmt_double(o.before, 0) << " ops/s; dip (per survivor) "
            << fmt_double(o.dip, 0) << "; settled "
            << fmt_double(o.settled, 0) << "; survivor hit rate in the 6 s "
            << "after the kill " << fmt_double(o.post_kill_hit, 4)
            << "; client retries " << o.retries << "\n";
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Ablation E — failover: warm vs cold takeover",
         "paper: sections 2.1.2 and 4.6 (journal as working set, shared-"
         "storage takeover)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  CsvWriter csv(csv_path("abl_failover"));
  csv.header({"mode", "time_s", "avg_tput"});
  const Outcome warm = run_mode(true, csv, quick);
  const Outcome cold = run_mode(false, csv, quick);
  std::cout << "\nExpected: both modes dip when the node dies (timeouts + "
               "inherited load); warm takeover keeps the survivors' hit "
               "rate up because the heirs start with the dead node's "
               "working set instead of paging it in by cache miss.\n";
  std::cout << "Observed: post-kill hit rate warm "
            << fmt_double(warm.post_kill_hit, 4) << " vs cold "
            << fmt_double(cold.post_kill_hit, 4) << "; settled tput warm "
            << fmt_double(warm.settled, 0) << " vs cold "
            << fmt_double(cold.settled, 0) << ".\n";
  std::cout << "CSV: " << csv_path("abl_failover") << "\n";
  return 0;
}

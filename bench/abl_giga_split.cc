// Ablation G: GIGA+ incremental directory splitting vs all-at-once
// hashing under a create storm into giant shared directories.
//
// The paper hashes a hot directory's dentries across the cluster in one
// step (section 4.3); GIGA+ splits one partition at a time and lets
// clients route on possibly-stale bitmaps, corrected by redirects. This
// bench drives the scientific checkpoint storm — every client creating
// its own file in a shared run directory — three ways (incremental,
// all-at-once, incremental + mid-storm MDS crash) and checks the two
// properties the scheme exists for:
//
//   1. No split event re-routes more than one partition's dentries
//      (the all-at-once variant books the whole directory per event).
//   2. The client redirect rate decays to ~0 after the last bitmap
//      change — stale bitmaps self-correct instead of thrashing.
//
// Exits non-zero if either property fails to hold.
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/fault_plan.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

struct IntervalRow {
  double t_s = 0.0;
  std::uint64_t splits = 0;
  std::uint64_t pair_merges = 0;
  std::uint64_t redirects = 0;
  double mean_latency_ms = 0.0;
};

struct VariantResult {
  std::uint64_t fragment_events = 0;
  std::uint64_t split_events = 0;
  std::uint64_t pair_merge_events = 0;
  std::uint64_t merge_events = 0;
  std::uint64_t max_event_moved = 0;
  std::uint64_t total_event_moved = 0;
  std::uint64_t redirects_total = 0;
  std::uint64_t redirects_after_stable = 0;
  double tput = 0.0;
  double mean_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  std::uint64_t failures = 0;
  std::vector<IntervalRow> timeline;
};

SimConfig storm_config(bool giga, bool quick) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = quick ? 4 : 8;
  cfg.num_clients = quick ? 200 : 600;
  cfg.fs.num_users = 16;
  cfg.fs.nodes_per_user = 100;
  cfg.fs.num_projects = 2;
  cfg.fs.project_runs = 2;
  cfg.fs.project_dir_files = 1500;
  cfg.workload = WorkloadKind::kScientific;
  cfg.scientific.compute_phase = 2 * kSecond;
  cfg.scientific.ops_per_burst = 30;
  cfg.scientific.n_to_1_fraction = 0.2;  // mostly create storms
  cfg.mds.dirfrag_size_threshold = 2000;
  cfg.mds.dirfrag_temp_threshold = 400.0;
  cfg.mds.giga_enabled = giga;
  cfg.duration = quick ? 16 * kSecond : 24 * kSecond;
  cfg.warmup = 0;  // event counters cover the whole run
  return cfg;
}

std::uint64_t sum_redirects(ClusterSim& cluster) {
  std::uint64_t n = 0;
  for (int i = 0; i < cluster.num_clients(); ++i) {
    n += cluster.client(i).stats().giga_redirects;
  }
  return n;
}

void sum_latency(ClusterSim& cluster, double* sum_s, std::uint64_t* count) {
  *sum_s = 0.0;
  *count = 0;
  for (int i = 0; i < cluster.num_clients(); ++i) {
    const Summary& s = cluster.client(i).stats().latency_seconds;
    *sum_s += s.sum();
    *count += s.count();
  }
}

VariantResult run_variant(const std::string& label, bool giga, bool chaos,
                          bool quick) {
  SimConfig cfg = storm_config(giga, quick);
  ClusterSim cluster(cfg);
  FaultPlan plan;
  if (chaos) {
    // Crash a partition-owning node mid-storm (warm takeover), restart
    // it after the cluster has absorbed the loss.
    plan.crash(cfg.duration / 3, 1, /*warm=*/true)
        .restart(2 * cfg.duration / 3, 1);
    plan.arm(cluster);
  }

  VariantResult r;
  const SimTime step = 2 * kSecond;
  std::uint64_t prev_splits = 0;
  std::uint64_t prev_merges = 0;
  std::uint64_t prev_redirects = 0;
  double prev_lat_sum = 0.0;
  std::uint64_t prev_lat_count = 0;
  for (SimTime t = step; t <= cfg.duration; t += step) {
    cluster.run_until(t);
    const DirFragRegistry& reg = cluster.dirfrag();
    IntervalRow row;
    row.t_s = to_seconds(t);
    row.splits = reg.split_events - prev_splits;
    row.pair_merges = reg.pair_merge_events - prev_merges;
    const std::uint64_t redirects = sum_redirects(cluster);
    row.redirects = redirects - prev_redirects;
    double lat_sum;
    std::uint64_t lat_count;
    sum_latency(cluster, &lat_sum, &lat_count);
    if (lat_count > prev_lat_count) {
      row.mean_latency_ms = (lat_sum - prev_lat_sum) /
                            static_cast<double>(lat_count - prev_lat_count) *
                            1e3;
    }
    prev_splits = reg.split_events;
    prev_merges = reg.pair_merge_events;
    prev_redirects = redirects;
    prev_lat_sum = lat_sum;
    prev_lat_count = lat_count;
    r.timeline.push_back(row);
  }

  const DirFragRegistry& reg = cluster.dirfrag();
  r.fragment_events = reg.fragment_events;
  r.split_events = reg.split_events;
  r.pair_merge_events = reg.pair_merge_events;
  r.merge_events = reg.merge_events;
  r.max_event_moved = reg.max_event_moved;
  r.total_event_moved = reg.total_event_moved;
  r.redirects_total = sum_redirects(cluster);

  // Redirects observed after the bitmap went quiet: everything strictly
  // after the interval holding the last split/pair-merge, plus one
  // settling interval for corrections already in flight.
  std::size_t last_change = 0;
  for (std::size_t i = 0; i < r.timeline.size(); ++i) {
    if (r.timeline[i].splits > 0 || r.timeline[i].pair_merges > 0) {
      last_change = i;
    }
  }
  for (std::size_t i = last_change + 2; i < r.timeline.size(); ++i) {
    r.redirects_after_stable += r.timeline[i].redirects;
  }

  Metrics& m = cluster.metrics();
  r.tput = m.avg_mds_throughput(cluster.sim().now());
  const Summary lat = m.client_latency();
  r.mean_latency_ms = lat.mean() * 1e3;
  r.max_latency_ms = lat.max() * 1e3;
  r.failures = m.total_failures();

  std::cout << "  [" << label << "] splits " << r.split_events
            << ", pair merges " << r.pair_merge_events << ", max moved "
            << r.max_event_moved << ", redirects " << r.redirects_total
            << " (" << r.redirects_after_stable
            << " after stable), latency " << fmt_double(r.mean_latency_ms, 2)
            << " ms\n";
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Ablation G — GIGA+ incremental splitting vs all-at-once hashing",
         "paper: section 4.3, grown per GIGA+ (incremental partitioning)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  CsvWriter csv(csv_path("abl_giga_split"));
  csv.header({"variant", "fragment_events", "split_events",
              "pair_merge_events", "merge_events", "max_event_moved",
              "total_event_moved", "redirects_total",
              "redirects_after_stable", "avg_mds_throughput_ops",
              "mean_latency_ms", "max_latency_ms", "failures"});
  CsvWriter tl(csv_path("abl_giga_split_timeline"));
  tl.header({"variant", "t_s", "splits", "pair_merges", "redirects",
             "mean_latency_ms"});

  ConsoleTable table(
      {"variant", "splits", "max_moved", "redirects", "latency_ms"});
  struct Named {
    const char* name;
    bool giga;
    bool chaos;
  };
  const Named variants[] = {{"giga", true, false},
                            {"all_at_once", false, false},
                            {"giga_chaos", true, true}};
  VariantResult results[3];
  for (int v = 0; v < 3; ++v) {
    results[v] = run_variant(variants[v].name, variants[v].giga,
                             variants[v].chaos, quick);
    const VariantResult& r = results[v];
    csv.field(variants[v].name)
        .field(r.fragment_events)
        .field(r.split_events)
        .field(r.pair_merge_events)
        .field(r.merge_events)
        .field(r.max_event_moved)
        .field(r.total_event_moved)
        .field(r.redirects_total)
        .field(r.redirects_after_stable)
        .field(r.tput)
        .field(r.mean_latency_ms)
        .field(r.max_latency_ms)
        .field(r.failures);
    csv.end_row();
    for (const IntervalRow& row : r.timeline) {
      tl.field(variants[v].name)
          .field(row.t_s)
          .field(row.splits)
          .field(row.pair_merges)
          .field(row.redirects)
          .field(row.mean_latency_ms);
      tl.end_row();
    }
    table.add_row({variants[v].name, std::to_string(r.split_events),
                   std::to_string(r.max_event_moved),
                   std::to_string(r.redirects_total),
                   fmt_double(r.mean_latency_ms, 2)});
  }
  table.print("Create storm into giant directories, three ways");

  const VariantResult& giga = results[0];
  const VariantResult& off = results[1];
  const VariantResult& chaos = results[2];

  int rc = 0;
  if (giga.split_events == 0) {
    std::cout << "FAIL: the storm never drove an incremental split\n";
    rc = 1;
  }
  if (off.fragment_events == 0 || off.max_event_moved == 0) {
    std::cout << "FAIL: the all-at-once baseline never hashed a directory\n";
    rc = 1;
  }
  // Property 1: incremental splits move one partition's share; the
  // all-at-once transition books the whole directory in one event.
  if (giga.max_event_moved >= off.max_event_moved) {
    std::cout << "FAIL: largest giga event moved " << giga.max_event_moved
              << " dentries, not less than the all-at-once "
              << off.max_event_moved << "\n";
    rc = 1;
  }
  // Property 2: the redirect rate decays to ~0 once the bitmap stops
  // changing (allow stragglers already in flight: 2% of the total).
  const std::uint64_t budget =
      std::max<std::uint64_t>(5, giga.redirects_total / 50);
  if (giga.redirects_total > 0 && giga.redirects_after_stable > budget) {
    std::cout << "FAIL: " << giga.redirects_after_stable << " of "
              << giga.redirects_total
              << " redirects arrived after the bitmap went stable\n";
    rc = 1;
  }
  // Chaos variant: the storm survives a mid-split MDS crash.
  if (chaos.split_events == 0 || chaos.tput <= 0.0) {
    std::cout << "FAIL: chaos variant did not keep splitting and serving\n";
    rc = 1;
  }

  if (rc == 0) {
    std::cout << "\nOK: splits moved at most " << giga.max_event_moved
              << " dentries per event (all-at-once: " << off.max_event_moved
              << "), and only " << giga.redirects_after_stable << "/"
              << giga.redirects_total
              << " redirects landed after the last bitmap change.\n";
  }
  std::cout << "CSV: " << csv_path("abl_giga_split") << "\n";
  return rc;
}

// Ablation G: journal device technology (paper section 4.6).
//
// "All metadata transactions must be quickly written to stable storage for
// safety ... the primary demand will be on raw write bandwidth. ... The
// use of NVRAM in the metadata servers can further mask the latency of
// writes to the log."
//
// Every update op commits to the journal before replying, so the journal
// append time is a floor under update latency. We measure exactly that
// claim: an unsaturated create-heavy workload, sweeping the commit device
// from a 2004-era disk log to NVRAM. (Throughput under *saturation* is a
// different story — a slow log throttles create admission and can even
// protect the downstream object store; that regime shows up in the
// dirfrag and failover benches.)
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

int main(int argc, char** argv) {
  banner("Ablation G — journal device (disk log vs NVRAM)",
         "paper: section 4.6 (two-tiered storage, NVRAM remark)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  struct Device {
    const char* name;
    SimTime append;
  };
  const Device devices[] = {
      {"disk_log_2ms", from_millis(2.0)},
      {"disk_log_400us", from_micros(400)},
      {"nvram_20us", from_micros(20)},
  };

  CsvWriter csv(csv_path("abl_nvram_journal"));
  csv.header({"device", "append_us", "avg_mds_throughput_ops",
              "mean_latency_ms", "update_latency_bound_ms"});

  ConsoleTable table({"device", "tput", "latency_ms"});
  for (const Device& d : devices) {
    SimConfig cfg;
    cfg.strategy = StrategyKind::kDynamicSubtree;
    cfg.num_mds = quick ? 3 : 6;
    // Light load: nothing saturates, so reply latency directly exposes
    // the commit path.
    cfg.num_clients = 15 * cfg.num_mds;
    cfg.fs.num_users = 12 * cfg.num_mds;
    cfg.fs.nodes_per_user = 300;
    cfg.general.mean_think = from_millis(25);
    cfg.mds.disk.journal_append_time = d.append;
    cfg.duration = 8 * kSecond;
    cfg.warmup = 2 * kSecond;
    // Create-heavy so every op pays a journal commit before replying.
    cfg.workload = WorkloadKind::kShifting;
    cfg.shifting.shift_at = 0;
    cfg.shifting.fraction = 1.0;

    const RunResult r = run_one(cfg);
    csv.field(d.name)
        .field(static_cast<double>(d.append) / 1e3)
        .field(r.avg_mds_throughput)
        .field(r.mean_latency_ms)
        .field(to_seconds(d.append) * 1e3);
    csv.end_row();
    table.add_row({d.name, fmt_double(r.avg_mds_throughput, 0),
                   fmt_double(r.mean_latency_ms, 2)});
    std::cout << "  [" << d.name << "] "
              << fmt_double(r.avg_mds_throughput, 0) << " ops/s/MDS, "
              << fmt_double(r.mean_latency_ms, 2) << " ms mean latency\n";
  }
  table.print("Create-heavy workload vs journal device");
  std::cout << "\nExpected: mean latency falls with the commit device "
               "(every create waits for its journal append); NVRAM makes "
               "the commit effectively free, as the paper suggests.\nCSV: "
            << csv_path("abl_nvram_journal") << "\n";
  return 0;
}

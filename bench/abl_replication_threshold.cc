// Ablation C: traffic-control replication threshold.
//
// Paper section 5.4: "The response time from when the flash crowd begins
// until it is effectively distributed across the cluster is dependent on
// a number of factors, including the replication threshold ..." — this
// sweep quantifies that dependence.
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

int main(int argc, char** argv) {
  banner("Ablation C — replication threshold vs crowd response",
         "paper: section 5.4 (Traffic Control)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::vector<double> thresholds{50, 150, 300, 600, 1500, 1e12};

  CsvWriter csv(csv_path("abl_replication_threshold"));
  csv.header({"threshold", "time_to_distribute_ms", "mean_replies_per_s",
              "mean_latency_ms", "nodes_serving"});

  ConsoleTable table(
      {"threshold", "distribute_ms", "replies/s", "latency_ms", "nodes"});
  for (double thr : thresholds) {
    SimConfig cfg = flash_crowd_config(/*traffic_control=*/true);
    cfg.mds.replication_threshold = thr;
    if (quick) cfg.num_clients = 2000;
    ClusterSim cluster(cfg);
    cluster.run();
    Metrics& m = cluster.metrics();
    const SimTime t0 = cfg.flash.start;
    const SimTime t1 = t0 + cfg.flash.duration;

    // Time until >= half the nodes are replying at a meaningful rate.
    SimTime distributed_at = t1;
    const auto& series = m.per_mds_throughput();
    const std::size_t n_samples = series[0].points().size();
    for (std::size_t s = 0; s < n_samples; ++s) {
      const SimTime t = series[0].points()[s].time;
      if (t < t0) continue;
      int active = 0;
      for (const auto& node_series : series) {
        if (node_series.points()[s].value > 1000.0) ++active;
      }
      if (active * 2 >= cluster.num_mds()) {
        distributed_at = t;
        break;
      }
    }
    int serving = 0;
    for (int i = 0; i < cluster.num_mds(); ++i) {
      if (cluster.mds(i).stats().replies_sent > 50) ++serving;
    }
    const double distribute_ms =
        distributed_at > t0 ? to_seconds(distributed_at - t0) * 1e3
                            : 0.0;
    const double rate = m.reply_rate().mean_in(t0, t1);
    const double lat = m.client_latency().mean() * 1e3;
    const std::string label = thr >= 1e12 ? "inf" : fmt_double(thr, 0);
    csv.field(label).field(distribute_ms).field(rate).field(lat).field(
        std::int64_t{serving});
    csv.end_row();
    table.add_row({label, fmt_double(distribute_ms, 0), fmt_double(rate, 0),
                   fmt_double(lat, 1), std::to_string(serving)});
    std::cout << "  [thr=" << label << "] distributed in "
              << fmt_double(distribute_ms, 0) << " ms, " << serving
              << " nodes serving\n";
  }
  table.print("Flash-crowd response vs replication threshold");
  std::cout << "\nExpected: low thresholds distribute the crowd almost "
               "immediately; high thresholds delay replication; an "
               "infinite threshold degenerates to the no-control case "
               "(one serving node).\nCSV: "
            << csv_path("abl_replication_threshold") << "\n";
  return 0;
}

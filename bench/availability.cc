// Availability experiment: the full failure lifecycle, measured.
//
// A scripted FaultPlan crashes one MDS mid-run and restarts it later.
// Survivors detect the death from missed heartbeats (no oracle), take
// over its delegations and warm their caches from its journal; the
// restarted node replays its log through the disk model and rejoins.
// We report the paper-relevant spans — detection latency, the
// unavailability window (crash -> takeover) and recovery time (restart
// -> rejoin) — alongside the throughput timeline that shows the dip and
// the climb back.
#include "bench_util.h"
#include "core/fault_plan.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

void print_summary(const char* label, const Summary& s) {
  std::cout << "  " << label << ": ";
  if (s.count() == 0) {
    std::cout << "(no samples)\n";
    return;
  }
  std::cout << fmt_double(s.mean(), 3) << " s (n=" << s.count() << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  banner("Availability — crash, detection, takeover, restart, rejoin",
         "paper: section 4.6 (failure recovery via shared storage and "
         "journal replay)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 4;
  cfg.num_clients = quick ? 160 : 400;
  cfg.fs.num_users = 24 * cfg.num_mds;
  cfg.fs.nodes_per_user = quick ? 250 : 400;
  cfg.mds.cache_capacity = 3000;
  cfg.duration = 40 * kSecond;
  cfg.warmup = 3 * kSecond;
  cfg.client_request_timeout = kSecond;

  const SimTime crash_at = 10 * kSecond;
  const SimTime restart_at = 18 * kSecond;
  const MdsId victim = 1;

  ClusterSim cluster(cfg);
  cluster.run_until(0);
  FaultPlan plan;
  plan.crash(crash_at, victim, /*warm=*/true).restart(restart_at, victim);
  plan.arm(cluster);
  cluster.run_until(cfg.duration);

  Metrics& m = cluster.metrics();
  CsvWriter csv(csv_path("availability"));
  csv.header({"time_s", "avg_tput"});
  for (const auto& p : m.avg_throughput().points()) {
    csv.field(to_seconds(p.time)).field(p.value);
    csv.end_row();
  }

  std::uint64_t retries = 0, stale = 0, failed = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    const ClientStats& s = cluster.client(c).stats();
    retries += s.retries;
    stale += s.stale_replies;
    failed += s.ops_failed;
  }
  std::uint64_t detections = 0, takeovers = 0, warm_items = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    const MdsStats& s = cluster.mds(i).stats();
    detections += s.peer_down_detections;
    takeovers += s.takeovers;
    warm_items += s.takeover_warm_items;
  }

  const double before = m.avg_throughput().mean_in(cfg.warmup, crash_at);
  const double dip =
      m.avg_throughput().mean_in(crash_at, crash_at + 5 * kSecond);
  const double recovered =
      m.avg_throughput().mean_in(restart_at + 5 * kSecond, cfg.duration,
                                 /*include_end=*/true);

  std::cout << "Lifecycle spans (FaultLog):\n";
  print_summary("detection latency (crash -> first survivor detection)",
                m.detection_latency_seconds());
  print_summary("unavailability (crash -> delegations taken over)",
                m.unavailability_seconds());
  print_summary("recovery time (restart -> journal replayed, rejoined)",
                m.recovery_time_seconds());
  std::cout << "Counters: detections " << detections << "; takeovers "
            << takeovers << "; warm-replayed items " << warm_items
            << "; client retries " << retries << "; stale replies " << stale
            << "; ops abandoned " << failed << "\n";
  std::cout << "Throughput: healthy " << fmt_double(before, 0)
            << " ops/s; crash window " << fmt_double(dip, 0)
            << "; after rejoin " << fmt_double(recovered, 0) << "\n";
  std::cout << "Expected: a dip bounded by the heartbeat-miss horizon "
               "(detection is ~3 heartbeat periods), then recovery to the "
               "pre-crash level once the restarted node replays its "
               "journal and reacquires load.\n";
  std::cout << "CSV: " << csv_path("availability") << "\n";
  return 0;
}

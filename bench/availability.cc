// Availability experiment: the full failure lifecycle, measured.
//
// Two scenarios share the harness:
//
//   (default)              A scripted FaultPlan crashes one MDS mid-run
//                          and restarts it later. Survivors detect the
//                          death from missed heartbeats (no oracle), wait
//                          out the quorum-takeover grace, take over its
//                          delegations and warm their caches from its
//                          journal; the restarted node replays its log
//                          through the disk model and rejoins.
//
//   --scenario=partition   The fabric splits: one MDS lands alone on the
//                          minority side while the majority (and all
//                          clients) stay connected. The minority node's
//                          authority lease lapses and it self-fences
//                          (parking writes, serving nothing it cannot
//                          prove it still owns); the majority quorum
//                          takes over its territory under a bumped epoch.
//                          On heal the fenced node rejoins, reconciles
//                          against the new epoch and resumes.
//
// We report the paper-relevant spans — detection latency, the
// unavailability window, recovery time, minority write-stall — alongside
// the throughput timeline that shows the dip and the climb back.
#include "bench_util.h"
#include "core/fault_plan.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

void print_summary(const char* label, const Summary& s) {
  std::cout << "  " << label << ": ";
  if (s.count() == 0) {
    std::cout << "(no samples)\n";
    return;
  }
  std::cout << fmt_double(s.mean(), 3) << " s (n=" << s.count() << ")\n";
}

SimConfig base_config(bool quick) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 4;
  cfg.num_clients = quick ? 160 : 400;
  cfg.fs.num_users = 24 * cfg.num_mds;
  cfg.fs.nodes_per_user = quick ? 250 : 400;
  cfg.mds.cache_capacity = 3000;
  cfg.duration = 40 * kSecond;
  cfg.warmup = 3 * kSecond;
  cfg.client_retry.request_timeout = kSecond;
  return cfg;
}

void dump_throughput(ClusterSim& cluster, const std::string& csv_name) {
  CsvWriter csv(csv_path(csv_name));
  csv.header({"time_s", "avg_tput"});
  for (const auto& p : cluster.metrics().avg_throughput().points()) {
    csv.field(to_seconds(p.time)).field(p.value);
    csv.end_row();
  }
  std::cout << "CSV: " << csv_path(csv_name) << "\n";
}

int run_crash(bool quick) {
  banner("Availability — crash, detection, takeover, restart, rejoin",
         "paper: section 4.6 (failure recovery via shared storage and "
         "journal replay)");
  SimConfig cfg = base_config(quick);

  const SimTime crash_at = 10 * kSecond;
  // The restart must land after the grace-delayed takeover
  // (detection ~3.5 s + takeover grace 4 s after the crash); a node that
  // returns while its takeover is pending simply cancels it.
  const SimTime restart_at = 22 * kSecond;
  const MdsId victim = 1;

  ClusterSim cluster(cfg);
  cluster.run_until(0);
  FaultPlan plan;
  plan.crash(crash_at, victim, /*warm=*/true).restart(restart_at, victim);
  plan.arm(cluster);
  cluster.run_until(cfg.duration);

  Metrics& m = cluster.metrics();

  std::uint64_t retries = 0, stale = 0, failed = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    const ClientStats& s = cluster.client(c).stats();
    retries += s.retries;
    stale += s.stale_replies;
    failed += s.ops_failed;
  }
  std::uint64_t detections = 0, takeovers = 0, warm_items = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    const MdsStats& s = cluster.mds(i).stats();
    detections += s.peer_down_detections;
    takeovers += s.takeovers;
    warm_items += s.takeover_warm_items;
  }

  const double before = m.avg_throughput().mean_in(cfg.warmup, crash_at);
  const double dip =
      m.avg_throughput().mean_in(crash_at, crash_at + 8 * kSecond);
  const double recovered =
      m.avg_throughput().mean_in(restart_at + 5 * kSecond, cfg.duration,
                                 /*include_end=*/true);

  std::cout << "Lifecycle spans (FaultLog):\n";
  print_summary("detection latency (crash -> first survivor detection)",
                m.detection_latency_seconds());
  print_summary("unavailability (crash -> delegations taken over)",
                m.unavailability_seconds());
  print_summary("recovery time (restart -> journal replayed, rejoined)",
                m.recovery_time_seconds());
  std::cout << "Counters: detections " << detections << "; takeovers "
            << takeovers << "; warm-replayed items " << warm_items
            << "; client retries " << retries << "; stale replies " << stale
            << "; ops abandoned " << failed << "\n";
  std::cout << "Throughput: healthy " << fmt_double(before, 0)
            << " ops/s; crash window " << fmt_double(dip, 0)
            << "; after rejoin " << fmt_double(recovered, 0) << "\n";
  std::cout << "Expected: a dip bounded by the heartbeat-miss horizon plus "
               "the quorum-takeover grace, then recovery to the pre-crash "
               "level once the restarted node replays its journal and "
               "reacquires load.\n";
  dump_throughput(cluster, "availability");
  return 0;
}

int run_partition(bool quick) {
  banner("Availability — partition, fencing, quorum takeover, heal",
         "split-brain safety: authority epochs, leases and quorum-gated "
         "takeover under a network partition");
  SimConfig cfg = base_config(quick);

  const SimTime cut_at = 10 * kSecond;
  const SimTime heal_at = 22 * kSecond;
  const MdsId minority = 1;

  ClusterSim cluster(cfg);
  cluster.run_until(0);
  FaultPlan plan;
  // MDS addresses are 0..num_mds-1; endpoints not listed (every client)
  // stay in group 0 with the majority, so the minority node is alone.
  plan.partition(cut_at, heal_at, {{0, 2, 3}, {minority}});
  plan.arm(cluster);
  cluster.run_until(cfg.duration);

  Metrics& m = cluster.metrics();

  std::uint64_t retries = 0, stale = 0, failed = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    const ClientStats& s = cluster.client(c).stats();
    retries += s.retries;
    stale += s.stale_replies;
    failed += s.ops_failed;
  }
  std::uint64_t fences = 0, unfences = 0, parked = 0, stale_rejects = 0;
  std::uint64_t deferred = 0, takeovers = 0, reconciled = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    const MdsStats& s = cluster.mds(i).stats();
    fences += s.fence_events;
    unfences += s.unfence_events;
    parked += s.writes_parked_fenced;
    stale_rejects += s.stale_epoch_rejects;
    deferred += s.takeovers_deferred;
    takeovers += s.takeovers;
    reconciled += s.reconcile_dropped_items;
  }
  const auto* subtree =
      dynamic_cast<const SubtreePartition*>(&cluster.partition());

  const double before = m.avg_throughput().mean_in(cfg.warmup, cut_at);
  const double split = m.avg_throughput().mean_in(cut_at, heal_at);
  const double healed = m.avg_throughput().mean_in(
      heal_at + 3 * kSecond, cfg.duration, /*include_end=*/true);

  std::cout << "Lifecycle spans (FaultLog):\n";
  for (const auto& f : cluster.fault_log().fence_incidents()) {
    std::cout << "  mds " << f.node << " fenced at "
              << fmt_double(to_seconds(f.fenced_at), 3) << " s ("
              << fmt_double(to_seconds(f.fenced_at) - to_seconds(cut_at), 3)
              << " s after the cut), unfenced at "
              << fmt_double(to_seconds(f.unfenced_at), 3) << " s\n";
  }
  std::cout << "  minority write stall (fenced node-seconds): "
            << fmt_double(m.minority_stall_seconds(), 3) << " s\n";
  std::cout << "Counters: fences " << fences << "; unfences " << unfences
            << "; writes parked while fenced " << parked
            << "; stale-epoch rejects " << stale_rejects
            << "; takeovers deferred (no quorum) " << deferred
            << "; takeovers executed " << takeovers
            << "; reconcile-dropped items " << reconciled
            << "; partition-dropped messages "
            << cluster.network().partition_dropped() << "; client retries "
            << retries << "; stale replies " << stale << "; ops abandoned "
            << failed << "\n";
  if (subtree != nullptr) {
    std::cout << "Map epoch at end: " << subtree->epoch()
              << " (1 = never reconfigured)\n";
  }
  std::cout << "Throughput: healthy " << fmt_double(before, 0)
            << " ops/s; split window " << fmt_double(split, 0)
            << "; after heal " << fmt_double(healed, 0) << "\n";
  std::cout << "Expected: the minority node fences within its lease "
               "(~2 s), the majority re-delegates after detection plus the "
               "takeover grace, and no write is ever acknowledged by the "
               "fenced side; after heal the node reconciles and the "
               "cluster returns to the pre-cut level.\n";
  dump_throughput(cluster, "availability_partition");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string scenario = "crash";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario = arg.substr(11);
    }
  }
  if (scenario == "partition") return run_partition(quick);
  return run_crash(quick);
}

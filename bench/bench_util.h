// Shared helpers for the figure-reproduction benches: output directory,
// CSV plumbing and console framing.
#pragma once

#include <filesystem>
#include <iostream>
#include <limits>
#include <string>

#include "common/csv.h"
#include "common/table.h"
#include "core/experiment.h"

namespace mdsim::bench {

/// Directory all bench CSVs land in (created on demand).
inline std::string results_dir() {
  const char* env = std::getenv("MDSIM_RESULTS_DIR");
  std::string dir = env != nullptr ? env : "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

inline std::string csv_path(const std::string& name) {
  return results_dir() + "/" + name + ".csv";
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=====================================================\n"
            << title << "\n"
            << paper_ref << "\n"
            << "=====================================================\n";
}

/// --overload-noop: enable the overload gate with limits no request can
/// reach (depth bounds at SIZE_MAX, no backlog bound, no bucket, no
/// deadline drops). The run must be byte-identical to one with the gate
/// disabled — CI diffs the CSVs to prove the protection layer is
/// zero-cost when it never fires.
inline void apply_overload_noop(SimConfig* cfg) {
  OverloadParams& ov = cfg->mds.overload;
  ov.enabled = true;
  ov.max_cpu_queue_depth = std::numeric_limits<std::size_t>::max();
  ov.max_cpu_queue_delay = 0;
  ov.max_disk_queue_depth = std::numeric_limits<std::size_t>::max();
  ov.admit_rate = 0.0;
  ov.deadline_drop = false;
}

/// --giga-off: fall back to all-at-once directory hashing. Runs that
/// never fragment a directory must be byte-identical either way — CI
/// diffs the fig CSVs to prove the GIGA+ layer is zero-cost when no
/// directory ever splits.
inline void apply_giga_off(SimConfig* cfg) { cfg->mds.giga_enabled = false; }

/// --gray-noop: enable the gray-failure layer armed so it can never act
/// — health scoring with thresholds no score can cross (so no node is
/// ever flagged and the balancer is never biased) and hedging with a
/// warmup no op class can finish (so no hedge ever fires and no extra
/// RNG is drawn). The run must be byte-identical to one with the layer
/// disabled — CI diffs the fig CSVs to prove detection + hedging are
/// zero-cost on healthy paths.
inline void apply_gray_noop(SimConfig* cfg) {
  HealthParams& h = cfg->mds.health;
  h.enabled = true;
  h.degraded_factor = 1e300;  // finite: inf * a zero median would be NaN
  h.min_lag = std::numeric_limits<SimTime>::max();
  cfg->hedge.enabled = true;
  cfg->hedge.min_samples = std::numeric_limits<std::uint32_t>::max();
}

/// All five strategies in the paper's legend order.
inline const std::vector<StrategyKind>& all_strategies() {
  static const std::vector<StrategyKind> kAll = {
      StrategyKind::kStaticSubtree, StrategyKind::kDynamicSubtree,
      StrategyKind::kDirHash, StrategyKind::kLazyHybrid,
      StrategyKind::kFileHash};
  return kAll;
}

}  // namespace mdsim::bench

// Figure 2: "MDS performance as file system, cluster size, and client
// base are scaled." Average per-MDS throughput (ops/sec) vs MDS cluster
// size for the five metadata partitioning strategies, with fixed per-node
// memory.
//
// Paper shape to reproduce: subtree partitioning (static & dynamic) on
// top, DirHash below them, LazyHybrid and FileHash far below; hashed
// strategies degrade faster with scale; LazyHybrid scales almost flat.
#include <cstdlib>

#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

int main(int argc, char** argv) {
  banner("Figure 2 — per-MDS throughput vs cluster size",
         "paper: fig 2, section 5.3 (Performance and Scalability)");

  std::vector<int> sizes{2, 4, 8, 16, 32, 50};
  int shards = 1;
  int threads = 1;
  bool overload_noop = false;
  bool giga_off = false;
  bool gray_noop = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      sizes = {2, 4, 8};
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.c_str() + 9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else if (arg == "--overload-noop") {
      overload_noop = true;  // gate enabled, limits unreachable: must match
    } else if (arg == "--giga-off") {
      giga_off = true;  // all-at-once hashing: must match when nothing splits
    } else if (arg == "--gray-noop") {
      gray_noop = true;  // health+hedging armed but inert: must match
    }
  }
  // --shards=1 (the default) is the classic single-engine path and
  // reproduces the committed CSVs byte-for-byte; higher shard counts run
  // the parallel engine, whose output is identical for every --threads.

  CsvWriter csv(csv_path("fig2_scaling"), /*echo_stdout=*/false);
  csv.header({"strategy", "num_mds", "avg_mds_throughput_ops",
              "hit_rate", "prefix_fraction", "forward_fraction",
              "mean_latency_ms", "replies", "failures"});

  ConsoleTable table({"mds", "Static", "Dynamic", "DirHash", "LazyHyb",
                      "FileHash"});
  for (int n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    for (StrategyKind k : all_strategies()) {
      SimConfig config = scaled_system_config(k, n);
      config.shards = shards;
      config.threads = threads;
      if (overload_noop) apply_overload_noop(&config);
      if (giga_off) apply_giga_off(&config);
      if (gray_noop) apply_gray_noop(&config);
      const RunResult r = run_one(config);
      csv.field(strategy_name(k))
          .field(std::int64_t{n})
          .field(r.avg_mds_throughput)
          .field(r.hit_rate)
          .field(r.prefix_fraction)
          .field(r.forward_fraction)
          .field(r.mean_latency_ms)
          .field(r.replies)
          .field(r.failures);
      csv.end_row();
      row.push_back(fmt_double(r.avg_mds_throughput, 0));
      std::cout << "  [" << strategy_name(k) << " x" << n << "] "
                << fmt_double(r.avg_mds_throughput, 0) << " ops/s/MDS, hit "
                << fmt_double(r.hit_rate * 100, 1) << "%, latency "
                << fmt_double(r.mean_latency_ms, 1) << " ms\n";
    }
    table.add_row(row);
  }
  table.print("Average MDS throughput (ops/sec) vs cluster size");
  std::cout << "\nCSV: " << csv_path("fig2_scaling") << "\n";
  return 0;
}

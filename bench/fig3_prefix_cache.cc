// Figure 3: "Percentage of cache devoted to prefix inodes as the file
// system, client base and MDS cluster size scales."
//
// Paper shape: hashed distributions devote large portions of their caches
// to replicated prefix directories and the overhead *grows* with cluster
// size; subtree partitions stay near the namespace's natural dir/file
// ratio, with the dynamic variant slightly above the static one (its
// re-delegated subtrees need anchoring prefixes).
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

int main(int argc, char** argv) {
  banner("Figure 3 — prefix-inode share of MDS cache vs cluster size",
         "paper: fig 3, section 5.3.1 (Prefix Caching)");

  std::vector<int> sizes{2, 4, 8, 16, 24, 32};
  if (argc > 1 && std::string(argv[1]) == "--quick") sizes = {2, 4, 8};

  // Figure 3 omits LazyHybrid (it keeps no prefixes; see the cluster
  // tests), so the sweep covers the four traversal-based strategies.
  const std::vector<StrategyKind> strategies = {
      StrategyKind::kDynamicSubtree, StrategyKind::kStaticSubtree,
      StrategyKind::kDirHash, StrategyKind::kFileHash};

  CsvWriter csv(csv_path("fig3_prefix_cache"));
  csv.header({"strategy", "num_mds", "prefix_fraction_pct", "hit_rate",
              "replicas_mean"});

  ConsoleTable table({"mds", "Dynamic", "Static", "DirHash", "FileHash"});
  for (int n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    for (StrategyKind k : strategies) {
      double replica_mean = 0.0;
      const RunResult r =
          run_one(scaled_system_config(k, n), [&](ClusterSim& cluster) {
            for (int i = 0; i < cluster.num_mds(); ++i) {
              replica_mean +=
                  static_cast<double>(cluster.mds(i).cache().replica_count());
            }
            replica_mean /= cluster.num_mds();
          });
      csv.field(strategy_name(k))
          .field(std::int64_t{n})
          .field(r.prefix_fraction * 100.0)
          .field(r.hit_rate)
          .field(replica_mean);
      csv.end_row();
      row.push_back(fmt_double(r.prefix_fraction * 100.0, 1));
      std::cout << "  [" << strategy_name(k) << " x" << n << "] prefixes "
                << fmt_double(r.prefix_fraction * 100.0, 1)
                << "% of cache, mean replicas/node "
                << fmt_double(replica_mean, 0) << "\n";
    }
    table.add_row(row);
  }
  table.print("Cache consumed by prefix inodes (%) vs cluster size");
  std::cout << "\nCSV: " << csv_path("fig3_prefix_cache") << "\n";
  return 0;
}

// Figure 4: "Cache hit rate as a function of cache size (as a fraction of
// total file system size). For smaller caches, inefficient cache
// utilization due to replicated prefixes results in lower hit rates."
//
// Paper shape: subtree strategies lead at every cache size; the gap is
// widest for small caches and all strategies converge as the cache
// approaches the metadata size.
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

int main(int argc, char** argv) {
  banner("Figure 4 — cache hit rate vs cache size fraction",
         "paper: fig 4, section 5.3.1 (Prefix Caching)");

  std::vector<double> fractions{0.05, 0.10, 0.20, 0.35, 0.60};
  bool overload_noop = false;
  bool giga_off = false;
  bool gray_noop = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      fractions = {0.05, 0.20, 0.60};
    } else if (arg == "--overload-noop") {
      overload_noop = true;  // gate enabled, limits unreachable: must match
    } else if (arg == "--giga-off") {
      giga_off = true;  // all-at-once hashing: must match when nothing splits
    } else if (arg == "--gray-noop") {
      gray_noop = true;  // health+hedging armed but inert: must match
    }
  }

  CsvWriter csv(csv_path("fig4_cache_hit"));
  csv.header({"strategy", "cache_fraction", "hit_rate",
              "avg_mds_throughput_ops", "mean_latency_ms"});

  ConsoleTable table({"fraction", "Static", "Dynamic", "DirHash", "LazyHyb",
                      "FileHash"});
  for (double frac : fractions) {
    std::vector<std::string> row{fmt_double(frac, 2)};
    for (StrategyKind k : all_strategies()) {
      SimConfig config = cache_sweep_config(k, frac);
      if (overload_noop) apply_overload_noop(&config);
      if (giga_off) apply_giga_off(&config);
      if (gray_noop) apply_gray_noop(&config);
      const RunResult r = run_one(config);
      csv.field(strategy_name(k))
          .field(frac)
          .field(r.hit_rate)
          .field(r.avg_mds_throughput)
          .field(r.mean_latency_ms);
      csv.end_row();
      row.push_back(fmt_double(r.hit_rate, 3));
      std::cout << "  [" << strategy_name(k) << " @" << fmt_double(frac, 2)
                << "] hit " << fmt_double(r.hit_rate, 4) << ", tput "
                << fmt_double(r.avg_mds_throughput, 0) << "\n";
    }
    table.add_row(row);
  }
  table.print("Cache hit rate vs cache size (fraction of total metadata)");
  std::cout << "\nCSV: " << csv_path("fig4_cache_hit") << "\n";
  return 0;
}

// Figure 5: "The range and average throughput of MDSs is shown under a
// dynamic workload. When clients migrate and create files in new portions
// of the hierarchy, a static subtree distribution remains unbalanced,
// while the dynamic partition re-balances load and achieves higher
// average performance by migrating newly popular portions of the
// hierarchy to non-busy nodes."
//
// Emits, per strategy, the min/avg/max per-MDS throughput time series.
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

void run_strategy(StrategyKind k, CsvWriter& csv, bool quick) {
  SimConfig cfg = shift_config(k);
  if (quick) {
    cfg.num_mds = 6;
    cfg.fs.num_users = 144;
    cfg.num_clients = 360;
    cfg.duration = 40 * kSecond;
    cfg.shifting.shift_at = 12 * kSecond;
  }
  ClusterSim cluster(cfg);
  cluster.run();

  Metrics& m = cluster.metrics();
  const auto& avg = m.avg_throughput().points();
  const auto& mn = m.min_throughput().points();
  const auto& mx = m.max_throughput().points();
  for (std::size_t i = 0; i < avg.size(); ++i) {
    csv.field(strategy_name(k))
        .field(to_seconds(avg[i].time))
        .field(mn[i].value)
        .field(avg[i].value)
        .field(mx[i].value);
    csv.end_row();
  }

  const SimTime shift = cfg.shifting.shift_at;
  const SimTime end = cfg.duration;
  std::uint64_t migrations = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    migrations += cluster.mds(i).stats().migrations_out;
  }
  std::cout << "  [" << strategy_name(k) << "] avg tput before shift "
            << fmt_double(m.avg_throughput().mean_in(cfg.warmup, shift), 0)
            << " ops/s, after shift "
            << fmt_double(
                   m.avg_throughput().mean_in(shift + 5 * kSecond, end,
                                              /*include_end=*/true),
                   0)
            << " ops/s; min-node after shift "
            << fmt_double(
                   m.min_throughput().mean_in(shift + 5 * kSecond, end,
                                              /*include_end=*/true),
                   0)
            << ", max-node "
            << fmt_double(
                   m.max_throughput().mean_in(shift + 5 * kSecond, end,
                                              /*include_end=*/true),
                   0)
            << "; migrations " << migrations << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  banner("Figure 5 — MDS throughput range under a workload shift",
         "paper: fig 5, section 5.3.2 (Dynamic Partitioning and Workload "
         "Evolution)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  CsvWriter csv(csv_path("fig5_adaptation"));
  csv.header({"strategy", "time_s", "min_tput", "avg_tput", "max_tput"});
  run_strategy(StrategyKind::kDynamicSubtree, csv, quick);
  run_strategy(StrategyKind::kStaticSubtree, csv, quick);
  std::cout << "\nExpected shape: after the shift the static cluster pins "
               "one node at its service ceiling (max >> avg, min ~ idle) "
               "while the dynamic cluster re-delegates subtrees and "
               "recovers a higher average.\n";
  std::cout << "CSV: " << csv_path("fig5_adaptation") << "\n";
  return 0;
}

// Figure 6: "Forwarded requests for static and dynamic partitioning under
// a dynamic workload. The spike represents a shift in workload, while the
// difference after that point highlights overhead due to client ignorance
// of metadata movement from dynamic load balancing."
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

void run_strategy(StrategyKind k, CsvWriter& csv, bool quick,
                  bool overload_noop, bool giga_off, bool gray_noop) {
  SimConfig cfg = shift_config(k);
  if (quick) {
    cfg.num_mds = 6;
    cfg.fs.num_users = 144;
    cfg.num_clients = 360;
    cfg.duration = 40 * kSecond;
    cfg.shifting.shift_at = 12 * kSecond;
  }
  if (overload_noop) apply_overload_noop(&cfg);
  if (giga_off) apply_giga_off(&cfg);
  if (gray_noop) apply_gray_noop(&cfg);
  ClusterSim cluster(cfg);
  cluster.run();

  Metrics& m = cluster.metrics();
  for (const auto& p : m.forward_fraction().points()) {
    csv.field(strategy_name(k)).field(to_seconds(p.time)).field(p.value);
    csv.end_row();
  }
  const SimTime shift = cfg.shifting.shift_at;
  std::cout << "  [" << strategy_name(k) << "] forwarded fraction: before "
            << fmt_double(m.forward_fraction().mean_in(cfg.warmup, shift), 3)
            << ", spike window "
            << fmt_double(m.forward_fraction().mean_in(
                              shift, shift + 5 * kSecond),
                          3)
            << ", settled "
            << fmt_double(m.forward_fraction().mean_in(shift + 15 * kSecond,
                                                       cfg.duration,
                                                       /*include_end=*/true),
                          3)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  banner("Figure 6 — forwarded-request fraction under a workload shift",
         "paper: fig 6, section 5.3.3 (Client Ignorance)");
  bool quick = false;
  bool overload_noop = false;
  bool giga_off = false;
  bool gray_noop = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--overload-noop") overload_noop = true;
    if (arg == "--giga-off") giga_off = true;
    if (arg == "--gray-noop") gray_noop = true;
  }

  CsvWriter csv(csv_path("fig6_forwarding"));
  csv.header({"strategy", "time_s", "forward_fraction"});
  run_strategy(StrategyKind::kDynamicSubtree, csv, quick, overload_noop,
               giga_off, gray_noop);
  run_strategy(StrategyKind::kStaticSubtree, csv, quick, overload_noop,
               giga_off, gray_noop);
  std::cout << "\nExpected shape: both spike when clients move into "
               "unexplored territory; the static fraction decays back to "
               "its discovery baseline, while the dynamic one stays higher "
               "because load balancing keeps moving metadata under the "
               "clients.\n";
  std::cout << "CSV: " << csv_path("fig6_forwarding") << "\n";
  return 0;
}

// Figure 7: flash crowd. "Number of requests processed over time by
// individual nodes in the MDS cluster when 10,000 clients simultaneously
// request the same file."
//
//   Top (no traffic control): "nodes forward all requests to the
//   authoritative MDS who slowly responds to them in sequence."
//   Bottom (traffic control): "the authoritative node quickly replicates
//   the popular item and all nodes respond to requests."
//
// Emits cluster-wide replies/sec and forwards/sec series at 10 ms
// resolution around the crowd.
#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

void run_mode(bool traffic_control, CsvWriter& csv, bool quick) {
  SimConfig cfg = flash_crowd_config(traffic_control);
  if (quick) cfg.num_clients = 2000;
  ClusterSim cluster(cfg);
  cluster.run();

  Metrics& m = cluster.metrics();
  const char* mode = traffic_control ? "traffic_control" : "no_control";
  const auto& replies = m.reply_rate().points();
  const auto& forwards = m.forward_rate().points();
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (replies[i].time < cfg.flash.start - 100 * kMillisecond) continue;
    csv.field(mode)
        .field(to_seconds(replies[i].time))
        .field(replies[i].value)
        .field(forwards[i].value);
    csv.end_row();
  }

  const SimTime t0 = cfg.flash.start;
  const SimTime t1 = t0 + cfg.flash.duration;
  // How many nodes actually served the crowd?
  int serving_nodes = 0;
  std::uint64_t total_replies = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    const std::uint64_t r = cluster.mds(i).stats().replies_sent;
    total_replies += r;
    if (r > 50) ++serving_nodes;
  }
  std::cout << "  [" << mode << "] peak replies/s "
            << fmt_double(m.reply_rate().max_value(), 0)
            << ", peak forwards/s "
            << fmt_double(m.forward_rate().max_value(), 0)
            << ", mean replies/s in crowd "
            << fmt_double(m.reply_rate().mean_in(t0, t1), 0)
            << ", nodes serving " << serving_nodes << "/"
            << cluster.num_mds() << ", client latency mean "
            << fmt_double(m.client_latency().mean() * 1e3, 1) << " ms\n";
  (void)total_replies;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Figure 7 — flash crowd with and without traffic control",
         "paper: fig 7, section 5.4 (Traffic Control)");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  CsvWriter csv(csv_path("fig7_flash_crowd"));
  csv.header({"mode", "time_s", "replies_per_s", "forwards_per_s"});
  run_mode(/*traffic_control=*/false, csv, quick);
  run_mode(/*traffic_control=*/true, csv, quick);
  std::cout << "\nExpected shape: without control the authority serializes "
               "the crowd (forwards dwarf replies, one node serving); with "
               "control the metadata replicates within milliseconds and "
               "every node answers (replies dominate).\n";
  std::cout << "CSV: " << csv_path("fig7_flash_crowd") << "\n";
  return 0;
}

// Gray-failure experiment: fail-slow injection vs health-aware mitigation.
//
// The failure mode (Huang et al., "Gray Failure: The Achilles' Heel of
// Cloud-Scale Systems", HotOS '17, applied to an MDS cluster): one node's
// disk starts serving every I/O 10x slower — a dying spindle, a firmware
// retry storm — while its CPU, network and heartbeats stay perfectly
// healthy. Liveness detection never fires (the node is not dead), yet the
// whole cluster's tail latency is hostage to the sick node: every request
// that touches its territory queues behind a disk that drains at a tenth
// of the arrival rate. Worse, the balancer makes it *worse*: a fail-slow
// node serves fewer ops, so its throughput-based load metric sags, so
// healthy peers see an "underloaded" target and migrate work toward it.
//
// The mitigation layer under test (mds/params.h HealthParams,
// client/hedge_policy.h):
//   - health scoring: every heartbeat carries the sender's self-measured
//     service lag; receivers EWMA it (plus delivery lag) into a per-peer
//     score and flag nodes that cross degraded_factor x the alive median,
//   - balancer bias: flagged peers are vetoed as migration targets, and a
//     self-flagged node volunteers its territory away at a much lower
//     trigger instead of waiting to look "busy",
//   - hedged reads: clients fire one backup copy of a slow read at the
//     op class's ~p99 delay; a replica holder answers locally, so reads
//     stop paying the sick node's queue while migration catches up.
//
// Scenarios:
//
//   --scenario=failslow  (default) Three arms on the same seed: healthy
//                        baseline, fail-slow with mitigation off, fail-slow
//                        with mitigation on. Read p99 is measured over the
//                        degraded steady state (the tracer is reset after
//                        the detection + migration transient). Verdict:
//                        off must degrade p99 >= 5x baseline, on must hold
//                        it within ~2x.
//
//   --scenario=chaos     Fail-slow composed with a mid-run crash and
//                        restart of a *second* node (a likely hedge
//                        target): hedging and health routing must not
//                        confuse failover with gray degradation.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/fault_plan.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

bool g_verbose = false;

constexpr int kNumMds = 8;
/// Node 0 anchors the namespace root, so it carries the largest share of
/// cluster traffic — the production-relevant worst case for a gray
/// failure, and the share that guarantees the fault is visible in a
/// cluster-wide percentile (a sliver node's stragglers would hide below
/// the p99 cut).
constexpr MdsId kVictim = 0;
constexpr double kDiskSlow = 10.0;

// Verdict bars (see header comment): the ISSUE's acceptance criteria.
constexpr double kOffDegradeMin = 5.0;  // off arm: p99 >= 5x baseline
constexpr double kOnHoldMax = 2.0;      // on arm: p99 <= ~2x baseline

SimConfig base_config(bool quick, bool mitigate) {
  // The cache-sweep preset (8 nodes, 480 clients) pinned cache-rich: the
  // healthy baseline barely touches disk (hit rate ~99.9%), so its tail
  // is CPU/network queueing — small and stable. The fail-slow disk then
  // bites through the one path every op class still pays the disk on:
  // updates journal at their authority before replying, so the victim's
  // 10x journal turns ~1/8 of cluster updates into queued stragglers,
  // and the clients stuck behind them pile up (closed loop) until the
  // victim's share of completions carries hundred-of-ms latencies. In a
  // disk-saturated preset the baseline tail would drown the signal; in
  // this one the fault owns the tail.
  SimConfig cfg = cache_sweep_config(StrategyKind::kDynamicSubtree,
                                     /*cache_fraction=*/0.35, /*seed=*/42);
  cfg.trace.enabled = true;  // p99 via the trace collector's histograms
  // A spinning-disk journal with no NVRAM front: every update pays a ~1 ms
  // sequential append at its authority before the reply. Healthy, the
  // victim's journal runs ~50-60% utilized — invisible in the tail. At 10x
  // it drains slower than updates arrive, and because the workload is a
  // closed loop the pileup self-limits at a stable fixed point: enough
  // clients parked behind the journal that the remainder's update arrivals
  // match the crippled drain rate. Completions keep flowing at that rate —
  // a steady >=1% of cluster completions carrying multi-second latencies —
  // which is exactly what a *cluster-wide* p99 can see. (A saturated
  // store queue, by contrast, censors itself: its completion rate drops
  // below the percentile cut while clients just park.)
  cfg.mds.disk.journal_append_time = kMillisecond;
  // One sustained timeline for every arm: warmup, healthy plateau, the
  // fault window opening at 8 s and never closing.
  cfg.warmup = 4 * kSecond;
  cfg.duration = quick ? 24 * kSecond : 30 * kSecond;
  if (quick) cfg.num_clients = 360;
  if (mitigate) {
    cfg.mds.health.enabled = true;
    cfg.hedge.enabled = true;
  }
  return cfg;
}

constexpr SimTime kFaultAt = 8 * kSecond;
/// Measurement starts here: past the detection EWMA (a few heartbeats)
/// and the first volunteer migration, so the arms are compared in their
/// steady states, not during the transient.
SimTime measure_from(const SimConfig& cfg) {
  return std::min<SimTime>(18 * kSecond, cfg.duration / 2 + kFaultAt / 2);
}

/// Cluster p99/mean (ms) over every op class, plus the read-only p99 the
/// hedging layer specifically covers.
struct TailLatency {
  double p99_ms = 0.0;       // all ops — the ISSUE's "cluster p99"
  double read_p99_ms = 0.0;  // stat/open/close/readdir only
  double mean_ms = 0.0;
};

TailLatency tail_latency(ClusterSim& cluster) {
  LogHistogram all(1.0, 1e10, 20);
  LogHistogram reads(1.0, 1e10, 20);
  for (int t = 0; t < kNumOpTypes; ++t) {
    const OpType op = static_cast<OpType>(t);
    const LogHistogram& h = cluster.tracer()->total_hist(op);
    all.merge(h);
    if (!op_is_update(op)) reads.merge(h);
  }
  TailLatency r;
  if (all.total_count() == 0) return r;
  r.p99_ms = all.percentile(99.0) / 1e6;
  r.mean_ms = all.mean() / 1e6;
  if (reads.total_count() > 0) r.read_p99_ms = reads.percentile(99.0) / 1e6;
  return r;
}

struct Outcome {
  TailLatency lat;
  double goodput = 0.0;        // ops_ok/s over the measured window
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t wasted = 0;
  std::uint64_t stale = 0;
  double gray_seconds = 0.0;   // node-seconds flagged degraded
  std::uint64_t gray_incidents = 0;
  std::uint64_t victim_migrations_out = 0;
};

std::uint64_t total_ok(ClusterSim& cluster) {
  std::uint64_t ok = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    ok += cluster.client(c).stats().ops_ok;
  }
  return ok;
}

Outcome run_arm(const SimConfig& cfg, const FaultPlan* plan) {
  ClusterSim cluster(cfg);
  cluster.run_until(0);
  if (plan != nullptr) plan->arm(cluster);
  const SimTime m0 = measure_from(cfg);
  cluster.run_until(m0);
  // Steady-state window: drop the healthy plateau and the mitigation
  // transient from the latency histograms.
  cluster.tracer()->reset();
  const std::uint64_t ok0 = total_ok(cluster);
  cluster.run_until(cfg.duration);

  Outcome out;
  out.lat = tail_latency(cluster);
  out.goodput = static_cast<double>(total_ok(cluster) - ok0) /
                to_seconds(cfg.duration - m0);
  Metrics& m = cluster.metrics();
  out.hedges = m.total_hedges_fired();
  out.hedge_wins = m.total_hedge_wins();
  out.wasted = m.total_wasted_hedges();
  for (int c = 0; c < cluster.num_clients(); ++c) {
    out.stale += cluster.client(c).stats().stale_replies;
  }
  out.gray_seconds = m.gray_degraded_seconds();
  out.gray_incidents = cluster.fault_log().gray_incidents().size();
  out.victim_migrations_out = cluster.mds(kVictim).stats().migrations_out;
  if (g_verbose) {
    std::cout << "  per-node (replies fwd migr_in/out cpu_hw disk_q hit):\n";
    for (int i = 0; i < cfg.num_mds; ++i) {
      MdsNode& n = cluster.mds(i);
      const MdsStats& s = n.stats();
      const auto& cs = n.cache().stats();
      const std::uint64_t acc = cs.hits + cs.misses;
      std::cout << "    mds" << i << ": " << s.replies_sent << " "
                << s.forwards << " " << s.migrations_in << "/"
                << s.migrations_out << " " << n.cpu().depth_highwater() << " "
                << n.disk().store_queue_depth() << " "
                << fmt_double(acc > 0 ? 100.0 * cs.hits / acc : 0.0, 1)
                << "%\n";
    }
    for (OpType t : {OpType::kStat, OpType::kOpen, OpType::kClose,
                     OpType::kReaddir, OpType::kCreate, OpType::kUnlink,
                     OpType::kChmod, OpType::kSetattr, OpType::kRename}) {
      const LogHistogram& h = cluster.tracer()->total_hist(t);
      if (h.total_count() == 0) continue;
      std::cout << "    " << op_name(t) << ": n=" << h.total_count()
                << " mean=" << fmt_double(h.mean() / 1e6, 1)
                << "ms p99=" << fmt_double(h.percentile(99.0) / 1e6, 1)
                << "ms\n";
    }
  }
  return out;
}

void csv_row(CsvWriter& csv, const char* arm, const Outcome& o) {
  csv.field(arm).field(o.lat.p99_ms).field(o.lat.read_p99_ms);
  csv.field(o.lat.mean_ms).field(o.goodput);
  csv.field(o.hedges).field(o.hedge_wins).field(o.wasted).field(o.stale);
  csv.field(o.gray_seconds).field(o.gray_incidents);
  csv.field(o.victim_migrations_out);
  csv.end_row();
}

void print_outcome(const char* label, const Outcome& o) {
  std::cout << label << ":\n"
            << "  cluster p99 " << fmt_double(o.lat.p99_ms, 1)
            << " ms (reads " << fmt_double(o.lat.read_p99_ms, 1)
            << " ms), mean " << fmt_double(o.lat.mean_ms, 2)
            << " ms, goodput " << fmt_double(o.goodput, 0) << " ops/s\n"
            << "  hedges fired " << o.hedges << " (wins " << o.hedge_wins
            << ", wasted " << o.wasted << ", stale replies " << o.stale
            << ")\n"
            << "  gray incidents " << o.gray_incidents
            << ", degraded node-seconds " << fmt_double(o.gray_seconds, 1)
            << ", victim migrations out " << o.victim_migrations_out << "\n";
}

int run_failslow(bool quick) {
  banner("Gray failure — fail-slow disk, mitigation off vs on",
         "one MDS disk at 10x service time in an 8-node cluster; health "
         "scoring + balancer bias + hedged reads vs nothing");

  FaultPlan plan;
  plan.fail_slow(kFaultAt, /*until=*/0, kVictim, /*cpu_mult=*/1.0,
                 /*disk_mult=*/kDiskSlow);

  CsvWriter csv(csv_path("gray_failslow"));
  csv.header({"arm", "cluster_p99_ms", "read_p99_ms", "mean_ms",
              "goodput_ops", "hedges", "hedge_wins", "wasted_hedges",
              "stale_replies", "gray_node_seconds", "gray_incidents",
              "victim_migrations"});

  const Outcome base = run_arm(base_config(quick, false), nullptr);
  csv_row(csv, "baseline", base);
  const Outcome off = run_arm(base_config(quick, false), &plan);
  csv_row(csv, "off", off);
  const Outcome on = run_arm(base_config(quick, true), &plan);
  csv_row(csv, "on", on);

  print_outcome("Healthy baseline", base);
  print_outcome("Fail-slow, mitigation OFF", off);
  print_outcome("Fail-slow, mitigation ON", on);

  const double off_x = base.lat.p99_ms > 0 ? off.lat.p99_ms / base.lat.p99_ms
                                           : 0.0;
  const double on_x = base.lat.p99_ms > 0 ? on.lat.p99_ms / base.lat.p99_ms
                                          : 0.0;
  const bool off_degraded = off_x >= kOffDegradeMin;
  const bool on_held = on_x > 0 && on_x <= kOnHoldMax;
  std::cout << "Verdict: mitigation-off p99 at " << fmt_double(off_x, 1)
            << "x baseline ("
            << (off_degraded ? "degraded as expected"
                             : "NOT degraded enough — tune the fault harder")
            << "); mitigation-on at " << fmt_double(on_x, 1) << "x ("
            << (on_held ? "held within the bar"
                        : "DID NOT hold — tune detection/hedging")
            << "; bars: off >= " << fmt_double(kOffDegradeMin, 0)
            << "x, on <= " << fmt_double(kOnHoldMax, 1) << "x)\n";
  std::cout << "CSV: " << csv_path("gray_failslow") << "\n";
  return (off_degraded && on_held) ? 0 : 1;
}

// --- chaos: fail-slow + crash of a likely hedge target ---------------------

int run_chaos(bool quick) {
  banner("Gray chaos — fail-slow composed with a mid-run crash",
         "the sick node stays sick while a healthy peer (a likely hedge "
         "target) crashes and restarts; mitigation must survive both");

  CsvWriter csv(csv_path("gray_chaos"));
  csv.header({"arm", "cluster_p99_ms", "read_p99_ms", "mean_ms",
              "goodput_ops", "hedges", "hedge_wins", "wasted_hedges",
              "stale_replies", "gray_node_seconds", "gray_incidents",
              "victim_migrations"});

  const MdsId crash_victim = 5;  // a healthy peer: hedges/migrations land here
  FaultPlan plan;
  plan.fail_slow(kFaultAt, /*until=*/0, kVictim, 1.0, kDiskSlow)
      .crash(14 * kSecond, crash_victim, /*warm=*/true)
      .restart(quick ? 20 * kSecond : 22 * kSecond, crash_victim);

  const Outcome off = run_arm(base_config(quick, false), &plan);
  csv_row(csv, "off", off);
  const Outcome on = run_arm(base_config(quick, true), &plan);
  csv_row(csv, "on", on);

  print_outcome("Chaos, mitigation OFF", off);
  print_outcome("Chaos, mitigation ON", on);
  std::cout << "Expected: the crash removes a hedge/migration target while "
               "the gray node is still sick; with mitigation on, hedges "
               "re-route via retries and the balancer works around both "
               "(goodput should not collapse below the off arm).\n";
  std::cout << "CSV: " << csv_path("gray_chaos") << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string scenario = "failslow";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--verbose") {
      g_verbose = true;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario = arg.substr(11);
    }
  }
  if (scenario == "chaos") return run_chaos(quick);
  if (scenario == "all") {
    const int a = run_failslow(quick);
    const int b = run_chaos(quick);
    return a != 0 ? a : b;
  }
  return run_failslow(quick);
}

// Latency breakdown: per-request tracing under a general-purpose workload
// on the dynamic-subtree strategy. Answers "where does a metadata op's
// time go?" — per stage (network, CPU queue/service, disk, journal,
// fetch/replica waits) and per op type — and dumps the slowest requests
// with their full per-stage attribution.
//
// Also serves as the tracing acceptance gate: the per-op stage sums must
// reconcile exactly (same count, bit-equal totals modulo the ns->s float
// conversion) with the client-side latency Summary the figures report,
// and two runs with the same seed must produce byte-identical CSVs
// (checked in CI by diffing the output of two invocations).
#include <cmath>
#include <cstdlib>

#include "bench_util.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

constexpr double kNsPerMs = 1e6;

SimConfig breakdown_config(bool quick) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 8;
  cfg.num_clients = 480;
  cfg.fs.num_users = 192;
  cfg.workload = WorkloadKind::kGeneral;
  // Cache at half the metadata set so fetch/disk stages actually appear.
  cfg.cache_fraction = 0.5;
  cfg.duration = 60 * kSecond;
  cfg.warmup = 10 * kSecond;
  cfg.trace.enabled = true;
  cfg.trace.slowest_n = 32;
  if (quick) {
    cfg.num_mds = 4;
    cfg.num_clients = 160;
    cfg.fs.num_users = 64;
    cfg.duration = 20 * kSecond;
    cfg.warmup = 4 * kSecond;
  }
  return cfg;
}

/// Stage sums vs client-observed latency: counts must match exactly and
/// totals to float conversion noise. Returns false (and explains) if not.
bool reconcile(const TraceCollector& tr, const Summary& client_lat) {
  const std::uint64_t traced = tr.completed();
  const std::uint64_t observed = client_lat.count();
  if (traced != observed) {
    std::cout << "RECONCILIATION FAILED: " << traced
              << " traced completions vs " << observed
              << " client latency samples\n";
    return false;
  }
  const double traced_s = static_cast<double>(tr.grand_total_ns()) / 1e9;
  const double observed_s = client_lat.sum();
  const double denom = std::max(std::abs(observed_s), 1e-12);
  const double rel = std::abs(traced_s - observed_s) / denom;
  if (rel > 1e-6) {
    std::cout << "RECONCILIATION FAILED: traced total " << traced_s
              << " s vs client-observed " << observed_s
              << " s (relative error " << rel << ")\n";
    return false;
  }
  std::cout << "  reconciliation: " << traced << " ops, "
            << fmt_double(traced_s, 3) << " s attributed, relative error "
            << rel << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Latency breakdown — per-request tracing and attribution",
         "where a metadata op's time goes, by stage and op type");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  SimConfig cfg = breakdown_config(quick);
  ClusterSim cluster(cfg);
  cluster.run();

  Metrics& m = cluster.metrics();
  TraceCollector* tr = cluster.tracer();
  if (tr == nullptr) {
    std::cout << "tracing not enabled?\n";
    return 1;
  }

  // Per-op end-to-end table.
  ConsoleTable ops({"op", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
                    "top stage", "share"});
  for (int op = 0; op < kNumOpTypes; ++op) {
    const auto o = static_cast<OpType>(op);
    if (tr->completed(o) == 0) continue;
    const LogHistogram& h = tr->total_hist(o);
    // Dominant stage by accumulated time.
    int top = 0;
    std::uint64_t top_ns = 0;
    for (int s = 0; s < kNumTraceStages; ++s) {
      const std::uint64_t ns = tr->stage_total_ns(static_cast<TraceStage>(s), o);
      if (ns > top_ns) {
        top_ns = ns;
        top = s;
      }
    }
    const double share =
        tr->total_ns(o) > 0
            ? static_cast<double>(top_ns) / static_cast<double>(tr->total_ns(o))
            : 0.0;
    ops.add_row({std::string(op_name(o)), std::to_string(tr->completed(o)),
                 fmt_double(static_cast<double>(tr->total_ns(o)) /
                                static_cast<double>(tr->completed(o)) /
                                kNsPerMs,
                            3),
                 fmt_double(h.percentile(50) / kNsPerMs, 3),
                 fmt_double(h.percentile(95) / kNsPerMs, 3),
                 fmt_double(h.percentile(99) / kNsPerMs, 3),
                 std::string(trace_stage_name(static_cast<TraceStage>(top))),
                 fmt_double(share, 2)});
  }
  ops.print("End-to-end latency by op type");

  // Cluster-wide stage shares (all ops pooled).
  std::uint64_t grand = tr->grand_total_ns();
  ConsoleTable stages({"stage", "total_s", "share"});
  for (int s = 0; s < kNumTraceStages; ++s) {
    std::uint64_t ns = 0;
    for (int op = 0; op < kNumOpTypes; ++op) {
      ns += tr->stage_total_ns(static_cast<TraceStage>(s),
                               static_cast<OpType>(op));
    }
    if (ns == 0) continue;
    stages.add_row(
        {std::string(trace_stage_name(static_cast<TraceStage>(s))),
         fmt_double(static_cast<double>(ns) / 1e9, 3),
         fmt_double(grand > 0 ? static_cast<double>(ns) /
                                    static_cast<double>(grand)
                              : 0.0,
                    3)});
  }
  stages.print("Attributed time by stage (all ops)");

  std::cout << "\n";
  if (!reconcile(*tr, m.client_latency())) return 1;

  CsvWriter breakdown(csv_path("latency_breakdown"));
  tr->write_breakdown_csv(breakdown);
  CsvWriter slowest(csv_path("latency_slowest"));
  tr->write_slowest_csv(slowest);
  std::cout << "CSV: " << csv_path("latency_breakdown") << "\n"
            << "CSV: " << csv_path("latency_slowest") << "\n"
            << "Inspect with: python3 tools/trace_top.py "
            << results_dir() << "\n";
  return 0;
}

// Substrate micro-benchmarks (google-benchmark): the building blocks the
// simulator's wall-clock cost rests on. Not a paper figure — a performance
// regression harness for the library itself.
#include <benchmark/benchmark.h>

#include "cache/metadata_cache.h"
#include "common/rng.h"
#include "core/cluster.h"
#include "fstree/generator.h"
#include "net/network.h"
#include "sim/queue_server.h"
#include "sim/simulation.h"
#include "storage/btree.h"

namespace mdsim {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(1);
  ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 1.1);
  for (auto _ : state) benchmark::DoNotOptimize(zipf(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(100000);

void BM_EventQueueChurn(benchmark::State& state) {
  const std::uint64_t fb_base = inline_task_stats::heap_fallbacks;
  for (auto _ : state) {
    state.PauseTiming();
    Simulation sim;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(static_cast<SimTime>(i * 7 % 997), [] {});
    }
    sim.run();
  }
  state.counters["task_heap_fallbacks"] = static_cast<double>(
      inline_task_stats::heap_fallbacks - fb_base);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

// --- Event-engine hot-path benches (every simulated op rides on these;
// the regression gate for sim/net core refactors) --------------------------

void BM_EventScheduleFire(benchmark::State& state) {
  const std::uint64_t fb_base = inline_task_stats::heap_fallbacks;
  // Steady-state schedule+fire throughput: one long-lived simulation,
  // batches of events with scattered delays (heap depth ~batch size).
  Simulation sim;
  constexpr int kBatch = 4096;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      sim.schedule(static_cast<SimTime>((i * 2654435761u) % 9973),
                   [&sink] { ++sink; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
  state.counters["task_heap_fallbacks"] = static_cast<double>(
      inline_task_stats::heap_fallbacks - fb_base);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EventScheduleFire);

void BM_EventCancelHeavy(benchmark::State& state) {
  const std::uint64_t fb_base = inline_task_stats::heap_fallbacks;
  // The client-timeout pattern: most scheduled events are cancelled
  // before they fire (timeout armed per request, cancelled on reply).
  Simulation sim;
  constexpr int kBatch = 2048;
  std::vector<EventHandle> handles;
  handles.reserve(kBatch);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    handles.clear();
    for (int i = 0; i < kBatch; ++i) {
      handles.push_back(sim.schedule(
          static_cast<SimTime>((i * 40503u) % 7919), [&sink] { ++sink; }));
    }
    for (int i = 0; i < kBatch; i += 2) {
      handles[static_cast<std::size_t>(i)].cancel();
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
  state.counters["task_heap_fallbacks"] = static_cast<double>(
      inline_task_stats::heap_fallbacks - fb_base);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_EventCancelHeavy);

namespace {
struct CountingEndpoint final : NetEndpoint {
  std::uint64_t received = 0;
  void on_message(NetAddr, MessagePtr) override { ++received; }
};
}  // namespace

void BM_NetworkSendDeliver(benchmark::State& state) {
  const std::uint64_t fb_base = inline_task_stats::heap_fallbacks;
  // Message path cost: send + latency draw + FIFO clamp + delivery.
  Simulation sim;
  Network net(sim, NetworkParams{});
  constexpr int kEndpoints = 16;
  CountingEndpoint eps[kEndpoints];
  for (auto& e : eps) net.attach(&e);
  constexpr int kBatch = 1024;
  std::uint32_t x = 1;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      x = x * 1664525u + 1013904223u;
      const NetAddr from = static_cast<NetAddr>(x % kEndpoints);
      const NetAddr to =
          static_cast<NetAddr>((x / kEndpoints) % kEndpoints);
      net.send(from, to, std::make_unique<Message>(MsgType::kHeartbeat));
    }
    sim.run();
  }
  std::uint64_t total = 0;
  for (auto& e : eps) total += e.received;
  benchmark::DoNotOptimize(total);
  state.counters["task_heap_fallbacks"] = static_cast<double>(
      inline_task_stats::heap_fallbacks - fb_base);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_QueueServerChurn(benchmark::State& state) {
  const std::uint64_t fb_base = inline_task_stats::heap_fallbacks;
  // Serialized-resource model: submit bursts against a busy server.
  Simulation sim;
  QueueServer server(sim, "bench");
  constexpr int kBatch = 1024;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      server.submit(100, [&sink] { ++sink; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
  state.counters["task_heap_fallbacks"] = static_cast<double>(
      inline_task_stats::heap_fallbacks - fb_base);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_QueueServerChurn);

void BM_BTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    DirBTree tree(32);
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      tree.insert("key" + std::to_string(i), DirRecord{1, 1, false},
                  nullptr);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeFind(benchmark::State& state) {
  DirBTree tree(32);
  for (int i = 0; i < 10000; ++i) {
    tree.insert("key" + std::to_string(i), DirRecord{1, 1, false}, nullptr);
  }
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.find("key" + std::to_string(rng.uniform(10000)), nullptr));
  }
}
BENCHMARK(BM_BTreeFind);

void BM_CacheLookup(benchmark::State& state) {
  FsTree tree;
  FsNode* dir = tree.mkdir(tree.root(), "d");
  MetadataCache cache(5000);
  cache.insert(tree.root(), InsertKind::kDemand, true, 0);
  cache.insert(dir, InsertKind::kPrefix, true, 0);
  std::vector<InodeId> inos;
  for (int i = 0; i < 4000; ++i) {
    FsNode* f = tree.create_file(dir, "f" + std::to_string(i));
    cache.insert(f, InsertKind::kDemand, true, 0);
    inos.push_back(f->ino());
  }
  Rng rng(5);
  SimTime now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.lookup(inos[rng.uniform(inos.size())], ++now));
  }
}
BENCHMARK(BM_CacheLookup);

// --- Cache hot-path benches (the per-request cost every simulated op
// pays; the regression gate for cache-core refactors) ----------------------

/// Flat working set under one directory, cache sized to hold all of it.
struct CacheBenchFixture {
  FsTree tree;
  FsNode* dir;
  std::vector<FsNode*> files;

  explicit CacheBenchFixture(int n) {
    dir = tree.mkdir(tree.root(), "d");
    files.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      files.push_back(tree.create_file(dir, "f" + std::to_string(i)));
    }
  }

  void populate(MetadataCache& cache, int n) {
    cache.insert(tree.root(), InsertKind::kDemand, true, 0);
    cache.insert(dir, InsertKind::kPrefix, true, 0);
    for (int i = 0; i < n; ++i) {
      cache.insert(files[static_cast<std::size_t>(i)], InsertKind::kDemand,
                   true, 0);
    }
  }
};

void BM_CacheLookupHit(benchmark::State& state) {
  CacheBenchFixture fx(4000);
  MetadataCache cache(5000);
  fx.populate(cache, 4000);
  Rng rng(5);
  SimTime now = 0;
  for (auto _ : state) {
    FsNode* f = fx.files[rng.uniform(fx.files.size())];
    benchmark::DoNotOptimize(cache.lookup(f->ino(), ++now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupHit);

void BM_CacheInsertEvict(benchmark::State& state) {
  // Working set twice the cache: every insert of a cold item evicts the
  // LRU one (insert + eviction scan + teardown per iteration).
  CacheBenchFixture fx(8000);
  MetadataCache cache(4000);
  fx.populate(cache, 4000);
  SimTime now = 0;
  std::size_t next = 4000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.insert(fx.files[next], InsertKind::kDemand,
                                          true, ++now));
    if (++next == fx.files.size()) next = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertEvict);

void BM_CacheMixedOps(benchmark::State& state) {
  // The per-request blend an MDS performs: mostly hit lookups, some
  // misses, peeks, demand upgrades, inserts-with-eviction, erases — plus
  // the metrics sampler reading prefix_fraction at intervals.
  CacheBenchFixture fx(8000);
  MetadataCache cache(4000);
  fx.populate(cache, 4000);
  Rng rng(7);
  SimTime now = 0;
  std::uint64_t ticks = 0;
  double frac = 0.0;
  for (auto _ : state) {
    FsNode* f = fx.files[rng.uniform(fx.files.size())];
    const double action = rng.uniform_double();
    if (action < 0.55) {
      CacheEntry* e = cache.lookup(f->ino(), ++now);
      if (e != nullptr) cache.mark_demand_access(e);
    } else if (action < 0.75) {
      benchmark::DoNotOptimize(cache.peek(f->ino()));
    } else if (action < 0.95) {
      benchmark::DoNotOptimize(
          cache.insert(f, InsertKind::kDemand, true, ++now));
    } else {
      cache.erase(f->ino());
    }
    if ((++ticks & 1023u) == 0) frac += cache.prefix_fraction();
  }
  benchmark::DoNotOptimize(frac);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMixedOps);

void BM_NamespaceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    FsTree tree;
    NamespaceParams params;
    params.num_users = 32;
    params.nodes_per_user = 300;
    generate_namespace(tree, params);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_NamespaceGeneration)->Unit(benchmark::kMillisecond);

void BM_FullSimulationSecond(benchmark::State& state) {
  // End-to-end cost of one simulated second of a small busy cluster.
  for (auto _ : state) {
    SimConfig cfg;
    cfg.num_mds = 4;
    cfg.num_clients = 200;
    cfg.fs.num_users = 32;
    cfg.fs.nodes_per_user = 200;
    cfg.duration = kSecond;
    cfg.warmup = 0;
    ClusterSim cluster(cfg);
    cluster.run();
    benchmark::DoNotOptimize(cluster.metrics().total_replies());
  }
}
BENCHMARK(BM_FullSimulationSecond)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mdsim

BENCHMARK_MAIN();

// Overload-protection experiment: metastable failure and its cure.
//
// The failure mode (Bronson et al., HotOS '21, applied to an MDS cluster):
// unbounded FIFO queues plus fixed-timeout closed-loop retries mean that
// once queueing delay exceeds the client timeout, every request the
// server finishes was already abandoned — the reply is discarded as
// stale, the client has long since retried, and the retry sits behind
// the same doomed backlog. Goodput collapses to ~zero and *stays* there
// after the triggering spike ends, because the sustaining feedback loop
// (timeouts -> retries -> more queueing) is self-reinforcing.
//
// The protection layer under test (mds/admission.h, client/retry_policy.h):
//   - bounded CPU/disk queues: depth + queued-service-time backlog caps,
//   - token-bucket admission with a write cost and a retry reserve
//     (retried requests only admitted from surplus),
//   - explicit Rejected{retry_after} replies instead of silent queueing,
//   - client retry budgets (retries throttle to a fraction of successes),
//   - request deadlines so provably-dead work is dropped at admission.
//
// Three scenarios share the harness:
//
//   --scenario=ladder   Sustained offered load at 1x..10x capacity,
//                       protection off vs on: goodput, p99 of admitted
//                       requests, shed rate, queue depth stats per rung.
//
//   --scenario=spike    (default) Steady baseline at ~0.6x capacity, then
//                       a 5 s flash crowd at >10x. Off: goodput collapses
//                       and never recovers. On: sheds the surplus, holds
//                       goodput near capacity, recovers within seconds of
//                       the spike ending (time-to-recover is measured).
//
//   --scenario=chaos    The spike composed with a FaultPlan: one MDS
//                       crashes mid-storm and restarts later. Overload
//                       protection must not confuse failover (retries to
//                       survivors are legitimate) with retry storms.
#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "core/fault_plan.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

// Service time chosen so CPU is the bottleneck and capacity is crisp:
// 3 nodes / 1.5 ms = ~2000 ops/s cluster-wide.
constexpr SimTime kCpuService = from_micros(1500);
constexpr int kNumMds = 3;

double theoretical_capacity() {
  return static_cast<double>(kNumMds) * static_cast<double>(kSecond) /
         static_cast<double>(kCpuService);
}

SimConfig base_config(bool quick, bool protect) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = kNumMds;
  // The client population must dwarf timeout x capacity: metastability
  // needs enough concurrent closed loops that their retry arrivals alone
  // exceed capacity (N / (timeout + mean backoff) > capacity).
  cfg.num_clients = quick ? 4000 : 5000;
  // Small, fully cacheable, world-readable namespace: neither the disk
  // nor permission denials become part of the story.
  cfg.fs.num_users = 12;
  cfg.fs.nodes_per_user = 200;
  cfg.fs.world_readable_fraction = 1.0;
  cfg.mds.cache_capacity = 8000;
  cfg.mds.cpu_request = kCpuService;
  cfg.mds.cpu_per_component = 0;
  cfg.client_retry.request_timeout = kSecond;
  cfg.trace.enabled = true;  // p99 for admitted (served) requests
  cfg.workload = WorkloadKind::kFlashCrowd;
  cfg.flash.base_write_fraction = 0.10;  // exercise the write class
  if (protect) {
    OverloadParams& ov = cfg.mds.overload;
    ov.enabled = true;
    ov.max_cpu_queue_depth = 64;
    ov.max_cpu_queue_delay = from_millis(200);
    // Per-node rate; one admission per request regardless of forwarding.
    // Set above the per-node service rate (1/1.5ms = 666/s): the token
    // bucket is the storm gate, the queue-delay cap does the fine-grained
    // bounding near capacity.
    ov.admit_rate = 900.0;
    ov.admit_burst = 96.0;
    ov.write_cost = 2.0;
    ov.retry_reserve = 0.25;
    ov.retry_after_base = from_millis(100);
    cfg.client_retry.budget.enabled = true;
    cfg.client_retry.budget.ratio = 0.2;
    cfg.client_retry.budget.cap = 8.0;
  }
  return cfg;
}

struct ClientTotals {
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t stale = 0;
  std::uint64_t rejected = 0;
  std::uint64_t suppressed = 0;
};

ClientTotals client_totals(ClusterSim& cluster) {
  ClientTotals t;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    const ClientStats& s = cluster.client(c).stats();
    t.ok += s.ops_ok;
    t.failed += s.ops_failed;
    t.retries += s.retries;
    t.stale += s.stale_replies;
    t.rejected += s.rejected_replies;
    t.suppressed += s.retries_suppressed;
  }
  return t;
}

/// p99 (ms) over the op types this bench issues, from the trace
/// collector. Only *served* requests have traces, so this is the latency
/// of admitted work — exactly what the bounded queue is meant to bound.
double p99_ms(ClusterSim& cluster) {
  // Same bucket layout as TraceCollector's histograms (1 ns .. 10 s,
  // 20 buckets/decade) — merge() folds bucket-by-bucket.
  LogHistogram h(1.0, 1e10, 20);
  h.merge(cluster.tracer()->total_hist(OpType::kStat));
  h.merge(cluster.tracer()->total_hist(OpType::kSetattr));
  h.merge(cluster.tracer()->total_hist(OpType::kOpen));
  if (h.total_count() == 0) return 0.0;
  return h.percentile(99.0) / 1e6;
}

// --- ladder ----------------------------------------------------------------

int run_ladder(bool quick) {
  banner("Overload ladder — sustained offered load, protection off vs on",
         "bounded queues + token-bucket admission + retry budgets under "
         "1x..10x offered load");
  const std::vector<double> multipliers =
      quick ? std::vector<double>{0.5, 4, 10}
            : std::vector<double>{0.5, 1, 2, 4, 6, 8, 10};
  const double capacity = theoretical_capacity();

  CsvWriter csv(csv_path("overload_ladder"));
  csv.header({"protection", "multiplier", "offered_ops", "goodput_ops",
              "goodput_frac", "p99_ms", "shed_per_s", "rejects", "queue_hw",
              "queue_mean_depth", "retries", "retries_suppressed",
              "ops_failed"});

  ConsoleTable table({"prot", "mult", "offered/s", "goodput/s", "p99 ms",
                      "shed/s", "q-hw", "q-mean"});
  double reference = 0.0;  // goodput at the healthy rung, protection off

  for (int protect = 0; protect <= 1; ++protect) {
    for (double mult : multipliers) {
      SimConfig cfg = base_config(quick, protect != 0);
      cfg.duration = quick ? 12 * kSecond : 20 * kSecond;
      cfg.warmup = 3 * kSecond;
      // No crowd: the ladder is pure steady background load.
      cfg.flash.start = cfg.duration + kSecond;
      const double offered = mult * capacity;
      cfg.flash.base_think = static_cast<SimTime>(
          static_cast<double>(cfg.num_clients) / offered *
          static_cast<double>(kSecond));

      ClusterSim cluster(cfg);
      cluster.run_until(cfg.warmup);
      const ClientTotals base = client_totals(cluster);
      cluster.run_until(cfg.duration);
      const ClientTotals end = client_totals(cluster);
      const double secs = to_seconds(cfg.duration - cfg.warmup);
      const double goodput =
          static_cast<double>(end.ok - base.ok) / secs;
      if (protect == 0 && mult == multipliers.front()) reference = goodput;

      Metrics& m = cluster.metrics();
      const double shed_rate = static_cast<double>(m.total_sheds()) / secs;
      const double p99 = p99_ms(cluster);
      const double qmean = m.mean_cpu_queue_depth(cfg.duration);

      csv.field(protect).field(mult).field(offered).field(goodput);
      csv.field(reference > 0 ? goodput / reference : 0.0);
      csv.field(p99).field(shed_rate).field(m.total_rejects());
      csv.field(m.cpu_queue_highwater()).field(qmean);
      csv.field(end.retries - base.retries);
      csv.field(end.suppressed - base.suppressed);
      csv.field(end.failed - base.failed);
      csv.end_row();

      table.add_row({protect ? "on" : "off", fmt_double(mult, 0),
                 fmt_double(offered, 0), fmt_double(goodput, 0),
                 fmt_double(p99, 1), fmt_double(shed_rate, 0),
                 std::to_string(m.cpu_queue_highwater()),
                 fmt_double(qmean, 1)});
    }
  }
  table.print();
  std::cout << "Reference goodput (healthy rung, protection off): "
            << fmt_double(reference, 0) << " ops/s\n";
  std::cout << "Expected: without protection the queue grows without bound "
               "past ~2x and served requests are already stale (goodput "
               "falls as offered load rises); with protection goodput "
               "plateaus near capacity, admitted-request p99 stays bounded "
               "by the queue-delay cap, and the surplus is shed.\n";
  std::cout << "CSV: " << csv_path("overload_ladder") << "\n";
  return 0;
}

// --- spike-and-recover -----------------------------------------------------

struct SpikeOutcome {
  double baseline = 0.0;   // pre-spike goodput
  double storm = 0.0;      // goodput during the spike
  double after = 0.0;      // goodput from spike end to run end
  double recover_s = -1.0; // spike end -> sustained recovery; -1 = never
  double p99 = 0.0;
  std::uint64_t shed_queue = 0;
  std::uint64_t shed_bucket = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t sheds = 0;
  double max_cpu_wait_s = 0.0;  // worst queue wait of any *served* job
  std::size_t queue_hw = 0;
  ClientTotals totals;
  Summary episodes;
};

SpikeOutcome run_spike_once(const SimConfig& cfg, SimTime spike_end,
                            CsvWriter* csv, int protect,
                            const FaultPlan* plan) {
  constexpr SimTime kSlice = 500 * kMillisecond;
  ClusterSim cluster(cfg);
  cluster.run_until(0);
  if (plan != nullptr) plan->arm(cluster);

  SpikeOutcome out;
  std::uint64_t prev_ok = 0;
  std::uint64_t prev_shed = 0;
  Summary base_sum, storm_sum, after_sum;
  const double recover_bar_frac = 0.8;
  SimTime recovered_at = 0;
  int consecutive = 0;

  for (SimTime t = kSlice; t <= cfg.duration; t += kSlice) {
    cluster.run_until(t);
    const ClientTotals ct = client_totals(cluster);
    const std::uint64_t sheds = cluster.metrics().total_sheds();
    const double goodput =
        static_cast<double>(ct.ok - prev_ok) / to_seconds(kSlice);
    const double shed_rate =
        static_cast<double>(sheds - prev_shed) / to_seconds(kSlice);
    prev_ok = ct.ok;
    prev_shed = sheds;
    if (t <= cfg.warmup) continue;  // client counters reset never; metrics at warmup
    if (csv != nullptr) {
      csv->field(protect).field(to_seconds(t)).field(goodput).field(shed_rate);
      csv->end_row();
    }
    if (t <= cfg.flash.start) {
      base_sum.add(goodput);
    } else if (t <= spike_end) {
      storm_sum.add(goodput);
    } else {
      after_sum.add(goodput);
      // Sustained recovery: two consecutive slices at >= 80% of baseline.
      if (base_sum.count() > 0 &&
          goodput >= recover_bar_frac * base_sum.mean()) {
        if (++consecutive >= 2 && out.recover_s < 0) {
          recovered_at = t - kSlice;  // first slice of the pair
          out.recover_s = to_seconds(recovered_at - spike_end);
        }
      } else {
        consecutive = 0;
        if (out.recover_s >= 0 && t - recovered_at <= 4 * kSecond) {
          // Fell back under the bar right after "recovering": not
          // sustained, keep looking.
          out.recover_s = -1.0;
        }
      }
    }
  }

  out.baseline = base_sum.count() ? base_sum.mean() : 0.0;
  out.storm = storm_sum.count() ? storm_sum.mean() : 0.0;
  out.after = after_sum.count() ? after_sum.mean() : 0.0;
  out.p99 = p99_ms(cluster);
  out.sheds = cluster.metrics().total_sheds();
  for (int i = 0; i < cluster.num_mds(); ++i) {
    const MdsStats& s = cluster.mds(i).stats();
    out.shed_queue += s.requests_shed_queue;
    out.shed_bucket += s.requests_shed_admission;
    out.shed_deadline += s.requests_shed_deadline;
    out.max_cpu_wait_s =
        std::max(out.max_cpu_wait_s, cluster.mds(i).cpu().wait_times().max());
  }
  out.queue_hw = cluster.metrics().cpu_queue_highwater();
  out.totals = client_totals(cluster);
  out.episodes = cluster.fault_log().overload_episode_seconds(
      cluster.sim().now());
  return out;
}

void print_spike_outcome(const char* label, const SpikeOutcome& o) {
  std::cout << label << ":\n"
            << "  goodput baseline " << fmt_double(o.baseline, 0)
            << " ops/s; during spike " << fmt_double(o.storm, 0)
            << "; after spike " << fmt_double(o.after, 0) << "\n"
            << "  time-to-recover ";
  if (o.recover_s < 0) {
    std::cout << "NEVER (metastable: goodput did not return to 80% of "
                 "baseline)";
  } else {
    std::cout << fmt_double(o.recover_s, 1) << " s after the spike ended";
  }
  std::cout << "\n  end-to-end p99 (incl. retry stalls) "
            << fmt_double(o.p99, 1) << " ms; max CPU queue wait of served "
            << fmt_double(o.max_cpu_wait_s * 1e3, 1)
            << " ms; CPU queue high-water " << o.queue_hw << "\n"
            << "  sheds " << o.sheds << " (queue " << o.shed_queue
            << ", bucket " << o.shed_bucket << ", deadline "
            << o.shed_deadline << "); rejected replies " << o.totals.rejected
            << "; retries " << o.totals.retries << "; suppressed "
            << o.totals.suppressed << "; stale " << o.totals.stale
            << "; ops failed " << o.totals.failed << "\n";
  if (o.episodes.count() > 0) {
    std::cout << "  overload episodes: " << o.episodes.count()
              << ", mean length " << fmt_double(o.episodes.mean(), 1)
              << " s\n";
  }
}

SimConfig spike_config(bool quick, bool protect) {
  SimConfig cfg = base_config(quick, protect);
  cfg.duration = quick ? 30 * kSecond : 40 * kSecond;
  cfg.warmup = 3 * kSecond;
  const double capacity = theoretical_capacity();
  // Baseline ~0.35x of theoretical capacity (~half of delivered capacity
  // once forwarding overhead is paid); the crowd window drives >10x.
  cfg.flash.base_think = static_cast<SimTime>(
      static_cast<double>(cfg.num_clients) / (0.35 * capacity) *
      static_cast<double>(kSecond));
  cfg.flash.start = 8 * kSecond;
  cfg.flash.duration = 5 * kSecond;
  cfg.flash.think = from_millis(5);
  return cfg;
}

int run_spike(bool quick) {
  banner("Overload spike — metastable collapse vs bounded recovery",
         "a 5 s flash crowd at >10x capacity on a ~0.6x baseline; "
         "protection off collapses and stays down, protection on sheds "
         "and recovers");
  CsvWriter csv(csv_path("overload_spike"));
  csv.header({"protection", "time_s", "goodput_ops", "shed_per_s"});

  SpikeOutcome off, on;
  {
    SimConfig cfg = spike_config(quick, false);
    off = run_spike_once(cfg, cfg.flash.start + cfg.flash.duration, &csv, 0,
                         nullptr);
  }
  {
    SimConfig cfg = spike_config(quick, true);
    on = run_spike_once(cfg, cfg.flash.start + cfg.flash.duration, &csv, 1,
                        nullptr);
  }
  print_spike_outcome("Protection OFF", off);
  print_spike_outcome("Protection ON", on);

  const bool off_collapsed =
      off.baseline > 0 && off.after < 0.5 * off.baseline;
  const bool on_held = on.baseline > 0 && on.after >= 0.8 * on.baseline &&
                       on.recover_s >= 0;
  std::cout << "Verdict: protection-off "
            << (off_collapsed ? "collapsed (goodput < 50% of baseline after "
                                "the spike)"
                              : "DID NOT collapse — tune the spike harder")
            << "; protection-on "
            << (on_held ? "held (>= 80% of baseline, recovered)"
                        : "DID NOT hold — tune admission")
            << "\n";
  std::cout << "CSV: " << csv_path("overload_spike") << "\n";
  return (off_collapsed && on_held) ? 0 : 1;
}

// --- chaos: spike + crash mid-storm ---------------------------------------

int run_chaos(bool quick) {
  banner("Overload chaos — flash crowd composed with an MDS crash",
         "one node crashes mid-storm and restarts later; failover retries "
         "must survive the retry budget while the storm is shed");
  CsvWriter csv(csv_path("overload_chaos"));
  csv.header({"protection", "time_s", "goodput_ops", "shed_per_s"});

  const MdsId victim = 1;
  SpikeOutcome off, on;
  {
    SimConfig cfg = spike_config(quick, false);
    FaultPlan plan;
    plan.crash(10 * kSecond, victim, /*warm=*/true)
        .restart(20 * kSecond, victim);
    off = run_spike_once(cfg, cfg.flash.start + cfg.flash.duration, &csv, 0,
                         &plan);
  }
  {
    SimConfig cfg = spike_config(quick, true);
    FaultPlan plan;
    plan.crash(10 * kSecond, victim, /*warm=*/true)
        .restart(20 * kSecond, victim);
    on = run_spike_once(cfg, cfg.flash.start + cfg.flash.duration, &csv, 1,
                        &plan);
  }
  print_spike_outcome("Protection OFF (with crash)", off);
  print_spike_outcome("Protection ON (with crash)", on);
  std::cout << "Expected: the crash deepens the storm (a third of capacity "
               "gone at peak); with protection on the survivors shed "
               "harder but stay live, and the cluster still recovers after "
               "the restart instead of staying collapsed.\n";
  std::cout << "CSV: " << csv_path("overload_chaos") << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string scenario = "spike";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario = arg.substr(11);
    }
  }
  if (scenario == "ladder") return run_ladder(quick);
  if (scenario == "chaos") return run_chaos(quick);
  if (scenario == "all") {
    const int a = run_ladder(quick);
    const int b = run_spike(quick);
    const int c = run_chaos(quick);
    return a != 0 ? a : (b != 0 ? b : c);
  }
  return run_spike(quick);
}

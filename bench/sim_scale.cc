// Simulation-engine scaling: sharded parallel core vs the monolithic
// engine on a dense, fig2-style configuration with a 10x client base.
//
// Not a paper figure — this measures the *simulator*, not the simulated
// system: wall-clock to complete the same simulated horizon on the
// classic single-engine ClusterSim versus the sharded engine
// (core/sharded_cluster.h) with its cohort clients and timer wheels.
// Emits a google-benchmark-compatible JSON (BENCH_sim_scale.json, usable
// with tools/bench_compare.py) and a determinism CSV: the CSV carries
// only simulation-derived values, so two sharded runs — at any two thread
// counts — must produce byte-identical files.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sharded_cluster.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

struct Timing {
  double wall_ms = 0.0;
  RunResult result;
  std::uint64_t events = 0;
  std::uint64_t cross_posts = 0;
};

SimConfig scale_config(int shards, int threads, bool quick) {
  // fig2 shape at n = 8, with a 10x client population (quick: a smaller
  // cut for CI determinism gates).
  SimConfig cfg = scaled_system_config(StrategyKind::kDynamicSubtree, 8);
  if (quick) {
    cfg.num_clients = 2400;
    cfg.duration = 3 * kSecond;
    cfg.warmup = kSecond;
  } else {
    cfg.num_clients = 12000;
    cfg.duration = 6 * kSecond;
    cfg.warmup = 2 * kSecond;
  }
  cfg.shards = shards;
  cfg.threads = threads;
  return cfg;
}

Timing run_legacy(const SimConfig& cfg) {
  Timing t;
  const auto t0 = std::chrono::steady_clock::now();
  ClusterSim cluster(cfg);
  cluster.run();
  const auto t1 = std::chrono::steady_clock::now();
  t.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  Metrics& m = cluster.metrics();
  t.result.config = cfg;
  t.result.avg_mds_throughput = m.avg_mds_throughput(cluster.sim().now());
  t.result.hit_rate = m.cluster_hit_rate();
  t.result.forward_fraction = m.overall_forward_fraction();
  t.result.mean_latency_ms = m.client_latency().mean() * 1e3;
  t.result.replies = m.total_replies();
  t.result.failures = m.total_failures();
  t.events = cluster.sim().events_executed();
  return t;
}

Timing run_sharded(const SimConfig& cfg) {
  Timing t;
  const auto t0 = std::chrono::steady_clock::now();
  ShardedClusterSim cluster(cfg);
  cluster.run();
  const auto t1 = std::chrono::steady_clock::now();
  t.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  t.result = cluster.result();
  t.events = cluster.engine().events_executed();
  t.cross_posts = cluster.engine().cross_posts();
  return t;
}

void csv_row(CsvWriter& csv, const std::string& mode, const Timing& t) {
  // Simulation-derived values only: wall-clock never enters the CSV, so
  // the file is a pure function of the simulation and must be
  // byte-identical across thread counts and invocations.
  csv.field(mode)
      .field(std::int64_t{t.result.config.shards})
      .field(std::int64_t{t.result.config.num_clients})
      .field(t.result.avg_mds_throughput)
      .field(t.result.hit_rate)
      .field(t.result.forward_fraction)
      .field(t.result.mean_latency_ms)
      .field(t.result.replies)
      .field(t.result.failures)
      .field(t.events)
      .field(t.cross_posts);
  csv.end_row();
}

void json_row(std::ofstream& out, const std::string& name, const Timing& t,
              bool last) {
  const double secs = t.wall_ms / 1e3;
  out << "    {\n"
      << "      \"name\": \"" << name << "\",\n"
      << "      \"run_name\": \"" << name << "\",\n"
      << "      \"run_type\": \"iteration\",\n"
      << "      \"iterations\": 1,\n"
      << "      \"real_time\": " << t.wall_ms << ",\n"
      << "      \"cpu_time\": " << t.wall_ms << ",\n"
      << "      \"time_unit\": \"ms\",\n"
      << "      \"items_per_second\": "
      << (secs > 0 ? static_cast<double>(t.events) / secs : 0.0) << ",\n"
      << "      \"replies\": " << t.result.replies << ",\n"
      << "      \"events\": " << t.events << ",\n"
      << "      \"cross_posts\": " << t.cross_posts << "\n"
      << "    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  banner("Simulation scale — sharded engine vs monolithic",
         "engine benchmark (DESIGN.md section 5f); not a paper figure");

  bool quick = false;
  bool skip_legacy = false;
  int shards = 8;
  int threads = 1;
  std::string tag;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    else if (arg == "--no-legacy") skip_legacy = true;
    else if (arg.rfind("--shards=", 0) == 0) shards = std::atoi(arg.c_str() + 9);
    else if (arg.rfind("--threads=", 0) == 0) threads = std::atoi(arg.c_str() + 10);
    else if (arg.rfind("--tag=", 0) == 0) tag = arg.substr(6);
  }

  const std::string csv_name = tag.empty() ? "sim_scale" : "sim_scale_" + tag;
  CsvWriter csv(csv_path(csv_name), /*echo_stdout=*/false);
  csv.header({"mode", "shards", "clients", "avg_mds_throughput_ops",
              "hit_rate", "forward_fraction", "mean_latency_ms", "replies",
              "failures", "events", "cross_posts"});

  Timing legacy;
  if (!skip_legacy) {
    std::cout << "  [legacy   1 engine ] running...\n";
    legacy = run_legacy(scale_config(1, 1, quick));
    std::cout << "  [legacy   1 engine ] " << fmt_double(legacy.wall_ms, 0)
              << " ms wall, " << legacy.events << " events, "
              << legacy.result.replies << " replies\n";
    csv_row(csv, "legacy", legacy);
  }

  std::cout << "  [sharded " << shards << " shards t" << threads
            << "] running...\n";
  const Timing sharded = run_sharded(scale_config(shards, threads, quick));
  std::cout << "  [sharded " << shards << " shards t" << threads << "] "
            << fmt_double(sharded.wall_ms, 0) << " ms wall, "
            << sharded.events << " events, " << sharded.result.replies
            << " replies, " << sharded.cross_posts << " cross-shard\n";
  csv_row(csv, "sharded", sharded);

  if (!skip_legacy) {
    const double speedup = sharded.wall_ms > 0
                               ? legacy.wall_ms / sharded.wall_ms
                               : 0.0;
    std::cout << "\n  speedup (legacy / sharded wall-clock): "
              << fmt_double(speedup, 2) << "x\n";

    const std::string json = results_dir() + "/BENCH_sim_scale.json";
    std::ofstream out(json);
    out << "{\n  \"context\": {\n"
        << "    \"executable\": \"sim_scale\",\n"
        << "    \"num_cpus\": 1,\n"
        << "    \"library_build_type\": \"release\",\n"
        << "    \"shards\": " << shards << ",\n"
        << "    \"threads\": " << threads << ",\n"
        << "    \"clients\": " << sharded.result.config.num_clients << "\n"
        << "  },\n  \"benchmarks\": [\n";
    json_row(out, "BM_SimScale/legacy_monolithic", legacy, false);
    json_row(out, "BM_SimScale/sharded_x" + std::to_string(shards) + "_t" +
                      std::to_string(threads),
             sharded, true);
    out << "  ]\n}\n";
    std::cout << "  JSON: " << json << "\n";
  }
  std::cout << "  CSV: " << csv_path(csv_name) << "\n";
  return 0;
}

// Simulation-engine scale ladder: sharded parallel core vs the monolithic
// engine, from the fig2-style 12 k-client shape up to a million clients.
//
// Not a paper figure — this measures the *simulator*, not the simulated
// system. Each rung runs the same dense configuration at a different
// client count / thread count and reports wall-clock, simulated events,
// and throughput (simulated ops per wall-second). Emits a
// google-benchmark-compatible JSON (BENCH_sim_scale.json, usable with
// tools/bench_compare.py) and a determinism CSV: the CSV carries only
// simulation-derived values, so two runs of the same rung — at any two
// thread counts, batching on or off — must produce byte-identical rows.
//
// Flags:
//   --quick          CI shape: 2 400 / 24 000 clients, short horizon
//   --ladder         all rungs (default runs the 12 k baseline rungs only)
//   --threads=N,M    thread sweep for the sharded rungs (default 1)
//   --no-legacy      skip the monolithic engine rung
//   --no-batching    disable same-destination delivery batching
//   --tag=NAME       suffix for the CSV file name
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/sharded_cluster.h"

using namespace mdsim;
using namespace mdsim::bench;

namespace {

struct Timing {
  std::string name;
  double wall_ms = 0.0;
  RunResult result;
  std::uint64_t events = 0;
  std::uint64_t cross_posts = 0;
  /// Simulated client operations completed per wall-clock second: the
  /// ladder's figure of merit (events/s flatters rungs with more
  /// bookkeeping traffic; replies/s is what the user of the simulator
  /// actually waits for).
  double ops_per_wall_sec() const {
    const double secs = wall_ms / 1e3;
    return secs > 0 ? static_cast<double>(result.replies) / secs : 0.0;
  }
};

/// One rung of the ladder: fig2 shape at n = 8 MDS per shard, client
/// population and horizon scaled. Bigger rungs run shorter simulated
/// horizons — the point is wall-clock per simulated op at scale, not a
/// long steady state.
SimConfig rung_config(int clients, int shards, int threads,
                      SimTime duration, SimTime warmup, bool batching) {
  SimConfig cfg = scaled_system_config(StrategyKind::kDynamicSubtree, 8);
  cfg.num_clients = clients;
  cfg.duration = duration;
  cfg.warmup = warmup;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.net.delivery_batching = batching;
  return cfg;
}

Timing run_legacy(const SimConfig& cfg, const std::string& name) {
  Timing t;
  t.name = name;
  const auto t0 = std::chrono::steady_clock::now();
  ClusterSim cluster(cfg);
  cluster.run();
  const auto t1 = std::chrono::steady_clock::now();
  t.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  Metrics& m = cluster.metrics();
  t.result.config = cfg;
  t.result.avg_mds_throughput = m.avg_mds_throughput(cluster.sim().now());
  t.result.hit_rate = m.cluster_hit_rate();
  t.result.forward_fraction = m.overall_forward_fraction();
  t.result.mean_latency_ms = m.client_latency().mean() * 1e3;
  t.result.replies = m.total_replies();
  t.result.failures = m.total_failures();
  t.events = cluster.sim().events_executed();
  return t;
}

Timing run_sharded(const SimConfig& cfg, const std::string& name) {
  Timing t;
  t.name = name;
  const auto t0 = std::chrono::steady_clock::now();
  ShardedClusterSim cluster(cfg);
  cluster.run();
  const auto t1 = std::chrono::steady_clock::now();
  t.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  t.result = cluster.result();
  t.events = cluster.engine().events_executed();
  t.cross_posts = cluster.engine().cross_posts();
  return t;
}

void csv_row(CsvWriter& csv, const Timing& t) {
  // Simulation-derived values only: wall-clock never enters the CSV, so
  // the file is a pure function of the simulation and must be
  // byte-identical across thread counts and invocations.
  csv.field(t.name)
      .field(std::int64_t{t.result.config.shards})
      .field(std::int64_t{t.result.config.num_clients})
      .field(t.result.avg_mds_throughput)
      .field(t.result.hit_rate)
      .field(t.result.forward_fraction)
      .field(t.result.mean_latency_ms)
      .field(t.result.replies)
      .field(t.result.failures)
      .field(t.events)
      .field(t.cross_posts);
  csv.end_row();
}

void json_row(std::ofstream& out, const Timing& t, bool last) {
  const double secs = t.wall_ms / 1e3;
  out << "    {\n"
      << "      \"name\": \"BM_SimScale/" << t.name << "\",\n"
      << "      \"run_name\": \"BM_SimScale/" << t.name << "\",\n"
      << "      \"run_type\": \"iteration\",\n"
      << "      \"iterations\": 1,\n"
      << "      \"real_time\": " << t.wall_ms << ",\n"
      << "      \"cpu_time\": " << t.wall_ms << ",\n"
      << "      \"time_unit\": \"ms\",\n"
      << "      \"items_per_second\": "
      << (secs > 0 ? static_cast<double>(t.events) / secs : 0.0) << ",\n"
      << "      \"ops_per_wall_sec\": " << t.ops_per_wall_sec() << ",\n"
      << "      \"clients\": " << t.result.config.num_clients << ",\n"
      << "      \"shards\": " << t.result.config.shards << ",\n"
      << "      \"threads\": " << t.result.config.threads << ",\n"
      << "      \"replies\": " << t.result.replies << ",\n"
      << "      \"events\": " << t.events << ",\n"
      << "      \"cross_posts\": " << t.cross_posts << "\n"
      << "    }" << (last ? "\n" : ",\n");
}

void announce(const Timing& t) {
  std::cout << "  [" << t.name << "] " << fmt_double(t.wall_ms, 0)
            << " ms wall, " << t.events << " events, " << t.result.replies
            << " replies";
  if (t.cross_posts != 0) std::cout << ", " << t.cross_posts << " cross-shard";
  std::cout << ", " << fmt_double(t.ops_per_wall_sec(), 0) << " ops/wall-s\n";
}

std::vector<int> parse_threads(const std::string& list) {
  std::vector<int> out;
  std::stringstream ss(list);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const int v = std::atoi(tok.c_str());
    if (v >= 1) out.push_back(v);
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  banner("Simulation scale ladder — sharded engine vs monolithic",
         "engine benchmark (DESIGN.md section 5f/5g); not a paper figure");

  bool quick = false;
  bool ladder = false;
  bool skip_legacy = false;
  bool batching = true;
  std::vector<int> threads{1};
  std::string tag;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    else if (arg == "--ladder") ladder = true;
    else if (arg == "--no-legacy") skip_legacy = true;
    else if (arg == "--no-batching") batching = false;
    else if (arg.rfind("--threads=", 0) == 0)
      threads = parse_threads(arg.substr(10));
    else if (arg.rfind("--tag=", 0) == 0) tag = arg.substr(6);
  }

  const std::string csv_name = tag.empty() ? "sim_scale" : "sim_scale_" + tag;
  CsvWriter csv(csv_path(csv_name), /*echo_stdout=*/false);
  csv.header({"mode", "shards", "clients", "avg_mds_throughput_ops",
              "hit_rate", "forward_fraction", "mean_latency_ms", "replies",
              "failures", "events", "cross_posts"});

  std::vector<Timing> rows;

  // Baseline rungs: the original 12 k-client shape (2 400 under --quick),
  // legacy engine then sharded at each requested thread count. These rung
  // names are stable across PRs — bench_compare.py diffs them against the
  // committed BENCH_sim_scale.json.
  const int base_clients = quick ? 2400 : 12000;
  const SimTime base_dur = quick ? 3 * kSecond : 6 * kSecond;
  const SimTime base_warm = quick ? kSecond : 2 * kSecond;

  if (!skip_legacy) {
    std::cout << "  [legacy_monolithic] running...\n";
    rows.push_back(run_legacy(
        rung_config(base_clients, 1, 1, base_dur, base_warm, batching),
        "legacy_monolithic"));
    announce(rows.back());
  }
  for (int t : threads) {
    const std::string name = "sharded_x8_t" + std::to_string(t);
    std::cout << "  [" << name << "] running...\n";
    rows.push_back(run_sharded(
        rung_config(base_clients, 8, t, base_dur, base_warm, batching),
        name));
    announce(rows.back());
  }

  // Ladder rungs: 10x and ~100x the baseline population on shorter
  // horizons (the figure of merit is wall-clock per simulated op, not
  // steady-state length). Quick mode climbs one decade for CI; the full
  // ladder tops out at a million clients.
  if (ladder) {
    struct Rung {
      int clients;
      SimTime duration;
      SimTime warmup;
    };
    std::vector<Rung> rungs;
    if (quick) {
      rungs.push_back({24000, kSecond, kSecond / 4});
    } else {
      rungs.push_back({120000, 2 * kSecond, kSecond / 2});
      rungs.push_back({1000000, kSecond / 2, kSecond / 8});
    }
    for (const Rung& r : rungs) {
      for (int t : threads) {
        const std::string name = "sharded_x8_t" + std::to_string(t) + "_c" +
                                 std::to_string(r.clients);
        std::cout << "  [" << name << "] running...\n";
        rows.push_back(run_sharded(
            rung_config(r.clients, 8, t, r.duration, r.warmup, batching),
            name));
        announce(rows.back());
      }
    }
  }

  for (const Timing& t : rows) csv_row(csv, t);

  // The JSON is only rewritten by full (non-quick, batching-on) runs:
  // quick CI sweeps and A/B toggles must not clobber the committed
  // baseline numbers.
  if (!quick && batching) {
    const std::string json = results_dir() + "/BENCH_sim_scale.json";
    std::ofstream out(json);
    out << "{\n  \"context\": {\n"
        << "    \"executable\": \"sim_scale\",\n"
        << "    \"num_cpus\": 1,\n"
        << "    \"library_build_type\": \"release\",\n"
        << "    \"ladder\": " << (ladder ? "true" : "false") << "\n"
        << "  },\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json_row(out, rows[i], i + 1 == rows.size());
    }
    out << "  ]\n}\n";
    std::cout << "  JSON: " << json << "\n";
  }
  std::cout << "  CSV: " << csv_path(csv_name) << "\n";
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/abl_balancer_policy.dir/abl_balancer_policy.cc.o"
  "CMakeFiles/abl_balancer_policy.dir/abl_balancer_policy.cc.o.d"
  "abl_balancer_policy"
  "abl_balancer_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_balancer_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_balancer_policy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_dirfrag.dir/abl_dirfrag.cc.o"
  "CMakeFiles/abl_dirfrag.dir/abl_dirfrag.cc.o.d"
  "abl_dirfrag"
  "abl_dirfrag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dirfrag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_dirfrag.
# This may be replaced when dependencies are built.

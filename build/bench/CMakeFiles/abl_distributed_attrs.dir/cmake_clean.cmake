file(REMOVE_RECURSE
  "CMakeFiles/abl_distributed_attrs.dir/abl_distributed_attrs.cc.o"
  "CMakeFiles/abl_distributed_attrs.dir/abl_distributed_attrs.cc.o.d"
  "abl_distributed_attrs"
  "abl_distributed_attrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_distributed_attrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

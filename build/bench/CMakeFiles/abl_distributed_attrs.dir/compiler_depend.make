# Empty compiler generated dependencies file for abl_distributed_attrs.
# This may be replaced when dependencies are built.

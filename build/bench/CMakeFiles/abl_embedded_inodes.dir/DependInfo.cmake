
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_embedded_inodes.cc" "bench/CMakeFiles/abl_embedded_inodes.dir/abl_embedded_inodes.cc.o" "gcc" "bench/CMakeFiles/abl_embedded_inodes.dir/abl_embedded_inodes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/mdsim_client.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mdsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mds/CMakeFiles/mdsim_mds.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/mdsim_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mdsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mdsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mdsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fstree/CMakeFiles/mdsim_fstree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

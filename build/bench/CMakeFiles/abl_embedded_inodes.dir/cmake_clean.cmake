file(REMOVE_RECURSE
  "CMakeFiles/abl_embedded_inodes.dir/abl_embedded_inodes.cc.o"
  "CMakeFiles/abl_embedded_inodes.dir/abl_embedded_inodes.cc.o.d"
  "abl_embedded_inodes"
  "abl_embedded_inodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_embedded_inodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_embedded_inodes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_nvram_journal.dir/abl_nvram_journal.cc.o"
  "CMakeFiles/abl_nvram_journal.dir/abl_nvram_journal.cc.o.d"
  "abl_nvram_journal"
  "abl_nvram_journal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_nvram_journal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

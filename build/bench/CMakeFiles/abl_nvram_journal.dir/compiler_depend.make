# Empty compiler generated dependencies file for abl_nvram_journal.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_replication_threshold.dir/abl_replication_threshold.cc.o"
  "CMakeFiles/abl_replication_threshold.dir/abl_replication_threshold.cc.o.d"
  "abl_replication_threshold"
  "abl_replication_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_replication_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

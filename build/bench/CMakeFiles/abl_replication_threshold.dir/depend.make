# Empty dependencies file for abl_replication_threshold.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3_prefix_cache.dir/fig3_prefix_cache.cc.o"
  "CMakeFiles/fig3_prefix_cache.dir/fig3_prefix_cache.cc.o.d"
  "fig3_prefix_cache"
  "fig3_prefix_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_prefix_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig4_cache_hit.dir/fig4_cache_hit.cc.o"
  "CMakeFiles/fig4_cache_hit.dir/fig4_cache_hit.cc.o.d"
  "fig4_cache_hit"
  "fig4_cache_hit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cache_hit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

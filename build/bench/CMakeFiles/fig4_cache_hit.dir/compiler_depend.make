# Empty compiler generated dependencies file for fig4_cache_hit.
# This may be replaced when dependencies are built.

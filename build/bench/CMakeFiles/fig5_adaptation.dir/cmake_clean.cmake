file(REMOVE_RECURSE
  "CMakeFiles/fig5_adaptation.dir/fig5_adaptation.cc.o"
  "CMakeFiles/fig5_adaptation.dir/fig5_adaptation.cc.o.d"
  "fig5_adaptation"
  "fig5_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

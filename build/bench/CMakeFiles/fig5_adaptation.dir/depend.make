# Empty dependencies file for fig5_adaptation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_forwarding.dir/fig6_forwarding.cc.o"
  "CMakeFiles/fig6_forwarding.dir/fig6_forwarding.cc.o.d"
  "fig6_forwarding"
  "fig6_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig6_forwarding.
# This may be replaced when dependencies are built.

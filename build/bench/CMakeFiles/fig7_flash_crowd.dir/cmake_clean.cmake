file(REMOVE_RECURSE
  "CMakeFiles/fig7_flash_crowd.dir/fig7_flash_crowd.cc.o"
  "CMakeFiles/fig7_flash_crowd.dir/fig7_flash_crowd.cc.o.d"
  "fig7_flash_crowd"
  "fig7_flash_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_flash_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7_flash_crowd.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/flash_crowd_tour.dir/flash_crowd_tour.cpp.o"
  "CMakeFiles/flash_crowd_tour.dir/flash_crowd_tour.cpp.o.d"
  "flash_crowd_tour"
  "flash_crowd_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_crowd_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for flash_crowd_tour.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mdsim_cli.dir/mdsim_cli.cpp.o"
  "CMakeFiles/mdsim_cli.dir/mdsim_cli.cpp.o.d"
  "mdsim_cli"
  "mdsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mdsim_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/namespace_inspector.dir/namespace_inspector.cpp.o"
  "CMakeFiles/namespace_inspector.dir/namespace_inspector.cpp.o.d"
  "namespace_inspector"
  "namespace_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namespace_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for namespace_inspector.
# This may be replaced when dependencies are built.

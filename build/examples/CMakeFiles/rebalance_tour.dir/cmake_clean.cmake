file(REMOVE_RECURSE
  "CMakeFiles/rebalance_tour.dir/rebalance_tour.cpp.o"
  "CMakeFiles/rebalance_tour.dir/rebalance_tour.cpp.o.d"
  "rebalance_tour"
  "rebalance_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebalance_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

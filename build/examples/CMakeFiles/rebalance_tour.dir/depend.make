# Empty dependencies file for rebalance_tour.
# This may be replaced when dependencies are built.

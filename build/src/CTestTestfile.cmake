# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("storage")
subdirs("fstree")
subdirs("cache")
subdirs("strategy")
subdirs("mds")
subdirs("client")
subdirs("workload")
subdirs("core")

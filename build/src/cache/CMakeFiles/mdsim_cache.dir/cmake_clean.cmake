file(REMOVE_RECURSE
  "CMakeFiles/mdsim_cache.dir/metadata_cache.cc.o"
  "CMakeFiles/mdsim_cache.dir/metadata_cache.cc.o.d"
  "libmdsim_cache.a"
  "libmdsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

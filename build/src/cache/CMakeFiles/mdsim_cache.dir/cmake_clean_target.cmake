file(REMOVE_RECURSE
  "libmdsim_cache.a"
)

# Empty dependencies file for mdsim_cache.
# This may be replaced when dependencies are built.

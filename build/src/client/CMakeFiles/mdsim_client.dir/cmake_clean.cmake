file(REMOVE_RECURSE
  "CMakeFiles/mdsim_client.dir/client.cc.o"
  "CMakeFiles/mdsim_client.dir/client.cc.o.d"
  "CMakeFiles/mdsim_client.dir/location_cache.cc.o"
  "CMakeFiles/mdsim_client.dir/location_cache.cc.o.d"
  "libmdsim_client.a"
  "libmdsim_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

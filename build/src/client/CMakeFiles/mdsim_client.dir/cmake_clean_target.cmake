file(REMOVE_RECURSE
  "libmdsim_client.a"
)

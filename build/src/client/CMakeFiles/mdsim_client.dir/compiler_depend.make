# Empty compiler generated dependencies file for mdsim_client.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mdsim_common.dir/csv.cc.o"
  "CMakeFiles/mdsim_common.dir/csv.cc.o.d"
  "CMakeFiles/mdsim_common.dir/rng.cc.o"
  "CMakeFiles/mdsim_common.dir/rng.cc.o.d"
  "CMakeFiles/mdsim_common.dir/stats.cc.o"
  "CMakeFiles/mdsim_common.dir/stats.cc.o.d"
  "CMakeFiles/mdsim_common.dir/table.cc.o"
  "CMakeFiles/mdsim_common.dir/table.cc.o.d"
  "libmdsim_common.a"
  "libmdsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmdsim_common.a"
)

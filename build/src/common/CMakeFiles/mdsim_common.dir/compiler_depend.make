# Empty compiler generated dependencies file for mdsim_common.
# This may be replaced when dependencies are built.

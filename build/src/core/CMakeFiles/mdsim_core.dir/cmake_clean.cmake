file(REMOVE_RECURSE
  "CMakeFiles/mdsim_core.dir/cluster.cc.o"
  "CMakeFiles/mdsim_core.dir/cluster.cc.o.d"
  "CMakeFiles/mdsim_core.dir/config.cc.o"
  "CMakeFiles/mdsim_core.dir/config.cc.o.d"
  "CMakeFiles/mdsim_core.dir/experiment.cc.o"
  "CMakeFiles/mdsim_core.dir/experiment.cc.o.d"
  "CMakeFiles/mdsim_core.dir/metrics.cc.o"
  "CMakeFiles/mdsim_core.dir/metrics.cc.o.d"
  "libmdsim_core.a"
  "libmdsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

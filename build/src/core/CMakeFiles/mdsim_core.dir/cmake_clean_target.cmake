file(REMOVE_RECURSE
  "libmdsim_core.a"
)

# Empty dependencies file for mdsim_core.
# This may be replaced when dependencies are built.

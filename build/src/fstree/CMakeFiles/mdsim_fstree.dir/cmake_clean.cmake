file(REMOVE_RECURSE
  "CMakeFiles/mdsim_fstree.dir/generator.cc.o"
  "CMakeFiles/mdsim_fstree.dir/generator.cc.o.d"
  "CMakeFiles/mdsim_fstree.dir/path.cc.o"
  "CMakeFiles/mdsim_fstree.dir/path.cc.o.d"
  "CMakeFiles/mdsim_fstree.dir/tree.cc.o"
  "CMakeFiles/mdsim_fstree.dir/tree.cc.o.d"
  "libmdsim_fstree.a"
  "libmdsim_fstree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_fstree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmdsim_fstree.a"
)

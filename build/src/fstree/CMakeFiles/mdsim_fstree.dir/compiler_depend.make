# Empty compiler generated dependencies file for mdsim_fstree.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mds/attr_updates.cc" "src/mds/CMakeFiles/mdsim_mds.dir/attr_updates.cc.o" "gcc" "src/mds/CMakeFiles/mdsim_mds.dir/attr_updates.cc.o.d"
  "/root/repo/src/mds/balancer.cc" "src/mds/CMakeFiles/mdsim_mds.dir/balancer.cc.o" "gcc" "src/mds/CMakeFiles/mdsim_mds.dir/balancer.cc.o.d"
  "/root/repo/src/mds/coherence.cc" "src/mds/CMakeFiles/mdsim_mds.dir/coherence.cc.o" "gcc" "src/mds/CMakeFiles/mdsim_mds.dir/coherence.cc.o.d"
  "/root/repo/src/mds/dirfrag.cc" "src/mds/CMakeFiles/mdsim_mds.dir/dirfrag.cc.o" "gcc" "src/mds/CMakeFiles/mdsim_mds.dir/dirfrag.cc.o.d"
  "/root/repo/src/mds/mds_node.cc" "src/mds/CMakeFiles/mdsim_mds.dir/mds_node.cc.o" "gcc" "src/mds/CMakeFiles/mdsim_mds.dir/mds_node.cc.o.d"
  "/root/repo/src/mds/migration.cc" "src/mds/CMakeFiles/mdsim_mds.dir/migration.cc.o" "gcc" "src/mds/CMakeFiles/mdsim_mds.dir/migration.cc.o.d"
  "/root/repo/src/mds/traffic_control.cc" "src/mds/CMakeFiles/mdsim_mds.dir/traffic_control.cc.o" "gcc" "src/mds/CMakeFiles/mdsim_mds.dir/traffic_control.cc.o.d"
  "/root/repo/src/mds/traversal.cc" "src/mds/CMakeFiles/mdsim_mds.dir/traversal.cc.o" "gcc" "src/mds/CMakeFiles/mdsim_mds.dir/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/strategy/CMakeFiles/mdsim_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mdsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mdsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mdsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fstree/CMakeFiles/mdsim_fstree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mdsim_mds.dir/attr_updates.cc.o"
  "CMakeFiles/mdsim_mds.dir/attr_updates.cc.o.d"
  "CMakeFiles/mdsim_mds.dir/balancer.cc.o"
  "CMakeFiles/mdsim_mds.dir/balancer.cc.o.d"
  "CMakeFiles/mdsim_mds.dir/coherence.cc.o"
  "CMakeFiles/mdsim_mds.dir/coherence.cc.o.d"
  "CMakeFiles/mdsim_mds.dir/dirfrag.cc.o"
  "CMakeFiles/mdsim_mds.dir/dirfrag.cc.o.d"
  "CMakeFiles/mdsim_mds.dir/mds_node.cc.o"
  "CMakeFiles/mdsim_mds.dir/mds_node.cc.o.d"
  "CMakeFiles/mdsim_mds.dir/migration.cc.o"
  "CMakeFiles/mdsim_mds.dir/migration.cc.o.d"
  "CMakeFiles/mdsim_mds.dir/traffic_control.cc.o"
  "CMakeFiles/mdsim_mds.dir/traffic_control.cc.o.d"
  "CMakeFiles/mdsim_mds.dir/traversal.cc.o"
  "CMakeFiles/mdsim_mds.dir/traversal.cc.o.d"
  "libmdsim_mds.a"
  "libmdsim_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmdsim_mds.a"
)

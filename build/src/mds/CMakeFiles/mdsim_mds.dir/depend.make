# Empty dependencies file for mdsim_mds.
# This may be replaced when dependencies are built.

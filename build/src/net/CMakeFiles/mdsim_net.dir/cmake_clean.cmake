file(REMOVE_RECURSE
  "CMakeFiles/mdsim_net.dir/network.cc.o"
  "CMakeFiles/mdsim_net.dir/network.cc.o.d"
  "libmdsim_net.a"
  "libmdsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmdsim_net.a"
)

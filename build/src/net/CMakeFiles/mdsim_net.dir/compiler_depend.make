# Empty compiler generated dependencies file for mdsim_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mdsim_sim.dir/queue_server.cc.o"
  "CMakeFiles/mdsim_sim.dir/queue_server.cc.o.d"
  "CMakeFiles/mdsim_sim.dir/simulation.cc.o"
  "CMakeFiles/mdsim_sim.dir/simulation.cc.o.d"
  "libmdsim_sim.a"
  "libmdsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

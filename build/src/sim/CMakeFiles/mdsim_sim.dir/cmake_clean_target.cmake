file(REMOVE_RECURSE
  "libmdsim_sim.a"
)

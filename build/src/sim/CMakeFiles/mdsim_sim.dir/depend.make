# Empty dependencies file for mdsim_sim.
# This may be replaced when dependencies are built.

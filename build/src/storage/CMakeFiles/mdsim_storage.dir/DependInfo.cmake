
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/anchor_table.cc" "src/storage/CMakeFiles/mdsim_storage.dir/anchor_table.cc.o" "gcc" "src/storage/CMakeFiles/mdsim_storage.dir/anchor_table.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/storage/CMakeFiles/mdsim_storage.dir/btree.cc.o" "gcc" "src/storage/CMakeFiles/mdsim_storage.dir/btree.cc.o.d"
  "/root/repo/src/storage/disk_model.cc" "src/storage/CMakeFiles/mdsim_storage.dir/disk_model.cc.o" "gcc" "src/storage/CMakeFiles/mdsim_storage.dir/disk_model.cc.o.d"
  "/root/repo/src/storage/journal.cc" "src/storage/CMakeFiles/mdsim_storage.dir/journal.cc.o" "gcc" "src/storage/CMakeFiles/mdsim_storage.dir/journal.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/storage/CMakeFiles/mdsim_storage.dir/object_store.cc.o" "gcc" "src/storage/CMakeFiles/mdsim_storage.dir/object_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mdsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fstree/CMakeFiles/mdsim_fstree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

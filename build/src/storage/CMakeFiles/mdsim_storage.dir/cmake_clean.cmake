file(REMOVE_RECURSE
  "CMakeFiles/mdsim_storage.dir/anchor_table.cc.o"
  "CMakeFiles/mdsim_storage.dir/anchor_table.cc.o.d"
  "CMakeFiles/mdsim_storage.dir/btree.cc.o"
  "CMakeFiles/mdsim_storage.dir/btree.cc.o.d"
  "CMakeFiles/mdsim_storage.dir/disk_model.cc.o"
  "CMakeFiles/mdsim_storage.dir/disk_model.cc.o.d"
  "CMakeFiles/mdsim_storage.dir/journal.cc.o"
  "CMakeFiles/mdsim_storage.dir/journal.cc.o.d"
  "CMakeFiles/mdsim_storage.dir/object_store.cc.o"
  "CMakeFiles/mdsim_storage.dir/object_store.cc.o.d"
  "libmdsim_storage.a"
  "libmdsim_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

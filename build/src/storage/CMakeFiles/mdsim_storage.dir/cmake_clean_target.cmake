file(REMOVE_RECURSE
  "libmdsim_storage.a"
)

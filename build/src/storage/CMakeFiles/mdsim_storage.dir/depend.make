# Empty dependencies file for mdsim_storage.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/strategy/lazy_hybrid.cc" "src/strategy/CMakeFiles/mdsim_strategy.dir/lazy_hybrid.cc.o" "gcc" "src/strategy/CMakeFiles/mdsim_strategy.dir/lazy_hybrid.cc.o.d"
  "/root/repo/src/strategy/partition.cc" "src/strategy/CMakeFiles/mdsim_strategy.dir/partition.cc.o" "gcc" "src/strategy/CMakeFiles/mdsim_strategy.dir/partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fstree/CMakeFiles/mdsim_fstree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

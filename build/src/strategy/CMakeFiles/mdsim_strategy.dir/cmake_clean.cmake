file(REMOVE_RECURSE
  "CMakeFiles/mdsim_strategy.dir/lazy_hybrid.cc.o"
  "CMakeFiles/mdsim_strategy.dir/lazy_hybrid.cc.o.d"
  "CMakeFiles/mdsim_strategy.dir/partition.cc.o"
  "CMakeFiles/mdsim_strategy.dir/partition.cc.o.d"
  "libmdsim_strategy.a"
  "libmdsim_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmdsim_strategy.a"
)

# Empty dependencies file for mdsim_strategy.
# This may be replaced when dependencies are built.

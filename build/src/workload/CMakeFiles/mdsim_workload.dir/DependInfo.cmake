
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/flash_crowd.cc" "src/workload/CMakeFiles/mdsim_workload.dir/flash_crowd.cc.o" "gcc" "src/workload/CMakeFiles/mdsim_workload.dir/flash_crowd.cc.o.d"
  "/root/repo/src/workload/general.cc" "src/workload/CMakeFiles/mdsim_workload.dir/general.cc.o" "gcc" "src/workload/CMakeFiles/mdsim_workload.dir/general.cc.o.d"
  "/root/repo/src/workload/op_mix.cc" "src/workload/CMakeFiles/mdsim_workload.dir/op_mix.cc.o" "gcc" "src/workload/CMakeFiles/mdsim_workload.dir/op_mix.cc.o.d"
  "/root/repo/src/workload/scientific.cc" "src/workload/CMakeFiles/mdsim_workload.dir/scientific.cc.o" "gcc" "src/workload/CMakeFiles/mdsim_workload.dir/scientific.cc.o.d"
  "/root/repo/src/workload/shifting.cc" "src/workload/CMakeFiles/mdsim_workload.dir/shifting.cc.o" "gcc" "src/workload/CMakeFiles/mdsim_workload.dir/shifting.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/mdsim_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/mdsim_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fstree/CMakeFiles/mdsim_fstree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/mdsim_workload.dir/flash_crowd.cc.o"
  "CMakeFiles/mdsim_workload.dir/flash_crowd.cc.o.d"
  "CMakeFiles/mdsim_workload.dir/general.cc.o"
  "CMakeFiles/mdsim_workload.dir/general.cc.o.d"
  "CMakeFiles/mdsim_workload.dir/op_mix.cc.o"
  "CMakeFiles/mdsim_workload.dir/op_mix.cc.o.d"
  "CMakeFiles/mdsim_workload.dir/scientific.cc.o"
  "CMakeFiles/mdsim_workload.dir/scientific.cc.o.d"
  "CMakeFiles/mdsim_workload.dir/shifting.cc.o"
  "CMakeFiles/mdsim_workload.dir/shifting.cc.o.d"
  "CMakeFiles/mdsim_workload.dir/trace.cc.o"
  "CMakeFiles/mdsim_workload.dir/trace.cc.o.d"
  "libmdsim_workload.a"
  "libmdsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

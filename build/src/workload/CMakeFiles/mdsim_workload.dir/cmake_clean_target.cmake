file(REMOVE_RECURSE
  "libmdsim_workload.a"
)

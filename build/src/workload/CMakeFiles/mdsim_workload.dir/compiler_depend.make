# Empty compiler generated dependencies file for mdsim_workload.
# This may be replaced when dependencies are built.

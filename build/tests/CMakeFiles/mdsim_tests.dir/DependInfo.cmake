
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_attr_updates.cc" "tests/CMakeFiles/mdsim_tests.dir/test_attr_updates.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_attr_updates.cc.o.d"
  "/root/repo/tests/test_btree.cc" "tests/CMakeFiles/mdsim_tests.dir/test_btree.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_btree.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/mdsim_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_client.cc" "tests/CMakeFiles/mdsim_tests.dir/test_client.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_client.cc.o.d"
  "/root/repo/tests/test_cluster.cc" "tests/CMakeFiles/mdsim_tests.dir/test_cluster.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_cluster.cc.o.d"
  "/root/repo/tests/test_coherence.cc" "tests/CMakeFiles/mdsim_tests.dir/test_coherence.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_coherence.cc.o.d"
  "/root/repo/tests/test_failover.cc" "tests/CMakeFiles/mdsim_tests.dir/test_failover.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_failover.cc.o.d"
  "/root/repo/tests/test_fstree.cc" "tests/CMakeFiles/mdsim_tests.dir/test_fstree.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_fstree.cc.o.d"
  "/root/repo/tests/test_lazy_hybrid.cc" "tests/CMakeFiles/mdsim_tests.dir/test_lazy_hybrid.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_lazy_hybrid.cc.o.d"
  "/root/repo/tests/test_mds.cc" "tests/CMakeFiles/mdsim_tests.dir/test_mds.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_mds.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/mdsim_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_migration.cc" "tests/CMakeFiles/mdsim_tests.dir/test_migration.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_migration.cc.o.d"
  "/root/repo/tests/test_net.cc" "tests/CMakeFiles/mdsim_tests.dir/test_net.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_net.cc.o.d"
  "/root/repo/tests/test_partition.cc" "tests/CMakeFiles/mdsim_tests.dir/test_partition.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_partition.cc.o.d"
  "/root/repo/tests/test_protocol_edge.cc" "tests/CMakeFiles/mdsim_tests.dir/test_protocol_edge.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_protocol_edge.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/mdsim_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/mdsim_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/mdsim_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_storage.cc" "tests/CMakeFiles/mdsim_tests.dir/test_storage.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_storage.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/mdsim_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/mdsim_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_traffic_control.cc" "tests/CMakeFiles/mdsim_tests.dir/test_traffic_control.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_traffic_control.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/mdsim_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/mdsim_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/mdsim_client.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mdsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mds/CMakeFiles/mdsim_mds.dir/DependInfo.cmake"
  "/root/repo/build/src/strategy/CMakeFiles/mdsim_strategy.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mdsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mdsim_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mdsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fstree/CMakeFiles/mdsim_fstree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

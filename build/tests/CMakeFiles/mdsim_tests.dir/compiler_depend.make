# Empty compiler generated dependencies file for mdsim_tests.
# This may be replaced when dependencies are built.

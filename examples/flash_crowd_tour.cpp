// Flash-crowd tour: watch traffic control defeat a thundering herd.
//
// Thousands of clients open the same file at the same instant (a typical
// scientific-computing pattern, paper section 5.4). We run the same crowd
// twice — traffic control off, then on — and narrate what each MDS node
// experienced.
//
//   ./build/examples/flash_crowd_tour [num_clients]
#include <iostream>
#include <string>

#include "common/csv.h"
#include "common/table.h"
#include "core/cluster.h"

using namespace mdsim;

namespace {

void run_crowd(bool traffic_control, int clients) {
  SimConfig cfg = flash_crowd_config(traffic_control);
  cfg.num_clients = clients;
  ClusterSim cluster(cfg);
  cluster.run();

  FsNode* target =
      static_cast<FlashCrowdWorkload&>(cluster.workload()).target();
  std::cout << "\n--- crowd of " << clients << " clients on "
            << target->path() << " (traffic control "
            << (traffic_control ? "ON" : "OFF") << ") ---\n";

  Metrics& m = cluster.metrics();
  const SimTime t0 = cfg.flash.start;
  const SimTime t1 = t0 + cfg.flash.duration;

  ConsoleTable table({"mds", "replies", "forwards", "has replica",
                      "thinks replicated"});
  for (int i = 0; i < cluster.num_mds(); ++i) {
    MdsNode& node = cluster.mds(i);
    table.add_row(
        {std::to_string(i), std::to_string(node.stats().replies_sent),
         std::to_string(node.stats().forwards),
         node.cache().peek(target->ino()) != nullptr ? "yes" : "no",
         node.is_replicated_everywhere(target->ino()) ? "yes" : "no"});
  }
  table.print("Per-node view after the crowd");
  std::cout << "  peak replies/s  : "
            << fmt_double(m.reply_rate().max_value(), 0) << "\n"
            << "  peak forwards/s : "
            << fmt_double(m.forward_rate().max_value(), 0) << "\n"
            << "  crowd mean rate : "
            << fmt_double(m.reply_rate().mean_in(t0, t1), 0)
            << " replies/s\n"
            << "  client latency  : "
            << fmt_double(m.client_latency().mean() * 1e3, 1) << " ms mean, "
            << fmt_double(m.client_latency().max() * 1e3, 1) << " ms max\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4000;
  std::cout << "Flash crowd demo: " << clients
            << " clients simultaneously open one file on a 10-node "
               "dynamic-subtree MDS cluster.\n"
            << "Without traffic control every request funnels to the "
               "file's authority; with it, the authority detects the "
               "crowd by its popularity counter and replicates the "
               "metadata everywhere (paper section 4.4).\n";
  run_crowd(false, clients);
  run_crowd(true, clients);
  return 0;
}

// mdsim_cli: run an arbitrary cluster simulation from the command line.
//
//   ./build/examples/mdsim_cli [options]
//
// Options (all optional):
//   --strategy dynamic|static|dirhash|filehash|lazyhybrid
//   --mds N            cluster size
//   --clients N        client count
//   --users N          home directories in the namespace
//   --nodes-per-user N namespace size knob
//   --cache N          per-MDS cache capacity (items)
//   --duration S       simulated seconds
//   --warmup S         statistics reset point (seconds)
//   --seed N
//   --workload general|scientific|flash|shift
//   --no-traffic-control
//   --no-dirfrag
//   --fail-at S --fail-node K   kill an MDS mid-run
//   --csv PATH         write the per-sample throughput series
#include <cstring>
#include <iostream>
#include <string>

#include "common/csv.h"
#include "common/table.h"
#include "core/cluster.h"

using namespace mdsim;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cout << "usage: " << argv0
            << " [--strategy S] [--mds N] [--clients N] [--users N]\n"
               "  [--nodes-per-user N] [--cache N] [--duration S]\n"
               "  [--warmup S] [--seed N] [--workload W]\n"
               "  [--no-traffic-control] [--no-dirfrag]\n"
               "  [--fail-at S --fail-node K] [--csv PATH]\n";
  std::exit(2);
}

StrategyKind parse_strategy(const std::string& s, const char* argv0) {
  if (s == "dynamic") return StrategyKind::kDynamicSubtree;
  if (s == "static") return StrategyKind::kStaticSubtree;
  if (s == "dirhash") return StrategyKind::kDirHash;
  if (s == "filehash") return StrategyKind::kFileHash;
  if (s == "lazyhybrid") return StrategyKind::kLazyHybrid;
  std::cerr << "unknown strategy: " << s << "\n";
  usage(argv0);
}

WorkloadKind parse_workload(const std::string& s, const char* argv0) {
  if (s == "general") return WorkloadKind::kGeneral;
  if (s == "scientific") return WorkloadKind::kScientific;
  if (s == "flash") return WorkloadKind::kFlashCrowd;
  if (s == "shift") return WorkloadKind::kShifting;
  std::cerr << "unknown workload: " << s << "\n";
  usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  SimConfig cfg;
  cfg.num_mds = 4;
  cfg.num_clients = 200;
  cfg.fs.num_users = 64;
  cfg.fs.nodes_per_user = 400;
  cfg.duration = 15 * kSecond;
  cfg.warmup = 3 * kSecond;

  double fail_at = -1.0;
  int fail_node = 1;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--strategy") {
      cfg.strategy = parse_strategy(next(), argv[0]);
    } else if (arg == "--mds") {
      cfg.num_mds = std::stoi(next());
    } else if (arg == "--clients") {
      cfg.num_clients = std::stoi(next());
    } else if (arg == "--users") {
      cfg.fs.num_users = std::stoi(next());
    } else if (arg == "--nodes-per-user") {
      cfg.fs.nodes_per_user = std::stoi(next());
    } else if (arg == "--cache") {
      cfg.mds.cache_capacity = static_cast<std::size_t>(std::stoul(next()));
      cfg.mds.journal_capacity = cfg.mds.cache_capacity;
    } else if (arg == "--duration") {
      cfg.duration = from_seconds(std::stod(next()));
    } else if (arg == "--warmup") {
      cfg.warmup = from_seconds(std::stod(next()));
    } else if (arg == "--seed") {
      cfg.seed = std::stoull(next());
      cfg.fs.seed = cfg.seed;
    } else if (arg == "--workload") {
      cfg.workload = parse_workload(next(), argv[0]);
    } else if (arg == "--no-traffic-control") {
      cfg.mds.traffic_control_enabled = false;
    } else if (arg == "--no-dirfrag") {
      cfg.mds.dirfrag_enabled = false;
    } else if (arg == "--fail-at") {
      fail_at = std::stod(next());
    } else if (arg == "--fail-node") {
      fail_node = std::stoi(next());
    } else if (arg == "--csv") {
      csv_path = next();
    } else {
      usage(argv[0]);
    }
  }
  if (cfg.workload == WorkloadKind::kScientific && cfg.fs.num_projects == 0) {
    cfg.fs.num_projects = 2;
  }

  std::cout << "Running " << cfg.label() << " for "
            << to_seconds(cfg.duration) << "s (seed " << cfg.seed
            << ")...\n";
  ClusterSim cluster(cfg);
  if (fail_at > 0) {
    cluster.run_until(from_seconds(fail_at));
    std::cout << "Failing MDS " << fail_node << " at t=" << fail_at
              << "s\n";
    cluster.fail_mds(fail_node);
  }
  cluster.run();

  Metrics& m = cluster.metrics();
  const SimTime now = cluster.sim().now();
  std::cout << "\nResults (post-warmup):\n"
            << "  avg per-MDS throughput : " << m.avg_mds_throughput(now)
            << " ops/sec\n"
            << "  cache hit rate         : " << m.cluster_hit_rate() << "\n"
            << "  prefix cache fraction  : " << m.mean_prefix_fraction()
            << "\n"
            << "  forwarded fraction     : " << m.overall_forward_fraction()
            << "\n"
            << "  mean client latency    : "
            << m.client_latency().mean() * 1e3 << " ms\n"
            << "  total replies          : " << m.total_replies() << "\n";

  ConsoleTable table({"mds", "replies", "forwards", "cache", "hit%",
                      "migr in/out", "state"});
  for (int i = 0; i < cluster.num_mds(); ++i) {
    MdsNode& node = cluster.mds(i);
    table.add_row({std::to_string(i),
                   std::to_string(node.stats().replies_sent),
                   std::to_string(node.stats().forwards),
                   std::to_string(node.cache().size()),
                   fmt_double(node.cache().stats().hit_rate() * 100, 1),
                   std::to_string(node.stats().migrations_in) + "/" +
                       std::to_string(node.stats().migrations_out),
                   node.failed() ? "FAILED" : "up"});
  }
  table.print("Per-MDS state");

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path);
    csv.header({"time_s", "avg_tput", "min_tput", "max_tput",
                "forward_fraction"});
    const auto& avg = m.avg_throughput().points();
    const auto& mn = m.min_throughput().points();
    const auto& mx = m.max_throughput().points();
    const auto& fw = m.forward_fraction().points();
    for (std::size_t i = 0; i < avg.size(); ++i) {
      csv.field(to_seconds(avg[i].time))
          .field(avg[i].value)
          .field(mn[i].value)
          .field(mx[i].value)
          .field(fw[i].value);
      csv.end_row();
    }
    std::cout << "\nTime series written to " << csv_path << "\n";
  }
  return 0;
}

// Namespace inspector: generate a synthetic file-system snapshot, print
// its shape, and explore how the partitioning strategies would carve it
// up — without running any simulation.
//
//   ./build/examples/namespace_inspector [num_users] [nodes_per_user] [seed]
#include <iostream>
#include <map>
#include <string>

#include "common/csv.h"
#include "common/table.h"
#include "fstree/generator.h"
#include "storage/object_store.h"
#include "strategy/partition.h"

using namespace mdsim;

int main(int argc, char** argv) {
  NamespaceParams params;
  params.num_users = argc > 1 ? std::atoi(argv[1]) : 64;
  params.nodes_per_user = argc > 2 ? std::atoi(argv[2]) : 400;
  params.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  params.num_projects = 1;
  params.project_dir_files = 2000;

  FsTree tree;
  NamespaceInfo info = generate_namespace(tree, params);
  const NamespaceShape shape = measure_shape(tree);

  std::cout << "Generated namespace (seed " << params.seed << "):\n"
            << "  files            : " << shape.files << "\n"
            << "  directories      : " << shape.dirs << "\n"
            << "  mean depth       : " << fmt_double(shape.mean_depth, 2)
            << "\n"
            << "  max depth        : " << shape.max_depth << "\n"
            << "  mean dir size    : " << fmt_double(shape.mean_dir_size, 1)
            << " entries\n"
            << "  largest dir      : " << shape.max_dir_size << " entries\n"
            << "  hard links       : " << tree.remote_links().size() << "\n";

  // Show a sample path and its B+tree directory object.
  FsNode* sample = tree.files()[tree.files().size() / 3];
  std::cout << "\nSample file: " << sample->path() << " (ino "
            << sample->ino() << ", depth " << sample->depth() << ")\n";
  ObjectStore store;
  FsNode* dir = sample->parent();
  std::cout << "Its directory object: " << dir->child_count()
            << " dentries in " << store.full_fetch_nodes(dir)
            << " B+tree nodes (one disk transaction fetches all of them, "
               "embedded inodes included)\n";

  // How would each strategy distribute this namespace over 8 servers?
  constexpr int kMds = 8;
  ConsoleTable table({"strategy", "min items", "max items", "imbalance",
                      "sample file lives on"});
  for (StrategyKind k :
       {StrategyKind::kStaticSubtree, StrategyKind::kDirHash,
        StrategyKind::kFileHash, StrategyKind::kLazyHybrid}) {
    auto partition = make_partitioner(k, kMds, tree);
    std::map<MdsId, std::uint64_t> counts;
    for (MdsId m = 0; m < kMds; ++m) counts[m] = 0;
    tree.visit([&](FsNode* n) { ++counts[partition->authority_of(n)]; });
    std::uint64_t mn = ~0ULL, mx = 0;
    for (const auto& [_, c] : counts) {
      mn = std::min(mn, c);
      mx = std::max(mx, c);
    }
    table.add_row({strategy_name(k), std::to_string(mn), std::to_string(mx),
                   fmt_double(static_cast<double>(mx) /
                                  std::max<std::uint64_t>(1, mn),
                              2),
                   "mds " + std::to_string(partition->authority_of(sample))});
  }
  table.print("Metadata distribution across 8 MDS nodes");
  std::cout << "\nSubtree partitions are coarse (hash a few top dirs, so "
               "imbalance follows subtree sizes); file hashing is almost "
               "perfectly uniform — the paper's trade-off between balance "
               "and locality in one table.\n";
  return 0;
}

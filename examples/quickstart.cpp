// Quickstart: build a small MDS cluster with dynamic subtree partitioning,
// run a general-purpose workload against it, and print what happened.
//
//   ./build/examples/quickstart [strategy] [num_mds] [num_clients]
//
// strategy: dynamic | static | dirhash | filehash | lazyhybrid
#include <cstring>
#include <iostream>
#include <string>

#include "common/csv.h"
#include "common/table.h"
#include "core/cluster.h"

using namespace mdsim;

namespace {

StrategyKind parse_strategy(const std::string& s) {
  if (s == "static") return StrategyKind::kStaticSubtree;
  if (s == "dirhash") return StrategyKind::kDirHash;
  if (s == "filehash") return StrategyKind::kFileHash;
  if (s == "lazyhybrid") return StrategyKind::kLazyHybrid;
  return StrategyKind::kDynamicSubtree;
}

}  // namespace

int main(int argc, char** argv) {
  SimConfig cfg;
  cfg.strategy = argc > 1 ? parse_strategy(argv[1])
                          : StrategyKind::kDynamicSubtree;
  cfg.num_mds = argc > 2 ? std::atoi(argv[2]) : 4;
  cfg.num_clients = argc > 3 ? std::atoi(argv[3]) : 200;
  cfg.fs.num_users = 16 * cfg.num_mds;
  cfg.fs.nodes_per_user = 400;
  cfg.duration = 10 * kSecond;
  cfg.warmup = 2 * kSecond;

  std::cout << "Building a " << cfg.num_mds << "-node "
            << strategy_name(cfg.strategy) << " metadata cluster, "
            << cfg.num_clients << " clients...\n";

  ClusterSim cluster(cfg);
  cluster.run();

  const NamespaceShape shape = measure_shape(cluster.tree());
  std::cout << "\nNamespace: " << shape.files << " files, " << shape.dirs
            << " dirs, mean depth " << shape.mean_depth << ", largest dir "
            << shape.max_dir_size << " entries\n";

  Metrics& m = cluster.metrics();
  const SimTime now = cluster.sim().now();
  std::cout << "\nCluster results (after " << to_seconds(cfg.warmup)
            << "s warmup):\n"
            << "  avg per-MDS throughput : " << m.avg_mds_throughput(now)
            << " ops/sec\n"
            << "  cache hit rate         : " << m.cluster_hit_rate() << "\n"
            << "  prefix cache fraction  : " << m.mean_prefix_fraction()
            << "\n"
            << "  forwarded fraction     : " << m.overall_forward_fraction()
            << "\n"
            << "  mean client latency    : "
            << m.client_latency().mean() * 1e3 << " ms\n"
            << "  total replies          : " << m.total_replies() << "\n"
            << "  failed ops             : " << m.total_failures() << "\n"
            << "  fragmented dirs        : "
            << cluster.dirfrag().fragmented_count() << " (events "
            << cluster.dirfrag().fragment_events << "/"
            << cluster.dirfrag().merge_events << ")\n";

  ConsoleTable table({"mds", "replies", "forwards", "cache", "prefix%",
                      "hit%", "migr in/out"});
  for (int i = 0; i < cluster.num_mds(); ++i) {
    MdsNode& node = cluster.mds(i);
    const MdsStats& s = node.stats();
    table.add_row(
        {std::to_string(i), std::to_string(s.replies_sent),
         std::to_string(s.forwards), std::to_string(node.cache().size()),
         fmt_double(node.cache().prefix_fraction() * 100, 1),
         fmt_double(node.cache().stats().hit_rate() * 100, 1),
         std::to_string(s.migrations_in) + "/" +
             std::to_string(s.migrations_out)});
  }
  table.print("Per-MDS state");
  return 0;
}

// Rebalance tour: watch dynamic subtree partitioning absorb a workload
// shift (the figure 5 scenario), narrated step by step.
//
// Half the clients move their activity into directories initially served
// by a single MDS and start creating files there. We sample the cluster
// every few seconds and print who owns what and who is doing the work.
//
//   ./build/examples/rebalance_tour
#include <iostream>

#include "common/csv.h"
#include "common/table.h"
#include "core/cluster.h"

using namespace mdsim;

namespace {

void snapshot(ClusterSim& cluster, const char* label) {
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster.partition());
  std::cout << "\n--- " << label << " (t = "
            << fmt_double(to_seconds(cluster.sim().now()), 0) << "s) ---\n";
  ConsoleTable table(
      {"mds", "load", "delegations", "imported", "cache", "migr in/out"});
  for (int i = 0; i < cluster.num_mds(); ++i) {
    MdsNode& node = cluster.mds(i);
    table.add_row({std::to_string(i), fmt_double(node.current_load(), 0),
                   std::to_string(subtree->delegations_of(i).size()),
                   std::to_string(node.imported_subtrees().size()),
                   std::to_string(node.cache().size()),
                   std::to_string(node.stats().migrations_in) + "/" +
                       std::to_string(node.stats().migrations_out)});
  }
  table.print();
}

}  // namespace

int main() {
  SimConfig cfg = shift_config(StrategyKind::kDynamicSubtree);
  cfg.num_mds = 6;
  cfg.fs.num_users = 144;
  cfg.num_clients = 360;
  cfg.shifting.shift_at = 10 * kSecond;
  cfg.duration = 40 * kSecond;

  std::cout << "Dynamic subtree rebalancing demo: " << cfg.num_clients
            << " clients on " << cfg.num_mds << " MDS nodes.\n"
            << "At t=" << to_seconds(cfg.shifting.shift_at)
            << "s, half the clients move into MDS "
            << cfg.shifting.hot_mds
            << "'s territory and start creating files (paper fig. 5).\n";

  ClusterSim cluster(cfg);
  cluster.run_until(cfg.shifting.shift_at - kSecond);
  snapshot(cluster, "steady state, before the shift");

  cluster.run_until(cfg.shifting.shift_at + 3 * kSecond);
  snapshot(cluster, "shift just happened: one node is hot");

  cluster.run_until(cfg.shifting.shift_at + 15 * kSecond);
  snapshot(cluster, "balancer has been re-delegating subtrees");

  cluster.run_until(cfg.duration);
  snapshot(cluster, "end of run");

  Metrics& m = cluster.metrics();
  const SimTime shift = cfg.shifting.shift_at;
  std::cout << "\nAverage per-MDS throughput: before shift "
            << fmt_double(m.avg_throughput().mean_in(cfg.warmup, shift), 0)
            << " ops/s, turbulence window "
            << fmt_double(
                   m.avg_throughput().mean_in(shift, shift + 8 * kSecond), 0)
            << ", after adaptation "
            << fmt_double(m.avg_throughput().mean_in(shift + 15 * kSecond,
                                                     cfg.duration,
                                                     /*include_end=*/true),
                          0)
            << " ops/s\n"
            << "Compare with StaticSubtree via bench/fig5_adaptation.\n";
  return 0;
}

// Trace record & replay demo (paper section 7, future work): capture the
// exact metadata operation stream of a live run, persist it with its
// namespace seed, then replay it — against a different partitioning
// strategy — and compare apples to apples on identical request streams.
//
//   ./build/examples/trace_replay [trace.csv]
#include <iostream>
#include <string>

#include "common/csv.h"
#include "common/table.h"
#include "core/cluster.h"
#include "workload/trace.h"

using namespace mdsim;

namespace {

constexpr std::uint64_t kSeed = 1234;

SimConfig base_config(StrategyKind strategy) {
  SimConfig cfg;
  cfg.strategy = strategy;
  cfg.num_mds = 4;
  cfg.num_clients = 0;  // clients are attached by hand below
  cfg.seed = kSeed;
  cfg.fs.seed = kSeed;
  cfg.fs.num_users = 32;
  cfg.fs.nodes_per_user = 250;
  cfg.warmup = 0;
  return cfg;
}

struct ReplayResult {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  double mean_latency_ms = 0.0;
  std::size_t skipped = 0;
};

ReplayResult replay_on(StrategyKind strategy, const Trace& trace) {
  ClusterSim cluster(base_config(strategy));
  cluster.run_until(0);  // build the matching snapshot (same seed)
  TraceWorkload replay(cluster.tree(), trace);

  std::vector<std::unique_ptr<Client>> clients;
  for (ClientId c = 0; c < trace.num_clients(); ++c) {
    clients.push_back(std::make_unique<Client>(
        cluster.sim(), cluster.network(), cluster.tree(), replay,
        cluster.partition(), cluster.dirfrag(), c, cluster.num_mds(),
        kSeed));
    clients.back()->set_uid(100 + static_cast<std::uint32_t>(c % 32));
    clients.back()->start();
  }
  cluster.sim().run_until(10 * 60 * kSecond);  // run the trace dry

  ReplayResult r;
  Summary lat;
  for (auto& c : clients) {
    r.completed += c->stats().ops_completed;
    r.failed += c->stats().ops_failed;
    lat.merge(c->stats().latency_seconds);
  }
  r.mean_latency_ms = lat.mean() * 1e3;
  r.skipped = replay.skipped();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path =
      argc > 1 ? argv[1] : std::string("/tmp/mdsim_demo_trace.csv");

  // 1. Record: run a live general-purpose workload and capture its stream.
  std::cout << "Recording a 20-client general-purpose run...\n";
  Trace trace;
  {
    FsTree tree;
    SimConfig cfg = base_config(StrategyKind::kDynamicSubtree);
    NamespaceInfo info = generate_namespace(tree, cfg.fs);
    RecordingWorkload rec(
        std::make_unique<GeneralWorkload>(tree, info.user_roots));
    Rng rng(kSeed);
    Operation op;
    for (int i = 0; i < 8000; ++i) rec.next(i % 20, 0, rng, &op);
    trace = rec.take_trace();
  }
  trace.save(trace_path);
  std::cout << "Saved " << trace.size() << " events for "
            << trace.num_clients() << " clients to " << trace_path << "\n";

  // 2. Replay the identical stream against every strategy.
  const Trace loaded = Trace::load(trace_path);
  ConsoleTable table(
      {"strategy", "completed", "failed", "latency_ms", "skipped"});
  for (StrategyKind k :
       {StrategyKind::kDynamicSubtree, StrategyKind::kStaticSubtree,
        StrategyKind::kDirHash, StrategyKind::kFileHash,
        StrategyKind::kLazyHybrid}) {
    const ReplayResult r = replay_on(k, loaded);
    table.add_row({strategy_name(k), std::to_string(r.completed),
                   std::to_string(r.failed),
                   fmt_double(r.mean_latency_ms, 2),
                   std::to_string(r.skipped)});
  }
  table.print("One trace, five strategies (identical request streams)");
  std::cout << "\nThe trace pins the op stream, so latency differences are "
               "purely the strategies' doing — the methodology the paper's "
               "future-work section calls for.\n";
  return 0;
}

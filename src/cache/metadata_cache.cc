#include "cache/metadata_cache.h"

#include <cassert>
#include <sstream>
#include <unordered_map>

namespace mdsim {

namespace {
constexpr std::size_t kMinIndexSize = 64;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = kMinIndexSize;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

MetadataCache::MetadataCache(std::size_t capacity, bool enforce_tree)
    : capacity_(capacity), enforce_tree_(enforce_tree) {
  assert(capacity_ > 0);
  // Room for the entries plus aux-only records at < 2/3 load.
  index_.resize(next_pow2(capacity_ * 2));
}

// --------------------------------------------------------------------------
// Open-addressed index (linear probing, backward-shift deletion)
// --------------------------------------------------------------------------

std::size_t MetadataCache::index_probe(InodeId ino) const {
  const std::size_t mask = index_mask();
  std::size_t pos = hash_ino(ino) & mask;
  while (index_[pos].key != kInvalidInode && index_[pos].key != ino) {
    pos = (pos + 1) & mask;
  }
  return pos;
}

MetadataCache::IndexSlot* MetadataCache::index_find(InodeId ino) {
  IndexSlot& s = index_[index_probe(ino)];
  return s.key == ino ? &s : nullptr;
}

const MetadataCache::IndexSlot* MetadataCache::index_find(InodeId ino) const {
  const IndexSlot& s = index_[index_probe(ino)];
  return s.key == ino ? &s : nullptr;
}

MetadataCache::IndexSlot& MetadataCache::index_ensure(InodeId ino) {
  assert(ino != kInvalidInode);
  // Keep load below ~2/3 so probe runs stay short.
  if ((index_used_ + 1) * 3 > index_.size() * 2) index_grow();
  IndexSlot& s = index_[index_probe(ino)];
  if (s.key != ino) {
    s.key = ino;
    ++index_used_;
  }
  return s;
}

void MetadataCache::index_grow() {
  std::vector<IndexSlot> old;
  old.swap(index_);
  index_.resize(old.size() * 2);
  for (const IndexSlot& s : old) {
    if (s.key == kInvalidInode) continue;
    index_[index_probe(s.key)] = s;
  }
}

void MetadataCache::index_erase_at(std::size_t pos) {
  const std::size_t mask = index_mask();
  std::size_t hole = pos;
  std::size_t next = (hole + 1) & mask;
  // Backward shift: pull displaced records into the hole so every
  // remaining key stays reachable from its ideal slot without tombstones.
  while (index_[next].key != kInvalidInode) {
    const std::size_t ideal = hash_ino(index_[next].key) & mask;
    const std::size_t dist_from_hole = (next - hole) & mask;
    const std::size_t dist_from_ideal = (next - ideal) & mask;
    if (dist_from_ideal >= dist_from_hole) {
      index_[hole] = index_[next];
      hole = next;
    }
    next = (next + 1) & mask;
  }
  index_[hole] = IndexSlot{};
  --index_used_;
}

void MetadataCache::index_gc(InodeId ino) {
  const std::size_t pos = index_probe(ino);
  IndexSlot& s = index_[pos];
  if (s.key != ino) return;
  if (s.entry == kNullSlot && s.aux == kNullSlot) index_erase_at(pos);
}

// --------------------------------------------------------------------------
// Intrusive LRU segments
// --------------------------------------------------------------------------

void MetadataCache::list_push_front(LruList& l, CacheEntry& e) {
  e.lru_prev = kNullSlot;
  e.lru_next = l.head;
  if (l.head != kNullSlot) {
    entries_[l.head].lru_prev = e.self;
  } else {
    l.tail = e.self;
  }
  l.head = e.self;
  ++l.size;
}

void MetadataCache::list_unlink(LruList& l, CacheEntry& e) {
  if (e.lru_prev != kNullSlot) {
    entries_[e.lru_prev].lru_next = e.lru_next;
  } else {
    l.head = e.lru_next;
  }
  if (e.lru_next != kNullSlot) {
    entries_[e.lru_next].lru_prev = e.lru_prev;
  } else {
    l.tail = e.lru_prev;
  }
  e.lru_prev = e.lru_next = kNullSlot;
  --l.size;
}

// --------------------------------------------------------------------------
// Core operations
// --------------------------------------------------------------------------

CacheEntry* MetadataCache::peek(InodeId ino) {
  IndexSlot* s = index_find(ino);
  return (s != nullptr && s->entry != kNullSlot) ? &entries_[s->entry]
                                                 : nullptr;
}

const CacheEntry* MetadataCache::peek(InodeId ino) const {
  const IndexSlot* s = index_find(ino);
  return (s != nullptr && s->entry != kNullSlot) ? &entries_[s->entry]
                                                 : nullptr;
}

CacheEntry* MetadataCache::lookup(InodeId ino, SimTime now, bool count_stats) {
  IndexSlot* s = index_find(ino);
  if (s == nullptr || s->entry == kNullSlot) {
    if (count_stats) ++stats_.misses;
    return nullptr;
  }
  if (count_stats) ++stats_.hits;
  CacheEntry& e = entries_[s->entry];
  e.popularity.hit(now);
  promote(e);
  return &e;
}

void MetadataCache::promote(CacheEntry& e) {
  if (e.in_probation) {
    list_unlink(probation_, e);
    e.in_probation = false;
    list_push_front(main_, e);
  } else if (main_.head != e.self) {
    list_unlink(main_, e);
    list_push_front(main_, e);
  }
}

void MetadataCache::mark_demand(CacheEntry& e) {
  if (!e.prefix) return;
  const bool was_anchor = is_anchor_dir(e);
  e.prefix = false;
  if (e.node->is_dir()) {
    assert(prefix_count_ > 0);
    --prefix_count_;
  }
  if (was_anchor && !is_anchor_dir(e)) --anchored_prefix_dirs_;
}

void MetadataCache::child_count_add(InodeId parent, int delta) {
  IndexSlot* s = index_find(parent);
  if (s == nullptr || s->entry == kNullSlot) {
    // Insertion requires the parent resident; removal tolerates a parent
    // that was already torn down (migration export order).
    assert(delta < 0 && "tree invariant: parent must be cached before child");
    return;
  }
  CacheEntry& p = entries_[s->entry];
  const bool was_anchor = is_anchor_dir(p);
  if (delta > 0) {
    ++p.cached_children;
  } else {
    assert(p.cached_children > 0);
    --p.cached_children;
  }
  const bool now_anchor = is_anchor_dir(p);
  if (now_anchor != was_anchor) {
    anchored_prefix_dirs_ += now_anchor ? 1 : std::size_t(-1);
  }
}

void MetadataCache::unpin(CacheEntry* e) {
  if (e->pins == 0) {
    // A state-machine bug released an entry it never pinned; count it so
    // it surfaces in stats, and trip debug builds immediately.
    ++stats_.pin_underflows;
    assert(false && "MetadataCache::unpin without a matching pin");
    return;
  }
  --e->pins;
}

CacheEntry* MetadataCache::insert(FsNode* node, InsertKind kind,
                                  bool authoritative, SimTime now) {
  assert(node != nullptr);
  const InodeId ino = node->ino();
  if (IndexSlot* found = index_find(ino);
      found != nullptr && found->entry != kNullSlot) {
    // Refresh: an existing entry absorbs the stronger semantics.
    CacheEntry& e = entries_[found->entry];
    if (kind == InsertKind::kDemand) {
      mark_demand(e);
      e.popularity.hit(now);
      promote(e);
    }
    if (authoritative && !e.authoritative) {
      e.authoritative = true;
      assert(replica_count_ > 0);
      --replica_count_;
    }
    e.version = node->inode().version;
    return &e;
  }

  IndexSlot& rec = index_ensure(ino);
  const CacheSlot slot = entries_.alloc();
  CacheEntry& e = entries_[slot];
  e.self = slot;
  e.node = node;
  e.authoritative = authoritative;
  e.prefix = (kind != InsertKind::kDemand);
  e.version = node->inode().version;
  if (kind == InsertKind::kDemand) e.popularity.hit(now);
  if (rec.aux != kNullSlot) e.aux = &aux_slab_[rec.aux];
  rec.entry = slot;
  ++size_;

  if (enforce_tree_ && node->parent() != nullptr) {
    e.anchor_parent = node->parent()->ino();
    child_count_add(e.anchor_parent, +1);
  }

  if (kind == InsertKind::kPrefetch) {
    e.in_probation = true;
    list_push_front(probation_, e);
  } else {
    list_push_front(main_, e);
  }

  ++stats_.insertions;
  if (e.prefix && node->is_dir()) ++prefix_count_;
  if (is_anchor_dir(e)) ++anchored_prefix_dirs_;
  if (!authoritative) ++replica_count_;

  // Pin the new entry through capacity enforcement so it survives its own
  // insertion even if everything else is unevictable.
  ++e.pins;
  enforce_capacity();
  --e.pins;
  return &e;
}

bool MetadataCache::evict_one_from(LruList& l) {
  // Scan from the LRU end, skipping unevictable entries (pinned, or
  // directories anchoring cached children).
  for (CacheSlot s = l.tail; s != kNullSlot;) {
    CacheEntry& e = entries_[s];
    if (e.evictable()) {
      remove_entry(e, /*evicted=*/true);
      return true;
    }
    s = e.lru_prev;
  }
  return false;
}

void MetadataCache::enforce_capacity() {
  // An evict callback may insert (and so re-enter); the outer loop below
  // keeps draining, so the nested call can simply bail.
  if (enforcing_) return;
  enforcing_ = true;
  // Probation first, then main; stop when at capacity or nothing can go.
  while (size_ > capacity_) {
    if (evict_one_from(probation_)) continue;
    if (evict_one_from(main_)) continue;
    break;  // everything pinned: overflow
  }
  enforcing_ = false;
}

void MetadataCache::remove_entry(CacheEntry& e, bool evicted) {
  assert(e.cached_children == 0 && "cannot remove an entry with children");
  const InodeId ino = e.node->ino();
  if (enforce_tree_ && e.anchor_parent != kInvalidInode) {
    child_count_add(e.anchor_parent, -1);
  }
  if (is_anchor_dir(e)) --anchored_prefix_dirs_;
  if (e.prefix && e.node->is_dir()) {
    assert(prefix_count_ > 0);
    --prefix_count_;
  }
  if (!e.authoritative) {
    assert(replica_count_ > 0);
    --replica_count_;
  }
  list_unlink(list_of(e), e);

  IndexSlot* rec = index_find(ino);
  assert(rec != nullptr && rec->entry == e.self);
  rec->entry = kNullSlot;
  index_gc(ino);  // drops the record unless a sidecar keeps it alive
  --size_;

  const CacheSlot slot = e.self;
  if (evicted) {
    ++stats_.evictions;
    // The entry is already unlinked (peek misses); the callback may
    // insert or erase other entries.
    if (on_evict_) on_evict_(e);
  }
  // Sidecar teardown for entry-scoped state: "replicated everywhere" is a
  // property of the resident copy and dies with it. Registry, attribute
  // and fetch state deliberately survive eviction (an authority keeps
  // invalidating holders even after shedding its own copy).
  if (e.aux != nullptr) {
    e.aux->replicated_everywhere = false;
    e.aux = nullptr;
    aux_gc(ino);
  }
  entries_.free(slot);
}

bool MetadataCache::erase(InodeId ino) {
  IndexSlot* s = index_find(ino);
  if (s == nullptr || s->entry == kNullSlot) return false;
  // Entries anchoring cached children or referenced by in-flight requests
  // must stay; they drain through normal eviction once released.
  CacheEntry& e = entries_[s->entry];
  if (e.cached_children > 0 || e.pins > 0) return false;
  remove_entry(e, /*evicted=*/false);
  return true;
}

void MetadataCache::for_each(const std::function<void(CacheEntry&)>& fn) {
  for (const IndexSlot& s : index_) {
    if (s.key != kInvalidInode && s.entry != kNullSlot) fn(entries_[s.entry]);
  }
}

// --------------------------------------------------------------------------
// Protocol sidecar (EntryAux)
// --------------------------------------------------------------------------

EntryAux* MetadataCache::aux_peek(InodeId ino) {
  IndexSlot* s = index_find(ino);
  return (s != nullptr && s->aux != kNullSlot) ? &aux_slab_[s->aux] : nullptr;
}

const EntryAux* MetadataCache::aux_peek(InodeId ino) const {
  const IndexSlot* s = index_find(ino);
  return (s != nullptr && s->aux != kNullSlot) ? &aux_slab_[s->aux] : nullptr;
}

EntryAux& MetadataCache::aux_ensure(InodeId ino) {
  IndexSlot& rec = index_ensure(ino);
  if (rec.aux == kNullSlot) {
    rec.aux = aux_slab_.alloc();
    ++aux_count_;
    if (rec.entry != kNullSlot) entries_[rec.entry].aux = &aux_slab_[rec.aux];
  }
  return aux_slab_[rec.aux];
}

void MetadataCache::aux_gc(InodeId ino) {
  const std::size_t pos = index_probe(ino);
  IndexSlot& s = index_[pos];
  if (s.key != ino || s.aux == kNullSlot) return;
  if (!aux_slab_[s.aux].unused()) return;
  const CacheSlot a = s.aux;
  s.aux = kNullSlot;
  if (s.entry != kNullSlot) entries_[s.entry].aux = nullptr;
  aux_slab_.free(a);
  --aux_count_;
  if (s.entry == kNullSlot) index_erase_at(pos);
}

void MetadataCache::for_each_aux(
    const std::function<void(InodeId, EntryAux&)>& fn) {
  // Snapshot the keys: the callback may gc records, which backward-shifts
  // the index under a live iteration.
  std::vector<InodeId> inos;
  inos.reserve(aux_count_);
  for (const IndexSlot& s : index_) {
    if (s.key != kInvalidInode && s.aux != kNullSlot) inos.push_back(s.key);
  }
  for (InodeId ino : inos) {
    if (EntryAux* a = aux_peek(ino)) fn(ino, *a);
  }
}

// --------------------------------------------------------------------------
// Fetch coalescing
// --------------------------------------------------------------------------

bool MetadataCache::add_fetch_waiter(InodeId ino, FetchChannel ch,
                                     FetchWaiter w) {
  EntryAux& a = aux_ensure(ino);
  const int c = static_cast<int>(ch);
  const bool first = !a.fetch_inflight[c];
  if (first) {
    a.fetch_inflight[c] = true;
    ++inflight_count_[c];
  }
  a.fetch_waiters[c].push_back(std::move(w));
  return first;
}

std::vector<MetadataCache::FetchWaiter> MetadataCache::take_fetch_waiters(
    InodeId ino, FetchChannel ch) {
  const int c = static_cast<int>(ch);
  EntryAux* a = aux_peek(ino);
  if (a == nullptr || !a->fetch_inflight[c]) return {};
  a->fetch_inflight[c] = false;
  --inflight_count_[c];
  std::vector<FetchWaiter> waiters = std::move(a->fetch_waiters[c]);
  a->fetch_waiters[c].clear();
  aux_gc(ino);
  return waiters;
}

bool MetadataCache::fetch_inflight(InodeId ino, FetchChannel ch) const {
  const EntryAux* a = aux_peek(ino);
  return a != nullptr && a->fetch_inflight[static_cast<int>(ch)];
}

void MetadataCache::clear_fetch_waiters() {
  for_each_aux([this](InodeId ino, EntryAux& a) {
    for (int c = 0; c < 2; ++c) {
      if (a.fetch_inflight[c]) {
        a.fetch_inflight[c] = false;
        --inflight_count_[c];
      }
      a.fetch_waiters[c].clear();
    }
    aux_gc(ino);
  });
}

// --------------------------------------------------------------------------
// Invariants
// --------------------------------------------------------------------------

std::string MetadataCache::check_invariants() const {
  std::ostringstream err;
  std::size_t prefixes = 0;
  std::size_t replicas = 0;
  std::size_t anchors = 0;
  std::size_t entry_records = 0;
  std::size_t aux_records = 0;
  std::size_t inflight[2] = {0, 0};
  std::unordered_map<InodeId, std::uint32_t> child_counts;

  for (std::size_t pos = 0; pos < index_.size(); ++pos) {
    const IndexSlot& s = index_[pos];
    if (s.key == kInvalidInode) {
      if (s.entry != kNullSlot || s.aux != kNullSlot) {
        err << "index slot " << pos << " empty but holds payload";
        return err.str();
      }
      continue;
    }
    // Every key must be reachable by its own probe sequence.
    if (index_probe(s.key) != pos) {
      err << "index key " << s.key << " unreachable from its ideal slot";
      return err.str();
    }
    if (s.entry == kNullSlot && s.aux == kNullSlot) {
      err << "index record for " << s.key << " holds neither entry nor aux";
      return err.str();
    }
    if (s.entry != kNullSlot) {
      ++entry_records;
      const CacheEntry& e = entries_[s.entry];
      if (e.self != s.entry) {
        err << "slab self-link broken for ino " << s.key;
        return err.str();
      }
      if (e.node->ino() != s.key) {
        err << "entry key mismatch for ino " << s.key;
        return err.str();
      }
      if (e.prefix && e.node->is_dir()) ++prefixes;
      if (!e.authoritative) ++replicas;
      if (is_anchor_dir(e)) ++anchors;
      if (enforce_tree_ && e.anchor_parent != kInvalidInode) {
        const IndexSlot* p = index_find(e.anchor_parent);
        if (p == nullptr || p->entry == kNullSlot) {
          err << "tree invariant violated: anchor parent of "
              << e.node->path() << " not cached";
          return err.str();
        }
        ++child_counts[e.anchor_parent];
      }
      const EntryAux* expect_aux =
          s.aux != kNullSlot ? &aux_slab_[s.aux] : nullptr;
      if (e.aux != expect_aux) {
        err << "entry/aux link drift for ino " << s.key;
        return err.str();
      }
    }
    if (s.aux != kNullSlot) {
      ++aux_records;
      const EntryAux& a = aux_slab_[s.aux];
      if (a.unused()) {
        err << "empty aux record leaked for ino " << s.key;
        return err.str();
      }
      for (int c = 0; c < 2; ++c) {
        if (a.fetch_inflight[c]) ++inflight[c];
        if (!a.fetch_inflight[c] && !a.fetch_waiters[c].empty()) {
          err << "fetch waiters without in-flight fetch on ino " << s.key;
          return err.str();
        }
      }
    }
  }

  if (entry_records != size_) {
    err << "size drift: " << entry_records << " indexed vs " << size_;
    return err.str();
  }
  if (aux_records != aux_count_) {
    err << "aux count drift: " << aux_records << " vs " << aux_count_;
    return err.str();
  }
  if (prefixes != prefix_count_) {
    err << "prefix count drift: " << prefixes << " vs " << prefix_count_;
    return err.str();
  }
  if (replicas != replica_count_) {
    err << "replica count drift: " << replicas << " vs " << replica_count_;
    return err.str();
  }
  if (anchors != anchored_prefix_dirs_) {
    err << "anchored prefix-dir drift: " << anchors << " vs "
        << anchored_prefix_dirs_;
    return err.str();
  }
  for (int c = 0; c < 2; ++c) {
    if (inflight[c] != inflight_count_[c]) {
      err << "inflight fetch count drift on channel " << c;
      return err.str();
    }
  }
  if (enforce_tree_) {
    for (const IndexSlot& s : index_) {
      if (s.key == kInvalidInode || s.entry == kNullSlot) continue;
      const CacheEntry& e = entries_[s.entry];
      const auto it = child_counts.find(s.key);
      const std::uint32_t expect = it != child_counts.end() ? it->second : 0;
      if (e.cached_children != expect) {
        err << "cached_children drift on ino " << s.key << ": "
            << e.cached_children << " vs " << expect;
        return err.str();
      }
    }
  }

  // Intrusive-list audit: forward walks must visit exactly the indexed
  // entries, with consistent back-links and segment flags.
  const LruList* lists[2] = {&main_, &probation_};
  std::size_t listed = 0;
  for (int li = 0; li < 2; ++li) {
    const LruList& l = *lists[li];
    CacheSlot prev = kNullSlot;
    std::size_t count = 0;
    for (CacheSlot s = l.head; s != kNullSlot;) {
      const CacheEntry& e = entries_[s];
      if (e.lru_prev != prev) {
        err << "LRU back-link broken in " << (li == 0 ? "main" : "probation");
        return err.str();
      }
      if (e.in_probation != (li == 1)) {
        err << "segment flag drift for ino " << e.node->ino();
        return err.str();
      }
      const IndexSlot* rec = index_find(e.node->ino());
      if (rec == nullptr || rec->entry != s) {
        err << "LRU lists an unindexed entry (ino " << e.node->ino() << ")";
        return err.str();
      }
      prev = s;
      s = e.lru_next;
      if (++count > size_) {
        err << "LRU cycle in " << (li == 0 ? "main" : "probation");
        return err.str();
      }
    }
    if (prev != l.tail) {
      err << "LRU tail drift in " << (li == 0 ? "main" : "probation");
      return err.str();
    }
    if (count != l.size) {
      err << "LRU size drift in " << (li == 0 ? "main" : "probation");
      return err.str();
    }
    listed += count;
  }
  if (listed != size_) {
    err << "LRU list size mismatch";
    return err.str();
  }
  return {};
}

}  // namespace mdsim

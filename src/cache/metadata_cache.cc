#include "cache/metadata_cache.h"

#include <cassert>
#include <sstream>

namespace mdsim {

MetadataCache::MetadataCache(std::size_t capacity, bool enforce_tree)
    : capacity_(capacity), enforce_tree_(enforce_tree) {
  assert(capacity_ > 0);
}

CacheEntry* MetadataCache::peek(InodeId ino) {
  auto it = entries_.find(ino);
  return it == entries_.end() ? nullptr : &it->second;
}

const CacheEntry* MetadataCache::peek(InodeId ino) const {
  auto it = entries_.find(ino);
  return it == entries_.end() ? nullptr : &it->second;
}

CacheEntry* MetadataCache::lookup(InodeId ino, SimTime now,
                                  bool count_stats) {
  auto it = entries_.find(ino);
  if (it == entries_.end()) {
    if (count_stats) ++stats_.misses;
    return nullptr;
  }
  if (count_stats) ++stats_.hits;
  CacheEntry& e = it->second;
  e.popularity.hit(now);
  promote(e);
  return &e;
}

void MetadataCache::promote(CacheEntry& e) {
  if (e.in_probation) {
    probation_.erase(e.lru_it);
    main_.push_front(e.node->ino());
    e.lru_it = main_.begin();
    e.in_probation = false;
  } else {
    main_.splice(main_.begin(), main_, e.lru_it);
  }
}

void MetadataCache::mark_demand(CacheEntry& e) {
  if (e.prefix) {
    e.prefix = false;
    if (e.node->is_dir()) {
      assert(prefix_count_ > 0);
      --prefix_count_;
    }
  }
}

CacheEntry* MetadataCache::insert(FsNode* node, InsertKind kind,
                                  bool authoritative, SimTime now) {
  assert(node != nullptr);
  auto it = entries_.find(node->ino());
  if (it != entries_.end()) {
    // Refresh: an existing entry absorbs the stronger semantics.
    CacheEntry& e = it->second;
    if (kind == InsertKind::kDemand) {
      mark_demand(e);
      e.popularity.hit(now);
      promote(e);
    }
    if (authoritative && !e.authoritative) {
      e.authoritative = true;
      assert(replica_count_ > 0);
      --replica_count_;
    }
    e.version = node->inode().version;
    return &e;
  }

  CacheEntry e;
  e.node = node;
  e.authoritative = authoritative;
  e.prefix = (kind != InsertKind::kDemand);
  e.version = node->inode().version;
  if (kind == InsertKind::kDemand) e.popularity.hit(now);

  if (enforce_tree_ && node->parent() != nullptr) {
    e.anchor_parent = node->parent()->ino();
    auto pit = entries_.find(e.anchor_parent);
    assert(pit != entries_.end() &&
           "tree invariant: parent must be cached before child");
    ++pit->second.cached_children;
  }

  if (kind == InsertKind::kPrefetch) {
    probation_.push_front(node->ino());
    e.lru_it = probation_.begin();
    e.in_probation = true;
  } else {
    main_.push_front(node->ino());
    e.lru_it = main_.begin();
    e.in_probation = false;
  }

  auto [nit, inserted] = entries_.emplace(node->ino(), std::move(e));
  assert(inserted);
  ++stats_.insertions;
  if (nit->second.prefix && node->is_dir()) ++prefix_count_;
  if (!authoritative) ++replica_count_;

  // Pin the new entry through capacity enforcement so it survives its own
  // insertion even if everything else is unevictable.
  ++nit->second.pins;
  enforce_capacity();
  --nit->second.pins;
  return &nit->second;
}

void MetadataCache::evict_one_from(std::list<InodeId>& lru) {
  // Scan from the LRU end, skipping unevictable entries (pinned, or
  // directories anchoring cached children).
  for (auto rit = lru.rbegin(); rit != lru.rend(); ++rit) {
    auto it = entries_.find(*rit);
    assert(it != entries_.end());
    if (!it->second.evictable()) continue;
    remove_entry(it, /*evicted=*/true);
    return;
  }
}

void MetadataCache::enforce_capacity() {
  // Probation first, then main; stop when at capacity or nothing can go.
  while (entries_.size() > capacity_) {
    const std::size_t before = entries_.size();
    if (!probation_.empty()) evict_one_from(probation_);
    if (entries_.size() == before && !main_.empty()) evict_one_from(main_);
    if (entries_.size() == before) break;  // everything pinned: overflow
  }
}

void MetadataCache::remove_entry(
    std::unordered_map<InodeId, CacheEntry>::iterator it, bool evicted) {
  CacheEntry& e = it->second;
  assert(e.cached_children == 0 && "cannot remove an entry with children");
  if (enforce_tree_ && e.anchor_parent != kInvalidInode) {
    auto pit = entries_.find(e.anchor_parent);
    if (pit != entries_.end()) {
      assert(pit->second.cached_children > 0);
      --pit->second.cached_children;
    }
  }
  if (e.prefix && e.node->is_dir()) {
    assert(prefix_count_ > 0);
    --prefix_count_;
  }
  if (!e.authoritative) {
    assert(replica_count_ > 0);
    --replica_count_;
  }
  if (e.in_probation) {
    probation_.erase(e.lru_it);
  } else {
    main_.erase(e.lru_it);
  }
  if (evicted) {
    ++stats_.evictions;
    if (on_evict_) on_evict_(e);
  }
  entries_.erase(it);
}

bool MetadataCache::erase(InodeId ino) {
  auto it = entries_.find(ino);
  if (it == entries_.end()) return false;
  // Entries anchoring cached children or referenced by in-flight requests
  // must stay; they drain through normal eviction once released.
  if (it->second.cached_children > 0 || it->second.pins > 0) return false;
  remove_entry(it, /*evicted=*/false);
  return true;
}

void MetadataCache::for_each(const std::function<void(CacheEntry&)>& fn) {
  for (auto& [_, e] : entries_) fn(e);
}

std::string MetadataCache::check_invariants() const {
  std::ostringstream err;
  std::size_t prefixes = 0;
  std::size_t replicas = 0;
  std::unordered_map<InodeId, std::uint32_t> child_counts;
  for (const auto& [ino, e] : entries_) {
    if (e.node->ino() != ino) {
      err << "entry key mismatch for ino " << ino;
      return err.str();
    }
    if (e.prefix && e.node->is_dir()) ++prefixes;
    if (!e.authoritative) ++replicas;
    if (enforce_tree_ && e.anchor_parent != kInvalidInode) {
      if (entries_.count(e.anchor_parent) == 0) {
        err << "tree invariant violated: anchor parent of " << e.node->path()
            << " not cached";
        return err.str();
      }
      ++child_counts[e.anchor_parent];
    }
  }
  if (prefixes != prefix_count_) {
    err << "prefix count drift: " << prefixes << " vs " << prefix_count_;
    return err.str();
  }
  if (replicas != replica_count_) {
    err << "replica count drift: " << replicas << " vs " << replica_count_;
    return err.str();
  }
  if (enforce_tree_) {
    for (const auto& [ino, e] : entries_) {
      const std::uint32_t expect =
          child_counts.count(ino) ? child_counts.at(ino) : 0;
      if (e.cached_children != expect) {
        err << "cached_children drift on ino " << ino << ": "
            << e.cached_children << " vs " << expect;
        return err.str();
      }
    }
  }
  if (main_.size() + probation_.size() != entries_.size()) {
    err << "LRU list size mismatch";
    return err.str();
  }
  return {};
}

}  // namespace mdsim

// Per-MDS metadata cache.
//
// Implements the caching rules of paper section 4.1/4.5:
//  * Tree invariant — "each MDS caches prefix inodes for all items in the
//    cache, such that at any point the cached subset of the hierarchy
//    remains a tree structure. Only leaf items may be expired; directories
//    may not be removed until items contained within them are expired
//    first." Enforced with per-entry cached-child counts; entries with
//    cached children are not evictable.
//  * Prefetch placement — "prefetched metadata is inserted near the tail of
//    the cache's LRU list to avoid displacing known useful information."
//    Realized as a two-segment LRU: prefetched entries enter a probation
//    segment that is evicted before the main segment; a hit promotes to the
//    main MRU position.
//  * Popularity — every entry carries a decayed access counter (the traffic
//    control metric of section 4.4).
//
// The cache also keeps the accounting behind Figures 3 and 4: which entries
// are prefix inodes (cached only to anchor descendants / path traversal)
// and replica-vs-authority counts.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "common/stats.h"
#include "common/types.h"
#include "fstree/tree.h"

namespace mdsim {

enum class InsertKind : std::uint8_t {
  kDemand,    // fetched because a request needed this item itself
  kPrefix,    // cached to anchor traversal (ancestor directory)
  kPrefetch,  // speculatively loaded with its directory (embedded inodes)
};

struct CacheEntry {
  FsNode* node = nullptr;
  bool authoritative = true;  // false => replica of another MDS's item
  bool prefix = true;         // true while only serving as a path prefix
  std::uint32_t pins = 0;     // in-flight requests referencing this entry
  std::uint32_t cached_children = 0;
  /// Parent inode at insertion time. Child accounting uses this, not the
  /// live tree: a rename may reparent the node while it is cached, and
  /// the increment/decrement pair must hit the same entry.
  InodeId anchor_parent = kInvalidInode;
  std::uint64_t version = 0;  // inode version this copy reflects
  /// Directories only: all children are currently cached (set by a
  /// whole-directory fetch; cleared when any child is evicted). Lets a
  /// readdir be served without touching disk.
  bool complete = false;
  DecayCounter popularity;

  // LRU bookkeeping (managed by MetadataCache).
  std::list<InodeId>::iterator lru_it;
  bool in_probation = false;

  bool evictable() const { return pins == 0 && cached_children == 0; }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class MetadataCache {
 public:
  using EvictCallback = std::function<void(const CacheEntry&)>;

  /// `capacity` in items. If `enforce_tree` is false, the parent-chain
  /// invariant is skipped (Lazy Hybrid does not keep prefixes at all).
  MetadataCache(std::size_t capacity, bool enforce_tree = true);

  /// Fires whenever an entry is evicted or erased (replica-drop
  /// notification hook for the coherence layer).
  void set_evict_callback(EvictCallback cb) { on_evict_ = std::move(cb); }

  /// Look up an inode; on hit, promotes the entry and bumps popularity.
  /// Misses/hits are tallied unless `count_stats` is false (internal
  /// bookkeeping peeks should not skew figure 4).
  CacheEntry* lookup(InodeId ino, SimTime now, bool count_stats = true);

  /// Peek without promotion or stats.
  CacheEntry* peek(InodeId ino);
  const CacheEntry* peek(InodeId ino) const;

  /// Insert (or refresh) an entry. The parent must already be cached when
  /// the tree invariant is on (except for the root). Inserting may evict
  /// other entries; the new entry itself is never evicted by its own
  /// insertion. Returns the entry.
  CacheEntry* insert(FsNode* node, InsertKind kind, bool authoritative,
                     SimTime now);

  /// Remove one entry immediately (e.g. after migration export or an
  /// unlink). Entries with cached children or active pins cannot be
  /// erased; returns false in that case (they drain via normal eviction).
  bool erase(InodeId ino);

  void pin(CacheEntry* e) { ++e->pins; }
  void unpin(CacheEntry* e) {
    if (e->pins > 0) --e->pins;
  }

  /// The entry was the direct target of a request (not a traversal
  /// prefix): clears its prefix status for the figure-3 accounting.
  void mark_demand_access(CacheEntry* e) { mark_demand(*e); }

  /// Evict down to capacity (called automatically by insert).
  void enforce_capacity();

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t c) {
    capacity_ = c;
    enforce_capacity();
  }

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Number of cached *directory* inodes held for traversal only —
  /// "prefix inodes" in the paper's sense (figure 3). Prefetched files
  /// and demand-accessed directories do not count.
  std::size_t prefix_count() const { return prefix_count_; }
  std::size_t replica_count() const { return replica_count_; }
  /// Fraction of cache occupied by prefix inodes (figure 3's y-axis): a
  /// directory counts while it anchors cached descendants (path traversal
  /// runs through it) or was brought in purely as a traversal prefix.
  /// O(n) scan; called at sampling granularity only.
  double prefix_fraction() const {
    if (entries_.empty()) return 0.0;
    std::size_t prefixes = 0;
    for (const auto& [_, e] : entries_) {
      if (e.node->is_dir() && (e.cached_children > 0 || e.prefix)) {
        ++prefixes;
      }
    }
    return static_cast<double>(prefixes) /
           static_cast<double>(entries_.size());
  }

  /// Iterate all entries (migration export, diagnostics).
  void for_each(const std::function<void(CacheEntry&)>& fn);

  /// Verify the tree invariant and internal accounting; returns an empty
  /// string when healthy (tests).
  std::string check_invariants() const;

 private:
  void promote(CacheEntry& e);
  void mark_demand(CacheEntry& e);
  void evict_one_from(std::list<InodeId>& lru);
  void remove_entry(std::unordered_map<InodeId, CacheEntry>::iterator it,
                    bool evicted);

  std::size_t capacity_;
  bool enforce_tree_;
  EvictCallback on_evict_;
  std::unordered_map<InodeId, CacheEntry> entries_;
  std::list<InodeId> main_;       // front = MRU, back = LRU
  std::list<InodeId> probation_;  // prefetched, evicted first
  CacheStats stats_;
  std::size_t prefix_count_ = 0;
  std::size_t replica_count_ = 0;
};

}  // namespace mdsim

// Per-MDS metadata cache.
//
// Implements the caching rules of paper section 4.1/4.5:
//  * Tree invariant — "each MDS caches prefix inodes for all items in the
//    cache, such that at any point the cached subset of the hierarchy
//    remains a tree structure. Only leaf items may be expired; directories
//    may not be removed until items contained within them are expired
//    first." Enforced with per-entry cached-child counts; entries with
//    cached children are not evictable.
//  * Prefetch placement — "prefetched metadata is inserted near the tail of
//    the cache's LRU list to avoid displacing known useful information."
//    Realized as a two-segment LRU: prefetched entries enter a probation
//    segment that is evicted before the main segment; a hit promotes to the
//    main MRU position.
//  * Popularity — every entry carries a decayed access counter (the traffic
//    control metric of section 4.4).
//
// Layout (see DESIGN.md "Cache core"): entries live in a chunked slab with
// stable addresses and are found through one open-addressed index probe
// keyed by InodeId. The two LRU segments are intrusive doubly-linked lists
// threaded through the slab slots (no per-touch allocation, no second hash
// probe to locate list nodes). The same index record also locates the
// entry's EntryAux sidecar — the per-inode MDS protocol state (coherence
// registry, traffic-control flags, dirfrag temperature, attribute deltas,
// fetch coalescing) that previously lived in six separate per-node hash
// maps — so one probe serves both the cache and the protocol layers. Aux
// records may outlive the cache entry (an authority keeps its replica
// registry even after evicting its own copy) and may exist before one (a
// fetch in flight coalesces waiters for a not-yet-resident inode).
//
// The cache also keeps the accounting behind Figures 3 and 4 — which
// entries are prefix inodes and replica-vs-authority counts — as
// incrementally maintained counters, so metrics sampling is O(1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "fstree/tree.h"

namespace mdsim {

enum class InsertKind : std::uint8_t {
  kDemand,    // fetched because a request needed this item itself
  kPrefix,    // cached to anchor traversal (ancestor directory)
  kPrefetch,  // speculatively loaded with its directory (embedded inodes)
};

struct CacheEntry;

/// Which in-flight fetch a coalescing waiter is parked on.
enum class FetchChannel : std::uint8_t { kDisk = 0, kReplica = 1 };

/// Per-inode MDS protocol state adjacent to the cache entry. Owned by the
/// cache (same index record as the entry); allocated lazily and freed as
/// soon as every field is back to its default (`unused()`). Fields are
/// grouped by the subsystem that writes them; the cache itself only
/// touches `replicated_everywhere` (cleared when the entry is evicted —
/// replication "everywhere" is a property of the resident copy).
struct EntryAux {
  using FetchWaiter = std::function<void(CacheEntry*)>;

  // Coherence (authority side): peers registered as holding a replica of
  // this inode. Small — bounded by cluster size — so a flat vector beats
  // a node-based set.
  std::vector<MdsId> replica_holders;

  // Distributed attribute updates (section 4.2). Authority side: peers
  // that announced absorbed-but-unflushed deltas. Replica side: number of
  // locally absorbed setattr deltas awaiting a flush.
  std::vector<MdsId> attr_dirty_holders;
  std::uint32_t attr_pending = 0;

  // Traffic control: this node believes the inode is replicated on every
  // MDS (cleared on eviction/invalidation of the local copy).
  bool replicated_everywhere = false;

  // Dynamic dirfrag: decayed count of namespace-mutating ops landing in
  // this directory. `has_dir_temp` gates it so an idle default counter
  // does not keep the record alive.
  bool has_dir_temp = false;
  DecayCounter dir_op_temp;

  // Fetch coalescing: continuations parked on an in-flight disk read or
  // replica request for this inode (the entry itself is usually absent).
  bool fetch_inflight[2] = {false, false};
  std::vector<FetchWaiter> fetch_waiters[2];

  bool holds(MdsId peer) const {
    for (MdsId h : replica_holders) {
      if (h == peer) return true;
    }
    return false;
  }

  /// True when every field is back to its default; the record is freed.
  bool unused() const {
    return replica_holders.empty() && attr_dirty_holders.empty() &&
           attr_pending == 0 && !replicated_everywhere && !has_dir_temp &&
           !fetch_inflight[0] && !fetch_inflight[1] &&
           fetch_waiters[0].empty() && fetch_waiters[1].empty();
  }
};

/// Slab slot index; entries link to each other by index, not pointer.
using CacheSlot = std::uint32_t;
constexpr CacheSlot kNullSlot = 0xffffffffu;

struct CacheEntry {
  FsNode* node = nullptr;
  bool authoritative = true;  // false => replica of another MDS's item
  bool prefix = true;         // true while only serving as a path prefix
  /// Directories only: all children are currently cached (set by a
  /// whole-directory fetch; cleared when any child is evicted). Lets a
  /// readdir be served without touching disk.
  bool complete = false;
  bool in_probation = false;
  std::uint32_t pins = 0;     // in-flight requests referencing this entry
  std::uint32_t cached_children = 0;
  /// Parent inode at insertion time. Child accounting uses this, not the
  /// live tree: a rename may reparent the node while it is cached, and
  /// the increment/decrement pair must hit the same entry.
  InodeId anchor_parent = kInvalidInode;
  std::uint64_t version = 0;  // inode version this copy reflects
  DecayCounter popularity;

  /// Protocol sidecar for this inode, or nullptr. Borrowed from the
  /// cache's aux slab; may outlive the entry (kept by the cache while any
  /// field is in use).
  EntryAux* aux = nullptr;

  // Intrusive LRU links + own slot (managed by MetadataCache).
  CacheSlot lru_prev = kNullSlot;
  CacheSlot lru_next = kNullSlot;
  CacheSlot self = kNullSlot;

  bool evictable() const { return pins == 0 && cached_children == 0; }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  /// unpin() calls on an entry with no pins — a request state-machine bug
  /// (would silently corrupt evictable() if ignored).
  std::uint64_t pin_underflows = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class MetadataCache {
 public:
  using EvictCallback = std::function<void(const CacheEntry&)>;
  using FetchWaiter = EntryAux::FetchWaiter;

  /// `capacity` in items. If `enforce_tree` is false, the parent-chain
  /// invariant is skipped (Lazy Hybrid does not keep prefixes at all).
  MetadataCache(std::size_t capacity, bool enforce_tree = true);

  /// Fires whenever an entry is evicted or erased (replica-drop
  /// notification hook for the coherence layer). Invoked after the entry
  /// has been unlinked from the index and LRU — peek() of the victim
  /// returns null, and the callback may insert/erase other entries.
  void set_evict_callback(EvictCallback cb) { on_evict_ = std::move(cb); }

  /// Look up an inode; on hit, promotes the entry and bumps popularity.
  /// Misses/hits are tallied unless `count_stats` is false (internal
  /// bookkeeping peeks should not skew figure 4).
  CacheEntry* lookup(InodeId ino, SimTime now, bool count_stats = true);

  /// Peek without promotion or stats.
  CacheEntry* peek(InodeId ino);
  const CacheEntry* peek(InodeId ino) const;

  /// Insert (or refresh) an entry. The parent must already be cached when
  /// the tree invariant is on (except for the root). Inserting may evict
  /// other entries; the new entry itself is never evicted by its own
  /// insertion. Returns the entry.
  CacheEntry* insert(FsNode* node, InsertKind kind, bool authoritative,
                     SimTime now);

  /// Remove one entry immediately (e.g. after migration export or an
  /// unlink). Entries with cached children or active pins cannot be
  /// erased; returns false in that case (they drain via normal eviction).
  bool erase(InodeId ino);

  void pin(CacheEntry* e) { ++e->pins; }
  void unpin(CacheEntry* e);

  /// The entry was the direct target of a request (not a traversal
  /// prefix): clears its prefix status for the figure-3 accounting.
  void mark_demand_access(CacheEntry* e) { mark_demand(*e); }

  /// Evict down to capacity (called automatically by insert).
  void enforce_capacity();

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t c) {
    capacity_ = c;
    enforce_capacity();
  }

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Number of cached *directory* inodes held for traversal only —
  /// "prefix inodes" in the paper's sense (figure 3). Prefetched files
  /// and demand-accessed directories do not count.
  std::size_t prefix_count() const { return prefix_count_; }
  std::size_t replica_count() const { return replica_count_; }
  /// Fraction of cache occupied by prefix inodes (figure 3's y-axis): a
  /// directory counts while it anchors cached descendants (path traversal
  /// runs through it) or was brought in purely as a traversal prefix.
  /// O(1) — maintained incrementally (anchored_prefix_dirs_).
  double prefix_fraction() const {
    return size_ > 0 ? static_cast<double>(anchored_prefix_dirs_) /
                           static_cast<double>(size_)
                     : 0.0;
  }

  /// Iterate all entries (migration export, diagnostics). The callback
  /// must not insert or erase entries (collect first, then mutate).
  void for_each(const std::function<void(CacheEntry&)>& fn);

  // ---- protocol sidecar (EntryAux) ---------------------------------------
  /// Sidecar for `ino`, or nullptr if none exists.
  EntryAux* aux_peek(InodeId ino);
  const EntryAux* aux_peek(InodeId ino) const;
  /// Sidecar for `ino`, created empty if absent. Callers must either set
  /// a field or call aux_gc afterwards (empty records are reclaimed).
  EntryAux& aux_ensure(InodeId ino);
  /// Free the sidecar if every field is back to its default.
  void aux_gc(InodeId ino);
  /// Visit every inode that currently has a sidecar. Snapshots the key
  /// set first, so the callback may mutate/gc aux records freely.
  void for_each_aux(const std::function<void(InodeId, EntryAux&)>& fn);
  std::size_t aux_count() const { return aux_count_; }

  // ---- fetch coalescing ---------------------------------------------------
  /// Park a continuation on the in-flight fetch for `ino`. Returns true
  /// if this is the first waiter — the caller must start the fetch.
  bool add_fetch_waiter(InodeId ino, FetchChannel ch, FetchWaiter w);
  /// Complete the fetch: clears the in-flight flag and returns the parked
  /// continuations (empty if none were registered / already cleared).
  std::vector<FetchWaiter> take_fetch_waiters(InodeId ino, FetchChannel ch);
  bool fetch_inflight(InodeId ino, FetchChannel ch) const;
  /// Number of distinct inodes with a fetch in flight on `ch`.
  std::size_t inflight_fetches(FetchChannel ch) const {
    return inflight_count_[static_cast<int>(ch)];
  }
  /// Drop all parked continuations and in-flight markers (cold rejoin).
  void clear_fetch_waiters();

  /// Verify the tree invariant and internal accounting (counters,
  /// intrusive-list consistency, index integrity, aux linkage); returns
  /// an empty string when healthy (tests).
  std::string check_invariants() const;

 private:
  // Chunked slab: stable addresses, O(1) alloc/free via a free list.
  template <typename T>
  class Slab {
   public:
    static constexpr std::size_t kChunkBits = 8;
    static constexpr std::size_t kChunkSize = 1u << kChunkBits;

    T& operator[](CacheSlot i) {
      return chunks_[i >> kChunkBits][i & (kChunkSize - 1)];
    }
    const T& operator[](CacheSlot i) const {
      return chunks_[i >> kChunkBits][i & (kChunkSize - 1)];
    }

    CacheSlot alloc() {
      if (!free_.empty()) {
        const CacheSlot s = free_.back();
        free_.pop_back();
        return s;
      }
      const std::size_t next = allocated_++;
      if ((next >> kChunkBits) == chunks_.size()) {
        chunks_.emplace_back(new T[kChunkSize]);
      }
      return static_cast<CacheSlot>(next);
    }

    void free(CacheSlot s) {
      (*this)[s] = T{};  // reset to defaults for the next tenant
      free_.push_back(s);
    }

   private:
    std::vector<std::unique_ptr<T[]>> chunks_;
    std::vector<CacheSlot> free_;
    std::size_t allocated_ = 0;
  };

  // Open-addressed index record: one per inode holding an entry, a
  // sidecar, or both. key == kInvalidInode marks an empty slot; deletion
  // backward-shifts, so there are no tombstones.
  struct IndexSlot {
    InodeId key = kInvalidInode;
    CacheSlot entry = kNullSlot;
    CacheSlot aux = kNullSlot;
  };

  // Intrusive LRU segment; head = MRU, tail = LRU.
  struct LruList {
    CacheSlot head = kNullSlot;
    CacheSlot tail = kNullSlot;
    std::size_t size = 0;
  };

  static std::size_t hash_ino(InodeId ino) {
    return static_cast<std::size_t>(ino * 0x9E3779B97F4A7C15ull);
  }

  // Index primitives (linear probing).
  std::size_t index_mask() const { return index_.size() - 1; }
  /// Slot position of `ino`, or the empty position where it would go.
  std::size_t index_probe(InodeId ino) const;
  IndexSlot* index_find(InodeId ino);
  const IndexSlot* index_find(InodeId ino) const;
  /// Find-or-create the record for `ino` (grows the table as needed).
  IndexSlot& index_ensure(InodeId ino);
  /// Remove the record at table position `pos` (backward-shift).
  void index_erase_at(std::size_t pos);
  /// Drop the record if it holds neither an entry nor a sidecar.
  void index_gc(InodeId ino);
  void index_grow();

  // LRU primitives.
  LruList& list_of(const CacheEntry& e) {
    return e.in_probation ? probation_ : main_;
  }
  void list_push_front(LruList& l, CacheEntry& e);
  void list_unlink(LruList& l, CacheEntry& e);

  void promote(CacheEntry& e);
  void mark_demand(CacheEntry& e);
  /// True when the entry counts toward anchored_prefix_dirs_.
  static bool is_anchor_dir(const CacheEntry& e) {
    return e.node->is_dir() && (e.prefix || e.cached_children > 0);
  }
  void child_count_add(InodeId parent, int delta);
  /// Evict the tail-most evictable entry of `l`; false if none qualifies.
  bool evict_one_from(LruList& l);
  void remove_entry(CacheEntry& e, bool evicted);

  std::size_t capacity_;
  bool enforce_tree_;
  EvictCallback on_evict_;

  Slab<CacheEntry> entries_;
  Slab<EntryAux> aux_slab_;
  std::vector<IndexSlot> index_;
  std::size_t index_used_ = 0;

  LruList main_;
  LruList probation_;

  CacheStats stats_;
  std::size_t size_ = 0;
  std::size_t aux_count_ = 0;
  std::size_t prefix_count_ = 0;
  std::size_t replica_count_ = 0;
  /// Dir entries with (prefix || cached_children > 0): the numerator of
  /// prefix_fraction(), maintained on every transition.
  std::size_t anchored_prefix_dirs_ = 0;
  std::size_t inflight_count_[2] = {0, 0};
  bool enforcing_ = false;  // reentrancy guard (evict callbacks may insert)
};

}  // namespace mdsim

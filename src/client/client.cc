#include "client/client.h"

#include <cassert>

namespace mdsim {

Client::Client(Simulation& sim, Network& net, FsTree& tree,
               Workload& workload, const Partitioner& partition,
               const DirFragRegistry& dirfrag, ClientId id, int num_mds,
               std::uint64_t seed)
    : sim_(sim),
      net_(net),
      tree_(tree),
      workload_(workload),
      partition_(partition),
      dirfrag_(dirfrag),
      id_(id),
      num_mds_(num_mds),
      uid_(static_cast<std::uint32_t>(100 + id)),
      rng_(seed, 0xc11e47000ULL + static_cast<std::uint64_t>(id)) {}

void Client::start() {
  addr_ = net_.attach(this);
  schedule_next();
}

void Client::schedule_next() {
  Operation op;
  const SimTime delay = workload_.next(id_, sim_.now(), rng_, &op);
  if (delay == kNever) return;  // this client is done
  sim_.schedule(delay, [this, op]() {
    // The target may have been unlinked while we were thinking.
    if (op.target == nullptr || !tree_.alive(op.target)) {
      schedule_next();
      return;
    }
    issue(op);
  });
}

MdsId Client::pick_mds(const Operation& op) {
  const StrategyTraits traits = traits_for(partition_.kind());
  if (!traits.client_computes_location) {
    // GIGA+: if the op's governing directory has a cached split bitmap,
    // route straight to the owning partition (possibly stale — the
    // server answers mis-routes with a redirect and forwards). The
    // giga_empty() guard keeps the common no-fragmentation path free of
    // this block entirely, RNG draws included.
    if (!locations_.giga_empty()) {
      const bool namespace_op = op.op == OpType::kCreate ||
                                op.op == OpType::kMkdir ||
                                op.op == OpType::kLink;
      const FsNode* dir = namespace_op ? op.target : op.target->parent();
      if (dir != nullptr) {
        const auto* g = locations_.giga_for(dir->ino());
        if (g != nullptr) {
          const std::uint64_t h = giga_name_hash(
              dir->ino(), namespace_op ? op.name : op.target->name());
          const std::uint32_t p =
              giga_partition(h, g->bitmap, dirfrag_.max_depth());
          return giga_node(g->home, p, num_mds_);
        }
      }
    }
    return locations_.resolve(op.target, rng_, num_mds_);
  }
  // Hash strategies: the client knows the placement function.
  const bool namespace_op = op.op == OpType::kCreate ||
                            op.op == OpType::kMkdir ||
                            op.op == OpType::kLink;
  if (namespace_op) {
    switch (partition_.kind()) {
      case StrategyKind::kDirHash:
        // Dentries live with their directory.
        return partition_.authority_of(op.target) == kInvalidMds
                   ? 0
                   : static_cast<MdsId>(
                         op.target->path_hash() %
                         static_cast<std::uint64_t>(num_mds_));
      case StrategyKind::kFileHash:
      case StrategyKind::kLazyHybrid:
        return static_cast<MdsId>(child_path_hash(op.target, op.name) %
                                  static_cast<std::uint64_t>(num_mds_));
      default:
        break;
    }
  }
  return partition_.authority_of(op.target);
}

void Client::issue(const Operation& op) {
  auto msg = std::make_unique<ClientRequestMsg>();
  msg->req_id = next_req_id_++;
  msg->client = id_;
  msg->client_addr = addr_;
  msg->op = op.op;
  msg->uid = uid_;
  msg->target = op.target->ino();
  msg->secondary = op.secondary != nullptr ? op.secondary->ino()
                                           : kInvalidInode;
  msg->name = op.name;
  // Overload-admission context: retry number and the client-side
  // deadline. Stamped unconditionally (pure field writes); servers only
  // read them when overload protection is on.
  msg->attempt = attempts_ < 255 ? static_cast<std::uint8_t>(attempts_) : 255;
  msg->deadline = sim_.now() + retry_.request_timeout;

  if (tracer_ != nullptr) {
    if (attempts_ == 0) {
      trace_rec_.begin(msg->req_id, id_, op.op, sim_.now());
    } else {
      // Re-issue: the timeout + backoff gap is attributed to kStallWait
      // and the old request instance loses the right to attribute.
      trace_rec_.rearm(msg->req_id, sim_.now());
    }
    msg->trace = &trace_rec_;
  }

  inflight_req_ = msg->req_id;
  inflight_op_ = op;
  issued_at_ = sim_.now();
  ++stats_.ops_issued;
  hedge_outstanding_ = false;

  // Retries distrust cached knowledge: a silent node may be down or the
  // partition may have moved on, so spray somewhere random and re-learn.
  MdsId mds;
  if (attempts_ == 0) {
    mds = pick_mds(op);
  } else {
    mds = static_cast<MdsId>(
        rng_.uniform(static_cast<std::uint64_t>(num_mds_)));
  }
  assert(mds >= 0 && mds < num_mds_);
  primary_mds_ = mds;
  net_.send(addr_, mds, std::move(msg));

  // Hedge trigger: a warmed-up read-only first attempt arms the hedge
  // timer at the op class's ~p99 delay instead of the request timeout;
  // everything else takes the ordinary timeout branch unchanged.
  SimTime hedge_delay = 0;
  if (hedge_.enabled && num_mds_ > 1 && hedge_eligible(op.op, attempts_)) {
    hedge_delay = hedge_est_.delay(op.op, hedge_, retry_.request_timeout);
  }
  timeout_.cancel();
  hedge_timer_.cancel();
  if (hedge_delay > 0) {
    hedge_timer_ = sim_.schedule(hedge_delay, [this]() { on_hedge_fire(); });
  } else {
    timeout_ = sim_.schedule(retry_.request_timeout,
                             [this]() { on_request_timeout(); });
  }
}

void Client::on_hedge_fire() {
  if (inflight_req_ == 0) return;  // raced with the reply
  ++stats_.hedges_fired;
  hedge_outstanding_ = true;
  // One backup copy, same req_id: whichever reply loses the race fails
  // the req_id match below and is discarded as stale. No trace pointer —
  // two in-flight copies must not share one attribution record.
  auto msg = std::make_unique<ClientRequestMsg>();
  msg->req_id = inflight_req_;
  msg->client = id_;
  msg->client_addr = addr_;
  msg->op = inflight_op_.op;
  msg->uid = uid_;
  msg->target = inflight_op_.target->ino();
  msg->secondary = inflight_op_.secondary != nullptr
                       ? inflight_op_.secondary->ino()
                       : kInvalidInode;
  msg->name = inflight_op_.name;
  msg->attempt = 0;
  msg->deadline = issued_at_ + retry_.request_timeout;
  msg->hedge = 1;
  const MdsId backup = hedge_pick_backup(primary_mds_, num_mds_, rng_);
  assert(backup >= 0 && backup < num_mds_ && backup != primary_mds_);
  net_.send(addr_, backup, std::move(msg));
  // The retry clock keeps its original deadline: arm the ordinary
  // timeout for the remainder of the window.
  timeout_ = sim_.schedule(issued_at_ + retry_.request_timeout - sim_.now(),
                           [this]() { on_request_timeout(); });
}

void Client::on_request_timeout() {
  if (inflight_req_ == 0) return;  // raced with the reply
  ++stats_.retries;
  ++attempts_;
  if (!tree_.alive(inflight_op_.target)) {
    // Target vanished while we were waiting: give up on this op.
    inflight_req_ = 0;
    attempts_ = 0;
    ++stats_.ops_failed;
    schedule_next();
    return;
  }
  // Retry budget: retries are throttled to a fraction of successes.
  // A dry budget means the cluster is rejecting/timing out far faster
  // than it serves — fail fast instead of feeding the storm.
  if (!budget_.try_spend(retry_.budget)) {
    ++stats_.retries_suppressed;
    inflight_req_ = 0;
    attempts_ = 0;
    ++stats_.ops_failed;
    schedule_next();
    return;
  }
  // Exponential backoff with jitter: the whole herd stranded by a dead
  // node times out together; spreading the re-issues over [d/2, d)
  // keeps the survivors (and the node when it returns) from absorbing
  // one synchronized stampede per timeout period.
  const SimTime delay = retry_backoff_delay(retry_, attempts_, rng_);
  retry_timer_.cancel();
  retry_timer_ = sim_.schedule(delay, [this]() {
    if (inflight_req_ == 0) return;
    if (!tree_.alive(inflight_op_.target)) {
      inflight_req_ = 0;
      attempts_ = 0;
      ++stats_.ops_failed;
      schedule_next();
      return;
    }
    issue(inflight_op_);
  });
}

void Client::on_message(NetAddr from, MessagePtr msg) {
  (void)from;
  if (msg->type == MsgType::kGigaRedirect) {
    // Stale-bitmap correction for a mis-routed dentry op. The op itself
    // is still in flight (the server forwarded it); just learn the fresh
    // bitmap so the next op routes right.
    const auto& r = static_cast<GigaRedirectMsg&>(*msg);
    ++stats_.giga_redirects;
    locations_.learn_giga(r.dir, r.bitmap, r.home);
    return;
  }
  if (msg->type != MsgType::kClientReply) return;
  auto& reply = static_cast<ClientReplyMsg&>(*msg);
  if (reply.req_id != inflight_req_) {
    // Late reply to a retried request, or a network-duplicated reply to
    // one already accepted: count and ignore (the op was settled once).
    ++stats_.stale_replies;
    return;
  }
  if (reply.rejected) {
    // Overload rejection: the request never entered a queue. Honor the
    // server's retry_after (plus jitter) if the budget allows a retry;
    // otherwise fail fast. Mirrors the timeout path's bookkeeping but
    // comes back much sooner than a full request timeout.
    ++stats_.rejected_replies;
    ++attempts_;
    timeout_.cancel();
    hedge_timer_.cancel();
    hedge_outstanding_ = false;
    if (!tree_.alive(inflight_op_.target)) {
      inflight_req_ = 0;
      attempts_ = 0;
      ++stats_.ops_failed;
      schedule_next();
      return;
    }
    if (!budget_.try_spend(retry_.budget)) {
      ++stats_.retries_suppressed;
      inflight_req_ = 0;
      attempts_ = 0;
      ++stats_.ops_failed;
      schedule_next();
      return;
    }
    const SimTime delay = rejected_retry_delay(reply.retry_after, rng_);
    // Mark idle: a duplicate of this rejection (or a late reply to the
    // shed request) must land in the stale branch, not re-arm a retry.
    inflight_req_ = 0;
    retry_timer_.cancel();
    retry_timer_ = sim_.schedule(delay, [this]() {
      if (!tree_.alive(inflight_op_.target)) {
        attempts_ = 0;
        ++stats_.ops_failed;
        schedule_next();
        return;
      }
      issue(inflight_op_);
    });
    return;
  }
  inflight_req_ = 0;
  attempts_ = 0;
  timeout_.cancel();
  retry_timer_.cancel();
  hedge_timer_.cancel();
  if (hedge_outstanding_) {
    // Two copies were racing; the `hedge` echo on the reply says which
    // one settled the op. The loser's reply (if it ever arrives) fails
    // the req_id match above and lands in stale_replies.
    if (reply.hedge != 0) {
      ++stats_.hedge_wins;
    } else {
      ++stats_.wasted_hedges;
    }
    hedge_outstanding_ = false;
  }

  ++stats_.ops_completed;
  if (reply.success) {
    ++stats_.ops_ok;
    budget_.earn(retry_.budget);
    // Feed the tail estimator (integer-only, no RNG; a pure no-op for
    // the hedge decision until the class reaches min_samples).
    if (hedge_.enabled) {
      hedge_est_.observe(inflight_op_.op, sim_.now() - issued_at_);
    }
  } else {
    ++stats_.ops_failed;
  }
  if (reply.hops > 0) ++stats_.forwarded_replies;
  stats_.latency_seconds.add(to_seconds(sim_.now() - issued_at_));
  if (tracer_ != nullptr) {
    trace_rec_.advance(TraceStage::kNetReply, sim_.now(), reply.req_id);
    trace_rec_.hops = reply.hops;
    trace_rec_.failed = !reply.success;
    tracer_->complete(trace_rec_, sim_.now());
  }
  if (reply.epoch > last_epoch_) {
    last_epoch_ = reply.epoch;
    locations_.clear();
  }
  locations_.learn(reply.hints);
  if (reply.giga_dir != kInvalidInode) {
    locations_.learn_giga(reply.giga_dir, reply.giga_bitmap, reply.giga_home);
  }

  schedule_next();
}

}  // namespace mdsim

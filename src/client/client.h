// Simulated file-system client.
//
// Clients are closed-loop: issue a metadata request, wait for the reply,
// think, repeat (the workload generator controls both the op stream and
// the pacing). For the subtree strategies, request routing uses the
// client's location cache (initial ignorance + learned hints); for the
// hashed strategies the client computes the authority directly, as those
// systems allow ("clients can locate and contact the responsible MDS
// directly", section 3.1.2).
#pragma once

#include <cstdint>
#include <memory>

#include "client/hedge_policy.h"
#include "client/location_cache.h"
#include "client/retry_policy.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"
#include "mds/dirfrag.h"
#include "mds/messages.h"
#include "net/network.h"
#include "strategy/partition.h"
#include "workload/workload.h"

namespace mdsim {

struct ClientStats {
  std::uint64_t ops_issued = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t ops_ok = 0;       // completed with success (goodput)
  std::uint64_t ops_failed = 0;
  std::uint64_t forwarded_replies = 0;  // replies that took >0 MDS hops
  std::uint64_t retries = 0;            // timeouts (e.g. a failed MDS)
  std::uint64_t stale_replies = 0;      // late/duplicate replies ignored
  std::uint64_t rejected_replies = 0;   // overload Rejected{retry_after}
  std::uint64_t retries_suppressed = 0; // retry budget dry: failed fast
  std::uint64_t giga_redirects = 0;     // stale-bitmap corrections received
  std::uint64_t hedges_fired = 0;       // backup requests sent
  std::uint64_t hedge_wins = 0;         // ops settled by the backup copy
  std::uint64_t wasted_hedges = 0;      // primary won after a hedge fired
  Summary latency_seconds;
};

class Client final : public NetEndpoint {
 public:
  Client(Simulation& sim, Network& net, FsTree& tree, Workload& workload,
         const Partitioner& partition, const DirFragRegistry& dirfrag,
         ClientId id, int num_mds, std::uint64_t seed);

  /// Attach to the network and schedule the first operation.
  void start();

  void on_message(NetAddr from, MessagePtr msg) override;

  ClientId id() const { return id_; }
  NetAddr addr() const { return addr_; }
  const ClientStats& stats() const { return stats_; }
  ClientStats& stats() { return stats_; }
  const LocationCache& locations() const { return locations_; }
  std::uint32_t uid() const { return uid_; }
  void set_uid(std::uint32_t uid) { uid_ = uid; }

  /// Retry policy: request timeout, exponential-backoff knobs, retry
  /// budget. Unanswered requests are re-issued after the timeout (to a
  /// random node, bypassing possibly-stale location knowledge) with
  /// exponential backoff (base << attempt, capped) and deterministic
  /// jitter in [d/2, d), so a crowd of clients stranded by a dead node
  /// doesn't re-stampede it in lockstep on recovery. The rng is only
  /// consulted on retries: healthy runs draw nothing.
  void set_retry_policy(const ClientRetryParams& p) {
    retry_ = p;
    budget_.init(p.budget);
  }
  const ClientRetryParams& retry_policy() const { return retry_; }

  /// Hedged reads (hedge_policy.h): once an op class's tail estimator is
  /// warm, a read-only first attempt that has not been answered after the
  /// class's ~p99 delay fires one backup copy (same req_id) at a
  /// different node; first reply wins, the loser is discarded as stale.
  /// Off by default: the issue path arms the ordinary timeout and draws
  /// no randomness.
  void set_hedge_policy(const HedgeParams& p) { hedge_ = p; }
  const HedgeParams& hedge_policy() const { return hedge_; }
  /// Estimator peek (tests): current tail estimate for an op class.
  SimTime hedge_estimate(OpType op) const {
    return hedge_est_.q[static_cast<std::size_t>(op)];
  }

  /// Enable per-request tracing: each issued op carries a pointer to this
  /// client's TraceRecord (closed-loop clients have exactly one op in
  /// flight, so one reusable record suffices) and completed ops are
  /// ingested by the collector. Null (the default) disables tracing.
  void set_tracer(TraceCollector* tracer) { tracer_ = tracer; }

 private:
  void schedule_next();
  void issue(const Operation& op);
  MdsId pick_mds(const Operation& op);
  void on_request_timeout();
  void on_hedge_fire();

  Simulation& sim_;
  Network& net_;
  FsTree& tree_;
  Workload& workload_;
  const Partitioner& partition_;
  const DirFragRegistry& dirfrag_;
  ClientId id_;
  int num_mds_;
  NetAddr addr_ = kInvalidAddr;
  std::uint32_t uid_ = 0;
  Rng rng_;
  LocationCache locations_;
  ClientStats stats_;
  TraceCollector* tracer_ = nullptr;
  TraceRecord trace_rec_;

  /// Highest partition-map epoch seen in replies. A jump means the
  /// cluster reconfigured (takeover or partition heal): learned locations
  /// may point at superseded authorities, so the cache is flushed.
  /// Starts at 1 — healthy runs never see a jump and never flush.
  std::uint64_t last_epoch_ = 1;
  std::uint64_t next_req_id_ = 1;
  std::uint64_t inflight_req_ = 0;  // 0 = idle
  SimTime issued_at_ = 0;
  ClientRetryParams retry_;
  RetryBudget budget_;
  Operation inflight_op_;  // kept for timeout retries
  int attempts_ = 0;
  EventHandle timeout_;
  EventHandle retry_timer_;

  // Hedged reads. When a hedge is armed, hedge_timer_ holds the trigger
  // and the ordinary timeout_ is armed only after the hedge fires (for
  // the remainder of the request_timeout window) — at most one of the two
  // is pending at any instant.
  HedgeParams hedge_;
  HedgeEstimator hedge_est_;
  EventHandle hedge_timer_;
  bool hedge_outstanding_ = false;  // a backup copy is in flight
  MdsId primary_mds_ = 0;           // where attempt 0 went (backup avoids it)
};

}  // namespace mdsim

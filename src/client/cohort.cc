#include "client/cohort.h"

#include <cassert>

namespace mdsim {

ClientCohort::ClientCohort(Simulation& sim, Network& net, FsTree& tree,
                           Workload& workload, const Partitioner& partition,
                           const DirFragRegistry& dirfrag, int count,
                           ClientId first_id, int num_mds,
                           std::uint64_t seed)
    : sim_(sim),
      net_(net),
      tree_(tree),
      workload_(workload),
      partition_(partition),
      dirfrag_(dirfrag),
      first_id_(first_id),
      num_mds_(num_mds),
      // Millisecond buckets: client timescales are 15 ms think times and
      // multi-second timeouts, so <1 ms of quantization is noise, and the
      // coarser tick batches an order of magnitude more clients per wheel
      // wakeup (one engine event services the whole bucket).
      wheel_(
          sim,
          [this](std::uint32_t idx, std::uint32_t stamp) {
            on_timer(idx, stamp);
          },
          kMillisecond) {
  assert(count > 0);
  wheel_.set_bucket_end_hook([this]() { flush_turn_stats(); });
  const std::size_t n = static_cast<std::size_t>(count);
  ports_.resize(n);  // never resized again: Port addresses must be stable
  uids_.resize(n);
  rngs_.reserve(n);
  next_req_.assign(n, 1);
  inflight_.assign(n, 0);
  issued_at_.assign(n, 0);
  attempts_.assign(n, 0);
  stamps_.assign(n, 0);
  last_epoch_.assign(n, 1);
  pending_.resize(n);
  remote_.assign(n, 0);
  remote_idx_.assign(n, 0);
  budgets_.resize(n);
  locs_.resize(n);
  // Same stream family as the standalone Client so cohort clients are
  // statistically comparable, derived per client via substream() so the
  // cohort needs one base seed.
  const Rng base(seed, 0xc11e47000ULL);
  for (std::size_t i = 0; i < n; ++i) {
    const ClientId id = client_id(static_cast<int>(i));
    ports_[i].cohort = this;
    ports_[i].idx = static_cast<std::uint32_t>(i);
    uids_[i] = static_cast<std::uint32_t>(100 + id);
    rngs_.push_back(base.substream(static_cast<std::uint64_t>(id)));
  }
}

void ClientCohort::set_tracer(TraceCollector* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) trace_recs_.resize(ports_.size());
}

void ClientCohort::set_remote_catalog(std::vector<RemoteTarget> catalog,
                                      double fraction) {
  catalog_ = std::move(catalog);
  remote_fraction_ = fraction;
}

void ClientCohort::start() {
  for (Port& p : ports_) p.addr = net_.attach(&p);
  for (int i = 0; i < size(); ++i) {
    schedule_next(static_cast<std::uint32_t>(i));
  }
}

void ClientCohort::arm(std::uint32_t idx, Kind kind, SimTime due) {
  // One live timer per client: a new stamp supersedes whatever is in the
  // wheel (stale entries fire into on_timer and fail the stamp compare).
  const std::uint32_t stamp = ((stamps_[idx] >> 2) + 1) << 2 | kind;
  stamps_[idx] = stamp;
  wheel_.arm(idx, stamp, due);
}

void ClientCohort::disarm(std::uint32_t idx) {
  stamps_[idx] = ((stamps_[idx] >> 2) + 1) << 2 | kThink;
}

void ClientCohort::on_timer(std::uint32_t idx, std::uint32_t stamp) {
  if (stamp != stamps_[idx]) return;  // superseded
  switch (stamp & 3u) {
    case kThink:
      begin_turn(idx);
      break;
    case kTimeout:
      on_timeout(idx);
      break;
    case kRetry:
      on_retry(idx);
      break;
    case kHedge:
      on_hedge(idx);
      break;
    default:
      assert(false);
  }
}

void ClientCohort::schedule_next(std::uint32_t idx) {
  Operation op;
  const SimTime delay =
      workload_.next(client_id(static_cast<int>(idx)), sim_.now(),
                     rngs_[idx], &op);
  if (delay == kNever) {
    disarm(idx);  // this client is done
    return;
  }
  pending_[idx] = std::move(op);
  arm(idx, kThink, sim_.now() + delay);
}

void ClientCohort::begin_turn(std::uint32_t idx) {
  remote_[idx] = 0;
  if (remote_fraction_ > 0.0 && !catalog_.empty() &&
      rngs_[idx].bernoulli(remote_fraction_)) {
    remote_[idx] = 1;
    remote_idx_[idx] = static_cast<std::uint32_t>(
        rngs_[idx].uniform(catalog_.size()));
  } else {
    const Operation& op = pending_[idx];
    // The target may have been unlinked while we were thinking.
    if (op.target == nullptr || !tree_.alive(op.target)) {
      schedule_next(idx);
      return;
    }
  }
  attempts_[idx] = 0;
  issue(idx);
}

MdsId ClientCohort::pick_mds(std::uint32_t idx, const Operation& op) {
  const StrategyTraits traits = traits_for(partition_.kind());
  if (!traits.client_computes_location) {
    // GIGA+ routing, mirroring Client::pick_mds branch for branch (and
    // draw for draw: this path consumes no RNG) so cohort and standalone
    // clients stay in lockstep.
    if (!locs_[idx].giga_empty()) {
      const bool namespace_op = op.op == OpType::kCreate ||
                                op.op == OpType::kMkdir ||
                                op.op == OpType::kLink;
      const FsNode* dir = namespace_op ? op.target : op.target->parent();
      if (dir != nullptr) {
        const auto* g = locs_[idx].giga_for(dir->ino());
        if (g != nullptr) {
          const std::uint64_t h = giga_name_hash(
              dir->ino(), namespace_op ? op.name : op.target->name());
          const std::uint32_t p =
              giga_partition(h, g->bitmap, dirfrag_.max_depth());
          return giga_node(g->home, p, num_mds_);
        }
      }
    }
    return locs_[idx].resolve(op.target, rngs_[idx], num_mds_);
  }
  const bool namespace_op = op.op == OpType::kCreate ||
                            op.op == OpType::kMkdir ||
                            op.op == OpType::kLink;
  if (namespace_op) {
    switch (partition_.kind()) {
      case StrategyKind::kDirHash:
        return partition_.authority_of(op.target) == kInvalidMds
                   ? 0
                   : static_cast<MdsId>(
                         op.target->path_hash() %
                         static_cast<std::uint64_t>(num_mds_));
      case StrategyKind::kFileHash:
      case StrategyKind::kLazyHybrid:
        return static_cast<MdsId>(child_path_hash(op.target, op.name) %
                                  static_cast<std::uint64_t>(num_mds_));
      default:
        break;
    }
  }
  return partition_.authority_of(op.target);
}

void ClientCohort::issue(std::uint32_t idx) {
  auto msg = std::make_unique<ClientRequestMsg>();
  msg->req_id = next_req_[idx]++;
  msg->client = client_id(static_cast<int>(idx));
  // Overload-admission context, as in Client::issue: stamped always,
  // read by servers only when protection is on.
  msg->attempt = attempts_[idx] < 255
                     ? static_cast<std::uint8_t>(attempts_[idx])
                     : 255;
  msg->deadline = sim_.now() + retry_.request_timeout;
  inflight_[idx] = msg->req_id;
  issued_at_[idx] = sim_.now();
  if (!hedge_out_.empty()) hedge_out_[idx] = 0;
  // Wheel-scope counter: every issue happens inside a bucket service
  // (think or retry fire), so the bucket-end hook folds it into stats_.
  ++pending_stats_.issued;

  if (remote_[idx] != 0) {
    // Cross-shard stat: the catalog entry names a remote MDS by global
    // address and the target's owner (whose uid we assume, since our own
    // uid means nothing against another shard's permission state). The
    // reply must route back across the fabric, so the request carries our
    // *global* address; never traced (the collector is shard-local).
    const RemoteTarget& t = catalog_[remote_idx_[idx]];
    msg->client_addr = net_.global_addr(addr(static_cast<int>(idx)));
    msg->op = OpType::kStat;
    msg->uid = t.uid;
    msg->target = t.ino;
    msg->secondary = kInvalidInode;
    ++remote_issued_;
    net_.send(addr(static_cast<int>(idx)), t.mds, std::move(msg));
  } else {
    const Operation& op = pending_[idx];
    msg->client_addr = addr(static_cast<int>(idx));
    msg->op = op.op;
    msg->uid = uids_[idx];
    msg->target = op.target->ino();
    msg->secondary =
        op.secondary != nullptr ? op.secondary->ino() : kInvalidInode;
    msg->name = op.name;
    if (tracer_ != nullptr) {
      TraceRecord& rec = trace_recs_[idx];
      if (attempts_[idx] == 0) {
        rec.begin(msg->req_id, msg->client, op.op, sim_.now());
      } else {
        rec.rearm(msg->req_id, sim_.now());
      }
      msg->trace = &rec;
    }
    // Retries distrust cached knowledge: spray somewhere random.
    const MdsId mds =
        attempts_[idx] == 0
            ? pick_mds(idx, op)
            : static_cast<MdsId>(
                  rngs_[idx].uniform(static_cast<std::uint64_t>(num_mds_)));
    assert(mds >= 0 && mds < num_mds_);
    if (!primary_.empty()) primary_[idx] = mds;
    net_.send(addr(static_cast<int>(idx)), mds, std::move(msg));
    // Hedge trigger, mirroring Client::issue: a warmed-up read-only first
    // attempt arms the kHedge timer at the op class's ~p99 delay instead
    // of the timeout. Remote turns never hedge (the backup pick is over
    // *this* shard's nodes; the remote target is another shard's).
    if (hedge_.enabled && num_mds_ > 1 && hedge_eligible(op.op, attempts_[idx])) {
      const SimTime hd = hedge_ests_[idx].delay(op.op, hedge_,
                                                retry_.request_timeout);
      if (hd > 0) {
        arm(idx, kHedge, sim_.now() + hd);
        return;
      }
    }
  }
  arm(idx, kTimeout, sim_.now() + retry_.request_timeout);
}

void ClientCohort::on_hedge(std::uint32_t idx) {
  if (inflight_[idx] == 0) return;  // raced with the reply
  ++pending_stats_.hedged;
  hedge_out_[idx] = 1;
  // One backup copy, same req_id, as in Client::on_hedge_fire: the losing
  // reply fails the req_id match and is discarded as stale. Never traced
  // (two in-flight copies must not share one attribution record).
  const Operation& op = pending_[idx];
  auto msg = std::make_unique<ClientRequestMsg>();
  msg->req_id = inflight_[idx];
  msg->client = client_id(static_cast<int>(idx));
  msg->client_addr = addr(static_cast<int>(idx));
  msg->op = op.op;
  msg->uid = uids_[idx];
  msg->target = op.target->ino();
  msg->secondary = op.secondary != nullptr ? op.secondary->ino()
                                           : kInvalidInode;
  msg->name = op.name;
  msg->attempt = 0;
  msg->deadline = issued_at_[idx] + retry_.request_timeout;
  msg->hedge = 1;
  const MdsId backup = hedge_pick_backup(primary_[idx], num_mds_, rngs_[idx]);
  assert(backup >= 0 && backup < num_mds_ && backup != primary_[idx]);
  net_.send(addr(static_cast<int>(idx)), backup, std::move(msg));
  // The retry clock keeps its original deadline.
  arm(idx, kTimeout, issued_at_[idx] + retry_.request_timeout);
}

void ClientCohort::give_up(std::uint32_t idx) {
  inflight_[idx] = 0;
  attempts_[idx] = 0;
  ++pending_stats_.failed;  // reached only from timeout/retry fires
  schedule_next(idx);
}

void ClientCohort::on_timeout(std::uint32_t idx) {
  ++pending_stats_.retries;
  ++attempts_[idx];
  if (remote_[idx] == 0 && !tree_.alive(pending_[idx].target)) {
    give_up(idx);
    return;
  }
  // Retry budget, as in Client: dry budget fails the op fast.
  if (!budgets_[idx].try_spend(retry_.budget)) {
    ++pending_stats_.suppressed;
    give_up(idx);
    return;
  }
  // Exponential backoff with jitter in [d/2, d), as in Client.
  const SimTime delay = retry_backoff_delay(retry_, attempts_[idx], rngs_[idx]);
  arm(idx, kRetry, sim_.now() + delay);
}

void ClientCohort::on_retry(std::uint32_t idx) {
  if (remote_[idx] == 0 && !tree_.alive(pending_[idx].target)) {
    give_up(idx);
    return;
  }
  issue(idx);
}

void ClientCohort::on_reply(std::uint32_t idx, NetAddr from, MessagePtr msg) {
  (void)from;
  if (msg->type == MsgType::kGigaRedirect) {
    // Reply-path context: stats_ updated directly, as in Client. A
    // redirect for a *remote* turn names another shard's inode; like
    // remote hints/epochs, it is never learned.
    const auto& r = static_cast<GigaRedirectMsg&>(*msg);
    ++stats_.giga_redirects;
    if (remote_[idx] == 0) locs_[idx].learn_giga(r.dir, r.bitmap, r.home);
    return;
  }
  if (msg->type != MsgType::kClientReply) return;
  auto& reply = static_cast<ClientReplyMsg&>(*msg);
  if (reply.req_id != inflight_[idx]) {
    ++stats_.stale_replies;
    return;
  }
  if (reply.rejected) {
    // Overload rejection — mirror Client::on_message exactly (same
    // counter order, same single RNG draw) so the two implementations
    // stay in retry lockstep. Reply-path context: stats_ is updated
    // directly, never through the wheel-scope pending counters.
    ++stats_.rejected_replies;
    ++attempts_[idx];
    if (!hedge_out_.empty()) hedge_out_[idx] = 0;
    if (remote_[idx] == 0 && !tree_.alive(pending_[idx].target)) {
      inflight_[idx] = 0;
      attempts_[idx] = 0;
      ++stats_.ops_failed;
      schedule_next(idx);
      return;
    }
    if (!budgets_[idx].try_spend(retry_.budget)) {
      ++stats_.retries_suppressed;
      inflight_[idx] = 0;
      attempts_[idx] = 0;
      ++stats_.ops_failed;
      schedule_next(idx);
      return;
    }
    const SimTime delay = rejected_retry_delay(reply.retry_after, rngs_[idx]);
    // Mark idle so a duplicate of this rejection lands in the stale
    // branch; the kRetry arm supersedes the pending timeout's stamp.
    inflight_[idx] = 0;
    arm(idx, kRetry, sim_.now() + delay);
    return;
  }
  inflight_[idx] = 0;
  attempts_[idx] = 0;
  // No timer cancellation needed: schedule_next below supersedes the
  // pending timeout's stamp (via arm or disarm).
  if (!hedge_out_.empty() && hedge_out_[idx] != 0) {
    // Two copies were racing; the `hedge` echo says which one settled the
    // op (the loser lands in stale_replies). Reply-path context: stats_
    // directly, as with the other reply counters.
    if (reply.hedge != 0) {
      ++stats_.hedge_wins;
    } else {
      ++stats_.wasted_hedges;
    }
    hedge_out_[idx] = 0;
  }

  ++stats_.ops_completed;
  if (reply.success) {
    ++stats_.ops_ok;
    budgets_[idx].earn(retry_.budget);
    // Feed the tail estimator, as in Client (local turns only: a remote
    // turn's latency describes another shard's cluster).
    if (hedge_.enabled && remote_[idx] == 0) {
      hedge_ests_[idx].observe(pending_[idx].op, sim_.now() - issued_at_[idx]);
    }
  } else {
    ++stats_.ops_failed;
  }
  if (reply.hops > 0) ++stats_.forwarded_replies;
  stats_.latency_seconds.add(to_seconds(sim_.now() - issued_at_[idx]));
  if (remote_[idx] == 0) {
    if (tracer_ != nullptr) {
      TraceRecord& rec = trace_recs_[idx];
      rec.advance(TraceStage::kNetReply, sim_.now(), reply.req_id);
      rec.hops = reply.hops;
      rec.failed = !reply.success;
      tracer_->complete(rec, sim_.now());
    }
    if (reply.epoch > last_epoch_[idx]) {
      last_epoch_[idx] = reply.epoch;
      locs_[idx].clear();
    }
    locs_[idx].learn(reply.hints);
    if (reply.giga_dir != kInvalidInode) {
      locs_[idx].learn_giga(reply.giga_dir, reply.giga_bitmap,
                            reply.giga_home);
    }
  }
  // Remote replies: hints and epochs describe another shard's namespace
  // and partition map — both are meaningless against ours, so neither is
  // learned (inode ids collide across shard trees).

  schedule_next(idx);
}

}  // namespace mdsim

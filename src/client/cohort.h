// Dense client population: struct-of-arrays cohort.
//
// The per-client `Client` object costs a heap allocation, a private event
// per pending timer in the engine's global heap, and scattered state that
// thrashes caches once populations reach the tens of thousands. A
// ClientCohort holds the *same* closed-loop protocol (think → issue →
// reply | timeout → backoff → retry) as parallel arrays indexed by a dense
// client index, and replaces per-client heap events with a single shared
// TimerWheel: each client has at most one live timer (closed-loop
// invariant), identified by a (kind, generation) stamp so superseded
// timers are dropped with one compare when they fire.
//
// Each client still owns a real network address — a per-client Port
// endpoint attaches to the Network — so MDS-side per-address logic
// (reply routing, update dedup) sees exactly the shape it expects, and
// request ids remain a plain per-client sequence.
//
// In a sharded cluster the cohort also drives cross-shard traffic: a
// catalog of remote targets (global MDS address, inode, owning uid) is
// installed at build time, and each think-turn issues a remote stat with
// probability `remote_fraction`, spoofing the owner's uid. Remote replies
// carry hints and epochs that refer to *another shard's* namespace, so
// both are ignored; remote ops are never traced (the trace collector is
// shard-local).
#pragma once

#include <cstdint>
#include <vector>

#include "client/client.h"  // ClientStats
#include "client/location_cache.h"
#include "common/rng.h"
#include "common/trace.h"
#include "common/types.h"
#include "mds/dirfrag.h"
#include "net/network.h"
#include "sim/timer_wheel.h"
#include "strategy/partition.h"
#include "workload/workload.h"

namespace mdsim {

class ClientCohort {
 public:
  /// A cross-shard stat target: `mds` is a shard-global address.
  struct RemoteTarget {
    NetAddr mds = kInvalidAddr;
    InodeId ino = kInvalidInode;
    std::uint32_t uid = 0;
  };

  ClientCohort(Simulation& sim, Network& net, FsTree& tree,
               Workload& workload, const Partitioner& partition,
               const DirFragRegistry& dirfrag, int count, ClientId first_id,
               int num_mds, std::uint64_t seed);

  /// Attach every client's port and schedule its first operation.
  void start();

  int size() const { return static_cast<int>(ports_.size()); }
  ClientId client_id(int idx) const {
    return first_id_ + static_cast<ClientId>(idx);
  }
  NetAddr addr(int idx) const { return ports_[static_cast<std::size_t>(idx)].addr; }

  void set_uid(int idx, std::uint32_t uid) {
    uids_[static_cast<std::size_t>(idx)] = uid;
  }
  /// Retry policy (timeout, backoff, budget) for every client in the
  /// cohort; mirrors Client::set_retry_policy.
  void set_retry_policy(const ClientRetryParams& p) {
    retry_ = p;
    for (RetryBudget& b : budgets_) b.init(p.budget);
  }
  const ClientRetryParams& retry_policy() const { return retry_; }

  /// Hedged reads for every client in the cohort; mirrors
  /// Client::set_hedge_policy (same estimator, same trigger, same single
  /// backup-pick draw). Per-client hedge arrays are allocated only when
  /// the policy is enabled — disabled cohorts carry no extra state.
  void set_hedge_policy(const HedgeParams& p) {
    hedge_ = p;
    if (hedge_.enabled) {
      hedge_ests_.resize(ports_.size());
      hedge_out_.assign(ports_.size(), 0);
      primary_.assign(ports_.size(), 0);
    }
  }
  const HedgeParams& hedge_policy() const { return hedge_; }
  /// Estimator peek (tests): client idx's tail estimate for an op class.
  SimTime hedge_estimate(int idx, OpType op) const {
    return hedge_ests_.empty()
               ? 0
               : hedge_ests_[static_cast<std::size_t>(idx)]
                     .q[static_cast<std::size_t>(op)];
  }
  void set_tracer(TraceCollector* tracer);

  /// Install cross-shard targets; each think-turn goes remote with
  /// probability `fraction` (when the catalog is non-empty).
  void set_remote_catalog(std::vector<RemoteTarget> catalog, double fraction);

  /// Aggregate over every client in the cohort.
  const ClientStats& stats() const { return stats_; }
  ClientStats& stats() { return stats_; }
  std::uint64_t remote_ops_issued() const { return remote_issued_; }
  const TimerWheel& wheel() const { return wheel_; }

 private:
  /// Timer kinds, encoded in the low bits of the wheel stamp.
  enum Kind : std::uint32_t { kThink = 0, kTimeout = 1, kRetry = 2, kHedge = 3 };

  struct Port final : NetEndpoint {
    ClientCohort* cohort = nullptr;
    std::uint32_t idx = 0;
    NetAddr addr = kInvalidAddr;
    void on_message(NetAddr from, MessagePtr msg) override {
      cohort->on_reply(idx, from, std::move(msg));
    }
  };

  void on_timer(std::uint32_t idx, std::uint32_t stamp);
  void on_reply(std::uint32_t idx, NetAddr from, MessagePtr msg);
  void schedule_next(std::uint32_t idx);
  void begin_turn(std::uint32_t idx);
  void issue(std::uint32_t idx);
  void on_timeout(std::uint32_t idx);
  void on_retry(std::uint32_t idx);
  void on_hedge(std::uint32_t idx);
  void give_up(std::uint32_t idx);
  MdsId pick_mds(std::uint32_t idx, const Operation& op);
  /// Arm this client's one live timer (superseding any previous one).
  void arm(std::uint32_t idx, Kind kind, SimTime due);
  /// Invalidate the live timer without arming a new one.
  void disarm(std::uint32_t idx);

  Simulation& sim_;
  Network& net_;
  FsTree& tree_;
  Workload& workload_;
  const Partitioner& partition_;
  const DirFragRegistry& dirfrag_;
  ClientId first_id_;
  int num_mds_;
  ClientRetryParams retry_;
  TraceCollector* tracer_ = nullptr;

  TimerWheel wheel_;
  std::vector<Port> ports_;

  // Parallel per-client arrays, indexed by dense cohort index.
  std::vector<std::uint32_t> uids_;
  std::vector<Rng> rngs_;             // substream(i) of the cohort seed
  std::vector<std::uint64_t> next_req_;
  std::vector<std::uint64_t> inflight_;  // req id, 0 = idle
  std::vector<SimTime> issued_at_;
  std::vector<std::int32_t> attempts_;
  std::vector<std::uint32_t> stamps_;    // current valid wheel stamp
  std::vector<std::uint64_t> last_epoch_;
  std::vector<Operation> pending_;
  std::vector<std::uint8_t> remote_;     // this turn targets another shard
  std::vector<std::uint32_t> remote_idx_;  // catalog index when remote
  std::vector<RetryBudget> budgets_;     // per-client retry budgets
  std::vector<LocationCache> locs_;
  std::vector<TraceRecord> trace_recs_;  // sized when a tracer is set

  // Hedged reads (arrays sized only when hedge_.enabled).
  HedgeParams hedge_;
  std::vector<HedgeEstimator> hedge_ests_;
  std::vector<std::uint8_t> hedge_out_;  // a backup copy is in flight
  std::vector<MdsId> primary_;           // where attempt 0 went

  std::vector<RemoteTarget> catalog_;
  double remote_fraction_ = 0.0;
  std::uint64_t remote_issued_ = 0;

  ClientStats stats_;
  /// Turn counters accumulated during one wheel-bucket service and folded
  /// into stats_ by the bucket-end hook: one stats update per bucket, not
  /// one per timer. Reply-path counters (completions, latency) are driven
  /// by network delivery, not the wheel, and update stats_ directly.
  struct PendingTurnStats {
    std::uint32_t issued = 0;
    std::uint32_t retries = 0;
    std::uint32_t failed = 0;
    std::uint32_t suppressed = 0;  // budget-denied timeout retries
    std::uint32_t hedged = 0;      // backup requests sent (hedge fires)
  };
  PendingTurnStats pending_stats_;
  void flush_turn_stats() {
    stats_.ops_issued += pending_stats_.issued;
    stats_.retries += pending_stats_.retries;
    stats_.ops_failed += pending_stats_.failed;
    stats_.retries_suppressed += pending_stats_.suppressed;
    stats_.hedges_fired += pending_stats_.hedged;
    pending_stats_ = PendingTurnStats{};
  }
};

}  // namespace mdsim

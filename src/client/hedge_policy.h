// Client-side hedged reads: knobs, the adaptive per-op-class tail
// estimator, and the hedge trigger/target computations.
//
// Like retry_policy.h, everything both the standalone Client and the SoA
// Cohort need lives here in one place so the two implementations cannot
// drift (test_hedge_parity asserts they stay in lockstep). The protocol:
// after issuing a read-only op, the client arms a hedge timer at an
// adaptive delay tracking that op class's ~p99 latency (NOT the fixed
// request_timeout — the whole point is to fire while the op is merely
// slow, long before it is presumed lost). If the primary has not answered
// by then, one backup copy of the request — same req_id — goes to a
// different node; whichever reply arrives first wins, and the loser fails
// the client's req_id-match check and is discarded as a stale reply.
//
// Zero-cost-off: with hedging disabled (or before the estimator has seen
// min_samples completions of a class) the issue path takes the ordinary
// timeout-arming branch, makes no extra RNG draws, and schedules nothing.
#pragma once

#include "common/rng.h"
#include "common/types.h"

namespace mdsim {

/// Hedged-read knobs, plumbed through SimConfig like ClientRetryParams.
struct HedgeParams {
  /// Master switch. Off: issue paths are byte-identical to pre-hedging.
  bool enabled = false;
  /// Floor on the hedge trigger delay: never hedge earlier than this,
  /// however fast the estimated tail (guards against hedging every op
  /// when the whole cluster is uniformly fast).
  SimTime min_delay = 2 * kMillisecond;
  /// Hedge trigger = delay_factor × the op class's tail estimate.
  double delay_factor = 1.0;
  /// Completions of an op class required before hedging it (the
  /// estimator must have something to estimate).
  std::uint32_t min_samples = 32;
};

/// Streaming tail-latency estimator, one cell per op class. The update is
/// the classic asymmetric-step quantile tracker: an estimate q moves up
/// by q/16 when a sample exceeds it and down by q/2048 otherwise, so at
/// equilibrium P(sample > q) ≈ (1/2048)/(1/16 + 1/2048) ≈ 0.008 — q sits
/// near the class's p99. Integer-only, no RNG, no allocations: identical
/// across Client and Cohort and across thread counts by construction.
struct HedgeEstimator {
  SimTime q[kNumOpTypes] = {};
  std::uint32_t n[kNumOpTypes] = {};

  /// Feed one successful completion's end-to-end latency.
  void observe(OpType op, SimTime latency) {
    const auto i = static_cast<std::size_t>(op);
    SimTime& est = q[i];
    if (est == 0) {
      est = latency + latency / 2;  // seed above the first sample
    } else if (latency > est) {
      est += est / 16 > 0 ? est / 16 : 1;
    } else {
      est -= est / 2048 > 0 ? est / 2048 : 1;
    }
    ++n[i];
  }

  /// Hedge trigger delay for `op`, or 0 when this op must not hedge
  /// (class not warmed up yet, or the estimate is so close to the retry
  /// timeout that the hedge would never fire before it).
  SimTime delay(OpType op, const HedgeParams& p, SimTime request_timeout) const {
    const auto i = static_cast<std::size_t>(op);
    if (n[i] < p.min_samples) return 0;
    SimTime d = static_cast<SimTime>(p.delay_factor *
                                     static_cast<double>(q[i]));
    if (d < p.min_delay) d = p.min_delay;
    if (d >= request_timeout) return 0;
    return d;
  }
};

/// Backup-target pick: uniform over the other nodes. Exactly one RNG draw
/// — Client and Cohort must call this in identical situations to keep
/// their streams aligned. (The backup may itself forward to the slow
/// authority; that is fine — first reply wins either way, and a replica
/// holder answers locally.)
inline MdsId hedge_pick_backup(MdsId primary, int num_mds, Rng& rng) {
  const MdsId off = static_cast<MdsId>(
      rng.uniform(static_cast<std::uint64_t>(num_mds - 1)));
  return off >= primary ? static_cast<MdsId>(off + 1) : off;
}

/// True when `op` is eligible for hedging at all: read-only (a duplicated
/// update would double-apply), a *point* read (a hedged readdir at a node
/// that lacks the complete directory triggers a whole-directory disk
/// fill — duplicating the one bulk read class turns the backup into a
/// disk storm at a healthy node), and a first attempt (retries already
/// spray randomly; hedging them would double the pressure exactly when
/// the cluster is sick).
constexpr bool hedge_eligible(OpType op, int attempts) {
  return !op_is_update(op) && op != OpType::kReaddir && attempts == 0;
}

}  // namespace mdsim

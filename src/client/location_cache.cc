#include "client/location_cache.h"

namespace mdsim {

void LocationCache::learn(const std::vector<LocationHint>& hints) {
  for (const LocationHint& h : hints) {
    if (hints_.size() >= capacity_ && hints_.count(h.ino) == 0) {
      // Cheap pressure valve: drop an arbitrary entry. Client knowledge is
      // allowed to be lossy — that is the design point.
      hints_.erase(hints_.begin());
    }
    hints_[h.ino] = h;
  }
}

const LocationHint* LocationCache::hint_for(InodeId ino) const {
  auto it = hints_.find(ino);
  return it == hints_.end() ? nullptr : &it->second;
}

MdsId LocationCache::resolve(const FsNode* target, Rng& rng,
                             int num_mds) const {
  for (const FsNode* n = target; n != nullptr; n = n->parent()) {
    auto it = hints_.find(n->ino());
    if (it == hints_.end()) continue;
    const LocationHint& h = it->second;
    if (h.replicated_everywhere) {
      return static_cast<MdsId>(rng.uniform(static_cast<std::uint64_t>(num_mds)));
    }
    return h.authority;
  }
  return static_cast<MdsId>(rng.uniform(static_cast<std::uint64_t>(num_mds)));
}

}  // namespace mdsim

#include "client/location_cache.h"

namespace mdsim {

void LocationCache::grow(std::size_t new_slots) {
  std::vector<LocationHint> old = std::move(slots_);
  slots_.assign(new_slots, LocationHint{});
  size_ = 0;
  for (const LocationHint& h : old) {
    if (h.ino != kInvalidInode) insert(h);
  }
}

void LocationCache::insert(const LocationHint& h) {
  std::size_t i = slot_of(h.ino);
  for (;;) {
    LocationHint& s = slots_[i];
    if (s.ino == h.ino) {
      s = h;
      return;
    }
    if (s.ino == kInvalidInode) {
      s = h;
      ++size_;
      return;
    }
    i = (i + 1) & (slots_.size() - 1);
  }
}

void LocationCache::learn(const LocationHint* hints, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    if (hints[k].ino == kInvalidInode) continue;
    if (slots_.empty()) grow(64);
    if (size_ >= capacity_) {
      // Pressure valve: client knowledge is allowed to be lossy — that is
      // the design point. Resetting beats per-entry eviction bookkeeping
      // on a path this hot, and the default capacity makes it a
      // never-in-practice fallback.
      clear();
      grow(64);
    } else if ((size_ + 1) * 4 >= slots_.size() * 3) {
      grow(slots_.size() * 2);
    }
    insert(hints[k]);
  }
}

const LocationHint* LocationCache::hint_for(InodeId ino) const {
  if (slots_.empty() || ino == kInvalidInode) return nullptr;
  std::size_t i = slot_of(ino);
  for (;;) {
    const LocationHint& s = slots_[i];
    if (s.ino == ino) return &s;
    if (s.ino == kInvalidInode) return nullptr;
    i = (i + 1) & (slots_.size() - 1);
  }
}

MdsId LocationCache::resolve(const FsNode* target, Rng& rng,
                             int num_mds) const {
  if (!slots_.empty()) {
    for (const FsNode* n = target; n != nullptr; n = n->parent()) {
      const LocationHint* h = hint_for(n->ino());
      if (h == nullptr) continue;
      if (h->replicated_everywhere) {
        return static_cast<MdsId>(
            rng.uniform(static_cast<std::uint64_t>(num_mds)));
      }
      return h->authority;
    }
  }
  return static_cast<MdsId>(rng.uniform(static_cast<std::uint64_t>(num_mds)));
}

}  // namespace mdsim

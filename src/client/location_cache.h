// Client-side metadata location cache (paper sections 4.4 and 5.3.3).
//
// Clients of the subtree strategies are initially ignorant of the metadata
// partition. Every reply carries distribution info for the requested item
// and its prefixes; the client caches it and directs future requests based
// on the *deepest known prefix* of the target path. Stale knowledge (after
// load balancing moved a subtree) produces misdirected requests that the
// cluster forwards — the overhead measured in Figure 6.
//
// Storage is a flat open-addressed table rather than an unordered_map:
// resolve() probes once per ancestor of every issued request (the hottest
// client-side path at cohort scale), and learn() runs once per hint in
// every reply. A hint's own ino is the key (kInvalidInode marks an empty
// slot), so the table is a bare vector of hints with linear probing and
// no per-insert allocation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "fstree/tree.h"
#include "mds/messages.h"

namespace mdsim {

class LocationCache {
 public:
  /// `capacity`: max cached hints. Client knowledge is allowed to be
  /// lossy; at capacity the table is simply reset (a pressure valve that
  /// never fires at the default size in practice).
  explicit LocationCache(std::size_t capacity = 65536)
      : capacity_(capacity) {}

  void learn(const LocationHint* hints, std::size_t n);
  template <typename Container>
  void learn(const Container& hints) {
    if (!hints.empty()) learn(hints.data(), hints.size());
  }
  void learn(std::initializer_list<LocationHint> hints) {
    learn(hints.begin(), hints.size());
  }

  /// Pick the MDS to contact for `target`: the hint on the deepest known
  /// prefix. Replicated-everywhere prefixes resolve to a uniformly random
  /// node. With no knowledge at all, a random node is chosen (the paper's
  /// "requests are directed randomly").
  MdsId resolve(const FsNode* target, Rng& rng, int num_mds) const;

  std::size_t size() const { return size_; }
  const LocationHint* hint_for(InodeId ino) const;

  // --- GIGA+ split bitmaps (possibly stale; corrected by redirects) --------

  /// Cached bitmap+home of a giga-fragmented directory.
  struct GigaEntry {
    std::uint64_t bitmap = 0;
    MdsId home = kInvalidMds;
  };

  /// Learn/refresh a directory's split bitmap (from a reply piggyback or
  /// a GigaRedirect). bitmap == 0 means the directory was unhashed: drop.
  void learn_giga(InodeId dir, std::uint64_t bitmap, MdsId home) {
    if (dir == kInvalidInode) return;
    if (bitmap == 0) {
      giga_.erase(dir);
    } else {
      giga_[dir] = GigaEntry{bitmap, home};
    }
  }
  const GigaEntry* giga_for(InodeId dir) const {
    if (giga_.empty()) return nullptr;
    auto it = giga_.find(dir);
    return it == giga_.end() ? nullptr : &it->second;
  }
  /// Fast guard for the routing hot path: true in every run where no
  /// directory ever fragmented (the common case).
  bool giga_empty() const { return giga_.empty(); }
  std::size_t giga_size() const { return giga_.size(); }

  /// Drop everything (the cluster told us its authority layout was
  /// reconfigured; per-item invalidation is not worth modeling). Split
  /// bitmaps survive an epoch flush: they are per-directory maps keyed
  /// off a stable home, not authority-map state, and the redirect
  /// protocol corrects them if they did go stale.
  void clear() {
    slots_.clear();
    size_ = 0;
  }

 private:
  std::size_t slot_of(InodeId ino) const {
    // Fibonacci scramble so sequential inos spread across the table.
    return static_cast<std::size_t>(ino * 0x9e3779b97f4a7c15ULL) &
           (slots_.size() - 1);
  }
  void insert(const LocationHint& h);
  void grow(std::size_t new_slots);

  std::size_t capacity_;
  std::size_t size_ = 0;
  /// Power-of-two table; slot.ino == kInvalidInode means empty.
  std::vector<LocationHint> slots_;
  /// Giga-fragmented directories this client knows about. Tiny (only
  /// directories hot/big enough to fragment) and off the resolve() probe
  /// path, so a plain map is fine here.
  std::unordered_map<InodeId, GigaEntry> giga_;
};

}  // namespace mdsim

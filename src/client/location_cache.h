// Client-side metadata location cache (paper sections 4.4 and 5.3.3).
//
// Clients of the subtree strategies are initially ignorant of the metadata
// partition. Every reply carries distribution info for the requested item
// and its prefixes; the client caches it and directs future requests based
// on the *deepest known prefix* of the target path. Stale knowledge (after
// load balancing moved a subtree) produces misdirected requests that the
// cluster forwards — the overhead measured in Figure 6.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/rng.h"
#include "common/types.h"
#include "fstree/tree.h"
#include "mds/messages.h"

namespace mdsim {

class LocationCache {
 public:
  /// `capacity`: max cached hints (simple random-ish eviction beyond it).
  explicit LocationCache(std::size_t capacity = 65536)
      : capacity_(capacity) {}

  void learn(const std::vector<LocationHint>& hints);

  /// Pick the MDS to contact for `target`: the hint on the deepest known
  /// prefix. Replicated-everywhere prefixes resolve to a uniformly random
  /// node. With no knowledge at all, a random node is chosen (the paper's
  /// "requests are directed randomly").
  MdsId resolve(const FsNode* target, Rng& rng, int num_mds) const;

  std::size_t size() const { return hints_.size(); }
  const LocationHint* hint_for(InodeId ino) const;

  /// Drop everything (the cluster told us its authority layout was
  /// reconfigured; per-item invalidation is not worth modeling).
  void clear() { hints_.clear(); }

 private:
  std::size_t capacity_;
  std::unordered_map<InodeId, LocationHint> hints_;
};

}  // namespace mdsim

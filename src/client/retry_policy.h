// Client-side retry policy: timeout/backoff knobs, the shared backoff
// computation, and the per-client retry budget.
//
// Both the standalone Client and the SoA Cohort implement the same retry
// protocol; the timeout, backoff, and jitter math lives here so the two
// cannot drift (test_retry_parity asserts they stay in lockstep). The
// budget implements gRPC-style retry throttling: successes earn fractional
// tokens, each retry spends a whole one, and a dry budget fails the
// operation fast instead of feeding a retry storm.
#pragma once

#include <algorithm>

#include "common/rng.h"
#include "common/types.h"

namespace mdsim {

/// Retry-budget knobs. Disabled by default: the stock client retries
/// unconditionally, which is exactly the behavior the overload bench's
/// "protection off" arm needs to reproduce.
struct RetryBudgetParams {
  bool enabled = false;
  /// Tokens earned per successful reply (gRPC uses 0.1: retries are
  /// throttled to ~10% of the success rate once the budget is spent).
  double ratio = 0.1;
  /// Token cap; also the initial balance, so a cold client can ride out
  /// a short blip before throttling engages.
  double cap = 8.0;
};

/// All client retry knobs, plumbed from SimConfig / MdsParams so benches
/// can sweep them (previously hard-coded in client.h / cohort.h).
struct ClientRetryParams {
  SimTime request_timeout = 5 * kSecond;
  SimTime backoff_base = 250 * kMillisecond;
  SimTime backoff_cap = 2 * kSecond;
  RetryBudgetParams budget;
};

/// Backoff before retry number `attempts` (1-based): exponential in the
/// attempt count, capped, with ±50% decorrelating jitter. Exactly one RNG
/// draw — Client and Cohort must call this in identical situations to
/// keep their streams aligned.
inline SimTime retry_backoff_delay(const ClientRetryParams& p, int attempts,
                                   Rng& rng) {
  const int shift = attempts - 1 < 6 ? attempts - 1 : 6;
  SimTime d = p.backoff_base << shift;
  if (d > p.backoff_cap) d = p.backoff_cap;
  return d / 2 + static_cast<SimTime>(rng.uniform_double() *
                                      static_cast<double>(d / 2));
}

/// Delay before honoring a server's Rejected{retry_after}: the server's
/// hint plus up to +50% jitter so a cohort of rejected clients does not
/// return as a synchronized thundering herd. One RNG draw.
inline SimTime rejected_retry_delay(SimTime retry_after, Rng& rng) {
  return retry_after + static_cast<SimTime>(rng.uniform_double() *
                                            static_cast<double>(retry_after / 2));
}

/// Per-client retry budget. Pure arithmetic, no RNG, no time — identical
/// across Client and Cohort and across thread counts by construction.
struct RetryBudget {
  double tokens = 0.0;

  void init(const RetryBudgetParams& p) { tokens = p.cap; }
  void earn(const RetryBudgetParams& p) {
    if (p.enabled) tokens = std::min(p.cap, tokens + p.ratio);
  }
  /// True if a retry may proceed (and the token is spent). With the
  /// budget disabled, always true and free.
  bool try_spend(const RetryBudgetParams& p) {
    if (!p.enabled) return true;
    if (tokens < 1.0) return false;
    tokens -= 1.0;
    return true;
  }
};

}  // namespace mdsim

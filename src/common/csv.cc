#include "common/csv.h"

#include <iomanip>
#include <iostream>
#include <stdexcept>

namespace mdsim {

CsvWriter::CsvWriter(const std::string& path, bool echo_stdout)
    : path_(path), out_(path), echo_(echo_stdout) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::~CsvWriter() {
  if (row_started_) end_row();
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(std::initializer_list<std::string> cols) {
  bool first = true;
  for (const auto& c : cols) {
    if (!first) row_ << ',';
    row_ << escape(c);
    first = false;
  }
  row_started_ = true;
  end_row();
}

CsvWriter& CsvWriter::field(const std::string& v) {
  if (row_started_) row_ << ',';
  row_ << escape(v);
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  if (row_started_) row_ << ',';
  row_ << std::setprecision(10) << v;
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  if (row_started_) row_ << ',';
  row_ << v;
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t v) {
  if (row_started_) row_ << ',';
  row_ << v;
  row_started_ = true;
  return *this;
}

void CsvWriter::end_row() {
  raw(row_.str());
  row_.str("");
  row_.clear();
  row_started_ = false;
}

void CsvWriter::raw(const std::string& s) {
  out_ << s << '\n';
  if (echo_) std::cout << s << '\n';
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace mdsim

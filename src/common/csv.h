// Minimal CSV writer used by the bench harness to emit figure data.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

namespace mdsim {

/// Streams rows to a CSV file (and optionally mirrors them to stdout).
/// Fields containing commas/quotes/newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path, bool echo_stdout = false);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void header(std::initializer_list<std::string> cols);

  /// Begin a row; append fields with `field`, close with `end_row`.
  CsvWriter& field(const std::string& v);
  CsvWriter& field(double v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(int v) { return field(static_cast<std::int64_t>(v)); }
  void end_row();

  const std::string& path() const { return path_; }

 private:
  void raw(const std::string& s);
  static std::string escape(const std::string& s);

  std::string path_;
  std::ofstream out_;
  bool echo_;
  bool row_started_ = false;
  std::ostringstream row_;
};

/// Format a double with fixed precision (helper for console tables).
std::string fmt_double(double v, int precision = 2);

}  // namespace mdsim

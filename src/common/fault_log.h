// Failure-lifecycle incident log (paper section 4.6 made measurable).
//
// Every MDS crash opens an incident; the cluster and the nodes stamp the
// lifecycle milestones onto it as they happen: first detection by a
// survivor (missed heartbeats), takeover (delegations redistributed and
// the journal replayed by heirs), restart (process back, replaying its
// log), rejoin (replay finished, serving again) and re-mark-up (the first
// survivor that heard a heartbeat again). Metrics derives detection
// latency, unavailability windows and recovery time from these stamps.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mdsim {

struct FaultIncident {
  static constexpr SimTime kUnset = ~SimTime{0};

  MdsId node = kInvalidMds;
  SimTime crashed_at = kUnset;
  SimTime detected_at = kUnset;  // first survivor detection
  MdsId detected_by = kInvalidMds;
  SimTime takeover_at = kUnset;  // delegations redistributed
  SimTime restarted_at = kUnset;  // process back, replay begins
  SimTime rejoined_at = kUnset;   // replay done, serving again
  SimTime remarked_up_at = kUnset;  // first peer marked it up again
  bool open = true;

  bool has(SimTime t) const { return t != kUnset; }
};

/// A node losing (and possibly regaining) its authority lease: the span
/// it spent self-fenced — not serving writes — because it could not hear
/// a quorum. Distinct from FaultIncident: the process is up the whole
/// time; the network partitioned it away.
struct FenceIncident {
  static constexpr SimTime kUnset = FaultIncident::kUnset;

  MdsId node = kInvalidMds;
  SimTime fenced_at = kUnset;
  SimTime unfenced_at = kUnset;
  bool open = true;
};

/// An MDS shedding load at admission. Consecutive sheds on one node are
/// coalesced into an episode: the episode stays open while sheds keep
/// arriving and closes after a quiet gap (no shed for kQuietGap). The
/// episode span approximates "time spent in overload" the way fence
/// incidents approximate time spent partitioned.
struct OverloadIncident {
  static constexpr SimTime kUnset = FaultIncident::kUnset;

  MdsId node = kInvalidMds;
  SimTime began_at = kUnset;
  SimTime last_shed_at = kUnset;
  std::uint64_t sheds = 0;
  bool open = true;
};

/// A peer observed to be gray-degraded: its health score (EWMA of
/// heartbeat lag + self-reported service lag) crossed the degraded
/// threshold at some MDS. Distinct from FaultIncident (the node is alive
/// and heartbeating) and from the *injection* record below: this is what
/// the detector saw, that is what was actually done to the node.
struct GrayIncident {
  static constexpr SimTime kUnset = FaultIncident::kUnset;

  MdsId node = kInvalidMds;
  SimTime degraded_at = kUnset;
  SimTime recovered_at = kUnset;
  MdsId detected_by = kInvalidMds;  // first detector
  bool open = true;
};

/// Injection ground truth: the window in which a fail-slow fault was
/// actually installed on a node (ClusterSim::set_fail_slow). Benches
/// compare detected GrayIncidents against these.
struct FailSlowIncident {
  static constexpr SimTime kUnset = FaultIncident::kUnset;

  MdsId node = kInvalidMds;
  SimTime began_at = kUnset;
  SimTime cleared_at = kUnset;
  bool open = true;
};

class FaultLog {
 public:
  void note_crash(MdsId node, SimTime now) {
    // A re-crash closes any incident still open for the node.
    if (FaultIncident* inc = open_incident(node)) inc->open = false;
    FaultIncident fresh;
    fresh.node = node;
    fresh.crashed_at = now;
    incidents_.push_back(fresh);
  }

  void note_detection(MdsId node, MdsId by, SimTime now) {
    FaultIncident* inc = open_incident(node);
    if (inc == nullptr || inc->has(inc->detected_at)) return;
    inc->detected_at = now;
    inc->detected_by = by;
  }

  void note_takeover(MdsId node, SimTime now) {
    FaultIncident* inc = open_incident(node);
    if (inc == nullptr || inc->has(inc->takeover_at)) return;
    inc->takeover_at = now;
  }

  void note_restart(MdsId node, SimTime now) {
    FaultIncident* inc = open_incident(node);
    if (inc == nullptr || inc->has(inc->restarted_at)) return;
    inc->restarted_at = now;
  }

  void note_rejoin(MdsId node, SimTime now) {
    FaultIncident* inc = open_incident(node);
    if (inc == nullptr || inc->has(inc->rejoined_at)) return;
    inc->rejoined_at = now;
    maybe_close(*inc);
  }

  void note_marked_up(MdsId node, SimTime now) {
    FaultIncident* inc = open_incident(node);
    if (inc == nullptr || inc->has(inc->remarked_up_at)) return;
    inc->remarked_up_at = now;
    maybe_close(*inc);
  }

  void note_fenced(MdsId node, SimTime now) {
    if (open_fence(node) != nullptr) return;
    FenceIncident f;
    f.node = node;
    f.fenced_at = now;
    fences_.push_back(f);
  }

  void note_unfenced(MdsId node, SimTime now) {
    FenceIncident* f = open_fence(node);
    if (f == nullptr) return;
    f->unfenced_at = now;
    f->open = false;
  }

  /// One admission-gate shed on `node`. Extends the node's open overload
  /// episode, or opens a new one after a quiet gap.
  void note_shed(MdsId node, SimTime now) {
    OverloadIncident* inc = open_overload(node);
    if (inc != nullptr && now - inc->last_shed_at > kQuietGap) {
      inc->open = false;
      inc = nullptr;
    }
    if (inc == nullptr) {
      OverloadIncident fresh;
      fresh.node = node;
      fresh.began_at = now;
      overloads_.push_back(fresh);
      inc = &overloads_.back();
    }
    inc->last_shed_at = now;
    ++inc->sheds;
  }

  /// First detector to see `node` cross the degraded threshold opens the
  /// incident; later detectors are no-ops while it stays open.
  void note_gray_degraded(MdsId node, MdsId by, SimTime now) {
    if (open_gray(node) != nullptr) return;
    GrayIncident g;
    g.node = node;
    g.degraded_at = now;
    g.detected_by = by;
    grays_.push_back(g);
  }

  void note_gray_recovered(MdsId node, SimTime now) {
    GrayIncident* g = open_gray(node);
    if (g == nullptr) return;
    g->recovered_at = now;
    g->open = false;
  }

  /// Injection bookkeeping (ClusterSim::set_fail_slow).
  void note_fail_slow(MdsId node, SimTime now) {
    if (open_fail_slow(node) != nullptr) return;
    FailSlowIncident f;
    f.node = node;
    f.began_at = now;
    fail_slows_.push_back(f);
  }

  void note_fail_slow_cleared(MdsId node, SimTime now) {
    FailSlowIncident* f = open_fail_slow(node);
    if (f == nullptr) return;
    f->cleared_at = now;
    f->open = false;
  }

  const std::vector<FaultIncident>& incidents() const { return incidents_; }
  const std::vector<FenceIncident>& fence_incidents() const { return fences_; }
  const std::vector<OverloadIncident>& overload_incidents() const {
    return overloads_;
  }
  const std::vector<GrayIncident>& gray_incidents() const { return grays_; }
  const std::vector<FailSlowIncident>& fail_slow_incidents() const {
    return fail_slows_;
  }

  /// Total seconds peers were flagged gray-degraded, right-censoring
  /// incidents still open at `asof`.
  double gray_degraded_seconds(SimTime asof) const {
    double total = 0.0;
    for (const GrayIncident& g : grays_) {
      const SimTime end = g.open ? asof : g.recovered_at;
      if (end == GrayIncident::kUnset || end < g.degraded_at) continue;
      total += to_seconds(end - g.degraded_at);
    }
    return total;
  }

  /// Crash -> first survivor detection. `asof` (usually the run end)
  /// right-censors incidents whose end milestone never happened: a crash
  /// that was *never* detected still contributes `asof - crashed_at`
  /// instead of silently vanishing from the summary.
  Summary detection_latency_seconds(SimTime asof) const {
    return span([](const FaultIncident& i) { return i.detected_at; },
                [](const FaultIncident& i) { return i.crashed_at; }, asof);
  }
  /// Crash -> delegations redistributed: the window in which the dead
  /// node's territory has no authority at all.
  Summary unavailability_seconds(SimTime asof) const {
    return span([](const FaultIncident& i) { return i.takeover_at; },
                [](const FaultIncident& i) { return i.crashed_at; }, asof);
  }
  /// Restart -> journal replay finished (the node serves again).
  Summary recovery_time_seconds(SimTime asof) const {
    return span([](const FaultIncident& i) { return i.rejoined_at; },
                [](const FaultIncident& i) { return i.restarted_at; }, asof);
  }

  /// Per-episode overload durations (first shed -> last shed of the
  /// episode). An episode with one shed contributes 0; a sustained storm
  /// contributes its whole span.
  Summary overload_episode_seconds(SimTime /*asof*/) const {
    Summary s;
    for (const OverloadIncident& o : overloads_) {
      if (o.began_at == OverloadIncident::kUnset) continue;
      s.add(to_seconds(o.last_shed_at - o.began_at));
    }
    return s;
  }

  /// Total requests shed at admission, across all nodes and episodes.
  std::uint64_t total_sheds() const {
    std::uint64_t n = 0;
    for (const OverloadIncident& o : overloads_) n += o.sheds;
    return n;
  }

  /// Total seconds nodes spent self-fenced (minority-side write stall).
  /// Still-open fences are censored at `asof`.
  double minority_stall_seconds(SimTime asof) const {
    double total = 0.0;
    for (const FenceIncident& f : fences_) {
      const SimTime end = f.open ? asof : f.unfenced_at;
      if (end == FenceIncident::kUnset || end < f.fenced_at) continue;
      total += to_seconds(end - f.fenced_at);
    }
    return total;
  }

 private:
  // Rejoin (replay done) and re-mark-up (peers hear heartbeats again)
  // race freely — whichever lands second completes the lifecycle.
  static void maybe_close(FaultIncident& inc) {
    if (inc.has(inc.rejoined_at) && inc.has(inc.remarked_up_at)) {
      inc.open = false;
    }
  }

  FaultIncident* open_incident(MdsId node) {
    for (auto it = incidents_.rbegin(); it != incidents_.rend(); ++it) {
      if (it->node == node && it->open) return &*it;
    }
    return nullptr;
  }

  FenceIncident* open_fence(MdsId node) {
    for (auto it = fences_.rbegin(); it != fences_.rend(); ++it) {
      if (it->node == node && it->open) return &*it;
    }
    return nullptr;
  }

  OverloadIncident* open_overload(MdsId node) {
    for (auto it = overloads_.rbegin(); it != overloads_.rend(); ++it) {
      if (it->node == node && it->open) return &*it;
    }
    return nullptr;
  }

  GrayIncident* open_gray(MdsId node) {
    for (auto it = grays_.rbegin(); it != grays_.rend(); ++it) {
      if (it->node == node && it->open) return &*it;
    }
    return nullptr;
  }

  FailSlowIncident* open_fail_slow(MdsId node) {
    for (auto it = fail_slows_.rbegin(); it != fail_slows_.rend(); ++it) {
      if (it->node == node && it->open) return &*it;
    }
    return nullptr;
  }

  template <typename End, typename Begin>
  Summary span(End end, Begin begin, SimTime asof) const {
    Summary s;
    for (const FaultIncident& i : incidents_) {
      SimTime e = end(i);
      const SimTime b = begin(i);
      if (!i.has(b)) continue;  // milestone chain never started: nothing
      // Right-censor: the end milestone hadn't happened by `asof` (the
      // incident ran past the end of the run). Report the observed lower
      // bound rather than dropping the incident from the summary.
      if (!i.has(e)) e = asof;
      if (e == FaultIncident::kUnset || e < b) continue;
      s.add(to_seconds(e - b));
    }
    return s;
  }

  /// Sheds further apart than this belong to separate overload episodes.
  static constexpr SimTime kQuietGap = kSecond;

  std::vector<FaultIncident> incidents_;
  std::vector<FenceIncident> fences_;
  std::vector<OverloadIncident> overloads_;
  std::vector<GrayIncident> grays_;
  std::vector<FailSlowIncident> fail_slows_;
};

}  // namespace mdsim

// Failure-lifecycle incident log (paper section 4.6 made measurable).
//
// Every MDS crash opens an incident; the cluster and the nodes stamp the
// lifecycle milestones onto it as they happen: first detection by a
// survivor (missed heartbeats), takeover (delegations redistributed and
// the journal replayed by heirs), restart (process back, replaying its
// log), rejoin (replay finished, serving again) and re-mark-up (the first
// survivor that heard a heartbeat again). Metrics derives detection
// latency, unavailability windows and recovery time from these stamps.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mdsim {

struct FaultIncident {
  static constexpr SimTime kUnset = ~SimTime{0};

  MdsId node = kInvalidMds;
  SimTime crashed_at = kUnset;
  SimTime detected_at = kUnset;  // first survivor detection
  MdsId detected_by = kInvalidMds;
  SimTime takeover_at = kUnset;  // delegations redistributed
  SimTime restarted_at = kUnset;  // process back, replay begins
  SimTime rejoined_at = kUnset;   // replay done, serving again
  SimTime remarked_up_at = kUnset;  // first peer marked it up again
  bool open = true;

  bool has(SimTime t) const { return t != kUnset; }
};

class FaultLog {
 public:
  void note_crash(MdsId node, SimTime now) {
    // A re-crash closes any incident still open for the node.
    if (FaultIncident* inc = open_incident(node)) inc->open = false;
    FaultIncident fresh;
    fresh.node = node;
    fresh.crashed_at = now;
    incidents_.push_back(fresh);
  }

  void note_detection(MdsId node, MdsId by, SimTime now) {
    FaultIncident* inc = open_incident(node);
    if (inc == nullptr || inc->has(inc->detected_at)) return;
    inc->detected_at = now;
    inc->detected_by = by;
  }

  void note_takeover(MdsId node, SimTime now) {
    FaultIncident* inc = open_incident(node);
    if (inc == nullptr || inc->has(inc->takeover_at)) return;
    inc->takeover_at = now;
  }

  void note_restart(MdsId node, SimTime now) {
    FaultIncident* inc = open_incident(node);
    if (inc == nullptr || inc->has(inc->restarted_at)) return;
    inc->restarted_at = now;
  }

  void note_rejoin(MdsId node, SimTime now) {
    FaultIncident* inc = open_incident(node);
    if (inc == nullptr || inc->has(inc->rejoined_at)) return;
    inc->rejoined_at = now;
    maybe_close(*inc);
  }

  void note_marked_up(MdsId node, SimTime now) {
    FaultIncident* inc = open_incident(node);
    if (inc == nullptr || inc->has(inc->remarked_up_at)) return;
    inc->remarked_up_at = now;
    maybe_close(*inc);
  }

  const std::vector<FaultIncident>& incidents() const { return incidents_; }

  /// Crash -> first survivor detection.
  Summary detection_latency_seconds() const {
    return span([](const FaultIncident& i) { return i.detected_at; },
                [](const FaultIncident& i) { return i.crashed_at; });
  }
  /// Crash -> delegations redistributed: the window in which the dead
  /// node's territory has no authority at all.
  Summary unavailability_seconds() const {
    return span([](const FaultIncident& i) { return i.takeover_at; },
                [](const FaultIncident& i) { return i.crashed_at; });
  }
  /// Restart -> journal replay finished (the node serves again).
  Summary recovery_time_seconds() const {
    return span([](const FaultIncident& i) { return i.rejoined_at; },
                [](const FaultIncident& i) { return i.restarted_at; });
  }

 private:
  // Rejoin (replay done) and re-mark-up (peers hear heartbeats again)
  // race freely — whichever lands second completes the lifecycle.
  static void maybe_close(FaultIncident& inc) {
    if (inc.has(inc.rejoined_at) && inc.has(inc.remarked_up_at)) {
      inc.open = false;
    }
  }

  FaultIncident* open_incident(MdsId node) {
    for (auto it = incidents_.rbegin(); it != incidents_.rend(); ++it) {
      if (it->node == node && it->open) return &*it;
    }
    return nullptr;
  }

  template <typename End, typename Begin>
  Summary span(End end, Begin begin) const {
    Summary s;
    for (const FaultIncident& i : incidents_) {
      const SimTime e = end(i), b = begin(i);
      if (!i.has(e) || !i.has(b) || e < b) continue;
      s.add(to_seconds(e - b));
    }
    return s;
  }

  std::vector<FaultIncident> incidents_;
};

}  // namespace mdsim

// Small vector with inline storage for trivially copyable elements.
//
// Reply payloads (location hints) and other per-operation lists have a
// small, bounded typical size but a rare long tail. std::vector pays one
// heap allocation per instance regardless; InlineVec keeps the first N
// elements in the object itself and only touches the heap when the tail
// actually occurs. Restricted to trivially copyable T so growth and copies
// are memcpy and destruction of spilled storage is a single free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace mdsim {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for POD-ish payload elements");

 public:
  InlineVec() = default;
  InlineVec(const InlineVec& o) { assign(o.data(), o.size_); }
  InlineVec(InlineVec&& o) noexcept { steal(o); }
  InlineVec& operator=(const InlineVec& o) {
    if (this != &o) {
      size_ = 0;
      assign(o.data(), o.size_);
    }
    return *this;
  }
  InlineVec& operator=(InlineVec&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }
  ~InlineVec() { release(); }

  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data()[size_++] = v;
  }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void assign(const T* src, std::size_t n) {
    reserve(n);
    std::memcpy(data(), src, n * sizeof(T));
    size_ = n;
  }

 private:
  void grow(std::size_t want) {
    std::size_t cap = cap_;
    while (cap < want) cap *= 2;
    T* fresh = new T[cap];
    std::memcpy(fresh, data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = fresh;
    cap_ = cap;
  }
  void release() {
    delete[] heap_;
    heap_ = nullptr;
    cap_ = N;
    size_ = 0;
  }
  void steal(InlineVec& o) {
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.heap_ = nullptr;
      o.cap_ = N;
      o.size_ = 0;
    } else {
      heap_ = nullptr;
      cap_ = N;
      assign(o.inline_, o.size_);
      o.size_ = 0;
    }
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace mdsim

#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace mdsim {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : Rng(seed, 0) {}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  SplitMix64 sm(seed ^ (stream * 0xd2b74407b1ce6e93ULL + 0x8d1f3a2b));
  for (auto& s : s_) s = sm.next();
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::substream(std::uint64_t stream) const {
  // Fold the four state words into one fingerprint (SplitMix-style, no
  // draws consumed), then expand exactly like the (seed, stream) ctor.
  // Chaining each word through a full SplitMix64 step decorrelates the
  // fingerprint from the raw xoshiro words, so substreams of nearby
  // parent states (or sequential ids) do not start in nearby states.
  std::uint64_t fp = SplitMix64(s_[0]).next() ^ s_[1];
  fp = SplitMix64(fp).next() ^ s_[2];
  fp = SplitMix64(fp).next() ^ s_[3];
  return Rng(fp, stream);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t n) {
  assert(n > 0);
  // Lemire's method with rejection for unbiased bounded integers.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  uniform(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform_double() {
  // 53 uniform mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) { return uniform_double() < p; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform_double() - 1.0;
    v = 2.0 * uniform_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  have_spare_normal_ = true;
  return mean + stddev * u * mul;
}

double Rng::pareto(double xm, double alpha) {
  double u;
  do {
    u = uniform_double();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_pick(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double r = uniform_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

// ---------------------------------------------------------------------------
// ZipfSampler (rejection-inversion, Hörmann & Derflinger 1996).
// Samples k in [1, n] with P(k) ∝ k^-s, returned shifted to [0, n).
// ---------------------------------------------------------------------------

ZipfSampler::ZipfSampler(std::size_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  c_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -s_));
}

double ZipfSampler::h(double x) const {
  // Integral of x^-s: handles s == 1 via log.
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::h_inv(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  if (n_ == 1) return 0;
  while (true) {
    const double u = h_n_ + rng.uniform_double() * (h_x1_ - h_n_);
    const double x = h_inv(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= c_ || u >= h(k + 0.5) - std::pow(k, -s_)) {
      return static_cast<std::size_t>(k) - 1;
    }
  }
}

// ---------------------------------------------------------------------------
// AliasTable (Vose's method).
// ---------------------------------------------------------------------------

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  assert(n > 0);
  prob_.resize(n);
  alias_.resize(n);
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::operator()(Rng& rng) const {
  const std::size_t i = rng.uniform(prob_.size());
  return rng.uniform_double() < prob_[i] ? i : alias_[i];
}

}  // namespace mdsim

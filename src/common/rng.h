// Deterministic random number generation for the simulator.
//
// Every stochastic component of the simulation draws from its own Rng
// stream, seeded from a master seed plus a stream id, so that runs are
// reproducible and components are statistically independent.
#pragma once

#include <cstdint>
#include <vector>

namespace mdsim {

/// SplitMix64: used to expand seeds into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, 2^256-1 period PRNG.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9b1a2c3d4e5f6071ULL);
  /// Derive an independent stream: seed ⊕ stream id through SplitMix64.
  Rng(std::uint64_t seed, std::uint64_t stream);

  /// Derive an independent generator keyed by `stream` from this
  /// generator's *current* state, consuming no draws (const: the parent's
  /// future output is unchanged). Cheap — a few SplitMix64 steps — so
  /// dense client cohorts can materialize a per-client generator per
  /// event instead of storing 40 bytes of xoshiro state per client:
  /// substream(i) for fixed state is deterministic, and distinct ids (or
  /// distinct parent states) give statistically independent streams.
  Rng substream(std::uint64_t stream) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, n). n must be > 0. Uses rejection to avoid modulo bias.
  std::uint64_t uniform(std::uint64_t n);
  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Uniform in [0, 1).
  double uniform_double();
  /// True with probability p.
  bool bernoulli(double p);
  /// Exponentially distributed with the given mean.
  double exponential(double mean);
  /// Normal via Marsaglia polar method.
  double normal(double mean, double stddev);
  /// Pareto with scale xm and shape alpha.
  double pareto(double xm, double alpha);

  /// Pick an index according to a (non-normalized) weight vector.
  std::size_t weighted_pick(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Zipf(s, n) sampler over {0, 1, ..., n-1} using the rejection-inversion
/// method of Hörmann & Derflinger; O(1) per sample after O(1) setup.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const;

  std::size_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double h(double x) const;
  double h_inv(double x) const;

  std::size_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double c_;  // normalizer for the rejection test
};

/// Discrete distribution with alias-table O(1) sampling. Weights need not
/// be normalized. Suited to op-mix tables sampled millions of times.
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights);

  std::size_t operator()(Rng& rng) const;
  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace mdsim

#include "common/stats.h"

#include <cassert>

namespace mdsim {

void Summary::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

LogHistogram::LogHistogram(double min_value, double max_value,
                           int buckets_per_decade)
    : min_value_(min_value) {
  assert(min_value > 0 && max_value > min_value && buckets_per_decade > 0);
  log_min_ = std::log10(min_value);
  log_step_ = 1.0 / buckets_per_decade;
  inv_log_step_ = buckets_per_decade;
  const double decades = std::log10(max_value) - log_min_;
  counts_.assign(
      static_cast<std::size_t>(std::ceil(decades * buckets_per_decade)) + 2,
      0);
}

std::size_t LogHistogram::bucket_for(double value) const {
  if (value <= min_value_) return 0;
  const double idx = (std::log10(value) - log_min_) * inv_log_step_;
  const std::size_t i = static_cast<std::size_t>(idx) + 1;
  return std::min(i, counts_.size() - 1);
}

double LogHistogram::bucket_lower(std::size_t i) const {
  if (i == 0) return 0.0;
  return std::pow(10.0, log_min_ + static_cast<double>(i - 1) * log_step_);
}

void LogHistogram::add(double value, std::uint64_t count) {
  counts_[bucket_for(value)] += count;
  total_ += count;
  sum_ += value * static_cast<double>(count);
}

void LogHistogram::merge(const LogHistogram& other) {
  assert(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

double LogHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double target = static_cast<double>(total_) * p / 100.0;
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    // Empty buckets must not satisfy `cum >= target`: with p == 0 the
    // target is 0 and an empty bottom bucket would otherwise report
    // 0.5 * min_value even when every sample is far above it. Percentiles
    // are only ever reported from occupied buckets.
    if (counts_[i] == 0) continue;
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) {
      const double lo = bucket_lower(i);
      // The last bucket is the overflow clamp — it has no meaningful upper
      // edge, so report its lower bound rather than a midpoint beyond
      // max_value (matters for percentile(100) with out-of-range samples).
      if (i + 1 == counts_.size()) return lo;
      // Midpoint of the bucket in log space.
      const double hi = bucket_lower(i + 1);
      return lo > 0 ? std::sqrt(lo * hi) : hi * 0.5;
    }
  }
  return bucket_lower(counts_.size() - 1);
}

double TimeSeries::mean_in(SimTime t0, SimTime t1, bool include_end) const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const Point& p : points_) {
    if (p.time >= t0 && (p.time < t1 || (include_end && p.time == t1))) {
      sum += p.value;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::max_value() const {
  double m = 0.0;
  for (const Point& p : points_) m = std::max(m, p.value);
  return m;
}

}  // namespace mdsim

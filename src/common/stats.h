// Lightweight statistics primitives used throughout the simulator:
// counters, running summaries, log-bucketed latency histograms, exponentially
// decayed rates (the paper's popularity metric), and sampled time series.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.h"

namespace mdsim {

/// Running min/max/mean/variance (Welford) over double samples.
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const { return std::sqrt(variance()); }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram with logarithmically spaced buckets; suited to latencies
/// spanning microseconds to seconds. Values are in arbitrary units.
class LogHistogram {
 public:
  /// Buckets cover [min_value, max_value] with `buckets_per_decade`
  /// log-spaced buckets per factor of 10.
  LogHistogram(double min_value = 1.0, double max_value = 1e10,
               int buckets_per_decade = 10);

  void add(double value, std::uint64_t count = 1);
  void merge(const LogHistogram& other);

  std::uint64_t total_count() const { return total_; }
  double percentile(double p) const;  // p in [0, 100]
  double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

 private:
  std::size_t bucket_for(double value) const;
  double bucket_lower(std::size_t i) const;

  double min_value_;
  double log_min_;
  double inv_log_step_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Exponentially decaying counter: the paper's popularity metric ("a simple
/// access counter whose value decays over time", section 4.4).
///
/// value(t) = value(t0) * 2^-((t - t0)/half_life). Decay is applied lazily
/// on read/update, so idle counters cost nothing.
class DecayCounter {
 public:
  explicit DecayCounter(SimTime half_life = 5 * kSecond)
      : half_life_(half_life),
        inv_half_life_(1.0 / static_cast<double>(half_life)) {}

  void hit(SimTime now, double amount = 1.0) {
    decay_to(now);
    value_ += amount;
  }

  double get(SimTime now) const {
    const_cast<DecayCounter*>(this)->decay_to(now);
    return value_;
  }

  void reset() {
    value_ = 0.0;
    last_ = 0;
  }

  SimTime half_life() const { return half_life_; }

 private:
  void decay_to(SimTime now) {
    if (now <= last_) return;
    if (value_ != 0.0) {
      const double x = static_cast<double>(now - last_) * inv_half_life_;
      value_ *= exp2_neg(x);
    }
    last_ = now;
  }

  /// 2^-x for x >= 0. Hot counters are touched at intervals far below the
  /// half-life, where the libm exp2 call would dominate the whole update;
  /// a cubic expansion is exact to ~1e-10 relative there. Large gaps
  /// (idle counters decaying on their next touch) take the libm path.
  static double exp2_neg(double x) {
    if (x > 1.0 / 64.0) return std::exp2(-x);
    const double t = -0.6931471805599453 * x;  // ln 2
    return 1.0 + t * (1.0 + t * (0.5 + t * (1.0 / 6.0)));
  }

  SimTime half_life_;
  double inv_half_life_;
  SimTime last_ = 0;
  double value_ = 0.0;
};

/// A (time, value) series sampled by a periodic probe; backs the paper's
/// time plots (figures 5-7).
class TimeSeries {
 public:
  void record(SimTime t, double value) { points_.push_back({t, value}); }

  struct Point {
    SimTime time;
    double value;
  };

  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Mean of values with time in [t0, t1), or [t0, t1] when `include_end`
  /// is set. Consecutive interior windows must use the default half-open
  /// convention so a boundary sample is counted exactly once; the window
  /// that ends at the run end must pass `include_end = true`, because
  /// `Simulation::run_until(d)` fires events *at* d and the final metrics
  /// sample therefore lands exactly on the boundary.
  double mean_in(SimTime t0, SimTime t1, bool include_end = false) const;
  double max_value() const;

 private:
  std::vector<Point> points_;
};

/// Interval rate counter: accumulates event counts and reports the rate
/// over each sampling window (events/sec), then resets. Backs the
/// "throughput (ops/sec)" axes in the paper's figures.
class IntervalRate {
 public:
  void add(std::uint64_t n = 1) { count_ += n; }

  /// Closes the window [window_start, now) and returns events/second.
  double sample(SimTime now) {
    const SimTime dt = now - window_start_;
    const double rate =
        dt > 0 ? static_cast<double>(count_) / to_seconds(dt) : 0.0;
    count_ = 0;
    window_start_ = now;
    return rate;
  }

  std::uint64_t pending() const { return count_; }

 private:
  std::uint64_t count_ = 0;
  SimTime window_start_ = 0;
};

}  // namespace mdsim

#include "common/table.h"

#include <algorithm>
#include <iostream>

namespace mdsim {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void ConsoleTable::print(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  if (!title.empty()) std::cout << "\n== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::cout << (c ? "  " : "");
      std::cout << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) {
        std::cout << ' ';
      }
    }
    std::cout << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  std::cout << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mdsim

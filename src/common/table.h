// Console table renderer: the bench binaries print paper-figure data as
// aligned text tables in addition to CSV files.
#pragma once

#include <string>
#include <vector>

namespace mdsim {

class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render to stdout with column alignment and a rule under the header.
  void print(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mdsim

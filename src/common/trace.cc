#include "common/trace.h"

#include <algorithm>

#include "common/csv.h"

namespace mdsim {

namespace {
constexpr double kNsPerMs = 1e6;

LogHistogram make_ns_hist() {
  // 1 ns .. 10 s, 20 buckets per decade (~12% resolution).
  return LogHistogram(1.0, 1e10, 20);
}
}  // namespace

TraceCollector::TraceCollector(std::size_t slowest_n) : slowest_n_(slowest_n) {
  stage_hist_.resize(kNumOpTypes);
  total_hist_.reserve(kNumOpTypes);
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int s = 0; s < kNumTraceStages; ++s) {
      stage_hist_[static_cast<std::size_t>(op)][static_cast<std::size_t>(s)] =
          make_ns_hist();
    }
    total_hist_.push_back(make_ns_hist());
  }
  slow_.reserve(slowest_n_ + 1);
}

bool TraceCollector::slower(const SlowOp& a, const SlowOp& b) const {
  // Strict deterministic order: by total latency, ties broken by earlier
  // start then lower client id (both unique per completed op instance).
  if (a.total() != b.total()) return a.total() > b.total();
  if (a.rec.start != b.rec.start) return a.rec.start < b.rec.start;
  return a.rec.client < b.rec.client;
}

void TraceCollector::complete(const TraceRecord& rec, SimTime end) {
  const auto op = static_cast<std::size_t>(rec.op);
  const SimTime total = end - rec.start;
  ++completed_;
  ++op_count_[op];
  total_sum_ns_[op] += total;
  total_hist_[op].add(static_cast<double>(total));
  for (int s = 0; s < kNumTraceStages; ++s) {
    const SimTime ns = rec.stage_ns[static_cast<std::size_t>(s)];
    if (ns == 0) continue;  // empty stages don't pollute the histograms
    stage_sum_ns_[op][static_cast<std::size_t>(s)] += ns;
    stage_hist_[op][static_cast<std::size_t>(s)].add(static_cast<double>(ns));
  }

  if (slowest_n_ == 0) return;
  SlowOp s{rec, end};
  if (slow_.size() < slowest_n_) {
    slow_.push_back(s);
    std::push_heap(slow_.begin(), slow_.end(),
                   [this](const SlowOp& a, const SlowOp& b) {
                     return slower(a, b);  // min-heap on "slower"
                   });
    return;
  }
  // slow_.front() is the fastest of the kept set; replace it if beaten.
  if (slower(s, slow_.front())) {
    std::pop_heap(slow_.begin(), slow_.end(),
                  [this](const SlowOp& a, const SlowOp& b) {
                    return slower(a, b);
                  });
    slow_.back() = s;
    std::push_heap(slow_.begin(), slow_.end(),
                   [this](const SlowOp& a, const SlowOp& b) {
                     return slower(a, b);
                   });
  }
}

void TraceCollector::merge(const TraceCollector& other) {
  completed_ += other.completed_;
  for (int op = 0; op < kNumOpTypes; ++op) {
    const auto o = static_cast<std::size_t>(op);
    op_count_[o] += other.op_count_[o];
    total_sum_ns_[o] += other.total_sum_ns_[o];
    total_hist_[o].merge(other.total_hist_[o]);
    for (int s = 0; s < kNumTraceStages; ++s) {
      const auto st = static_cast<std::size_t>(s);
      stage_sum_ns_[o][st] += other.stage_sum_ns_[o][st];
      stage_hist_[o][st].merge(other.stage_hist_[o][st]);
    }
  }
  // Re-rank the slowest set over the union via the normal insert path
  // (complete() only touches slow_ when handed an existing SlowOp's
  // fields, so reuse its heap logic directly).
  for (const SlowOp& s : other.slow_) {
    if (slowest_n_ == 0) break;
    if (slow_.size() < slowest_n_) {
      slow_.push_back(s);
      std::push_heap(slow_.begin(), slow_.end(),
                     [this](const SlowOp& a, const SlowOp& b) {
                       return slower(a, b);
                     });
      continue;
    }
    if (slower(s, slow_.front())) {
      std::pop_heap(slow_.begin(), slow_.end(),
                    [this](const SlowOp& a, const SlowOp& b) {
                      return slower(a, b);
                    });
      slow_.back() = s;
      std::push_heap(slow_.begin(), slow_.end(),
                     [this](const SlowOp& a, const SlowOp& b) {
                       return slower(a, b);
                     });
    }
  }
}

void TraceCollector::reset() {
  completed_ = 0;
  op_count_.fill(0);
  total_sum_ns_.fill(0);
  for (auto& per_op : stage_sum_ns_) per_op.fill(0);
  for (int op = 0; op < kNumOpTypes; ++op) {
    for (int s = 0; s < kNumTraceStages; ++s) {
      stage_hist_[static_cast<std::size_t>(op)][static_cast<std::size_t>(s)] =
          make_ns_hist();
    }
    total_hist_[static_cast<std::size_t>(op)] = make_ns_hist();
  }
  slow_.clear();
}

std::uint64_t TraceCollector::grand_total_ns() const {
  std::uint64_t t = 0;
  for (std::uint64_t v : total_sum_ns_) t += v;
  return t;
}

std::vector<TraceCollector::SlowOp> TraceCollector::slowest() const {
  std::vector<SlowOp> out = slow_;
  std::sort(out.begin(), out.end(),
            [this](const SlowOp& a, const SlowOp& b) { return slower(a, b); });
  return out;
}

void TraceCollector::write_breakdown_csv(CsvWriter& csv) const {
  csv.header({"op", "stage", "count", "total_ms", "share", "p50_ms", "p95_ms",
              "p99_ms"});
  for (int op = 0; op < kNumOpTypes; ++op) {
    const auto o = static_cast<std::size_t>(op);
    if (op_count_[o] == 0) continue;
    for (int s = 0; s < kNumTraceStages; ++s) {
      const auto& h = stage_hist_[o][static_cast<std::size_t>(s)];
      if (h.total_count() == 0) continue;
      const double total_ms =
          static_cast<double>(stage_sum_ns_[o][static_cast<std::size_t>(s)]) /
          kNsPerMs;
      const double share =
          static_cast<double>(stage_sum_ns_[o][static_cast<std::size_t>(s)]) /
          static_cast<double>(total_sum_ns_[o]);
      csv.field(std::string(op_name(static_cast<OpType>(op))))
          .field(std::string(trace_stage_name(static_cast<TraceStage>(s))))
          .field(h.total_count())
          .field(total_ms)
          .field(share)
          .field(h.percentile(50) / kNsPerMs)
          .field(h.percentile(95) / kNsPerMs)
          .field(h.percentile(99) / kNsPerMs);
      csv.end_row();
    }
    const auto& t = total_hist_[o];
    csv.field(std::string(op_name(static_cast<OpType>(op))))
        .field(std::string("total"))
        .field(t.total_count())
        .field(static_cast<double>(total_sum_ns_[o]) / kNsPerMs)
        .field(1.0)
        .field(t.percentile(50) / kNsPerMs)
        .field(t.percentile(95) / kNsPerMs)
        .field(t.percentile(99) / kNsPerMs);
    csv.end_row();
  }
}

void TraceCollector::write_slowest_csv(CsvWriter& csv) const {
  // CsvWriter::header takes an initializer_list; build the row manually so
  // the per-stage columns stay in enum order.
  csv.field(std::string("rank"))
      .field(std::string("op"))
      .field(std::string("client"))
      .field(std::string("start_s"))
      .field(std::string("total_ms"))
      .field(std::string("hops"))
      .field(std::string("retries"))
      .field(std::string("failed"));
  for (int s = 0; s < kNumTraceStages; ++s) {
    csv.field(std::string(trace_stage_name(static_cast<TraceStage>(s))) +
              "_ms");
  }
  csv.end_row();

  const std::vector<SlowOp> ops = slowest();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const SlowOp& so = ops[i];
    csv.field(static_cast<std::uint64_t>(i + 1))
        .field(std::string(op_name(so.rec.op)))
        .field(static_cast<std::int64_t>(so.rec.client))
        .field(to_seconds(so.rec.start))
        .field(static_cast<double>(so.total()) / kNsPerMs)
        .field(static_cast<std::int64_t>(so.rec.hops))
        .field(static_cast<std::int64_t>(so.rec.retries))
        .field(static_cast<std::int64_t>(so.rec.failed ? 1 : 0));
    for (int s = 0; s < kNumTraceStages; ++s) {
      csv.field(static_cast<double>(
                    so.rec.stage_ns[static_cast<std::size_t>(s)]) /
                kNsPerMs);
    }
    csv.end_row();
  }
}

}  // namespace mdsim

// Per-request tracing and latency attribution.
//
// Every client operation can carry a TraceRecord through its whole life:
// client -> network -> MDS traversal/forwarding -> cache fetch -> journal
// -> reply. Attribution uses segment tiling: the record keeps the
// timestamp of the last attributed boundary, and each layer that passes a
// boundary charges the elapsed interval to one stage. Because a client op
// is a strictly sequential state machine (closed-loop clients, one op in
// flight, one continuation at a time), the segments partition
// [issue, reply] exactly — the per-stage sums reconcile with the
// end-to-end latency bit for bit, which test_tracing.cc and
// bench/latency_breakdown enforce.
//
// Zero cost when disabled: with tracing off no record exists, every hook
// is a predictable `ptr == nullptr` branch, and — because tracing only
// observes simulated time and never schedules, draws randomness, or
// touches protocol state — enabling it cannot perturb simulation results.
//
// Retries and duplicated messages: the record is re-armed with the new
// request id on every client re-issue, and stale instances (old ids still
// draining through the cluster) fail the id check and attribute nothing.
// Under message-duplication faults two live instances may interleave, in
// which case attribution can mix between stages but the tiling invariant
// (stage sums == end-to-end) still holds: every accepted segment advances
// the shared boundary.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mdsim {

class CsvWriter;

/// Where a traced request spent its time. Stages are mutually exclusive
/// and collectively exhaustive: their per-request sum equals the
/// end-to-end latency.
enum class TraceStage : std::uint8_t {
  kNetRequest,      // client -> first MDS request link
  kNetForward,      // MDS -> MDS forwarded-request link
  kCpuQueue,        // waiting in an MDS CPU queue
  kCpuService,      // MDS CPU execution
  kDiskQueue,       // metadata-store queue wait (request-initiated I/O)
  kDiskService,     // metadata-store service time + access latency
  kFetchWait,       // parked behind another request's in-flight disk fetch
  kReplicaWait,     // replica request -> grant round trip at a peer
  kJournalQueue,    // journal device queue wait
  kJournalService,  // journal append service time
  kStallWait,       // deferred (migration freeze), attr gather, retry backoff
  kNetReply,        // MDS -> client reply link
};

constexpr int kNumTraceStages = 12;

constexpr const char* trace_stage_name(TraceStage s) {
  switch (s) {
    case TraceStage::kNetRequest: return "net_request";
    case TraceStage::kNetForward: return "net_forward";
    case TraceStage::kCpuQueue: return "cpu_queue";
    case TraceStage::kCpuService: return "cpu_service";
    case TraceStage::kDiskQueue: return "disk_queue";
    case TraceStage::kDiskService: return "disk_service";
    case TraceStage::kFetchWait: return "fetch_wait";
    case TraceStage::kReplicaWait: return "replica_wait";
    case TraceStage::kJournalQueue: return "journal_queue";
    case TraceStage::kJournalService: return "journal_service";
    case TraceStage::kStallWait: return "stall_wait";
    case TraceStage::kNetReply: return "net_reply";
  }
  return "?";
}

/// Trace context for one client operation. Owned by the issuing client
/// (one per client — clients are closed-loop); a raw pointer rides on the
/// request message through forwards, so MDS-side layers attribute into the
/// same record. All stamps are simulated time.
struct TraceRecord {
  std::uint64_t req_id = 0;  // active request instance (re-armed on retry)
  ClientId client = kInvalidClient;
  OpType op = OpType::kStat;
  SimTime start = 0;  // first issue
  SimTime last = 0;   // last attributed boundary
  std::uint8_t hops = 0;
  std::uint8_t retries = 0;
  bool failed = false;
  std::array<SimTime, kNumTraceStages> stage_ns{};

  /// Start tracing a fresh operation at its first issue.
  void begin(std::uint64_t rid, ClientId c, OpType o, SimTime now) {
    req_id = rid;
    client = c;
    op = o;
    start = now;
    last = now;
    hops = 0;
    retries = 0;
    failed = false;
    stage_ns.fill(0);
  }

  /// Client re-issue after a timeout: the wait (timeout + backoff) is
  /// charged to kStallWait and the new request id becomes the only
  /// instance allowed to attribute further segments.
  void rearm(std::uint64_t rid, SimTime now) {
    stage_ns[static_cast<std::size_t>(TraceStage::kStallWait)] += now - last;
    last = now;
    req_id = rid;
    ++retries;
  }

  /// Attribute [last, now) to `stage` iff `rid` is the active instance
  /// (stale retried/duplicated instances attribute nothing).
  void advance(TraceStage stage, SimTime now, std::uint64_t rid) {
    if (rid != req_id) return;
    stage_ns[static_cast<std::size_t>(stage)] += now - last;
    last = now;
  }

  /// Attribute a known-deterministic future interval (e.g. a disk's fixed
  /// access latency that elapses between service end and the completion
  /// callback) without waiting for it to pass.
  void skip(TraceStage stage, SimTime dt, std::uint64_t rid) {
    if (rid != req_id) return;
    stage_ns[static_cast<std::size_t>(stage)] += dt;
    last += dt;
  }

  SimTime stage(TraceStage s) const {
    return stage_ns[static_cast<std::size_t>(s)];
  }
  SimTime stage_sum() const {
    SimTime t = 0;
    for (SimTime v : stage_ns) t += v;
    return t;
  }
};

/// Queue-server attribution handle: lets a QueueServer split a traced
/// job's sojourn into queue wait and service time. Inert when rec is
/// null (the tracing-off case costs one predictable branch per job).
struct TraceSpan {
  TraceRecord* rec = nullptr;
  std::uint64_t req_id = 0;
  TraceStage queue_stage = TraceStage::kCpuQueue;
  TraceStage service_stage = TraceStage::kCpuService;

  explicit operator bool() const { return rec != nullptr; }

  void on_service_start(SimTime now) const {
    if (rec != nullptr) rec->advance(queue_stage, now, req_id);
  }
  void on_service_end(SimTime now, SimTime trailing_latency) const {
    if (rec == nullptr) return;
    rec->advance(service_stage, now, req_id);
    if (trailing_latency != 0) rec->skip(service_stage, trailing_latency, req_id);
  }
};

/// Aggregates completed traces into per-stage x per-op latency histograms
/// and keeps the slowest-N requests for a structured dump. Fully
/// deterministic: everything derives from simulated time, and slowest-N
/// ties break on (start time, client id).
class TraceCollector {
 public:
  explicit TraceCollector(std::size_t slowest_n = 32);

  /// Ingest a finished operation (called by the client when the matching
  /// reply arrives; `end` is the arrival time).
  void complete(const TraceRecord& rec, SimTime end);

  /// Drop everything accumulated so far (warmup boundary).
  void reset();

  /// Fold another collector's accumulation into this one (cross-shard
  /// aggregation at end of run): counts, sums and histograms add; the
  /// slowest-N set is re-ranked over the union under the same
  /// deterministic order, so the merged result is independent of merge
  /// order and identical to having collected centrally.
  void merge(const TraceCollector& other);

  std::uint64_t completed() const { return completed_; }
  std::uint64_t completed(OpType op) const {
    return op_count_[static_cast<std::size_t>(op)];
  }

  /// Latency histogram (nanosecond values) for one stage of one op type.
  const LogHistogram& stage_hist(TraceStage s, OpType op) const {
    return stage_hist_[static_cast<std::size_t>(op)]
                      [static_cast<std::size_t>(s)];
  }
  /// End-to-end latency histogram for one op type.
  const LogHistogram& total_hist(OpType op) const {
    return total_hist_[static_cast<std::size_t>(op)];
  }

  /// Exact accumulated nanoseconds (for reconciliation against the
  /// client-side latency Summary).
  std::uint64_t stage_total_ns(TraceStage s, OpType op) const {
    return stage_sum_ns_[static_cast<std::size_t>(op)]
                        [static_cast<std::size_t>(s)];
  }
  std::uint64_t total_ns(OpType op) const {
    return total_sum_ns_[static_cast<std::size_t>(op)];
  }
  std::uint64_t grand_total_ns() const;

  struct SlowOp {
    TraceRecord rec;
    SimTime end = 0;
    SimTime total() const { return end - rec.start; }
  };
  /// Slowest completed requests, most expensive first.
  std::vector<SlowOp> slowest() const;

  /// Per-(op, stage) breakdown table:
  /// op,stage,count,total_ms,share,p50_ms,p95_ms,p99_ms.
  void write_breakdown_csv(CsvWriter& csv) const;
  /// Slowest-N dump: one row per request with per-stage columns.
  void write_slowest_csv(CsvWriter& csv) const;

 private:
  bool slower(const SlowOp& a, const SlowOp& b) const;

  std::size_t slowest_n_;
  std::uint64_t completed_ = 0;
  std::array<std::uint64_t, kNumOpTypes> op_count_{};
  // Histograms cover 1 ns .. 10 s with 20 log buckets per decade.
  std::vector<std::array<LogHistogram, kNumTraceStages>> stage_hist_;
  std::vector<LogHistogram> total_hist_;
  std::array<std::array<std::uint64_t, kNumTraceStages>, kNumOpTypes>
      stage_sum_ns_{};
  std::array<std::uint64_t, kNumOpTypes> total_sum_ns_{};
  std::vector<SlowOp> slow_;  // min-heap on slower()
};

}  // namespace mdsim

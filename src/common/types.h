// Fundamental identifier and enum types shared across the simulator.
#pragma once

#include <cstdint>
#include <string>

namespace mdsim {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::uint64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9);
}
constexpr SimTime from_millis(double ms) {
  return static_cast<SimTime>(ms * 1e6);
}
constexpr SimTime from_micros(double us) {
  return static_cast<SimTime>(us * 1e3);
}

/// Inode number. 0 is invalid; 1 is the filesystem root.
using InodeId = std::uint64_t;
constexpr InodeId kInvalidInode = 0;
constexpr InodeId kRootInode = 1;

/// Index of a metadata server within the cluster [0, cluster_size).
using MdsId = std::int32_t;
constexpr MdsId kInvalidMds = -1;

/// Index of a simulated client.
using ClientId = std::int32_t;
constexpr ClientId kInvalidClient = -1;

/// Metadata operation types the MDS cluster services (paper section 2.2).
enum class OpType : std::uint8_t {
  kStat,     // lookup + getattr on a path
  kOpen,     // open an existing file (permission check + inode fetch)
  kClose,    // close a previously opened file
  kReaddir,  // list a directory (fetches embedded inodes)
  kCreate,   // create a file in a directory
  kMkdir,    // create a directory
  kUnlink,   // remove a file
  kRmdir,    // remove an (empty) directory
  kRename,   // move a dentry between directories
  kChmod,    // change permissions (on files or directories)
  kSetattr,  // other inode attribute update (mtime, size, ...)
  kLink,     // create an additional hard link
};

constexpr const char* op_name(OpType t) {
  switch (t) {
    case OpType::kStat: return "stat";
    case OpType::kOpen: return "open";
    case OpType::kClose: return "close";
    case OpType::kReaddir: return "readdir";
    case OpType::kCreate: return "create";
    case OpType::kMkdir: return "mkdir";
    case OpType::kUnlink: return "unlink";
    case OpType::kRmdir: return "rmdir";
    case OpType::kRename: return "rename";
    case OpType::kChmod: return "chmod";
    case OpType::kSetattr: return "setattr";
    case OpType::kLink: return "link";
  }
  return "?";
}

/// True if the operation mutates metadata (requires journaling at the
/// authority and replica invalidation).
constexpr bool op_is_update(OpType t) {
  switch (t) {
    case OpType::kStat:
    case OpType::kOpen:
    case OpType::kClose:
    case OpType::kReaddir:
      return false;
    default:
      return true;
  }
}

constexpr int kNumOpTypes = 12;

/// POSIX-ish permission bits, reduced to what the simulation checks.
struct Perms {
  std::uint16_t mode = 0755;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;

  bool allows_traverse(std::uint32_t user) const {
    // Owner gets the owner bits; everyone else the "other" bits.
    std::uint16_t bits = (user == uid) ? (mode >> 6) : mode;
    return (bits & 01) != 0;
  }
  bool allows_read(std::uint32_t user) const {
    std::uint16_t bits = (user == uid) ? (mode >> 6) : mode;
    return (bits & 04) != 0;
  }
  bool allows_write(std::uint32_t user) const {
    std::uint16_t bits = (user == uid) ? (mode >> 6) : mode;
    return (bits & 02) != 0;
  }
  bool operator==(const Perms&) const = default;
};

}  // namespace mdsim

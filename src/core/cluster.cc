#include "core/cluster.h"

#include <algorithm>
#include <cassert>

namespace mdsim {

ClusterSim::ClusterSim(SimConfig config) : config_(std::move(config)) {}

ClusterSim::~ClusterSim() = default;

void ClusterSim::build() {
  if (built_) return;
  built_ = true;

  // --- namespace -----------------------------------------------------------
  ns_info_ = generate_namespace(tree_, config_.fs);

  // --- shared substrates -----------------------------------------------------
  NetworkParams net_params = config_.net;
  net_params.seed = config_.seed;
  net_ = std::make_unique<Network>(sim_, net_params);
  partition_ = make_partitioner(config_.strategy, config_.num_mds, tree_);
  dirfrag_ = std::make_unique<DirFragRegistry>(config_.num_mds,
                                               config_.mds.giga_max_depth);
  if (config_.strategy == StrategyKind::kLazyHybrid) {
    lazy_ = std::make_unique<LazyHybridManager>(tree_);
  }

  // Figure 4 knob: cache capacity as a fraction of total metadata.
  MdsParams mds_params = config_.mds;
  if (config_.cache_fraction > 0.0) {
    const double total = static_cast<double>(tree_.node_count());
    const double per_node =
        total * config_.cache_fraction / config_.num_mds;
    mds_params.cache_capacity =
        std::max<std::size_t>(64, static_cast<std::size_t>(per_node));
    mds_params.journal_capacity = mds_params.cache_capacity;
  }

  StrategyTraits traits = traits_for(config_.strategy);
  if (config_.force_whole_dir_io == 0) traits.whole_directory_io = false;
  if (config_.force_whole_dir_io == 1) traits.whole_directory_io = true;

  ctx_ = std::make_unique<ClusterContext>(ClusterContext{
      sim_, *net_, tree_, store_, *partition_, *dirfrag_, anchors_,
      lazy_.get(), traits, mds_params, config_.num_mds, &fault_log_, {}});

  // --- MDS nodes (network addresses == MdsIds, attached first) -----------
  mds_nodes_.reserve(static_cast<std::size_t>(config_.num_mds));
  for (MdsId i = 0; i < config_.num_mds; ++i) {
    auto node = std::make_unique<MdsNode>(*ctx_, i);
    const NetAddr addr = net_->attach(node.get());
    assert(addr == i);
    (void)addr;
    ctx_->nodes.push_back(node.get());
    mds_nodes_.push_back(std::move(node));
  }
  for (auto& node : mds_nodes_) node->bootstrap();

  // --- workload ----------------------------------------------------------
  switch (config_.workload) {
    case WorkloadKind::kGeneral: {
      auto homes = ns_info_.user_roots;
      workload_ = std::make_unique<GeneralWorkload>(
          tree_, std::move(homes), OpMix::general_purpose(),
          config_.general);
      break;
    }
    case WorkloadKind::kScientific: {
      std::vector<FsNode*> runs;
      for (FsNode* proj : ns_info_.project_roots) {
        for (const auto& [_, child] : proj->children()) {
          if (child->is_dir()) runs.push_back(child.get());
        }
      }
      if (runs.empty()) runs = ns_info_.user_roots;  // degenerate config
      workload_ = std::make_unique<ScientificWorkload>(
          tree_, std::move(runs), config_.scientific);
      break;
    }
    case WorkloadKind::kFlashCrowd: {
      // A deterministic, unremarkable file: the crowd's shared target.
      assert(!tree_.files().empty());
      FsNode* target =
          tree_.files()[config_.seed % tree_.files().size()];
      auto fc = std::make_unique<FlashCrowdWorkload>(tree_, target,
                                                     config_.flash);
      if (config_.flash.base_think > 0) {
        // Background pool for the spike-on-baseline shape: every file in
        // the namespace (ownership stays with the tree).
        fc->set_background(tree_.files());
      }
      workload_ = std::move(fc);
      break;
    }
    case WorkloadKind::kShifting: {
      auto* subtree = dynamic_cast<SubtreePartition*>(partition_.get());
      assert(subtree != nullptr &&
             "shifting workload requires a subtree strategy");
      ShiftingWorkloadParams sp = config_.shifting;
      sp.base = config_.general;
      workload_ = make_shifting_workload(tree_, ns_info_.user_roots,
                                         *subtree, sp);
      break;
    }
  }

  // --- clients -------------------------------------------------------------
  if (config_.trace.enabled) {
    tracer_ = std::make_unique<TraceCollector>(config_.trace.slowest_n);
  }
  clients_.reserve(static_cast<std::size_t>(config_.num_clients));
  for (ClientId c = 0; c < config_.num_clients; ++c) {
    clients_.push_back(std::make_unique<Client>(
        sim_, *net_, tree_, *workload_, *partition_, *dirfrag_, c,
        config_.num_mds, config_.seed));
    // Align each client with the user whose home it primarily works in,
    // so permission checks reflect ownership.
    if (config_.fs.num_users > 0) {
      clients_.back()->set_uid(
          100 + static_cast<std::uint32_t>(c % config_.fs.num_users));
    }
    clients_.back()->set_retry_policy(config_.client_retry);
    clients_.back()->set_hedge_policy(config_.hedge);
    clients_.back()->set_tracer(tracer_.get());
  }

  // --- metrics -------------------------------------------------------------
  std::vector<MdsNode*> node_ptrs;
  for (auto& n : mds_nodes_) node_ptrs.push_back(n.get());
  std::vector<Client*> client_ptrs;
  for (auto& c : clients_) client_ptrs.push_back(c.get());
  metrics_ = std::make_unique<Metrics>(std::move(node_ptrs),
                                       std::move(client_ptrs), &sim_);
  metrics_->set_fault_log(&fault_log_);
  metrics_->set_trace(tracer_.get());
}

void ClusterSim::run_until(SimTime t) {
  build();
  if (!started_) {
    started_ = true;
    for (auto& c : clients_) c->start();
    sim_.every(config_.sample_period, config_.sample_period,
               [this]() {
                 metrics_->sample(sim_.now());
                 return true;
               });
    if (config_.warmup > 0) {
      sim_.schedule(config_.warmup, [this]() {
        metrics_->reset(sim_.now());
        net_->reset_counters();
      });
    }
  }
  sim_.run_until(t);
}

void ClusterSim::run() { run_until(config_.duration); }

void ClusterSim::fail_mds(MdsId failed, bool warm_takeover) {
  build();
  assert(failed >= 0 && failed < config_.num_mds && config_.num_mds > 1);
  ctx_->params.warm_takeover = warm_takeover;
  MdsNode& dead = mds(failed);
  dead.set_failed(true);
  net_->set_down(failed, true);
  fault_log_.note_crash(failed, sim_.now());

  // Strategies that exchange balancer heartbeats detect the crash
  // themselves: the node simply goes silent, survivors declare it dead
  // after heartbeat_miss_threshold missed periods, and the lowest live id
  // performs the takeover (recovery.cc). Nothing more to do here — the
  // unavailability window between crash and takeover is the measurement.
  if (traits_for(config_.strategy).load_balancing &&
      ctx_->params.failure_detection) {
    return;
  }

  // No heartbeats (hashed / static strategies) or detection disabled:
  // apply the redistribution directly, as an external monitor would.
  std::vector<MdsId> survivors;
  dirfrag_->set_node_alive(failed, false);
  for (MdsId i = 0; i < config_.num_mds; ++i) {
    if (i == failed || mds(i).failed()) continue;
    survivors.push_back(i);
    mds(i).mark_peer_down(failed);
  }
  assert(!survivors.empty());
  fault_log_.note_detection(failed, survivors.front(), sim_.now());

  // Subtree strategies re-delegate; hashed placements would re-map their
  // hash ranges, which is exactly the expansion/contraction weakness the
  // paper describes — out of scope.
  auto* subtree = dynamic_cast<SubtreePartition*>(partition_.get());
  std::vector<MdsId> takeover_nodes;
  if (subtree != nullptr) {
    std::size_t rr = 0;
    for (const FsNode* root : subtree->delegations_of(failed)) {
      const MdsId heir = survivors[rr++ % survivors.size()];
      subtree->delegate(root, heir);
      takeover_nodes.push_back(heir);
    }
    if (subtree->authority_of(tree_.root()) == failed) {
      subtree->delegate(tree_.root(), survivors.front());
      takeover_nodes.push_back(survivors.front());
    }
  }
  if (takeover_nodes.empty()) takeover_nodes.push_back(survivors.front());
  fault_log_.note_takeover(failed, sim_.now());

  if (warm_takeover) {
    // The failed node's journal lives on shared storage: every takeover
    // node replays it and installs the items it now owns (section 4.6).
    std::sort(takeover_nodes.begin(), takeover_nodes.end());
    takeover_nodes.erase(
        std::unique(takeover_nodes.begin(), takeover_nodes.end()),
        takeover_nodes.end());
    const auto working_set = dead.journal().replay();
    for (MdsId heir : takeover_nodes) {
      mds(heir).warm_from_journal(working_set);
    }
  }
}

void ClusterSim::set_fail_slow(MdsId node, double cpu_mult, double disk_mult) {
  build();
  assert(node >= 0 && node < config_.num_mds);
  mds(node).set_fail_slow(cpu_mult, disk_mult);
  if (cpu_mult != 1.0 || disk_mult != 1.0) {
    fault_log_.note_fail_slow(node, sim_.now());
  } else {
    fault_log_.note_fail_slow_cleared(node, sim_.now());
  }
}

void ClusterSim::recover_mds(MdsId node) {
  build();
  MdsNode& n = mds(node);
  assert(n.failed());
  n.set_failed(false);
  net_->set_down(node, false);
  fault_log_.note_restart(node, sim_.now());
  // Journal replay + cache warm-up with real disk latency; serving
  // resumes immediately, recovering() clears when the replay lands.
  n.restart();

  if (traits_for(config_.strategy).load_balancing &&
      ctx_->params.failure_detection) {
    return;  // peers mark it up when its heartbeats resume
  }
  dirfrag_->set_node_alive(node, true);
  for (MdsId i = 0; i < config_.num_mds; ++i) {
    if (i == node || mds(i).failed()) continue;
    mds(i).mark_peer_up(node);
  }
  fault_log_.note_marked_up(node, sim_.now());
}

}  // namespace mdsim

// Cluster builder and run driver: wires the ground-truth namespace, the
// shared substrates (object store, partition, anchors, dirfrag, network),
// the MDS nodes, the workload, and the client population, then runs the
// simulation while sampling metrics.
#pragma once

#include <memory>
#include <vector>

#include "client/client.h"
#include "core/config.h"
#include "core/metrics.h"
#include "mds/mds_node.h"
#include "workload/workload.h"

namespace mdsim {

class ClusterSim {
 public:
  explicit ClusterSim(SimConfig config);
  ~ClusterSim();
  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  /// Run to config.duration (builds lazily on first call).
  void run();
  /// Run to an arbitrary time (tests drive the simulation piecewise).
  void run_until(SimTime t);

  /// Failure injection (paper sections 2.1.2 and 4.6): take an MDS off
  /// the network, redistribute its delegations to the survivors, and —
  /// if `warm_takeover` — have the takeover nodes replay the failed
  /// node's bounded journal from shared storage to preload their caches
  /// with its working set.
  void fail_mds(MdsId failed, bool warm_takeover = true);
  /// Bring a failed MDS back (cold: it dropped its cache, having missed
  /// invalidations while down). The balancer re-populates it over time.
  void recover_mds(MdsId node);

  const SimConfig& config() const { return config_; }
  Simulation& sim() { return sim_; }
  FsTree& tree() { return tree_; }
  Network& network() { return *net_; }
  Partitioner& partition() { return *partition_; }
  DirFragRegistry& dirfrag() { return *dirfrag_; }
  ObjectStore& object_store() { return store_; }
  AnchorTable& anchors() { return anchors_; }
  LazyHybridManager* lazy() { return lazy_.get(); }
  Workload& workload() { return *workload_; }
  const NamespaceInfo& namespace_info() const { return ns_info_; }

  MdsNode& mds(int i) { return *mds_nodes_[static_cast<std::size_t>(i)]; }
  int num_mds() const { return config_.num_mds; }
  Client& client(int i) { return *clients_[static_cast<std::size_t>(i)]; }
  int num_clients() const { return static_cast<int>(clients_.size()); }

  Metrics& metrics() { return *metrics_; }

 private:
  void build();

  SimConfig config_;
  Simulation sim_;
  FsTree tree_;
  NamespaceInfo ns_info_;
  ObjectStore store_;
  AnchorTable anchors_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Partitioner> partition_;
  std::unique_ptr<DirFragRegistry> dirfrag_;
  std::unique_ptr<LazyHybridManager> lazy_;
  std::unique_ptr<ClusterContext> ctx_;
  std::vector<std::unique_ptr<MdsNode>> mds_nodes_;
  std::unique_ptr<Workload> workload_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unique_ptr<Metrics> metrics_;
  bool built_ = false;
  bool started_ = false;
};

}  // namespace mdsim

// Cluster builder and run driver: wires the ground-truth namespace, the
// shared substrates (object store, partition, anchors, dirfrag, network),
// the MDS nodes, the workload, and the client population, then runs the
// simulation while sampling metrics.
#pragma once

#include <memory>
#include <vector>

#include "client/client.h"
#include "common/fault_log.h"
#include "core/config.h"
#include "core/metrics.h"
#include "mds/mds_node.h"
#include "workload/workload.h"

namespace mdsim {

class ClusterSim {
 public:
  explicit ClusterSim(SimConfig config);
  ~ClusterSim();
  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  /// Run to config.duration (builds lazily on first call).
  void run();
  /// Run to an arbitrary time (tests drive the simulation piecewise).
  void run_until(SimTime t);

  /// Crash an MDS (paper sections 2.1.2 and 4.6): the node goes silent
  /// and off the network; nothing else is told. Survivors detect the
  /// death from missed balancer heartbeats and the lowest live id
  /// redistributes the dead node's delegations — replaying its bounded
  /// journal into the heirs when `warm_takeover` (which sets
  /// MdsParams::warm_takeover cluster-wide for this run). Strategies
  /// without heartbeats (hashed / static subtree) get the redistribution
  /// applied directly, as they have no detector to find it.
  void fail_mds(MdsId failed, bool warm_takeover = true);
  /// Restart a crashed MDS: rejoin the network, replay its own bounded
  /// journal against the object store (real disk latency), and resume
  /// serving. Peers mark it back up when its heartbeats resume; the
  /// balancer re-populates it with load over time.
  void recover_mds(MdsId node);

  /// Gray-failure injection: `node`'s CPU serves every subsequent job
  /// `cpu_mult` times slower and its disks `disk_mult` times slower
  /// (1.0/1.0 restores nominal speed). The node stays up and heartbeating
  /// — detection is the health layer's job, not the fault's.
  void set_fail_slow(MdsId node, double cpu_mult, double disk_mult);

  /// Failure-lifecycle incident log (crash / detection / takeover /
  /// restart / rejoin timestamps for every injected fault).
  FaultLog& fault_log() { return fault_log_; }

  const SimConfig& config() const { return config_; }
  Simulation& sim() { return sim_; }
  FsTree& tree() { return tree_; }
  Network& network() { return *net_; }
  Partitioner& partition() { return *partition_; }
  DirFragRegistry& dirfrag() { return *dirfrag_; }
  ObjectStore& object_store() { return store_; }
  AnchorTable& anchors() { return anchors_; }
  LazyHybridManager* lazy() { return lazy_.get(); }
  Workload& workload() { return *workload_; }
  const NamespaceInfo& namespace_info() const { return ns_info_; }

  MdsNode& mds(int i) { return *mds_nodes_[static_cast<std::size_t>(i)]; }
  int num_mds() const { return config_.num_mds; }
  Client& client(int i) { return *clients_[static_cast<std::size_t>(i)]; }
  int num_clients() const { return static_cast<int>(clients_.size()); }

  Metrics& metrics() { return *metrics_; }
  /// Per-request trace collector; null unless config.trace.enabled.
  TraceCollector* tracer() { return tracer_.get(); }

 private:
  void build();

  SimConfig config_;
  Simulation sim_;
  FsTree tree_;
  NamespaceInfo ns_info_;
  ObjectStore store_;
  AnchorTable anchors_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Partitioner> partition_;
  std::unique_ptr<DirFragRegistry> dirfrag_;
  std::unique_ptr<LazyHybridManager> lazy_;
  std::unique_ptr<ClusterContext> ctx_;
  std::vector<std::unique_ptr<MdsNode>> mds_nodes_;
  std::unique_ptr<Workload> workload_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unique_ptr<Metrics> metrics_;
  std::unique_ptr<TraceCollector> tracer_;
  FaultLog fault_log_;
  bool built_ = false;
  bool started_ = false;
};

}  // namespace mdsim

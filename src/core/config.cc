#include "core/config.h"

namespace mdsim {

std::string SimConfig::label() const {
  return std::string(strategy_name(strategy)) + "/" +
         workload_name(workload) + "/m" + std::to_string(num_mds) + "/c" +
         std::to_string(num_clients);
}

SimConfig scaled_system_config(StrategyKind strategy, int num_mds,
                               std::uint64_t seed) {
  SimConfig cfg;
  cfg.strategy = strategy;
  cfg.num_mds = num_mds;
  cfg.seed = seed;
  // Scale the whole system with the cluster; MDS memory stays fixed
  // (paper section 5.3). The demand per node (clients x rate) exceeds
  // disk service capacity at the miss rates the caches produce, so the
  // cluster operates in the paper's disk-bound regime.
  cfg.fs.seed = seed;
  cfg.fs.num_users = 24 * num_mds;
  cfg.fs.nodes_per_user = 500;
  cfg.num_clients = 150 * num_mds;
  cfg.general.mean_think = from_millis(15);
  cfg.mds.cache_capacity = 2500;
  cfg.mds.journal_capacity = 2500;
  cfg.workload = WorkloadKind::kGeneral;
  cfg.duration = 14 * kSecond;
  cfg.warmup = 4 * kSecond;
  return cfg;
}

SimConfig cache_sweep_config(StrategyKind strategy, double cache_fraction,
                             std::uint64_t seed) {
  SimConfig cfg;
  cfg.strategy = strategy;
  cfg.num_mds = 8;
  cfg.seed = seed;
  cfg.fs.seed = seed;
  cfg.fs.num_users = 192;
  cfg.fs.nodes_per_user = 500;
  cfg.num_clients = 480;
  cfg.cache_fraction = cache_fraction;
  cfg.workload = WorkloadKind::kGeneral;
  cfg.duration = 14 * kSecond;
  cfg.warmup = 4 * kSecond;
  return cfg;
}

SimConfig shift_config(StrategyKind strategy, std::uint64_t seed) {
  SimConfig cfg;
  cfg.strategy = strategy;
  cfg.num_mds = 12;
  cfg.seed = seed;
  cfg.fs.seed = seed;
  cfg.fs.num_users = 288;
  cfg.fs.nodes_per_user = 500;
  cfg.num_clients = 720;
  cfg.mds.cache_capacity = 4000;
  cfg.workload = WorkloadKind::kShifting;
  // No retry spray in this experiment: the paper's clients simply wait,
  // so a saturated static node shows up as queueing, not as forwarding.
  cfg.client_retry.request_timeout = 60 * kSecond;
  cfg.shifting.shift_at = 25 * kSecond;
  cfg.shifting.fraction = 0.5;
  cfg.duration = 80 * kSecond;
  cfg.warmup = 5 * kSecond;
  cfg.sample_period = kSecond;
  return cfg;
}

SimConfig flash_crowd_config(bool traffic_control, std::uint64_t seed) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 10;
  cfg.seed = seed;
  cfg.fs.seed = seed;
  cfg.fs.num_users = 64;
  cfg.fs.nodes_per_user = 400;
  cfg.num_clients = 10000;
  cfg.mds.traffic_control_enabled = traffic_control;
  // A flash crowd must cross the replication threshold within a few
  // milliseconds of the spike.
  cfg.mds.replication_threshold = 300.0;
  cfg.mds.popularity_half_life = kSecond / 2;
  cfg.workload = WorkloadKind::kFlashCrowd;
  cfg.flash.start = 8 * kSecond;
  cfg.flash.duration = from_millis(250);
  // Crowd clients re-issue unanswered requests quickly (they are all
  // stampeding the same file); the retry spray is what lets reply-side
  // replication absorb the crowd — and what buries the authority when
  // traffic control is off (the paper's ~250k req/s forward rates).
  cfg.client_retry.request_timeout = 50 * kMillisecond;
  cfg.duration = from_seconds(8.4);
  cfg.warmup = from_seconds(7.5);
  cfg.sample_period = from_millis(10);
  return cfg;
}

}  // namespace mdsim

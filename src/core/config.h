// Top-level simulation configuration and per-experiment presets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "client/hedge_policy.h"
#include "client/retry_policy.h"
#include "fstree/generator.h"
#include "mds/params.h"
#include "net/network.h"
#include "strategy/partition.h"
#include "workload/flash_crowd.h"
#include "workload/general.h"
#include "workload/scientific.h"
#include "workload/shifting.h"

namespace mdsim {

enum class WorkloadKind : std::uint8_t {
  kGeneral,
  kScientific,
  kFlashCrowd,
  kShifting,
};

constexpr const char* workload_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kGeneral: return "general";
    case WorkloadKind::kScientific: return "scientific";
    case WorkloadKind::kFlashCrowd: return "flash_crowd";
    case WorkloadKind::kShifting: return "shifting";
  }
  return "?";
}

struct SimConfig {
  StrategyKind strategy = StrategyKind::kDynamicSubtree;
  int num_mds = 4;
  int num_clients = 120;
  std::uint64_t seed = 42;

  NamespaceParams fs;
  MdsParams mds;
  NetworkParams net;

  WorkloadKind workload = WorkloadKind::kGeneral;
  GeneralWorkloadParams general;
  ScientificWorkloadParams scientific;
  FlashCrowdParams flash;
  ShiftingWorkloadParams shifting;

  /// If > 0, overrides mds.cache_capacity: the cluster's total cache is
  /// this fraction of the file system's metadata item count, split evenly
  /// across nodes (figure 4's x-axis).
  double cache_fraction = 0.0;

  /// Ablation hook: force whole-directory I/O (embedded-inode prefetch)
  /// on (1) or off (0) regardless of strategy; -1 keeps the strategy's
  /// native behaviour.
  int force_whole_dir_io = -1;

  /// Client retry policy (src/client/retry_policy.h): request timeout
  /// (retry to a random node on silence), exponential-backoff base/cap
  /// (the k-th re-issue is jittered within [d/2, d), d = base << (k-1),
  /// capped — spreads the retry herd a dead node strands so recovery
  /// isn't met with a stampede), and the retry budget (off by default).
  ClientRetryParams client_retry;

  /// Hedged reads (src/client/hedge_policy.h): after an adaptive
  /// per-op-class ~p99 delay, read-only first attempts fire one backup
  /// request to a different node; first reply wins, the loser is
  /// discarded by req-id matching. Off by default (zero-cost-off).
  HedgeParams hedge;

  /// Parallel simulation (core/sharded_cluster.h). shards == 1 is the
  /// classic single-engine ClusterSim path, bit-for-bit unchanged; with
  /// shards > 1 the system is split into that many self-contained
  /// mini-clusters (num_mds, num_clients and fs.num_users divided among
  /// them) advancing in lookahead-bounded lockstep windows. `threads`
  /// sets the worker count inside windows — results are identical for
  /// every value, by construction.
  int shards = 1;
  int threads = 1;
  /// Probability that a cohort client's think-turn targets another shard
  /// (a stat against a remote tree, routed over the cross-shard fabric).
  double shard_remote_fraction = 0.05;
  /// Remote targets sampled per (shard, other-shard) pair at build time.
  int shard_catalog_size = 64;

  /// Per-request tracing / latency attribution (src/common/trace.h).
  /// Disabled by default: no trace records exist, every hook reduces to a
  /// null-pointer check, and simulation results are identical either way
  /// (tracing observes; it never schedules or draws randomness).
  struct TraceParams {
    bool enabled = false;
    /// How many slowest requests to keep for the structured dump.
    std::size_t slowest_n = 32;
  };
  TraceParams trace;

  /// Simulated run length; statistics reset at `warmup`.
  SimTime duration = 20 * kSecond;
  SimTime warmup = 4 * kSecond;
  /// Metrics sampling period (figures 5-7 use finer sampling).
  SimTime sample_period = kSecond;

  std::string label() const;
};

/// Figure 2/3 preset: "fixing MDS memory and scaling the entire system:
/// file system size, number of MDS servers, and client base."
SimConfig scaled_system_config(StrategyKind strategy, int num_mds,
                               std::uint64_t seed = 42);

/// Figure 4 preset: fixed cluster, cache capacity expressed as a fraction
/// of total file-system metadata (set after namespace generation by the
/// cluster builder via cache_fraction).
SimConfig cache_sweep_config(StrategyKind strategy, double cache_fraction,
                             std::uint64_t seed = 42);

/// Figures 5/6 preset: dynamic-vs-static subtree under a workload shift.
SimConfig shift_config(StrategyKind strategy, std::uint64_t seed = 42);

/// Figure 7 preset: flash crowd with/without traffic control.
SimConfig flash_crowd_config(bool traffic_control, std::uint64_t seed = 42);

}  // namespace mdsim

#include "core/experiment.h"

#include <atomic>
#include <cassert>
#include <thread>

#include "core/sharded_cluster.h"

namespace mdsim {

RunResult run_one(const SimConfig& config,
                  const std::function<void(ClusterSim&)>& inspect) {
  if (config.shards > 1) {
    // Parallel engine; `inspect` takes a ClusterSim and cannot apply.
    assert(!inspect && "inspect hooks are single-cluster only");
    ShardedClusterSim cluster(config);
    cluster.run();
    return cluster.result();
  }
  ClusterSim cluster(config);
  cluster.run();

  RunResult r;
  r.config = config;
  Metrics& m = cluster.metrics();
  const SimTime now = cluster.sim().now();
  r.avg_mds_throughput = m.avg_mds_throughput(now);
  r.hit_rate = m.cluster_hit_rate();
  r.prefix_fraction = m.mean_prefix_fraction();
  r.forward_fraction = m.overall_forward_fraction();
  r.mean_latency_ms = m.client_latency().mean() * 1e3;
  r.replies = m.total_replies();
  r.failures = m.total_failures();
  if (inspect) inspect(cluster);
  return r;
}

std::vector<RunResult> run_batch(const std::vector<SimConfig>& configs,
                                 unsigned parallelism) {
  if (parallelism == 0) {
    parallelism = std::max(1u, std::thread::hardware_concurrency());
  }
  std::vector<RunResult> results(configs.size());
  if (parallelism == 1 || configs.size() == 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      results[i] = run_one(configs[i]);
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size()) return;
      results[i] = run_one(configs[i]);
    }
  };
  std::vector<std::thread> pool;
  const unsigned n = std::min<unsigned>(
      parallelism, static_cast<unsigned>(configs.size()));
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return results;
}

}  // namespace mdsim

// Sweep driver: run a batch of independent simulations (optionally on a
// thread pool — each ClusterSim is fully self-contained) and collect the
// aggregate numbers the paper's figures plot.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/cluster.h"

namespace mdsim {

struct RunResult {
  SimConfig config;
  double avg_mds_throughput = 0.0;  // ops/sec per MDS (fig 2)
  double hit_rate = 0.0;            // cluster cache hit rate (fig 4)
  double prefix_fraction = 0.0;     // prefix share of cache (fig 3)
  double forward_fraction = 0.0;    // forwarded / client requests
  double mean_latency_ms = 0.0;
  std::uint64_t replies = 0;
  std::uint64_t failures = 0;
};

/// Run one configured simulation to completion and summarize it. With
/// config.shards > 1 the run uses the sharded parallel engine
/// (core/sharded_cluster.h); `inspect` hooks are single-cluster only.
/// `inspect`, if given, runs against the finished cluster (extra metrics).
RunResult run_one(const SimConfig& config,
                  const std::function<void(ClusterSim&)>& inspect = {});

/// Run a batch, at most `parallelism` at a time (1 = serial, 0 = hardware
/// concurrency). Results are returned in input order.
std::vector<RunResult> run_batch(const std::vector<SimConfig>& configs,
                                 unsigned parallelism = 0);

}  // namespace mdsim

#include "core/fault_plan.h"

namespace mdsim {

FaultPlan& FaultPlan::crash(SimTime at, MdsId node, bool warm) {
  crashes_.push_back(CrashAction{at, node, warm});
  return *this;
}

FaultPlan& FaultPlan::restart(SimTime at, MdsId node) {
  restarts_.push_back(RestartAction{at, node});
  return *this;
}

FaultPlan& FaultPlan::flaky_link(SimTime from, SimTime until, NetAddr a,
                                 NetAddr b, const LinkFault& fault) {
  links_.push_back(LinkAction{from, until, a, b, fault});
  return *this;
}

void FaultPlan::arm(ClusterSim& cluster) const {
  Simulation& sim = cluster.sim();
  for (const CrashAction& c : crashes_) {
    sim.schedule_at(c.at, [&cluster, node = c.node, warm = c.warm]() {
      cluster.fail_mds(node, warm);
    });
  }
  for (const RestartAction& r : restarts_) {
    sim.schedule_at(r.at, [&cluster, node = r.node]() {
      cluster.recover_mds(node);
    });
  }
  for (const LinkAction& l : links_) {
    sim.schedule_at(l.from, [&cluster, a = l.a, b = l.b, fault = l.fault]() {
      cluster.network().set_link_fault(a, b, fault);
    });
    sim.schedule_at(l.until, [&cluster, a = l.a, b = l.b]() {
      cluster.network().clear_link_fault(a, b);
    });
  }
}

}  // namespace mdsim

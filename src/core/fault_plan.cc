#include "core/fault_plan.h"

#include "common/rng.h"

namespace mdsim {

FaultPlan& FaultPlan::crash(SimTime at, MdsId node, bool warm) {
  crashes_.push_back(CrashAction{at, node, warm});
  return *this;
}

FaultPlan& FaultPlan::restart(SimTime at, MdsId node) {
  restarts_.push_back(RestartAction{at, node});
  return *this;
}

FaultPlan& FaultPlan::flaky_link(SimTime from, SimTime until, NetAddr a,
                                 NetAddr b, const LinkFault& fault) {
  links_.push_back(LinkAction{from, until, a, b, fault});
  return *this;
}

FaultPlan& FaultPlan::partition(SimTime from, SimTime until,
                                std::vector<std::vector<NetAddr>> groups) {
  partitions_.push_back(PartitionAction{from, until, std::move(groups)});
  return *this;
}

FaultPlan& FaultPlan::cut_link(SimTime from, SimTime until, NetAddr src,
                               NetAddr dst) {
  cuts_.push_back(CutAction{from, until, src, dst});
  return *this;
}

FaultPlan& FaultPlan::fail_slow(SimTime from, SimTime until, MdsId node,
                                double cpu_mult, double disk_mult) {
  fail_slows_.push_back(FailSlowAction{from, until, node, cpu_mult, disk_mult});
  return *this;
}

FaultPlan& FaultPlan::degrade_link(SimTime from, SimTime until, NetAddr a,
                                   NetAddr b, const LinkDegrade& degrade) {
  degrades_.push_back(DegradeAction{from, until, a, b, degrade});
  return *this;
}

FaultPlan FaultPlan::randomize(std::uint64_t seed, int num_mds,
                               SimTime duration) {
  FaultPlan plan;
  if (num_mds < 2 || duration <= 0) return plan;
  Rng rng(seed, /*stream=*/0xc4a05ULL);
  const SimTime lo = duration / 5;
  const SimTime hi = 4 * duration / 5;
  const auto at_in = [&](SimTime a, SimTime b) {
    return a + static_cast<SimTime>(
                   rng.uniform(static_cast<std::uint64_t>(b - a)));
  };
  const auto pick_node = [&]() {
    return static_cast<MdsId>(rng.uniform(static_cast<std::uint64_t>(num_mds)));
  };

  // One crash/restart pair (warm or cold, never the last survivor since
  // num_mds >= 2 and only one node crashes at a time).
  {
    const SimTime at = at_in(lo, (lo + hi) / 2);
    const SimTime back = at_in(at + duration / 10, hi);
    const MdsId victim = pick_node();
    plan.crash(at, victim, /*warm=*/rng.bernoulli(0.5));
    plan.restart(back, victim);
  }
  // One fail-slow window on a different node: degraded disk, sometimes
  // CPU too.
  {
    const SimTime at = at_in(lo, (lo + hi) / 2);
    const SimTime end = at_in(at + duration / 10, hi);
    MdsId victim = pick_node();
    if (!plan.crashes_.empty() && victim == plan.crashes_.front().node) {
      victim = static_cast<MdsId>((victim + 1) % num_mds);
    }
    const double disk_mult = 4.0 + static_cast<double>(rng.uniform(9));
    const double cpu_mult = rng.bernoulli(0.5) ? 2.0 : 1.0;
    plan.fail_slow(at, end, victim, cpu_mult, disk_mult);
  }
  // One transient flaky window and one sustained lossy-degrade window on
  // random MDS<->MDS links.
  {
    const SimTime at = at_in(lo, hi - duration / 20);
    const SimTime end = at_in(at + duration / 20, hi);
    const MdsId a = pick_node();
    const MdsId b = static_cast<MdsId>((a + 1 + rng.uniform(
        static_cast<std::uint64_t>(num_mds - 1))) % num_mds);
    LinkFault f;
    f.drop = 0.05 + 0.1 * rng.uniform_double();
    f.duplicate = 0.02;
    f.spike = 0.05;
    plan.flaky_link(at, end, a, b, f);
  }
  {
    const SimTime at = at_in(lo, hi - duration / 20);
    const SimTime end = at_in(at + duration / 20, hi);
    const MdsId a = pick_node();
    const MdsId b = static_cast<MdsId>((a + 1 + rng.uniform(
        static_cast<std::uint64_t>(num_mds - 1))) % num_mds);
    LinkDegrade d;
    d.latency_factor = 2.0 + 6.0 * rng.uniform_double();
    d.extra_latency = from_micros(200);
    d.loss = 0.02 * rng.uniform_double();
    plan.degrade_link(at, end, a, b, d);
  }
  // Occasionally a short partition isolating one node (only with enough
  // survivors for a quorum on the majority side).
  if (num_mds >= 4 && rng.bernoulli(0.5)) {
    const SimTime at = at_in(lo, hi - duration / 10);
    const SimTime end = at_in(at + duration / 20, hi);
    const MdsId isolated = pick_node();
    std::vector<NetAddr> rest;
    for (MdsId i = 0; i < num_mds; ++i) {
      if (i != isolated) rest.push_back(i);
    }
    plan.partition(at, end, {rest, {isolated}});
  }
  return plan;
}

void FaultPlan::arm(ClusterSim& cluster) const {
  Simulation& sim = cluster.sim();
  for (const CrashAction& c : crashes_) {
    sim.schedule_at(c.at, [&cluster, node = c.node, warm = c.warm]() {
      cluster.fail_mds(node, warm);
    });
  }
  for (const RestartAction& r : restarts_) {
    sim.schedule_at(r.at, [&cluster, node = r.node]() {
      cluster.recover_mds(node);
    });
  }
  for (const LinkAction& l : links_) {
    sim.schedule_at(l.from, [&cluster, a = l.a, b = l.b, fault = l.fault]() {
      cluster.network().set_link_fault(a, b, fault);
    });
    sim.schedule_at(l.until, [&cluster, a = l.a, b = l.b]() {
      cluster.network().clear_link_fault(a, b);
    });
  }
  for (const PartitionAction& p : partitions_) {
    sim.schedule_at(p.from, [&cluster, groups = p.groups]() {
      cluster.network().partition(groups);
    });
    if (p.until > p.from) {
      sim.schedule_at(p.until, [&cluster]() { cluster.network().heal(); });
    }
  }
  for (const CutAction& c : cuts_) {
    sim.schedule_at(c.from, [&cluster, src = c.src, dst = c.dst]() {
      cluster.network().cut_link(src, dst);
    });
    if (c.until > c.from) {
      sim.schedule_at(c.until, [&cluster, src = c.src, dst = c.dst]() {
        cluster.network().restore_link(src, dst);
      });
    }
  }
  for (const FailSlowAction& f : fail_slows_) {
    sim.schedule_at(f.from, [&cluster, node = f.node, cpu = f.cpu_mult,
                             disk = f.disk_mult]() {
      cluster.set_fail_slow(node, cpu, disk);
    });
    if (f.until > f.from) {
      sim.schedule_at(f.until, [&cluster, node = f.node]() {
        cluster.set_fail_slow(node, 1.0, 1.0);
      });
    }
  }
  for (const DegradeAction& d : degrades_) {
    sim.schedule_at(d.from, [&cluster, a = d.a, b = d.b, deg = d.degrade]() {
      cluster.network().set_link_degrade(a, b, deg);
    });
    if (d.until > d.from) {
      sim.schedule_at(d.until, [&cluster, a = d.a, b = d.b]() {
        cluster.network().clear_link_degrade(a, b);
      });
    }
  }
}

}  // namespace mdsim

#include "core/fault_plan.h"

namespace mdsim {

FaultPlan& FaultPlan::crash(SimTime at, MdsId node, bool warm) {
  crashes_.push_back(CrashAction{at, node, warm});
  return *this;
}

FaultPlan& FaultPlan::restart(SimTime at, MdsId node) {
  restarts_.push_back(RestartAction{at, node});
  return *this;
}

FaultPlan& FaultPlan::flaky_link(SimTime from, SimTime until, NetAddr a,
                                 NetAddr b, const LinkFault& fault) {
  links_.push_back(LinkAction{from, until, a, b, fault});
  return *this;
}

FaultPlan& FaultPlan::partition(SimTime from, SimTime until,
                                std::vector<std::vector<NetAddr>> groups) {
  partitions_.push_back(PartitionAction{from, until, std::move(groups)});
  return *this;
}

FaultPlan& FaultPlan::cut_link(SimTime from, SimTime until, NetAddr src,
                               NetAddr dst) {
  cuts_.push_back(CutAction{from, until, src, dst});
  return *this;
}

void FaultPlan::arm(ClusterSim& cluster) const {
  Simulation& sim = cluster.sim();
  for (const CrashAction& c : crashes_) {
    sim.schedule_at(c.at, [&cluster, node = c.node, warm = c.warm]() {
      cluster.fail_mds(node, warm);
    });
  }
  for (const RestartAction& r : restarts_) {
    sim.schedule_at(r.at, [&cluster, node = r.node]() {
      cluster.recover_mds(node);
    });
  }
  for (const LinkAction& l : links_) {
    sim.schedule_at(l.from, [&cluster, a = l.a, b = l.b, fault = l.fault]() {
      cluster.network().set_link_fault(a, b, fault);
    });
    sim.schedule_at(l.until, [&cluster, a = l.a, b = l.b]() {
      cluster.network().clear_link_fault(a, b);
    });
  }
  for (const PartitionAction& p : partitions_) {
    sim.schedule_at(p.from, [&cluster, groups = p.groups]() {
      cluster.network().partition(groups);
    });
    if (p.until > p.from) {
      sim.schedule_at(p.until, [&cluster]() { cluster.network().heal(); });
    }
  }
  for (const CutAction& c : cuts_) {
    sim.schedule_at(c.from, [&cluster, src = c.src, dst = c.dst]() {
      cluster.network().cut_link(src, dst);
    });
    if (c.until > c.from) {
      sim.schedule_at(c.until, [&cluster, src = c.src, dst = c.dst]() {
        cluster.network().restore_link(src, dst);
      });
    }
  }
}

}  // namespace mdsim

// Deterministic fault-injection scenarios.
//
// A FaultPlan scripts a timed failure schedule against a ClusterSim —
// crash MDS 1 at t=8s, restart it at t=15s, make the 2<->3 link flaky
// from t=10s to t=12s — and arms it as ordinary simulation events, so a
// chaos run is exactly as reproducible as a healthy one: same seed, same
// plan, same byte-for-byte metrics. Used by the chaos tests, the
// availability bench and the CLI.
#pragma once

#include <vector>

#include "core/cluster.h"
#include "net/network.h"

namespace mdsim {

class FaultPlan {
 public:
  /// Crash `node` at `at` (survivors detect it via heartbeats; see
  /// ClusterSim::fail_mds). `warm` selects warm vs cold takeover.
  FaultPlan& crash(SimTime at, MdsId node, bool warm = true);

  /// Restart a crashed node at `at` (journal replay + rejoin).
  FaultPlan& restart(SimTime at, MdsId node);

  /// Degrade the a<->b link (both directions) with `fault` from `from`
  /// until `until`, then restore it.
  FaultPlan& flaky_link(SimTime from, SimTime until, NetAddr a, NetAddr b,
                        const LinkFault& fault);

  /// Split the network into `groups` at `from` (see Network::partition)
  /// and heal it at `until`. `until <= from` means the partition never
  /// heals within the run. Only one partition is active at a time; a
  /// later partition action replaces the earlier grouping.
  FaultPlan& partition(SimTime from, SimTime until,
                       std::vector<std::vector<NetAddr>> groups);

  /// Sever the directed src->dst link at `from`, restore it at `until`
  /// (`until <= from` = never). Composable: several cuts model
  /// asymmetric or flapping connectivity.
  FaultPlan& cut_link(SimTime from, SimTime until, NetAddr src, NetAddr dst);

  /// Schedule every scripted action on the cluster's simulation clock.
  /// The cluster must outlive the run; call once.
  void arm(ClusterSim& cluster) const;

  bool empty() const {
    return crashes_.empty() && restarts_.empty() && links_.empty() &&
           partitions_.empty() && cuts_.empty();
  }

 private:
  struct CrashAction {
    SimTime at;
    MdsId node;
    bool warm;
  };
  struct RestartAction {
    SimTime at;
    MdsId node;
  };
  struct LinkAction {
    SimTime from;
    SimTime until;
    NetAddr a;
    NetAddr b;
    LinkFault fault;
  };

  struct PartitionAction {
    SimTime from;
    SimTime until;
    std::vector<std::vector<NetAddr>> groups;
  };
  struct CutAction {
    SimTime from;
    SimTime until;
    NetAddr src;
    NetAddr dst;
  };

  std::vector<CrashAction> crashes_;
  std::vector<RestartAction> restarts_;
  std::vector<LinkAction> links_;
  std::vector<PartitionAction> partitions_;
  std::vector<CutAction> cuts_;
};

}  // namespace mdsim

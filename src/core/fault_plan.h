// Deterministic fault-injection scenarios.
//
// A FaultPlan scripts a timed failure schedule against a ClusterSim —
// crash MDS 1 at t=8s, restart it at t=15s, make the 2<->3 link flaky
// from t=10s to t=12s — and arms it as ordinary simulation events, so a
// chaos run is exactly as reproducible as a healthy one: same seed, same
// plan, same byte-for-byte metrics. Used by the chaos tests, the
// availability bench and the CLI.
#pragma once

#include <vector>

#include "core/cluster.h"
#include "net/network.h"

namespace mdsim {

class FaultPlan {
 public:
  /// Crash `node` at `at` (survivors detect it via heartbeats; see
  /// ClusterSim::fail_mds). `warm` selects warm vs cold takeover.
  FaultPlan& crash(SimTime at, MdsId node, bool warm = true);

  /// Restart a crashed node at `at` (journal replay + rejoin).
  FaultPlan& restart(SimTime at, MdsId node);

  /// Degrade the a<->b link (both directions) with `fault` from `from`
  /// until `until`, then restore it.
  FaultPlan& flaky_link(SimTime from, SimTime until, NetAddr a, NetAddr b,
                        const LinkFault& fault);

  /// Split the network into `groups` at `from` (see Network::partition)
  /// and heal it at `until`. `until <= from` means the partition never
  /// heals within the run. Only one partition is active at a time; a
  /// later partition action replaces the earlier grouping.
  FaultPlan& partition(SimTime from, SimTime until,
                       std::vector<std::vector<NetAddr>> groups);

  /// Sever the directed src->dst link at `from`, restore it at `until`
  /// (`until <= from` = never). Composable: several cuts model
  /// asymmetric or flapping connectivity.
  FaultPlan& cut_link(SimTime from, SimTime until, NetAddr src, NetAddr dst);

  /// Gray failure: from `from` until `until` (`until <= from` = for the
  /// rest of the run), `node`'s CPU serves every job `cpu_mult` times
  /// slower and its disks `disk_mult` times slower. Heartbeats keep
  /// flowing — the node is degraded, not dead.
  FaultPlan& fail_slow(SimTime from, SimTime until, MdsId node,
                       double cpu_mult, double disk_mult);

  /// Gray failure: sustained latency inflation + loss on the a<->b link
  /// from `from` until `until` (distinct from flaky_link's transient
  /// per-message spikes).
  FaultPlan& degrade_link(SimTime from, SimTime until, NetAddr a, NetAddr b,
                          const LinkDegrade& degrade);

  /// Chaos-schedule generator: compose crash/restart, partition, flaky,
  /// fail-slow and lossy-degrade windows from one seeded stream. The same
  /// (seed, num_mds, duration) always yields the same plan, so randomized
  /// chaos sweeps are exactly as reproducible as hand-written ones. All
  /// windows open after `duration/5` (past typical warmup) and close by
  /// `4*duration/5`, leaving the tail to drain and recover.
  static FaultPlan randomize(std::uint64_t seed, int num_mds,
                             SimTime duration);

  /// Schedule every scripted action on the cluster's simulation clock.
  /// The cluster must outlive the run; call once.
  void arm(ClusterSim& cluster) const;

  bool empty() const {
    return crashes_.empty() && restarts_.empty() && links_.empty() &&
           partitions_.empty() && cuts_.empty() && fail_slows_.empty() &&
           degrades_.empty();
  }

 private:
  struct CrashAction {
    SimTime at;
    MdsId node;
    bool warm;
  };
  struct RestartAction {
    SimTime at;
    MdsId node;
  };
  struct LinkAction {
    SimTime from;
    SimTime until;
    NetAddr a;
    NetAddr b;
    LinkFault fault;
  };

  struct PartitionAction {
    SimTime from;
    SimTime until;
    std::vector<std::vector<NetAddr>> groups;
  };
  struct CutAction {
    SimTime from;
    SimTime until;
    NetAddr src;
    NetAddr dst;
  };
  struct FailSlowAction {
    SimTime from;
    SimTime until;
    MdsId node;
    double cpu_mult;
    double disk_mult;
  };
  struct DegradeAction {
    SimTime from;
    SimTime until;
    NetAddr a;
    NetAddr b;
    LinkDegrade degrade;
  };

  std::vector<CrashAction> crashes_;
  std::vector<RestartAction> restarts_;
  std::vector<LinkAction> links_;
  std::vector<PartitionAction> partitions_;
  std::vector<CutAction> cuts_;
  std::vector<FailSlowAction> fail_slows_;
  std::vector<DegradeAction> degrades_;
};

}  // namespace mdsim

#include "core/metrics.h"

#include <algorithm>
#include <limits>

#include "client/client.h"
#include "mds/mds_node.h"

namespace mdsim {

Metrics::Metrics(std::vector<MdsNode*> nodes, std::vector<Client*> clients,
                 const Simulation* sim)
    : nodes_(std::move(nodes)), clients_(std::move(clients)), sim_(sim) {
  mds_tput_.resize(nodes_.size());
  mds_health_.resize(nodes_.size());
  base_replies_.assign(nodes_.size(), 0);
  base_forwards_.assign(nodes_.size(), 0);
  base_requests_.assign(nodes_.size(), 0);
  base_failures_.assign(nodes_.size(), 0);
  base_hits_.assign(nodes_.size(), 0);
  base_misses_.assign(nodes_.size(), 0);
  base_sheds_.assign(nodes_.size(), 0);
  base_rejects_.assign(nodes_.size(), 0);
}

namespace {
std::uint64_t sheds_of(const MdsStats& s) {
  return s.requests_shed_queue + s.requests_shed_admission +
         s.requests_shed_deadline;
}
}  // namespace

void Metrics::sample(SimTime now) {
  double sum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = 0.0;
  double fwd_sum = 0.0;
  double req_sum = 0.0;
  double shed_sum = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    MdsStats& s = nodes_[i]->stats();
    const double tput = s.reply_rate.sample(now);
    const double fwd = s.forward_rate.sample(now);
    const double req = s.request_rate.sample(now);
    shed_sum += s.shed_rate.sample(now);
    s.miss_rate.sample(now);  // keep the window aligned
    mds_tput_[i].record(now, tput);
    mds_health_[i].record(now, nodes_[i]->self_health_lag() * 1e-9);
    sum += tput;
    mn = std::min(mn, tput);
    mx = std::max(mx, tput);
    fwd_sum += fwd;
    req_sum += req;
  }
  const double n = static_cast<double>(nodes_.size());
  avg_tput_.record(now, n > 0 ? sum / n : 0.0);
  min_tput_.record(now, nodes_.empty() ? 0.0 : mn);
  max_tput_.record(now, mx);
  reply_rate_.record(now, sum);
  forward_rate_.record(now, fwd_sum);
  fwd_fraction_.record(now, req_sum > 0 ? fwd_sum / req_sum : 0.0);
  shed_rate_.record(now, shed_sum);
  // Gray-degraded census from the incident log (first-detector truth, not
  // any single node's view). Zero whenever health scoring is off.
  double degraded = 0.0;
  if (faults_ != nullptr) {
    for (const GrayIncident& g : faults_->gray_incidents()) {
      if (g.open) degraded += 1.0;
    }
  }
  degraded_nodes_.record(now, degraded);
}

void Metrics::reset(SimTime now) {
  reset_at_ = now;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    MdsStats& s = nodes_[i]->stats();
    base_replies_[i] = s.replies_sent;
    base_forwards_[i] = s.forwards;
    base_requests_[i] = s.requests_received;
    base_failures_[i] = s.failures;
    base_hits_[i] = nodes_[i]->cache().stats().hits;
    base_misses_[i] = nodes_[i]->cache().stats().misses;
    base_sheds_[i] = sheds_of(s);
    base_rejects_[i] = s.rejects_sent;
    s.reply_rate.sample(now);
    s.forward_rate.sample(now);
    s.request_rate.sample(now);
    s.miss_rate.sample(now);
    s.shed_rate.sample(now);
    nodes_[i]->reset_cpu_depth_stats(now);
  }
  for (Client* c : clients_) {
    c->stats().latency_seconds = Summary{};
  }
  // Warmup traces are dropped together with the latency Summaries they
  // reconcile against.
  if (trace_ != nullptr) trace_->reset();
}

double Metrics::avg_mds_throughput(SimTime now) const {
  if (nodes_.empty() || now <= reset_at_) return 0.0;
  const double secs = to_seconds(now - reset_at_);
  double total = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    total += static_cast<double>(nodes_[i]->stats().replies_sent -
                                 base_replies_[i]);
  }
  return total / secs / static_cast<double>(nodes_.size());
}

double Metrics::cluster_hit_rate() const {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    hits += nodes_[i]->cache().stats().hits - base_hits_[i];
    misses += nodes_[i]->cache().stats().misses - base_misses_[i];
  }
  const std::uint64_t total = hits + misses;
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

double Metrics::mean_prefix_fraction() const {
  if (nodes_.empty()) return 0.0;
  double sum = 0.0;
  for (MdsNode* n : nodes_) sum += n->cache().prefix_fraction();
  return sum / static_cast<double>(nodes_.size());
}

double Metrics::mean_cache_fill() const {
  if (nodes_.empty()) return 0.0;
  double sum = 0.0;
  for (MdsNode* n : nodes_) {
    sum += static_cast<double>(n->cache().size()) /
           static_cast<double>(n->cache().capacity());
  }
  return sum / static_cast<double>(nodes_.size());
}

double Metrics::overall_forward_fraction() const {
  std::uint64_t fwd = 0;
  std::uint64_t req = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    fwd += nodes_[i]->stats().forwards - base_forwards_[i];
    req += nodes_[i]->stats().requests_received - base_requests_[i];
  }
  // Forwarded arrivals are re-counted as received; normalize by original
  // client submissions.
  const std::uint64_t original = req > fwd ? req - fwd : 0;
  return original > 0
             ? static_cast<double>(fwd) / static_cast<double>(original)
             : 0.0;
}

Summary Metrics::client_latency() const {
  Summary s;
  for (Client* c : clients_) s.merge(c->stats().latency_seconds);
  return s;
}

std::uint64_t Metrics::total_hedges_fired() const {
  std::uint64_t total = 0;
  for (Client* c : clients_) total += c->stats().hedges_fired;
  return total;
}

std::uint64_t Metrics::total_hedge_wins() const {
  std::uint64_t total = 0;
  for (Client* c : clients_) total += c->stats().hedge_wins;
  return total;
}

std::uint64_t Metrics::total_wasted_hedges() const {
  std::uint64_t total = 0;
  for (Client* c : clients_) total += c->stats().wasted_hedges;
  return total;
}

std::uint64_t Metrics::total_replies() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    total += nodes_[i]->stats().replies_sent - base_replies_[i];
  }
  return total;
}

std::uint64_t Metrics::total_failures() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    total += nodes_[i]->stats().failures - base_failures_[i];
  }
  return total;
}

std::uint64_t Metrics::total_sheds() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    total += sheds_of(nodes_[i]->stats()) - base_sheds_[i];
  }
  return total;
}

std::uint64_t Metrics::total_rejects() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    total += nodes_[i]->stats().rejects_sent - base_rejects_[i];
  }
  return total;
}

std::size_t Metrics::cpu_queue_highwater() const {
  std::size_t hw = 0;
  for (const MdsNode* n : nodes_) {
    hw = std::max(hw, n->cpu().depth_highwater());
  }
  return hw;
}

double Metrics::mean_cpu_queue_depth(SimTime now) const {
  if (nodes_.empty()) return 0.0;
  double sum = 0.0;
  for (const MdsNode* n : nodes_) sum += n->cpu().mean_depth(now);
  return sum / static_cast<double>(nodes_.size());
}

}  // namespace mdsim

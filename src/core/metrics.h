// Cluster metrics collection: periodic sampling of per-MDS and
// cluster-wide rates into time series (figures 5-7) plus end-of-run
// aggregates (figures 2-4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/fault_log.h"
#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"
#include "sim/simulation.h"

namespace mdsim {

class MdsNode;
class Client;

class Metrics {
 public:
  Metrics(std::vector<MdsNode*> nodes, std::vector<Client*> clients,
          const Simulation* sim = nullptr);

  /// Take one sample (called by the cluster on its sampling cadence).
  void sample(SimTime now);
  /// Zero windowed state at the warmup boundary.
  void reset(SimTime now);

  // --- time series (per sample) ------------------------------------------
  const std::vector<TimeSeries>& per_mds_throughput() const {
    return mds_tput_;
  }
  const TimeSeries& avg_throughput() const { return avg_tput_; }
  const TimeSeries& min_throughput() const { return min_tput_; }
  const TimeSeries& max_throughput() const { return max_tput_; }
  /// Cluster-wide replies/sec and forwards/sec (figure 7's two series).
  const TimeSeries& reply_rate() const { return reply_rate_; }
  const TimeSeries& forward_rate() const { return forward_rate_; }
  /// Fraction of client requests that were forwarded (figure 6).
  const TimeSeries& forward_fraction() const { return fwd_fraction_; }
  /// Cluster-wide admission sheds/sec (zero with overload protection off).
  const TimeSeries& shed_rate() const { return shed_rate_; }
  /// Per-node self-measured health lag (seconds of queued-but-unserved
  /// work, EWMA'd; all-zero with health scoring off).
  const std::vector<TimeSeries>& per_mds_health() const { return mds_health_; }
  /// Nodes currently flagged gray-degraded (open GrayIncidents).
  const TimeSeries& degraded_nodes() const { return degraded_nodes_; }

  // --- end-of-run aggregates ----------------------------------------------
  /// Mean per-MDS throughput since the last reset (figure 2's y-axis).
  double avg_mds_throughput(SimTime now) const;
  /// Aggregate cache hit rate across nodes since the last reset (fig 4).
  double cluster_hit_rate() const;
  /// Mean fraction of cache consumed by prefix inodes (figure 3).
  double mean_prefix_fraction() const;
  double mean_cache_fill() const;
  /// Total forwarded / total client requests since reset.
  double overall_forward_fraction() const;
  Summary client_latency() const;
  std::uint64_t total_replies() const;
  std::uint64_t total_failures() const;
  /// Hedged-read counters summed over clients since their last reset
  /// (all zero with hedging off).
  std::uint64_t total_hedges_fired() const;
  std::uint64_t total_hedge_wins() const;
  std::uint64_t total_wasted_hedges() const;
  /// Requests shed at admission (queue bound + token bucket + deadline)
  /// and explicit rejection replies sent, since the last reset.
  std::uint64_t total_sheds() const;
  std::uint64_t total_rejects() const;
  /// CPU queue-depth observers: maximum high-water mark across nodes and
  /// the across-node mean of per-node time-weighted mean depths (both
  /// since the last reset; `cpu_queue_depth()` alone is instantaneous).
  std::size_t cpu_queue_highwater() const;
  double mean_cpu_queue_depth(SimTime now) const;

  /// Event-engine health: schedule/fire/cancel volume and InlineTask
  /// heap-fallback count (nonzero fallbacks on a hot path means an
  /// oversized capture list re-introduced per-event allocations).
  Simulation::Counters engine_counters() const {
    return sim_ != nullptr ? sim_->counters() : Simulation::Counters{};
  }

  // --- latency attribution -------------------------------------------------
  /// Attach the per-request trace collector (null when tracing is off).
  /// Owned by the cluster; reset() drops its warmup-phase traces so the
  /// breakdown table covers the same window as the figure aggregates.
  void set_trace(TraceCollector* trace) { trace_ = trace; }
  TraceCollector* trace() const { return trace_; }

  // --- failure lifecycle ---------------------------------------------------
  void set_fault_log(const FaultLog* log) { faults_ = log; }
  const FaultLog* fault_log() const { return faults_; }
  /// Crash -> first survivor declaring it dead, per incident. Incidents
  /// still open at the current sim time are right-censored at `now()`
  /// rather than silently dropped.
  Summary detection_latency_seconds() const {
    return faults_ != nullptr ? faults_->detection_latency_seconds(asof())
                              : Summary{};
  }
  /// Crash -> delegations redistributed (the unavailability window for
  /// the dead node's territory).
  Summary unavailability_seconds() const {
    return faults_ != nullptr ? faults_->unavailability_seconds(asof())
                              : Summary{};
  }
  /// Restart -> journal replay done (cache warm, serving at speed).
  Summary recovery_time_seconds() const {
    return faults_ != nullptr ? faults_->recovery_time_seconds(asof())
                              : Summary{};
  }
  /// Total node-seconds spent self-fenced (partition write stall).
  double minority_stall_seconds() const {
    return faults_ != nullptr ? faults_->minority_stall_seconds(asof()) : 0.0;
  }
  /// Overload episodes (first shed -> last shed per node per storm).
  Summary overload_episode_seconds() const {
    return faults_ != nullptr ? faults_->overload_episode_seconds(asof())
                              : Summary{};
  }
  /// Total node-seconds spent flagged gray-degraded (open incidents are
  /// right-censored at now()).
  double gray_degraded_seconds() const {
    return faults_ != nullptr ? faults_->gray_degraded_seconds(asof()) : 0.0;
  }

 private:
  /// Censoring horizon for open incidents: the current sim time, or
  /// "never" when no simulation is attached (open incidents drop, as the
  /// standalone-Metrics unit tests expect).
  SimTime asof() const {
    return sim_ != nullptr ? sim_->now() : FaultIncident::kUnset;
  }

  std::vector<MdsNode*> nodes_;
  std::vector<Client*> clients_;
  const Simulation* sim_ = nullptr;
  const FaultLog* faults_ = nullptr;
  TraceCollector* trace_ = nullptr;

  std::vector<TimeSeries> mds_tput_;
  TimeSeries avg_tput_;
  TimeSeries min_tput_;
  TimeSeries max_tput_;
  TimeSeries reply_rate_;
  TimeSeries forward_rate_;
  TimeSeries fwd_fraction_;
  TimeSeries shed_rate_;
  std::vector<TimeSeries> mds_health_;
  TimeSeries degraded_nodes_;

  SimTime reset_at_ = 0;
  std::vector<std::uint64_t> base_replies_;
  std::vector<std::uint64_t> base_forwards_;
  std::vector<std::uint64_t> base_requests_;
  std::vector<std::uint64_t> base_failures_;
  std::vector<std::uint64_t> base_hits_;
  std::vector<std::uint64_t> base_misses_;
  std::vector<std::uint64_t> base_sheds_;
  std::vector<std::uint64_t> base_rejects_;
};

}  // namespace mdsim

#include "core/sharded_cluster.h"

#include <algorithm>
#include <cassert>

#include "workload/flash_crowd.h"
#include "workload/general.h"
#include "workload/op_mix.h"
#include "workload/scientific.h"
#include "workload/shifting.h"

namespace mdsim {

namespace {

/// Even split with the remainder spread over the first shards.
int split(int total, int shards, int i) {
  return total / shards + (i < total % shards ? 1 : 0);
}

/// Decorrelate per-shard seeds without losing determinism.
std::uint64_t shard_seed(std::uint64_t seed, int s) {
  return seed + static_cast<std::uint64_t>(s) * 0x9e3779b97f4a7c15ULL;
}

}  // namespace

void ShardedClusterSim::Fabric::deliver(NetAddr global_from,
                                        NetAddr global_to, SimTime when,
                                        MessagePtr msg) {
  const int from = shard_of_addr(global_from);
  const int to = shard_of_addr(global_to);
  Network* net = owner->shards_[static_cast<std::size_t>(to)]->net.get();
  owner->engine_.post(
      from, to, when,
      InlineTask([net, global_from, global_to,
                  m = std::move(msg)]() mutable {
        net->deliver_remote(global_from, global_to, std::move(m));
      }));
}

ShardedClusterSim::ShardedClusterSim(SimConfig config)
    : config_(std::move(config)),
      engine_(std::min(config_.shards, kMaxShards),
              config_.net.cross_base_latency) {
  assert(config_.shards >= 1 && config_.shards <= kMaxShards);
  assert(config_.net.cross_base_latency > 0 &&
         "cross-shard lookahead requires a positive base latency");
  fabric_.owner = this;
}

ShardedClusterSim::~ShardedClusterSim() = default;

void ShardedClusterSim::build_shard(int s) {
  const int S = engine_.shard_count();
  Shard& sh = *shards_[static_cast<std::size_t>(s)];
  Simulation& sim = engine_.shard(s);

  // Per-shard slice of the global system: its own tree over its share of
  // the users, its share of the MDS group and client base. Distinct
  // namespace seeds keep the shard trees distinct populations rather than
  // S copies of one tree.
  NamespaceParams fs = config_.fs;
  fs.num_users = std::max(1, split(config_.fs.num_users, S, s));
  fs.seed = shard_seed(config_.fs.seed, s);
  sh.ns_info = generate_namespace(sh.tree, fs);

  NetworkParams np = config_.net;
  np.seed = shard_seed(config_.seed, s);
  sh.net = std::make_unique<Network>(sim, np);
  sh.net->set_shard(s, &fabric_);

  const int mds_count = std::max(1, split(config_.num_mds, S, s));
  sh.partition = make_partitioner(config_.strategy, mds_count, sh.tree);
  sh.dirfrag =
      std::make_unique<DirFragRegistry>(mds_count, config_.mds.giga_max_depth);
  if (config_.strategy == StrategyKind::kLazyHybrid) {
    sh.lazy = std::make_unique<LazyHybridManager>(sh.tree);
  }

  MdsParams mds_params = config_.mds;
  if (config_.cache_fraction > 0.0) {
    const double total = static_cast<double>(sh.tree.node_count());
    const double per_node = total * config_.cache_fraction / mds_count;
    mds_params.cache_capacity =
        std::max<std::size_t>(64, static_cast<std::size_t>(per_node));
    mds_params.journal_capacity = mds_params.cache_capacity;
  }

  StrategyTraits traits = traits_for(config_.strategy);
  if (config_.force_whole_dir_io == 0) traits.whole_directory_io = false;
  if (config_.force_whole_dir_io == 1) traits.whole_directory_io = true;

  sh.ctx = std::make_unique<ClusterContext>(ClusterContext{
      sim, *sh.net, sh.tree, sh.store, *sh.partition, *sh.dirfrag,
      sh.anchors, sh.lazy.get(), traits, mds_params, mds_count,
      &sh.fault_log, {}});

  sh.mds_nodes.reserve(static_cast<std::size_t>(mds_count));
  for (MdsId i = 0; i < mds_count; ++i) {
    auto node = std::make_unique<MdsNode>(*sh.ctx, i);
    const NetAddr addr = sh.net->attach(node.get());
    assert(addr == i);
    (void)addr;
    sh.ctx->nodes.push_back(node.get());
    sh.mds_nodes.push_back(std::move(node));
  }
  for (auto& node : sh.mds_nodes) node->bootstrap();

  // Mirror ClusterSim's workload wiring, applied per shard: each shard's
  // workload draws targets from that shard's own tree (flash-crowd target,
  // shift destinations and all), so an S-shard run behaves like S
  // correlated instances of the legacy scenario.
  switch (config_.workload) {
    case WorkloadKind::kGeneral:
      sh.workload = std::make_unique<GeneralWorkload>(
          sh.tree, sh.ns_info.user_roots, OpMix::general_purpose(),
          config_.general);
      break;
    case WorkloadKind::kScientific: {
      std::vector<FsNode*> runs;
      for (FsNode* proj : sh.ns_info.project_roots) {
        for (const auto& [_, child] : proj->children()) {
          if (child->is_dir()) runs.push_back(child.get());
        }
      }
      if (runs.empty()) runs = sh.ns_info.user_roots;  // degenerate config
      sh.workload = std::make_unique<ScientificWorkload>(
          sh.tree, std::move(runs), config_.scientific);
      break;
    }
    case WorkloadKind::kFlashCrowd: {
      // One crowd target per shard, picked by the shard-decorrelated seed
      // so the S crowds hit distinct (but deterministic) files.
      assert(!sh.tree.files().empty());
      FsNode* target = sh.tree.files()[shard_seed(config_.seed, s) %
                                       sh.tree.files().size()];
      sh.workload = std::make_unique<FlashCrowdWorkload>(sh.tree, target,
                                                         config_.flash);
      break;
    }
    case WorkloadKind::kShifting: {
      auto* subtree = dynamic_cast<SubtreePartition*>(sh.partition.get());
      assert(subtree != nullptr &&
             "shifting workload requires a subtree strategy");
      ShiftingWorkloadParams sp = config_.shifting;
      sp.base = config_.general;
      sh.workload = make_shifting_workload(sh.tree, sh.ns_info.user_roots,
                                           *subtree, sp);
      break;
    }
  }

  if (config_.trace.enabled) {
    sh.tracer = std::make_unique<TraceCollector>(config_.trace.slowest_n);
  }

  const int clients = std::max(1, split(config_.num_clients, S, s));
  sh.cohort = std::make_unique<ClientCohort>(
      sim, *sh.net, sh.tree, *sh.workload, *sh.partition, *sh.dirfrag,
      clients, static_cast<ClientId>(sh.first_client), mds_count,
      config_.seed);
  // Align each client's uid with the home the workload gives it: the
  // workload maps global client id c to homes_[c % num_users] (per-shard
  // num_users), and user u's home is owned by uid 100 + u.
  for (int c = 0; c < clients; ++c) {
    sh.cohort->set_uid(
        c, 100 + static_cast<std::uint32_t>(
                     (sh.first_client + c) % fs.num_users));
  }
  sh.cohort->set_retry_policy(config_.client_retry);
  sh.cohort->set_hedge_policy(config_.hedge);
  sh.cohort->set_tracer(sh.tracer.get());

  total_mds_ += mds_count;
  total_clients_ += clients;
}

void ShardedClusterSim::build_catalogs() {
  const int S = engine_.shard_count();
  if (S < 2 || config_.shard_remote_fraction <= 0.0 ||
      config_.shard_catalog_size <= 0) {
    return;
  }
  for (int s = 0; s < S; ++s) {
    // One dedicated stream per destination cohort; iteration order over
    // source shards is fixed, so the catalog is a pure function of the
    // configuration.
    Rng rng(config_.seed, 0xca7a1000ULL + static_cast<std::uint64_t>(s));
    std::vector<ClientCohort::RemoteTarget> catalog;
    for (int t = 0; t < S; ++t) {
      if (t == s) continue;
      Shard& other = *shards_[static_cast<std::size_t>(t)];
      const auto& files = other.tree.files();
      if (files.empty()) continue;
      for (int k = 0; k < config_.shard_catalog_size; ++k) {
        FsNode* node = files[rng.uniform(files.size())];
        MdsId authority = other.partition->authority_of(node);
        if (authority == kInvalidMds) authority = 0;
        catalog.push_back(ClientCohort::RemoteTarget{
            shard_global_addr(t, authority), node->ino(),
            node->inode().perms.uid});
      }
    }
    shards_[static_cast<std::size_t>(s)]->cohort->set_remote_catalog(
        std::move(catalog), config_.shard_remote_fraction);
  }
}

void ShardedClusterSim::build() {
  if (built_) return;
  built_ = true;
  const int S = engine_.shard_count();
  int first = 0;
  for (int s = 0; s < S; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->first_client = first;
    build_shard(s);
    first += shards_.back()->cohort->size();
  }
  build_catalogs();
}

void ShardedClusterSim::snapshot(int s) {
  Shard& sh = *shards_[static_cast<std::size_t>(s)];
  const std::size_t n = sh.mds_nodes.size();
  sh.base_replies.resize(n);
  sh.base_forwards.resize(n);
  sh.base_requests.resize(n);
  sh.base_failures.resize(n);
  sh.base_hits.resize(n);
  sh.base_misses.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    MdsStats& st = sh.mds_nodes[i]->stats();
    sh.base_replies[i] = st.replies_sent;
    sh.base_forwards[i] = st.forwards;
    sh.base_requests[i] = st.requests_received;
    sh.base_failures[i] = st.failures;
    sh.base_hits[i] = sh.mds_nodes[i]->cache().stats().hits;
    sh.base_misses[i] = sh.mds_nodes[i]->cache().stats().misses;
  }
  sh.cohort->stats().latency_seconds = Summary{};
  sh.net->reset_counters();
  if (sh.tracer) sh.tracer->reset();
}

void ShardedClusterSim::aggregate() {
  const SimTime span = config_.duration - config_.warmup;
  const double secs = to_seconds(span > 0 ? span : config_.duration);
  std::uint64_t replies = 0, forwards = 0, requests = 0, failures = 0;
  std::uint64_t hits = 0, misses = 0;
  double prefix_sum = 0.0;
  Summary latency;
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    for (std::size_t i = 0; i < sh.mds_nodes.size(); ++i) {
      const MdsStats& st = sh.mds_nodes[i]->stats();
      replies += st.replies_sent - sh.base_replies[i];
      forwards += st.forwards - sh.base_forwards[i];
      requests += st.requests_received - sh.base_requests[i];
      failures += st.failures - sh.base_failures[i];
      hits += sh.mds_nodes[i]->cache().stats().hits - sh.base_hits[i];
      misses += sh.mds_nodes[i]->cache().stats().misses - sh.base_misses[i];
      prefix_sum += sh.mds_nodes[i]->cache().prefix_fraction();
    }
    latency.merge(sh.cohort->stats().latency_seconds);
  }
  result_.config = config_;
  result_.avg_mds_throughput =
      secs > 0 ? static_cast<double>(replies) / secs / total_mds_ : 0.0;
  result_.hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  result_.prefix_fraction = prefix_sum / total_mds_;
  const std::uint64_t original =
      requests > forwards ? requests - forwards : 0;
  result_.forward_fraction =
      original > 0 ? static_cast<double>(forwards) /
                         static_cast<double>(original)
                   : 0.0;
  result_.mean_latency_ms = latency.mean() * 1e3;
  result_.replies = replies;
  result_.failures = failures;

  if (config_.trace.enabled) {
    merged_tracer_ =
        std::make_unique<TraceCollector>(config_.trace.slowest_n);
    for (const auto& shp : shards_) merged_tracer_->merge(*shp->tracer);
  }
}

void ShardedClusterSim::run() {
  if (ran_) return;
  ran_ = true;
  build();
  const int S = engine_.shard_count();
  for (int s = 0; s < S; ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    sh.cohort->start();
    if (config_.warmup > 0) {
      engine_.shard(s).schedule(config_.warmup,
                                [this, s]() { snapshot(s); });
    } else {
      snapshot(s);  // degenerate: measure from t=0
    }
  }
  engine_.set_threads(config_.threads);
  engine_.run_until(config_.duration);
  aggregate();
}

std::uint64_t ShardedClusterSim::remote_ops() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->cohort->remote_ops_issued();
  return n;
}

}  // namespace mdsim

// Sharded cluster simulation: the parallel counterpart of ClusterSim.
//
// A shard is a self-contained mini-cluster — its own namespace tree,
// object store, network, partitioner, MDS group and client cohort — bound
// to one engine of a ShardedSimulation. All of the existing intra-cluster
// protocol (forwarding, replication, migration, heartbeats, journaling)
// runs unmodified *within* a shard, single-threaded. Cross-shard traffic
// is client-driven: each cohort holds a frozen catalog of remote targets
// (sampled deterministically from the other shards' trees at build time)
// and issues stats against them with a configurable probability; those
// requests and their replies ride the lookahead-bounded mailbox fabric
// (net/shard_link.h), which is what makes N-shard runs bit-stable across
// any thread count.
//
// Deliberate non-goals, documented in DESIGN.md §5f: fault injection,
// partitions and MDS crash/recovery stay intra-shard concepts; sharded
// runs model healthy scale-out. Every workload kind is supported, wired
// per shard against that shard's own tree (a flash crowd picks one target
// per shard; a shifting run moves each shard's clients within its own
// namespace).
#pragma once

#include <memory>
#include <vector>

#include "client/cohort.h"
#include "common/fault_log.h"
#include "core/config.h"
#include "core/experiment.h"
#include "mds/mds_node.h"
#include "net/shard_link.h"
#include "sim/sharded.h"
#include "workload/workload.h"

namespace mdsim {

class ShardedClusterSim {
 public:
  explicit ShardedClusterSim(SimConfig config);
  ~ShardedClusterSim();
  ShardedClusterSim(const ShardedClusterSim&) = delete;
  ShardedClusterSim& operator=(const ShardedClusterSim&) = delete;

  /// Build, run to config.duration, aggregate. Idempotent.
  void run();

  /// Aggregates over every shard, shaped exactly like a single-cluster
  /// run's summary. Valid after run().
  const RunResult& result() const { return result_; }

  ShardedSimulation& engine() { return engine_; }
  int num_shards() const { return engine_.shard_count(); }
  int total_mds() const { return total_mds_; }
  int total_clients() const { return total_clients_; }
  std::uint64_t remote_ops() const;
  /// Merged per-request trace aggregation (null when tracing is off).
  const TraceCollector* tracer() const { return merged_tracer_.get(); }

 private:
  struct Shard {
    FsTree tree;
    NamespaceInfo ns_info;
    ObjectStore store;
    AnchorTable anchors;
    FaultLog fault_log;
    std::unique_ptr<Network> net;
    std::unique_ptr<Partitioner> partition;
    std::unique_ptr<DirFragRegistry> dirfrag;
    std::unique_ptr<LazyHybridManager> lazy;
    std::unique_ptr<ClusterContext> ctx;
    std::vector<std::unique_ptr<MdsNode>> mds_nodes;
    std::unique_ptr<Workload> workload;
    std::unique_ptr<TraceCollector> tracer;
    std::unique_ptr<ClientCohort> cohort;
    int first_client = 0;
    /// Warm-up snapshots (per local MDS), mirroring Metrics::reset.
    std::vector<std::uint64_t> base_replies, base_forwards, base_requests,
        base_failures, base_hits, base_misses;
  };

  /// Ferries cross-shard messages: source/destination shards are decoded
  /// from the global addresses, so one fabric serves every network.
  struct Fabric final : CrossShardLink {
    ShardedClusterSim* owner = nullptr;
    void deliver(NetAddr global_from, NetAddr global_to, SimTime when,
                 MessagePtr msg) override;
  };

  void build();
  void build_shard(int s);
  void build_catalogs();
  void snapshot(int s);
  void aggregate();

  SimConfig config_;
  ShardedSimulation engine_;
  Fabric fabric_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<TraceCollector> merged_tracer_;
  RunResult result_;
  int total_mds_ = 0;
  int total_clients_ = 0;
  bool built_ = false;
  bool ran_ = false;
};

}  // namespace mdsim

#include "fstree/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

namespace mdsim {

namespace {

const char* const kDirWords[] = {
    "src",  "doc",    "data",  "lib",   "bin",   "test", "old",
    "tmp",  "images", "notes", "build", "cache", "mail", "papers",
    "talk", "music",  "code",  "misc",  "backup"};
constexpr int kNumDirWords = sizeof(kDirWords) / sizeof(kDirWords[0]);

const char* const kFileStems[] = {"report", "main",  "readme", "draft",
                                  "figure", "run",   "result", "input",
                                  "output", "notes", "index",  "a"};
constexpr int kNumFileStems = sizeof(kFileStems) / sizeof(kFileStems[0]);

const char* const kFileExts[] = {".txt", ".c",   ".h",   ".dat",
                                 ".log", ".tex", ".out", ""};
constexpr int kNumFileExts = sizeof(kFileExts) / sizeof(kFileExts[0]);

struct GenContext {
  FsTree& tree;
  const NamespaceParams& params;
  Rng rng;
  std::uint32_t uid = 0;
  int budget = 0;
};

std::string unique_name(FsNode* dir, std::string base) {
  if (dir->child(base) == nullptr) return base;
  for (int i = 2;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (dir->child(candidate) == nullptr) return candidate;
  }
}

Perms dir_perms(GenContext& ctx) {
  Perms p;
  p.uid = ctx.uid;
  p.mode = ctx.rng.bernoulli(ctx.params.world_readable_fraction) ? 0755 : 0700;
  return p;
}

Perms file_perms(GenContext& ctx) {
  Perms p;
  p.uid = ctx.uid;
  p.mode = 0644;
  return p;
}

void fill_directory(GenContext& ctx, FsNode* dir, int depth) {
  if (ctx.budget <= 0) return;
  const NamespaceParams& P = ctx.params;

  // File count: geometric around the mean, with a Zipf-flavoured heavy
  // tail so a few directories are very large (mirrors real namespaces).
  int files = static_cast<int>(ctx.rng.exponential(P.mean_files_per_dir));
  if (ctx.rng.bernoulli(0.02)) {
    files += static_cast<int>(
        ctx.rng.pareto(P.mean_files_per_dir * 4.0, P.dir_size_skew));
  }
  // Home directories are never near-empty: real ones hold dotfiles etc.
  if (depth == 0) files = std::max(files, 4);
  files = std::min(files, ctx.budget);
  for (int i = 0; i < files && ctx.budget > 0; ++i) {
    std::string name = unique_name(
        dir, std::string(kFileStems[ctx.rng.uniform(kNumFileStems)]) +
                 std::to_string(ctx.rng.uniform(1000)) +
                 kFileExts[ctx.rng.uniform(kNumFileExts)]);
    FsNode* f = ctx.tree.create_file(dir, name, file_perms(ctx));
    assert(f != nullptr);
    ctx.tree.touch(f, ctx.rng.uniform(1u << 24), 0);
    --ctx.budget;
  }

  if (depth >= P.max_depth || ctx.budget <= 0) return;

  // Subdirectory fan-out decays with depth so trees stay finite.
  const double mean_dirs =
      P.mean_dirs_per_dir * std::pow(0.8, static_cast<double>(depth));
  int subdirs = static_cast<int>(ctx.rng.exponential(mean_dirs) + 0.5);
  if (depth == 0) subdirs = std::max(subdirs, 1);
  subdirs = std::min(subdirs, ctx.budget);
  for (int i = 0; i < subdirs && ctx.budget > 0; ++i) {
    std::string name =
        unique_name(dir, kDirWords[ctx.rng.uniform(kNumDirWords)]);
    FsNode* sub = ctx.tree.mkdir(dir, name, dir_perms(ctx));
    assert(sub != nullptr);
    --ctx.budget;
    fill_directory(ctx, sub, depth + 1);
  }
}

}  // namespace

NamespaceInfo generate_namespace(FsTree& tree,
                                 const NamespaceParams& params) {
  NamespaceInfo info;
  Rng rng(params.seed, /*stream=*/0xf57ee);

  Perms root_perms;
  root_perms.mode = 0755;

  info.home = tree.mkdir(tree.root(), "home", root_perms);
  assert(info.home != nullptr);

  // Shard homes into group directories (bounded top-level fanout).
  std::vector<FsNode*> groups;
  const int group_size = params.home_group_size;
  if (group_size > 0 && params.num_users > group_size) {
    const int n_groups = (params.num_users + group_size - 1) / group_size;
    for (int g = 0; g < n_groups; ++g) {
      FsNode* grp =
          tree.mkdir(info.home, "g" + std::to_string(g), root_perms);
      assert(grp != nullptr);
      groups.push_back(grp);
    }
  }

  for (int u = 0; u < params.num_users; ++u) {
    GenContext ctx{tree, params, Rng(params.seed, 1000 + u),
                   static_cast<std::uint32_t>(100 + u),
                   params.nodes_per_user};
    Perms hp;
    hp.uid = ctx.uid;
    hp.mode = ctx.rng.bernoulli(params.world_readable_fraction) ? 0755 : 0700;
    FsNode* parent =
        groups.empty() ? info.home
                       : groups[static_cast<std::size_t>(u) % groups.size()];
    FsNode* home = tree.mkdir(parent, "u" + std::to_string(u), hp);
    assert(home != nullptr);
    info.user_roots.push_back(home);
    fill_directory(ctx, home, 0);
  }

  if (params.num_projects > 0) {
    info.proj = tree.mkdir(tree.root(), "proj", root_perms);
    assert(info.proj != nullptr);
    for (int p = 0; p < params.num_projects; ++p) {
      GenContext ctx{tree, params, Rng(params.seed, 5000 + p),
                     static_cast<std::uint32_t>(50 + p),
                     /*budget=*/1 << 30};
      FsNode* proj =
          tree.mkdir(info.proj, "p" + std::to_string(p), dir_perms(ctx));
      assert(proj != nullptr);
      info.project_roots.push_back(proj);
      for (int r = 0; r < params.project_runs; ++r) {
        FsNode* run =
            tree.mkdir(proj, "run" + std::to_string(r), dir_perms(ctx));
        assert(run != nullptr);
        for (int f = 0; f < params.project_dir_files; ++f) {
          FsNode* file = tree.create_file(
              run, "ckpt." + std::to_string(f), file_perms(ctx));
          assert(file != nullptr);
          tree.touch(file, ctx.rng.uniform(1u << 28), 0);
        }
      }
    }
  }

  // Sprinkle rare hard links between files owned by the same user.
  if (params.hard_link_fraction > 0 && tree.files().size() > 2) {
    const auto n_links = static_cast<std::size_t>(
        params.hard_link_fraction * static_cast<double>(tree.files().size()));
    for (std::size_t i = 0; i < n_links; ++i) {
      FsNode* target = tree.files()[rng.uniform(tree.files().size())];
      FsNode* dir = tree.dirs()[rng.uniform(tree.dirs().size())];
      tree.link(target, dir,
                "ln_" + std::to_string(target->ino()) + "_" +
                    std::to_string(i));
    }
  }

  return info;
}

NamespaceShape measure_shape(const FsTree& tree) {
  NamespaceShape s;
  double depth_sum = 0.0;
  double dentries = 0.0;
  tree.visit([&](FsNode* n) {
    if (n->is_dir()) {
      ++s.dirs;
      dentries += static_cast<double>(n->child_count());
      s.max_dir_size =
          std::max<std::uint64_t>(s.max_dir_size, n->child_count());
    } else {
      ++s.files;
    }
    depth_sum += n->depth();
    s.max_depth = std::max(s.max_depth, n->depth());
  });
  const double total = static_cast<double>(s.files + s.dirs);
  s.mean_depth = total > 0 ? depth_sum / total : 0.0;
  s.mean_dir_size = s.dirs > 0 ? dentries / static_cast<double>(s.dirs) : 0.0;
  return s;
}

}  // namespace mdsim

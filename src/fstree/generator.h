// Synthetic file-system snapshot generator.
//
// Substitution for the paper's "snapshots of actual file systems" (section
// 5.2): a seeded generator that produces (a) a large collection of home
// directories — the paper's evaluated namespace — and (b) scientific
// project trees with large flat directories, matching the LLNL workload
// analysis the paper cites. Shape parameters (depth, branching, dir sizes,
// file/dir ratio) are explicit so experiments hold them fixed across
// strategies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fstree/tree.h"

namespace mdsim {

struct NamespaceParams {
  std::uint64_t seed = 42;

  /// Number of user home directories under /home.
  int num_users = 64;
  /// Home directories are sharded into alphabetical-style group dirs
  /// (/home/g3/u117) of about this size, like large sites do; keeps the
  /// top-level fanout bounded. 0 = flat /home.
  int home_group_size = 64;
  /// Approximate total node budget per user subtree.
  int nodes_per_user = 600;
  /// Mean files per directory (geometric-ish, Zipf-skewed sizes).
  double mean_files_per_dir = 8.0;
  /// Mean subdirectories per directory; decays with depth.
  double mean_dirs_per_dir = 2.4;
  /// Maximum directory nesting below a home directory.
  int max_depth = 8;
  /// Zipf skew of directory sizes (bigger -> a few huge directories).
  double dir_size_skew = 1.1;

  /// Scientific projects under /proj (0 disables).
  int num_projects = 0;
  /// Files per checkpoint/run directory in a project (large & flat).
  int project_dir_files = 2000;
  /// Run directories per project.
  int project_runs = 4;

  /// Fraction of files receiving an extra hard link (rare; section 4.5).
  double hard_link_fraction = 0.0005;

  /// Fraction of directories that are group/other-traversable (the rest
  /// are user-private; affects permission checks).
  double world_readable_fraction = 0.9;
};

struct NamespaceInfo {
  FsNode* home = nullptr;  // "/home"
  FsNode* proj = nullptr;  // "/proj" (nullptr if num_projects == 0)
  std::vector<FsNode*> user_roots;
  std::vector<FsNode*> project_roots;
};

/// Populate `tree` (expected to be freshly constructed) according to
/// `params`. Deterministic for a given seed.
NamespaceInfo generate_namespace(FsTree& tree, const NamespaceParams& params);

/// Summary shape statistics, used by tests and DESIGN verification.
struct NamespaceShape {
  std::uint64_t files = 0;
  std::uint64_t dirs = 0;
  double mean_depth = 0.0;
  std::uint32_t max_depth = 0;
  double mean_dir_size = 0.0;  // dentries per directory
  std::uint64_t max_dir_size = 0;
};

NamespaceShape measure_shape(const FsTree& tree);

}  // namespace mdsim

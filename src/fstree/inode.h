// Inode record: the metadata payload the MDS cluster manages. In this
// system inodes are *embedded* in the directory entry that links to them
// (paper section 4.5), so the on-"disk" unit is (name, inode) pairs stored
// with their directory.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace mdsim {

enum class FileType : std::uint8_t { kFile, kDirectory };

struct Inode {
  InodeId ino = kInvalidInode;
  FileType type = FileType::kFile;
  Perms perms;
  std::uint64_t size = 0;
  SimTime mtime = 0;
  SimTime ctime = 0;
  std::uint32_t nlink = 1;
  /// Monotonically increasing on every mutation; used by the cache
  /// coherence layer to detect stale replicas.
  std::uint64_t version = 1;

  bool is_dir() const { return type == FileType::kDirectory; }
};

}  // namespace mdsim

#include "fstree/path.h"

namespace mdsim {

std::vector<std::string> split_path(std::string_view path) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) out.emplace_back(path.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string join_path(const std::vector<std::string>& components) {
  if (components.empty()) return "/";
  std::string out;
  for (const auto& c : components) {
    out += '/';
    out += c;
  }
  return out;
}

bool path_has_prefix(std::string_view path, std::string_view prefix) {
  const auto p = split_path(path);
  const auto q = split_path(prefix);
  if (q.size() > p.size()) return false;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (p[i] != q[i]) return false;
  }
  return true;
}

}  // namespace mdsim

// Slash-separated path utilities (used at the edges of the system: tests,
// examples, the generator). The simulation hot path works on node pointers
// and inode ids, not strings.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mdsim {

/// Split "/a/b/c" into {"a","b","c"}. Leading/duplicate slashes ignored.
std::vector<std::string> split_path(std::string_view path);

/// Join components into "/a/b/c". Empty input yields "/".
std::string join_path(const std::vector<std::string>& components);

/// True if `prefix` is an ancestor-or-equal path of `path` (component-wise).
bool path_has_prefix(std::string_view path, std::string_view prefix);

}  // namespace mdsim

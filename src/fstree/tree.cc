#include "fstree/tree.h"

#include <algorithm>
#include <cassert>

#include "fstree/path.h"

namespace mdsim {

namespace {
// FNV-1a over the component name, chained with the parent's path hash.
std::uint64_t chain_hash(std::uint64_t parent_hash, const std::string& name) {
  std::uint64_t h = parent_hash ^ 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // Final avalanche so short names still spread across the id space.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}
}  // namespace

std::uint64_t child_path_hash(const FsNode* dir, const std::string& name) {
  return chain_hash(dir->path_hash(), name);
}

namespace {
/// Keep the flat child mirror in the map's name order. Names are unique
/// within a directory, so lower_bound lands exactly on the child (erase)
/// or its insertion point (insert).
auto list_pos(std::vector<FsNode*>& v, const std::string& name) {
  return std::lower_bound(v.begin(), v.end(), name,
                          [](const FsNode* a, const std::string& n) {
                            return a->name() < n;
                          });
}
}  // namespace

FsNode* FsNode::child(const std::string& name) const {
  auto it = children_.find(name);
  return it == children_.end() ? nullptr : it->second.get();
}

std::string FsNode::path() const {
  if (parent_ == nullptr) return "/";
  std::vector<const FsNode*> chain;
  for (const FsNode* n = this; n->parent_ != nullptr; n = n->parent_) {
    chain.push_back(n);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    out += '/';
    out += (*it)->name_;
  }
  return out;
}

std::vector<FsNode*> FsNode::ancestry() {
  std::vector<FsNode*> chain;
  ancestry_into(chain);
  return chain;
}

void FsNode::ancestry_into(std::vector<FsNode*>& out) {
  out.clear();
  for (FsNode* n = this; n != nullptr; n = n->parent_) out.push_back(n);
  std::reverse(out.begin(), out.end());
}

FsTree::FsTree() {
  root_ = std::make_unique<FsNode>();
  root_->name_ = "";
  root_->inode_.ino = kRootInode;
  root_->inode_.type = FileType::kDirectory;
  root_->inode_.nlink = 2;
  root_->depth_ = 0;
  index_ino(kRootInode, root_.get());
  root_->dir_index_ = dirs_.size();
  dirs_.push_back(root_.get());
  node_count_ = 1;
}

void FsTree::index_node(FsNode* node) {
  index_ino(node->ino(), node);
  if (node->is_dir()) {
    node->dir_index_ = dirs_.size();
    dirs_.push_back(node);
  } else {
    node->file_index_ = files_.size();
    files_.push_back(node);
  }
  ++node_count_;
}

void FsTree::unindex_node(FsNode* node) {
  by_ino_[node->ino()] = nullptr;
  auto swap_pop = [](std::vector<FsNode*>& v, std::size_t idx, bool is_dir) {
    assert(idx < v.size() && "node not present in sampling index");
    FsNode* last = v.back();
    v[idx] = last;
    if (is_dir) {
      last->dir_index_ = idx;
    } else {
      last->file_index_ = idx;
    }
    v.pop_back();
  };
  if (node->is_dir()) {
    swap_pop(dirs_, node->dir_index_, /*is_dir=*/true);
    node->dir_index_ = SIZE_MAX;
  } else {
    swap_pop(files_, node->file_index_, /*is_dir=*/false);
    node->file_index_ = SIZE_MAX;
  }
  --node_count_;
}

void FsTree::adjust_subtree_sizes(FsNode* from, std::int64_t delta) {
  for (FsNode* n = from; n != nullptr; n = n->parent_) {
    n->subtree_size_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(n->subtree_size_) + delta);
  }
}

void FsTree::bump_version(FsNode* node, SimTime now) {
  ++node->inode_.version;
  node->inode_.ctime = now;
}

FsNode* FsTree::attach(FsNode* dir, std::unique_ptr<FsNode> node) {
  assert(dir != nullptr && dir->is_dir());
  FsNode* raw = node.get();
  raw->parent_ = dir;
  raw->depth_ = dir->depth_ + 1;
  raw->path_hash_ = chain_hash(dir->path_hash_, raw->name_);
  auto [it, inserted] = dir->children_.emplace(raw->name_, std::move(node));
  if (!inserted) return nullptr;
  dir->child_list_.insert(list_pos(dir->child_list_, raw->name_), raw);
  index_node(raw);
  adjust_subtree_sizes(dir, +1);
  return raw;
}

FsNode* FsTree::create_file(FsNode* dir, const std::string& name,
                            const Perms& perms, SimTime now) {
  if (dir->child(name) != nullptr) return nullptr;
  auto node = std::make_unique<FsNode>();
  node->name_ = name;
  node->inode_.ino = next_ino_++;
  node->inode_.type = FileType::kFile;
  node->inode_.perms = perms;
  node->inode_.mtime = now;
  node->inode_.ctime = now;
  FsNode* raw = attach(dir, std::move(node));
  if (raw != nullptr) bump_version(dir, now);
  return raw;
}

FsNode* FsTree::mkdir(FsNode* dir, const std::string& name,
                      const Perms& perms, SimTime now) {
  if (dir->child(name) != nullptr) return nullptr;
  auto node = std::make_unique<FsNode>();
  node->name_ = name;
  node->inode_.ino = next_ino_++;
  node->inode_.type = FileType::kDirectory;
  node->inode_.perms = perms;
  node->inode_.nlink = 2;
  node->inode_.mtime = now;
  node->inode_.ctime = now;
  FsNode* raw = attach(dir, std::move(node));
  if (raw != nullptr) bump_version(dir, now);
  return raw;
}

bool FsTree::remove(FsNode* node) {
  if (node == root_.get()) return false;
  if (node->is_dir() && !node->children_.empty()) return false;
  for (const RemoteLink& l : links_) {
    if (l.target == node->ino()) return false;
  }
  FsNode* dir = node->parent_;
  unindex_node(node);
  adjust_subtree_sizes(dir, -1);
  auto it = dir->children_.find(node->name_);
  assert(it != dir->children_.end());
  graveyard_.push_back(std::move(it->second));
  dir->children_.erase(it);
  dir->child_list_.erase(list_pos(dir->child_list_, node->name_));
  bump_version(dir, dir->inode_.ctime);
  return true;
}

bool FsTree::rename(FsNode* node, FsNode* new_parent,
                    const std::string& new_name) {
  if (node == root_.get()) return false;
  if (!new_parent->is_dir()) return false;
  if (is_ancestor_of(node, new_parent)) return false;
  if (new_parent->child(new_name) != nullptr) return false;

  FsNode* old_parent = node->parent_;
  auto it = old_parent->children_.find(node->name_);
  assert(it != old_parent->children_.end());
  std::unique_ptr<FsNode> owned = std::move(it->second);
  old_parent->children_.erase(it);
  old_parent->child_list_.erase(
      list_pos(old_parent->child_list_, node->name_));
  const auto moved = static_cast<std::int64_t>(node->subtree_size_);
  adjust_subtree_sizes(old_parent, -moved);

  owned->name_ = new_name;
  owned->parent_ = new_parent;
  FsNode* raw = owned.get();
  new_parent->children_.emplace(new_name, std::move(owned));
  new_parent->child_list_.insert(list_pos(new_parent->child_list_, new_name),
                                 raw);
  adjust_subtree_sizes(new_parent, +moved);

  // Depths and path hashes of the whole moved subtree change.
  std::function<void(FsNode*)> fix_subtree = [&](FsNode* n) {
    n->depth_ = n->parent_->depth_ + 1;
    n->path_hash_ = chain_hash(n->parent_->path_hash_, n->name_);
    for (auto& [_, c] : n->children_) fix_subtree(c.get());
  };
  fix_subtree(raw);

  bump_version(old_parent, old_parent->inode_.ctime);
  bump_version(new_parent, new_parent->inode_.ctime);
  bump_version(raw, raw->inode_.ctime);
  return true;
}

void FsTree::chmod(FsNode* node, const Perms& perms, SimTime now) {
  node->inode_.perms = perms;
  bump_version(node, now);
}

void FsTree::touch(FsNode* node, std::uint64_t new_size, SimTime now) {
  node->inode_.size = new_size;
  node->inode_.mtime = now;
  bump_version(node, now);
}

bool FsTree::link(FsNode* target, FsNode* dir, const std::string& name) {
  if (target->is_dir()) return false;
  if (dir->child(name) != nullptr) return false;
  for (const RemoteLink& l : links_) {
    if (l.dir == dir && l.name == name) return false;
  }
  links_.push_back(RemoteLink{dir, name, target->ino()});
  ++target->mutable_inode().nlink;
  return true;
}

FsNode* FsTree::lookup(const std::string& path) const {
  FsNode* cur = root_.get();
  for (const std::string& comp : split_path(path)) {
    if (!cur->is_dir()) return nullptr;
    cur = cur->child(comp);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

bool FsTree::is_ancestor_of(const FsNode* ancestor, const FsNode* node) {
  for (const FsNode* n = node; n != nullptr; n = n->parent()) {
    if (n == ancestor) return true;
  }
  return false;
}

void FsTree::visit(const std::function<void(FsNode*)>& fn) const {
  std::vector<FsNode*> stack{root_.get()};
  while (!stack.empty()) {
    FsNode* n = stack.back();
    stack.pop_back();
    fn(n);
    for (auto& [_, c] : n->children()) stack.push_back(c.get());
  }
}

}  // namespace mdsim

// Ground-truth file system hierarchy shared by the whole simulation.
//
// Every MDS node *caches* subsets of this tree (with its own per-item cache
// state); clients pick operation targets from it. Mutating operations are
// applied here once the owning MDS commits them, so the tree always reflects
// the current logical state of the file system.
//
// Hard links: each inode has one *primary* dentry (where the inode is
// embedded, section 4.5). Additional links are remote dentries that name the
// inode but carry no embedded copy; they resolve through the anchor table.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fstree/inode.h"

namespace mdsim {

class FsTree;

/// A node is a (dentry, embedded inode) pair in the hierarchy.
class FsNode {
 public:
  const std::string& name() const { return name_; }
  FsNode* parent() const { return parent_; }
  const Inode& inode() const { return inode_; }
  Inode& mutable_inode() { return inode_; }
  bool is_dir() const { return inode_.is_dir(); }
  InodeId ino() const { return inode_.ino; }
  std::uint32_t depth() const { return depth_; }

  /// Deterministic hash of the full path, maintained incrementally
  /// (recomputed for a subtree on rename). Drives the hashed partitioning
  /// strategies, where metadata location follows the path name.
  std::uint64_t path_hash() const { return path_hash_; }

  /// Children, ordered by name (directory order on "disk").
  const std::map<std::string, std::unique_ptr<FsNode>>& children() const {
    return children_;
  }
  /// The same children in the same name order as a flat pointer array,
  /// maintained by FsTree on attach/remove/rename. The workload and MDS
  /// request paths scan a directory's children once per generated op;
  /// walking this array touches a few contiguous cache lines where the
  /// map walk chases one rb-tree node (plus a string) per child.
  const std::vector<FsNode*>& children_list() const { return child_list_; }
  std::size_t child_count() const { return children_.size(); }
  FsNode* child(const std::string& name) const;

  /// Number of nodes in the subtree rooted here (including this node);
  /// maintained incrementally.
  std::uint64_t subtree_size() const { return subtree_size_; }

  /// Full path from the root, e.g. "/home/u3/src/a.c".
  std::string path() const;

  /// Ancestors from the root down to (and including) this node.
  std::vector<FsNode*> ancestry();

  /// Same chain written into `out` (cleared first), reusing its capacity —
  /// the hot paths call this hundreds of thousands of times per run and
  /// must not pay a heap allocation per call.
  void ancestry_into(std::vector<FsNode*>& out);

 private:
  friend class FsTree;
  std::string name_;
  FsNode* parent_ = nullptr;
  Inode inode_;
  std::uint32_t depth_ = 0;
  std::uint64_t path_hash_ = 0;
  std::map<std::string, std::unique_ptr<FsNode>> children_;
  std::vector<FsNode*> child_list_;  // name-ordered mirror of children_
  std::uint64_t subtree_size_ = 1;
  // Positions in FsTree's sampling vectors (SIZE_MAX = not present).
  std::size_t file_index_ = SIZE_MAX;
  std::size_t dir_index_ = SIZE_MAX;
};

/// Path hash a child of `dir` named `name` *would* have (used by clients
/// of hashed strategies to locate the authority for a create).
std::uint64_t child_path_hash(const FsNode* dir, const std::string& name);

/// Extra hard link: a dentry in `dir` with `name` referring to `target`'s
/// inode (which stays embedded at its primary location).
struct RemoteLink {
  FsNode* dir;
  std::string name;
  InodeId target;
};

class FsTree {
 public:
  FsTree();
  FsTree(const FsTree&) = delete;
  FsTree& operator=(const FsTree&) = delete;

  FsNode* root() const { return root_.get(); }

  // --- Mutations (mirror the MDS update operations) ---------------------
  /// Returns nullptr if the name exists already.
  FsNode* create_file(FsNode* dir, const std::string& name,
                      const Perms& perms = {}, SimTime now = 0);
  FsNode* mkdir(FsNode* dir, const std::string& name, const Perms& perms = {},
                SimTime now = 0);
  /// Removes a file, or an empty directory. Returns false on violation
  /// (non-empty dir, root, or node has remote links — unlink those first).
  /// The node object itself is tombstoned, not freed: in-flight requests
  /// and cache entries elsewhere in the cluster may still reference it
  /// (the paper's "retain inodes that are deleted while still open").
  bool remove(FsNode* node);
  /// Moves `node` under `new_parent` with `new_name`. Fails if the target
  /// name exists or `new_parent` is inside `node`'s subtree.
  bool rename(FsNode* node, FsNode* new_parent, const std::string& new_name);
  void chmod(FsNode* node, const Perms& perms, SimTime now = 0);
  void touch(FsNode* node, std::uint64_t new_size, SimTime now = 0);

  /// Create an additional hard link (files only). Returns false if the
  /// name exists.
  bool link(FsNode* target, FsNode* dir, const std::string& name);
  const std::vector<RemoteLink>& remote_links() const { return links_; }

  // --- Lookup ------------------------------------------------------------
  FsNode* lookup(const std::string& path) const;
  /// O(1) dense lookup: inode numbers are handed out sequentially, so the
  /// index is a flat vector (tombstoned inos read back as nullptr). This
  /// is the single hottest map in the simulator (~1 lookup per traversal
  /// step per layer).
  FsNode* by_ino(InodeId ino) const {
    return ino < by_ino_.size() ? by_ino_[ino] : nullptr;
  }
  /// True while `node` is still linked into the hierarchy (not tombstoned).
  bool alive(const FsNode* node) const {
    return by_ino(node->ino()) == node;
  }

  /// True if `ancestor` is on `node`'s parent chain (or equal).
  static bool is_ancestor_of(const FsNode* ancestor, const FsNode* node);

  // --- Sampling support ----------------------------------------------------
  /// All regular files / all directories, in unspecified order. Stable
  /// positions except for swap-removals; suitable for uniform sampling.
  const std::vector<FsNode*>& files() const { return files_; }
  const std::vector<FsNode*>& dirs() const { return dirs_; }

  std::uint64_t node_count() const { return node_count_; }

  /// Walk the whole tree depth-first (root included).
  void visit(const std::function<void(FsNode*)>& fn) const;

 private:
  FsNode* attach(FsNode* dir, std::unique_ptr<FsNode> node);
  void index_node(FsNode* node);
  void unindex_node(FsNode* node);
  void adjust_subtree_sizes(FsNode* from, std::int64_t delta);
  void bump_version(FsNode* node, SimTime now);

  void index_ino(InodeId ino, FsNode* node) {
    if (ino >= by_ino_.size()) by_ino_.resize(ino + 1, nullptr);
    by_ino_[ino] = node;
  }

  std::unique_ptr<FsNode> root_;
  std::vector<std::unique_ptr<FsNode>> graveyard_;
  std::vector<FsNode*> by_ino_;  // dense: indexed by InodeId
  std::vector<FsNode*> files_;
  std::vector<FsNode*> dirs_;
  std::vector<RemoteLink> links_;
  InodeId next_ino_ = kRootInode + 1;
  std::uint64_t node_count_ = 0;
};

}  // namespace mdsim

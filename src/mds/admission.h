// MDS-side overload protection: bounded-queue limits and a token-bucket
// admission gate, applied in MdsNode::handle_client_request before any
// CPU is charged.
//
// Zero-cost-off: with `enabled == false` (the default) the gate is a
// single branch and every fig CSV stays byte-identical. The bucket is
// pure arithmetic on simulated time — no RNG — so admission decisions
// are deterministic and thread-count invariant.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace mdsim {

/// Why a request was shed (or admitted).
enum class AdmitVerdict : std::uint8_t {
  kAdmit = 0,
  /// CPU/disk queue bound exceeded: depth or queued-service-time backlog.
  kShedQueue,
  /// Token bucket empty (or below the fresh-request reserve for retries).
  kShedBucket,
  /// Request's deadline already passed on arrival: the client has timed
  /// out and will discard the reply as stale — serving it is pure waste.
  kShedDeadline,
};

struct OverloadParams {
  /// Master switch; false keeps every fig CSV byte-identical.
  bool enabled = false;

  /// Bounded queues: reject once the CPU queue holds this many jobs...
  std::size_t max_cpu_queue_depth = 96;
  /// ...or this much queued service time (catches heterogeneous jobs a
  /// pure depth bound undercounts). 0 disables the backlog bound.
  SimTime max_cpu_queue_delay = 250 * kMillisecond;
  /// Bound on the metadata store queue (journal writes are absorbed by
  /// NVRAM and stay unbounded).
  std::size_t max_disk_queue_depth = 64;

  /// Token-bucket admission: sustained admits/sec. <= 0 disables the
  /// bucket (queue bounds still apply).
  double admit_rate = 0.0;
  /// Bucket capacity, in tokens.
  double admit_burst = 128.0;
  /// Updates cost this many tokens (they journal + dirty replicas);
  /// reads cost 1.
  double write_cost = 2.0;
  /// Fresh-vs-retried priority: retried requests are admitted only while
  /// the bucket holds more than retry_reserve * admit_burst tokens, so
  /// under pressure fresh work wins and retry storms cannot monopolize
  /// the gate.
  double retry_reserve = 0.3;

  /// Base retry-after hint in Rejected replies; the server adds its
  /// current CPU backlog so clients return roughly when capacity exists.
  SimTime retry_after_base = 100 * kMillisecond;

  /// Drop requests whose deadline has already passed at admission.
  bool deadline_drop = true;
};

/// Deterministic token bucket on simulated time. Refill is computed
/// lazily from the elapsed interval — no periodic events, no RNG.
class TokenBucket {
 public:
  void init(double rate_per_sec, double burst, SimTime now) {
    rate_ = rate_per_sec;
    burst_ = burst;
    tokens_ = burst;
    last_ = now;
  }

  /// Admit a request costing `cost` tokens if, after refill, the balance
  /// stays above `reserve`. On admit the cost is deducted.
  bool try_take(double cost, double reserve, SimTime now) {
    refill(now);
    if (tokens_ - cost < reserve) return false;
    tokens_ -= cost;
    return true;
  }

  double tokens(SimTime now) {
    refill(now);
    return tokens_;
  }

 private:
  void refill(SimTime now) {
    if (now <= last_) return;
    tokens_ += rate_ * to_seconds(now - last_);
    if (tokens_ > burst_) tokens_ = burst_;
    last_ = now;
  }

  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  SimTime last_ = 0;
};

}  // namespace mdsim

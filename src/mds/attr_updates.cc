// GPFS-style distributed attribute updates (paper section 4.2):
//
//   "fields like modification time and file size are monotonically
//    increasing for most operations, such that replicas serving
//    concurrent writers can periodically send their most recent value to
//    the authority, which retains the maximum value seen thus far and
//    initiates a callback for the latest information on client reads."
//
// Replica side: a setattr on a locally held file replica is absorbed into
// a pending delta (local journal commit, immediate client reply). The
// first absorbed write sends one AttrDirty notice to the authority; a
// periodic tick (or an authority callback / an invalidation) flushes the
// accumulated deltas.
//
// Authority side: AttrDirty marks the inode remote-dirty; a client read
// (stat/open) of a remote-dirty inode first calls the deltas in from all
// dirty holders, then serves. AttrFlush applies the deltas (one journaled
// update covering the batch — the whole point of the scheme).
#include <algorithm>
#include <cassert>

#include "mds/mds_node.h"

namespace mdsim {

bool MdsNode::try_local_attr_update(RequestPtr req) {
  const MdsParams& P = ctx_.params;
  if (!P.distributed_attr_updates) return false;
  if (req->msg.op != OpType::kSetattr) return false;
  if (req->target->is_dir()) return false;
  CacheEntry* e = cache_.peek(req->target->ino());
  if (e == nullptr || e->authoritative) return false;

  const SimTime cost = P.cpu_request;
  charge_cpu(cost, cpu_span(req), [this, req]() {
    CacheEntry* e = cache_.peek(req->target->ino());
    if (e == nullptr || e->authoritative ||
        !ctx_.tree.alive(req->target)) {
      // Replica vanished while queued: fall back to the normal path.
      route(req);
      return;
    }
    req->counts_as_served = true;
    const InodeId ino = req->target->ino();
    EntryAux& a = cache_.aux_ensure(ino);
    const bool first_write = a.attr_pending == 0;
    ++a.attr_pending;
    ++stats_.attr_local_updates;
    if (first_write) {
      auto dirty = std::make_unique<AttrDirtyMsg>();
      dirty->ino = ino;
      ctx_.net.send(id_, authority_for(req->target), std::move(dirty));
      schedule_attr_flush();
    }
    cache_.lookup(ino, ctx_.sim.now(), /*count_stats=*/false);  // keep warm
    // Local write-ahead commit, then reply — no cross-cluster round trip.
    journal_.append(ino);
    disk_.journal_append(journal_span(req), [this, req]() {
      finish(req, true, req->msg.target);
    });
  });
  return true;
}

void MdsNode::schedule_attr_flush() {
  if (attr_flush_scheduled_) return;
  attr_flush_scheduled_ = true;
  ctx_.sim.schedule(ctx_.params.attr_flush_period,
                    [this]() { flush_attr_updates(); });
}

void MdsNode::flush_attr_updates() {
  attr_flush_scheduled_ = false;
  // Collect-then-send: zeroing the counts (and gc'ing drained records)
  // first keeps the sidecar sweep safe against anything the sends recurse
  // into.
  std::vector<std::pair<InodeId, std::uint32_t>> pending;
  cache_.for_each_aux([&](InodeId ino, EntryAux& a) {
    if (a.attr_pending == 0) return;
    pending.emplace_back(ino, a.attr_pending);
    a.attr_pending = 0;
    cache_.aux_gc(ino);
  });
  if (failed_) return;
  for (const auto& [ino, count] : pending) {
    FsNode* node = ctx_.tree.by_ino(ino);
    if (node == nullptr || count == 0) continue;
    auto flush = std::make_unique<AttrFlushMsg>();
    flush->ino = ino;
    flush->updates = count;
    ctx_.net.send(id_, authority_for(node), std::move(flush));
  }
}

void MdsNode::flush_attr_updates_for(InodeId ino) {
  EntryAux* a = cache_.aux_peek(ino);
  if (a == nullptr || a->attr_pending == 0) return;
  const std::uint32_t count = a->attr_pending;
  a->attr_pending = 0;
  cache_.aux_gc(ino);
  FsNode* node = ctx_.tree.by_ino(ino);
  if (node == nullptr || count == 0) return;
  auto flush = std::make_unique<AttrFlushMsg>();
  flush->ino = ino;
  flush->updates = count;
  ctx_.net.send(id_, authority_for(node), std::move(flush));
}

void MdsNode::handle_attr_dirty(NetAddr from, const AttrDirtyMsg& m) {
  EntryAux& a = cache_.aux_ensure(m.ino);
  if (!std::count(a.attr_dirty_holders.begin(), a.attr_dirty_holders.end(),
                  from)) {
    a.attr_dirty_holders.push_back(from);
  }
}

void MdsNode::handle_attr_flush(NetAddr from, const AttrFlushMsg& m) {
  charge_cpu(ctx_.params.cpu_replica, [this, from, ino = m.ino,
                                       updates = m.updates]() {
    FsNode* node = ctx_.tree.by_ino(ino);
    if (node != nullptr) {
      // Apply the batch as one update: the authority keeps the max.
      ctx_.tree.touch(node, node->inode().size + updates, ctx_.sim.now());
      journal_.append(ino);
      ++stats_.attr_flushes_applied;
      // Note: replicas of the inode elsewhere still hold monotone-stale
      // attributes, which this scheme tolerates by design; they are NOT
      // invalidated here (that would defeat the batching).
    }
    if (EntryAux* a = cache_.aux_peek(ino)) {
      auto& holders = a->attr_dirty_holders;
      auto hit = std::find(holders.begin(), holders.end(), from);
      if (hit != holders.end()) {
        holders.erase(hit);
        if (holders.empty()) {
          cache_.aux_gc(ino);
          resume_attr_waiters(ino);
        }
      }
    }
  });
}

void MdsNode::handle_attr_callback(const AttrCallbackMsg& m) {
  // The authority wants our deltas now (a client is reading).
  flush_attr_updates_for(m.ino);
}

bool MdsNode::gather_remote_attrs(RequestPtr req) {
  if (!ctx_.params.distributed_attr_updates) return false;
  const InodeId ino = req->target->ino();
  EntryAux* a = cache_.aux_peek(ino);
  if (a == nullptr || a->attr_dirty_holders.empty()) return false;

  // Drop holders that died; their deltas are lost with them.
  auto& holders = a->attr_dirty_holders;
  holders.erase(std::remove_if(holders.begin(), holders.end(),
                               [&](MdsId h) { return ctx_.net.is_down(h); }),
                holders.end());
  if (holders.empty()) {
    cache_.aux_gc(ino);
    return false;
  }
  for (MdsId holder : holders) {
    auto cb = std::make_unique<AttrCallbackMsg>();
    cb->ino = ino;
    ctx_.net.send(id_, holder, std::move(cb));
  }
  ++stats_.attr_callbacks;
  auto& gather = attr_waiters_[ino];
  if (gather.reqs.empty()) gather.since = ctx_.sim.now();
  gather.reqs.push_back(std::move(req));
  return true;  // the read resumes when every holder has flushed
}

void MdsNode::resume_attr_waiters(InodeId ino) {
  auto it = attr_waiters_.find(ino);
  if (it == attr_waiters_.end()) return;
  auto waiters = std::move(it->second.reqs);
  attr_waiters_.erase(it);
  for (auto& req : waiters) {
    // Parked since gather_remote_attrs: the delta call-in round trip
    // (including the holders' flush processing) is a stall.
    trace_mark(req->msg, TraceStage::kStallWait);
    if (!ctx_.tree.alive(req->target)) {
      fail(std::move(req));
      continue;
    }
    finish(std::move(req), true, ino);
  }
}

}  // namespace mdsim

// Load balancer (paper sections 4.3 and 5.1): nodes exchange heartbeat
// messages carrying a load metric — "a weighted combination of node
// throughput and cache misses" — and busy nodes re-delegate subtrees to
// non-busy nodes. "A busy node will initially try to re-delegate entire
// trees that were delegated to it before delegating subtrees of its
// workload."
//
// The paper is explicit that this prototype algorithm is primitive ("a
// poor choice for maximizing total cluster throughput, [but] sufficient to
// show the promise of a dynamic partitioning strategy"); we reproduce that
// character rather than improving on it. Alternative weightings are
// exposed through MdsParams for the ablation bench.
#include <algorithm>
#include <cassert>
#include <cmath>

#include "mds/mds_node.h"

namespace mdsim {

void MdsNode::start_heartbeat() {
  // Stagger nodes slightly so heartbeats don't synchronize.
  const SimTime start =
      ctx_.params.heartbeat_period + from_micros(137) * (id_ + 1);
  ctx_.sim.every(ctx_.params.heartbeat_period, start, [this]() {
    heartbeat_tick();
    return true;
  });
}

double MdsNode::compute_load() {
  const SimTime now = ctx_.sim.now();
  const SimTime dt = now - bal_prev_time_;
  if (dt == 0) return last_load_;
  const double secs = to_seconds(dt);
  const double ops =
      static_cast<double>(stats_.replies_sent - bal_prev_replies_) / secs;
  const double misses =
      static_cast<double>(cache_.stats().misses - bal_prev_misses_) / secs;
  bal_prev_time_ = now;
  bal_prev_replies_ = stats_.replies_sent;
  bal_prev_misses_ = cache_.stats().misses;

  if (ctx_.params.balancer_metric ==
      MdsParams::BalancerMetric::kUtilizationVector) {
    // Bottleneck-resource utilization in [0, ~1] over this window:
    // whichever of CPU, disk or cache pressure binds the node. Scaled by
    // 1000 so the thresholds and idle checks behave like the rate metric.
    const double dts = static_cast<double>(dt);
    const double cpu =
        static_cast<double>(cpu_.busy_time() - bal_prev_cpu_busy_) / dts;
    const double disk =
        static_cast<double>(disk_.store_busy_time() - bal_prev_disk_busy_) /
        dts;
    const double miss_pressure =
        ops > 1.0 ? std::min(1.0, misses / std::max(ops, 1.0)) : 0.0;
    bal_prev_cpu_busy_ = cpu_.busy_time();
    bal_prev_disk_busy_ = disk_.store_busy_time();
    return 1000.0 * std::max({cpu, disk, miss_pressure});
  }
  return ctx_.params.load_weight_throughput * ops +
         ctx_.params.load_weight_miss * misses;
}

void MdsNode::heartbeat_tick() {
  if (failed_) return;  // a dead node is silent; survivors notice
  last_load_ = compute_load();
  peer_loads_[static_cast<std::size_t>(id_)] = last_load_;
  const bool health_on = ctx_.params.health.enabled;
  if (health_on) health_tick(ctx_.sim.now());
  // Alive-mask: who this node currently hears. Receivers listed in it
  // count the heartbeat as a lease ack (partition safety); built once,
  // shared read-only by every per-peer message.
  std::vector<std::uint64_t> alive_mask;
  if (partition_safety_on()) {
    alive_mask.assign((static_cast<std::size_t>(ctx_.num_mds) + 63) / 64, 0);
    for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
      if (peer != id_ && peer_alive_[static_cast<std::size_t>(peer)] == 0)
        continue;
      alive_mask[static_cast<std::size_t>(peer) / 64] |=
          std::uint64_t{1} << (static_cast<std::size_t>(peer) % 64);
    }
  }
  for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
    if (peer == id_) continue;
    auto msg = std::make_unique<HeartbeatMsg>();
    msg->sender = id_;
    msg->load = last_load_;
    msg->epoch = view_epoch_;
    msg->alive_mask = alive_mask;
    msg->dirfrag_gen = ctx_.dirfrag.generation();
    if (health_on) {
      // Health piggyback: the send timestamp (receiver derives the
      // one-way delivery lag) and the self-measured service lag.
      msg->sent_at = ctx_.sim.now();
      msg->svc_lag = static_cast<SimTime>(svc_ewma_self_);
    }
    ctx_.net.send(id_, peer, std::move(msg));
  }
  maybe_unreplicate();
  failure_tick(ctx_.sim.now());
  // A fenced node keeps heartbeating (so the quorum side can mark it up
  // on heal) but must not initiate migrations.
  if (!fenced_) maybe_rebalance();
}

void MdsNode::handle_heartbeat(const HeartbeatMsg& m) {
  if (m.sender < 0 || static_cast<std::size_t>(m.sender) >= peer_loads_.size())
    return;
  const auto idx = static_cast<std::size_t>(m.sender);
  peer_last_hb_[idx] = ctx_.sim.now();
  // Lease ack: the sender still hears us. Merely receiving its heartbeat
  // is not enough — under an asymmetric cut (our outbound dead, inbound
  // alive) the sender will soon drop us from its mask, and our lease must
  // lapse with it.
  if (m.lists_alive(id_)) peer_ack_time_[idx] = ctx_.sim.now();
  // Epoch gossip: adopt a newer map view (no-op while fenced).
  observe_epoch(m.epoch);
  if (peer_alive_[idx] == 0) {
    // First heartbeat after an outage (or a false detection): the peer is
    // back — restore it as a migration and forwarding target, and as a
    // dentry-authority candidate for fragmented directories.
    peer_alive_[idx] = 1;
    mark_peer_up(m.sender);
    ctx_.dirfrag.set_node_alive(m.sender, true);
    if (ctx_.faults != nullptr) {
      ctx_.faults->note_marked_up(m.sender, ctx_.sim.now());
    }
  }
  // A heartbeat generation ahead of what we've applied means we missed a
  // DirFragNotify (link fault, partition): catch up now.
  if (m.dirfrag_gen > dirfrag_seen_gen_) dirfrag_resync(m.dirfrag_gen);
  peer_loads_[idx] = m.load;
  // Gray-failure scoring: fold the sender's self-reported service lag and
  // the heartbeat's one-way delivery lag into its EWMA score. Both
  // symptoms matter — a fail-slow disk shows up in svc_lag, a degraded
  // link in the delivery delay — and a gray node's heartbeats still
  // arrive, which is exactly why liveness detection alone misses it.
  if (ctx_.params.health.enabled && m.sent_at != 0) {
    if (peer_health_.empty()) {
      peer_health_.assign(static_cast<std::size_t>(ctx_.num_mds), 0.0);
      peer_degraded_.assign(static_cast<std::size_t>(ctx_.num_mds), 0);
    }
    const double sample =
        static_cast<double>((ctx_.sim.now() - m.sent_at) + m.svc_lag);
    double& score = peer_health_[idx];
    score += ctx_.params.health.alpha * (sample - score);
  }
}

void MdsNode::health_tick(SimTime now) {
  const HealthParams& hp = ctx_.params.health;
  if (peer_health_.empty()) {
    peer_health_.assign(static_cast<std::size_t>(ctx_.num_mds), 0.0);
    peer_degraded_.assign(static_cast<std::size_t>(ctx_.num_mds), 0);
  }
  // Self signal: work accepted but not yet served (CPU + store backlog,
  // ns). A fail-slow node drains slower than it fills, so this grows with
  // the injected multiplier even while its heartbeats look perfectly
  // healthy.
  const double raw =
      static_cast<double>(cpu_.backlog() + disk_.store_backlog());
  svc_ewma_self_ += hp.alpha * (raw - svc_ewma_self_);
  peer_health_[static_cast<std::size_t>(id_)] = svc_ewma_self_;

  // Degraded means slow *relative to the cluster*: compare each alive
  // node's score against the alive median, with an absolute floor so an
  // idle cluster never flags anyone, and hysteresis so a borderline node
  // doesn't flap.
  std::vector<double> scores;
  scores.reserve(static_cast<std::size_t>(ctx_.num_mds));
  for (MdsId p = 0; p < ctx_.num_mds; ++p) {
    if (p != id_ && peer_alive_[static_cast<std::size_t>(p)] == 0) continue;
    scores.push_back(peer_health_[static_cast<std::size_t>(p)]);
  }
  if (scores.size() < 3) return;  // relative detection needs a population
  std::nth_element(scores.begin(),
                   scores.begin() + static_cast<std::ptrdiff_t>(scores.size() / 2),
                   scores.end());
  const double median = scores[scores.size() / 2];
  const double floor = static_cast<double>(hp.min_lag);
  const double flag_at = std::max(hp.degraded_factor * median, floor);
  const double unflag_at = std::max(hp.recovered_factor * median, floor);
  for (MdsId p = 0; p < ctx_.num_mds; ++p) {
    const auto i = static_cast<std::size_t>(p);
    if (p != id_ && peer_alive_[i] == 0) {
      // Crashed peers leave the gray regime: their last score is stale
      // and the liveness machinery owns them now.
      peer_degraded_[i] = 0;
      continue;
    }
    if (peer_degraded_[i] == 0) {
      if (peer_health_[i] > flag_at) {
        peer_degraded_[i] = 1;
        if (ctx_.faults != nullptr) ctx_.faults->note_gray_degraded(p, id_, now);
      }
    } else if (peer_health_[i] < unflag_at) {
      peer_degraded_[i] = 0;
      if (ctx_.faults != nullptr) ctx_.faults->note_gray_recovered(p, now);
    }
  }
}

void MdsNode::bump_subtree_load(const FsNode* node) {
  // Attribute the request to the enclosing delegation point, so the
  // balancer can judge whole delegated trees.
  const auto* subtree = dynamic_cast<const SubtreePartition*>(&ctx_.partition);
  if (subtree == nullptr) return;
  for (const FsNode* n = node; n != nullptr; n = n->parent()) {
    if (subtree->is_delegation_point(n) || n->parent() == nullptr) {
      auto [it, inserted] = subtree_load_.try_emplace(
          n->ino(), DecayCounter(ctx_.params.popularity_half_life));
      it->second.hit(ctx_.sim.now());
      return;
    }
  }
}

void MdsNode::maybe_rebalance() {
  if (!ctx_.traits.load_balancing) return;
  if (outbound_ != nullptr) return;
  const SimTime now = ctx_.sim.now();
  // A node that has flagged *itself* gray volunteers load away on a much
  // shorter cooldown: the anti-thrash pause is tuned for load spikes, not
  // for evacuating a sick node round after round.
  const bool health_on = ctx_.params.health.enabled;
  const bool volunteer = health_on && self_degraded();
  const SimTime cooldown = volunteer ? ctx_.params.health.volunteer_cooldown
                                     : ctx_.params.migration_cooldown;
  if (now - last_migration_ < cooldown) return;

  // Mean over the nodes believed alive: a dead peer's sentinel load must
  // not freeze the balancer for the whole outage.
  double mean = 0.0;
  std::size_t alive = 0;
  for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
    if (peer != id_ && peer_alive_[static_cast<std::size_t>(peer)] == 0)
      continue;
    mean += peer_loads_[static_cast<std::size_t>(peer)];
    ++alive;
  }
  if (alive == 0) return;
  mean /= static_cast<double>(alive);
  if (mean < 1.0) return;  // idle cluster
  // A volunteer also triggers at a much lower load threshold: its
  // throughput-based load metric is already sagging (it serves less while
  // its queues grow), so waiting for the ordinary over-mean trigger would
  // keep the territory pinned to the sick node.
  const double trigger =
      volunteer ? ctx_.params.health.volunteer_trigger : ctx_.params.balance_trigger;
  if (last_load_ <= trigger * mean) return;

  // Busiest node ships work to the least-busy below-target node. Gray
  // peers are never targets: a fail-slow node's throughput collapse makes
  // it *look* underloaded, so without the health veto the balancer would
  // steer the cluster's work straight at the sick node.
  MdsId target = kInvalidMds;
  double target_load = ctx_.params.balance_target * mean;
  for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
    if (peer == id_) continue;
    if (peer_alive_[static_cast<std::size_t>(peer)] == 0) continue;
    if (health_on && peer_degraded(peer)) continue;
    if (peer_loads_[static_cast<std::size_t>(peer)] < target_load) {
      target = peer;
      target_load = peer_loads_[static_cast<std::size_t>(peer)];
    }
  }
  if (target == kInvalidMds) return;

  double excess_fraction = (last_load_ - mean) / last_load_;
  // A volunteer wants out from under most of its territory, not just the
  // sliver above the mean.
  if (volunteer) excess_fraction = std::max(excess_fraction, 0.5);
  FsNode* root = pick_export_subtree(excess_fraction);
  if (root == nullptr) return;
  // A volunteer batches several subtrees into the one transaction: the
  // intent journal append — multi-second on the very disk that made the
  // node sick — is paid once per batch instead of once per subtree.
  std::vector<FsNode*> extras;
  if (volunteer) extras = pick_evacuation_extras(root);
  begin_migration(root, target, std::move(extras));
}

FsNode* MdsNode::pick_export_subtree(double excess_fraction) {
  const SimTime now = ctx_.sim.now();
  const auto* subtree = dynamic_cast<const SubtreePartition*>(&ctx_.partition);
  if (subtree == nullptr) return nullptr;

  // Phase 1: whole trees that were delegated to this node, judged by the
  // per-delegation decayed load counters. Pick the one whose share of our
  // load is closest to the excess we want to shed.
  double total = 0.0;
  for (auto& [ino, counter] : subtree_load_) total += counter.get(now);

  FsNode* best = nullptr;
  double best_score = 1e300;
  if (total > 1.0) {
    for (auto& [ino, counter] : subtree_load_) {
      if (!imported_.count(ino) &&
          subtree->delegation_at(ino) != id_) {
        continue;  // not a tree delegated to us (e.g. default territory)
      }
      // Freshly imported trees stay put (no ping-pong).
      auto iit = imported_.find(ino);
      if (iit != imported_.end() &&
          now - iit->second < ctx_.params.min_subtree_residency) {
        continue;
      }
      FsNode* n = ctx_.tree.by_ino(ino);
      if (n == nullptr || n->parent() == nullptr) continue;  // never the root
      if (frozen_.count(ino)) continue;
      const double share = counter.get(now) / total;
      if (share < 0.02) continue;  // too cold to help
      const double score = std::abs(share - excess_fraction);
      if (score < best_score) {
        best_score = score;
        best = n;
      }
    }
    if (best != nullptr) return best;
  }

  // Phase 2: split our own workload — pick the cached authoritative
  // directory whose traversal popularity best matches the excess. A
  // directory's popularity counts every request that passed through it,
  // so it approximates subtree temperature.
  double total_pop = 0.0;
  std::vector<std::pair<FsNode*, double>> dirs;
  cache_.for_each([&](CacheEntry& e) {
    if (!e.authoritative || !e.node->is_dir()) return;
    if (e.node->parent() == nullptr) return;
    const double pop = e.popularity.get(now);
    if (e.node->depth() == 1) total_pop += pop;
    if (pop < 1.0) return;
    if (subtree->is_delegation_point(e.node)) return;  // phase 1 covered
    if (subtree_frozen(e.node)) return;
    dirs.emplace_back(e.node, pop);
  });
  if (dirs.empty()) return nullptr;
  if (total_pop < 1.0) {
    for (auto& [n, p] : dirs) total_pop = std::max(total_pop, p);
  }
  best = nullptr;
  best_score = 1e300;
  for (auto& [n, pop] : dirs) {
    const double share = pop / std::max(total_pop, 1.0);
    const double score = std::abs(share - excess_fraction);
    if (score < best_score) {
      best_score = score;
      best = n;
    }
  }
  return best;
}

std::vector<FsNode*> MdsNode::pick_evacuation_extras(FsNode* primary) {
  std::vector<FsNode*> extras;
  const auto* subtree = dynamic_cast<const SubtreePartition*>(&ctx_.partition);
  if (subtree == nullptr) return extras;
  const SimTime now = ctx_.sim.now();

  // Candidates from both pick_export_subtree phases: whole trees delegated
  // to this node (by decayed per-delegation load) and hot cached
  // authoritative directories (by traversal popularity). The weights are
  // only compared within the list, so mixing the two scales is fine —
  // both order "hot before cold".
  std::vector<std::pair<FsNode*, double>> cands;
  for (auto& [ino, counter] : subtree_load_) {
    if (!imported_.count(ino) && subtree->delegation_at(ino) != id_) continue;
    auto iit = imported_.find(ino);
    if (iit != imported_.end() &&
        now - iit->second < ctx_.params.min_subtree_residency) {
      continue;  // freshly imported trees stay put (no ping-pong)
    }
    FsNode* n = ctx_.tree.by_ino(ino);
    if (n == nullptr || n->parent() == nullptr) continue;
    if (frozen_.count(ino)) continue;
    cands.emplace_back(n, counter.get(now));
  }
  cache_.for_each([&](CacheEntry& e) {
    if (!e.authoritative || !e.node->is_dir()) return;
    if (e.node->parent() == nullptr) return;
    const double pop = e.popularity.get(now);
    if (pop < 1.0) return;
    if (subtree->is_delegation_point(e.node)) return;  // listed above
    if (subtree_frozen(e.node)) return;
    cands.emplace_back(e.node, pop);
  });
  std::sort(cands.begin(), cands.end(),
            [](const std::pair<FsNode*, double>& a,
               const std::pair<FsNode*, double>& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first->ino() < b.first->ino();  // deterministic ties
            });

  // Greedy, hottest first, skipping anything nested inside (or enclosing)
  // an already-picked root: exporting an ancestor covers the descendant,
  // and double-freezing one path would wedge the unfreeze bookkeeping.
  std::vector<FsNode*> picked{primary};
  const std::size_t cap =
      std::max<std::size_t>(ctx_.params.health.evacuation_max_roots, 1);
  for (auto& [n, w] : cands) {
    if (picked.size() >= cap) break;
    bool overlaps = false;
    for (FsNode* p : picked) {
      if (n == p || FsTree::is_ancestor_of(p, n) ||
          FsTree::is_ancestor_of(n, p)) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) picked.push_back(n);
  }
  extras.assign(picked.begin() + 1, picked.end());
  return extras;
}

}  // namespace mdsim

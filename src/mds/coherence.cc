// Callback-based cache coherence within the MDS cluster (paper section
// 4.2): each item's authority tracks which peers hold replicas, sends
// invalidations when the item changes, and is released when a holder
// discards its copy.
#include <algorithm>
#include <cassert>

#include "mds/mds_node.h"

namespace mdsim {

void MdsNode::register_replica(InodeId ino, MdsId holder) {
  if (holder == id_) return;
  EntryAux& a = cache_.aux_ensure(ino);
  if (!a.holds(holder)) a.replica_holders.push_back(holder);
}

void MdsNode::unregister_replica(InodeId ino, MdsId holder) {
  EntryAux* a = cache_.aux_peek(ino);
  if (a == nullptr) return;
  auto& holders = a->replica_holders;
  auto it = std::find(holders.begin(), holders.end(), holder);
  if (it == holders.end()) return;
  holders.erase(it);
  cache_.aux_gc(ino);
}

void MdsNode::invalidate_replicas(InodeId ino, bool removed) {
  EntryAux* a = cache_.aux_peek(ino);
  if (a == nullptr || a->replica_holders.empty()) return;
  for (MdsId holder : a->replica_holders) {
    auto msg = std::make_unique<CacheInvalidateMsg>();
    msg->ino = ino;
    msg->removed = removed;
    msg->epoch = view_epoch_;
    ++stats_.invalidations_sent;
    ctx_.net.send(id_, holder, std::move(msg));
  }
  a->replica_holders.clear();
  a->replicated_everywhere = false;
  cache_.aux_gc(ino);
}

void MdsNode::handle_invalidate(const CacheInvalidateMsg& m) {
  if (m.epoch < view_epoch_) {
    // Coherence traffic from a superseded regime (a sender fenced across a
    // reconfiguration): its authority claims are stale — ignore.
    ++stats_.stale_epoch_rejects;
    return;
  }
  if (EntryAux* a = cache_.aux_peek(m.ino)) {
    a->replicated_everywhere = false;
    cache_.aux_gc(m.ino);
  }
  if (m.whole_subtree) {
    // A directory moved: every cached descendant is stale (its position,
    // and under hashing its location, changed). Collect, then drop
    // deepest-first to respect the cache tree invariant.
    FsNode* moved = ctx_.tree.by_ino(m.ino);
    if (moved == nullptr) return;
    std::vector<CacheEntry*> victims;
    cache_.for_each([&](CacheEntry& e) {
      if (e.node != moved && FsTree::is_ancestor_of(moved, e.node)) {
        victims.push_back(&e);
      }
    });
    std::sort(victims.begin(), victims.end(),
              [](const CacheEntry* a, const CacheEntry* b) {
                return a->node->depth() > b->node->depth();
              });
    for (CacheEntry* v : victims) {
      const bool was_replica = !v->authoritative;
      const InodeId vino = v->node->ino();
      const MdsId auth = authority_for(v->node);
      if (cache_.erase(vino) && was_replica && auth != id_) {
        // Silent drop: the mover already discarded its registry state via
        // the broadcast; no per-item drop message needed.
        (void)auth;
      }
    }
    // The moved directory's own entry (if any) stays if authoritative
    // under the *new* position, else drop it too.
    CacheEntry* e = cache_.peek(m.ino);
    if (e != nullptr && !e->authoritative && e->cached_children == 0) {
      cache_.erase(m.ino);
    }
    return;
  }
  CacheEntry* e = cache_.peek(m.ino);
  if (e == nullptr || e->authoritative) return;
  if (e->cached_children > 0 || e->pins > 0) {
    // Cannot drop a prefix that anchors cached children: refresh instead
    // (the authority keeps us registered via the re-fetch below). We model
    // the refresh as free of I/O — the invalidation carried the update.
    if (!m.removed) {
      e->version = e->node->inode().version;
      // Stay registered at the authority for future updates.
      const MdsId auth = authority_for(e->node);
      if (auth != id_) {
        ctx_.nodes[static_cast<std::size_t>(auth)]->register_replica(
            m.ino, id_);
      }
      return;
    }
    // Removed upstream but we still anchor children: keep the tombstone
    // copy; it will drain as children expire.
    return;
  }
  cache_.erase(m.ino);
}

void MdsNode::handle_replica_drop(NetAddr from, const ReplicaDropMsg& m) {
  unregister_replica(m.ino, from);
}

void MdsNode::on_cache_evict(const CacheEntry& e) {
  // Keep the parent's readdir completeness honest.
  if (e.node->parent() != nullptr) {
    CacheEntry* p = cache_.peek(e.node->parent()->ino());
    if (p != nullptr) p->complete = false;
  }
  // The cache clears the sidecar's replicated-everywhere flag itself when
  // it tears the entry down.
  if (!e.authoritative) {
    // Notify the authority so it can stop invalidating us (paper section
    // 4.2: "if a node discards an inode for which it is not authoritative
    // from its cache, it will notify the authority").
    const MdsId auth = authority_for(e.node);
    if (auth != id_ && auth >= 0) {
      auto msg = std::make_unique<ReplicaDropMsg>();
      msg->ino = e.node->ino();
      ctx_.net.send(id_, auth, std::move(msg));
    }
  }
}

}  // namespace mdsim

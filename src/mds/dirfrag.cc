#include "mds/dirfrag.h"

namespace mdsim {

MdsId DirFragRegistry::dentry_authority(InodeId dir,
                                        const std::string& name) const {
  // FNV-1a over the name, seeded by the directory inode number.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ dir;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return static_cast<MdsId>(h % static_cast<std::uint64_t>(num_mds_));
}

}  // namespace mdsim

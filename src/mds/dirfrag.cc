#include "mds/dirfrag.h"

#include <algorithm>

namespace mdsim {

void DirFragRegistry::fragment(InodeId dir, MdsId home, bool giga,
                               bool by_size, std::uint64_t child_count,
                               double seed_temp, SimTime now,
                               SimTime half_life) {
  GigaDir g;
  g.bitmap = 1;
  g.home = home;
  g.giga = giga;
  g.by_size = by_size;
  g.half_life = half_life;
  const std::size_t slots = std::size_t{1} << max_depth_;
  g.counts.assign(slots, 0);
  g.temps.assign(slots, DecayCounter(half_life));
  g.counts[0] = child_count;
  if (seed_temp > 0.0) g.temps[0].hit(now, seed_temp);
  dirs_[dir] = std::move(g);
  ++fragment_events;
  // Giga fragmentation keeps every dentry at home; the legacy one-step
  // hash re-routes the whole directory.
  record_moved(giga ? 0 : child_count);
  bump(dir);
}

std::uint32_t DirFragRegistry::split(InodeId dir, std::uint32_t p,
                                     std::uint64_t parent_count,
                                     std::uint64_t child_count, SimTime now) {
  auto it = dirs_.find(dir);
  if (it == dirs_.end()) return p;
  GigaDir& g = it->second;
  const int d = giga_depth_of(g.bitmap, p, max_depth_);
  if (d >= max_depth_) return p;
  const std::uint32_t c = p + (1u << d);
  g.bitmap |= std::uint64_t{1} << c;
  g.counts[p] = parent_count;
  g.counts[c] = child_count;
  // Halve the partition's heat across the pair: the split-away suffix
  // class takes its share of the storm with it.
  const double v = g.temps[p].get(now);
  g.temps[p].reset();
  g.temps[p].hit(now, v * 0.5);
  g.temps[c].reset();
  g.temps[c].hit(now, v * 0.5);
  ++split_events;
  record_moved(child_count);
  bump(dir);
  return c;
}

void DirFragRegistry::merge_pair(InodeId dir, std::uint32_t q,
                                 std::uint32_t c, SimTime now) {
  auto it = dirs_.find(dir);
  if (it == dirs_.end()) return;
  GigaDir& g = it->second;
  if (((g.bitmap >> c) & 1) == 0) return;
  const std::uint64_t moved = g.counts[c];
  g.counts[q] += moved;
  g.counts[c] = 0;
  g.temps[q].hit(now, g.temps[c].get(now));
  g.temps[c].reset();
  g.bitmap &= ~(std::uint64_t{1} << c);
  ++pair_merge_events;
  record_moved(moved);
  bump(dir);
}

void DirFragRegistry::unfragment(InodeId dir, std::uint64_t moved_hint) {
  auto it = dirs_.find(dir);
  if (it == dirs_.end()) return;
  std::uint64_t moved = moved_hint;
  if (it->second.giga) {
    moved = 0;
    for (std::uint64_t n : it->second.counts) moved += n;
    // Everything already merged back to partition 0 sits at home;
    // dropping the entry moves nothing for those dentries.
    if (it->second.bitmap == 1) moved = 0;
  }
  dirs_.erase(it);
  ++merge_events;
  record_moved(moved);
  bump(dir);
}

void DirFragRegistry::note_create(InodeId dir, const std::string& name) {
  if (dirs_.empty()) return;
  auto it = dirs_.find(dir);
  if (it == dirs_.end() || !it->second.giga) return;
  GigaDir& g = it->second;
  ++g.counts[giga_partition(giga_name_hash(dir, name), g.bitmap, max_depth_)];
}

void DirFragRegistry::note_remove(InodeId dir, const std::string& name) {
  if (dirs_.empty()) return;
  auto it = dirs_.find(dir);
  if (it == dirs_.end() || !it->second.giga) return;
  GigaDir& g = it->second;
  std::uint64_t& n =
      g.counts[giga_partition(giga_name_hash(dir, name), g.bitmap, max_depth_)];
  if (n > 0) --n;
}

void DirFragRegistry::note_heat(InodeId dir, const std::string& name,
                                SimTime now) {
  if (dirs_.empty()) return;
  auto it = dirs_.find(dir);
  if (it == dirs_.end() || !it->second.giga) return;
  GigaDir& g = it->second;
  g.temps[giga_partition(giga_name_hash(dir, name), g.bitmap, max_depth_)].hit(
      now);
}

MdsId DirFragRegistry::dentry_authority(InodeId dir,
                                        const std::string& name) const {
  const std::uint64_t h = giga_name_hash(dir, name);
  MdsId a;
  auto it = dirs_.find(dir);
  if (it != dirs_.end() && it->second.giga) {
    const std::uint32_t p = giga_partition(h, it->second.bitmap, max_depth_);
    a = giga_node(it->second.home, p, num_mds_);
  } else {
    a = static_cast<MdsId>(h % static_cast<std::uint64_t>(num_mds_));
  }
  return probe_alive(a);
}

void DirFragRegistry::set_node_alive(MdsId node, bool alive) {
  alive_[static_cast<std::size_t>(node)] = alive ? 1 : 0;
  if (alive) {
    all_alive_ =
        std::all_of(alive_.begin(), alive_.end(),
                    [](std::uint8_t v) { return v != 0; });
  } else {
    all_alive_ = false;
  }
}

double DirFragRegistry::shard_fraction(InodeId dir, MdsId node) const {
  auto it = dirs_.find(dir);
  if (it == dirs_.end() || !it->second.giga) {
    return 1.0 / static_cast<double>(num_mds_);
  }
  const GigaDir& g = it->second;
  std::uint64_t mine = 0;
  std::uint64_t total = 0;
  std::uint64_t bm = g.bitmap;
  while (bm != 0) {
    const std::uint32_t p = static_cast<std::uint32_t>(std::countr_zero(bm));
    bm &= bm - 1;
    total += g.counts[p];
    if (giga_node(g.home, p, num_mds_) == node) mine += g.counts[p];
  }
  if (total == 0) return 1.0 / static_cast<double>(num_mds_);
  return static_cast<double>(mine) / static_cast<double>(total);
}

double DirFragRegistry::total_temp(InodeId dir, SimTime now) const {
  auto it = dirs_.find(dir);
  if (it == dirs_.end()) return 0.0;
  const GigaDir& g = it->second;
  double sum = 0.0;
  std::uint64_t bm = g.bitmap;
  while (bm != 0) {
    const std::uint32_t p = static_cast<std::uint32_t>(std::countr_zero(bm));
    bm &= bm - 1;
    sum += g.temps[p].get(now);
  }
  return sum;
}

std::vector<InodeId> DirFragRegistry::changes_since(std::uint64_t gen) const {
  std::vector<InodeId> out;
  for (const auto& [ino, g] : last_change_) {
    if (g > gen) out.push_back(ino);
  }
  std::sort(out.begin(), out.end());  // deterministic resync order
  return out;
}

}  // namespace mdsim

// Dynamic directory fragmentation (paper section 4.3).
//
// "If a single directory becomes extraordinarily large or busy ... an
// individual directory's contents can be hashed across the cluster, such
// that the authority for a given directory entry is defined by a hash of
// the file name and the directory inode number. ... we propose that the
// decision to hash (or unhash) a directory be dynamic."
//
// The registry is cluster-shared knowledge (every MDS learns of fragment
// events via DirFragNotify messages; the shared object models the
// converged state, which is how the paper's prototype treats the
// partition itself).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.h"

namespace mdsim {

class DirFragRegistry {
 public:
  explicit DirFragRegistry(int num_mds) : num_mds_(num_mds) {}

  bool is_fragmented(InodeId dir) const {
    // Fragmentation is rare; the registry is empty in most runs and this
    // is queried on every authority resolution.
    return !fragmented_.empty() && fragmented_.count(dir) != 0;
  }

  void fragment(InodeId dir) { fragmented_.insert({dir, true}); }
  void unfragment(InodeId dir) { fragmented_.erase(dir); }

  /// Authority for one dentry of a fragmented directory: hash of the file
  /// name and the directory inode number.
  MdsId dentry_authority(InodeId dir, const std::string& name) const;

  std::size_t fragmented_count() const { return fragmented_.size(); }

  std::uint64_t fragment_events = 0;
  std::uint64_t merge_events = 0;

 private:
  int num_mds_;
  std::unordered_map<InodeId, bool> fragmented_;
};

}  // namespace mdsim

// Dynamic directory fragmentation (paper section 4.3), grown into
// GIGA+-style incremental partitioning.
//
// "If a single directory becomes extraordinarily large or busy ... an
// individual directory's contents can be hashed across the cluster, such
// that the authority for a given directory entry is defined by a hash of
// the file name and the directory inode number. ... we propose that the
// decision to hash (or unhash) a directory be dynamic."
//
// The paper hashes a whole directory in one step; that re-routes every
// dentry at once (a split storm). Here each fragmented directory carries
// a per-partition split bitmap instead: partition `p` at depth `d`
// splits independently into `p` and `p + 2^d` when its own dentry count
// or temperature crosses the threshold, and merges reverse one split at
// a time. Bit `i` of the bitmap is set iff partition `i` exists; bit 0
// is always set. A dentry maps to the partition found by taking the low
// `max_depth` bits of its name hash and clearing the most-significant
// set bit until it lands on an existing partition. Partitions map to
// MDS nodes round-robin from the directory's home (its subtree
// authority at fragment time), so the initial fragmentation moves
// nothing and each split moves only one partition's split-away half.
//
// The registry is cluster-shared knowledge (every MDS learns of fragment
// events via DirFragNotify messages; the shared object models the
// converged state, which is how the paper's prototype treats the
// partition itself). Clients hold possibly-stale copies of the bitmaps
// and learn corrections from GigaRedirect replies.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mdsim {

/// FNV-1a over the name, seeded by the directory inode number, with an
/// avalanche finalizer. Shared verbatim by MDS and client so routing
/// parity holds by construction. (Bit-identical to the pre-GIGA+ hash.)
inline std::uint64_t giga_name_hash(InodeId dir, const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ dir;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return h;
}

/// Partition index for a name hash under a split bitmap: take the low
/// `max_depth` bits, then clear the most-significant set bit until the
/// candidate partition exists. Bit 0 is always set, so this terminates.
inline std::uint32_t giga_partition(std::uint64_t hash, std::uint64_t bitmap,
                                    int max_depth) {
  std::uint32_t i =
      static_cast<std::uint32_t>(hash & ((1ULL << max_depth) - 1));
  while (i != 0 && ((bitmap >> i) & 1) == 0) {
    i ^= 1u << (std::bit_width(i) - 1);
  }
  return i;
}

/// Current radix depth of partition `p`: its birth depth (the depth of
/// the split that created it) plus one per own split it has performed
/// since (child `p + 2^d` present in the bitmap).
inline int giga_depth_of(std::uint64_t bitmap, std::uint32_t p,
                         int max_depth) {
  int d = p == 0 ? 0 : static_cast<int>(std::bit_width(p));
  while (d < max_depth && ((bitmap >> (p + (1u << d))) & 1) != 0) ++d;
  return d;
}

/// Round-robin partition placement from the directory's home node.
inline MdsId giga_node(MdsId home, std::uint32_t p, int num_mds) {
  return static_cast<MdsId>((home + static_cast<MdsId>(p)) % num_mds);
}

class DirFragRegistry {
 public:
  /// Per-directory fragmentation state. `giga` entries split
  /// incrementally; legacy entries (giga_enabled=false) hash every
  /// dentry over all nodes in one step, exactly as before this change.
  struct GigaDir {
    std::uint64_t bitmap = 1;  // bit i set <=> partition i exists
    MdsId home = 0;            // subtree authority at fragment time
    bool giga = true;
    bool by_size = false;  // trigger that fragmented it (vs by heat)
    SimTime half_life = 5 * kSecond;
    std::vector<std::uint64_t> counts;  // exact dentries per partition
    std::vector<DecayCounter> temps;    // per-partition op temperature
  };

  // max_depth is capped at 6: the bitmap is a uint64, so at most 64
  // partitions (indices 0..63) exist per directory.
  DirFragRegistry(int num_mds, int giga_max_depth)
      : num_mds_(num_mds),
        max_depth_(giga_max_depth < 1   ? 1
                   : giga_max_depth > 6 ? 6
                                        : giga_max_depth),
        alive_(static_cast<std::size_t>(num_mds), 1) {}

  bool is_fragmented(InodeId dir) const {
    // Fragmentation is rare; the registry is empty in most runs and this
    // is queried on every authority resolution.
    return !dirs_.empty() && dirs_.count(dir) != 0;
  }

  const GigaDir* find(InodeId dir) const {
    auto it = dirs_.find(dir);
    return it == dirs_.end() ? nullptr : &it->second;
  }

  int max_depth() const { return max_depth_; }

  // --- transitions (each bumps the generation) -----------------------------

  /// Fragment `dir`. Giga mode starts with bitmap=1 (everything stays at
  /// `home`, zero dentries move); legacy mode re-routes all `child_count`
  /// dentries at once. `seed_temp` carries the directory's op temperature
  /// into partition 0 so a just-fragmented hot directory doesn't read as
  /// stone-cold on the next sweep.
  void fragment(InodeId dir, MdsId home, bool giga, bool by_size,
                std::uint64_t child_count, double seed_temp, SimTime now,
                SimTime half_life);

  /// Split partition `p` into `p` and `p + 2^depth(p)`. The caller
  /// rehashes the partition's current dentries and passes the exact
  /// post-split counts; only `child_count` entries move.
  /// Returns the child partition index.
  std::uint32_t split(InodeId dir, std::uint32_t p,
                      std::uint64_t parent_count, std::uint64_t child_count,
                      SimTime now);

  /// Reverse one split: fold leaf child `c` back into its parent `q`.
  void merge_pair(InodeId dir, std::uint32_t q, std::uint32_t c, SimTime now);

  /// Drop the entry entirely (directory unhashed). For legacy entries the
  /// caller passes the dentry count being re-routed home; giga entries
  /// compute it from their counts.
  void unfragment(InodeId dir, std::uint64_t moved_hint = 0);

  // --- bookkeeping kept exact by the authority applying each op ------------

  void note_create(InodeId dir, const std::string& name);
  void note_remove(InodeId dir, const std::string& name);
  /// Heat the partition a namespace op landed in.
  void note_heat(InodeId dir, const std::string& name, SimTime now);

  // --- routing -------------------------------------------------------------

  /// Authority for one dentry of a fragmented directory. Giga entries
  /// map hash -> partition -> round-robin node from home; legacy entries
  /// hash over all nodes. Either way the result is probed past nodes
  /// currently known dead (crashed or fenced), consistent with the
  /// epoch/takeover rules, instead of routing dentries into a black hole.
  MdsId dentry_authority(InodeId dir, const std::string& name) const;

  /// Liveness as converged cluster knowledge: failure detection and
  /// heartbeat-observed recovery feed this mask so dentry routing skips
  /// dead nodes. With everyone alive the probe is a dead branch and the
  /// pre-GIGA+ hash placement is unchanged bit for bit.
  void set_node_alive(MdsId node, bool alive);
  bool node_alive(MdsId node) const {
    return alive_[static_cast<std::size_t>(node)] != 0;
  }

  // --- accounting ----------------------------------------------------------

  /// This node's share of the directory's dentries (for shard-sized
  /// whole-directory readdir fetch costs). Legacy entries are modeled as
  /// an even 1/num_mds split, as before.
  double shard_fraction(InodeId dir, MdsId node) const;

  /// Sum of partition temperatures (giga) for merge decisions.
  double total_temp(InodeId dir, SimTime now) const;

  // --- resync (generation on heartbeats heals lost notifies) ---------------

  std::uint64_t generation() const { return gen_; }
  /// Directories whose fragmentation state changed after `gen`. A peer
  /// whose heartbeat-carried generation lags re-runs drop_foreign_dentries
  /// over exactly these.
  std::vector<InodeId> changes_since(std::uint64_t gen) const;
  /// True if `dir` was ever fragmented (used to tell stale clients to
  /// drop a bitmap for a since-unhashed directory).
  bool changed_ever(InodeId dir) const {
    return !last_change_.empty() && last_change_.count(dir) != 0;
  }

  std::size_t fragmented_count() const { return dirs_.size(); }

  // Transition counters. fragment/merge count whole-directory
  // transitions (hash/unhash) as before; split/pair-merge count the
  // incremental ones. moved-entry gauges feed the split-storm ablation:
  // an all-at-once transition books the whole directory, a giga split
  // books one partition's split-away half.
  std::uint64_t fragment_events = 0;
  std::uint64_t merge_events = 0;
  std::uint64_t split_events = 0;
  std::uint64_t pair_merge_events = 0;
  std::uint64_t max_event_moved = 0;
  std::uint64_t total_event_moved = 0;

 private:
  void bump(InodeId dir) { last_change_[dir] = ++gen_; }
  void record_moved(std::uint64_t moved) {
    total_event_moved += moved;
    if (moved > max_event_moved) max_event_moved = moved;
  }
  MdsId probe_alive(MdsId a) const {
    if (all_alive_ || alive_[static_cast<std::size_t>(a)] != 0) return a;
    for (int k = 1; k < num_mds_; ++k) {
      const MdsId c = static_cast<MdsId>((a + k) % num_mds_);
      if (alive_[static_cast<std::size_t>(c)] != 0) return c;
    }
    return a;  // nobody alive: keep the hash placement
  }

  int num_mds_;
  int max_depth_;
  bool all_alive_ = true;
  std::vector<std::uint8_t> alive_;
  std::uint64_t gen_ = 0;
  std::unordered_map<InodeId, GigaDir> dirs_;
  // dir -> generation of its last transition (kept after unfragment so
  // resync and stale-client correction still cover departed entries).
  std::unordered_map<InodeId, std::uint64_t> last_change_;
};

}  // namespace mdsim

#include "mds/mds_node.h"

#include <algorithm>
#include <cassert>

namespace mdsim {

MdsNode::MdsNode(ClusterContext& ctx, MdsId id)
    : ctx_(ctx),
      id_(id),
      cpu_(ctx.sim, "mds" + std::to_string(id) + ".cpu"),
      disk_(ctx.sim, ctx.params.disk, "mds" + std::to_string(id)),
      cache_(ctx.params.cache_capacity,
             /*enforce_tree=*/ctx.traits.path_traversal),
      journal_(ctx.params.journal_capacity,
               [this](InodeId ino) { queue_writeback(ino); }),
      peer_loads_(static_cast<std::size_t>(ctx.num_mds), 0.0),
      peer_alive_(static_cast<std::size_t>(ctx.num_mds), 1),
      peer_last_hb_(static_cast<std::size_t>(ctx.num_mds), 0),
      peer_ack_time_(static_cast<std::size_t>(ctx.num_mds), 0) {
  cache_.set_evict_callback(
      [this](const CacheEntry& e) { on_cache_evict(e); });
  if (ctx.params.overload.enabled && ctx.params.overload.admit_rate > 0.0) {
    admit_bucket_.init(ctx.params.overload.admit_rate,
                       ctx.params.overload.admit_burst, ctx.sim.now());
  }
  // Epoch/lease machinery only applies to explicit subtree delegation.
  subtree_map_ = dynamic_cast<SubtreePartition*>(&ctx.partition);
  if (subtree_map_ != nullptr) view_epoch_ = subtree_map_->epoch();
}

MdsNode::~MdsNode() = default;

void MdsNode::bootstrap() {
  // Every node knows the root (paper section 4.4: "the root directory,
  // which is known to all clients and consequently highly replicated").
  FsNode* root = ctx_.tree.root();
  const bool auth = authority_for(root) == id_;
  CacheEntry* e = cache_.insert(root, InsertKind::kDemand, auth, 0);
  cache_.pin(e);  // the root never leaves the cache
  if (!auth) {
    // Register with the authority directly (bootstrap-time wiring).
    ctx_.nodes[static_cast<std::size_t>(authority_for(root))]
        ->register_replica(root->ino(), id_);
  }
  if (ctx_.traits.load_balancing) start_heartbeat();
  if (ctx_.partition.kind() == StrategyKind::kLazyHybrid &&
      ctx_.lazy != nullptr && id_ == 0) {
    // One node hosts the background drain pump; updates themselves are
    // charged to the affected file's authority.
    lh_drain_tick();
  }
}

MdsId MdsNode::authority_for(const FsNode* node) const {
  // Dynamic directory fragmentation overrides the subtree partition for
  // dentries of fragmented directories (paper section 4.3).
  if (ctx_.traits.dynamic_dirfrag && node->parent() != nullptr &&
      ctx_.dirfrag.is_fragmented(node->parent()->ino())) {
    return ctx_.dirfrag.dentry_authority(node->parent()->ino(), node->name());
  }
  return map_authority(node);
}

MdsId MdsNode::map_authority(const FsNode* node) const {
  // The shared map object models converged cluster knowledge; a node whose
  // view epoch lags (fenced across a partition, or a reconfiguration it
  // has not heard of yet) resolves against the map as of its own epoch.
  if (subtree_map_ != nullptr && view_epoch_ != subtree_map_->epoch()) {
    return subtree_map_->authority_of_at(node, view_epoch_);
  }
  return ctx_.partition.authority_of(node);
}

void MdsNode::charge_cpu(SimTime amount, InlineTask then) {
  cpu_.submit(amount, std::move(then));
}

void MdsNode::charge_cpu(SimTime amount, TraceSpan span, InlineTask then) {
  cpu_.submit(amount, span, std::move(then));
}

// --------------------------------------------------------------------------
// Tier-2 writeback batching (paper section 4.6): entries expiring from the
// bounded journal are flushed to the directory-object store in batches —
// dentries of one directory share B+tree nodes, so a burst of creates
// costs one object write per dirty directory, not one transaction each.
// --------------------------------------------------------------------------

void MdsNode::queue_writeback(InodeId ino) {
  FsNode* node = ctx_.tree.by_ino(ino);
  InodeId dir = kInvalidInode;  // bucket for vanished/rootless items
  if (node != nullptr && node->parent() != nullptr) {
    dir = node->parent()->ino();
  }
  ++writeback_dirs_[dir];
  if (!writeback_flush_scheduled_) {
    writeback_flush_scheduled_ = true;
    ctx_.sim.schedule(from_millis(50), [this]() { flush_writebacks(); });
  }
}

void MdsNode::flush_writebacks() {
  writeback_flush_scheduled_ = false;
  auto dirty = std::move(writeback_dirs_);
  writeback_dirs_.clear();
  for (const auto& [dir, count] : dirty) {
    // One object write per directory; size grows sub-linearly with the
    // number of co-located dirty entries (~16 dentries per tree node).
    const std::uint32_t nodes = 1 + count / 16;
    disk_.write_object(nodes, []() {});
  }
}

// --------------------------------------------------------------------------
// Message dispatch
// --------------------------------------------------------------------------

void MdsNode::on_message(NetAddr from, MessagePtr msg) {
  if (failed_) return;  // dead nodes answer nothing
  switch (msg->type) {
    case MsgType::kClientRequest:
      handle_client_request(std::move(static_cast<ClientRequestMsg&>(*msg)),
                            from);
      break;
    case MsgType::kForwardedRequest: {
      auto& fwd = static_cast<ForwardMsg&>(*msg);
      handle_client_request(std::move(fwd.inner), fwd.inner.client_addr);
      break;
    }
    case MsgType::kReplicaRequest:
      handle_replica_request(from, static_cast<ReplicaRequestMsg&>(*msg));
      break;
    case MsgType::kReplicaGrant:
      handle_replica_grant(from, static_cast<ReplicaGrantMsg&>(*msg));
      break;
    case MsgType::kReplicaDrop:
      handle_replica_drop(from, static_cast<ReplicaDropMsg&>(*msg));
      break;
    case MsgType::kCacheInvalidate:
      handle_invalidate(static_cast<CacheInvalidateMsg&>(*msg));
      break;
    case MsgType::kHeartbeat:
      handle_heartbeat(static_cast<HeartbeatMsg&>(*msg));
      break;
    case MsgType::kMigratePrepare:
      handle_migrate_prepare(from, static_cast<MigratePrepareMsg&>(*msg));
      break;
    case MsgType::kMigrateAck:
      handle_migrate_ack(from, static_cast<MigrateAckMsg&>(*msg));
      break;
    case MsgType::kMigrateCommit:
      handle_migrate_commit(from, static_cast<MigrateCommitMsg&>(*msg));
      break;
    case MsgType::kMigrateAbort:
      handle_migrate_abort(static_cast<MigrateAbortMsg&>(*msg));
      break;
    case MsgType::kLazyHybridUpdate:
      handle_lh_update(static_cast<LazyHybridUpdateMsg&>(*msg));
      break;
    case MsgType::kDirFragNotify:
      handle_dirfrag_notify(static_cast<DirFragNotifyMsg&>(*msg));
      break;
    case MsgType::kAttrDirty:
      handle_attr_dirty(from, static_cast<AttrDirtyMsg&>(*msg));
      break;
    case MsgType::kAttrFlush:
      handle_attr_flush(from, static_cast<AttrFlushMsg&>(*msg));
      break;
    case MsgType::kAttrCallback:
      handle_attr_callback(static_cast<AttrCallbackMsg&>(*msg));
      break;
    default:
      break;  // kClientReply: not addressed to an MDS
  }
}

void MdsNode::on_message_batch(Delivery* items, std::size_t n) {
  if (failed_) return;  // dead nodes answer nothing
  // Contiguous client-request runs take the amortized path; anything else
  // goes one message at a time. Processing stays strictly in batch order.
  std::size_t i = 0;
  while (i < n) {
    if (items[i].msg->type == MsgType::kClientRequest) {
      std::size_t j = i + 1;
      while (j < n && items[j].msg->type == MsgType::kClientRequest) ++j;
      handle_client_request_run(items + i, j - i);
      i = j;
    } else {
      on_message(items[i].from, std::move(items[i].msg));
      ++i;
    }
  }
}

// --------------------------------------------------------------------------
// Client request path
// --------------------------------------------------------------------------

bool MdsNode::is_duplicate_update(const ClientRequestMsg& msg) {
  // Duplicate-delivery idempotence: a network-duplicated update must not
  // apply twice. Client req_ids are per-client monotone and every retry
  // re-issues under a fresh id, so an id at or below the per-client
  // high-water mark is an exact duplicate of a request this node already
  // accepted — drop it (the original's reply is on its way; reads are
  // naturally idempotent and skip the check).
  if (!op_is_update(msg.op) || msg.client_addr == kInvalidAddr) return false;
  // Local addresses are small and dense (MDS ids, then client ids), so
  // the high-water marks live in a flat vector; only cross-shard global
  // addresses (sparse, rare) fall back to the map.
  std::uint64_t* seen;
  if (!is_shard_global(msg.client_addr)) {
    const auto a = static_cast<std::size_t>(msg.client_addr);
    if (a >= seen_update_req_.size()) seen_update_req_.resize(a + 1, 0);
    seen = &seen_update_req_[a];
  } else {
    seen = &seen_update_req_global_[msg.client_addr];
  }
  if (msg.req_id <= *seen) return true;
  *seen = msg.req_id;
  return false;
}

AdmitVerdict MdsNode::admission_verdict(const ClientRequestMsg& msg) {
  const OverloadParams& ov = ctx_.params.overload;
  const SimTime now = ctx_.sim.now();
  // Dead on arrival: the client's timeout has already fired, its retry is
  // already in flight, and our reply would be discarded as stale. Serving
  // it is the metastable-failure fuel — drop it before it costs anything.
  if (ov.deadline_drop && msg.deadline != 0 && now > msg.deadline) {
    return AdmitVerdict::kShedDeadline;
  }
  // Bounded queues: depth and queued-service-time backlog. The backlog
  // bound is the one that actually limits queueing delay — depth alone
  // undercounts when traversals queue multi-component CPU charges.
  if (cpu_.queue_depth() >= ov.max_cpu_queue_depth ||
      (ov.max_cpu_queue_delay != 0 && cpu_.backlog() > ov.max_cpu_queue_delay)) {
    return AdmitVerdict::kShedQueue;
  }
  if (disk_.store_queue_depth() >= ov.max_disk_queue_depth) {
    return AdmitVerdict::kShedQueue;
  }
  // Token bucket with op-class costs and a fresh-request reserve:
  // retried requests are admitted only from the surplus above the
  // reserve, so a retry storm cannot starve fresh work. First entry
  // only — a forwarded request already paid a token at the node the
  // client contacted; charging it again would tax forwarding itself.
  // The queue bounds above DO apply to forwarded arrivals: they are this
  // node's local backpressure, and without them every peer's bucket
  // funnels admitted work at a hot authority unboundedly.
  if (ov.admit_rate > 0.0 && msg.hops == 0) {
    const double cost = op_is_update(msg.op) ? ov.write_cost : 1.0;
    const double reserve =
        msg.attempt > 0 ? ov.retry_reserve * ov.admit_burst : 0.0;
    if (!admit_bucket_.try_take(cost, reserve, now)) {
      return AdmitVerdict::kShedBucket;
    }
  }
  return AdmitVerdict::kAdmit;
}

void MdsNode::shed_request(const ClientRequestMsg& msg, NetAddr reply_to,
                           AdmitVerdict verdict) {
  switch (verdict) {
    case AdmitVerdict::kShedQueue:
      ++stats_.requests_shed_queue;
      break;
    case AdmitVerdict::kShedBucket:
      ++stats_.requests_shed_admission;
      break;
    case AdmitVerdict::kShedDeadline:
      ++stats_.requests_shed_deadline;
      break;
    case AdmitVerdict::kAdmit:
      return;
  }
  stats_.shed_rate.add();
  if (ctx_.faults != nullptr) ctx_.faults->note_shed(id_, ctx_.sim.now());
  // A deadline drop answers no one: that client has already timed out and
  // moved on. Queue/bucket sheds get an explicit rejection so the client
  // backs off for `retry_after` instead of burning its timeout. The
  // rejection is the whole point of admission control: it costs no CPU
  // and no queue slot.
  if (verdict == AdmitVerdict::kShedDeadline || reply_to == kInvalidAddr) {
    return;
  }
  const OverloadParams& ov = ctx_.params.overload;
  auto out = std::make_unique<ClientReplyMsg>();
  out->req_id = msg.req_id;
  out->success = false;
  out->rejected = true;
  out->retry_after = ov.retry_after_base + cpu_.backlog();
  out->served_by = id_;
  out->hops = msg.hops;
  out->hedge = msg.hedge;
  out->epoch = view_epoch_;
  ++stats_.rejects_sent;
  ctx_.net.send(id_, reply_to, std::move(out));
}

void MdsNode::admit_client_request(ClientRequestMsg&& msg, NetAddr reply_to) {
  // Close the link segment: client -> here (first hop) or peer -> here.
  trace_mark(msg, msg.hops == 0 ? TraceStage::kNetRequest
                                : TraceStage::kNetForward);
  RequestPtr req = make_request();
  req->msg = std::move(msg);
  req->reply_to = reply_to;
  route(std::move(req));
}

void MdsNode::handle_client_request(ClientRequestMsg msg, NetAddr reply_to) {
  if (is_duplicate_update(msg)) {
    ++stats_.duplicate_updates_dropped;
    return;
  }
  ++stats_.requests_received;
  if (msg.hops == 0) stats_.request_rate.add();
  // Overload gate: every entry point checks deadline + queue bounds;
  // the token bucket inside only charges first entries (hops == 0).
  // Forwarded sheds reply straight to the client (reply_to is already
  // the client for forwarded requests).
  if (ctx_.params.overload.enabled) {
    const AdmitVerdict v = admission_verdict(msg);
    if (v != AdmitVerdict::kAdmit) {
      shed_request(msg, reply_to, v);
      return;
    }
  }
  admit_client_request(std::move(msg), reply_to);
}

void MdsNode::handle_client_request_run(Delivery* items, std::size_t n) {
  // Per-message admission is unchanged; only the stats counter updates are
  // folded into one add per run, which is exact — the counters are plain
  // sums, so `+= k` equals k increments.
  std::uint64_t accepted = 0;
  std::uint64_t first_hop = 0;
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (failed_) break;  // a mid-batch handler may have killed this node
    auto& msg = static_cast<ClientRequestMsg&>(*items[i].msg);
    if (is_duplicate_update(msg)) {
      ++dropped;
      continue;
    }
    ++accepted;
    first_hop += msg.hops == 0;
    if (ctx_.params.overload.enabled) {
      const AdmitVerdict v = admission_verdict(msg);
      if (v != AdmitVerdict::kAdmit) {
        shed_request(msg, items[i].from, v);
        continue;
      }
    }
    admit_client_request(std::move(msg), items[i].from);
  }
  stats_.duplicate_updates_dropped += dropped;
  stats_.requests_received += accepted;
  if (first_hop != 0) stats_.request_rate.add(first_hop);
}

void MdsNode::route(RequestPtr req) {
  ClientRequestMsg& m = req->msg;
  req->target = ctx_.tree.by_ino(m.target);
  if (req->target == nullptr) {
    // Target vanished (raced with an unlink) — fail after a cheap check.
    charge_cpu(ctx_.params.cpu_forward, cpu_span(req),
               [this, req]() { fail(req); });
    return;
  }
  if (m.secondary != kInvalidInode) {
    req->secondary = ctx_.tree.by_ino(m.secondary);
    if (req->secondary == nullptr) {
      charge_cpu(ctx_.params.cpu_forward, cpu_span(req),
                 [this, req]() { fail(req); });
      return;
    }
  }

  // Authority of the governed item. For namespace ops (create/mkdir/
  // rename-into/link) the governed dentry is (target dir, name): under
  // directory fragmentation its authority hashes by name.
  const FsNode* governed = req->target;
  MdsId auth;
  InodeId giga_gov = kInvalidInode;  // giga-fragmented dir governing this op
  const bool namespace_op = m.op == OpType::kCreate ||
                            m.op == OpType::kMkdir || m.op == OpType::kLink;
  if (namespace_op && ctx_.traits.dynamic_dirfrag &&
      ctx_.dirfrag.is_fragmented(req->target->ino())) {
    auth = ctx_.dirfrag.dentry_authority(req->target->ino(), m.name);
    const auto* g = ctx_.dirfrag.find(req->target->ino());
    if (g != nullptr && g->giga) giga_gov = req->target->ino();
  } else {
    auth = authority_for(governed);
    if (ctx_.traits.dynamic_dirfrag && req->target->parent() != nullptr &&
        ctx_.dirfrag.is_fragmented(req->target->parent()->ino())) {
      const auto* g = ctx_.dirfrag.find(req->target->parent()->ino());
      if (g != nullptr && g->giga) giga_gov = req->target->parent()->ino();
    }
  }

  if (subtree_frozen(req->target)) {
    // Mid-migration: hold the request until the double-commit resolves.
    defer(std::move(req));
    return;
  }

  if (fenced_ && op_is_update(m.op)) {
    // Lease lost: this node may no longer durably order writes — not even
    // absorb them at a replica. Park until the lease renews (the client
    // will usually time out and retry toward the quorum side first).
    // Reads fall through: serving possibly-stale reads is the availability
    // the paper's replication model already accepts.
    park(std::move(req));
    return;
  }

  if (auth != id_) {
    if (giga_gov != kInvalidInode) {
      // Mis-routed dentry op on a giga directory. A zero-hop arrival came
      // straight off the client's stale bitmap: send the correction so
      // its redirect rate decays to zero after the last split. Either way
      // the op still makes progress — forwarded below, or served here
      // once the hop budget is spent (the shared tree makes a local serve
      // correct, just cache-cold).
      if (m.hops == 0 && m.client_addr != kInvalidAddr) {
        send_giga_redirect(m, giga_gov);
      }
      if (m.hops >= ctx_.params.giga_max_hops) {
        const SimTime cost =
            ctx_.params.cpu_request +
            ctx_.params.cpu_per_component * (req->target->depth() + 1);
        charge_cpu(cost, cpu_span(req), [this, req]() { serve(req); });
        return;
      }
    }
    // Monotone attribute writes can be absorbed at a replica holder and
    // shipped to the authority in batches (GPFS-style, section 4.2).
    if (try_local_attr_update(req)) return;
    // Not ours. A read can be served from a local replica (collaborative
    // caching / traffic control); anything else is forwarded.
    const bool read_op = !op_is_update(m.op);
    if (read_op && cache_.peek(req->target->ino()) != nullptr) {
      const SimTime cost =
          ctx_.params.cpu_request +
          ctx_.params.cpu_per_component * (req->target->depth() + 1);
      charge_cpu(cost, cpu_span(req), [this, req]() { serve(req); });
      return;
    }
    ++stats_.forwards;
    stats_.forward_rate.add();
    auto fwd = std::make_unique<ForwardMsg>();
    fwd->inner = req->msg;
    ++fwd->inner.hops;
    charge_cpu(ctx_.params.cpu_forward, cpu_span(req),
               [this, to = auth, f = std::move(fwd)]() mutable {
                 ctx_.net.send(id_, to, std::move(f));
               });
    return;
  }

  const SimTime cost =
      ctx_.params.cpu_request +
      ctx_.params.cpu_per_component * (req->target->depth() + 1);
  charge_cpu(cost, cpu_span(req), [this, req]() { serve(req); });
}

void MdsNode::serve(RequestPtr req) {
  req->counts_as_served = true;

  // Build the prefix chain. Lazy Hybrid skips traversal entirely unless
  // the target's dual-entry ACL is stale (section 3.1.3): a stale item
  // pays the full scattered traversal once, then is refreshed.
  const bool lh = !ctx_.traits.path_traversal;
  bool need_chain = !lh;
  if (lh && ctx_.lazy != nullptr && ctx_.lazy->is_stale(req->target)) {
    need_chain = true;
    ++stats_.lh_traversal_fixups;
  }
  if (need_chain) {
    req->target->ancestry_into(req->chain);  // root .. target
    if (!op_is_update(req->msg.op)) {
      req->chain.pop_back();  // reads handle the target themselves
    }
    // Updates keep the target in the chain: the authority must have the
    // item resident (fetching it if cold) before serializing the change.
    if (req->secondary != nullptr) {
      // Rename/link: the second directory's prefixes are needed too
      // (appended in root-down order without a temporary vector).
      const std::size_t base = req->chain.size();
      for (FsNode* n = req->secondary; n != nullptr; n = n->parent()) {
        req->chain.push_back(n);
      }
      std::reverse(req->chain.begin() + static_cast<std::ptrdiff_t>(base),
                   req->chain.end());
    }
  } else if (op_is_update(req->msg.op)) {
    // Lazy Hybrid update on a fresh item: no prefix traversal, but the
    // target inode itself must still be resident at its authority.
    req->chain.push_back(req->target);
    if (req->secondary != nullptr) req->chain.push_back(req->secondary);
  }
  req->chain_idx = 0;
  advance_traversal(std::move(req));  // falls through to serve_target
}

void MdsNode::serve_target(RequestPtr req) {
  ClientRequestMsg& m = req->msg;
  // The target (or the secondary dir) may have been unlinked by a racing
  // request while this one sat in the CPU/disk queues.
  if (!ctx_.tree.alive(req->target) ||
      (req->secondary != nullptr && !ctx_.tree.alive(req->secondary))) {
    fail(std::move(req));
    return;
  }
  if (ctx_.lazy != nullptr && !ctx_.traits.path_traversal &&
      ctx_.lazy->is_stale(req->target)) {
    // We just traversed the full path for this stale item: refresh its
    // stored ACL (one journaled update).
    ctx_.lazy->refresh(req->target);
    journal_.append(req->target->ino());
  }

  switch (m.op) {
    case OpType::kStat:
    case OpType::kOpen:
    case OpType::kClose: {
      FsNode* node = req->target;
      CacheEntry* e = cache_.lookup(node->ino(), ctx_.sim.now());
      if (e != nullptr) {
        cache_.mark_demand_access(e);
        // Reads must see the latest size/mtime: call in any deltas
        // absorbed by replica holders first (section 4.2).
        if (e->authoritative && !node->is_dir() &&
            gather_remote_attrs(req)) {
          return;  // resumed when the flushes arrive
        }
        finish(req, true, node->ino());
        return;
      }
      stats_.miss_rate.add();
      // Reads on another node's behalf only happen when we held a
      // replica at route time; it may have been evicted since — forward.
      if (authority_for(node) != id_) {
        ++stats_.forwards;
        stats_.forward_rate.add();
        auto fwd = std::make_unique<ForwardMsg>();
        fwd->inner = req->msg;
        ++fwd->inner.hops;
        ctx_.net.send(id_, authority_for(node), std::move(fwd));
        unpin_all(req);
        return;
      }
      fetch_local(
          node, InsertKind::kDemand,
          [this, req, node](CacheEntry* entry) {
            // Initiator: the disk span already tiled the wait, so this
            // adds 0. Coalesced joiner: the whole park is fetch-wait.
            trace_mark(req->msg, TraceStage::kFetchWait);
            finish(req, entry != nullptr, node->ino());
          },
          /*single_item=*/false, disk_span(req));
      return;
    }

    case OpType::kReaddir: {
      FsNode* dir = req->target;
      if (!dir->is_dir()) {
        fail(req);
        return;
      }
      CacheEntry* e = cache_.lookup(dir->ino(), ctx_.sim.now());
      if (e != nullptr) cache_.mark_demand_access(e);
      if (e == nullptr) {
        stats_.miss_rate.add();
        fetch_local(
            dir, InsertKind::kDemand,
            [this, req](CacheEntry* entry) {
              trace_mark(req->msg, TraceStage::kFetchWait);
              if (entry == nullptr) {
                fail(req);
              } else {
                serve_target(req);  // re-enter with dir resident
              }
            },
            /*single_item=*/false, disk_span(req));
        return;
      }
      if (ctx_.traits.whole_directory_io) {
        if (e->complete) {
          finish(req, true, dir->ino());
          return;
        }
        // One object fetch brings in every dentry + embedded inode.
        stats_.miss_rate.add();
        const std::uint32_t nodes = ctx_.store.full_fetch_nodes(dir);
        pin_entry(req, e);
        disk_.read_object(nodes, disk_span(req), [this, req, dir]() {
          prefetch_children(dir);
          CacheEntry* de = cache_.peek(dir->ino());
          if (de != nullptr) de->complete = true;
          finish(req, true, dir->ino());
        });
        return;
      }
      // File-granularity strategies: the dentry list is one object, but
      // the inodes are scattered — later stats pay per-inode fetches.
      disk_.read_object(1, disk_span(req), [this, req, dir]() {
        finish(req, true, dir->ino());
      });
      return;
    }

    default:
      apply_update(std::move(req));
      return;
  }
}

// --------------------------------------------------------------------------
// Updates: applied at the authority, journaled, replicas invalidated.
// --------------------------------------------------------------------------

void MdsNode::apply_update(RequestPtr req) {
  ClientRequestMsg& m = req->msg;
  if (fenced_) {
    // Backstop for requests already past route() when the fence dropped
    // (queued behind CPU/disk): nothing is acknowledged without a lease.
    unpin_all(req);
    park(std::move(req));
    return;
  }
  const SimTime now = ctx_.sim.now();
  bool ok = false;
  InodeId result = kInvalidInode;
  InodeId journal_ino = m.target;

  switch (m.op) {
    case OpType::kCreate:
    case OpType::kMkdir: {
      FsNode* dir = req->target;
      if (!dir->is_dir()) break;
      Perms perms;
      perms.uid = m.uid;
      perms.mode = m.op == OpType::kMkdir ? 0755 : 0644;
      FsNode* created = m.op == OpType::kMkdir
                            ? ctx_.tree.mkdir(dir, m.name, perms, now)
                            : ctx_.tree.create_file(dir, m.name, perms, now);
      if (created == nullptr) break;  // EEXIST
      ok = true;
      result = created->ino();
      journal_ino = created->ino();
      ctx_.store.apply_create(
          dir, m.name,
          DirRecord{created->ino(), created->inode().version,
                    created->is_dir()});
      // The new item enters our cache if we also cache its directory
      // (under dirfrag the dentry authority may not hold the dir inode).
      if (cache_.peek(dir->ino()) != nullptr) {
        cache_.insert(created, InsertKind::kDemand, /*authoritative=*/true,
                      now);
      }
      invalidate_replicas(dir->ino(), /*removed=*/false);
      giga_note_namespace_op(dir, m.name, +1);
      break;
    }

    case OpType::kUnlink:
    case OpType::kRmdir: {
      FsNode* node = req->target;
      if (node->is_dir() != (m.op == OpType::kRmdir)) break;
      FsNode* dir = node->parent();
      if (dir == nullptr) break;
      // Drop our cache entry first (it must be childless to unlink —
      // rmdir requires an empty dir; a cached child would block erase).
      CacheEntry* e = cache_.peek(node->ino());
      if (e != nullptr && e->cached_children > 0) break;
      const std::string name = node->name();
      if (!ctx_.tree.remove(node)) break;  // nonempty dir / anchored links
      ok = true;
      result = node->ino();
      cache_.erase(node->ino());
      ctx_.store.apply_remove(dir, name);
      if (node->is_dir()) ctx_.store.drop(node);
      invalidate_replicas(node->ino(), /*removed=*/true);
      invalidate_replicas(dir->ino(), /*removed=*/false);
      giga_note_namespace_op(dir, name, -1);
      break;
    }

    case OpType::kRename: {
      FsNode* node = req->target;
      FsNode* dst = req->secondary;
      if (dst == nullptr || !dst->is_dir()) break;
      FsNode* src_dir = node->parent();
      if (src_dir == nullptr) break;
      const std::string old_name = node->name();
      const bool is_dir = node->is_dir();
      if (!ctx_.tree.rename(node, dst, m.name)) break;
      ok = true;
      result = node->ino();
      ctx_.store.apply_remove(src_dir, old_name);
      ctx_.store.apply_create(
          dst, m.name,
          DirRecord{node->ino(), node->inode().version, node->is_dir()});
      invalidate_replicas(src_dir->ino(), /*removed=*/false);
      invalidate_replicas(dst->ino(), /*removed=*/false);
      giga_note_namespace_op(src_dir, old_name, -1);
      giga_note_namespace_op(dst, m.name, +1);
      if (is_dir) {
        // Every descendant changed position (and, under hashing,
        // location). Anchored links keep resolving through the moved dir.
        std::vector<InodeId> new_chain;
        for (FsNode* a = node->parent(); a != nullptr; a = a->parent()) {
          new_chain.push_back(a->ino());
        }
        ctx_.anchors.on_directory_move(node->ino(), new_chain);
        if (ctx_.lazy != nullptr) {
          ctx_.lazy->invalidate_subtree(node);
        } else {
          // Broadcast: peers drop cached descendants of the moved dir.
          for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
            if (peer == id_) continue;
            auto inv = std::make_unique<CacheInvalidateMsg>();
            inv->ino = node->ino();
            inv->whole_subtree = true;
            inv->epoch = view_epoch_;
            ++stats_.invalidations_sent;
            ctx_.net.send(id_, peer, std::move(inv));
          }
          // ... including ourselves (entries may now belong elsewhere).
          CacheInvalidateMsg self_inv;
          self_inv.ino = node->ino();
          self_inv.whole_subtree = true;
          self_inv.epoch = view_epoch_;
          handle_invalidate(self_inv);
        }
      } else {
        invalidate_replicas(node->ino(), /*removed=*/false);
      }
      break;
    }

    case OpType::kChmod: {
      FsNode* node = req->target;
      Perms p = node->inode().perms;
      p.mode = (p.mode == 0700) ? 0755 : 0700;  // toggle private/world
      ctx_.tree.chmod(node, p, now);
      ok = true;
      result = node->ino();
      invalidate_replicas(node->ino(), /*removed=*/false);
      if (node->is_dir() && ctx_.lazy != nullptr) {
        // LH: the effective ACL of every nested item changed.
        ctx_.lazy->invalidate_subtree(node);
      }
      if (node->parent() != nullptr) {
        ctx_.store.apply_update(
            node->parent(), node->name(),
            DirRecord{node->ino(), node->inode().version, node->is_dir()});
      }
      break;
    }

    case OpType::kSetattr: {
      FsNode* node = req->target;
      ctx_.tree.touch(node, node->inode().size + 1, now);
      ok = true;
      result = node->ino();
      invalidate_replicas(node->ino(), /*removed=*/false);
      if (node->parent() != nullptr) {
        ctx_.store.apply_update(
            node->parent(), node->name(),
            DirRecord{node->ino(), node->inode().version, node->is_dir()});
      }
      break;
    }

    case OpType::kLink: {
      FsNode* target = req->secondary;
      FsNode* dir = req->target;
      if (target == nullptr || target->is_dir() || !dir->is_dir()) break;
      if (!ctx_.tree.link(target, dir, m.name)) break;
      ok = true;
      result = target->ino();
      // Anchor the primary inode so the new remote dentry can find it.
      std::vector<InodeId> chain;
      for (FsNode* a = target->parent(); a != nullptr; a = a->parent()) {
        chain.push_back(a->ino());
      }
      ctx_.anchors.anchor(target->ino(), chain);
      invalidate_replicas(dir->ino(), /*removed=*/false);
      giga_note_namespace_op(dir, m.name, +1);
      break;
    }

    default:
      break;
  }

  if (!ok) {
    fail(req);
    return;
  }

  // The target was a direct request subject, not a mere prefix.
  if (CacheEntry* te = cache_.peek(m.target)) cache_.mark_demand_access(te);

  // Commit to stable storage before replying (the bounded journal).
  journal_.append(journal_ino);
  ++stats_.updates_journaled;
  const InodeId rino = result;
  disk_.journal_append(journal_span(req),
                       [this, req, rino]() { finish(req, true, rino); });
}

// --------------------------------------------------------------------------
// Completion
// --------------------------------------------------------------------------

void MdsNode::finish(RequestPtr req, bool success, InodeId result_ino) {
  if (!success) {
    fail(std::move(req));
    return;
  }
  note_popularity(req);
  reply(std::move(req), true, result_ino);
}

void MdsNode::fail(RequestPtr req) {
  ++stats_.failures;
  reply(std::move(req), false, kInvalidInode);
}

void MdsNode::reply(RequestPtr req, bool success, InodeId result_ino) {
  unpin_all(req);
  auto out = std::make_unique<ClientReplyMsg>();
  out->req_id = req->msg.req_id;
  out->success = success;
  out->served_by = id_;
  out->hops = req->msg.hops;
  out->hedge = req->msg.hedge;
  out->result_ino = result_ino;
  out->epoch = view_epoch_;
  if (success) fill_hints(req, *out);
  ++stats_.replies_sent;
  stats_.reply_rate.add();
  ctx_.net.send(id_, req->reply_to, std::move(out));
}

void MdsNode::pin_entry(RequestPtr req, CacheEntry* e) {
  cache_.pin(e);
  req->pinned.push_back(e);
}

void MdsNode::unpin_all(RequestPtr req) {
  for (CacheEntry* e : req->pinned) cache_.unpin(e);
  req->pinned.clear();
}

void MdsNode::mark_peer_down(MdsId peer) {
  if (peer >= 0 && static_cast<std::size_t>(peer) < peer_loads_.size()) {
    // Infinite load: never chosen as a migration target.
    peer_loads_[static_cast<std::size_t>(peer)] = 1e300;
  }
}

void MdsNode::mark_peer_up(MdsId peer) {
  if (peer >= 0 && static_cast<std::size_t>(peer) < peer_loads_.size()) {
    peer_loads_[static_cast<std::size_t>(peer)] = 0.0;
  }
}

void MdsNode::warm_from_journal(const std::vector<InodeId>& working_set) {
  // One sequential read of the failed node's log region (shared OSD
  // storage), then install every still-relevant item.
  const std::uint32_t log_nodes =
      1 + static_cast<std::uint32_t>(working_set.size() / 16);
  auto items = std::make_shared<std::vector<InodeId>>(working_set);
  disk_.read_object(log_nodes, [this, items]() {
    const SimTime cpu =
        ctx_.params.cpu_migrate_per_item * items->size();
    charge_cpu(cpu, [this, items]() {
      std::uint64_t installed = 0;
      for (InodeId ino : *items) {
        FsNode* n = ctx_.tree.by_ino(ino);
        if (n == nullptr) continue;
        if (authority_for(n) != id_) continue;  // not ours post-failover
        cache_insert_anchored(n, InsertKind::kDemand, /*authoritative=*/true);
        ++installed;
      }
      stats_.takeover_warm_items += installed;
    });
  });
}

void MdsNode::clear_cache_for_rejoin() {
  // Evict everything evictable; the pinned root (and anything anchoring
  // it) survives. The squeeze respects the cache tree invariant.
  const std::size_t cap = cache_.capacity();
  cache_.set_capacity(1);
  cache_.set_capacity(cap);
  // Coherence and traffic-control sidecar state is void after the outage
  // (the node missed invalidations); pending attr deltas survive — the
  // periodic flush still owes them to the authorities.
  cache_.for_each_aux([this](InodeId ino, EntryAux& a) {
    a.replica_holders.clear();
    a.replicated_everywhere = false;
    a.has_dir_temp = false;
    a.dir_op_temp = DecayCounter();
    cache_.aux_gc(ino);
  });
  subtree_load_.clear();
  // Any protocol state from before the outage is void; the clients whose
  // requests died here have long since timed out and retried.
  frozen_.clear();
  deferred_.clear();
  outbound_.reset();
  inbound_.reset();
  replica_fetch_deadline_.clear();
  attr_waiters_.clear();
  cache_.clear_fetch_waiters();
  parked_.clear();
  pending_takeover_.clear();
  seen_update_req_.assign(seen_update_req_.size(), 0);
  seen_update_req_global_.clear();
  inbound_done_.clear();
}

void MdsNode::park(RequestPtr req) {
  ++stats_.writes_parked_fenced;
  parked_.push_back(std::move(req));
}

bool MdsNode::migrate_subtree(FsNode* root, MdsId target) {
  if (outbound_ != nullptr || target == id_ || root == nullptr) return false;
  if (authority_for(root) != id_) return false;
  begin_migration(root, target);
  return outbound_ != nullptr;
}

std::size_t MdsNode::replica_holders(InodeId ino) const {
  const EntryAux* a = cache_.aux_peek(ino);
  return a == nullptr ? 0 : a->replica_holders.size();
}

}  // namespace mdsim

// Metadata server node.
//
// One MdsNode models a complete metadata server (paper section 5.1: "our
// metadata server prototype implements or simulates most features of the
// system design, including metadata updates, callback-based cache
// coherence (within the MDS cluster only), embedded inodes, a two-tiered
// storage mechanism, dynamic subtree partitioning and load balancing, and
// traffic control").
//
// Requests are processed as small continuation-passing state machines: a
// TraversalTask walks the target's prefix chain, filling cache misses
// either from the node's own disk (when this node is the authority) or by
// requesting replicas from the responsible peer; once the chain is
// resident the op-specific handler runs and a reply (with traffic-control
// location hints) is sent.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/metadata_cache.h"
#include "common/fault_log.h"
#include "mds/admission.h"
#include "common/stats.h"
#include "common/types.h"
#include "fstree/tree.h"
#include "mds/dirfrag.h"
#include "mds/messages.h"
#include "mds/params.h"
#include "net/network.h"
#include "sim/queue_server.h"
#include "sim/simulation.h"
#include "storage/anchor_table.h"
#include "storage/disk_model.h"
#include "storage/journal.h"
#include "storage/object_store.h"
#include "strategy/lazy_hybrid.h"
#include "strategy/partition.h"

namespace mdsim {

class MdsNode;

/// Shared cluster-wide state wired up by the cluster builder. The ground
/// truth tree, the tier-2 object pool and the partition map are logically
/// shared (the partition is knowledge every MDS converges on; client
/// ignorance — not MDS ignorance — is the modelled source of misdirection,
/// as in the paper).
struct ClusterContext {
  Simulation& sim;
  Network& net;
  FsTree& tree;
  ObjectStore& store;
  Partitioner& partition;
  DirFragRegistry& dirfrag;
  AnchorTable& anchors;
  LazyHybridManager* lazy = nullptr;  // only for LazyHybrid runs
  StrategyTraits traits;
  MdsParams params;
  int num_mds = 0;
  FaultLog* faults = nullptr;  // failure-lifecycle incident log
  std::vector<MdsNode*> nodes;  // index = MdsId = NetAddr
};

struct MdsStats {
  std::uint64_t requests_received = 0;  // client requests (incl. forwarded)
  std::uint64_t replies_sent = 0;
  std::uint64_t forwards = 0;
  std::uint64_t failures = 0;
  std::uint64_t replica_grants = 0;
  std::uint64_t replica_requests_sent = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t updates_journaled = 0;
  std::uint64_t migrations_out = 0;
  std::uint64_t migrations_in = 0;
  std::uint64_t items_migrated_out = 0;
  std::uint64_t items_migrated_in = 0;
  std::uint64_t migrations_aborted = 0;     // exporter gave up pre-commit
  std::uint64_t migrations_rolled_back = 0; // importer discarded install
  std::uint64_t migration_timeouts = 0;     // watchdog firings
  std::uint64_t peer_down_detections = 0;   // heartbeat-miss declarations
  std::uint64_t takeovers = 0;              // failed peers absorbed
  std::uint64_t takeover_warm_items = 0;    // items installed via 4.6 replay
  std::uint64_t restart_replayed_items = 0; // own-journal items on rejoin
  std::uint64_t replica_fetch_timeouts = 0; // grants that never came
  std::uint64_t attr_gather_timeouts = 0;   // reads resumed without deltas
  std::uint64_t lh_traversal_fixups = 0;
  std::uint64_t attr_local_updates = 0;   // setattrs absorbed at replicas
  std::uint64_t attr_flushes_applied = 0; // delta batches applied as auth
  std::uint64_t attr_callbacks = 0;       // reads that called deltas in

  // Partition tolerance (leases, epochs, quorum takeover).
  std::uint64_t fence_events = 0;           // lease expiries (self-fencing)
  std::uint64_t unfence_events = 0;         // lease renewals after a fence
  std::uint64_t writes_parked_fenced = 0;   // updates parked while fenced
  std::uint64_t stale_epoch_rejects = 0;    // old-regime messages refused
  std::uint64_t takeovers_deferred = 0;     // grace/quorum stalled a sweep
  std::uint64_t reconcile_dropped_items = 0; // cache items shed on rejoin
  std::uint64_t duplicate_updates_dropped = 0;  // request-id dedup hits
  std::uint64_t duplicate_prepares_dropped = 0; // migration dedup hits

  // Overload protection (admission gate; all zero with protection off).
  std::uint64_t requests_shed_queue = 0;     // CPU/disk queue bound hit
  std::uint64_t requests_shed_admission = 0; // token bucket denied
  std::uint64_t requests_shed_deadline = 0;  // dead-on-arrival drops
  std::uint64_t rejects_sent = 0;            // Rejected{retry_after} replies

  // GIGA+ incremental directory splitting.
  std::uint64_t giga_redirects_sent = 0;  // stale-bitmap corrections sent
  std::uint64_t dirfrag_resyncs = 0;      // heartbeat-gen catch-up sweeps

  // Windowed rates, sampled by the metrics collector.
  IntervalRate reply_rate;
  IntervalRate forward_rate;
  IntervalRate request_rate;
  IntervalRate miss_rate;
  IntervalRate shed_rate;
};

class MdsNode final : public NetEndpoint {
 public:
  MdsNode(ClusterContext& ctx, MdsId id);
  ~MdsNode() override;

  MdsNode(const MdsNode&) = delete;
  MdsNode& operator=(const MdsNode&) = delete;

  /// Called once by the cluster builder after every node exists: caches
  /// the root inode (pinned; known to every node) and starts the
  /// heartbeat if this strategy balances load.
  void bootstrap();

  void on_message(NetAddr from, MessagePtr msg) override;
  /// Amortized dispatch for a same-instant delivery batch: contiguous
  /// client-request runs fold their per-message stats counter updates into
  /// one add each; everything else takes the one-message path. Semantics
  /// are identical to delivering the batch one message at a time.
  void on_message_batch(Delivery* items, std::size_t n) override;

  MdsId id() const { return id_; }
  MdsStats& stats() { return stats_; }
  const MetadataCache& cache() const { return cache_; }
  MetadataCache& cache() { return cache_; }
  DiskModel& disk() { return disk_; }
  const BoundedJournal& journal() const { return journal_; }
  double current_load() const { return last_load_; }

  /// Authority for `node`, honouring dynamic directory fragmentation.
  MdsId authority_for(const FsNode* node) const;

  /// True if this node currently believes `ino` is replicated everywhere
  /// (traffic control).
  bool is_replicated_everywhere(InodeId ino) const {
    const EntryAux* a = cache_.aux_peek(ino);
    return a != nullptr && a->replicated_everywhere;
  }

  /// Test hooks.
  std::size_t frozen_subtrees() const { return frozen_.size(); }
  std::size_t deferred_requests() const { return deferred_.size(); }
  /// Subtrees this node imported, with the import time (residency).
  const std::unordered_map<InodeId, SimTime>& imported_subtrees() const {
    return imported_;
  }
  /// Force a migration (tests/examples); returns false if busy/invalid.
  bool migrate_subtree(FsNode* root, MdsId target);
  /// Replica holders registered for an inode this node is authority for.
  std::size_t replica_holders(InodeId ino) const;
  /// Current directory-op temperature (dirfrag criterion) for a dir.
  double dir_op_temperature(InodeId dir, SimTime now) const {
    const EntryAux* a = cache_.aux_peek(dir);
    return (a != nullptr && a->has_dir_temp) ? a->dir_op_temp.get(now) : 0.0;
  }
  /// Whole-directory fetch cost this node would charge for `node` right
  /// now (exercises the dirfrag shard-read accounting).
  std::uint32_t fetch_cost_probe(FsNode* node) { return fetch_cost_nodes(node); }
  /// Run the post-transition dentry shed directly (tests).
  void drop_foreign_dentries_probe(FsNode* dir) { drop_foreign_dentries(dir); }
  std::uint64_t dirfrag_seen_gen() const { return dirfrag_seen_gen_; }
  // ---- failure lifecycle (mds_node.cc, recovery.cc) -----------------------
  /// Mark the node failed (it is also taken off the network by the
  /// cluster). While failed, incoming messages are dropped and the
  /// heartbeat is silent — survivors detect the crash from the silence.
  void set_failed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }
  /// Fail-slow (gray failure) injection: scale this node's CPU and disk
  /// service times. The node keeps serving — slowly — which is exactly
  /// what makes gray failures harder than crashes: heartbeats still flow,
  /// so liveness detection never fires. 1.0/1.0 restores full speed.
  void set_fail_slow(double cpu_mult, double disk_mult) {
    cpu_.set_service_time_multiplier(cpu_mult);
    disk_.set_service_time_multiplier(disk_mult);
  }
  /// Survivors stop considering a downed peer as a migration target.
  void mark_peer_down(MdsId peer);
  void mark_peer_up(MdsId peer);
  /// Restart after a crash (recovery.cc): reset liveness views and stale
  /// protocol state, then replay the bounded journal against the object
  /// store (sequential log read + coalesced writebacks, real disk
  /// latency) and warm the cache with whatever this node still owns.
  /// Serving resumes immediately; `recovering()` is true until the
  /// replay completes.
  void restart();
  bool recovering() const { return recovering_; }
  /// Takeover warm-up (paper section 4.6): replay the failed node's
  /// bounded journal from shared storage and preload this cache with its
  /// working set. One sequential log read plus per-item install cost.
  void warm_from_journal(const std::vector<InodeId>& working_set);
  /// Drop all cache state except the pinned root (cold rejoin after an
  /// outage; the node missed invalidations while it was down).
  void clear_cache_for_rejoin();
  /// Liveness view (tests): does this node currently believe `peer` is up?
  bool peer_alive(MdsId peer) const {
    return peer >= 0 && static_cast<std::size_t>(peer) < peer_alive_.size() &&
           peer_alive_[static_cast<std::size_t>(peer)] != 0;
  }
  // ---- gray-failure health scoring (balancer.cc) ---------------------------
  /// Health score this node holds for `peer`, in ns of estimated lag
  /// (EWMA of the peer's self-reported service lag plus the heartbeat
  /// one-way delay). 0.0 until a scored heartbeat has arrived.
  double peer_health(MdsId peer) const {
    return peer >= 0 && static_cast<std::size_t>(peer) < peer_health_.size()
               ? peer_health_[static_cast<std::size_t>(peer)]
               : 0.0;
  }
  /// Does this node currently consider `peer` gray-degraded?
  bool peer_degraded(MdsId peer) const {
    return peer >= 0 &&
           static_cast<std::size_t>(peer) < peer_degraded_.size() &&
           peer_degraded_[static_cast<std::size_t>(peer)] != 0;
  }
  /// Has this node flagged *itself* (its own score crossed the threshold
  /// in its view of the cluster)? Self-degraded nodes volunteer load away.
  bool self_degraded() const { return peer_degraded(id_); }
  /// Own smoothed service lag (ns) as stamped on outgoing heartbeats.
  double self_health_lag() const { return svc_ewma_self_; }
  // ---- partition tolerance (recovery.cc) ----------------------------------
  /// Lease lost: writes are parked, migrations refused, reads served stale.
  bool fenced() const { return fenced_; }
  /// This node's partition-map view epoch (frozen while fenced).
  std::uint64_t view_epoch() const { return view_epoch_; }
  /// Adopt a newer map epoch (takeover coordinator's MDSMap-style
  /// broadcast; also gossiped on heartbeats). Fenced nodes ignore it —
  /// their view stays frozen until heal-time reconciliation.
  void observe_epoch(std::uint64_t epoch) {
    if (!fenced_ && epoch > view_epoch_) view_epoch_ = epoch;
  }
  /// Update requests parked by the fence (tests).
  std::size_t parked_requests() const { return parked_.size(); }
  /// Takeovers waiting out the grace period (tests).
  std::size_t pending_takeovers() const { return pending_takeover_.size(); }
  /// A double-commit transaction is in flight (tests).
  bool migrating() const {
    return outbound_ != nullptr || inbound_ != nullptr;
  }

  /// In-flight fetch diagnostics (tests).
  std::size_t pending_disk_fetches() const {
    return cache_.inflight_fetches(FetchChannel::kDisk);
  }
  std::size_t pending_replica_fetches() const {
    return cache_.inflight_fetches(FetchChannel::kReplica);
  }
  std::size_t cpu_queue_depth() const { return cpu_.queue_depth(); }
  /// CPU queue observer (depth high-water / mean depth / backlog stats).
  const QueueServer& cpu() const { return cpu_; }
  /// Restart the CPU queue's depth-observation window (warmup boundary).
  void reset_cpu_depth_stats(SimTime now) { cpu_.reset_depth_stats(now); }

 private:
  // ---- request context --------------------------------------------------
  /// One in-flight request's state machine context. Pooled: requests are
  /// recycled through a per-thread free list *without* running their
  /// destructors between uses, so chain/pinned/name keep their heap
  /// capacities and steady-state request dispatch performs no allocation.
  struct Request {
    ClientRequestMsg msg;
    NetAddr reply_to = kInvalidAddr;  // client address
    FsNode* target = nullptr;         // resolved at serve time
    FsNode* secondary = nullptr;
    std::vector<FsNode*> chain;       // root .. parent-of-target
    std::size_t chain_idx = 0;
    std::vector<CacheEntry*> pinned;
    bool counts_as_served = false;
    std::uint32_t refs = 0;          // intrusive count, owned by RequestPtr
    Request* pool_next = nullptr;    // free-list link while recycled
  };

  /// Per-thread recycler for Request contexts. Thread-static (not a node
  /// member) so callbacks still pending in a Simulation at teardown may
  /// release their requests safely regardless of destruction order; a
  /// request freed on a different worker thread than it was acquired on
  /// simply joins that thread's list (the sharded engine's window barrier
  /// orders the handoff).
  struct RequestPool {
    Request* head = nullptr;
    ~RequestPool() {
      while (head != nullptr) {
        Request* next = head->pool_next;
        delete head;
        head = next;
      }
    }
    static RequestPool& local() {
      thread_local RequestPool pool;
      return pool;
    }
  };

  /// shared_ptr stand-in with an intrusive count and pool-recycling
  /// release: the last reference returns the Request to the thread-local
  /// pool instead of the heap.
  class RequestPtr {
   public:
    RequestPtr() = default;
    RequestPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
    RequestPtr(const RequestPtr& o) : p_(o.p_) {
      if (p_ != nullptr) ++p_->refs;
    }
    RequestPtr(RequestPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
    RequestPtr& operator=(const RequestPtr& o) {
      if (p_ != o.p_) {
        reset();
        p_ = o.p_;
        if (p_ != nullptr) ++p_->refs;
      }
      return *this;
    }
    RequestPtr& operator=(RequestPtr&& o) noexcept {
      if (this != &o) {
        reset();
        p_ = o.p_;
        o.p_ = nullptr;
      }
      return *this;
    }
    ~RequestPtr() { reset(); }

    void reset() {
      if (p_ != nullptr && --p_->refs == 0) {
        RequestPool& pool = RequestPool::local();
        p_->pool_next = pool.head;
        pool.head = p_;
      }
      p_ = nullptr;
    }
    Request* get() const { return p_; }
    Request* operator->() const { return p_; }
    Request& operator*() const { return *p_; }
    explicit operator bool() const { return p_ != nullptr; }
    friend bool operator==(const RequestPtr& a, const RequestPtr& b) {
      return a.p_ == b.p_;
    }

   private:
    friend class MdsNode;
    Request* p_ = nullptr;
  };

  /// Acquire a recycled (or fresh) Request with clean state but warm
  /// capacities. msg is *not* fully reset: every call site assigns the
  /// whole ClientRequestMsg immediately after.
  static RequestPtr make_request() {
    RequestPool& pool = RequestPool::local();
    Request* r = pool.head;
    if (r != nullptr) {
      pool.head = r->pool_next;
    } else {
      r = new Request;
    }
    r->reply_to = kInvalidAddr;
    r->target = nullptr;
    r->secondary = nullptr;
    r->chain.clear();
    r->chain_idx = 0;
    r->pinned.clear();
    r->counts_as_served = false;
    r->refs = 1;
    r->pool_next = nullptr;
    RequestPtr p;
    p.p_ = r;
    return p;
  }

  // ---- dispatch (mds_node.cc) -------------------------------------------
  void handle_client_request(ClientRequestMsg msg, NetAddr reply_to);
  void handle_client_request_run(Delivery* items, std::size_t n);
  /// Duplicate-delivery check for updates; records the req id when new.
  bool is_duplicate_update(const ClientRequestMsg& msg);
  /// Overload admission (only consulted when ctx_.params.overload.enabled
  /// and the request is at first entry, hops == 0).
  AdmitVerdict admission_verdict(const ClientRequestMsg& msg);
  /// Account a shed and send the Rejected{retry_after} reply (deadline
  /// drops are silent — that client is already gone). Costs no CPU.
  void shed_request(const ClientRequestMsg& msg, NetAddr reply_to,
                    AdmitVerdict verdict);
  /// Post-dedup tail of request admission: trace, wrap, route.
  void admit_client_request(ClientRequestMsg&& msg, NetAddr reply_to);
  void route(RequestPtr req);
  void serve(RequestPtr req);
  void serve_target(RequestPtr req);
  void finish(RequestPtr req, bool success, InodeId result_ino);
  void fail(RequestPtr req);
  void reply(RequestPtr req, bool success, InodeId result_ino);
  void apply_update(RequestPtr req);
  void pin_entry(RequestPtr req, CacheEntry* e);
  void unpin_all(RequestPtr req);
  void charge_cpu(SimTime amount, InlineTask then);
  void charge_cpu(SimTime amount, TraceSpan span, InlineTask then);

  // ---- latency attribution (src/common/trace.h) ---------------------------
  /// Attribute [record.last, now) to `stage` for a traced request; no-op
  /// when the op carries no trace context (tracing off).
  void trace_mark(const ClientRequestMsg& m, TraceStage stage) {
    if (m.trace != nullptr) m.trace->advance(stage, ctx_.sim.now(), m.req_id);
  }
  /// Queue/service attribution handle for one of this request's resource
  /// visits. Empty (inert) when tracing is off.
  static TraceSpan trace_span(const ClientRequestMsg& m, TraceStage queue,
                              TraceStage service) {
    return TraceSpan{m.trace, m.req_id, queue, service};
  }
  TraceSpan cpu_span(const RequestPtr& req) const {
    return trace_span(req->msg, TraceStage::kCpuQueue,
                      TraceStage::kCpuService);
  }
  TraceSpan disk_span(const RequestPtr& req) const {
    return trace_span(req->msg, TraceStage::kDiskQueue,
                      TraceStage::kDiskService);
  }
  TraceSpan journal_span(const RequestPtr& req) const {
    return trace_span(req->msg, TraceStage::kJournalQueue,
                      TraceStage::kJournalService);
  }

  // ---- traversal engine (traversal.cc) ------------------------------------
  /// Continue walking req->chain from chain_idx; calls serve_target when
  /// the prefix chain is resident and permission-checked.
  void advance_traversal(RequestPtr req);
  /// Ensure `node` (whose parent chain is already cached here) is in the
  /// local cache, fetching from local disk. Calls `done(entry)`;
  /// entry == nullptr means the item vanished meanwhile.
  /// `single_item`: read just the one dentry (a B+tree lookup — used when
  /// serving replica grants) instead of the whole directory object with
  /// embedded-inode prefetch (used when serving requests with locality).
  /// `span`: attribution handle of the request initiating the fetch; when
  /// the fetch coalesces behind one already in flight the span is unused
  /// (joiners attribute their park time at resume instead).
  void fetch_local(FsNode* node, InsertKind kind,
                   std::function<void(CacheEntry*)> done,
                   bool single_item = false, TraceSpan span = {});
  /// Ask `auth` for a replica of `node`; insert and call done.
  void fetch_replica(FsNode* node, MdsId auth, InsertKind kind,
                     std::function<void(CacheEntry*)> done);
  void handle_replica_request(NetAddr from, const ReplicaRequestMsg& m);
  void handle_replica_grant(NetAddr from, const ReplicaGrantMsg& m);
  /// Insert `node` locally with its prefix chain resident; used by the
  /// grant protocol and migration imports. Missing prefixes are filled by
  /// local fetches or replica requests. `have_payload` means the item's
  /// bits arrived over the wire (grant / migration transfer), so the
  /// final insert costs no disk I/O.
  void insert_with_prefixes(FsNode* node, InsertKind kind, bool authoritative,
                            bool have_payload,
                            std::function<void(CacheEntry*)> done);
  /// Insert into the cache, restoring any ancestors that were evicted
  /// while an async fetch was in flight (no new I/O — the bits were just
  /// resident; replicas re-register at their authority as bookkeeping).
  CacheEntry* cache_insert_anchored(FsNode* node, InsertKind kind,
                                    bool authoritative);
  std::uint32_t fetch_cost_nodes(FsNode* node);
  /// Insert every not-yet-cached child of `dir` this node is responsible
  /// for, as prefetched (probation-segment) entries.
  void prefetch_children(FsNode* dir);

  // ---- journal writeback batching (mds_node.cc) ----------------------------
  /// Journal expiry: queue the inode for a coalesced tier-2 writeback.
  void queue_writeback(InodeId ino);
  void flush_writebacks();

  // ---- coherence (coherence.cc) -------------------------------------------
  void register_replica(InodeId ino, MdsId holder);
  void unregister_replica(InodeId ino, MdsId holder);
  void invalidate_replicas(InodeId ino, bool removed);
  void handle_invalidate(const CacheInvalidateMsg& m);
  void handle_replica_drop(NetAddr from, const ReplicaDropMsg& m);
  void on_cache_evict(const CacheEntry& e);

  // ---- balancer (balancer.cc) ---------------------------------------------
  void start_heartbeat();
  void heartbeat_tick();
  double compute_load();
  void handle_heartbeat(const HeartbeatMsg& m);
  void maybe_rebalance();
  /// Gray-failure detection sweep, run on the heartbeat when
  /// params.health.enabled: refresh the self-measured service lag EWMA,
  /// then compare every alive peer's score against the cluster median and
  /// flag/unflag with hysteresis (first detector opens the incident).
  void health_tick(SimTime now);
  FsNode* pick_export_subtree(double excess_fraction);
  /// Additional subtrees a self-degraded volunteer ships alongside the
  /// primary pick, hottest first, non-overlapping, capped by
  /// health.evacuation_max_roots. Empty for healthy-path balancing.
  std::vector<FsNode*> pick_evacuation_extras(FsNode* primary);
  void bump_subtree_load(const FsNode* node);

  // ---- migration (migration.cc) ---------------------------------------------
  bool subtree_frozen(const FsNode* node) const;
  void defer(RequestPtr req);
  void flush_deferred();
  void begin_migration(FsNode* root, MdsId target,
                       std::vector<FsNode*> extra_roots = {});
  void handle_migrate_prepare(NetAddr from, const MigratePrepareMsg& m);
  /// Anchor the next unanchored extra root of the inbound batch (resuming
  /// at InboundMigration::anchor_next); installs the items and acks once
  /// every root is anchored. Any anchor failure fails the whole
  /// transaction — the exporter keeps authority over every root, so a
  /// partial install must never ack.
  void continue_inbound_anchoring(std::uint64_t mig_id,
                                  std::shared_ptr<std::vector<InodeId>> items);
  void handle_migrate_ack(NetAddr from, const MigrateAckMsg& m);
  void handle_migrate_commit(NetAddr from, const MigrateCommitMsg& m);
  void handle_migrate_abort(const MigrateAbortMsg& m);
  /// Exporter gives up on an unacked migration: unfreeze, drain deferred
  /// requests, tell the importer to roll back. Safe because the partition
  /// map has not flipped — this node never stopped being the authority.
  void abort_outbound_migration();
  /// Importer resolves a migration whose commit never arrived by
  /// consulting the shared partition map: if the map says this node, the
  /// exporter passed the commit point before dying — finalize; otherwise
  /// roll back the installed state.
  void resolve_inbound_migration();

  // ---- failure detection & recovery (recovery.cc) ---------------------------
  /// Heartbeat-piggybacked watchdog sweep: peer liveness, migration
  /// deadlines, wedged replica fetches, stale attr gathers. Costs nothing
  /// while everything is healthy (all checks are reads that find nothing).
  void failure_tick(SimTime now);
  void check_peer_liveness(SimTime now);
  void on_peer_detected_down(MdsId peer);
  /// Redistribute a dead peer's delegations to the survivors and (warm
  /// takeover) replay its journal into the heirs. Run by the lowest live
  /// id; a no-op if another coordinator already handled it.
  void take_over_failed_peer(MdsId dead);

  // ---- partition tolerance (recovery.cc) -----------------------------------
  /// Lease/quorum machinery is active only where it can work: subtree
  /// strategies with heartbeats and enough nodes for a strict majority.
  bool partition_safety_on() const {
    return subtree_map_ != nullptr && ctx_.params.partition_safety &&
           ctx_.params.failure_detection && ctx_.traits.load_balancing &&
           ctx_.num_mds >= 3;
  }
  /// Peers whose latest heard heartbeat (within the lease window) listed
  /// us alive, plus self. A strict majority keeps the lease.
  int quorum_ackers(SimTime now) const;
  void evaluate_lease(SimTime now);
  void fence();
  void unfence_and_reconcile();
  /// Executed on the watchdog: cancel takeovers whose peer came back,
  /// then — quorum permitting, grace elapsed, lowest live id — re-delegate.
  void sweep_pending_takeovers(SimTime now);
  /// Park an update while fenced (re-routed on unfence).
  void park(RequestPtr req);
  /// Authority as this node sees it: the shared map, unless our view is
  /// behind (fenced or not-yet-gossiped), in which case the map as of our
  /// frozen epoch.
  MdsId map_authority(const FsNode* node) const;

  // ---- traffic control (traffic_control.cc) ---------------------------------
  void note_popularity(RequestPtr req);
  void maybe_replicate(FsNode* node, CacheEntry* entry);
  void maybe_unreplicate();
  void push_unsolicited_replica(FsNode* node, MdsId to);
  void fill_hints(const RequestPtr& req, ClientReplyMsg& out);
  void maybe_fragment_dir(FsNode* dir, CacheEntry* entry);
  void handle_dirfrag_notify(const DirFragNotifyMsg& m);
  /// Drop cached children of `dir` whose dentry authority is no longer
  /// this node (after a fragment/unfragment transition).
  void drop_foreign_dentries(FsNode* dir);
  /// Exact per-partition bookkeeping at the node applying a namespace
  /// op: count delta, partition heat, and (on a create) the split check.
  void giga_note_namespace_op(FsNode* dir, const std::string& name,
                              int delta);
  /// Split the partition `name` hashes into if it crossed its threshold
  /// (runs at the node that just applied a create into it).
  void maybe_split_partition(FsNode* dir, const std::string& name);
  /// Giga merge policy: fold cold leaf partitions back, one per sweep,
  /// and unhash once fully merged and cold (home node only).
  void maybe_merge_partitions(FsNode* dir);
  void broadcast_dirfrag_notify(InodeId dir, bool fragmented);
  /// Heartbeat carried a newer registry generation than we've applied:
  /// re-run drop_foreign_dentries over every directory changed since.
  void dirfrag_resync(std::uint64_t peer_gen);
  /// Reply to a mis-routed dentry op with the fresh bitmap (then the
  /// caller still forwards the op).
  void send_giga_redirect(const ClientRequestMsg& m, InodeId dir);

  // ---- distributed attribute updates (attr_updates.cc) ---------------------
  /// Absorb a setattr at a replica holder (GPFS-style, section 4.2);
  /// returns false if the normal authority path must be taken.
  bool try_local_attr_update(RequestPtr req);
  void schedule_attr_flush();
  void flush_attr_updates();
  void flush_attr_updates_for(InodeId ino);
  void handle_attr_dirty(NetAddr from, const AttrDirtyMsg& m);
  void handle_attr_flush(NetAddr from, const AttrFlushMsg& m);
  void handle_attr_callback(const AttrCallbackMsg& m);
  /// Authority read path: if remote deltas are outstanding, call them in
  /// and park the request; returns true if parked.
  bool gather_remote_attrs(RequestPtr req);
  void resume_attr_waiters(InodeId ino);

  // ---- LH (traversal.cc) ------------------------------------------------------
  void handle_lh_update(const LazyHybridUpdateMsg& m);
  void lh_drain_tick();

  ClusterContext& ctx_;
  MdsId id_;
  QueueServer cpu_;
  DiskModel disk_;
  MetadataCache cache_;
  BoundedJournal journal_;
  MdsStats stats_;
  /// Overload admission token bucket (inert unless overload.enabled).
  TokenBucket admit_bucket_;

  // Per-inode protocol state (fetch coalescing, replica registry,
  // traffic-control replication, dirfrag temperature, pending attr
  // deltas) lives in the cache's EntryAux sidecar, reached through the
  // same index probe as the entry itself.

  // Balancer state.
  std::vector<double> peer_loads_;
  double last_load_ = 0.0;
  SimTime last_migration_ = 0;
  std::uint64_t bal_prev_replies_ = 0;
  std::uint64_t bal_prev_misses_ = 0;
  SimTime bal_prev_time_ = 0;
  SimTime bal_prev_cpu_busy_ = 0;
  SimTime bal_prev_disk_busy_ = 0;
  std::unordered_map<InodeId, SimTime> imported_;  // root ino -> import time
  std::unordered_map<InodeId, DecayCounter> subtree_load_;

  // Migration state. Both sides carry a deadline checked on the heartbeat
  // (no per-migration timer events, so healthy runs are untouched).
  struct OutboundMigration {
    std::uint64_t id;
    InodeId root;
    /// Extra subtree roots in the same transaction (volunteer evacuation).
    std::vector<InodeId> extra_roots;
    MdsId target;
    std::vector<InodeId> items;
    SimTime deadline = 0;
  };
  /// Importer-side record of an unfinished double-commit: kept from the
  /// prepare until the commit (or abort / timeout resolution), so a dead
  /// exporter can never strand half-installed authoritative state.
  struct InboundMigration {
    std::uint64_t id;
    MdsId exporter;
    InodeId root;
    /// Extra subtree roots in the same transaction (volunteer evacuation).
    std::vector<InodeId> extra_roots;
    /// Next extra root whose prefix chain still needs anchoring (the
    /// anchors may fetch, so the batch is walked asynchronously).
    std::size_t anchor_next = 0;
    std::vector<InodeId> items;
    SimTime deadline = 0;
  };
  std::unordered_set<InodeId> frozen_;
  std::deque<RequestPtr> deferred_;
  std::unique_ptr<OutboundMigration> outbound_;
  std::unique_ptr<InboundMigration> inbound_;
  std::uint64_t next_migration_id_ = 1;
  std::uint64_t next_xid_ = 1;
  double lh_drain_carry_ = 0.0;  // fractional drain budget between ticks

  bool failed_ = false;
  bool recovering_ = false;

  // Peer liveness, derived from heartbeat arrivals (survivors detect a
  // dead peer from silence; the first heartbeat heard marks it back up).
  std::vector<std::uint8_t> peer_alive_;
  std::vector<SimTime> peer_last_hb_;

  // Gray-failure health scores (empty vectors unless params.health.enabled;
  // sized lazily on the first heartbeat tick so disabled runs allocate
  // nothing). peer_health_[p] is the EWMA'd lag score for peer p (own
  // slot scored from local backlog); peer_degraded_[p] is the hysteresis
  // flag. svc_ewma_self_ is the self-measured service lag stamped on
  // outgoing heartbeats.
  std::vector<double> peer_health_;
  std::vector<std::uint8_t> peer_degraded_;
  double svc_ewma_self_ = 0.0;

  // Highest dirfrag-registry generation this node has applied (its own
  // transitions and notifies count only via the heartbeat catch-up; see
  // dirfrag_resync()).
  std::uint64_t dirfrag_seen_gen_ = 0;

  // Partition tolerance. The subtree map (null for hash strategies), this
  // node's frozen-while-fenced view of its epoch, and the authority lease:
  // peer_ack_time_[p] is the last time peer p's heartbeat listed us alive.
  SubtreePartition* subtree_map_ = nullptr;
  std::uint64_t view_epoch_ = 1;
  bool fenced_ = false;
  std::vector<SimTime> peer_ack_time_;
  /// Updates parked while fenced; re-routed when the lease renews.
  std::deque<RequestPtr> parked_;
  /// Detected-down peers awaiting quorum-gated takeover: peer -> earliest
  /// re-delegation time (detection + takeover_grace).
  std::unordered_map<MdsId, SimTime> pending_takeover_;
  /// Duplicate-delivery dedup: highest update req_id seen per client
  /// address (ids are per-client monotone and retries re-issue under
  /// fresh ids, so an id at or below the high-water mark is an exact
  /// network duplicate). Checked only at network entry, so internal
  /// re-routing (deferred / parked requests) is never miscounted.
  /// Local (dense) addresses index the vector directly; cross-shard
  /// global addresses use the sparse fallback map.
  std::vector<std::uint64_t> seen_update_req_;
  std::unordered_map<NetAddr, std::uint64_t> seen_update_req_global_;
  /// Highest resolved inbound migration id per exporter (dedup for
  /// duplicated prepares arriving after the migration finished).
  std::unordered_map<MdsId, std::uint64_t> inbound_done_;

  // Replica fetches with a grant outstanding: ino -> give-up deadline.
  // Swept on the heartbeat; entries are erased when the grant arrives.
  std::unordered_map<InodeId, SimTime> replica_fetch_deadline_;

  // Distributed attribute updates (section 4.2). Pending delta counts
  // (replica side) and dirty-holder sets (authority side) live in the
  // EntryAux sidecar; only the parked requests stay here (they hold a
  // private RequestPtr type).
  bool attr_flush_scheduled_ = false;
  /// Reads parked while deltas are called in, stamped so the heartbeat
  /// sweep can resume them if a flush is lost (the scheme tolerates
  /// monotone-stale attributes by design).
  struct AttrGather {
    SimTime since = 0;
    std::vector<RequestPtr> reqs;
  };
  std::unordered_map<InodeId, AttrGather> attr_waiters_;

  // Coalesced tier-2 writebacks: expired journal entries grouped by their
  // containing directory (shared B+tree nodes make one object write per
  // dirty directory, not one transaction per entry — section 4.6).
  std::unordered_map<InodeId, std::uint32_t> writeback_dirs_;
  bool writeback_flush_scheduled_ = false;
};

}  // namespace mdsim

// Concrete wire messages of the MDS protocol.
//
// Requests reference file-system items by inode id (plus a parent/name pair
// for creates); receivers re-resolve ids against the ground-truth tree so a
// racing unlink simply fails the request instead of dereferencing a dead
// node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/inline_vec.h"
#include "common/types.h"
#include "net/message.h"

namespace mdsim {

struct TraceRecord;

/// Where the client should send future requests for an item (traffic
/// control, paper section 4.4: "all responses sent to clients include
/// current distribution information ... for the metadata requested and
/// their prefix directories").
struct LocationHint {
  InodeId ino = kInvalidInode;
  MdsId authority = kInvalidMds;
  /// Popular item: replicated widely; pick any node.
  bool replicated_everywhere = false;
};

struct ClientRequestMsg final : Message {
  ClientRequestMsg() : Message(MsgType::kClientRequest, 96) {}
  MessagePtr clone() const override { return std::make_unique<ClientRequestMsg>(*this); }

  std::uint64_t req_id = 0;
  ClientId client = kInvalidClient;
  NetAddr client_addr = kInvalidAddr;
  OpType op = OpType::kStat;
  std::uint32_t uid = 0;

  /// Target item (existing-item ops). For create/mkdir: the parent dir.
  InodeId target = kInvalidInode;
  /// Secondary: rename destination dir / link dir.
  InodeId secondary = kInvalidInode;
  /// New entry name (create/mkdir/rename/link).
  std::string name;

  /// Forwarding trail (for statistics + loop suppression).
  std::uint8_t hops = 0;
  /// Retry number (0 = fresh). Saturates at 255; the admission gate only
  /// distinguishes fresh from retried.
  std::uint8_t attempt = 0;
  /// 1 on the backup copy of a hedged read (hedge_policy.h). Echoed on
  /// the reply so the client can attribute which copy won; servers treat
  /// both copies identically otherwise.
  std::uint8_t hedge = 0;
  /// Client-side deadline (issue time + request timeout). A server past
  /// this time knows the client has already timed out and will discard
  /// the reply as stale — overload admission drops such requests instead
  /// of serving dead work. 0 = no deadline (and when overload protection
  /// is off the field is never read, keeping fig runs byte-identical).
  SimTime deadline = 0;

  /// Latency-attribution context, owned by the issuing client (null when
  /// tracing is off). Not a wire field: the simulator shortcut for a
  /// trace id that real systems would carry in the header. Clones
  /// (network duplication) share the record; the record's request-id
  /// guard keeps stale instances from attributing.
  TraceRecord* trace = nullptr;
};

struct ClientReplyMsg final : Message {
  ClientReplyMsg() : Message(MsgType::kClientReply, 128) {}
  MessagePtr clone() const override { return std::make_unique<ClientReplyMsg>(*this); }

  std::uint64_t req_id = 0;
  bool success = false;
  /// The server that ultimately served the request.
  MdsId served_by = kInvalidMds;
  std::uint8_t hops = 0;
  /// Echo of ClientRequestMsg::hedge: this reply answers the backup copy.
  std::uint8_t hedge = 0;
  /// Inode created/affected (so the client can learn about new items).
  InodeId result_ino = kInvalidInode;
  /// Server's partition-map epoch. A jump tells the client the authority
  /// layout was reconfigured (takeover/heal): drop learned locations.
  std::uint64_t epoch = 1;
  /// Overload rejection: the request was shed at admission, not served.
  /// `success` is false; the client should back off `retry_after` before
  /// retrying (and the retry counts against its budget).
  bool rejected = false;
  SimTime retry_after = 0;
  /// Hints for the target and its prefixes, root-down. Inline up to
  /// typical path depths: replies are the most numerous message in the
  /// system and must not drag a heap allocation each.
  InlineVec<LocationHint, 12> hints;
  /// GIGA+ piggyback: split bitmap of the deepest fragmented directory on
  /// the reply's path (clients cache it and route dentry ops straight to
  /// the owning partition). giga_dir == kInvalidInode when no directory
  /// on the path is giga-fragmented; a valid dir with giga_bitmap == 0
  /// tells the client the directory was unhashed — drop the cached map.
  /// Modeled wire size unchanged: the bitmap rides in reply slack.
  InodeId giga_dir = kInvalidInode;
  std::uint64_t giga_bitmap = 0;
  MdsId giga_home = kInvalidMds;
};

/// MDS-to-MDS: carry a client request to the authoritative node.
struct ForwardMsg final : Message {
  ForwardMsg() : Message(MsgType::kForwardedRequest, 112) {}
  MessagePtr clone() const override { return std::make_unique<ForwardMsg>(*this); }
  ClientRequestMsg inner;
};

/// Ask the authority for a (prefix) inode replica.
struct ReplicaRequestMsg final : Message {
  ReplicaRequestMsg() : Message(MsgType::kReplicaRequest, 48) {}
  MessagePtr clone() const override { return std::make_unique<ReplicaRequestMsg>(*this); }
  InodeId ino = kInvalidInode;
  std::uint64_t xid = 0;  // matches request to grant at the requester
};

struct ReplicaGrantMsg final : Message {
  ReplicaGrantMsg() : Message(MsgType::kReplicaGrant, 96) {}
  MessagePtr clone() const override { return std::make_unique<ReplicaGrantMsg>(*this); }
  InodeId ino = kInvalidInode;
  std::uint64_t xid = 0;   // 0 for unsolicited (traffic-control) grants
  bool unsolicited = false;
  std::uint64_t version = 0;
};

/// Replica holder discarded its copy (cache eviction), releasing the
/// authority from sending further invalidations.
struct ReplicaDropMsg final : Message {
  ReplicaDropMsg() : Message(MsgType::kReplicaDrop, 32) {}
  MessagePtr clone() const override { return std::make_unique<ReplicaDropMsg>(*this); }
  InodeId ino = kInvalidInode;
};

/// Authority tells replica holders an item changed (or vanished).
struct CacheInvalidateMsg final : Message {
  CacheInvalidateMsg() : Message(MsgType::kCacheInvalidate, 48) {}
  MessagePtr clone() const override { return std::make_unique<CacheInvalidateMsg>(*this); }
  InodeId ino = kInvalidInode;
  bool removed = false;  // unlink/rmdir vs attribute update
  /// Rename of a directory: receivers must drop every cached descendant
  /// (their position — and under hashing, their location — changed).
  bool whole_subtree = false;
  std::uint64_t version = 0;
  /// Sender's map epoch; receivers drop invalidations from a superseded
  /// regime (a fenced node's coherence traffic must not land).
  std::uint64_t epoch = 1;
};

/// Periodic load exchange for the balancer (paper section 4.3).
struct HeartbeatMsg final : Message {
  HeartbeatMsg() : Message(MsgType::kHeartbeat, 40) {}
  MessagePtr clone() const override { return std::make_unique<HeartbeatMsg>(*this); }
  MdsId sender = kInvalidMds;
  double load = 0.0;
  /// Sender's partition-map view epoch (gossiped; receivers adopt the max).
  std::uint64_t epoch = 1;
  /// Bitmask of nodes the sender currently believes alive (bit i of word
  /// i/64 = MDS i). A receiver renews its authority lease only on
  /// heartbeats whose mask lists it — under an asymmetric cut, hearing
  /// the majority is not enough; the majority must still be hearing *us*.
  std::vector<std::uint64_t> alive_mask;
  /// Sender's dirfrag-registry generation. A receiver that lags re-syncs
  /// (re-runs drop_foreign_dentries over changed directories), healing
  /// DirFragNotify messages lost to link faults or partitions.
  std::uint64_t dirfrag_gen = 0;
  /// Gray-failure health piggyback (zero extra events: these ride the
  /// heartbeat that was going out anyway). `sent_at` lets the receiver
  /// measure one-way delivery lag; `svc_lag` is the sender's self-measured
  /// service backlog (CPU + store, ns). Both stay 0 unless
  /// HealthParams::enabled, keeping healthy runs byte-identical.
  SimTime sent_at = 0;
  SimTime svc_lag = 0;
  bool lists_alive(MdsId id) const {
    const auto w = static_cast<std::size_t>(id) / 64;
    return w < alive_mask.size() &&
           (alive_mask[w] >> (static_cast<std::size_t>(id) % 64)) & 1u;
  }
};

/// Double-commit subtree migration (paper section 4.3): prepare carries
/// the full active state; the importer acks; the exporter commits.
struct MigratePrepareMsg final : Message {
  MigratePrepareMsg() : Message(MsgType::kMigratePrepare, 256) {}
  MessagePtr clone() const override { return std::make_unique<MigratePrepareMsg>(*this); }
  std::uint64_t migration_id = 0;
  InodeId subtree_root = kInvalidInode;
  /// Exporter's map epoch when the migration was proposed; importers
  /// reject prepares from a superseded regime.
  std::uint64_t epoch = 1;
  /// Cached items transferred (ids; resolved at the importer). Ordered
  /// parents-before-children so importer inserts preserve the cache tree
  /// invariant.
  std::vector<InodeId> items;
  /// Additional subtree roots riding in the same transaction. Empty for
  /// ordinary balancing; a self-degraded volunteer evacuates several
  /// trees per journal round-trip (see HealthParams::evacuation_max_roots).
  std::vector<InodeId> extra_roots;
};

struct MigrateAckMsg final : Message {
  MigrateAckMsg() : Message(MsgType::kMigrateAck, 32) {}
  MessagePtr clone() const override { return std::make_unique<MigrateAckMsg>(*this); }
  std::uint64_t migration_id = 0;
  bool accepted = true;
  /// Importer's map epoch; the exporter ignores acks from an old regime.
  std::uint64_t epoch = 1;
};

struct MigrateCommitMsg final : Message {
  MigrateCommitMsg() : Message(MsgType::kMigrateCommit, 32) {}
  MessagePtr clone() const override { return std::make_unique<MigrateCommitMsg>(*this); }
  std::uint64_t migration_id = 0;
  InodeId subtree_root = kInvalidInode;
};

/// Exporter cancels a migration whose ack never arrived (timeout, or the
/// importer was detected down). The importer rolls back any installed
/// state; the partition map never flipped, so the exporter keeps serving.
struct MigrateAbortMsg final : Message {
  MigrateAbortMsg() : Message(MsgType::kMigrateAbort, 32) {}
  MessagePtr clone() const override { return std::make_unique<MigrateAbortMsg>(*this); }
  std::uint64_t migration_id = 0;
};

/// Lazy Hybrid background update: refresh one file's dual-entry ACL /
/// placement (one network trip per affected file, section 3.1.3).
struct LazyHybridUpdateMsg final : Message {
  LazyHybridUpdateMsg() : Message(MsgType::kLazyHybridUpdate, 48) {}
  MessagePtr clone() const override { return std::make_unique<LazyHybridUpdateMsg>(*this); }
  InodeId ino = kInvalidInode;
};

/// GPFS-style distributed attribute updates (paper section 4.2): replicas
/// absorb monotone attribute writes (mtime/size) locally and ship them to
/// the authority periodically; reads at the authority call the deltas in.
struct AttrDirtyMsg final : Message {
  AttrDirtyMsg() : Message(MsgType::kAttrDirty, 32) {}
  MessagePtr clone() const override { return std::make_unique<AttrDirtyMsg>(*this); }
  InodeId ino = kInvalidInode;
};

struct AttrFlushMsg final : Message {
  AttrFlushMsg() : Message(MsgType::kAttrFlush, 48) {}
  MessagePtr clone() const override { return std::make_unique<AttrFlushMsg>(*this); }
  InodeId ino = kInvalidInode;
  std::uint32_t updates = 0;  // absorbed local writes being shipped
};

struct AttrCallbackMsg final : Message {
  AttrCallbackMsg() : Message(MsgType::kAttrCallback, 32) {}
  MessagePtr clone() const override { return std::make_unique<AttrCallbackMsg>(*this); }
  InodeId ino = kInvalidInode;
};

/// Announce that a directory was fragmented (hashed) across the cluster or
/// consolidated back (paper section 4.3).
struct DirFragNotifyMsg final : Message {
  DirFragNotifyMsg() : Message(MsgType::kDirFragNotify, 40) {}
  MessagePtr clone() const override { return std::make_unique<DirFragNotifyMsg>(*this); }
  InodeId dir = kInvalidInode;
  bool fragmented = true;
  /// Split bitmap and registry generation as of the transition. The
  /// notify is best-effort (single-shot, unacked); the generation on
  /// balancer heartbeats is what guarantees eventual re-sync.
  std::uint64_t bitmap = 0;
  std::uint64_t gen = 0;
};

/// Correction for a mis-routed dentry op: the receiver's cached split
/// bitmap for `dir` is stale. The server still forwards the op to the
/// right partition (bounded hops); the client learns the fresh bitmap so
/// the redirect rate decays to zero after the last split.
struct GigaRedirectMsg final : Message {
  GigaRedirectMsg() : Message(MsgType::kGigaRedirect, 40) {}
  MessagePtr clone() const override { return std::make_unique<GigaRedirectMsg>(*this); }
  InodeId dir = kInvalidInode;
  std::uint64_t bitmap = 0;
  MdsId home = kInvalidMds;
};

}  // namespace mdsim

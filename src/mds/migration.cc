// Double-commit subtree migration (paper section 4.3): "busy nodes can
// identify portions of the hierarchy that are appropriately popular and
// initiate a double-commit transaction to transfer authority to non-busy
// nodes. During this exchange all active state and cached metadata are
// transferred to the newly authoritative node ... to avoid the disk I/O
// that would otherwise be required."
//
// Protocol: exporter journals its intent and freezes the subtree
// (requests defer), sends Prepare with the cached item set; the importer
// records the inbound transaction, installs the state (anchoring the
// subtree root's prefix inodes first) and Acks; the exporter flips the
// partition map (THE commit point), journals completion, drops its
// copies, flushes deferred requests, and Commits to the importer.
//
// Crash consistency: either side dying at any step leaves exactly one
// authority. Before the partition flip the exporter never stopped being
// the authority — an exporter timeout/death aborts and the importer rolls
// its installed copy back. After the flip the importer owns the subtree
// whether or not the Commit arrives — an importer that stops hearing from
// the exporter consults the shared partition map (the cluster's ground
// truth, per the paper's "all metadata servers converge on the partition")
// and either finalizes or rolls back accordingly. Deadlines are swept by
// the heartbeat tick (failure_tick), so no timer events exist in healthy
// runs.
#include <algorithm>
#include <cassert>

#include "mds/mds_node.h"

namespace mdsim {

bool MdsNode::subtree_frozen(const FsNode* node) const {
  if (frozen_.empty()) return false;
  for (const FsNode* n = node; n != nullptr; n = n->parent()) {
    if (frozen_.count(n->ino()) != 0) return true;
  }
  return false;
}

void MdsNode::defer(RequestPtr req) { deferred_.push_back(std::move(req)); }

void MdsNode::flush_deferred() {
  std::deque<RequestPtr> pending;
  pending.swap(deferred_);
  for (auto& req : pending) {
    // The whole freeze window was spent stalled behind the migration.
    trace_mark(req->msg, TraceStage::kStallWait);
    // Re-route: the partition changed, so these will typically forward.
    route(std::move(req));
  }
}

void MdsNode::begin_migration(FsNode* root, MdsId target,
                              std::vector<FsNode*> extra_roots) {
  assert(outbound_ == nullptr);
  if (fenced_) return;  // no lease, no authority transfers
  // Collect cached authoritative state under the batch's subtrees, parents
  // first so the importer's inserts respect its cache tree invariant.
  // (Ordinary balancing ships one subtree; a self-degraded volunteer rides
  // several non-overlapping roots on the same transaction so the intent
  // append below — queued on the very disk that made it sick — is paid
  // once per batch.)
  std::vector<CacheEntry*> collected;
  cache_.for_each([&](CacheEntry& e) {
    if (!e.authoritative) return;
    if (FsTree::is_ancestor_of(root, e.node)) {
      collected.push_back(&e);
      return;
    }
    for (FsNode* r : extra_roots) {
      if (FsTree::is_ancestor_of(r, e.node)) {
        collected.push_back(&e);
        return;
      }
    }
  });
  if (collected.size() < ctx_.params.min_migration_items) return;
  std::sort(collected.begin(), collected.end(),
            [](const CacheEntry* a, const CacheEntry* b) {
              return a->node->depth() < b->node->depth();
            });

  outbound_ = std::make_unique<OutboundMigration>();
  outbound_->id = next_migration_id_++;
  outbound_->root = root->ino();
  for (FsNode* r : extra_roots) outbound_->extra_roots.push_back(r->ino());
  outbound_->target = target;
  outbound_->deadline = ctx_.sim.now() + ctx_.params.migration_timeout;
  outbound_->items.reserve(collected.size());
  for (CacheEntry* e : collected) outbound_->items.push_back(e->node->ino());

  frozen_.insert(root->ino());
  for (FsNode* r : extra_roots) frozen_.insert(r->ino());

  auto msg = std::make_unique<MigratePrepareMsg>();
  msg->migration_id = outbound_->id;
  msg->subtree_root = outbound_->root;
  msg->extra_roots = outbound_->extra_roots;
  msg->epoch = view_epoch_;
  msg->items = outbound_->items;
  msg->size_bytes =
      static_cast<std::uint32_t>(64 + 48 * outbound_->items.size());

  // Journal the migration intent before anything leaves this node, so a
  // restart replays a record of the half-open transaction (the bounded
  // log is on shared storage; survivors resolve against the partition
  // map, which only flips at the commit point below).
  const std::uint64_t mig_id = outbound_->id;
  journal_.append(outbound_->root);
  for (InodeId r : outbound_->extra_roots) journal_.append(r);
  const MdsId target_copy = target;
  disk_.journal_append([this, mig_id, target_copy, m = std::move(msg)]() mutable {
    if (outbound_ == nullptr || outbound_->id != mig_id) return;  // aborted
    const SimTime pack_cost =
        ctx_.params.cpu_migrate_per_item * outbound_->items.size();
    charge_cpu(pack_cost, [this, mig_id, target_copy, m = std::move(m)]() mutable {
      if (outbound_ == nullptr || outbound_->id != mig_id) return;
      ctx_.net.send(id_, target_copy, std::move(m));
    });
  });
}

void MdsNode::handle_migrate_prepare(NetAddr from, const MigratePrepareMsg& m) {
  const MdsId exporter = from;
  const std::uint64_t mig_id = m.migration_id;

  auto send_ack = [this, exporter, mig_id](bool accepted) {
    auto ack = std::make_unique<MigrateAckMsg>();
    ack->migration_id = mig_id;
    ack->accepted = accepted;
    ack->epoch = view_epoch_;
    ctx_.net.send(id_, exporter, std::move(ack));
  };

  if (m.epoch < view_epoch_) {
    // Proposed under a superseded regime (the exporter was fenced across a
    // reconfiguration, or the prepare crossed an epoch bump in flight).
    // Refusing is always safe: the map has not flipped for this id.
    ++stats_.stale_epoch_rejects;
    send_ack(false);
    return;
  }
  if (fenced_) {
    send_ack(false);  // cannot accept authority without a lease
    return;
  }
  if (inbound_ != nullptr) {
    if (inbound_->id == mig_id && inbound_->exporter == exporter) {
      return;  // duplicate prepare (network duplication); already installing
    }
    send_ack(false);  // one inbound transaction at a time
    return;
  }
  if (auto it = inbound_done_.find(exporter);
      it != inbound_done_.end() && mig_id <= it->second) {
    // Duplicate of a migration already resolved (committed or rolled
    // back). Re-installing would double-flip state; drop it — the
    // exporter's side of id `mig_id` is long settled.
    ++stats_.duplicate_prepares_dropped;
    return;
  }

  // Record the transaction before the (time-consuming) unpack, so a
  // watchdog or exporter-death during install resolves it instead of
  // leaking half the state.
  inbound_ = std::make_unique<InboundMigration>();
  inbound_->id = mig_id;
  inbound_->exporter = exporter;
  inbound_->root = m.subtree_root;
  inbound_->extra_roots = m.extra_roots;
  inbound_->items = m.items;
  inbound_->deadline = ctx_.sim.now() + ctx_.params.migration_timeout;

  auto items = std::make_shared<std::vector<InodeId>>(m.items);
  const InodeId root_ino = m.subtree_root;

  const SimTime unpack_cost = ctx_.params.cpu_migrate_per_item * items->size();
  charge_cpu(unpack_cost, [this, mig_id, root_ino, items]() {
    if (inbound_ == nullptr || inbound_->id != mig_id) return;  // resolved
    // Rebuild the ack closure from the inbound record (keeps the CPU
    // continuation inside InlineTask's inline-capture budget).
    auto send_ack = [this, exporter = inbound_->exporter, mig_id](bool ok) {
      auto ack = std::make_unique<MigrateAckMsg>();
      ack->migration_id = mig_id;
      ack->accepted = ok;
      ack->epoch = view_epoch_;
      ctx_.net.send(id_, exporter, std::move(ack));
    };
    FsNode* root = ctx_.tree.by_ino(root_ino);
    if (root == nullptr) {
      inbound_done_[inbound_->exporter] =
          std::max(inbound_done_[inbound_->exporter], mig_id);
      inbound_.reset();
      send_ack(false);
      return;
    }
    // Anchor the subtree root's prefix inodes (the per-delegation overhead
    // the paper notes: "the authority must cache the containing directory
    // (prefix) inodes for each of its subtrees"), then walk any batch
    // extras' anchors, then install the transferred state (see
    // continue_inbound_anchoring).
    insert_with_prefixes(
        root, InsertKind::kDemand, /*authoritative=*/true,
        /*have_payload=*/true, [this, mig_id, items](CacheEntry* anchor) {
          if (inbound_ == nullptr || inbound_->id != mig_id) return;
          if (anchor == nullptr) {
            auto send_ack = [this, exporter = inbound_->exporter,
                             mig_id](bool ok) {
              auto ack = std::make_unique<MigrateAckMsg>();
              ack->migration_id = mig_id;
              ack->accepted = ok;
              ack->epoch = view_epoch_;
              ctx_.net.send(id_, exporter, std::move(ack));
            };
            inbound_done_[inbound_->exporter] =
                std::max(inbound_done_[inbound_->exporter], mig_id);
            inbound_.reset();
            send_ack(false);
            return;
          }
          continue_inbound_anchoring(mig_id, items);
        });
  });
}

void MdsNode::continue_inbound_anchoring(
    std::uint64_t mig_id, std::shared_ptr<std::vector<InodeId>> items) {
  if (inbound_ == nullptr || inbound_->id != mig_id) return;
  auto send_ack = [this, exporter = inbound_->exporter, mig_id](bool ok) {
    auto ack = std::make_unique<MigrateAckMsg>();
    ack->migration_id = mig_id;
    ack->accepted = ok;
    ack->epoch = view_epoch_;
    ctx_.net.send(id_, exporter, std::move(ack));
  };
  while (inbound_->anchor_next < inbound_->extra_roots.size()) {
    const InodeId rino = inbound_->extra_roots[inbound_->anchor_next];
    ++inbound_->anchor_next;
    FsNode* r = ctx_.tree.by_ino(rino);
    if (r == nullptr) continue;  // whole tree unlinked in flight
    insert_with_prefixes(
        r, InsertKind::kDemand, /*authoritative=*/true, /*have_payload=*/true,
        [this, mig_id, items, send_ack](CacheEntry* a) {
          if (inbound_ == nullptr || inbound_->id != mig_id) return;
          if (a == nullptr) {
            inbound_done_[inbound_->exporter] =
                std::max(inbound_done_[inbound_->exporter], mig_id);
            inbound_.reset();
            send_ack(false);
            return;
          }
          continue_inbound_anchoring(mig_id, items);
        });
    return;  // resumes from the anchor's callback
  }
  // Every root anchored: install the transferred items under them.
  std::unordered_set<InodeId> anchored(inbound_->extra_roots.begin(),
                                       inbound_->extra_roots.end());
  anchored.insert(inbound_->root);
  std::uint64_t installed = 0;
  for (InodeId ino : *items) {
    if (anchored.count(ino)) continue;  // anchored above
    FsNode* n = ctx_.tree.by_ino(ino);
    if (n == nullptr) continue;  // unlinked in flight
    cache_insert_anchored(n, InsertKind::kDemand, /*authoritative=*/true);
    ++installed;
  }
  stats_.items_migrated_in += installed;
  send_ack(true);
}

void MdsNode::handle_migrate_ack(NetAddr from, const MigrateAckMsg& m) {
  (void)from;
  if (outbound_ == nullptr || outbound_->id != m.migration_id) return;
  if (m.epoch < view_epoch_) {
    // An ack from a superseded regime must not drive the commit point;
    // the watchdog resolves this transaction instead.
    ++stats_.stale_epoch_rejects;
    return;
  }
  OutboundMigration mig = *outbound_;
  outbound_.reset();
  frozen_.erase(mig.root);
  for (InodeId r : mig.extra_roots) frozen_.erase(r);

  if (!m.accepted) {
    flush_deferred();
    return;
  }

  // Commit point: authority flips cluster-wide — the whole batch at once
  // (the importer acked only after anchoring and installing every root).
  std::vector<InodeId> roots;
  roots.reserve(1 + mig.extra_roots.size());
  roots.push_back(mig.root);
  for (InodeId r : mig.extra_roots) roots.push_back(r);
  for (InodeId rino : roots) {
    FsNode* root = ctx_.tree.by_ino(rino);
    if (root != nullptr) {
      auto* subtree =
          dynamic_cast<SubtreePartition*>(&ctx_.partition);
      assert(subtree != nullptr && "migration requires a subtree partition");
      subtree->delegate(root, mig.target);
    }
    imported_.erase(rino);
    subtree_load_.erase(rino);

    // Journal the completion (supersedes the intent record in the bounded
    // log: a restart replays at most one live record per root).
    journal_.append(rino);
  }

  // Drop exported copies (children first) and clean up third-party
  // replica registrations for the items we no longer own.
  std::vector<FsNode*> exported;
  exported.reserve(mig.items.size());
  for (InodeId ino : mig.items) {
    invalidate_replicas(ino, /*removed=*/false);
    FsNode* n = ctx_.tree.by_ino(ino);
    if (n != nullptr) exported.push_back(n);
  }
  std::sort(exported.begin(), exported.end(),
            [](const FsNode* a, const FsNode* b) {
              return a->depth() > b->depth();
            });
  for (FsNode* n : exported) {
    CacheEntry* e = cache_.peek(n->ino());
    if (e == nullptr) continue;
    if (e->cached_children > 0 || e->pins > 0) continue;  // still anchoring
    cache_.erase(n->ino());
  }

  ++stats_.migrations_out;
  stats_.items_migrated_out += mig.items.size();
  last_migration_ = ctx_.sim.now();

  // Persist the completion record, then release the importer. The
  // partition already flipped, so even if this node dies before the
  // Commit leaves, the importer's timeout resolution finds itself the
  // authority and finalizes.
  const std::uint64_t mig_id = mig.id;
  const InodeId mig_root = mig.root;
  const MdsId mig_target = mig.target;
  disk_.journal_append([this, mig_id, mig_root, mig_target]() {
    if (failed_) return;
    auto commit = std::make_unique<MigrateCommitMsg>();
    commit->migration_id = mig_id;
    commit->subtree_root = mig_root;
    ctx_.net.send(id_, mig_target, std::move(commit));
  });

  flush_deferred();
}

void MdsNode::handle_migrate_commit(NetAddr from, const MigrateCommitMsg& m) {
  (void)from;
  if (inbound_ == nullptr || inbound_->id != m.migration_id) return;
  resolve_inbound_migration();  // partition flipped -> finalizes
}

void MdsNode::handle_migrate_abort(const MigrateAbortMsg& m) {
  if (inbound_ == nullptr || inbound_->id != m.migration_id) return;
  resolve_inbound_migration();  // partition unflipped -> rolls back
}

void MdsNode::abort_outbound_migration() {
  if (outbound_ == nullptr) return;
  OutboundMigration mig = *outbound_;
  outbound_.reset();
  frozen_.erase(mig.root);
  for (InodeId r : mig.extra_roots) frozen_.erase(r);
  ++stats_.migrations_aborted;

  // Safe unilaterally: the partition map never flipped, so this node never
  // stopped being the authority. Tell the importer to discard whatever it
  // installed (best effort — its own watchdog covers a lost abort).
  auto abort_msg = std::make_unique<MigrateAbortMsg>();
  abort_msg->migration_id = mig.id;
  ctx_.net.send(id_, mig.target, std::move(abort_msg));

  flush_deferred();
}

void MdsNode::resolve_inbound_migration() {
  if (inbound_ == nullptr) return;
  auto in = std::move(inbound_);
  inbound_done_[in->exporter] = std::max(inbound_done_[in->exporter], in->id);

  // The shared partition map is the transaction's ground truth: the
  // exporter flips it at the commit point and nowhere else. Resolved
  // through this node's own view (map_authority): a fenced importer must
  // judge with the knowledge it actually has, not the quorum side's.
  FsNode* root = ctx_.tree.by_ino(in->root);
  const bool committed = root != nullptr && map_authority(root) == id_;

  if (committed) {
    ++stats_.migrations_in;
    imported_[in->root] = ctx_.sim.now();
    // Batch extras flipped atomically with the primary at the exporter's
    // commit point; stamp them too so min_subtree_residency covers them.
    for (InodeId r : in->extra_roots) imported_[r] = ctx_.sim.now();
    return;
  }

  // Roll back: discard the installed copies, children first, skipping
  // anything that meanwhile became load-bearing (pinned by an in-flight
  // request or anchoring cached children from another code path).
  std::vector<FsNode*> installed;
  installed.reserve(in->items.size());
  for (InodeId ino : in->items) {
    FsNode* n = ctx_.tree.by_ino(ino);
    if (n != nullptr) installed.push_back(n);
  }
  std::sort(installed.begin(), installed.end(),
            [](const FsNode* a, const FsNode* b) {
              return a->depth() > b->depth();
            });
  for (FsNode* n : installed) {
    CacheEntry* e = cache_.peek(n->ino());
    if (e == nullptr) continue;
    if (e->cached_children > 0 || e->pins > 0) continue;
    cache_.erase(n->ino());
  }
  ++stats_.migrations_rolled_back;
}

}  // namespace mdsim

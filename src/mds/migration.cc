// Double-commit subtree migration (paper section 4.3): "busy nodes can
// identify portions of the hierarchy that are appropriately popular and
// initiate a double-commit transaction to transfer authority to non-busy
// nodes. During this exchange all active state and cached metadata are
// transferred to the newly authoritative node ... to avoid the disk I/O
// that would otherwise be required."
//
// Protocol: exporter freezes the subtree (requests defer), sends Prepare
// with the cached item set; the importer installs the state (anchoring the
// subtree root's prefix inodes first) and Acks; the exporter flips the
// partition map (commit point), drops its copies, flushes deferred
// requests, and Commits to the importer.
#include <algorithm>
#include <cassert>

#include "mds/mds_node.h"

namespace mdsim {

bool MdsNode::subtree_frozen(const FsNode* node) const {
  if (frozen_.empty()) return false;
  for (const FsNode* n = node; n != nullptr; n = n->parent()) {
    if (frozen_.count(n->ino()) != 0) return true;
  }
  return false;
}

void MdsNode::defer(RequestPtr req) { deferred_.push_back(std::move(req)); }

void MdsNode::flush_deferred() {
  std::deque<RequestPtr> pending;
  pending.swap(deferred_);
  for (auto& req : pending) {
    // Re-route: the partition changed, so these will typically forward.
    route(std::move(req));
  }
}

void MdsNode::begin_migration(FsNode* root, MdsId target) {
  assert(outbound_ == nullptr);
  // Collect cached authoritative state under the subtree, parents first so
  // the importer's inserts respect its cache tree invariant.
  std::vector<CacheEntry*> collected;
  cache_.for_each([&](CacheEntry& e) {
    if (e.authoritative && FsTree::is_ancestor_of(root, e.node)) {
      collected.push_back(&e);
    }
  });
  if (collected.size() < ctx_.params.min_migration_items) return;
  std::sort(collected.begin(), collected.end(),
            [](const CacheEntry* a, const CacheEntry* b) {
              return a->node->depth() < b->node->depth();
            });

  outbound_ = std::make_unique<OutboundMigration>();
  outbound_->id = next_migration_id_++;
  outbound_->root = root->ino();
  outbound_->target = target;
  outbound_->items.reserve(collected.size());
  for (CacheEntry* e : collected) outbound_->items.push_back(e->node->ino());

  frozen_.insert(root->ino());

  auto msg = std::make_unique<MigratePrepareMsg>();
  msg->migration_id = outbound_->id;
  msg->subtree_root = outbound_->root;
  msg->items = outbound_->items;
  msg->size_bytes =
      static_cast<std::uint32_t>(64 + 48 * outbound_->items.size());

  const SimTime pack_cost =
      ctx_.params.cpu_migrate_per_item * outbound_->items.size();
  charge_cpu(pack_cost, [this, target, m = std::move(msg)]() mutable {
    ctx_.net.send(id_, target, std::move(m));
  });
}

void MdsNode::handle_migrate_prepare(NetAddr from, const MigratePrepareMsg& m) {
  const MdsId exporter = from;
  const std::uint64_t mig_id = m.migration_id;
  auto items = std::make_shared<std::vector<InodeId>>(m.items);
  const InodeId root_ino = m.subtree_root;

  const SimTime unpack_cost = ctx_.params.cpu_migrate_per_item * items->size();
  charge_cpu(unpack_cost, [this, exporter, mig_id, root_ino, items]() {
    FsNode* root = ctx_.tree.by_ino(root_ino);
    auto send_ack = [this, exporter, mig_id](bool accepted) {
      auto ack = std::make_unique<MigrateAckMsg>();
      ack->migration_id = mig_id;
      ack->accepted = accepted;
      ctx_.net.send(id_, exporter, std::move(ack));
    };
    if (root == nullptr) {
      send_ack(false);
      return;
    }
    // Anchor the subtree root's prefix inodes (the per-delegation overhead
    // the paper notes: "the authority must cache the containing directory
    // (prefix) inodes for each of its subtrees"), then install the
    // transferred state.
    insert_with_prefixes(
        root, InsertKind::kDemand, /*authoritative=*/true,
        /*have_payload=*/true,
        [this, items, root_ino, send_ack](CacheEntry* anchor) {
          if (anchor == nullptr) {
            send_ack(false);
            return;
          }
          std::uint64_t installed = 0;
          for (InodeId ino : *items) {
            if (ino == root_ino) continue;  // anchored above
            FsNode* n = ctx_.tree.by_ino(ino);
            if (n == nullptr) continue;  // unlinked in flight
            cache_insert_anchored(n, InsertKind::kDemand,
                                  /*authoritative=*/true);
            ++installed;
          }
          stats_.items_migrated_in += installed;
          send_ack(true);
        });
  });
}

void MdsNode::handle_migrate_ack(NetAddr from, const MigrateAckMsg& m) {
  (void)from;
  if (outbound_ == nullptr || outbound_->id != m.migration_id) return;
  OutboundMigration mig = *outbound_;
  outbound_.reset();
  frozen_.erase(mig.root);

  if (!m.accepted) {
    flush_deferred();
    return;
  }

  // Commit point: authority flips cluster-wide.
  FsNode* root = ctx_.tree.by_ino(mig.root);
  if (root != nullptr) {
    auto* subtree =
        dynamic_cast<SubtreePartition*>(&ctx_.partition);
    assert(subtree != nullptr && "migration requires a subtree partition");
    subtree->delegate(root, mig.target);
  }
  imported_.erase(mig.root);
  subtree_load_.erase(mig.root);

  // Drop exported copies (children first) and clean up third-party
  // replica registrations for the items we no longer own.
  std::vector<FsNode*> exported;
  exported.reserve(mig.items.size());
  for (InodeId ino : mig.items) {
    invalidate_replicas(ino, /*removed=*/false);
    FsNode* n = ctx_.tree.by_ino(ino);
    if (n != nullptr) exported.push_back(n);
  }
  std::sort(exported.begin(), exported.end(),
            [](const FsNode* a, const FsNode* b) {
              return a->depth() > b->depth();
            });
  for (FsNode* n : exported) {
    CacheEntry* e = cache_.peek(n->ino());
    if (e == nullptr) continue;
    if (e->cached_children > 0 || e->pins > 0) continue;  // still anchoring
    cache_.erase(n->ino());
  }

  ++stats_.migrations_out;
  stats_.items_migrated_out += mig.items.size();
  last_migration_ = ctx_.sim.now();

  auto commit = std::make_unique<MigrateCommitMsg>();
  commit->migration_id = mig.id;
  commit->subtree_root = mig.root;
  ctx_.net.send(id_, mig.target, std::move(commit));

  flush_deferred();
}

void MdsNode::handle_migrate_commit(NetAddr from, const MigrateCommitMsg& m) {
  (void)from;
  ++stats_.migrations_in;
  imported_[m.subtree_root] = ctx_.sim.now();
}

}  // namespace mdsim

// Tunables for MDS behaviour. Defaults are calibrated so a single MDS
// saturates in the low thousands of ops/sec with 2004-era disk constants,
// matching the operating region of the paper's figures.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "mds/admission.h"
#include "storage/disk_model.h"

namespace mdsim {

/// Gray-failure detection knobs (see MdsParams::health below). Thresholds
/// are deliberately relative — a gray node is one that is slow *compared
/// to its peers*, not one that crosses an absolute constant — with a small
/// absolute floor so an idle cluster never flags anyone.
struct HealthParams {
  /// Master switch. Off: no EWMA updates, no flags, no balancer bias —
  /// the healthy path is byte-identical to a build without the layer.
  bool enabled = false;
  /// EWMA weight for new health samples (per heartbeat period).
  double alpha = 0.3;
  /// A peer is degraded when its score exceeds the alive-peer median by
  /// this factor...
  double degraded_factor = 4.0;
  /// ...and recovers once back under this factor (hysteresis;
  /// must be < degraded_factor).
  double recovered_factor = 2.0;
  /// Absolute score floor (ns of lag) below which no one is ever flagged,
  /// regardless of relative spread.
  SimTime min_lag = 2 * kMillisecond;
  /// Self-detected degraded nodes volunteer load away once their load
  /// exceeds this fraction of the cluster mean (vs balance_trigger for
  /// healthy nodes).
  double volunteer_trigger = 0.60;
  /// Migration cooldown while self-degraded (vs migration_cooldown for
  /// healthy nodes): a sick node sheds territory round after round
  /// instead of waiting out the anti-thrash pause tuned for load spikes.
  SimTime volunteer_cooldown = 1 * kSecond;
  /// Max subtree roots a volunteer evacuates per migration transaction.
  /// Batching matters because the exporter journals the migration intent
  /// on the very disk that made it sick: one multi-second append buys the
  /// whole batch instead of one subtree.
  std::size_t evacuation_max_roots = 6;
};

struct MdsParams {
  // --- CPU ------------------------------------------------------------
  /// Base CPU service time to process one client request at the server.
  SimTime cpu_request = from_micros(40);
  /// Extra CPU per path component traversed.
  SimTime cpu_per_component = from_micros(3);
  /// CPU to forward a request to another node.
  SimTime cpu_forward = from_micros(5);
  /// CPU to serve a replica grant / handle coherence traffic.
  SimTime cpu_replica = from_micros(15);
  /// CPU per cache item packed/unpacked during subtree migration.
  SimTime cpu_migrate_per_item = from_micros(2);

  // --- Cache ------------------------------------------------------------
  /// Metadata cache capacity, in items (inodes).
  std::size_t cache_capacity = 4000;
  /// Half-life of the popularity decay counters.
  SimTime popularity_half_life = 2 * kSecond;

  // --- Storage ----------------------------------------------------------
  DiskParams disk;
  /// Bounded journal capacity in entries (paper: on the order of the
  /// cache size).
  std::size_t journal_capacity = 4000;

  // --- Load balancer (dynamic subtree only) -----------------------------
  /// Load metric (paper section 4.3). kWeightedLoad is the paper
  /// prototype's "weighted combination of node throughput and cache
  /// misses"; kUtilizationVector is the robust alternative the paper
  /// sketches — "equalize utilization of all resources across the
  /// cluster" — taking the bottleneck resource (CPU, disk, cache
  /// pressure) as the node's load.
  enum class BalancerMetric : std::uint8_t {
    kWeightedLoad,
    kUtilizationVector,
  };
  BalancerMetric balancer_metric = BalancerMetric::kWeightedLoad;

  SimTime heartbeat_period = kSecond;
  /// Rebalance when own load exceeds cluster mean by this factor.
  double balance_trigger = 1.50;
  /// ... and ship work to nodes below mean times this factor.
  double balance_target = 0.90;
  /// Weight of throughput vs cache-miss rate in the load metric (paper
  /// section 5.1: "a weighted combination of node throughput and cache
  /// misses").
  double load_weight_throughput = 1.0;
  double load_weight_miss = 3.0;
  /// Smallest subtree worth migrating (items in cache).
  std::size_t min_migration_items = 8;
  /// Minimum spacing between migrations initiated by one node.
  SimTime migration_cooldown = 4 * kSecond;
  /// A freshly imported subtree must stay this long before it can be
  /// re-exported (stops hot subtrees ping-ponging around the cluster).
  SimTime min_subtree_residency = 8 * kSecond;

  // --- Failure lifecycle (paper section 4.6) ------------------------------
  /// Survivors declare a peer dead once no heartbeat has arrived for this
  /// many heartbeat periods, then the lowest live id redistributes the
  /// dead node's delegations. Only strategies that run the heartbeat
  /// (i.e. those that balance load) detect failures.
  bool failure_detection = true;
  int heartbeat_miss_threshold = 3;
  /// Takeover nodes replay the failed node's bounded journal from shared
  /// storage to preload its working set (vs a cold takeover).
  bool warm_takeover = true;
  /// Double-commit watchdog: an exporter with no ack (or an importer with
  /// no commit) after this long resolves the migration unilaterally —
  /// abort before the commit point, importer ownership after. Checked on
  /// the heartbeat, so effective resolution is rounded up to a period.
  SimTime migration_timeout = 3 * kSecond;
  /// Replica fetches whose grant never arrives (dropped message, dead
  /// authority) fail their waiters after this long instead of wedging the
  /// inode's fetch-coalescing slot forever.
  SimTime replica_fetch_timeout = 2 * kSecond;
  /// Attribute gathers park reads while calling deltas in from dirty
  /// holders; if a flush is lost the read resumes with what it has.
  SimTime attr_gather_timeout = 2 * kSecond;

  // --- Partition tolerance (leases, epochs, quorum takeover) --------------
  /// Split-brain safety for subtree strategies: authority is held under a
  /// renewable lease (renewed by heartbeats from peers that still list us
  /// in their alive-mask), takeover is deferred by a grace period and
  /// gated on a strict-majority quorum, and every failure-driven
  /// reconfiguration bumps the partition-map epoch. Requires heartbeats
  /// (load-balancing strategies) and at least 3 nodes; below that the
  /// pre-lease immediate-takeover behaviour is kept.
  bool partition_safety = true;
  /// Authority lease duration. A node that has not been acked by a strict
  /// majority within this window self-fences: it parks writes (reads are
  /// still served stale) until the lease renews. Must be shorter than
  /// detection horizon + takeover_grace so a minority node is fenced
  /// before the majority re-delegates its subtrees.
  SimTime authority_lease = 2 * kSecond;
  /// Delay between declaring a peer dead and re-delegating its subtrees.
  /// Covers the victim's lease expiry (see above) and rides out transient
  /// suspicion: a peer that comes back within the grace (flapping link)
  /// cancels the takeover instead of losing its territory.
  SimTime takeover_grace = 4 * kSecond;

  // --- Overload protection (admission control) ----------------------------
  /// Bounded queues + token-bucket admission in handle_client_request;
  /// sheds answer with explicit Rejected{retry_after} replies. Off by
  /// default: every fig run is byte-identical with the gate disabled.
  OverloadParams overload;

  // --- Gray-failure health scoring (fail-slow detection) ------------------
  /// Per-peer health scores: every heartbeat carries the sender's
  /// self-measured service lag (CPU + store backlog) and a send
  /// timestamp; receivers EWMA the one-way delivery lag and the reported
  /// service lag into one score per peer, flag peers whose score crosses
  /// degraded_factor × the cluster median, and deweight them as
  /// balancing targets (a self-detecting node volunteers load away).
  /// Off by default: no scoring, no flags, fig runs byte-identical.
  HealthParams health;

  // --- Traffic control (dynamic subtree only) ----------------------------
  bool traffic_control_enabled = true;
  /// Popularity (decayed requests/interval) above which an item/subtree is
  /// replicated cluster-wide and clients are told "anywhere". The default
  /// only fires for near-root directories and true crowds; flash-crowd
  /// experiments lower it.
  double replication_threshold = 5000.0;
  /// Popularity below which a replicated item collapses back to its
  /// authority.
  double unreplicate_threshold = 400.0;

  // --- Distributed attribute updates (paper section 4.2) ------------------
  /// Replicas absorb monotone attribute writes (setattr: mtime/size)
  /// locally, GPFS-style, and flush them to the authority periodically;
  /// reads at the authority first call outstanding deltas in.
  bool distributed_attr_updates = true;
  SimTime attr_flush_period = 500 * kMillisecond;

  // --- Lazy Hybrid -------------------------------------------------------
  /// Background drain rate of the LH lazy-update log, cluster-wide
  /// (entries per second; one network trip per affected file).
  double lh_drain_rate = 2000.0;
  SimTime lh_drain_tick_period = from_millis(10);

  // --- Dynamic directory fragmentation ------------------------------------
  bool dirfrag_enabled = true;
  /// Fragment a directory across the cluster when its size exceeds this
  /// many entries or its popularity exceeds the replication threshold.
  std::size_t dirfrag_size_threshold = 4000;
  double dirfrag_temp_threshold = 1200.0;
  /// Merge back when size and popularity fall below half the thresholds.
  double dirfrag_hysteresis = 0.25;

  // --- GIGA+ incremental splitting (within dirfrag) -----------------------
  /// Fragment incrementally: start as a single partition at the home node
  /// and split one hot/overfull partition at a time, instead of hashing
  /// the whole directory across the cluster in one step. Off restores the
  /// paper's all-at-once behavior exactly.
  bool giga_enabled = true;
  /// Maximum split depth: at most 2^depth partitions per directory.
  int giga_max_depth = 6;
  /// Per-partition split thresholds; 0 inherits the directory-level
  /// dirfrag thresholds (scaled to one partition's share by depth).
  std::size_t giga_split_size = 0;
  double giga_split_temp = 0.0;
  /// A mis-routed dentry op is redirected+forwarded at most this many
  /// times before being served locally (the shared tree makes a local
  /// serve correct, just cache-cold).
  int giga_max_hops = 8;
};

}  // namespace mdsim

// Failure detection, takeover and restart (paper section 4.6).
//
// Detection is distributed: every node watches the balancer heartbeats of
// its peers and declares one dead after `heartbeat_miss_threshold` silent
// periods. The lowest live id then acts as takeover coordinator: it
// redistributes the dead node's delegations round-robin over the
// survivors and (warm takeover) has each heir replay the dead node's
// bounded journal from shared storage — the paper's "journal [as] a very
// recent or current picture of the failed node's working metadata set".
// A false positive (flaky link, not a dead peer) degenerates into a
// forced re-delegation: the partition map stays consistent, the "dead"
// node simply starts forwarding, and the first heartbeat heard marks it
// back up.
//
// Restart replays the node's own journal against the object store —
// one sequential log read, coalesced tier-2 writebacks, then a CPU-paced
// cache warm-up with whatever the takeover left it — and the balancer
// repopulates it with load as its heartbeats resume.
//
// All watchdogs (liveness, migration deadlines, wedged replica fetches,
// stale attr gathers) piggyback on the heartbeat tick: no timer events
// are scheduled in healthy runs, so the fault machinery is inert — and
// the simulation byte-identical — until something actually fails.
#include <algorithm>
#include <cassert>

#include "mds/mds_node.h"

namespace mdsim {

void MdsNode::failure_tick(SimTime now) {
  if (partition_safety_on()) evaluate_lease(now);
  if (ctx_.params.failure_detection) check_peer_liveness(now);
  if (!pending_takeover_.empty()) sweep_pending_takeovers(now);

  // Double-commit watchdogs (migration.cc has the resolution logic).
  if (outbound_ != nullptr && now >= outbound_->deadline) {
    ++stats_.migration_timeouts;
    abort_outbound_migration();
  }
  if (inbound_ != nullptr && now >= inbound_->deadline) {
    ++stats_.migration_timeouts;
    resolve_inbound_migration();
  }

  // Replica fetches whose grant never arrived: fail the waiters so the
  // inode's coalescing slot unwedges (clients retry; the next fetch
  // starts clean).
  if (!replica_fetch_deadline_.empty()) {
    std::vector<InodeId> expired;
    for (const auto& [ino, deadline] : replica_fetch_deadline_) {
      if (now >= deadline) expired.push_back(ino);
    }
    for (InodeId ino : expired) {
      replica_fetch_deadline_.erase(ino);
      ++stats_.replica_fetch_timeouts;
      auto waiters = cache_.take_fetch_waiters(ino, FetchChannel::kReplica);
      for (auto& w : waiters) w(nullptr);
    }
  }

  // Attr gathers whose flush was lost: resume the parked reads with the
  // attributes at hand (monotone-stale is tolerated by the scheme).
  if (!attr_waiters_.empty()) {
    std::vector<InodeId> stale;
    for (const auto& [ino, gather] : attr_waiters_) {
      if (now - gather.since >= ctx_.params.attr_gather_timeout) {
        stale.push_back(ino);
      }
    }
    for (InodeId ino : stale) {
      ++stats_.attr_gather_timeouts;
      resume_attr_waiters(ino);
    }
  }
}

void MdsNode::check_peer_liveness(SimTime now) {
  const SimTime horizon =
      static_cast<SimTime>(ctx_.params.heartbeat_miss_threshold) *
      ctx_.params.heartbeat_period;
  for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
    if (peer == id_) continue;
    const auto idx = static_cast<std::size_t>(peer);
    if (peer_alive_[idx] == 0) continue;
    // peer_last_hb_ starts at 0; the horizon exceeds the first heartbeat's
    // arrival time, so a healthy bootstrap never trips this.
    if (now - peer_last_hb_[idx] > horizon) on_peer_detected_down(peer);
  }
}

void MdsNode::on_peer_detected_down(MdsId peer) {
  const SimTime now = ctx_.sim.now();
  peer_alive_[static_cast<std::size_t>(peer)] = 0;
  mark_peer_down(peer);
  // Dentry authorities of fragmented directories route around the dead
  // node from here on (the hash otherwise keeps sending its share of the
  // directory into a black hole until the peer recovers).
  ctx_.dirfrag.set_node_alive(peer, false);
  ++stats_.peer_down_detections;
  if (ctx_.faults != nullptr) ctx_.faults->note_detection(peer, id_, now);

  // A migration in flight with the dead peer resolves unilaterally.
  if (outbound_ != nullptr && outbound_->target == peer) {
    abort_outbound_migration();
  }
  if (inbound_ != nullptr && inbound_->exporter == peer) {
    resolve_inbound_migration();
  }

  if (partition_safety_on()) {
    // Quorum-gated takeover: don't re-delegate on first suspicion. Record
    // the earliest re-delegation time; the watchdog sweep executes it once
    // the grace has covered the victim's lease expiry — or cancels it if
    // the peer comes back (flapping link, transient cut).
    pending_takeover_.emplace(peer, now + ctx_.params.takeover_grace);
    return;
  }

  // Legacy immediate path (2-node clusters, safety disabled): the lowest
  // id that believes itself alive coordinates the takeover. Sweeping every
  // dead peer (not just this one) covers a coordinator that died before
  // acting: the next-lowest survivor redoes the sweep, and
  // already-redistributed peers are skipped inside.
  MdsId coordinator = id_;
  for (MdsId i = 0; i < ctx_.num_mds; ++i) {
    if (i != id_ && peer_alive_[static_cast<std::size_t>(i)] == 0) continue;
    coordinator = i;
    break;
  }
  if (coordinator != id_) return;
  for (MdsId dead = 0; dead < ctx_.num_mds; ++dead) {
    if (dead == id_ || peer_alive_[static_cast<std::size_t>(dead)] != 0)
      continue;
    take_over_failed_peer(dead);
  }
}

// --------------------------------------------------------------------------
// Authority leases and quorum-gated takeover.
//
// The lease is renewed by *being heard*: every heartbeat carries the
// sender's alive-mask, and a receiver records an ack only when the mask
// lists it. A node partitioned away — or one whose outbound link is cut
// while its inbound still works — stops accumulating acks, loses the
// strict-majority quorum within authority_lease, and self-fences: writes
// park, migrations are refused, reads are served (possibly stale). The
// majority side waits out takeover_grace (which covers the victim's lease
// expiry) before re-delegating, so at every instant at most one lease-valid
// authority exists per subtree. On heal the fenced node's acks resume, the
// lease renews, and it reconciles: adopt the current map epoch, shed
// authoritative state the new regime assigned elsewhere, re-install from
// its journal only what it still owns, and re-route the parked writes.
// --------------------------------------------------------------------------

int MdsNode::quorum_ackers(SimTime now) const {
  int ackers = 1;  // self
  for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
    if (peer == id_) continue;
    if (now - peer_ack_time_[static_cast<std::size_t>(peer)] <=
        ctx_.params.authority_lease) {
      ++ackers;
    }
  }
  return ackers;
}

void MdsNode::evaluate_lease(SimTime now) {
  const bool quorum = 2 * quorum_ackers(now) > ctx_.num_mds;
  if (!quorum && !fenced_) {
    fence();
  } else if (quorum && fenced_) {
    unfence_and_reconcile();
  }
}

void MdsNode::fence() {
  fenced_ = true;
  ++stats_.fence_events;
  if (ctx_.faults != nullptr) ctx_.faults->note_fenced(id_, ctx_.sim.now());
  // An export in flight cannot complete against the quorum side; give it
  // up now (the map never flipped — rollback is clean on both ends).
  if (outbound_ != nullptr) abort_outbound_migration();
}

void MdsNode::unfence_and_reconcile() {
  fenced_ = false;
  ++stats_.unfence_events;
  if (ctx_.faults != nullptr) ctx_.faults->note_unfenced(id_, ctx_.sim.now());

  const std::uint64_t map_epoch = subtree_map_->epoch();
  const bool reconfigured = map_epoch != view_epoch_;
  view_epoch_ = map_epoch;
  if (reconfigured) {
    // Epoch reconciliation: while we were fenced the quorum side
    // re-delegated some (possibly all) of our territory. Discard the
    // superseded authoritative state, children first so the cache tree
    // invariant holds; replicas stay (coherence re-registers them as they
    // are touched).
    std::vector<const CacheEntry*> stale;
    cache_.for_each([&](CacheEntry& e) {
      if (e.authoritative && e.pins == 0 && authority_for(e.node) != id_) {
        stale.push_back(&e);
      }
    });
    std::sort(stale.begin(), stale.end(),
              [](const CacheEntry* a, const CacheEntry* b) {
                return a->node->depth() > b->node->depth();
              });
    std::uint64_t dropped = 0;
    for (const CacheEntry* e : stale) {
      const CacheEntry* cur = cache_.peek(e->node->ino());
      if (cur == nullptr || cur->cached_children > 0) continue;
      if (cache_.erase(e->node->ino())) ++dropped;
    }
    stats_.reconcile_dropped_items += dropped;

    // Replay the journal only for subtrees we still own: the process
    // never died, so this is a cheap re-install of anything the shed pass
    // (or pressure while fenced) evicted from territory that is still
    // ours under the new epoch.
    for (InodeId ino : journal_.replay()) {
      FsNode* n = ctx_.tree.by_ino(ino);
      if (n == nullptr || authority_for(n) != id_) continue;
      if (cache_.peek(ino) == nullptr) {
        cache_insert_anchored(n, InsertKind::kDemand, /*authoritative=*/true);
      }
    }
  }

  // Writes parked by the fence re-enter the pipeline; under a new epoch
  // most immediately forward to the authorities that superseded us.
  std::deque<RequestPtr> parked;
  parked.swap(parked_);
  for (auto& req : parked) route(std::move(req));
}

void MdsNode::sweep_pending_takeovers(SimTime now) {
  // Cancel takeovers whose peer came back within the grace (heartbeats
  // marked it up again): transient suspicion must not cost territory.
  for (auto it = pending_takeover_.begin(); it != pending_takeover_.end();) {
    if (peer_alive_[static_cast<std::size_t>(it->first)] != 0) {
      it = pending_takeover_.erase(it);
    } else {
      ++it;
    }
  }
  if (pending_takeover_.empty()) return;

  // A minority side never elects a coordinator: without a strict majority
  // behind it, this node stalls (and is itself fenced or about to be).
  if (fenced_ || 2 * quorum_ackers(now) <= ctx_.num_mds) {
    ++stats_.takeovers_deferred;
    return;
  }
  // Lowest id believed alive coordinates; everyone else holds its pending
  // set as a backstop in case the coordinator dies before acting.
  for (MdsId i = 0; i < id_; ++i) {
    if (peer_alive_[static_cast<std::size_t>(i)] != 0) return;
  }
  std::vector<MdsId> ready;
  for (const auto& [dead, eligible] : pending_takeover_) {
    if (now >= eligible) ready.push_back(dead);
  }
  std::sort(ready.begin(), ready.end());  // deterministic order
  for (MdsId dead : ready) {
    pending_takeover_.erase(dead);
    take_over_failed_peer(dead);
  }
}

void MdsNode::take_over_failed_peer(MdsId dead) {
  auto* subtree = dynamic_cast<SubtreePartition*>(&ctx_.partition);
  if (subtree == nullptr) return;  // hashed placements re-map, out of scope

  std::vector<MdsId> survivors;
  for (MdsId i = 0; i < ctx_.num_mds; ++i) {
    if (i == dead) continue;
    if (i != id_ && peer_alive_[static_cast<std::size_t>(i)] == 0) continue;
    survivors.push_back(i);
  }
  if (survivors.empty()) return;

  const auto delegations = subtree->delegations_of(dead);
  const bool owns_root = subtree->authority_of(ctx_.tree.root()) == dead;
  if (delegations.empty() && !owns_root) return;  // already taken over

  if (partition_safety_on()) {
    // Failure-driven reconfiguration: stamp the new assignments with a
    // fresh epoch so traffic from the superseded regime (a fenced node
    // that still believes itself authority) is recognizably stale, and
    // push the new epoch to every node we can reach — the MDSMap-style
    // broadcast. Fenced nodes ignore it (their view stays frozen until
    // they reconcile); truly partitioned nodes simply would not have
    // received it, which the shared map models via observe_epoch's gate.
    view_epoch_ = subtree->bump_epoch();
    for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
      if (peer == id_ || peer == dead) continue;
      if (peer_alive_[static_cast<std::size_t>(peer)] == 0) continue;
      ctx_.nodes[static_cast<std::size_t>(peer)]->observe_epoch(view_epoch_);
    }
  }

  std::vector<MdsId> heirs;
  std::size_t rr = 0;
  for (const FsNode* root : delegations) {
    const MdsId heir = survivors[rr++ % survivors.size()];
    subtree->delegate(root, heir);
    heirs.push_back(heir);
  }
  if (owns_root) {
    subtree->delegate(ctx_.tree.root(), survivors.front());
    heirs.push_back(survivors.front());
  }
  if (heirs.empty()) heirs.push_back(survivors.front());

  ++stats_.takeovers;
  if (ctx_.faults != nullptr) {
    ctx_.faults->note_takeover(dead, ctx_.sim.now());
  }

  if (ctx_.params.warm_takeover) {
    // The dead node's journal lives on shared storage (section 4.6):
    // every heir replays it and installs the items it now owns.
    std::sort(heirs.begin(), heirs.end());
    heirs.erase(std::unique(heirs.begin(), heirs.end()), heirs.end());
    const auto working_set =
        ctx_.nodes[static_cast<std::size_t>(dead)]->journal().replay();
    for (MdsId heir : heirs) {
      ctx_.nodes[static_cast<std::size_t>(heir)]->warm_from_journal(
          working_set);
    }
  }
}

void MdsNode::restart() {
  assert(!failed_);
  recovering_ = true;

  // Everything from before the crash is void: cache contents (missed
  // invalidations), migration state (resolved by peers or by the shared
  // partition map), fetch waiters, parked reads (their clients timed out
  // and retried long ago).
  clear_cache_for_rejoin();

  // Fresh liveness view — the node heard nothing while it was down, so it
  // must not declare the whole cluster dead at its first tick.
  const SimTime now = ctx_.sim.now();
  std::fill(peer_alive_.begin(), peer_alive_.end(), 1);
  std::fill(peer_last_hb_.begin(), peer_last_hb_.end(), now);
  std::fill(peer_loads_.begin(), peer_loads_.end(), 0.0);
  std::fill(peer_ack_time_.begin(), peer_ack_time_.end(), now);
  // Health scores are pre-crash observations; start the gray-failure
  // detector from scratch.
  std::fill(peer_health_.begin(), peer_health_.end(), 0.0);
  std::fill(peer_degraded_.begin(), peer_degraded_.end(), 0);
  svc_ewma_self_ = 0.0;
  // A rebooting node fetches the current map from shared storage before
  // serving (the same place it reads its journal), so it rejoins at the
  // cluster's epoch rather than its pre-crash view.
  fenced_ = false;
  if (subtree_map_ != nullptr) view_epoch_ = subtree_map_->epoch();
  bal_prev_time_ = now;
  bal_prev_replies_ = stats_.replies_sent;
  bal_prev_misses_ = cache_.stats().misses;
  bal_prev_cpu_busy_ = cpu_.busy_time();
  bal_prev_disk_busy_ = disk_.store_busy_time();

  // Replay the bounded journal against the object store: one sequential
  // read of the log region, a coalesced tier-2 write per dirty directory
  // (shared B+tree nodes, as in the normal writeback path), then a
  // CPU-paced warm install of whatever this node still owns after the
  // takeover redistributed its delegations.
  auto items = std::make_shared<std::vector<InodeId>>(journal_.replay());
  const std::uint32_t log_nodes =
      1 + static_cast<std::uint32_t>(items->size() / 16);
  disk_.read_object(log_nodes, [this, items]() {
    std::unordered_map<InodeId, std::uint32_t> dirty;
    for (InodeId ino : *items) {
      FsNode* n = ctx_.tree.by_ino(ino);
      InodeId dir = kInvalidInode;
      if (n != nullptr && n->parent() != nullptr) dir = n->parent()->ino();
      ++dirty[dir];
    }
    for (const auto& [dir, count] : dirty) {
      disk_.write_object(1 + count / 16, []() {});
    }
    const SimTime cpu = ctx_.params.cpu_migrate_per_item * items->size();
    charge_cpu(cpu, [this, items]() {
      std::uint64_t installed = 0;
      for (InodeId ino : *items) {
        FsNode* n = ctx_.tree.by_ino(ino);
        if (n == nullptr) continue;
        if (authority_for(n) != id_) continue;  // redistributed away
        cache_insert_anchored(n, InsertKind::kDemand, /*authoritative=*/true);
        ++installed;
      }
      stats_.restart_replayed_items += installed;
      recovering_ = false;
      if (ctx_.faults != nullptr) {
        ctx_.faults->note_rejoin(id_, ctx_.sim.now());
      }
    });
  });
}

}  // namespace mdsim

// Failure detection, takeover and restart (paper section 4.6).
//
// Detection is distributed: every node watches the balancer heartbeats of
// its peers and declares one dead after `heartbeat_miss_threshold` silent
// periods. The lowest live id then acts as takeover coordinator: it
// redistributes the dead node's delegations round-robin over the
// survivors and (warm takeover) has each heir replay the dead node's
// bounded journal from shared storage — the paper's "journal [as] a very
// recent or current picture of the failed node's working metadata set".
// A false positive (flaky link, not a dead peer) degenerates into a
// forced re-delegation: the partition map stays consistent, the "dead"
// node simply starts forwarding, and the first heartbeat heard marks it
// back up.
//
// Restart replays the node's own journal against the object store —
// one sequential log read, coalesced tier-2 writebacks, then a CPU-paced
// cache warm-up with whatever the takeover left it — and the balancer
// repopulates it with load as its heartbeats resume.
//
// All watchdogs (liveness, migration deadlines, wedged replica fetches,
// stale attr gathers) piggyback on the heartbeat tick: no timer events
// are scheduled in healthy runs, so the fault machinery is inert — and
// the simulation byte-identical — until something actually fails.
#include <algorithm>
#include <cassert>

#include "mds/mds_node.h"

namespace mdsim {

void MdsNode::failure_tick(SimTime now) {
  if (ctx_.params.failure_detection) check_peer_liveness(now);

  // Double-commit watchdogs (migration.cc has the resolution logic).
  if (outbound_ != nullptr && now >= outbound_->deadline) {
    ++stats_.migration_timeouts;
    abort_outbound_migration();
  }
  if (inbound_ != nullptr && now >= inbound_->deadline) {
    ++stats_.migration_timeouts;
    resolve_inbound_migration();
  }

  // Replica fetches whose grant never arrived: fail the waiters so the
  // inode's coalescing slot unwedges (clients retry; the next fetch
  // starts clean).
  if (!replica_fetch_deadline_.empty()) {
    std::vector<InodeId> expired;
    for (const auto& [ino, deadline] : replica_fetch_deadline_) {
      if (now >= deadline) expired.push_back(ino);
    }
    for (InodeId ino : expired) {
      replica_fetch_deadline_.erase(ino);
      ++stats_.replica_fetch_timeouts;
      auto waiters = cache_.take_fetch_waiters(ino, FetchChannel::kReplica);
      for (auto& w : waiters) w(nullptr);
    }
  }

  // Attr gathers whose flush was lost: resume the parked reads with the
  // attributes at hand (monotone-stale is tolerated by the scheme).
  if (!attr_waiters_.empty()) {
    std::vector<InodeId> stale;
    for (const auto& [ino, gather] : attr_waiters_) {
      if (now - gather.since >= ctx_.params.attr_gather_timeout) {
        stale.push_back(ino);
      }
    }
    for (InodeId ino : stale) {
      ++stats_.attr_gather_timeouts;
      resume_attr_waiters(ino);
    }
  }
}

void MdsNode::check_peer_liveness(SimTime now) {
  const SimTime horizon =
      static_cast<SimTime>(ctx_.params.heartbeat_miss_threshold) *
      ctx_.params.heartbeat_period;
  for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
    if (peer == id_) continue;
    const auto idx = static_cast<std::size_t>(peer);
    if (peer_alive_[idx] == 0) continue;
    // peer_last_hb_ starts at 0; the horizon exceeds the first heartbeat's
    // arrival time, so a healthy bootstrap never trips this.
    if (now - peer_last_hb_[idx] > horizon) on_peer_detected_down(peer);
  }
}

void MdsNode::on_peer_detected_down(MdsId peer) {
  const SimTime now = ctx_.sim.now();
  peer_alive_[static_cast<std::size_t>(peer)] = 0;
  mark_peer_down(peer);
  ++stats_.peer_down_detections;
  if (ctx_.faults != nullptr) ctx_.faults->note_detection(peer, id_, now);

  // A migration in flight with the dead peer resolves unilaterally.
  if (outbound_ != nullptr && outbound_->target == peer) {
    abort_outbound_migration();
  }
  if (inbound_ != nullptr && inbound_->exporter == peer) {
    resolve_inbound_migration();
  }

  // The lowest id that believes itself alive coordinates the takeover.
  // Sweeping every dead peer (not just this one) covers a coordinator
  // that died before acting: the next-lowest survivor redoes the sweep,
  // and already-redistributed peers are skipped inside.
  MdsId coordinator = id_;
  for (MdsId i = 0; i < ctx_.num_mds; ++i) {
    if (i != id_ && peer_alive_[static_cast<std::size_t>(i)] == 0) continue;
    coordinator = i;
    break;
  }
  if (coordinator != id_) return;
  for (MdsId dead = 0; dead < ctx_.num_mds; ++dead) {
    if (dead == id_ || peer_alive_[static_cast<std::size_t>(dead)] != 0)
      continue;
    take_over_failed_peer(dead);
  }
}

void MdsNode::take_over_failed_peer(MdsId dead) {
  auto* subtree = dynamic_cast<SubtreePartition*>(&ctx_.partition);
  if (subtree == nullptr) return;  // hashed placements re-map, out of scope

  std::vector<MdsId> survivors;
  for (MdsId i = 0; i < ctx_.num_mds; ++i) {
    if (i == dead) continue;
    if (i != id_ && peer_alive_[static_cast<std::size_t>(i)] == 0) continue;
    survivors.push_back(i);
  }
  if (survivors.empty()) return;

  const auto delegations = subtree->delegations_of(dead);
  const bool owns_root = subtree->authority_of(ctx_.tree.root()) == dead;
  if (delegations.empty() && !owns_root) return;  // already taken over

  std::vector<MdsId> heirs;
  std::size_t rr = 0;
  for (const FsNode* root : delegations) {
    const MdsId heir = survivors[rr++ % survivors.size()];
    subtree->delegate(root, heir);
    heirs.push_back(heir);
  }
  if (owns_root) {
    subtree->delegate(ctx_.tree.root(), survivors.front());
    heirs.push_back(survivors.front());
  }
  if (heirs.empty()) heirs.push_back(survivors.front());

  ++stats_.takeovers;
  if (ctx_.faults != nullptr) {
    ctx_.faults->note_takeover(dead, ctx_.sim.now());
  }

  if (ctx_.params.warm_takeover) {
    // The dead node's journal lives on shared storage (section 4.6):
    // every heir replays it and installs the items it now owns.
    std::sort(heirs.begin(), heirs.end());
    heirs.erase(std::unique(heirs.begin(), heirs.end()), heirs.end());
    const auto working_set =
        ctx_.nodes[static_cast<std::size_t>(dead)]->journal().replay();
    for (MdsId heir : heirs) {
      ctx_.nodes[static_cast<std::size_t>(heir)]->warm_from_journal(
          working_set);
    }
  }
}

void MdsNode::restart() {
  assert(!failed_);
  recovering_ = true;

  // Everything from before the crash is void: cache contents (missed
  // invalidations), migration state (resolved by peers or by the shared
  // partition map), fetch waiters, parked reads (their clients timed out
  // and retried long ago).
  clear_cache_for_rejoin();

  // Fresh liveness view — the node heard nothing while it was down, so it
  // must not declare the whole cluster dead at its first tick.
  const SimTime now = ctx_.sim.now();
  std::fill(peer_alive_.begin(), peer_alive_.end(), 1);
  std::fill(peer_last_hb_.begin(), peer_last_hb_.end(), now);
  std::fill(peer_loads_.begin(), peer_loads_.end(), 0.0);
  bal_prev_time_ = now;
  bal_prev_replies_ = stats_.replies_sent;
  bal_prev_misses_ = cache_.stats().misses;
  bal_prev_cpu_busy_ = cpu_.busy_time();
  bal_prev_disk_busy_ = disk_.store_busy_time();

  // Replay the bounded journal against the object store: one sequential
  // read of the log region, a coalesced tier-2 write per dirty directory
  // (shared B+tree nodes, as in the normal writeback path), then a
  // CPU-paced warm install of whatever this node still owns after the
  // takeover redistributed its delegations.
  auto items = std::make_shared<std::vector<InodeId>>(journal_.replay());
  const std::uint32_t log_nodes =
      1 + static_cast<std::uint32_t>(items->size() / 16);
  disk_.read_object(log_nodes, [this, items]() {
    std::unordered_map<InodeId, std::uint32_t> dirty;
    for (InodeId ino : *items) {
      FsNode* n = ctx_.tree.by_ino(ino);
      InodeId dir = kInvalidInode;
      if (n != nullptr && n->parent() != nullptr) dir = n->parent()->ino();
      ++dirty[dir];
    }
    for (const auto& [dir, count] : dirty) {
      disk_.write_object(1 + count / 16, []() {});
    }
    const SimTime cpu = ctx_.params.cpu_migrate_per_item * items->size();
    charge_cpu(cpu, [this, items]() {
      std::uint64_t installed = 0;
      for (InodeId ino : *items) {
        FsNode* n = ctx_.tree.by_ino(ino);
        if (n == nullptr) continue;
        if (authority_for(n) != id_) continue;  // redistributed away
        cache_insert_anchored(n, InsertKind::kDemand, /*authoritative=*/true);
        ++installed;
      }
      stats_.restart_replayed_items += installed;
      recovering_ = false;
      if (ctx_.faults != nullptr) {
        ctx_.faults->note_rejoin(id_, ctx_.sim.now());
      }
    });
  });
}

}  // namespace mdsim

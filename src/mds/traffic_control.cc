// Traffic control (paper section 4.4): the authority monitors per-item
// popularity with decayed access counters; replies carry distribution
// information for the target and its prefixes; popular items are
// preemptively replicated cluster-wide so flash crowds spread across all
// nodes instead of converging on the authority. Also hosts the dynamic
// directory fragmentation decisions (section 4.3).
#include <algorithm>
#include <cassert>

#include "mds/mds_node.h"

namespace mdsim {

void MdsNode::note_popularity(RequestPtr req) {
  if (!req->counts_as_served || req->target == nullptr) return;
  const SimTime now = ctx_.sim.now();

  if (ctx_.traits.load_balancing) bump_subtree_load(req->target);

  CacheEntry* e = cache_.peek(req->target->ino());
  if (e == nullptr) return;

  if (ctx_.traits.traffic_control && ctx_.params.traffic_control_enabled) {
    maybe_replicate(req->target, e);
  }
  if (ctx_.traits.dynamic_dirfrag && ctx_.params.dirfrag_enabled) {
    // Only namespace-mutating ops heat a directory toward fragmentation.
    FsNode* dir = nullptr;
    switch (req->msg.op) {
      case OpType::kCreate:
      case OpType::kMkdir:
      case OpType::kLink:
        dir = req->target;  // the containing directory
        break;
      case OpType::kUnlink:
      case OpType::kRmdir:
      case OpType::kRename:
        dir = req->target->parent();
        break;
      default:
        break;
    }
    if (dir != nullptr) {
      EntryAux& a = cache_.aux_ensure(dir->ino());
      if (!a.has_dir_temp) {
        a.dir_op_temp = DecayCounter(ctx_.params.popularity_half_life);
        a.has_dir_temp = true;
      }
      a.dir_op_temp.hit(now);
      CacheEntry* de = cache_.peek(dir->ino());
      if (de != nullptr) maybe_fragment_dir(dir, de);
    }
  }
}

void MdsNode::maybe_replicate(FsNode* node, CacheEntry* entry) {
  const InodeId ino = node->ino();
  if (is_replicated_everywhere(ino)) return;
  if (authority_for(node) != id_) return;
  const double pop = entry->popularity.get(ctx_.sim.now());
  if (pop < ctx_.params.replication_threshold) return;

  // Replicate everywhere and remember it; future replies tell clients to
  // pick any node.
  cache_.aux_ensure(ino).replicated_everywhere = true;
  for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
    if (peer == id_) continue;
    register_replica(ino, peer);
    push_unsolicited_replica(node, peer);
  }
}

void MdsNode::push_unsolicited_replica(FsNode* node, MdsId to) {
  auto msg = std::make_unique<ReplicaGrantMsg>();
  msg->ino = node->ino();
  msg->unsolicited = true;
  msg->version = node->inode().version;
  ++stats_.replica_grants;
  ctx_.net.send(id_, to, std::move(msg));
}

void MdsNode::maybe_unreplicate() {
  if (!ctx_.traits.traffic_control) return;
  const SimTime now = ctx_.sim.now();
  // One sweep over the sidecar records: prune cold directory-op
  // temperature counters (re-evaluating fragmentation of still-hot ones
  // whose storms have ended), and drop stale replicate-everywhere marks.
  cache_.for_each_aux([&](InodeId ino, EntryAux& a) {
    bool dirty = false;
    if (a.has_dir_temp) {
      if (a.dir_op_temp.get(now) < 0.5 && !ctx_.dirfrag.is_fragmented(ino)) {
        a.has_dir_temp = false;
        a.dir_op_temp = DecayCounter();
        dirty = true;
      } else if (ctx_.dirfrag.is_fragmented(ino)) {
        FsNode* dir = ctx_.tree.by_ino(ino);
        if (dir != nullptr) maybe_fragment_dir(dir, nullptr);
      }
    }
    if (a.replicated_everywhere) {
      FsNode* node = ctx_.tree.by_ino(ino);
      bool drop = node == nullptr;
      if (!drop && authority_for(node) == id_) {
        CacheEntry* e = cache_.peek(ino);
        const double pop = e ? e->popularity.get(now) : 0.0;
        drop = pop < ctx_.params.unreplicate_threshold;
      }
      // Marks we merely *learned* (non-authority) expire with the replica
      // itself (handled on eviction/invalidation).
      if (drop) {
        a.replicated_everywhere = false;
        dirty = true;
      }
    }
    if (dirty) cache_.aux_gc(ino);
  });
}

void MdsNode::fill_hints(const RequestPtr& req, ClientReplyMsg& out) {
  if (req->target == nullptr) return;
  // Distribution info for the target and its prefix directories (clients
  // cache these and direct future requests accordingly). Runs once per
  // reply over the whole ancestry, so authority is resolved root-down
  // with authority_step() — one delegation-table load per node instead
  // of a full parent-chain walk per node (O(depth) total, not O(depth²)).
  const bool tc = ctx_.traits.traffic_control &&
                  ctx_.params.traffic_control_enabled;
  static thread_local std::vector<FsNode*> path;
  path.clear();
  for (FsNode* n = req->target; n != nullptr; n = n->parent()) {
    path.push_back(n);
  }
  // A fenced node resolves against the map as of its frozen view; rare,
  // and not expressible incrementally — take the per-node path.
  const bool lagging =
      subtree_map_ != nullptr && view_epoch_ != subtree_map_->epoch();
  MdsId auth = 0;  // matches authority_of()'s undelegated-root default
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    FsNode* n = *it;
    MdsId a;
    if (lagging) {
      a = map_authority(n);
    } else {
      auth = ctx_.partition.authority_step(n, auth);
      a = auth;
    }
    if (ctx_.traits.dynamic_dirfrag && n->parent() != nullptr &&
        ctx_.dirfrag.is_fragmented(n->parent()->ino())) {
      a = ctx_.dirfrag.dentry_authority(n->parent()->ino(), n->name());
    }
    LocationHint h;
    h.ino = n->ino();
    h.authority = a;
    h.replicated_everywhere = tc && is_replicated_everywhere(n->ino());
    out.hints.push_back(h);
  }
}

// --------------------------------------------------------------------------
// Dynamic directory fragmentation
// --------------------------------------------------------------------------

void MdsNode::drop_foreign_dentries(FsNode* dir) {
  // Children-first order is unnecessary here: only direct children of the
  // directory change authority, and any that anchor cached grandchildren
  // must be kept (they fall out as the grandchildren expire).
  std::vector<InodeId> victims;
  cache_.for_each([&](CacheEntry& e) {
    if (e.node->parent() == dir && authority_for(e.node) != id_ &&
        e.authoritative && e.cached_children == 0 && e.pins == 0) {
      victims.push_back(e.node->ino());
    }
  });
  for (InodeId ino : victims) cache_.erase(ino);
}

void MdsNode::maybe_fragment_dir(FsNode* dir, CacheEntry* entry) {
  (void)entry;
  const SimTime now = ctx_.sim.now();
  const MdsParams& P = ctx_.params;
  const double pop = dir_op_temperature(dir->ino(), now);
  const bool fragged = ctx_.dirfrag.is_fragmented(dir->ino());

  if (!fragged) {
    // Only the directory's authority makes the call.
    if (ctx_.partition.authority_of(dir) != id_) return;
    const bool too_big = dir->child_count() >= P.dirfrag_size_threshold;
    const bool too_hot = pop >= P.dirfrag_temp_threshold;
    if (!too_big && !too_hot) return;
    ctx_.dirfrag.fragment(dir->ino());
    ++ctx_.dirfrag.fragment_events;
  } else {
    if (ctx_.partition.authority_of(dir) != id_) return;
    const bool cooled =
        pop < P.dirfrag_temp_threshold * P.dirfrag_hysteresis &&
        dir->child_count() <
            static_cast<std::size_t>(P.dirfrag_size_threshold *
                                     P.dirfrag_hysteresis);
    if (!cooled) return;
    ctx_.dirfrag.unfragment(dir->ino());
    ++ctx_.dirfrag.merge_events;
  }

  // Announce the transition; everyone sheds dentries they no longer own.
  for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
    if (peer == id_) continue;
    auto msg = std::make_unique<DirFragNotifyMsg>();
    msg->dir = dir->ino();
    msg->fragmented = !fragged;
    ctx_.net.send(id_, peer, std::move(msg));
  }
  drop_foreign_dentries(dir);
}

void MdsNode::handle_dirfrag_notify(const DirFragNotifyMsg& m) {
  FsNode* dir = ctx_.tree.by_ino(m.dir);
  if (dir == nullptr) return;
  drop_foreign_dentries(dir);
}

}  // namespace mdsim

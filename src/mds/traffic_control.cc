// Traffic control (paper section 4.4): the authority monitors per-item
// popularity with decayed access counters; replies carry distribution
// information for the target and its prefixes; popular items are
// preemptively replicated cluster-wide so flash crowds spread across all
// nodes instead of converging on the authority. Also hosts the dynamic
// directory fragmentation decisions (section 4.3).
#include <algorithm>
#include <cassert>

#include "mds/mds_node.h"

namespace mdsim {

void MdsNode::note_popularity(RequestPtr req) {
  if (!req->counts_as_served || req->target == nullptr) return;
  const SimTime now = ctx_.sim.now();

  if (ctx_.traits.load_balancing) bump_subtree_load(req->target);

  CacheEntry* e = cache_.peek(req->target->ino());
  if (e == nullptr) return;

  if (ctx_.traits.traffic_control && ctx_.params.traffic_control_enabled) {
    maybe_replicate(req->target, e);
  }
  if (ctx_.traits.dynamic_dirfrag && ctx_.params.dirfrag_enabled) {
    // Only namespace-mutating ops heat a directory toward fragmentation.
    FsNode* dir = nullptr;
    switch (req->msg.op) {
      case OpType::kCreate:
      case OpType::kMkdir:
      case OpType::kLink:
        dir = req->target;  // the containing directory
        break;
      case OpType::kUnlink:
      case OpType::kRmdir:
      case OpType::kRename:
        dir = req->target->parent();
        break;
      default:
        break;
    }
    if (dir != nullptr) {
      EntryAux& a = cache_.aux_ensure(dir->ino());
      if (!a.has_dir_temp) {
        a.dir_op_temp = DecayCounter(ctx_.params.popularity_half_life);
        a.has_dir_temp = true;
      }
      a.dir_op_temp.hit(now);
      CacheEntry* de = cache_.peek(dir->ino());
      if (de != nullptr) maybe_fragment_dir(dir, de);
    }
  }
}

void MdsNode::maybe_replicate(FsNode* node, CacheEntry* entry) {
  const InodeId ino = node->ino();
  if (is_replicated_everywhere(ino)) return;
  if (authority_for(node) != id_) return;
  const double pop = entry->popularity.get(ctx_.sim.now());
  if (pop < ctx_.params.replication_threshold) return;

  // Replicate everywhere and remember it; future replies tell clients to
  // pick any node.
  cache_.aux_ensure(ino).replicated_everywhere = true;
  for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
    if (peer == id_) continue;
    register_replica(ino, peer);
    push_unsolicited_replica(node, peer);
  }
}

void MdsNode::push_unsolicited_replica(FsNode* node, MdsId to) {
  auto msg = std::make_unique<ReplicaGrantMsg>();
  msg->ino = node->ino();
  msg->unsolicited = true;
  msg->version = node->inode().version;
  ++stats_.replica_grants;
  ctx_.net.send(id_, to, std::move(msg));
}

void MdsNode::maybe_unreplicate() {
  if (!ctx_.traits.traffic_control) return;
  const SimTime now = ctx_.sim.now();
  // One sweep over the sidecar records: prune cold directory-op
  // temperature counters (re-evaluating fragmentation of still-hot ones
  // whose storms have ended), and drop stale replicate-everywhere marks.
  cache_.for_each_aux([&](InodeId ino, EntryAux& a) {
    bool dirty = false;
    if (a.has_dir_temp) {
      if (a.dir_op_temp.get(now) < 0.5 && !ctx_.dirfrag.is_fragmented(ino)) {
        a.has_dir_temp = false;
        a.dir_op_temp = DecayCounter();
        dirty = true;
      } else if (ctx_.dirfrag.is_fragmented(ino)) {
        FsNode* dir = ctx_.tree.by_ino(ino);
        if (dir != nullptr) maybe_fragment_dir(dir, nullptr);
      }
    }
    if (a.replicated_everywhere) {
      FsNode* node = ctx_.tree.by_ino(ino);
      bool drop = node == nullptr;
      if (!drop && authority_for(node) == id_) {
        CacheEntry* e = cache_.peek(ino);
        const double pop = e ? e->popularity.get(now) : 0.0;
        drop = pop < ctx_.params.unreplicate_threshold;
      }
      // Marks we merely *learned* (non-authority) expire with the replica
      // itself (handled on eviction/invalidation).
      if (drop) {
        a.replicated_everywhere = false;
        dirty = true;
      }
    }
    if (dirty) cache_.aux_gc(ino);
  });
}

void MdsNode::fill_hints(const RequestPtr& req, ClientReplyMsg& out) {
  if (req->target == nullptr) return;
  // Distribution info for the target and its prefix directories (clients
  // cache these and direct future requests accordingly). Runs once per
  // reply over the whole ancestry, so authority is resolved root-down
  // with authority_step() — one delegation-table load per node instead
  // of a full parent-chain walk per node (O(depth) total, not O(depth²)).
  const bool tc = ctx_.traits.traffic_control &&
                  ctx_.params.traffic_control_enabled;
  static thread_local std::vector<FsNode*> path;
  path.clear();
  for (FsNode* n = req->target; n != nullptr; n = n->parent()) {
    path.push_back(n);
  }
  // A fenced node resolves against the map as of its frozen view; rare,
  // and not expressible incrementally — take the per-node path.
  const bool lagging =
      subtree_map_ != nullptr && view_epoch_ != subtree_map_->epoch();
  MdsId auth = 0;  // matches authority_of()'s undelegated-root default
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    FsNode* n = *it;
    MdsId a;
    if (lagging) {
      a = map_authority(n);
    } else {
      auth = ctx_.partition.authority_step(n, auth);
      a = auth;
    }
    if (ctx_.traits.dynamic_dirfrag && n->parent() != nullptr &&
        ctx_.dirfrag.is_fragmented(n->parent()->ino())) {
      a = ctx_.dirfrag.dentry_authority(n->parent()->ino(), n->name());
    }
    if (ctx_.traits.dynamic_dirfrag && n->is_dir()) {
      // GIGA+ piggyback: the deepest fragmented directory on the path
      // wins (root-down loop, so later assignments are deeper). A
      // since-unhashed directory gets bitmap 0 so stale clients drop
      // their cached map instead of routing by it forever.
      if (ctx_.dirfrag.is_fragmented(n->ino())) {
        const auto* g = ctx_.dirfrag.find(n->ino());
        if (g != nullptr && g->giga) {
          out.giga_dir = n->ino();
          out.giga_bitmap = g->bitmap;
          out.giga_home = g->home;
        }
      } else if (ctx_.dirfrag.changed_ever(n->ino())) {
        out.giga_dir = n->ino();
        out.giga_bitmap = 0;
        out.giga_home = kInvalidMds;
      }
    }
    LocationHint h;
    h.ino = n->ino();
    h.authority = a;
    h.replicated_everywhere = tc && is_replicated_everywhere(n->ino());
    out.hints.push_back(h);
  }
}

// --------------------------------------------------------------------------
// Dynamic directory fragmentation
// --------------------------------------------------------------------------

void MdsNode::drop_foreign_dentries(FsNode* dir) {
  // Children-first order is unnecessary here: only direct children of the
  // directory change authority, and any that anchor cached grandchildren
  // must be kept (they fall out as the grandchildren expire).
  std::vector<InodeId> victims;
  cache_.for_each([&](CacheEntry& e) {
    if (e.node->parent() == dir && authority_for(e.node) != id_ &&
        e.authoritative && e.cached_children == 0 && e.pins == 0) {
      victims.push_back(e.node->ino());
    }
  });
  for (InodeId ino : victims) cache_.erase(ino);
}

void MdsNode::maybe_fragment_dir(FsNode* dir, CacheEntry* entry) {
  // Per-op calls pass the directory's cache entry; the heartbeat sweep
  // passes null (giga pair-merges run only on the sweep cadence).
  const bool sweep = entry == nullptr;
  const SimTime now = ctx_.sim.now();
  const MdsParams& P = ctx_.params;
  const double pop = dir_op_temperature(dir->ino(), now);
  // Activity floor: a size trigger must also see real traffic. That lets
  // the cooled test be about temperature alone — a stone-cold directory
  // unhashes no matter how many children it keeps (children don't
  // vanish, so a size term in the merge condition made size-fragmented
  // directories permanent).
  const double floor = P.dirfrag_temp_threshold * P.dirfrag_hysteresis;

  // Only the directory's authority makes these calls.
  if (ctx_.partition.authority_of(dir) != id_) return;

  if (!ctx_.dirfrag.is_fragmented(dir->ino())) {
    const bool too_hot = pop >= P.dirfrag_temp_threshold;
    const bool too_big =
        dir->child_count() >= P.dirfrag_size_threshold && pop >= floor;
    if (!too_big && !too_hot) return;
    // Seed partition 0 with the directory's current op temperature so a
    // just-fragmented hot directory doesn't read as stone-cold on the
    // next sweep and immediately unhash.
    ctx_.dirfrag.fragment(dir->ino(), id_, P.giga_enabled,
                          /*by_size=*/too_big && !too_hot,
                          dir->child_count(), pop, now,
                          P.popularity_half_life);
    broadcast_dirfrag_notify(dir->ino(), /*fragmented=*/true);
    drop_foreign_dentries(dir);
    dirfrag_seen_gen_ = ctx_.dirfrag.generation();
    return;
  }

  const auto* g = ctx_.dirfrag.find(dir->ino());
  if (g == nullptr) return;
  if (g->giga) {
    if (sweep) maybe_merge_partitions(dir);
    return;
  }
  // Legacy all-at-once entry: unhash on temperature, scaled by the
  // trigger that fragmented it (size-fragmented directories need a
  // deeper chill before re-consolidating — the size condition that
  // hashed them still holds, so plain hysteresis would flap).
  const double cooled_at = floor * (g->by_size ? P.dirfrag_hysteresis : 1.0);
  if (pop >= cooled_at) return;
  ctx_.dirfrag.unfragment(dir->ino(), dir->child_count());
  broadcast_dirfrag_notify(dir->ino(), /*fragmented=*/false);
  drop_foreign_dentries(dir);
  dirfrag_seen_gen_ = ctx_.dirfrag.generation();
}

void MdsNode::giga_note_namespace_op(FsNode* dir, const std::string& name,
                                     int delta) {
  if (!ctx_.traits.dynamic_dirfrag) return;
  const InodeId ino = dir->ino();
  if (!ctx_.dirfrag.is_fragmented(ino)) return;
  if (delta > 0) {
    ctx_.dirfrag.note_create(ino, name);
  } else {
    ctx_.dirfrag.note_remove(ino, name);
  }
  ctx_.dirfrag.note_heat(ino, name, ctx_.sim.now());
  if (delta > 0) maybe_split_partition(dir, name);
}

void MdsNode::maybe_split_partition(FsNode* dir, const std::string& name) {
  const SimTime now = ctx_.sim.now();
  const MdsParams& P = ctx_.params;
  const InodeId ino = dir->ino();
  const auto* g = ctx_.dirfrag.find(ino);
  if (g == nullptr || !g->giga) return;

  const std::uint32_t p =
      giga_partition(giga_name_hash(ino, name), g->bitmap,
                     ctx_.dirfrag.max_depth());
  const int d = giga_depth_of(g->bitmap, p, ctx_.dirfrag.max_depth());
  if (d >= ctx_.dirfrag.max_depth()) return;

  const std::size_t split_size =
      P.giga_split_size != 0 ? P.giga_split_size : P.dirfrag_size_threshold;
  const double split_temp =
      P.giga_split_temp != 0.0 ? P.giga_split_temp : P.dirfrag_temp_threshold;
  const double floor = P.dirfrag_temp_threshold * P.dirfrag_hysteresis;
  const double temp = g->temps[p].get(now);
  const bool hot = temp >= split_temp;
  const bool full = g->counts[p] >= split_size && temp >= floor;
  if (!hot && !full) return;

  // Exact rehash of the one splitting partition: count which of its
  // dentries stay and which move to the new child. Only this partition's
  // entries are touched — the incremental property the bench asserts.
  const std::uint32_t c = p + (1u << d);
  const std::uint64_t next_bitmap = g->bitmap | (std::uint64_t{1} << c);
  std::uint64_t stay = 0;
  std::uint64_t move = 0;
  for (const FsNode* child : dir->children_list()) {
    const std::uint64_t h = giga_name_hash(ino, child->name());
    if (giga_partition(h, g->bitmap, ctx_.dirfrag.max_depth()) != p) continue;
    if (giga_partition(h, next_bitmap, ctx_.dirfrag.max_depth()) == c) {
      ++move;
    } else {
      ++stay;
    }
  }
  ctx_.dirfrag.split(ino, p, stay, move, now);
  broadcast_dirfrag_notify(ino, /*fragmented=*/true);
  drop_foreign_dentries(dir);
  dirfrag_seen_gen_ = ctx_.dirfrag.generation();
}

void MdsNode::maybe_merge_partitions(FsNode* dir) {
  const SimTime now = ctx_.sim.now();
  const MdsParams& P = ctx_.params;
  const InodeId ino = dir->ino();
  const auto* g = ctx_.dirfrag.find(ino);
  if (g == nullptr || !g->giga) return;
  const double floor = P.dirfrag_temp_threshold * P.dirfrag_hysteresis;

  if (g->bitmap != 1) {
    // Fold at most one cold leaf back into its parent per sweep (merges
    // reverse one split at a time). Deepest-index first: the partitions
    // a cooling storm created last go first, deterministically.
    for (int c = 63; c > 0; --c) {
      if (((g->bitmap >> c) & 1) == 0) continue;
      const std::uint32_t cp = static_cast<std::uint32_t>(c);
      // A partition with split-off children of its own is not a leaf.
      if (giga_depth_of(g->bitmap, cp, ctx_.dirfrag.max_depth()) !=
          static_cast<int>(std::bit_width(cp))) {
        continue;
      }
      const std::uint32_t q = cp ^ (1u << (std::bit_width(cp) - 1));
      const double combined = g->temps[q].get(now) + g->temps[cp].get(now);
      if (combined >= floor * P.dirfrag_hysteresis) continue;
      ctx_.dirfrag.merge_pair(ino, q, cp, now);
      broadcast_dirfrag_notify(ino, /*fragmented=*/true);
      drop_foreign_dentries(dir);
      dirfrag_seen_gen_ = ctx_.dirfrag.generation();
      return;
    }
    return;
  }

  // Fully merged back to one partition at home: unhash once cold, with
  // the same trigger-dependent chill as the legacy path.
  const double cooled_at = floor * (g->by_size ? P.dirfrag_hysteresis : 1.0);
  if (ctx_.dirfrag.total_temp(ino, now) >= cooled_at) return;
  ctx_.dirfrag.unfragment(ino);
  broadcast_dirfrag_notify(ino, /*fragmented=*/false);
  drop_foreign_dentries(dir);
  dirfrag_seen_gen_ = ctx_.dirfrag.generation();
}

void MdsNode::broadcast_dirfrag_notify(InodeId dir, bool fragmented) {
  const auto* g = ctx_.dirfrag.find(dir);
  for (MdsId peer = 0; peer < ctx_.num_mds; ++peer) {
    if (peer == id_) continue;
    auto msg = std::make_unique<DirFragNotifyMsg>();
    msg->dir = dir;
    msg->fragmented = fragmented;
    msg->bitmap = g != nullptr ? g->bitmap : 0;
    msg->gen = ctx_.dirfrag.generation();
    ctx_.net.send(id_, peer, std::move(msg));
  }
}

void MdsNode::handle_dirfrag_notify(const DirFragNotifyMsg& m) {
  // Best-effort fast path; the generation carried on heartbeats is what
  // guarantees a peer that missed this message still re-syncs. The
  // seen-generation is deliberately NOT advanced here: a notify covers
  // one directory, while the generation covers all of them, and the
  // redundant re-drop on the next heartbeat is idempotent.
  FsNode* dir = ctx_.tree.by_ino(m.dir);
  if (dir == nullptr) return;
  drop_foreign_dentries(dir);
}

void MdsNode::dirfrag_resync(std::uint64_t peer_gen) {
  if (peer_gen <= dirfrag_seen_gen_) return;
  ++stats_.dirfrag_resyncs;
  for (InodeId ino : ctx_.dirfrag.changes_since(dirfrag_seen_gen_)) {
    FsNode* dir = ctx_.tree.by_ino(ino);
    if (dir != nullptr) drop_foreign_dentries(dir);
  }
  dirfrag_seen_gen_ = ctx_.dirfrag.generation();
}

void MdsNode::send_giga_redirect(const ClientRequestMsg& m, InodeId dir) {
  const auto* g = ctx_.dirfrag.find(dir);
  if (g == nullptr) return;
  auto msg = std::make_unique<GigaRedirectMsg>();
  msg->dir = dir;
  msg->bitmap = g->bitmap;
  msg->home = g->home;
  ++stats_.giga_redirects_sent;
  ctx_.net.send(id_, m.client_addr, std::move(msg));
}

}  // namespace mdsim

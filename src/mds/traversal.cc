// Path traversal engine: walks a request's prefix chain, filling cache
// misses from local disk (when this node is the authority) or from peers
// (replica fetches), with coalescing so concurrent misses on the same
// inode share one fetch. Also implements the replica request/grant
// protocol and the Lazy Hybrid background drain.
#include <cassert>

#include "mds/mds_node.h"

namespace mdsim {

void MdsNode::advance_traversal(RequestPtr req) {
  const SimTime now = ctx_.sim.now();
  while (req->chain_idx < req->chain.size()) {
    FsNode* node = req->chain[req->chain_idx];
    CacheEntry* e = cache_.lookup(node->ino(), now);
    if (e != nullptr) {
      // POSIX semantics: the requesting user must be able to traverse
      // every ancestor directory (paper section 4.1).
      if (node->is_dir() &&
          !node->inode().perms.allows_traverse(req->msg.uid)) {
        fail(std::move(req));
        return;
      }
      ++req->chain_idx;
      continue;
    }
    stats_.miss_rate.add();
    const MdsId auth = authority_for(node);
    // Local miss: the initiating request's disk span tiles the wait, and
    // a coalesced joiner charges the whole park to fetch-wait at resume.
    // Remote miss: the entire request->grant round trip (including any
    // paging at the authority) is replica-wait.
    const TraceStage wait_stage = auth == id_ ? TraceStage::kFetchWait
                                              : TraceStage::kReplicaWait;
    auto resume = [this, req, wait_stage](CacheEntry* entry) {
      trace_mark(req->msg, wait_stage);
      if (entry == nullptr) {
        fail(req);
        return;
      }
      advance_traversal(req);
    };
    if (auth == id_) {
      fetch_local(node, InsertKind::kPrefix, std::move(resume),
                  /*single_item=*/false, disk_span(req));
    } else {
      fetch_replica(node, auth, InsertKind::kPrefix, std::move(resume));
    }
    return;  // resumed by the fetch completion
  }
  serve_target(std::move(req));
}

std::uint32_t MdsNode::fetch_cost_nodes(FsNode* node) {
  if (!ctx_.traits.whole_directory_io) return 1;  // one scattered inode
  FsNode* dir = node->parent() != nullptr ? node->parent() : node;
  const std::uint32_t full = ctx_.store.full_fetch_nodes(dir);
  if (ctx_.traits.dynamic_dirfrag && ctx_.dirfrag.is_fragmented(dir->ino())) {
    // A fragmented directory is split into fragment objects; each node
    // only reads its own shard. GIGA+ entries know the exact per-node
    // dentry share (round-robin partitions of unequal sizes); legacy
    // all-at-once hashing stays the even 1/num_mds split it always was.
    const auto* g = ctx_.dirfrag.find(dir->ino());
    if (g != nullptr && g->giga) {
      const double share = ctx_.dirfrag.shard_fraction(dir->ino(), id_);
      return std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(static_cast<double>(full) * share));
    }
    return std::max<std::uint32_t>(
        1, full / static_cast<std::uint32_t>(ctx_.num_mds));
  }
  return full;
}

void MdsNode::prefetch_children(FsNode* dir) {
  if (!ctx_.traits.whole_directory_io) return;
  if (cache_.peek(dir->ino()) == nullptr) return;  // parent must anchor
  const SimTime now = ctx_.sim.now();
  for (FsNode* c : dir->children_list()) {
    if (cache_.peek(c->ino()) != nullptr) continue;
    if (authority_for(c) != id_) continue;  // not ours to cache
    cache_.insert(c, InsertKind::kPrefetch, /*authoritative=*/true, now);
  }
}

CacheEntry* MdsNode::cache_insert_anchored(FsNode* node, InsertKind kind,
                                           bool authoritative) {
  const SimTime now = ctx_.sim.now();
  if (ctx_.traits.path_traversal && node->parent() != nullptr) {
    static thread_local std::vector<FsNode*> chain;
    node->ancestry_into(chain);
    chain.pop_back();
    for (FsNode* a : chain) {
      if (cache_.peek(a->ino()) != nullptr) continue;
      const MdsId auth = authority_for(a);
      cache_.insert(a, InsertKind::kPrefix, auth == id_, now);
      if (auth != id_) {
        ctx_.nodes[static_cast<std::size_t>(auth)]->register_replica(
            a->ino(), id_);
      }
    }
  }
  return cache_.insert(node, kind, authoritative, now);
}

void MdsNode::fetch_local(FsNode* node, InsertKind kind,
                          std::function<void(CacheEntry*)> done,
                          bool single_item, TraceSpan span) {
  const SimTime now = ctx_.sim.now();
  // Uncounted lookup (not a client-visible cache probe) so serving
  // replica grants keeps the underlying items LRU-warm: a prefix the
  // whole cluster keeps asking for must not age out at its authority.
  if (CacheEntry* e = cache_.lookup(node->ino(), now, /*count_stats=*/false)) {
    if (kind == InsertKind::kDemand) {
      cache_.insert(node, kind, e->authoritative, now);  // upgrade
    }
    done(e);
    return;
  }
  const InodeId ino = node->ino();
  const bool first =
      cache_.add_fetch_waiter(ino, FetchChannel::kDisk, std::move(done));
  if (!first) return;  // coalesced with an in-flight fetch

  std::uint32_t nodes;
  if (single_item && node->parent() != nullptr) {
    // One dentry: a root-to-leaf B+tree lookup in the parent's object.
    nodes = ctx_.store.lookup_nodes(node->parent(), node->name());
  } else {
    nodes = fetch_cost_nodes(node);
  }
  const bool prefetch = !single_item;
  // Only the first waiter reaches here, so `span` is the initiator's:
  // its disk queue/service time rides the shared read; joiners attribute
  // their park to fetch-wait when resumed below.
  disk_.read_object(nodes, span, [this, ino, kind, prefetch]() {
    auto waiters = cache_.take_fetch_waiters(ino, FetchChannel::kDisk);

    FsNode* node = ctx_.tree.by_ino(ino);
    if (node != nullptr) {
      cache_insert_anchored(node, kind, /*authoritative=*/true);
      // Embedded inodes: the whole directory came along for free.
      if (prefetch && ctx_.traits.whole_directory_io &&
          node->parent() != nullptr) {
        prefetch_children(node->parent());
      }
    }
    // Re-peek per waiter: an earlier waiter's continuation may insert
    // other items and evict the entry (or the whole node may vanish).
    for (auto& w : waiters) {
      w(node != nullptr ? cache_.peek(ino) : nullptr);
    }
  });
}

void MdsNode::fetch_replica(FsNode* node, MdsId auth, InsertKind kind,
                            std::function<void(CacheEntry*)> done) {
  (void)kind;  // replicas of prefixes always enter as kPrefix on grant
  if (CacheEntry* e = cache_.peek(node->ino())) {
    done(e);
    return;
  }
  const InodeId ino = node->ino();
  const bool first =
      cache_.add_fetch_waiter(ino, FetchChannel::kReplica, std::move(done));
  if (!first) return;  // coalesced with an in-flight request

  // Heartbeat-swept give-up deadline: if the grant is lost (dropped
  // message, authority died) the waiters fail instead of coalescing
  // behind a request that will never complete.
  replica_fetch_deadline_[ino] =
      ctx_.sim.now() + ctx_.params.replica_fetch_timeout;

  ++stats_.replica_requests_sent;
  auto msg = std::make_unique<ReplicaRequestMsg>();
  msg->ino = ino;
  msg->xid = next_xid_++;
  ctx_.net.send(id_, auth, std::move(msg));
}

void MdsNode::handle_replica_request(NetAddr from, const ReplicaRequestMsg& m) {
  const InodeId ino = m.ino;
  const MdsId requester = from;  // MDS addresses == ids
  charge_cpu(ctx_.params.cpu_replica, [this, ino, requester]() {
    FsNode* node = ctx_.tree.by_ino(ino);
    auto grant = [this, ino, requester](CacheEntry* entry) {
      auto g = std::make_unique<ReplicaGrantMsg>();
      g->ino = ino;
      // The entry pointer may have been invalidated by intervening cache
      // churn; the grant payload comes from the ground truth anyway.
      FsNode* node = ctx_.tree.by_ino(ino);
      if (entry != nullptr && node != nullptr) {
        register_replica(ino, requester);
        g->version = node->inode().version;
      } else {
        g->version = 0;  // vanished; requester fails its op
      }
      ++stats_.replica_grants;
      ctx_.net.send(id_, requester, std::move(g));
    };
    if (node == nullptr) {
      grant(nullptr);
      return;
    }
    // The authority itself may need to page the item (and its own prefix
    // chain) in before granting.
    insert_with_prefixes(node, InsertKind::kDemand, /*authoritative=*/true,
                         /*have_payload=*/false, std::move(grant));
  });
}

void MdsNode::handle_replica_grant(NetAddr from, const ReplicaGrantMsg& m) {
  (void)from;
  const InodeId ino = m.ino;
  FsNode* node = m.version != 0 ? ctx_.tree.by_ino(ino) : nullptr;

  if (m.unsolicited) {
    // Traffic control push: the grant carries the popular item AND its
    // prefix chain (the pusher had them all in cache), so installation
    // needs no round trips — crucially, none through the very node the
    // crowd is saturating. cache_insert_anchored installs the missing
    // ancestors as registered replicas directly.
    if (node != nullptr) {
      cache_insert_anchored(node, InsertKind::kDemand,
                            /*authoritative=*/false);
      cache_.aux_ensure(ino).replicated_everywhere = true;
    }
    return;
  }

  replica_fetch_deadline_.erase(ino);
  auto waiters = cache_.take_fetch_waiters(ino, FetchChannel::kReplica);
  if (waiters.empty()) return;  // raced with invalidation

  if (node == nullptr) {
    for (auto& w : waiters) w(nullptr);
    return;
  }
  insert_with_prefixes(
      node, InsertKind::kPrefix, /*authoritative=*/false,
      /*have_payload=*/true,
      [this, ino, waiters = std::move(waiters)](CacheEntry* e) {
        // Re-peek per waiter (see fetch_local): continuations may churn
        // the cache under each other.
        for (auto& w : waiters) {
          w(e != nullptr ? cache_.peek(ino) : nullptr);
        }
      });
}

void MdsNode::insert_with_prefixes(FsNode* node, InsertKind kind,
                                   bool authoritative, bool have_payload,
                                   std::function<void(CacheEntry*)> done) {
  const SimTime now = ctx_.sim.now();
  if (!ctx_.traits.path_traversal) {
    // Lazy Hybrid caches items free-standing (no prefix chain).
    if (have_payload || cache_.peek(node->ino()) != nullptr) {
      done(cache_.insert(node, kind, authoritative, now));
    } else {
      fetch_local(node, kind, std::move(done));
    }
    return;
  }

  // Walk root -> node, filling the first missing item each step. The op
  // is shared by the continuations parked across async fetches and frees
  // when the last reference drops — including when a simulation ends (or
  // a rejoin clears the waiter lists) with the walk still stalled.
  struct PrefixWalkOp {
    MdsNode* self;
    FsNode* node;
    InsertKind kind;
    bool authoritative;
    bool have_payload;
    std::function<void(CacheEntry*)> done;
    std::vector<FsNode*> chain;
    std::size_t idx = 0;

    void finish(CacheEntry* e) { done(e); }

    void step(const std::shared_ptr<PrefixWalkOp>& op) {
      while (idx < chain.size()) {
        FsNode* cur = chain[idx];
        const bool is_target = cur == node;
        if (self->cache_.lookup(cur->ino(), self->ctx_.sim.now(),
                                /*count_stats=*/false) != nullptr) {
          if (is_target) {
            // Refresh semantics (upgrade prefix -> demand etc.).
            finish(self->cache_insert_anchored(node, kind, authoritative));
            return;
          }
          ++idx;
          continue;
        }
        if (is_target && have_payload) {
          // The item's bits arrived over the wire: no I/O for the item
          // itself; its (now resident) prefix chain anchors it.
          finish(self->cache_insert_anchored(node, kind, authoritative));
          return;
        }
        const InsertKind k = is_target ? kind : InsertKind::kPrefix;
        const MdsId auth = self->authority_for(cur);
        auto resume = [op, is_target](CacheEntry* e) {
          if (e == nullptr) {
            op->finish(nullptr);
            return;
          }
          if (is_target) {
            op->finish(e);
            return;
          }
          ++op->idx;
          op->step(op);
        };
        if (auth == self->id_) {
          // Grant/installation path: read the one dentry, not the whole
          // directory (no locality to exploit on another node's behalf).
          self->fetch_local(cur, k, std::move(resume),
                            /*single_item=*/true);
        } else {
          self->fetch_replica(cur, auth, k, std::move(resume));
        }
        return;  // resumed by the fetch completion
      }
      finish(self->cache_.peek(node->ino()));
    }
  };

  auto op = std::make_shared<PrefixWalkOp>(
      PrefixWalkOp{this, node, kind, authoritative, have_payload,
                   std::move(done), node->ancestry(), 0});
  op->step(op);
}

// --------------------------------------------------------------------------
// Lazy Hybrid background propagation
// --------------------------------------------------------------------------

void MdsNode::lh_drain_tick() {
  assert(ctx_.lazy != nullptr);
  const MdsParams& P = ctx_.params;
  lh_drain_carry_ += P.lh_drain_rate * to_seconds(P.lh_drain_tick_period);
  int budget = static_cast<int>(lh_drain_carry_);
  lh_drain_carry_ -= budget;
  while (budget-- > 0) {
    FsNode* f = ctx_.lazy->drain_one();
    if (f == nullptr) break;
    // One network trip per affected file: notify its authority, which
    // journals the refreshed ACL/location.
    const MdsId auth = authority_for(f);
    auto msg = std::make_unique<LazyHybridUpdateMsg>();
    msg->ino = f->ino();
    ctx_.net.send(id_, auth, std::move(msg));
  }
  ctx_.sim.schedule(P.lh_drain_tick_period, [this]() { lh_drain_tick(); });
}

void MdsNode::handle_lh_update(const LazyHybridUpdateMsg& m) {
  const InodeId ino = m.ino;
  charge_cpu(ctx_.params.cpu_replica, [this, ino]() {
    journal_.append(ino);
    disk_.journal_append([]() {});
  });
}

}  // namespace mdsim

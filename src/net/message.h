// Message base class for the simulated cluster interconnect.
//
// Concrete message types are defined by the layers that use them (the MDS
// protocol in src/mds/messages.h, the client protocol in the same place).
// The network layer only needs a type tag (for per-type statistics) and an
// approximate wire size (for future bandwidth modelling).
#pragma once

#include <cstdint>
#include <memory>

namespace mdsim {

/// Network addresses. MDS nodes occupy [0, cluster_size); clients are
/// assigned addresses at cluster_size + client_id.
using NetAddr = std::int32_t;
constexpr NetAddr kInvalidAddr = -1;

enum class MsgType : std::uint8_t {
  // Client <-> MDS
  kClientRequest,
  kClientReply,
  // MDS <-> MDS
  kForwardedRequest,
  kReplicaRequest,   // fetch inode(s) for prefix/replica caching
  kReplicaGrant,
  kReplicaDrop,      // replica holder discards; authority may release
  kCacheInvalidate,  // authority -> replicas on update
  kCacheUpdateAck,
  kHeartbeat,        // load exchange for the balancer
  kMigratePrepare,   // double-commit subtree migration
  kMigrateCommit,
  kMigrateAck,
  kLazyHybridUpdate,  // LH propagation traffic
  kDirFragNotify,     // directory hash/unhash announcements
  // GPFS-style distributed attribute updates (paper section 4.2):
  kAttrDirty,     // replica tells authority it holds local attr deltas
  kAttrFlush,     // replica ships accumulated deltas to the authority
  kAttrCallback,  // authority demands an immediate flush (client read)
  kMigrateAbort,  // exporter cancels an unacked migration (timeout)
};

constexpr const char* msg_name(MsgType t) {
  switch (t) {
    case MsgType::kClientRequest: return "client_request";
    case MsgType::kClientReply: return "client_reply";
    case MsgType::kForwardedRequest: return "forward";
    case MsgType::kReplicaRequest: return "replica_request";
    case MsgType::kReplicaGrant: return "replica_grant";
    case MsgType::kReplicaDrop: return "replica_drop";
    case MsgType::kCacheInvalidate: return "invalidate";
    case MsgType::kCacheUpdateAck: return "update_ack";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kMigratePrepare: return "migrate_prepare";
    case MsgType::kMigrateCommit: return "migrate_commit";
    case MsgType::kMigrateAck: return "migrate_ack";
    case MsgType::kLazyHybridUpdate: return "lh_update";
    case MsgType::kDirFragNotify: return "dirfrag";
    case MsgType::kAttrDirty: return "attr_dirty";
    case MsgType::kAttrFlush: return "attr_flush";
    case MsgType::kAttrCallback: return "attr_callback";
    case MsgType::kMigrateAbort: return "migrate_abort";
  }
  return "?";
}

constexpr int kNumMsgTypes = 18;

struct Message;
using MessagePtr = std::unique_ptr<Message>;

struct Message {
  explicit Message(MsgType t, std::uint32_t bytes = 64)
      : type(t), size_bytes(bytes) {}
  virtual ~Message() = default;

  /// Deep copy, used by the network's duplication injection: the second
  /// delivery must carry the full payload, so every concrete message type
  /// overrides this. The base implementation covers untyped (test-only)
  /// messages.
  virtual MessagePtr clone() const { return std::make_unique<Message>(*this); }

  MsgType type;
  std::uint32_t size_bytes;
};

/// Anything that can receive messages from the network.
class NetEndpoint {
 public:
  virtual ~NetEndpoint() = default;
  virtual void on_message(NetAddr from, MessagePtr msg) = 0;
};

}  // namespace mdsim

// Message base class for the simulated cluster interconnect.
//
// Concrete message types are defined by the layers that use them (the MDS
// protocol in src/mds/messages.h, the client protocol in the same place).
// The network layer only needs a type tag (for per-type statistics) and an
// approximate wire size (for future bandwidth modelling).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

namespace mdsim {

/// Size-class recycler backing every protocol message allocation.
///
/// The cluster exchanges hundreds of thousands of short-lived messages per
/// simulated second; allocating each through the global heap is the single
/// largest hidden cost on the request hot path. Freed blocks are chained
/// onto a per-thread, per-size-class free list (the first word of the dead
/// block is the link) and handed back on the next allocation of that
/// class. Blocks migrate between threads with the messages that carry
/// them: a block freed on a consuming shard's thread joins that thread's
/// list — safe, because the cross-shard mailbox protocol orders the
/// producer's writes before the consumer's reuse. Lists are drained back
/// to the heap at thread exit, so sanitizers see no leak.
class MessagePool {
 public:
  static constexpr std::size_t kClassBytes = 64;
  static constexpr std::size_t kNumClasses = 8;  // up to 512-byte messages

  static void* allocate(std::size_t bytes) {
    const std::size_t cls = (bytes + kClassBytes - 1) / kClassBytes;
    if (cls == 0 || cls > kNumClasses) return ::operator new(bytes);
    void*& head = lists().head[cls - 1];
    if (head == nullptr) return ::operator new(cls * kClassBytes);
    void* p = head;
    head = *static_cast<void**>(p);
    return p;
  }

  static void deallocate(void* p, std::size_t bytes) {
    const std::size_t cls = (bytes + kClassBytes - 1) / kClassBytes;
    if (cls == 0 || cls > kNumClasses) {
      ::operator delete(p);
      return;
    }
    void*& head = lists().head[cls - 1];
    *static_cast<void**>(p) = head;
    head = p;
  }

 private:
  struct FreeLists {
    void* head[kNumClasses] = {};
    ~FreeLists() {
      for (void* p : head) {
        while (p != nullptr) {
          void* next = *static_cast<void**>(p);
          ::operator delete(p);
          p = next;
        }
      }
    }
  };
  static FreeLists& lists() {
    thread_local FreeLists fl;
    return fl;
  }
};

/// Network addresses. MDS nodes occupy [0, cluster_size); clients are
/// assigned addresses at cluster_size + client_id.
using NetAddr = std::int32_t;
constexpr NetAddr kInvalidAddr = -1;

enum class MsgType : std::uint8_t {
  // Client <-> MDS
  kClientRequest,
  kClientReply,
  // MDS <-> MDS
  kForwardedRequest,
  kReplicaRequest,   // fetch inode(s) for prefix/replica caching
  kReplicaGrant,
  kReplicaDrop,      // replica holder discards; authority may release
  kCacheInvalidate,  // authority -> replicas on update
  kCacheUpdateAck,
  kHeartbeat,        // load exchange for the balancer
  kMigratePrepare,   // double-commit subtree migration
  kMigrateCommit,
  kMigrateAck,
  kLazyHybridUpdate,  // LH propagation traffic
  kDirFragNotify,     // directory hash/unhash announcements
  // GPFS-style distributed attribute updates (paper section 4.2):
  kAttrDirty,     // replica tells authority it holds local attr deltas
  kAttrFlush,     // replica ships accumulated deltas to the authority
  kAttrCallback,  // authority demands an immediate flush (client read)
  kMigrateAbort,  // exporter cancels an unacked migration (timeout)
  kGigaRedirect,  // bitmap correction for a mis-routed dentry op
};

constexpr const char* msg_name(MsgType t) {
  switch (t) {
    case MsgType::kClientRequest: return "client_request";
    case MsgType::kClientReply: return "client_reply";
    case MsgType::kForwardedRequest: return "forward";
    case MsgType::kReplicaRequest: return "replica_request";
    case MsgType::kReplicaGrant: return "replica_grant";
    case MsgType::kReplicaDrop: return "replica_drop";
    case MsgType::kCacheInvalidate: return "invalidate";
    case MsgType::kCacheUpdateAck: return "update_ack";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kMigratePrepare: return "migrate_prepare";
    case MsgType::kMigrateCommit: return "migrate_commit";
    case MsgType::kMigrateAck: return "migrate_ack";
    case MsgType::kLazyHybridUpdate: return "lh_update";
    case MsgType::kDirFragNotify: return "dirfrag";
    case MsgType::kAttrDirty: return "attr_dirty";
    case MsgType::kAttrFlush: return "attr_flush";
    case MsgType::kAttrCallback: return "attr_callback";
    case MsgType::kMigrateAbort: return "migrate_abort";
    case MsgType::kGigaRedirect: return "giga_redirect";
  }
  return "?";
}

constexpr int kNumMsgTypes = 19;

struct Message;
using MessagePtr = std::unique_ptr<Message>;

struct Message {
  explicit Message(MsgType t, std::uint32_t bytes = 64)
      : type(t), size_bytes(bytes) {}
  virtual ~Message() = default;

  /// Deep copy, used by the network's duplication injection: the second
  /// delivery must carry the full payload, so every concrete message type
  /// overrides this. The base implementation covers untyped (test-only)
  /// messages.
  virtual MessagePtr clone() const { return std::make_unique<Message>(*this); }

  /// All messages (base and derived alike) draw from the per-thread
  /// recycler. The deleting destructor passes the most-derived size, so
  /// blocks always return to the class they came from.
  static void* operator new(std::size_t sz) { return MessagePool::allocate(sz); }
  static void operator delete(void* p, std::size_t sz) {
    MessagePool::deallocate(p, sz);
  }

  MsgType type;
  std::uint32_t size_bytes;
};

/// Anything that can receive messages from the network.
class NetEndpoint {
 public:
  /// One delivery of a same-instant batch (see Network delivery batching).
  struct Delivery {
    NetAddr from = kInvalidAddr;
    MessagePtr msg;
  };

  virtual ~NetEndpoint() = default;
  virtual void on_message(NetAddr from, MessagePtr msg) = 0;

  /// Deliver a batch of messages that arrived at the same instant, in
  /// FIFO order. The default preserves exact one-at-a-time semantics;
  /// endpoints with a cheaper amortized path (the MDS request pipeline)
  /// override it. Items must be consumed in index order.
  virtual void on_message_batch(Delivery* items, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      on_message(items[i].from, std::move(items[i].msg));
    }
  }
};

}  // namespace mdsim

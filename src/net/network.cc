#include "net/network.h"

#include <cassert>

namespace mdsim {

Network::Network(Simulation& sim, NetworkParams params)
    : sim_(sim),
      params_(params),
      rng_(params.seed, /*stream=*/0x4e7),
      fault_rng_(params.seed, /*stream=*/0xfa017) {}

void Network::set_link_fault(NetAddr a, NetAddr b, const LinkFault& fault) {
  assert(a != b);
  link_faults_[link_key(a, b)] = fault;
}

void Network::clear_link_fault(NetAddr a, NetAddr b) {
  link_faults_.erase(link_key(a, b));
}

const LinkFault* Network::link_fault(NetAddr a, NetAddr b) const {
  auto it = link_faults_.find(link_key(a, b));
  return it == link_faults_.end() ? nullptr : &it->second;
}

void Network::set_link_degrade(NetAddr a, NetAddr b,
                               const LinkDegrade& degrade) {
  assert(a != b);
  link_degrades_[link_key(a, b)] = degrade;
}

void Network::clear_link_degrade(NetAddr a, NetAddr b) {
  link_degrades_.erase(link_key(a, b));
}

const LinkDegrade* Network::link_degrade(NetAddr a, NetAddr b) const {
  auto it = link_degrades_.find(link_key(a, b));
  return it == link_degrades_.end() ? nullptr : &it->second;
}

NetAddr Network::attach(NetEndpoint* endpoint) {
  assert(endpoint != nullptr);
  endpoints_.push_back(endpoint);
  down_.push_back(0);
  fifo_floor_.emplace_back();
  if (partition_active_) side_.push_back(0);  // late joiners sit in group 0
  return static_cast<NetAddr>(endpoints_.size() - 1);
}

void Network::partition(const std::vector<std::vector<NetAddr>>& groups) {
  side_.assign(endpoints_.size(), 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NetAddr a : groups[g]) {
      assert(a >= 0 && static_cast<std::size_t>(a) < side_.size());
      side_[static_cast<std::size_t>(a)] = static_cast<std::uint16_t>(g);
    }
  }
  partition_active_ = true;
}

void Network::heal() {
  partition_active_ = false;
  side_.clear();
  cut_links_.clear();
}

void Network::cut_link(NetAddr from, NetAddr to) {
  assert(from != to);
  cut_links_.insert(directed_key(from, to));
}

void Network::restore_link(NetAddr from, NetAddr to) {
  cut_links_.erase(directed_key(from, to));
}

bool Network::severed(NetAddr from, NetAddr to) const {
  if (partition_active_ &&
      side_[static_cast<std::size_t>(from)] !=
          side_[static_cast<std::size_t>(to)]) {
    return true;
  }
  return !cut_links_.empty() &&
         cut_links_.count(directed_key(from, to)) != 0;
}

void Network::set_down(NetAddr addr, bool down) {
  assert(addr >= 0 && static_cast<std::size_t>(addr) < down_.size());
  std::uint8_t& flag = down_[static_cast<std::size_t>(addr)];
  if (down && flag == 0) {
    flag = 1;
    ++down_count_;
  } else if (!down && flag != 0) {
    flag = 0;
    --down_count_;
  }
}

void Network::set_shard(int shard_id, CrossShardLink* link) {
  assert(shard_id >= 0 && shard_id < kMaxShards);
  shard_id_ = shard_id;
  base_ = shard_global_addr(shard_id, 0);
  link_ = link;
}

void Network::send_cross(NetAddr from, NetAddr global_to, MessagePtr msg) {
  assert(link_ != nullptr);
  counts_[static_cast<std::size_t>(msg->type)]++;
  // Sender-side latency draw, from the same jitter stream as local
  // traffic, so one shard's cross traffic is a deterministic function of
  // that shard's own execution. cross_base_latency is the engine
  // lookahead, so deliver_at >= now + lookahead always holds (jitter and
  // floors only push later).
  SimTime latency = params_.cross_base_latency;
  if (params_.jitter_mean > 0) {
    latency += static_cast<SimTime>(
        rng_.exponential(static_cast<double>(params_.jitter_mean)));
  }
  const NetAddr global_from =
      is_shard_global(from) ? from : global_addr(from);
  SimTime deliver_at = sim_.now() + latency;
  SimTime& floor = cross_floor_[directed_key(global_from, global_to)];
  if (deliver_at < floor) deliver_at = floor;
  floor = deliver_at;
  link_->deliver(global_from, global_to, deliver_at, std::move(msg));
}

void Network::deliver_remote(NetAddr global_from, NetAddr global_to,
                             MessagePtr msg) {
  assert(shard_of_addr(global_to) == shard_id_);
  const NetAddr local = shard_local_addr(global_to);
  assert(local >= 0 && static_cast<std::size_t>(local) < endpoints_.size());
  // Not counted here: the sender's network already counted the send.
  endpoints_[static_cast<std::size_t>(local)]->on_message(global_from,
                                                          std::move(msg));
}

void Network::send(NetAddr from, NetAddr to, MessagePtr msg) {
  if (is_shard_global(to)) {
    // Never true in legacy mode: dense local addresses stay far below
    // 2^22, so this branch costs one compare on the hot path.
    if (shard_of_addr(to) != shard_id_) {
      send_cross(from, to, std::move(msg));
      return;
    }
    to = shard_local_addr(to);
  }
  if (is_shard_global(from)) from = shard_local_addr(from);
  assert(to >= 0 && static_cast<std::size_t>(to) < endpoints_.size());
  assert(from >= 0 && static_cast<std::size_t>(from) < endpoints_.size());
  if (down_count_ != 0 &&
      (down_[static_cast<std::size_t>(from)] |
       down_[static_cast<std::size_t>(to)]) != 0) {
    ++down_dropped_;
    return;
  }
  // Partition / asymmetric cut. Like fault injection below, the boolean
  // check is the whole healthy-path cost.
  if ((partition_active_ || !cut_links_.empty()) && severed(from, to)) {
    ++partition_dropped_;
    return;
  }

  // Fault injection. The empty() check is the entire healthy-path cost:
  // no RNG draws, no hash probes, no timing change unless a fault is
  // actually installed somewhere.
  bool duplicate = false;
  SimTime spike = 0;
  if (!link_faults_.empty() && from != to) {
    if (const LinkFault* f = link_fault(from, to)) {
      if (f->drop > 0 && fault_rng_.bernoulli(f->drop)) {
        ++fault_counters_.dropped;
        return;
      }
      if (f->duplicate > 0 && fault_rng_.bernoulli(f->duplicate)) {
        duplicate = true;
        ++fault_counters_.duplicated;
      }
      if (f->spike > 0 && fault_rng_.bernoulli(f->spike)) {
        spike = f->spike_latency;
        ++fault_counters_.spiked;
      }
    }
  }
  // Sustained gray degradation: the lookup fires only while a degrade is
  // installed somewhere; losses draw from the fault stream so the jitter
  // sequence of healthy traffic is untouched.
  const LinkDegrade* degrade = nullptr;
  if (!link_degrades_.empty() && from != to) {
    if ((degrade = link_degrade(from, to)) != nullptr) {
      if (degrade->loss > 0 && fault_rng_.bernoulli(degrade->loss)) {
        ++fault_counters_.degrade_dropped;
        return;
      }
    }
  }
  counts_[static_cast<std::size_t>(msg->type)]++;

  SimTime latency = 0;
  if (from != to) {
    latency = params_.base_latency + spike;
    if (degrade != nullptr) {
      latency = static_cast<SimTime>(static_cast<double>(latency) *
                                     degrade->latency_factor) +
                degrade->extra_latency;
    }
    if (params_.jitter_mean > 0) {
      latency += static_cast<SimTime>(
          rng_.exponential(static_cast<double>(params_.jitter_mean)));
    }
    // FIFO per (src,dst): never deliver before a previously sent message.
    // A spiked message raises the floor, queueing later traffic behind it
    // (TCP-like head-of-line blocking).
    auto& row = fifo_floor_[static_cast<std::size_t>(from)];
    if (row.size() <= static_cast<std::size_t>(to)) {
      row.resize(static_cast<std::size_t>(to) + 1, 0);
    }
    SimTime& floor = row[static_cast<std::size_t>(to)];
    SimTime deliver_at = sim_.now() + latency;
    if (deliver_at < floor) deliver_at = floor;
    floor = deliver_at;
    latency = deliver_at - sim_.now();
  }

  NetEndpoint* dst = endpoints_[static_cast<std::size_t>(to)];
  if (duplicate) {
    // The copy takes its own path through the fabric, one base latency
    // behind the original, and deliberately skips the FIFO floor: a
    // duplicated packet arriving out of order is exactly the hazard
    // receivers must tolerate. It also bypasses delivery batching — the
    // direct schedule advances the engine's sequence counter, which
    // naturally closes any open batch.
    sim_.schedule(latency + params_.base_latency,
                  [dst, from, m = msg->clone()]() mutable {
                    dst->on_message(from, std::move(m));
                  });
  }
  schedule_delivery(from, to, latency, std::move(msg));
}

Network::DeliveryBatch* Network::alloc_batch() {
  if (!batch_free_.empty()) {
    DeliveryBatch* b = batch_free_.back();
    batch_free_.pop_back();
    return b;
  }
  batch_arena_.push_back(std::make_unique<DeliveryBatch>());
  return batch_arena_.back().get();
}

void Network::schedule_delivery(NetAddr from, NetAddr to, SimTime latency,
                                MessagePtr msg) {
  NetEndpoint* dst = endpoints_[static_cast<std::size_t>(to)];
  if (!params_.delivery_batching) {
    sim_.schedule(latency, [dst, from, m = std::move(msg)]() mutable {
      dst->on_message(from, std::move(m));
    });
    return;
  }
  const SimTime deliver_at = sim_.now() + latency;
  // Append to the open batch only when an individual schedule would land
  // at the exact same (time, order) position: same destination, same
  // delivery instant, and no event scheduled since the batch — so the
  // batch's drain order is provably the one-at-a-time delivery order.
  if (open_batch_ != nullptr && open_batch_->to == to &&
      open_batch_->deliver_at == deliver_at &&
      sim_.next_seq() == open_expect_seq_) {
    open_batch_->items.push_back({from, std::move(msg)});
    sim_.credit_scheduled(1);
    return;
  }
  DeliveryBatch* b = alloc_batch();
  b->to = to;
  b->deliver_at = deliver_at;
  b->items.push_back({from, std::move(msg)});
  sim_.schedule(latency, [this, b] { deliver_batch(b); });
  open_batch_ = b;
  // Read *after* scheduling: this is the seq the next schedule would get,
  // so any intervening event (even one at the same instant) closes the
  // batch and preserves exact interleaving.
  open_expect_seq_ = sim_.next_seq();
}

void Network::deliver_batch(DeliveryBatch* b) {
  // The batch may still be open (it fires with seq unchanged when no event
  // was scheduled in between); close it so a later send can never append
  // to a drained — and recycled — batch.
  if (open_batch_ == b) open_batch_ = nullptr;
  NetEndpoint* dst = endpoints_[static_cast<std::size_t>(b->to)];
  const std::size_t n = b->items.size();
  if (n == 1) {
    dst->on_message(b->items[0].from, std::move(b->items[0].msg));
  } else {
    // The appended members were credited as scheduled; account their
    // execution now that the single physical event drains all of them.
    sim_.credit_executed(n - 1);
    dst->on_message_batch(b->items.data(), n);
  }
  b->items.clear();
  batch_free_.push_back(b);
}

std::uint64_t Network::total_messages() const {
  std::uint64_t total = 0;
  for (auto c : counts_) total += c;
  return total;
}

void Network::reset_counters() { counts_.fill(0); }

}  // namespace mdsim

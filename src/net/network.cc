#include "net/network.h"

#include <cassert>

namespace mdsim {

Network::Network(Simulation& sim, NetworkParams params)
    : sim_(sim), params_(params), rng_(params.seed, /*stream=*/0x4e7) {}

NetAddr Network::attach(NetEndpoint* endpoint) {
  assert(endpoint != nullptr);
  endpoints_.push_back(endpoint);
  down_.push_back(0);
  fifo_floor_.emplace_back();
  return static_cast<NetAddr>(endpoints_.size() - 1);
}

void Network::set_down(NetAddr addr, bool down) {
  assert(addr >= 0 && static_cast<std::size_t>(addr) < down_.size());
  std::uint8_t& flag = down_[static_cast<std::size_t>(addr)];
  if (down && flag == 0) {
    flag = 1;
    ++down_count_;
  } else if (!down && flag != 0) {
    flag = 0;
    --down_count_;
  }
}

void Network::send(NetAddr from, NetAddr to, MessagePtr msg) {
  assert(to >= 0 && static_cast<std::size_t>(to) < endpoints_.size());
  assert(from >= 0 && static_cast<std::size_t>(from) < endpoints_.size());
  if (down_count_ != 0 &&
      (down_[static_cast<std::size_t>(from)] |
       down_[static_cast<std::size_t>(to)]) != 0) {
    ++dropped_;
    return;
  }
  counts_[static_cast<std::size_t>(msg->type)]++;

  SimTime latency = 0;
  if (from != to) {
    latency = params_.base_latency;
    if (params_.jitter_mean > 0) {
      latency += static_cast<SimTime>(
          rng_.exponential(static_cast<double>(params_.jitter_mean)));
    }
    // FIFO per (src,dst): never deliver before a previously sent message.
    auto& row = fifo_floor_[static_cast<std::size_t>(from)];
    if (row.size() <= static_cast<std::size_t>(to)) {
      row.resize(static_cast<std::size_t>(to) + 1, 0);
    }
    SimTime& floor = row[static_cast<std::size_t>(to)];
    SimTime deliver_at = sim_.now() + latency;
    if (deliver_at < floor) deliver_at = floor;
    floor = deliver_at;
    latency = deliver_at - sim_.now();
  }

  NetEndpoint* dst = endpoints_[static_cast<std::size_t>(to)];
  sim_.schedule(latency, [dst, from, m = std::move(msg)]() mutable {
    dst->on_message(from, std::move(m));
  });
}

std::uint64_t Network::total_messages() const {
  std::uint64_t total = 0;
  for (auto c : counts_) total += c;
  return total;
}

void Network::reset_counters() { counts_.fill(0); }

}  // namespace mdsim

#include "net/network.h"

#include <cassert>

namespace mdsim {

Network::Network(Simulation& sim, NetworkParams params)
    : sim_(sim), params_(params), rng_(params.seed, /*stream=*/0x4e7) {}

NetAddr Network::attach(NetEndpoint* endpoint) {
  assert(endpoint != nullptr);
  endpoints_.push_back(endpoint);
  return static_cast<NetAddr>(endpoints_.size() - 1);
}

void Network::set_down(NetAddr addr, bool down) {
  if (down) {
    down_.insert(addr);
  } else {
    down_.erase(addr);
  }
}

void Network::send(NetAddr from, NetAddr to, MessagePtr msg) {
  assert(to >= 0 && static_cast<std::size_t>(to) < endpoints_.size());
  assert(from >= 0 && static_cast<std::size_t>(from) < endpoints_.size());
  if (!down_.empty() && (down_.count(from) != 0 || down_.count(to) != 0)) {
    ++dropped_;
    return;
  }
  counts_[static_cast<std::size_t>(msg->type)]++;

  SimTime latency = 0;
  if (from != to) {
    latency = params_.base_latency;
    if (params_.jitter_mean > 0) {
      latency += static_cast<SimTime>(
          rng_.exponential(static_cast<double>(params_.jitter_mean)));
    }
    // FIFO per (src,dst): never deliver before a previously sent message.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
        static_cast<std::uint32_t>(to);
    SimTime deliver_at = sim_.now() + latency;
    auto [it, inserted] = last_delivery_.try_emplace(key, deliver_at);
    if (!inserted) {
      if (deliver_at < it->second) deliver_at = it->second;
      it->second = deliver_at;
    }
    latency = deliver_at - sim_.now();
  }

  NetEndpoint* dst = endpoints_[static_cast<std::size_t>(to)];
  // The shared_ptr shim lets the std::function be copyable.
  auto shared = std::make_shared<MessagePtr>(std::move(msg));
  sim_.schedule(latency, [dst, from, shared]() {
    dst->on_message(from, std::move(*shared));
  });
}

std::uint64_t Network::total_messages() const {
  std::uint64_t total = 0;
  for (auto c : counts_) total += c;
  return total;
}

void Network::reset_counters() { counts_.fill(0); }

}  // namespace mdsim

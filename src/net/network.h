// Simulated point-to-point interconnect.
//
// Delivery latency = base + Exp(jitter_mean); messages between a pair of
// endpoints are delivered in FIFO order (latency draws are made monotone
// per (src,dst) pair), matching a TCP-like transport. Per-type message
// counters feed the forwarding/overhead statistics in figures 6 and 7.
//
// Addresses are assigned densely from 0, so all per-endpoint state is held
// in plain vectors: down flags are one byte per endpoint, and the per-pair
// FIFO floors are per-source rows grown lazily to the highest destination
// actually messaged (clients only ever message MDS nodes, so client rows
// stay num_mds wide instead of endpoint_count wide).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/message.h"
#include "sim/simulation.h"

namespace mdsim {

struct NetworkParams {
  SimTime base_latency = from_micros(120);
  SimTime jitter_mean = from_micros(20);
  std::uint64_t seed = 7;
};

class Network {
 public:
  Network(Simulation& sim, NetworkParams params);

  /// Register an endpoint; returns its address. Endpoints must outlive the
  /// network. Addresses are assigned densely from 0.
  NetAddr attach(NetEndpoint* endpoint);

  /// Send a message. Self-sends are delivered with zero latency (used by
  /// loopback forwarding paths to keep code uniform).
  /// Messages from or to a downed endpoint are silently dropped (failure
  /// injection; receivers rely on timeouts, exactly as over a real
  /// interconnect).
  void send(NetAddr from, NetAddr to, MessagePtr msg);

  /// Failure injection: take an endpoint off the network (or back on).
  void set_down(NetAddr addr, bool down);
  bool is_down(NetAddr addr) const {
    return addr >= 0 && static_cast<std::size_t>(addr) < down_.size() &&
           down_[static_cast<std::size_t>(addr)] != 0;
  }
  std::uint64_t dropped_messages() const { return dropped_; }

  std::uint64_t messages_sent(MsgType t) const {
    return counts_[static_cast<std::size_t>(t)];
  }
  std::uint64_t total_messages() const;
  /// Zero all message counters (e.g. after warm-up).
  void reset_counters();

  std::size_t endpoint_count() const { return endpoints_.size(); }

 private:
  Simulation& sim_;
  NetworkParams params_;
  Rng rng_;
  std::vector<NetEndpoint*> endpoints_;
  std::vector<std::uint8_t> down_;
  std::size_t down_count_ = 0;
  std::uint64_t dropped_ = 0;
  std::array<std::uint64_t, kNumMsgTypes> counts_{};
  /// Earliest permissible delivery per (src,dst) to preserve FIFO order;
  /// row `from` is indexed by `to` and grown on first use.
  std::vector<std::vector<SimTime>> fifo_floor_;
};

}  // namespace mdsim

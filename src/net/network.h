// Simulated point-to-point interconnect.
//
// Delivery latency = base + Exp(jitter_mean); messages between a pair of
// endpoints are delivered in FIFO order (latency draws are made monotone
// per (src,dst) pair), matching a TCP-like transport. Per-type message
// counters feed the forwarding/overhead statistics in figures 6 and 7.
//
// Addresses are assigned densely from 0, so all per-endpoint state is held
// in plain vectors: down flags are one byte per endpoint, and the per-pair
// FIFO floors are per-source rows grown lazily to the highest destination
// actually messaged (clients only ever message MDS nodes, so client rows
// stay num_mds wide instead of endpoint_count wide).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/message.h"
#include "net/shard_link.h"
#include "sim/simulation.h"

namespace mdsim {

struct NetworkParams {
  SimTime base_latency = from_micros(120);
  SimTime jitter_mean = from_micros(20);
  /// Base latency of cross-shard links (sharded runs only): shards model
  /// distant MDS groups — different racks or rows, not LAN neighbors — so
  /// their interconnect is an order of magnitude slower. This is also the
  /// parallel engine's lookahead, so it bounds how much work each shard
  /// can execute per synchronization window.
  SimTime cross_base_latency = from_micros(1200);
  std::uint64_t seed = 7;
  /// Fold same-instant deliveries to one destination into a single engine
  /// event (drained through NetEndpoint::on_message_batch). Observable
  /// behaviour — delivery order, timestamps, engine event counters — is
  /// identical with this off; it only removes per-message heap/schedule
  /// overhead. Off is the reference path for equivalence tests.
  bool delivery_batching = true;
};

/// Per-link fault injection knobs (chaos harness). Probabilities are per
/// message; a fault is keyed symmetrically, covering both directions of
/// the link. Draws come from a dedicated RNG stream, so enabling faults on
/// one link never perturbs the latency jitter of healthy traffic — and
/// with no faults installed the send path is byte-for-byte the healthy
/// one.
struct LinkFault {
  double drop = 0.0;       // P(message silently lost)
  double duplicate = 0.0;  // P(message delivered twice)
  double spike = 0.0;      // P(spike_latency added before delivery)
  SimTime spike_latency = 50 * kMillisecond;
};

/// Sustained gray degradation of a link: every message pays the inflated
/// latency (and loss probability) for as long as the degrade is installed —
/// unlike LinkFault's transient per-message spike lottery, this models a
/// flaky NIC/cable that is *always* slow. Keyed symmetrically like
/// LinkFault; the two compose. Same zero-cost-off contract: an empty
/// degrade table adds one boolean check to the send path and nothing else.
struct LinkDegrade {
  double latency_factor = 1.0;  // multiplies the base latency
  SimTime extra_latency = 0;    // flat addition on top
  double loss = 0.0;            // P(message silently lost)
};

class Network {
 public:
  Network(Simulation& sim, NetworkParams params);

  /// Register an endpoint; returns its address. Endpoints must outlive the
  /// network. Addresses are assigned densely from 0.
  NetAddr attach(NetEndpoint* endpoint);

  /// Send a message. Self-sends are delivered with zero latency (used by
  /// loopback forwarding paths to keep code uniform).
  /// Messages from or to a downed endpoint are silently dropped (failure
  /// injection; receivers rely on timeouts, exactly as over a real
  /// interconnect).
  void send(NetAddr from, NetAddr to, MessagePtr msg);

  /// Failure injection: take an endpoint off the network (or back on).
  void set_down(NetAddr addr, bool down);
  bool is_down(NetAddr addr) const {
    return addr >= 0 && static_cast<std::size_t>(addr) < down_.size() &&
           down_[static_cast<std::size_t>(addr)] != 0;
  }

  /// Partition the fabric: endpoints in different groups cannot exchange
  /// messages in either direction. Endpoints not listed in any group join
  /// the first group (so "partition({{0,2,3},{1}})" isolates MDS 1 from
  /// everyone, clients included). Calling again replaces the previous
  /// partition; heal() removes it. Zero cost when no partition or cut is
  /// active.
  void partition(const std::vector<std::vector<NetAddr>>& groups);
  void heal();
  bool partitioned() const { return partition_active_; }

  /// Directed (asymmetric) cut: messages from `from` to `to` are dropped;
  /// the reverse direction is unaffected unless cut separately. Composes
  /// with partition(); heal() clears cuts too.
  void cut_link(NetAddr from, NetAddr to);
  void restore_link(NetAddr from, NetAddr to);

  /// Total messages lost in the fabric, and the attribution split: drops
  /// at a downed endpoint, drops across a partition/cut boundary, and
  /// drops from an installed link fault.
  std::uint64_t dropped_messages() const {
    return down_dropped_ + partition_dropped_ + fault_counters_.dropped;
  }
  std::uint64_t down_dropped() const { return down_dropped_; }
  std::uint64_t partition_dropped() const { return partition_dropped_; }
  std::uint64_t fault_dropped() const { return fault_counters_.dropped; }

  /// Install (or replace) a fault on the a<->b link; both directions are
  /// affected. Zero overhead for all other traffic, and none at all once
  /// every fault is cleared.
  void set_link_fault(NetAddr a, NetAddr b, const LinkFault& fault);
  void clear_link_fault(NetAddr a, NetAddr b);
  void clear_link_faults() { link_faults_.clear(); }
  const LinkFault* link_fault(NetAddr a, NetAddr b) const;

  /// Install (or replace) a sustained degrade on the a<->b link; both
  /// directions are affected. clear restores the link to nominal.
  void set_link_degrade(NetAddr a, NetAddr b, const LinkDegrade& degrade);
  void clear_link_degrade(NetAddr a, NetAddr b);
  const LinkDegrade* link_degrade(NetAddr a, NetAddr b) const;

  struct FaultCounters {
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t spiked = 0;
    std::uint64_t degrade_dropped = 0;  // losses from sustained degrades
  };
  const FaultCounters& fault_counters() const { return fault_counters_; }

  std::uint64_t messages_sent(MsgType t) const {
    return counts_[static_cast<std::size_t>(t)];
  }
  std::uint64_t total_messages() const;
  /// Zero all message counters (e.g. after warm-up).
  void reset_counters();

  std::size_t endpoint_count() const { return endpoints_.size(); }

  /// Join a sharded fabric as shard `shard_id`. Destinations at or above
  /// 2^22 that decode to another shard leave through `link` (latency drawn
  /// here, sender side); everything else is the unchanged legacy path —
  /// with no link attached the legacy path is bit-for-bit what it was.
  /// Cross-shard traffic supports latency jitter and per-directed-pair
  /// FIFO floors but not fault injection (down/partition/link faults are
  /// intra-shard concepts here; see DESIGN.md §5f).
  void set_shard(int shard_id, CrossShardLink* link);
  int shard_id() const { return shard_id_; }
  bool sharded() const { return link_ != nullptr; }
  /// The shard-global name of a local endpoint (identity in legacy mode).
  NetAddr global_addr(NetAddr local) const { return base_ | local; }

  /// Entry point for messages ferried in from another shard; runs inside
  /// this shard's engine at the delivery time the sender stamped. `from`
  /// stays global so replies route back across the fabric.
  void deliver_remote(NetAddr global_from, NetAddr global_to, MessagePtr msg);

 private:
  /// A pending same-instant delivery group for one destination. Owned by
  /// the arena below (so messages in never-fired batches are reclaimed at
  /// teardown regardless of engine/network destruction order); the
  /// scheduled event holds only a raw pointer.
  struct DeliveryBatch {
    NetAddr to = kInvalidAddr;
    SimTime deliver_at = 0;
    std::vector<NetEndpoint::Delivery> items;
  };

  DeliveryBatch* alloc_batch();
  void deliver_batch(DeliveryBatch* b);
  void schedule_delivery(NetAddr from, NetAddr to, SimTime latency,
                         MessagePtr msg);

  void send_cross(NetAddr from, NetAddr global_to, MessagePtr msg);
  static std::uint64_t link_key(NetAddr a, NetAddr b) {
    const std::uint32_t lo = static_cast<std::uint32_t>(a < b ? a : b);
    const std::uint32_t hi = static_cast<std::uint32_t>(a < b ? b : a);
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }
  static std::uint64_t directed_key(NetAddr from, NetAddr to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }
  bool severed(NetAddr from, NetAddr to) const;

  Simulation& sim_;
  NetworkParams params_;
  Rng rng_;
  Rng fault_rng_;  // separate stream: injection never perturbs jitter
  std::vector<NetEndpoint*> endpoints_;
  std::vector<std::uint8_t> down_;
  std::size_t down_count_ = 0;
  std::uint64_t down_dropped_ = 0;
  std::uint64_t partition_dropped_ = 0;
  std::array<std::uint64_t, kNumMsgTypes> counts_{};
  std::unordered_map<std::uint64_t, LinkFault> link_faults_;
  std::unordered_map<std::uint64_t, LinkDegrade> link_degrades_;
  FaultCounters fault_counters_;
  /// Partition state: side_[addr] is the endpoint's group while a
  /// partition is active (unlisted endpoints sit in group 0).
  bool partition_active_ = false;
  std::vector<std::uint16_t> side_;
  /// Directed cuts, keyed (from<<32)|to.
  std::unordered_set<std::uint64_t> cut_links_;
  /// Earliest permissible delivery per (src,dst) to preserve FIFO order;
  /// row `from` is indexed by `to` and grown on first use.
  std::vector<std::vector<SimTime>> fifo_floor_;
  /// Sharded-mode state. base_ == 0 and link_ == nullptr in legacy mode.
  NetAddr base_ = 0;
  int shard_id_ = -1;
  CrossShardLink* link_ = nullptr;
  /// FIFO floors for cross-shard traffic, keyed (global_from<<32)|global_to
  /// — sparse map because global pairs span shards.
  std::unordered_map<std::uint64_t, SimTime> cross_floor_;
  /// Delivery batching state: the most recently scheduled batch is "open"
  /// for appends while (a) destination and delivery instant match and
  /// (b) the engine's sequence counter has not advanced since — i.e. no
  /// other event could interleave between the batch and the would-be
  /// individual delivery. The arena owns every batch ever allocated;
  /// drained batches return to the free list.
  std::vector<std::unique_ptr<DeliveryBatch>> batch_arena_;
  std::vector<DeliveryBatch*> batch_free_;
  DeliveryBatch* open_batch_ = nullptr;
  std::uint64_t open_expect_seq_ = 0;
};

}  // namespace mdsim

// Global addressing and the cross-shard delivery interface.
//
// In a sharded simulation every shard owns its own Network with its own
// dense local address space starting at 0. Cross-shard endpoints are named
// by *global* addresses that encode the owning shard in the high bits:
//
//   global = ((shard + 1) << 22) | local
//
// The +1 keeps every global address >= 2^22, so any address below 2^22 is
// unambiguously shard-local. That matters because intra-shard senders (MDS
// nodes in particular) pass their small local id as `from`; no translation
// is needed on any existing call site, and the legacy single-network mode
// is untouched (its addresses never reach 2^22). NetAddr is a positive
// int32, which caps the encoding at 511 shards — far beyond any simulated
// cluster here.
//
// CrossShardLink is the seam between a shard's Network and the parallel
// engine: the sender's network draws the latency (and enforces per-pair
// FIFO), then hands the timestamped message to the link, which ferries it
// through the ShardedSimulation mailbox fabric to the destination shard's
// Network::deliver_remote. The minimum possible latency of this path (the
// network's cross-shard base latency) is the engine's lookahead.
#pragma once

#include "common/types.h"
#include "net/message.h"

namespace mdsim {

inline constexpr int kShardAddrShift = 22;
/// Addresses below this are shard-local; at or above, shard-global.
inline constexpr NetAddr kShardLocalLimit = NetAddr{1} << kShardAddrShift;
/// (shard + 1) << 22 must stay a positive int32.
inline constexpr int kMaxShards = 511;

constexpr NetAddr shard_global_addr(int shard, NetAddr local) {
  return (static_cast<NetAddr>(shard + 1) << kShardAddrShift) | local;
}
constexpr bool is_shard_global(NetAddr addr) {
  return addr >= kShardLocalLimit;
}
constexpr int shard_of_addr(NetAddr addr) {
  return static_cast<int>(addr >> kShardAddrShift) - 1;
}
constexpr NetAddr shard_local_addr(NetAddr addr) {
  return addr & (kShardLocalLimit - 1);
}

/// Ferries an already-timestamped message to another shard. Implemented by
/// the sharded cluster's fabric on top of ShardedSimulation::post; `when`
/// is an absolute delivery time >= sender-now + lookahead (the sender's
/// network guarantees this by construction: base cross-shard latency is
/// the lookahead and jitter/FIFO floors only add to it).
class CrossShardLink {
 public:
  virtual ~CrossShardLink() = default;
  virtual void deliver(NetAddr global_from, NetAddr global_to, SimTime when,
                       MessagePtr msg) = 0;
};

}  // namespace mdsim

// Move-only callable wrapper with fixed inline storage.
//
// The event engine stores every callback in an `InlineFunction`: a 64-byte
// buffer absorbs the capture lists the simulator actually produces (a few
// pointers, a unique_ptr message, small PODs) without touching the heap.
// Oversized callables still work — they are boxed on the heap — but every
// such construction bumps a thread-local counter so perf regressions show
// up in `Simulation::counters().task_heap_fallbacks` instead of silently
// re-introducing an allocation per event.
//
// Unlike std::function the wrapper is move-only, so unique_ptr captures
// need no shared_ptr shim; invocation is one indirect call through a
// per-callable-type ops table (no virtual dispatch, no RTTI).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mdsim {

namespace inline_task_stats {
/// Constructions that overflowed the inline buffer and heap-allocated.
/// Thread-local so concurrent shard engines never contend; a process-wide
/// running total for microbenchmarks. Engines that need an exact per-engine
/// count (Simulation::Counters) do not sample this — they ask each stored
/// callable via is_heap_fallback(), which stays correct when many engines
/// share a thread or one engine constructs tasks from several threads'
/// worth of callers over its life.
inline thread_local std::uint64_t heap_fallbacks = 0;
}  // namespace inline_task_stats

template <typename Sig>
class InlineFunction;

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  static constexpr std::size_t kInlineSize = 64;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  InlineFunction(F&& f) {  // NOLINT(runtime/explicit)
    construct(std::forward<F>(f));
  }

  /// Destroy any held callable and construct `f` in place. The event slab
  /// uses this to build callbacks directly in their slot, skipping the
  /// temporary-InlineFunction-then-move (a 64-byte copy per event).
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  // (Moves and destruction of the common captures — a few pointers, PODs —
  // take branch-predictable fast paths: a whole-buffer memcpy instead of an
  // indirect relocate call, and no destroy call at all. Only callables that
  // are not trivially copyable/destructible pay the ops-table dispatch.)

  InlineFunction(InlineFunction&& other) noexcept { take(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    assert(ops_ != nullptr);
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the held callable overflowed the inline buffer and lives
  /// in a heap box. A static property of the callable's type, read from
  /// its ops table — no per-instance storage.
  bool is_heap_fallback() const noexcept {
    return ops_ != nullptr && ops_->heap;
  }

 private:
  struct Ops {
    R (*invoke)(void* buf, Args&&... args);
    /// Move-construct the callable into `dst` and destroy the `src` copy.
    /// Null when a whole-buffer memcpy is a correct relocation.
    void (*relocate)(void* src, void* dst) noexcept;
    /// Null when destruction is a no-op.
    void (*destroy)(void* buf) noexcept;
    /// Callable is heap-boxed (construction overflowed the inline buffer).
    bool heap;
  };

  template <typename Fn>
  struct InlineModel {
    static Fn* self(void* buf) {
      return std::launder(reinterpret_cast<Fn*>(buf));
    }
    static R invoke(void* buf, Args&&... args) {
      return (*self(buf))(std::forward<Args>(args)...);
    }
    static void relocate(void* src, void* dst) noexcept {
      Fn* s = self(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void destroy(void* buf) noexcept { self(buf)->~Fn(); }
    static constexpr Ops kOps{
        &invoke,
        std::is_trivially_copyable_v<Fn> ? nullptr : &relocate,
        std::is_trivially_destructible_v<Fn> ? nullptr : &destroy,
        /*heap=*/false};
  };

  template <typename Fn>
  struct HeapModel {
    static Fn** box(void* buf) {
      return std::launder(reinterpret_cast<Fn**>(buf));
    }
    static R invoke(void* buf, Args&&... args) {
      return (**box(buf))(std::forward<Args>(args)...);
    }
    static void destroy(void* buf) noexcept { delete *box(buf); }
    // The boxed representation is a raw pointer, so relocation is always
    // a trivial copy; only destruction needs the ops table.
    static constexpr Ops kOps{&invoke, nullptr, &destroy, /*heap=*/true};
  };

  template <typename F>
  void construct(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineModel<Fn>::kOps;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapModel<Fn>::kOps;
      ++inline_task_stats::heap_fallbacks;
    }
  }

  void take(InlineFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate == nullptr) {
        __builtin_memcpy(buf_, other.buf_, kInlineSize);
      } else {
        other.ops_->relocate(other.buf_, buf_);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// The event engine's callback type.
using InlineTask = InlineFunction<void()>;

}  // namespace mdsim

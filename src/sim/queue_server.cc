#include "sim/queue_server.h"

#include "sim/simulation.h"

namespace mdsim {

QueueServer::QueueServer(Simulation& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void QueueServer::submit(SimTime service_time, InlineTask done) {
  if (rate_mult_ != 1.0) {
    service_time =
        static_cast<SimTime>(static_cast<double>(service_time) * rate_mult_);
  }
  queue_.push_back(Job{service_time, sim_.now(), std::move(done)});
  backlog_ns_ += service_time;
  if (!busy_) start_next();
  bump_depth(queue_depth());
}

void QueueServer::submit(SimTime service_time, TraceSpan span,
                         InlineTask done) {
  if (rate_mult_ != 1.0) {
    service_time =
        static_cast<SimTime>(static_cast<double>(service_time) * rate_mult_);
  }
  SimTime enq = sim_.now();
  if (span.rec != nullptr) {
    spans_.push_back(span);
    enq |= kSpanBit;
  }
  queue_.push_back(Job{service_time, enq, std::move(done)});
  backlog_ns_ += service_time;
  if (!busy_) start_next();
  bump_depth(queue_depth());
}

void QueueServer::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  in_service_ = std::move(queue_.front());
  queue_.pop_front();
  wait_.add(to_seconds(sim_.now() - (in_service_.enqueued & ~kSpanBit)));
  if ((in_service_.enqueued & kSpanBit) != 0) {
    in_service_span_ = spans_.front();
    spans_.pop_front();
    in_service_span_.on_service_start(sim_.now());
  }
  busy_ns_ += in_service_.service;
  sim_.schedule(in_service_.service, [this]() { finish(); });
}

void QueueServer::finish() {
  Job job = std::move(in_service_);
  // Read before start_next() hands in_service_span_ to the next job.
  // Only valid when this job's kSpanBit is set; stale otherwise.
  const TraceSpan span = in_service_span_;
  ++completed_;
  backlog_ns_ -= job.service;
  // Chain the next job before invoking the callback so that re-entrant
  // submissions from `done` queue behind already-waiting work.
  start_next();
  bump_depth(queue_depth());
  // The access-latency tail is attributed eagerly (`skip`) rather than by
  // wrapping `done` in another task — the wrapper would overflow the
  // inline callback storage and fall back to the heap on the hot path.
  if ((job.enqueued & kSpanBit) != 0) {
    span.on_service_end(sim_.now(), access_latency_);
  }
  if (access_latency_ == 0) {
    job.done();
  } else {
    sim_.schedule(access_latency_, std::move(job.done));
  }
}

double QueueServer::utilization(SimTime now) const {
  const SimTime elapsed = now - stats_since_;
  if (elapsed == 0) return 0.0;
  return static_cast<double>(busy_ns_) / static_cast<double>(elapsed);
}

void QueueServer::bump_depth(std::size_t depth) {
  const SimTime now = sim_.now();
  depth_integral_ += static_cast<double>(last_depth_) *
                     static_cast<double>(now - depth_since_);
  depth_since_ = now;
  last_depth_ = depth;
  if (depth > depth_hw_) depth_hw_ = depth;
}

double QueueServer::mean_depth(SimTime now) const {
  const SimTime elapsed = now - depth_stats_since_;
  if (elapsed == 0) return 0.0;
  const double integral =
      depth_integral_ + static_cast<double>(last_depth_) *
                            static_cast<double>(now - depth_since_);
  return integral / static_cast<double>(elapsed);
}

void QueueServer::reset_depth_stats(SimTime now) {
  depth_stats_since_ = now;
  depth_integral_ = 0.0;
  depth_since_ = now;
  last_depth_ = queue_depth();
  depth_hw_ = last_depth_;
}

void QueueServer::reset_stats(SimTime now) {
  stats_since_ = now;
  busy_ns_ = 0;
  completed_ = 0;
  wait_ = Summary{};
  reset_depth_stats(now);
}

}  // namespace mdsim

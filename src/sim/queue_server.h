// FIFO single-server queue: the simulator's model for any serialized
// resource with a service time per job — MDS CPU, metadata disk, journal
// device. Matches the paper's storage simplification (section 5.1):
// "average disk latencies and transactional throughputs only".
//
// A job submitted while the server is busy waits; completion callbacks fire
// in submission order. Optional fixed access latency is added on top of the
// queueing delay (e.g. disk seek+rotation vs transfer).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"
#include "sim/inline_task.h"

namespace mdsim {

class Simulation;

class QueueServer {
 public:
  /// `name` is used in statistics output only.
  QueueServer(Simulation& sim, std::string name);

  /// Submit a job with the given service time; `done` fires when it
  /// completes (after queueing + access_latency + service).
  void submit(SimTime service_time, InlineTask done);

  /// As above, with a trace span: the job's queue wait and service time
  /// (plus access latency) are attributed to the span's stages. The span
  /// is observational only — an empty span and a populated one produce
  /// identical scheduling.
  void submit(SimTime service_time, TraceSpan span, InlineTask done);

  /// Fixed latency added to every job, outside the serialized portion
  /// (i.e. it does not consume server capacity; models e.g. bus latency).
  void set_access_latency(SimTime latency) { access_latency_ = latency; }

  /// Fail-slow injection: multiply every subsequent job's service time by
  /// `mult` (10.0 = ten times slower). Applied at submission so the
  /// backlog accounting stays symmetric (`+=` at submit, `-=` at finish
  /// see the same scaled value); jobs already queued keep their original
  /// service times. At the default 1.0 the scaling branch is never taken
  /// and the server is bit-identical to one without the knob.
  void set_service_time_multiplier(double mult) { rate_mult_ = mult; }
  double service_time_multiplier() const { return rate_mult_; }

  std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }
  std::uint64_t jobs_completed() const { return completed_; }

  /// Sum of service times of all jobs currently queued or in service —
  /// the earliest a job submitted now could start, ignoring access
  /// latency. This is what an admission gate should bound: depth alone
  /// undercounts when jobs have heterogeneous service times.
  SimTime backlog() const { return backlog_ns_; }
  /// Maximum queue_depth() observed since construction or the last
  /// depth-stats reset.
  std::size_t depth_highwater() const { return depth_hw_; }
  /// Time-weighted mean queue depth over the same window.
  double mean_depth(SimTime now) const;
  /// Restart the depth-observation window (e.g. at the warmup boundary).
  /// Pure observer state: does not touch busy time, completion counts or
  /// wait summaries, so callers owning deltas of those are unaffected.
  void reset_depth_stats(SimTime now);

  /// Busy time / elapsed time since construction or last reset.
  double utilization(SimTime now) const;
  /// Cumulative busy time (for caller-side windowed utilization).
  SimTime busy_time() const { return busy_ns_; }
  const Summary& wait_times() const { return wait_; }
  void reset_stats(SimTime now);

  const std::string& name() const { return name_; }

 private:
  struct Job {
    SimTime service = 0;
    /// Enqueue timestamp; kSpanBit flags that the job carries a trace
    /// span (held in the parallel spans_ FIFO). Untraced jobs — the
    /// common case, and all jobs when tracing is off — thus stay exactly
    /// the size they were before tracing existed, keeping deque slots
    /// and job moves off the simulation hot path.
    SimTime enqueued = 0;
    InlineTask done;
  };
  /// Simulated time would need ~292 years to reach this bit.
  static constexpr SimTime kSpanBit = SimTime{1} << 63;

  void start_next();
  void finish();
  /// Fold the previous depth's dwell time into the time-weighted
  /// integral and record the new depth; called whenever depth changes.
  void bump_depth(std::size_t depth);

  Simulation& sim_;
  std::string name_;
  SimTime access_latency_ = 0;
  double rate_mult_ = 1.0;  // fail-slow service-time multiplier
  std::deque<Job> queue_;
  /// Spans of traced queued jobs, in submission order (same relative
  /// order as their kSpanBit-flagged entries in queue_).
  std::deque<TraceSpan> spans_;
  /// The job occupying the server while busy_. Kept here (not captured
  /// into the completion event) so the event's task is just a `this`
  /// pointer — the server is serialized, so one in-service job suffices.
  Job in_service_;
  TraceSpan in_service_span_;
  bool busy_ = false;
  std::uint64_t completed_ = 0;
  SimTime busy_ns_ = 0;
  SimTime stats_since_ = 0;
  Summary wait_;
  /// Unfinished work: sum of service times of queued + in-service jobs.
  SimTime backlog_ns_ = 0;
  /// Depth-over-time bookkeeping for depth_highwater()/mean_depth().
  /// Separate window epoch from stats_since_: depth stats may be reset at
  /// the warmup boundary without disturbing busy-time deltas.
  std::size_t last_depth_ = 0;
  std::size_t depth_hw_ = 0;
  double depth_integral_ = 0.0;
  SimTime depth_since_ = 0;
  SimTime depth_stats_since_ = 0;
};

}  // namespace mdsim

#include "sim/sharded.h"

#include <cassert>

namespace mdsim {

ShardedSimulation::ShardedSimulation(int shards, SimTime lookahead)
    : lookahead_(lookahead) {
  assert(shards >= 1);
  assert(lookahead > 0);
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Simulation>());
  }
  mail_.resize(static_cast<std::size_t>(shards) *
               static_cast<std::size_t>(shards));
}

ShardedSimulation::~ShardedSimulation() {
  if (!pool_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : pool_) t.join();
  }
}

void ShardedSimulation::set_threads(int threads) {
  if (threads < 1) threads = 1;
  if (threads > shard_count()) threads = shard_count();
  threads_ = threads;
}

void ShardedSimulation::post(int from, int to, SimTime when,
                             InlineTask task) {
  assert(from >= 0 && from < shard_count());
  assert(to >= 0 && to < shard_count());
  // The lookahead contract: a post lands no earlier than one full
  // lookahead after the poster's clock, so it can never be due inside
  // the window that produced it.
  assert(when >= shard(from).now() + lookahead_);
  mail_[static_cast<std::size_t>(from) *
            static_cast<std::size_t>(shard_count()) +
        static_cast<std::size_t>(to)]
      .entries.push_back(Pending{when, std::move(task)});
}

void ShardedSimulation::drain_mailboxes() {
  // Fixed drain order — destination-major, source ascending, post order —
  // so the destination engine's sequence numbers (the same-instant
  // tie-break) depend only on what was posted, never on which thread ran
  // which shard when. Safe without locks: drains happen strictly between
  // windows, when no shard is executing.
  const int s = shard_count();
  for (int to = 0; to < s; ++to) {
    for (int from = 0; from < s; ++from) {
      Mailbox& box = mail_[static_cast<std::size_t>(from) *
                               static_cast<std::size_t>(s) +
                           static_cast<std::size_t>(to)];
      if (box.entries.empty()) continue;
      Simulation& dst = shard(to);
      for (Pending& p : box.entries) {
        dst.schedule_at(p.when, std::move(p.task));
        ++drained_;
      }
      box.entries.clear();
    }
  }
}

void ShardedSimulation::worker_loop(int worker_id) {
  (void)worker_id;
  std::uint64_t seen_round = 0;
  for (;;) {
    SimTime bound;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || round_ != seen_round; });
      if (shutdown_) return;
      seen_round = round_;
      bound = window_bound_;
    }
    std::uint64_t executed = 0;
    for (;;) {
      const int i = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (i >= shard_count()) break;
      executed += shard(i).run_until(bound);
    }
    window_executed_.fetch_add(executed, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_active_;
    }
    done_cv_.notify_one();
  }
}

void ShardedSimulation::run_window(SimTime bound) {
  if (threads_ <= 1 || shard_count() == 1) {
    std::uint64_t executed = 0;
    for (int i = 0; i < shard_count(); ++i) {
      executed += shard(i).run_until(bound);
    }
    window_executed_.fetch_add(executed, std::memory_order_relaxed);
    return;
  }
  const int want = threads_ - 1;  // the coordinator participates too
  while (static_cast<int>(pool_.size()) < want) {
    pool_.emplace_back(&ShardedSimulation::worker_loop, this,
                       static_cast<int>(pool_.size()));
  }
  next_shard_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_bound_ = bound;
    workers_active_ = static_cast<int>(pool_.size());
    ++round_;
  }
  work_cv_.notify_all();
  std::uint64_t executed = 0;
  for (;;) {
    const int i = next_shard_.fetch_add(1, std::memory_order_relaxed);
    if (i >= shard_count()) break;
    executed += shard(i).run_until(bound);
  }
  window_executed_.fetch_add(executed, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  }
}

std::uint64_t ShardedSimulation::run_until(SimTime until) {
  const std::uint64_t before =
      window_executed_.load(std::memory_order_relaxed);
  for (;;) {
    // Barrier phase (coordinator only): ferry cross-shard messages, then
    // find the global minimum next-event time.
    drain_mailboxes();
    SimTime m = Simulation::kNoEvent;
    for (const auto& s : shards_) {
      const SimTime t = s->next_event_time();
      if (t < m) m = t;
    }
    if (m == Simulation::kNoEvent || m > until) break;
    // Window [m, m + L): every event a shard receives from elsewhere is
    // timestamped >= its post time + L >= m + L, so executing the
    // interior up to (exclusive) m + L can never miss a cross-shard
    // message. run_until is inclusive, hence the -1 (SimTime is integer
    // nanoseconds). The final partial window is clamped to `until`,
    // which is still < m + L.
    SimTime bound = m + lookahead_ - 1;
    if (bound > until) bound = until;
    run_window(bound);
  }
  // No executable events remain at or before `until` anywhere (mailboxes
  // were drained before the loop broke): advance every clock to exactly
  // `until`, matching single-engine run_until semantics.
  for (auto& s : shards_) s->run_until(until);
  return window_executed_.load(std::memory_order_relaxed) - before;
}

std::uint64_t ShardedSimulation::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->events_executed();
  return n;
}

}  // namespace mdsim

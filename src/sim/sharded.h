// Conservative synchronous parallel discrete-event simulation.
//
// A ShardedSimulation owns S independent Simulation engines ("shards").
// Shards advance in lockstep windows: each round the coordinator computes
// the global minimum next-event time M and every shard executes its own
// events in [M, M + L) where L is the *lookahead* — the minimum latency of
// any cross-shard interaction (for the cluster simulator: the network's
// base cross-shard link latency). During a window a shard touches only its
// own engine and state; anything bound for another shard is posted into a
// single-producer per-(src,dst) mailbox with an absolute delivery time,
// which the lookahead guarantees is >= the window end. Mailboxes are
// drained by the coordinator at the barrier between windows, in a fixed
// order (destination-major, then source shard ascending, then post order),
// so drained events acquire destination-engine sequence numbers — and
// therefore same-instant tie-break order — that is a pure function of the
// simulation, not of thread scheduling. Shard interiors are sequential
// single-engine execution. Net effect: a run is bit-identical for any
// thread count, including 1. See DESIGN.md §5f for the safety argument.
//
// Threading: shards within a window run on a persistent pool of worker
// threads claiming shards off an atomic counter (any shard may run on any
// thread in any order — interiors are independent, so this nondeterminism
// is invisible). The coordinator thread participates and then drains
// mailboxes serially. threads=1 bypasses the pool entirely.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/simulation.h"

namespace mdsim {

class ShardedSimulation {
 public:
  /// `lookahead` must be positive and no larger than the minimum possible
  /// delivery delay of any cross-shard post (callers wire it from the
  /// network's cross-shard base latency).
  ShardedSimulation(int shards, SimTime lookahead);
  ~ShardedSimulation();
  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  Simulation& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  const Simulation& shard(int i) const {
    return *shards_[static_cast<std::size_t>(i)];
  }
  SimTime lookahead() const { return lookahead_; }

  /// Worker threads used inside windows (clamped to [1, shard_count]).
  /// May be changed between run_until calls; results are identical for
  /// every value — that is the point of the design.
  void set_threads(int threads);
  int threads() const { return threads_; }

  /// Post `task` for execution in shard `to`'s engine at absolute time
  /// `when`. Must be called from shard `from`'s interior (its window
  /// execution) with when >= the current window end — guaranteed when the
  /// posting layer adds >= lookahead() of latency. The task runs on
  /// whatever thread executes shard `to`, never concurrently with other
  /// work of that shard.
  void post(int from, int to, SimTime when, InlineTask task);

  /// Advance every shard to `until` in lockstep windows. Semantics match
  /// Simulation::run_until per shard: events with time <= until execute,
  /// clocks end at exactly `until`. Returns total events executed.
  std::uint64_t run_until(SimTime until);

  /// Cross-shard messages ferried so far (drained mailbox entries).
  std::uint64_t cross_posts() const { return drained_; }

  std::uint64_t events_executed() const;

 private:
  struct Pending {
    SimTime when;
    InlineTask task;
  };
  /// One single-producer mailbox per (src, dst) pair; only shard `src`'s
  /// window execution appends, only the coordinator (at a barrier) drains.
  struct Mailbox {
    std::vector<Pending> entries;
  };

  void drain_mailboxes();
  void run_window(SimTime bound);
  void worker_loop(int worker_id);
  void wake_workers();
  void wait_workers();

  SimTime lookahead_;
  std::vector<std::unique_ptr<Simulation>> shards_;
  std::vector<Mailbox> mail_;  // [from * S + to]
  std::uint64_t drained_ = 0;

  // Worker pool (created lazily on the first multi-threaded window).
  int threads_ = 1;
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t round_ = 0;      // incremented to release workers
  int workers_active_ = 0;       // workers still in the current round
  bool shutdown_ = false;
  SimTime window_bound_ = 0;     // bound of the round being executed
  std::atomic<int> next_shard_{0};
  std::atomic<std::uint64_t> window_executed_{0};
};

}  // namespace mdsim

#include "sim/simulation.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <memory>

namespace mdsim {

void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->cancel_event(slot_, gen_);
}

bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->event_pending(slot_, gen_);
}

Simulation::Simulation() = default;

Simulation::~Simulation() { std::free(heap_); }

void Simulation::heap_grow() {
  const std::size_t old_keys = heap_cap_end_ - kHeapRoot;
  const std::size_t new_keys = old_keys == 0 ? 256 : old_keys * 2;
  std::size_t bytes = (kHeapRoot + new_keys) * sizeof(HeapKey);
  bytes = (bytes + 63) & ~std::size_t{63};
  auto* grown = static_cast<HeapKey*>(std::aligned_alloc(64, bytes));
  assert(grown != nullptr);
  if (heap_ != nullptr) {
    std::memcpy(grown + kHeapRoot, heap_ + kHeapRoot,
                (heap_end_ - kHeapRoot) * sizeof(HeapKey));
    std::free(heap_);
  }
  heap_ = grown;
  heap_cap_end_ = kHeapRoot + new_keys;
}

std::uint32_t Simulation::alloc_slot() {
  // A quiescent slab (no slot occupied — note an event still executing
  // in place occupies its slot even though the heap may already be
  // empty) means the free list is a randomly-permuted chain in fire
  // order, so refilling through it is a walk of dependent cache-missing
  // loads. Rewind to sequential bump allocation instead; generations
  // live in the (retained) chunks, so stale handles still mismatch.
  if (occupied_ == 0) {
    free_head_ = kNilSlot;
    slot_count_ = 0;
  }
  ++occupied_;
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slot_ref(slot).next_free;
    return slot;
  }
  if ((slot_count_ >> kChunkShift) >= slot_chunks_.size()) {
    slot_chunks_.emplace_back(new EventSlot[kChunkSize]);
  }
  return slot_count_++;
}

void Simulation::free_slot(std::uint32_t slot) {
  --occupied_;
  EventSlot& s = slot_ref(slot);
  s.fn = InlineTask{};
  s.cancelled = false;
  ++s.gen;  // invalidate every outstanding handle to this occupancy
  s.next_free = free_head_;
  free_head_ = slot;
}

void Simulation::heap_push(HeapKey key) {
  if (heap_end_ == heap_cap_end_) heap_grow();
  std::size_t i = heap_end_++;
  while (i > kHeapRoot) {
    const std::size_t parent = heap_parent(i);
    if (!key_before(key, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = key;
}

void Simulation::heap_pop_root() {
  const HeapKey key = heap_[--heap_end_];
  const std::size_t end = heap_end_;
  if (end == kHeapRoot) return;
  HeapKey* h = heap_;
  std::size_t i = kHeapRoot;
  for (;;) {
    const std::size_t first = heap_first_child(i);
    std::size_t best;
    if (first + 3 < end) {
      // Full fan-out (the common interior case), unrolled so the
      // min-of-four reduces to conditional moves over the one cache
      // line holding the group rather than a data-dependent loop.
      const std::size_t c1 = first + 1, c2 = first + 2, c3 = first + 3;
      best = key_before(h[c1], h[first]) ? c1 : first;
      best = key_before(h[c2], h[best]) ? c2 : best;
      best = key_before(h[c3], h[best]) ? c3 : best;
    } else if (first < end) {
      best = first;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (key_before(h[c], h[best])) best = c;
      }
    } else {
      break;
    }
    if (!key_before(h[best], key)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = key;
}

EventHandle Simulation::schedule(SimTime delay, InlineTask fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulation::schedule_at(SimTime when, InlineTask fn) {
  const std::uint32_t slot = alloc_slot();
  EventSlot& s = slot_ref(slot);
  s.fn = std::move(fn);
  task_heap_fallbacks_ += s.fn.is_heap_fallback();
  return finish_schedule(when, slot, s.gen);
}

EventHandle Simulation::finish_schedule(SimTime when, std::uint32_t slot,
                                        std::uint32_t gen) {
  assert(when >= now_);
  heap_push(HeapKey{when, static_cast<std::uint32_t>(seq_++), slot});
  ++scheduled_;
  ++live_pending_;
  return EventHandle(this, slot, gen);
}

void Simulation::cancel_event(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slot_count_) return;
  EventSlot& s = slot_ref(slot);
  if (s.gen != gen || s.cancelled) return;
  s.cancelled = true;
  s.fn = InlineTask{};  // release captures eagerly
  ++cancelled_;
  --live_pending_;
}

bool Simulation::event_pending(std::uint32_t slot, std::uint32_t gen) const {
  if (slot >= slot_count_) return false;
  const EventSlot& s = slot_ref(slot);
  return s.gen == gen && !s.cancelled;
}

bool Simulation::step(SimTime until) {
  while (heap_end_ > kHeapRoot) {
    const HeapKey key = heap_[kHeapRoot];
    if (key.time > until) return false;
    // Pull the slot's cache lines in while the pop sift runs; fired slots
    // are in time order, i.e. effectively random across the slab.
    EventSlot& s = slot_ref(key.slot);
    __builtin_prefetch(&s);
    heap_pop_root();
    if (s.cancelled) {
      free_slot(key.slot);
      continue;
    }
    now_ = key.time;
    --live_pending_;
    // Invoke the callback in place — chunked slots have stable addresses,
    // so callbacks scheduled by `fn` cannot move it, and the slot cannot
    // be reused while it is off the free list. Marking it cancelled first
    // makes the event's own handle read not-pending (and cancel() a
    // no-op) for the duration of the call; free_slot then destroys the
    // callable and bumps the generation.
    s.cancelled = true;
    s.fn();
    free_slot(key.slot);
    ++executed_;
    return true;
  }
  return false;
}

std::uint64_t Simulation::run_until(SimTime until) {
  std::uint64_t n = 0;
  while (step(until)) ++n;
  // Advance the clock to `until` so back-to-back runs resume correctly.
  if (until > now_) now_ = until;
  return n;
}

std::uint64_t Simulation::run() {
  std::uint64_t n = 0;
  while (step(~SimTime{0})) ++n;
  return n;
}

Simulation::Counters Simulation::counters() const {
  return Counters{scheduled_, executed_, cancelled_, task_heap_fallbacks_};
}

void Simulation::every(SimTime period, SimTime start,
                       InlineFunction<bool()> fn) {
  assert(period > 0);
  // The predicate is too big to nest inside another task's inline buffer,
  // so it is boxed once here (setup cost, not steady state); the box then
  // moves through the self-rescheduling chain without further allocation.
  struct Periodic {
    SimTime period;
    InlineFunction<bool()> fn;
  };
  struct Tick {
    Simulation* sim;
    std::unique_ptr<Periodic> p;
    void operator()() {
      if (p->fn()) {
        Simulation* s = sim;
        const SimTime delay = p->period;
        s->schedule(delay, Tick{s, std::move(p)});
      }
    }
  };
  schedule(start, Tick{this, std::unique_ptr<Periodic>(new Periodic{
                                 period, std::move(fn)})});
}

}  // namespace mdsim

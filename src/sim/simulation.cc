#include "sim/simulation.h"

#include <cassert>

namespace mdsim {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Simulation::schedule(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulation::schedule_at(SimTime when, std::function<void()> fn) {
  assert(when >= now_);
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Event{when, seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

bool Simulation::step(SimTime until) {
  while (!queue_.empty()) {
    const Event& head = queue_.top();
    if (head.time > until) return false;
    // Move out of the queue before executing: the callback may schedule.
    Event ev = std::move(const_cast<Event&>(head));
    queue_.pop();
    if (ev.state->cancelled) continue;
    now_ = ev.time;
    ev.state->fired = true;
    ev.fn();
    ++executed_;
    return true;
  }
  return false;
}

std::uint64_t Simulation::run_until(SimTime until) {
  std::uint64_t n = 0;
  while (step(until)) ++n;
  // Advance the clock to `until` so back-to-back runs resume correctly.
  if (until > now_) now_ = until;
  return n;
}

std::uint64_t Simulation::run() {
  std::uint64_t n = 0;
  while (step(~SimTime{0})) ++n;
  return n;
}

void Simulation::every(SimTime period, SimTime start,
                       std::function<bool()> fn) {
  assert(period > 0);
  auto shared_fn = std::make_shared<std::function<bool()>>(std::move(fn));
  // Self-rescheduling event chain.
  struct Rescheduler {
    Simulation* sim;
    SimTime period;
    std::shared_ptr<std::function<bool()>> fn;
    void arm(SimTime delay) {
      sim->schedule(delay, [r = *this]() mutable {
        if ((*r.fn)()) r.arm(r.period);
      });
    }
  };
  Rescheduler{this, period, shared_fn}.arm(start);
}

}  // namespace mdsim

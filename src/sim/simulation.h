// Discrete-event simulation core.
//
// A Simulation owns a time-ordered set of (time, sequence, callback)
// events. Events scheduled for the same instant fire in scheduling order,
// which keeps runs fully deterministic. Events may be cancelled via the
// handle returned by `schedule`.
//
// The hot path is allocation-free in steady state: callbacks live in
// `InlineTask` slots inside a free-listed event slab, the priority queue
// is a 4-ary implicit heap over 16-byte {time, seq, slot} keys (sifts move
// keys, never callbacks), and handles are generation-tagged slot indices —
// no shared_ptr control block per event. See DESIGN.md §5b.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/inline_task.h"

namespace mdsim {

class Simulation;

/// Handle to a scheduled event; allows cancellation. Trivially copyable;
/// all copies refer to the same event. A default-constructed handle is
/// inert, and a handle outliving its event (even across slot reuse) is a
/// safe no-op: the generation tag no longer matches.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not yet fired. Safe to call repeatedly.
  void cancel();
  bool pending() const;

 private:
  friend class Simulation;
  EventHandle(Simulation* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulation* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulation {
 public:
  /// Event-engine health counters (surfaced via core/metrics).
  struct Counters {
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    /// Events scheduled into *this* engine whose callback overflowed the
    /// inline buffer and heap-boxed (each one is an allocation the hot
    /// path was supposed to avoid). Counted per engine at schedule time
    /// by inspecting the stored callable, so the number stays exact when
    /// many engines (shards) run in one process or on one thread —
    /// unlike the old scheme of snapshotting the process-wide
    /// thread-local construction counter at engine creation.
    std::uint64_t task_heap_fallbacks = 0;
  };

  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` ns from now. Returns a cancellable handle.
  /// The callable is constructed directly into its slab slot — no
  /// intermediate InlineTask materialization on the caller's stack.
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineTask> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventHandle schedule(SimTime delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }
  EventHandle schedule(SimTime delay, InlineTask fn);

  /// Schedule at an absolute time >= now().
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineTask> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventHandle schedule_at(SimTime when, F&& fn) {
    const std::uint32_t slot = alloc_slot();
    EventSlot& s = slot_ref(slot);
    s.fn.emplace(std::forward<F>(fn));
    task_heap_fallbacks_ += s.fn.is_heap_fallback();
    return finish_schedule(when, slot, s.gen);
  }
  EventHandle schedule_at(SimTime when, InlineTask fn);

  /// Run until the event queue empties or simulated time reaches `until`.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  /// Run until the queue is empty. Returns events executed.
  std::uint64_t run();

  /// Execute a single event; returns false if the queue is empty or the
  /// head event is beyond `until`.
  bool step(SimTime until);

  std::uint64_t events_executed() const { return executed_; }
  /// Scheduled events that have neither fired nor been cancelled.
  std::size_t events_pending() const { return live_pending_; }

  /// Sequence number the next scheduled event will receive. The network's
  /// same-destination delivery batching uses this to detect that nothing
  /// was scheduled since it opened a batch — the condition under which
  /// appending to the batch is indistinguishable from scheduling another
  /// event (see DESIGN.md §5g).
  std::uint64_t next_seq() const { return seq_; }
  /// Account `n` extra logical events that were folded into one physical
  /// event (batched deliveries): a batch of k messages must report the
  /// same scheduled/executed totals as k individual deliveries.
  void credit_scheduled(std::uint64_t n) { scheduled_ += n; }
  void credit_executed(std::uint64_t n) { executed_ += n; }

  /// No pending event (next_event_time() when the queue is empty).
  static constexpr SimTime kNoEvent = ~SimTime{0};
  /// Timestamp of the earliest queued event, or kNoEvent. May be
  /// conservatively early when the head entry was cancelled (cancelled
  /// slots stay in the heap until popped) — callers using this as a
  /// window lower bound stay correct, at worst running an empty window.
  SimTime next_event_time() const {
    return heap_end_ > kHeapRoot ? heap_[kHeapRoot].time : kNoEvent;
  }

  Counters counters() const;

  /// Register a periodic callback fired every `period` starting at
  /// `start`; runs until the simulation stops or `fn` returns false.
  void every(SimTime period, SimTime start, InlineFunction<bool()> fn);

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// What the heap orders: 16 bytes, so a sift moves two words while the
  /// (much larger) callback stays put in the slab. `seq` is the low half
  /// of the global sequence counter; the wrap-safe comparison below is
  /// exact as long as no two co-pending events are > 2^31 schedules apart,
  /// which would require two billion simultaneously pending events.
  struct HeapKey {
    SimTime time;
    std::uint32_t seq;
    std::uint32_t slot;
  };
  static_assert(sizeof(HeapKey) == 16);

  /// Slab slot: owns the callback until the event fires, is cancelled, or
  /// the engine is destroyed. `gen` increments on every free, so stale
  /// handles (and handles into reused slots) can never act on the wrong
  /// occupant. Slots live in fixed-size chunks so their addresses are
  /// stable across growth — `step` relies on this to invoke the callback
  /// in place (no 64-byte move-out) even when it schedules new events.
  struct EventSlot {
    InlineTask fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNilSlot;
    bool cancelled = false;
  };

  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;  // slots
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  EventSlot& slot_ref(std::uint32_t slot) {
    return slot_chunks_[slot >> kChunkShift][slot & kChunkMask];
  }
  const EventSlot& slot_ref(std::uint32_t slot) const {
    return slot_chunks_[slot >> kChunkShift][slot & kChunkMask];
  }

  static bool key_before(const HeapKey& a, const HeapKey& b) {
    // Branchless on purpose: sift comparisons see effectively random
    // keys, so a short-circuit here is an unpredictable branch in the
    // heap's hottest loop. `|`/`&` evaluate both legs and compile to
    // flag-setting + cmov-style code instead.
    return static_cast<int>(a.time < b.time) |
           (static_cast<int>(a.time == b.time) &
            static_cast<int>(static_cast<std::int32_t>(a.seq - b.seq) < 0));
  }

  /// The heap array is 64-byte aligned with the root at physical index
  /// 3, so every 4-child group `4i-8 .. 4i-5` starts on a multiple of 4
  /// keys — one cache line per group instead of a straddled pair.
  static constexpr std::size_t kHeapRoot = 3;
  static std::size_t heap_parent(std::size_t c) { return (c + 8) >> 2; }
  static std::size_t heap_first_child(std::size_t i) { return 4 * i - 8; }

  std::uint32_t alloc_slot();
  EventHandle finish_schedule(SimTime when, std::uint32_t slot,
                              std::uint32_t gen);
  void free_slot(std::uint32_t slot);
  void heap_push(HeapKey key);
  void heap_pop_root();
  void heap_grow();

  void cancel_event(std::uint32_t slot, std::uint32_t gen);
  bool event_pending(std::uint32_t slot, std::uint32_t gen) const;

  HeapKey* heap_ = nullptr;     // aligned; keys at [kHeapRoot, heap_end_)
  std::size_t heap_end_ = kHeapRoot;
  std::size_t heap_cap_end_ = kHeapRoot;
  std::vector<std::unique_ptr<EventSlot[]>> slot_chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t occupied_ = 0;  // allocated and not yet freed
  std::uint32_t free_head_ = kNilSlot;

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t live_pending_ = 0;
  std::uint64_t task_heap_fallbacks_ = 0;
};

}  // namespace mdsim

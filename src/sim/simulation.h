// Discrete-event simulation core.
//
// A Simulation owns a priority queue of (time, sequence, callback) events.
// Events scheduled for the same instant fire in scheduling order, which
// keeps runs fully deterministic. Events may be cancelled via the handle
// returned by `schedule`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.h"

namespace mdsim {

class Simulation;

/// Handle to a scheduled event; allows cancellation. Copyable; all copies
/// refer to the same event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not yet fired. Safe to call repeatedly.
  void cancel();
  bool pending() const;

 private:
  friend class Simulation;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` ns from now. Returns a cancellable handle.
  EventHandle schedule(SimTime delay, std::function<void()> fn);

  /// Schedule at an absolute time >= now().
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Run until the event queue empties or simulated time reaches `until`.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  /// Run until the queue is empty. Returns events executed.
  std::uint64_t run();

  /// Execute a single event; returns false if the queue is empty or the
  /// head event is beyond `until`.
  bool step(SimTime until);

  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return queue_.size(); }

  /// Register a periodic callback fired every `period` starting at
  /// `start`; runs until the simulation stops or `fn` returns false.
  void every(SimTime period, SimTime start, std::function<bool()> fn);

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;

    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace mdsim

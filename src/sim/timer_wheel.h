// Bucketed timer wheel for dense timer populations.
//
// The event engine's 4-ary heap is exact but pays O(log n) per timer and
// one 80-byte slab slot per pending callback. A client cohort arms one
// timer per client per operation (think time, request timeout, retry
// backoff) — tens of thousands of concurrently pending timers whose
// precision requirement is far coarser than a nanosecond. The wheel
// coalesces them: timers land in fixed-granularity buckets, and the wheel
// keeps exactly *one* engine event armed (for the earliest non-empty
// bucket), firing all of a bucket's entries at the bucket boundary.
//
// Semantics:
//  - A timer due at `due` fires at ceil(due / granularity) * granularity:
//    quantized *up* (never early), by strictly less than one granule.
//  - Entries within a bucket fire in insertion order (deterministic).
//  - Delays beyond the horizon (slots * granularity) are carried with a
//    lap counter and fire on the correct revolution — arbitrary delays
//    are exact to the same one-granule bound.
//  - Cancellation is the owner's job, by stamp: each entry carries a
//    caller-supplied 32-bit stamp, echoed to the fire callback. Owners
//    that bump their stamp per re-arm drop stale firings with one
//    compare — no search, no tombstone pass.
//
// Not a general replacement for Simulation::schedule: callbacks that need
// exact timestamps or per-event payloads stay on the heap engine.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/inline_task.h"
#include "sim/simulation.h"

namespace mdsim {

class TimerWheel {
 public:
  /// Fired per entry: (index, stamp) as given to arm().
  using FireFn = InlineFunction<void(std::uint32_t, std::uint32_t)>;

  /// `slots` must be a power of two. Default horizon: 128 µs × 65536 =
  /// ~8.6 s, which keeps one lap the common case for client think times,
  /// request timeouts and capped backoff alike.
  TimerWheel(Simulation& sim, FireFn on_fire,
             SimTime granularity = from_micros(128),
             std::uint32_t slots = 1u << 16)
      : sim_(sim),
        on_fire_(std::move(on_fire)),
        granularity_(granularity),
        mask_(slots - 1),
        buckets_(slots) {
    assert(granularity > 0);
    assert(slots != 0 && (slots & (slots - 1)) == 0);
    words_.resize(slots / 64 + 1, 0);
  }

  /// Arm a timer for owner `index` due at absolute time `due` (>= now).
  /// `stamp` is echoed to the fire callback; the wheel never interprets
  /// it. One owner may have any number of live entries — stale ones are
  /// the owner's to ignore.
  void arm(std::uint32_t index, std::uint32_t stamp, SimTime due) {
    assert(due >= sim_.now());
    // current_tick_ is only advanced by service(); catch it up to real
    // time first so lap counts are measured from *now*, not from the last
    // firing (the wheel may have sat idle for many revolutions).
    const std::uint64_t now_tick = sim_.now() / granularity_;
    if (now_tick > current_tick_) current_tick_ = now_tick;
    // Quantize up; a due time exactly on a boundary keeps that boundary.
    std::uint64_t tick = (due + granularity_ - 1) / granularity_;
    if (tick <= current_tick_) tick = current_tick_ + 1;  // never the past
    const std::uint64_t ahead = tick - current_tick_;  // >= 1
    // The bucket `ahead` ticks out is next serviced in lap 0 for any
    // ahead in [1, slots] — hence the -1, lest a due exactly one horizon
    // away fire a full revolution late.
    const std::uint32_t laps =
        static_cast<std::uint32_t>((ahead - 1) / (mask_ + std::uint64_t{1}));
    const std::uint32_t b = static_cast<std::uint32_t>(tick) & mask_;
    buckets_[b].push_back(Entry{index, stamp, laps});
    mark_nonempty(b);
    ++armed_count_;
    if (laps == 0) {
      const SimTime fire_at = static_cast<SimTime>(tick) * granularity_;
      if (!next_fire_.pending() || fire_at < next_fire_at_) rearm(fire_at);
    } else if (!next_fire_.pending()) {
      // Beyond the horizon with nothing armed: wake at this bucket's next
      // occurrence (each revolution's service decrements the lap count, so
      // the wake chain stays alive until it fires).
      schedule_next_from(current_tick_ + 1);
    }
  }

  /// Install a hook that runs once at the end of every bucket service
  /// that fired at least one entry. Owners batching per-entry bookkeeping
  /// (the cohort's turn counters) flush it here: one stats update per
  /// bucket instead of one per timer, and — since a bucket drains inside a
  /// single engine event — no other event can ever observe the unflushed
  /// intermediate state.
  void set_bucket_end_hook(InlineFunction<void()> hook) {
    bucket_end_ = std::move(hook);
  }

  /// Live entries, including stale ones not yet fired.
  std::uint64_t armed() const { return armed_count_; }
  std::uint64_t fired() const { return fired_count_; }
  SimTime granularity() const { return granularity_; }

 private:
  struct Entry {
    std::uint32_t index;
    std::uint32_t stamp;
    std::uint32_t laps;  // revolutions remaining before this entry fires
  };

  void mark_nonempty(std::uint32_t b) {
    words_[b >> 6] |= std::uint64_t{1} << (b & 63);
  }

  void rearm(SimTime fire_at) {
    next_fire_.cancel();
    next_fire_at_ = fire_at;
    next_fire_ = sim_.schedule_at(fire_at, [this] { service(); });
  }

  void service() {
    const std::uint64_t tick = next_fire_at_ / granularity_;
    current_tick_ = tick;
    const std::uint32_t b = static_cast<std::uint32_t>(tick) & mask_;
    auto& bucket = buckets_[b];
    // Swap out first: firing may arm new entries into this same bucket
    // (for the next revolution, or the next tick mapping elsewhere).
    scratch_.clear();
    scratch_.swap(bucket);
    words_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    std::uint64_t fired_here = 0;
    for (Entry& e : scratch_) {
      if (e.laps > 0) {
        // Not this revolution: put it back for a later lap.
        bucket.push_back(Entry{e.index, e.stamp, e.laps - 1});
        mark_nonempty(b);
        continue;
      }
      --armed_count_;
      ++fired_here;
      on_fire_(e.index, e.stamp);
    }
    fired_count_ += fired_here;
    if (fired_here != 0 && bucket_end_) bucket_end_();
    schedule_next_from(tick + 1);
  }

  /// Arm the engine event for the first non-empty bucket at or after
  /// `from_tick` (bitmap scan; ~1 cache line per 4096 empty buckets).
  void schedule_next_from(std::uint64_t from_tick) {
    if (armed_count_ == 0) return;
    const std::uint32_t slots = mask_ + 1;
    std::uint32_t offset = 0;
    while (offset < slots) {
      const std::uint32_t b =
          static_cast<std::uint32_t>(from_tick + offset) & mask_;
      const std::uint32_t bit = b & 63;
      // One probe sees buckets b .. b+span-1: to the end of this bitmap
      // word, but never past the wheel edge — a wheel smaller than one
      // word must wrap within the word, re-entering at bucket 0, not
      // skip a whole word's worth of (nonexistent) buckets.
      const std::uint32_t span = std::min(64 - bit, slots - b);
      const std::uint64_t word = words_[b >> 6] >> bit;
      if (word != 0) {
        const std::uint32_t hit =
            static_cast<std::uint32_t>(__builtin_ctzll(word));
        if (hit < span) {
          offset += hit;
          rearm(static_cast<SimTime>(from_tick + offset) * granularity_);
          return;
        }
      }
      offset += span;
    }
    // Only lapped entries remain: they live in non-empty buckets, so the
    // scan above must have found one within a revolution.
    assert(false && "armed entries but no non-empty bucket");
  }

  Simulation& sim_;
  FireFn on_fire_;
  InlineFunction<void()> bucket_end_;
  SimTime granularity_;
  std::uint32_t mask_;
  std::vector<std::vector<Entry>> buckets_;
  std::vector<std::uint64_t> words_;  // non-empty bucket bitmap
  std::vector<Entry> scratch_;
  std::uint64_t current_tick_ = 0;
  std::uint64_t armed_count_ = 0;
  std::uint64_t fired_count_ = 0;
  EventHandle next_fire_;
  SimTime next_fire_at_ = 0;
};

}  // namespace mdsim

#include "storage/anchor_table.h"

#include <cassert>

namespace mdsim {

void AnchorTable::add_chain(InodeId ino,
                            const std::vector<InodeId>& parent_chain) {
  InodeId cur = ino;
  for (InodeId parent : parent_chain) {
    Entry& e = table_[cur];
    if (e.nref == 0) e.parent = parent;
    assert(e.parent == parent && "inconsistent parent chain");
    ++e.nref;
    cur = parent;
  }
  // Terminal ancestor (typically the root) also gets a refcounted entry
  // with no parent, so drop_chain can walk symmetrically.
  Entry& last = table_[cur];
  ++last.nref;
}

void AnchorTable::drop_chain(InodeId start) {
  InodeId cur = start;
  while (cur != kInvalidInode) {
    auto it = table_.find(cur);
    assert(it != table_.end() && "refcount underflow: chain missing");
    InodeId parent = it->second.parent;
    if (--it->second.nref == 0) {
      table_.erase(it);
    }
    cur = parent;
  }
}

void AnchorTable::anchor(InodeId ino,
                         const std::vector<InodeId>& parent_chain) {
  add_chain(ino, parent_chain);
}

bool AnchorTable::unanchor(InodeId ino) {
  if (table_.count(ino) == 0) return false;
  drop_chain(ino);
  return true;
}

std::vector<InodeId> AnchorTable::resolve(InodeId ino) const {
  std::vector<InodeId> chain;
  auto it = table_.find(ino);
  if (it == table_.end()) return chain;
  InodeId cur = it->second.parent;
  while (cur != kInvalidInode) {
    chain.push_back(cur);
    auto pit = table_.find(cur);
    if (pit == table_.end()) break;
    cur = pit->second.parent;
  }
  return chain;
}

void AnchorTable::on_directory_move(InodeId dir,
                                    const std::vector<InodeId>& new_chain) {
  auto it = table_.find(dir);
  if (it == table_.end()) return;  // directory not on any anchored chain
  const std::uint32_t moved_refs = it->second.nref;
  const InodeId old_parent = it->second.parent;

  // Release the old ancestors once per ref held through this directory.
  for (std::uint32_t i = 0; i < moved_refs; ++i) {
    if (old_parent != kInvalidInode) drop_chain(old_parent);
  }
  // Acquire the new ancestors the same number of times.
  it = table_.find(dir);
  assert(it != table_.end());
  it->second.parent = new_chain.empty() ? kInvalidInode : new_chain.front();
  if (!new_chain.empty()) {
    for (std::uint32_t i = 0; i < moved_refs; ++i) {
      InodeId cur = kInvalidInode;
      for (std::size_t c = 0; c < new_chain.size(); ++c) {
        Entry& e = table_[new_chain[c]];
        const InodeId parent =
            c + 1 < new_chain.size() ? new_chain[c + 1] : kInvalidInode;
        if (e.nref == 0) e.parent = parent;
        ++e.nref;
        cur = new_chain[c];
      }
      (void)cur;
    }
  }
}

std::uint32_t AnchorTable::refs(InodeId ino) const {
  auto it = table_.find(ino);
  return it == table_.end() ? 0 : it->second.nref;
}

}  // namespace mdsim

// Anchor table (paper section 4.5).
//
// With inodes embedded in directories there is no global inode table, so a
// hard link whose dentry lives in a *different* directory has no way to
// locate the inode. The paper's fix: "a global table mapping inode numbers
// to parent directory inode numbers, ... populat[ed] only with
// multiply-linked inodes and their ancestor directories. Combined with a
// reference count of all such nested items, embedded inodes can be located
// by recursively identifying containing directories."
//
// Entries exist only for anchored inodes and the directories on their
// parent chains; refcounts track how many anchored descendants keep each
// directory entry alive, so the table stays proportional to the number of
// hard links — not the file system.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace mdsim {

class AnchorTable {
 public:
  /// Anchor `ino`, whose parent chain (from immediate parent up to the
  /// root, root excluded or included — caller's choice, resolve stops at
  /// a missing entry) is `parent_chain[0] = parent of ino`, etc.
  void anchor(InodeId ino, const std::vector<InodeId>& parent_chain);

  /// Remove one anchor on `ino` (e.g. the extra link was unlinked).
  /// Returns false if `ino` was not anchored.
  bool unanchor(InodeId ino);

  /// Resolve an anchored inode to its ancestor chain, nearest first.
  /// Empty if the inode is not anchored.
  std::vector<InodeId> resolve(InodeId ino) const;

  bool is_anchored(InodeId ino) const { return table_.count(ino) != 0; }

  /// A directory in the table moved: point its entry at the new parent
  /// and splice refcounts from the old chain to the new one. `new_chain`
  /// is the moved directory's new parent chain (nearest first). This is
  /// the fixed-cost rename update the paper contrasts with LH's
  /// million-entry rehash.
  void on_directory_move(InodeId dir, const std::vector<InodeId>& new_chain);

  std::size_t size() const { return table_.size(); }

  /// Internal refcount for tests.
  std::uint32_t refs(InodeId ino) const;

 private:
  struct Entry {
    InodeId parent = kInvalidInode;
    std::uint32_t nref = 0;
  };

  void add_chain(InodeId ino, const std::vector<InodeId>& parent_chain);
  void drop_chain(InodeId start);

  std::unordered_map<InodeId, Entry> table_;
};

}  // namespace mdsim

#include "storage/btree.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace mdsim {

struct DirBTree::Node {
  bool leaf = true;
  std::uint64_t write_epoch = 0;  // last COW epoch this node was written in
  std::vector<std::string> keys;
  // Internal nodes: children.size() == keys.size() + 1.
  std::vector<Node*> children;
  // Leaves only:
  std::vector<DirRecord> values;
  Node* next = nullptr;  // leaf chain
  Node* prev = nullptr;
};

DirBTree::DirBTree(std::uint32_t order) : order_(order) {
  assert(order_ >= 4 && "B+tree order must be at least 4");
  root_ = new_node(/*leaf=*/true);
}

DirBTree::~DirBTree() {
  if (root_ != nullptr) free_subtree(root_);
}

DirBTree::DirBTree(DirBTree&& o) noexcept
    : root_(o.root_),
      order_(o.order_),
      size_(o.size_),
      node_count_(o.node_count_),
      epoch_(o.epoch_) {
  o.root_ = nullptr;
  o.size_ = 0;
  o.node_count_ = 0;
}

DirBTree& DirBTree::operator=(DirBTree&& o) noexcept {
  if (this != &o) {
    if (root_ != nullptr) free_subtree(root_);
    root_ = o.root_;
    order_ = o.order_;
    size_ = o.size_;
    node_count_ = o.node_count_;
    epoch_ = o.epoch_;
    o.root_ = nullptr;
    o.size_ = 0;
    o.node_count_ = 0;
  }
  return *this;
}

DirBTree::Node* DirBTree::new_node(bool leaf) {
  Node* n = new Node;
  n->leaf = leaf;
  n->write_epoch = epoch_;
  ++node_count_;
  return n;
}

void DirBTree::free_node(Node* n) {
  delete n;
  --node_count_;
}

void DirBTree::free_subtree(Node* n) {
  if (!n->leaf) {
    for (Node* c : n->children) free_subtree(c);
  }
  free_node(n);
}

void DirBTree::touch_write(Node* n, BTreeIoCost* cost) {
  if (cost != nullptr) {
    ++cost->nodes_written;
    // First write in this COW epoch clones the node.
    if (n->write_epoch != epoch_) ++cost->nodes_written;
  }
  n->write_epoch = epoch_;
}

std::uint32_t DirBTree::height() const {
  std::uint32_t h = 1;
  for (const Node* n = root_; !n->leaf; n = n->children.front()) ++h;
  return h;
}

// --- find -------------------------------------------------------------

const DirRecord* DirBTree::find(const std::string& key,
                                BTreeIoCost* cost) const {
  const Node* n = root_;
  while (true) {
    if (cost != nullptr) ++cost->nodes_read;
    if (n->leaf) break;
    // children[i] holds keys < keys[i]; child[i+1] holds keys >= keys[i].
    const auto it = std::upper_bound(n->keys.begin(), n->keys.end(), key);
    n = n->children[static_cast<std::size_t>(it - n->keys.begin())];
  }
  const auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
  if (it == n->keys.end() || *it != key) return nullptr;
  return &n->values[static_cast<std::size_t>(it - n->keys.begin())];
}

// --- insert -----------------------------------------------------------

void DirBTree::split_child(Node* parent, std::size_t idx, BTreeIoCost* cost) {
  Node* child = parent->children[idx];
  Node* right = new_node(child->leaf);
  const std::size_t mid = child->keys.size() / 2;

  std::string sep;
  if (child->leaf) {
    sep = child->keys[mid];
    right->keys.assign(child->keys.begin() + static_cast<std::ptrdiff_t>(mid),
                       child->keys.end());
    right->values.assign(
        child->values.begin() + static_cast<std::ptrdiff_t>(mid),
        child->values.end());
    child->keys.resize(mid);
    child->values.resize(mid);
    right->next = child->next;
    right->prev = child;
    if (child->next != nullptr) child->next->prev = right;
    child->next = right;
  } else {
    sep = child->keys[mid];
    right->keys.assign(
        child->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
        child->keys.end());
    right->children.assign(
        child->children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
        child->children.end());
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }

  parent->keys.insert(parent->keys.begin() + static_cast<std::ptrdiff_t>(idx),
                      sep);
  parent->children.insert(
      parent->children.begin() + static_cast<std::ptrdiff_t>(idx) + 1, right);
  touch_write(child, cost);
  touch_write(right, cost);
  touch_write(parent, cost);
}

bool DirBTree::insert(const std::string& key, const DirRecord& rec,
                      BTreeIoCost* cost) {
  // Grow the root if full.
  if (root_->keys.size() >= order_) {
    Node* new_root = new_node(/*leaf=*/false);
    new_root->children.push_back(root_);
    root_ = new_root;
    split_child(new_root, 0, cost);
  }
  Node* n = root_;
  while (true) {
    if (cost != nullptr) ++cost->nodes_read;
    if (n->leaf) break;
    auto it = std::upper_bound(n->keys.begin(), n->keys.end(), key);
    std::size_t ci = static_cast<std::size_t>(it - n->keys.begin());
    if (n->children[ci]->keys.size() >= order_) {
      split_child(n, ci, cost);
      // The separator moved up; re-decide which side to descend.
      if (key >= n->keys[ci]) ++ci;
    }
    n = n->children[ci];
  }
  auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
  const std::size_t pos = static_cast<std::size_t>(it - n->keys.begin());
  if (it != n->keys.end() && *it == key) {
    n->values[pos] = rec;
    touch_write(n, cost);
    return false;
  }
  n->keys.insert(it, key);
  n->values.insert(n->values.begin() + static_cast<std::ptrdiff_t>(pos), rec);
  touch_write(n, cost);
  ++size_;
  return true;
}

// --- erase ------------------------------------------------------------

void DirBTree::rebalance_child(Node* parent, std::size_t idx,
                               BTreeIoCost* cost) {
  const std::size_t min_keys = (order_ - 1) / 2;
  Node* child = parent->children[idx];
  Node* left = idx > 0 ? parent->children[idx - 1] : nullptr;
  Node* right =
      idx + 1 < parent->children.size() ? parent->children[idx + 1] : nullptr;

  if (left != nullptr && left->keys.size() > min_keys) {
    // Borrow from the left sibling.
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->values.insert(child->values.begin(), left->values.back());
      left->keys.pop_back();
      left->values.pop_back();
      parent->keys[idx - 1] = child->keys.front();
    } else {
      child->keys.insert(child->keys.begin(), parent->keys[idx - 1]);
      parent->keys[idx - 1] = left->keys.back();
      left->keys.pop_back();
      child->children.insert(child->children.begin(), left->children.back());
      left->children.pop_back();
    }
    touch_write(left, cost);
    touch_write(child, cost);
    touch_write(parent, cost);
    return;
  }
  if (right != nullptr && right->keys.size() > min_keys) {
    // Borrow from the right sibling.
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      child->values.push_back(right->values.front());
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      parent->keys[idx] = right->keys.front();
    } else {
      child->keys.push_back(parent->keys[idx]);
      parent->keys[idx] = right->keys.front();
      right->keys.erase(right->keys.begin());
      child->children.push_back(right->children.front());
      right->children.erase(right->children.begin());
    }
    touch_write(right, cost);
    touch_write(child, cost);
    touch_write(parent, cost);
    return;
  }

  // Merge with a sibling.
  std::size_t li = left != nullptr ? idx - 1 : idx;  // merge children[li], [li+1]
  Node* a = parent->children[li];
  Node* b = parent->children[li + 1];
  if (a->leaf) {
    a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
    a->values.insert(a->values.end(), b->values.begin(), b->values.end());
    a->next = b->next;
    if (b->next != nullptr) b->next->prev = a;
  } else {
    a->keys.push_back(parent->keys[li]);
    a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
    a->children.insert(a->children.end(), b->children.begin(),
                       b->children.end());
  }
  parent->keys.erase(parent->keys.begin() + static_cast<std::ptrdiff_t>(li));
  parent->children.erase(parent->children.begin() +
                         static_cast<std::ptrdiff_t>(li) + 1);
  free_node(b);
  touch_write(a, cost);
  touch_write(parent, cost);
}

bool DirBTree::erase(const std::string& key, BTreeIoCost* cost) {
  const std::size_t min_keys = (order_ - 1) / 2;
  Node* n = root_;
  while (true) {
    if (cost != nullptr) ++cost->nodes_read;
    if (n->leaf) break;
    auto it = std::upper_bound(n->keys.begin(), n->keys.end(), key);
    std::size_t ci = static_cast<std::size_t>(it - n->keys.begin());
    // Preemptively top up underfull children on the way down so the leaf
    // deletion never needs to walk back up.
    if (n->children[ci]->keys.size() <= min_keys) {
      rebalance_child(n, ci, cost);
      // Rebalancing may have merged/shifted; recompute the child index.
      auto it2 = std::upper_bound(n->keys.begin(), n->keys.end(), key);
      ci = static_cast<std::size_t>(it2 - n->keys.begin());
    }
    n = n->children[ci];
  }
  auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
  if (it == n->keys.end() || *it != key) return false;
  const std::size_t pos = static_cast<std::size_t>(it - n->keys.begin());
  n->keys.erase(it);
  n->values.erase(n->values.begin() + static_cast<std::ptrdiff_t>(pos));
  touch_write(n, cost);
  --size_;

  // Shrink the root if it became a pass-through.
  while (!root_->leaf && root_->keys.empty()) {
    Node* old = root_;
    root_ = root_->children.front();
    free_node(old);
  }
  return true;
}

// --- scan ---------------------------------------------------------------

void DirBTree::scan(
    const std::function<void(const std::string&, const DirRecord&)>& fn,
    BTreeIoCost* cost) const {
  // Walk down the left spine, then the leaf chain.
  const Node* n = root_;
  while (!n->leaf) {
    if (cost != nullptr) ++cost->nodes_read;
    n = n->children.front();
  }
  for (; n != nullptr; n = n->next) {
    if (cost != nullptr) ++cost->nodes_read;
    for (std::size_t i = 0; i < n->keys.size(); ++i) {
      fn(n->keys[i], n->values[i]);
    }
  }
}

// --- invariants -----------------------------------------------------------

std::string DirBTree::check_invariants() const {
  std::ostringstream err;
  const std::size_t min_keys = (order_ - 1) / 2;
  std::size_t counted = 0;
  int leaf_depth = -1;
  const Node* first_leaf = nullptr;

  std::function<bool(const Node*, int, const std::string*,
                     const std::string*)>
      walk = [&](const Node* n, int depth, const std::string* lo,
                 const std::string* hi) -> bool {
    if (n->keys.size() > order_) {
      err << "node overfull: " << n->keys.size() << " > " << order_;
      return false;
    }
    if (n != root_ && n->keys.size() < min_keys) {
      err << "node underfull: " << n->keys.size() << " < " << min_keys;
      return false;
    }
    if (!std::is_sorted(n->keys.begin(), n->keys.end())) {
      err << "keys not sorted";
      return false;
    }
    for (const auto& k : n->keys) {
      if (lo != nullptr && k < *lo) {
        err << "key below subtree bound";
        return false;
      }
      if (hi != nullptr && k >= *hi) {
        err << "key above subtree bound";
        return false;
      }
    }
    if (n->leaf) {
      if (leaf_depth == -1) {
        leaf_depth = depth;
        first_leaf = n;
      } else if (leaf_depth != depth) {
        err << "leaves at different depths";
        return false;
      }
      if (n->keys.size() != n->values.size()) {
        err << "leaf key/value count mismatch";
        return false;
      }
      counted += n->keys.size();
      return true;
    }
    if (n->children.size() != n->keys.size() + 1) {
      err << "internal child count mismatch";
      return false;
    }
    for (std::size_t i = 0; i < n->children.size(); ++i) {
      const std::string* clo = i == 0 ? lo : &n->keys[i - 1];
      const std::string* chi = i == n->keys.size() ? hi : &n->keys[i];
      if (!walk(n->children[i], depth + 1, clo, chi)) return false;
    }
    return true;
  };
  if (!walk(root_, 0, nullptr, nullptr)) return err.str();
  if (counted != size_) {
    err << "size mismatch: counted " << counted << " stored " << size_;
    return err.str();
  }
  // Leaf chain must visit every leaf exactly once, in key order.
  std::size_t chained = 0;
  std::string prev_key;
  bool have_prev = false;
  for (const Node* n = first_leaf; n != nullptr; n = n->next) {
    for (const auto& k : n->keys) {
      if (have_prev && !(prev_key < k)) {
        err << "leaf chain out of order";
        return err.str();
      }
      prev_key = k;
      have_prev = true;
      ++chained;
    }
    if (n->next != nullptr && n->next->prev != n) {
      err << "leaf chain prev/next mismatch";
      return err.str();
    }
  }
  if (chained != size_) {
    err << "leaf chain missed entries: " << chained << " vs " << size_;
    return err.str();
  }
  return {};
}

}  // namespace mdsim

// B+tree directory-object format (paper section 4.6): directory contents
// (dentries with embedded inodes) are stored "in a B-tree-like structure
// (similar to XFS) that allows incremental updates ... with minimal
// modifications to on-disk structures (rewriting changed B-tree nodes)".
//
// This is a real B+tree: internal nodes route by key, leaves hold
// (name -> record) pairs and are chained for in-order scans. Every
// operation reports how many tree nodes it read and dirtied, which the
// object store converts into simulated I/O cost. A copy-on-write epoch
// counter supports cheap snapshot semantics: bumping the epoch makes the
// next write to each node count as a fresh node write (the COW clone).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace mdsim {

/// Value stored per dentry: the embedded inode reference.
struct DirRecord {
  InodeId ino = kInvalidInode;
  std::uint64_t version = 0;
  bool is_dir = false;

  bool operator==(const DirRecord&) const = default;
};

/// Per-operation I/O accounting.
struct BTreeIoCost {
  std::uint32_t nodes_read = 0;
  std::uint32_t nodes_written = 0;

  BTreeIoCost& operator+=(const BTreeIoCost& o) {
    nodes_read += o.nodes_read;
    nodes_written += o.nodes_written;
    return *this;
  }
};

class DirBTree {
 public:
  /// `order`: max keys per node (leaf and internal). Minimum occupancy is
  /// (order-1)/2 except for the root.
  explicit DirBTree(std::uint32_t order = 32);
  ~DirBTree();
  DirBTree(DirBTree&&) noexcept;
  DirBTree& operator=(DirBTree&&) noexcept;
  DirBTree(const DirBTree&) = delete;
  DirBTree& operator=(const DirBTree&) = delete;

  /// Insert or overwrite. Returns true if the key was new.
  bool insert(const std::string& key, const DirRecord& rec, BTreeIoCost* cost);
  /// Returns nullptr if absent.
  const DirRecord* find(const std::string& key, BTreeIoCost* cost) const;
  /// Returns true if the key existed.
  bool erase(const std::string& key, BTreeIoCost* cost);

  /// In-order scan of all entries (a readdir). Cost = all leaves read.
  void scan(const std::function<void(const std::string&, const DirRecord&)>&
                fn,
            BTreeIoCost* cost) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint32_t height() const;
  std::size_t node_count() const { return node_count_; }
  std::uint32_t order() const { return order_; }

  /// Begin a copy-on-write snapshot epoch: subsequent first-touch writes to
  /// each node count an extra node write (the clone).
  void begin_cow_epoch() { ++epoch_; }

  /// Verify structural invariants (ordering, occupancy, uniform leaf
  /// depth, chain consistency). Returns empty string if healthy, else a
  /// description of the first violation. For tests.
  std::string check_invariants() const;

 private:
  struct Node;
  struct FindResult;

  Node* root_ = nullptr;
  std::uint32_t order_;
  std::size_t size_ = 0;
  std::size_t node_count_ = 0;
  std::uint64_t epoch_ = 0;

  void touch_write(Node* n, BTreeIoCost* cost);
  Node* new_node(bool leaf);
  void free_node(Node* n);
  void free_subtree(Node* n);

  void split_child(Node* parent, std::size_t idx, BTreeIoCost* cost);
  void rebalance_child(Node* parent, std::size_t idx, BTreeIoCost* cost);
};

}  // namespace mdsim

#include "storage/disk_model.h"

namespace mdsim {

DiskModel::DiskModel(Simulation& sim, const DiskParams& params,
                     std::string name)
    : params_(params),
      store_(sim, name + ".store"),
      journal_(sim, name + ".journal") {
  store_.set_access_latency(params_.access_latency);
}

SimTime DiskModel::transfer_time(std::uint32_t nodes) const {
  const std::uint32_t extra = nodes > 0 ? nodes - 1 : 0;
  return params_.transaction_time + extra * params_.per_node_time;
}

void DiskModel::read_object(std::uint32_t nodes, TraceSpan span,
                            InlineTask done) {
  ++reads_;
  store_.submit(transfer_time(nodes), span, std::move(done));
}

void DiskModel::write_object(std::uint32_t nodes, InlineTask done) {
  ++writes_;
  store_.submit(transfer_time(nodes), std::move(done));
}

void DiskModel::journal_append(TraceSpan span, InlineTask done) {
  ++journal_appends_;
  journal_.submit(params_.journal_append_time, span, std::move(done));
}

void DiskModel::reset_stats(SimTime now) {
  store_.reset_stats(now);
  journal_.reset_stats(now);
  reads_ = 0;
  writes_ = 0;
  journal_appends_ = 0;
}

}  // namespace mdsim

// Metadata storage device models (paper section 5.1: storage is simulated
// as "average disk latencies and transactional throughputs only").
//
// Two devices per MDS:
//  * the metadata store (random transactions: directory-object reads and
//    tier-2 writebacks), and
//  * the journal device (sequential appends, much higher throughput;
//    optionally near-zero latency to model NVRAM, section 4.6).
#pragma once

#include <string>

#include "common/types.h"
#include "sim/queue_server.h"

namespace mdsim {

struct DiskParams {
  /// Service time per random metadata transaction (one directory object
  /// or one individual inode, section 5.3: the unit depends on strategy).
  SimTime transaction_time = from_millis(6.0);
  /// Additional service time per B+tree node beyond the first in a
  /// multi-node transfer (sequential transfer is cheap next to the seek).
  SimTime per_node_time = from_micros(150);
  /// Fixed access latency outside the serialized portion (controller/bus).
  SimTime access_latency = from_micros(200);

  /// Journal append service time (sequential; or NVRAM if tiny).
  SimTime journal_append_time = from_micros(400);
};

class DiskModel {
 public:
  DiskModel(Simulation& sim, const DiskParams& params, std::string name);

  /// Read one stored object spanning `nodes` B+tree nodes. The traced
  /// overload attributes queue/service time to the span's stages.
  void read_object(std::uint32_t nodes, InlineTask done) {
    read_object(nodes, TraceSpan{}, std::move(done));
  }
  void read_object(std::uint32_t nodes, TraceSpan span, InlineTask done);
  /// Write (back) an object touching `nodes` B+tree nodes.
  void write_object(std::uint32_t nodes, InlineTask done);
  /// Append a journal entry.
  void journal_append(InlineTask done) {
    journal_append(TraceSpan{}, std::move(done));
  }
  void journal_append(TraceSpan span, InlineTask done);

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t journal_appends() const { return journal_appends_; }
  double store_utilization(SimTime now) const {
    return store_.utilization(now);
  }
  SimTime store_busy_time() const { return store_.busy_time(); }
  double journal_utilization(SimTime now) const {
    return journal_.utilization(now);
  }
  std::size_t store_queue_depth() const { return store_.queue_depth(); }
  /// Unfinished work (ns of service) queued at the metadata store — the
  /// health layer's local disk-lag signal.
  SimTime store_backlog() const { return store_.backlog(); }
  void reset_stats(SimTime now);

  /// Fail-slow injection: both devices serve every subsequent job `mult`
  /// times slower (1.0 restores nominal speed). Queued jobs keep their
  /// original service times.
  void set_service_time_multiplier(double mult) {
    store_.set_service_time_multiplier(mult);
    journal_.set_service_time_multiplier(mult);
  }
  double service_time_multiplier() const {
    return store_.service_time_multiplier();
  }

 private:
  SimTime transfer_time(std::uint32_t nodes) const;

  DiskParams params_;
  QueueServer store_;
  QueueServer journal_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t journal_appends_ = 0;
};

}  // namespace mdsim

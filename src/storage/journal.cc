#include "storage/journal.h"

#include <cassert>

namespace mdsim {

BoundedJournal::BoundedJournal(std::size_t capacity,
                               std::function<void(InodeId)> on_writeback)
    : capacity_(capacity), on_writeback_(std::move(on_writeback)) {
  assert(capacity_ > 0);
}

void BoundedJournal::append(InodeId ino) {
  ++appends_;
  log_.push_back(Slot{ino, next_seq_});
  live_[ino] = next_seq_;
  ++next_seq_;

  while (log_.size() > capacity_) {
    Slot tail = log_.front();
    log_.pop_front();
    auto it = live_.find(tail.ino);
    if (it != live_.end() && it->second == tail.seq) {
      // Still live: must be persisted to tier 2.
      live_.erase(it);
      ++writebacks_;
      if (on_writeback_) on_writeback_(tail.ino);
    } else {
      // Superseded by a later entry — a hole; absorbed by the log.
      ++superseded_expiries_;
    }
  }
}

std::vector<InodeId> BoundedJournal::replay() const {
  std::vector<InodeId> out;
  out.reserve(live_.size());
  for (const Slot& s : log_) {
    auto it = live_.find(s.ino);
    if (it != live_.end() && it->second == s.seq) out.push_back(s.ino);
  }
  return out;
}

double BoundedJournal::absorption_rate() const {
  const std::uint64_t expired = writebacks_ + superseded_expiries_;
  if (expired == 0) return 0.0;
  return static_cast<double>(superseded_expiries_) /
         static_cast<double>(expired);
}

}  // namespace mdsim

// Bounded per-MDS update journal (paper section 4.6).
//
// "We utilize a bounded log structure for the immediate storage of updates
//  on each metadata server. Entries that fall off the end of the log
//  without subsequent modifications are written to a second, more
//  permanent, tier of storage. With a log size on the order of the amount
//  of memory in the MDS ... the log represents an approximation of that
//  node's working set, allowing the memory cache to be quickly preloaded
//  with millions of records on startup or after a failure."
//
// The journal tracks, per inode, its most recent position in the bounded
// log. Re-modifying an inode moves it to the head (the old entry becomes a
// hole and never triggers a writeback). When an entry is pushed off the
// tail and is still live (not superseded), it must be written back to
// tier 2 — the caller receives it via the eviction callback.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace mdsim {

class BoundedJournal {
 public:
  /// `capacity` = number of log slots (≈ MDS cache size per the paper).
  /// `on_writeback(ino)` fires when a live entry falls off the tail.
  BoundedJournal(std::size_t capacity,
                 std::function<void(InodeId)> on_writeback);

  /// Record an update to `ino`. If the inode already has a live entry it
  /// is superseded (no writeback for the old position).
  void append(InodeId ino);

  /// Inodes with live entries, oldest first — the approximate working set
  /// used to preload the cache on startup/failover (cache warming).
  std::vector<InodeId> replay() const;

  bool contains(InodeId ino) const { return live_.count(ino) != 0; }
  std::size_t live_entries() const { return live_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_appends() const { return appends_; }
  std::uint64_t writebacks() const { return writebacks_; }
  /// Fraction of expired entries that were superseded (no writeback
  /// needed); high values mean the log is absorbing overwrites.
  double absorption_rate() const;

 private:
  struct Slot {
    InodeId ino;
    std::uint64_t seq;
  };

  std::size_t capacity_;
  std::function<void(InodeId)> on_writeback_;
  std::deque<Slot> log_;
  std::unordered_map<InodeId, std::uint64_t> live_;  // ino -> newest seq
  std::uint64_t next_seq_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t superseded_expiries_ = 0;
};

}  // namespace mdsim

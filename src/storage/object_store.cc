#include "storage/object_store.h"

#include <cassert>

namespace mdsim {

DirBTree* ObjectStore::find(FsNode* dir) {
  auto it = objects_.find(dir->ino());
  return it == objects_.end() ? nullptr : it->second.get();
}

DirBTree& ObjectStore::materialize(FsNode* dir) {
  assert(dir->is_dir());
  auto it = objects_.find(dir->ino());
  if (it != objects_.end()) return *it->second;
  auto tree = std::make_unique<DirBTree>(btree_order_);
  for (const auto& [name, child] : dir->children()) {
    DirRecord rec{child->ino(), child->inode().version, child->is_dir()};
    tree->insert(name, rec, nullptr);
  }
  DirBTree& ref = *tree;
  objects_.emplace(dir->ino(), std::move(tree));
  return ref;
}

std::uint32_t ObjectStore::full_fetch_nodes(FsNode* dir) {
  DirBTree& t = materialize(dir);
  return static_cast<std::uint32_t>(t.node_count());
}

std::uint32_t ObjectStore::lookup_nodes(FsNode* dir, const std::string& name) {
  DirBTree& t = materialize(dir);
  BTreeIoCost cost;
  t.find(name, &cost);
  return cost.nodes_read;
}

std::uint32_t ObjectStore::apply_create(FsNode* dir, const std::string& name,
                                        const DirRecord& rec) {
  DirBTree& t = materialize(dir);
  BTreeIoCost cost;
  t.insert(name, rec, &cost);
  return cost.nodes_written;
}

std::uint32_t ObjectStore::apply_remove(FsNode* dir, const std::string& name) {
  DirBTree& t = materialize(dir);
  BTreeIoCost cost;
  t.erase(name, &cost);
  return cost.nodes_written;
}

std::uint32_t ObjectStore::apply_update(FsNode* dir, const std::string& name,
                                        const DirRecord& rec) {
  DirBTree& t = materialize(dir);
  BTreeIoCost cost;
  t.insert(name, rec, &cost);  // overwrite in place
  return cost.nodes_written;
}

void ObjectStore::begin_snapshot(FsNode* dir) {
  materialize(dir).begin_cow_epoch();
}

void ObjectStore::drop(FsNode* dir) { objects_.erase(dir->ino()); }

std::uint64_t ObjectStore::total_object_nodes() const {
  std::uint64_t total = 0;
  for (const auto& [_, t] : objects_) total += t->node_count();
  return total;
}

}  // namespace mdsim

// Long-term metadata tier: a shared pool of variably sized directory
// objects (paper section 4.6). Each directory's contents — dentries with
// embedded inodes — live in one B+tree object; the store reports the
// object-node cost of fetches and incremental updates, which the caller
// converts to simulated disk time through its DiskModel.
//
// The store is logically shared by the whole MDS cluster (it models the
// OSD pool); only the directory's authoritative MDS writes to an object.
//
// Directory objects are materialized lazily from the ground-truth tree the
// first time they are touched, then kept in sync incrementally by the
// mutation hooks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "fstree/tree.h"
#include "storage/btree.h"

namespace mdsim {

class ObjectStore {
 public:
  explicit ObjectStore(std::uint32_t btree_order = 32)
      : btree_order_(btree_order) {}

  /// Cost (in object nodes) of reading the entire directory object —
  /// a readdir or a whole-directory fetch with embedded-inode prefetch.
  std::uint32_t full_fetch_nodes(FsNode* dir);

  /// Cost of locating a single dentry inside the object (root-to-leaf).
  std::uint32_t lookup_nodes(FsNode* dir, const std::string& name);

  /// Cost of fetching exactly one embedded inode *without* the rest of the
  /// directory (the file-granularity strategies): one object node.
  std::uint32_t single_inode_nodes() const { return 1; }

  /// Apply an incremental create/remove/update to the object; returns the
  /// number of nodes dirtied (to be written back).
  std::uint32_t apply_create(FsNode* dir, const std::string& name,
                             const DirRecord& rec);
  std::uint32_t apply_remove(FsNode* dir, const std::string& name);
  std::uint32_t apply_update(FsNode* dir, const std::string& name,
                             const DirRecord& rec);

  /// Begin a copy-on-write epoch on a directory's object (snapshot).
  void begin_snapshot(FsNode* dir);

  /// Drop the materialized object (e.g. after rmdir).
  void drop(FsNode* dir);

  std::size_t materialized_objects() const { return objects_.size(); }
  std::uint64_t total_object_nodes() const;

  /// Direct access for tests.
  DirBTree* object_for_testing(FsNode* dir) { return find(dir); }

 private:
  DirBTree& materialize(FsNode* dir);
  DirBTree* find(FsNode* dir);

  std::uint32_t btree_order_;
  std::unordered_map<InodeId, std::unique_ptr<DirBTree>> objects_;
};

}  // namespace mdsim

#include "strategy/lazy_hybrid.h"

#include <cassert>

namespace mdsim {

std::uint64_t LazyHybridManager::invalidate_subtree(FsNode* dir) {
  assert(dir->is_dir());
  ++dir_epoch_[dir->ino()];
  // Queue every nested item for lazy update. The queue stores inode ids so
  // entries deleted before their update simply drop out.
  std::uint64_t affected = 0;
  std::vector<FsNode*> stack{dir};
  while (!stack.empty()) {
    FsNode* n = stack.back();
    stack.pop_back();
    for (const auto& [_, c] : n->children()) {
      queue_.push_back(c->ino());
      ++affected;
      if (c->is_dir()) stack.push_back(c.get());
    }
  }
  total_invalidations_ += affected;
  return affected;
}

std::uint64_t LazyHybridManager::effective_epoch(const FsNode* node) const {
  std::uint64_t sum = 0;
  for (const FsNode* n = node->parent(); n != nullptr; n = n->parent()) {
    auto it = dir_epoch_.find(n->ino());
    if (it != dir_epoch_.end()) sum += it->second;
  }
  return sum;
}

bool LazyHybridManager::is_stale(const FsNode* node) const {
  const std::uint64_t eff = effective_epoch(node);
  if (eff == 0) return false;
  auto it = stored_epoch_.find(node->ino());
  const std::uint64_t stored = it == stored_epoch_.end() ? 0 : it->second;
  return stored < eff;
}

void LazyHybridManager::refresh(const FsNode* node) {
  stored_epoch_[node->ino()] = effective_epoch(node);
  ++total_refreshes_;
}

FsNode* LazyHybridManager::drain_one() {
  while (!queue_.empty()) {
    const InodeId ino = queue_.front();
    queue_.pop_front();
    FsNode* node = tree_.by_ino(ino);
    if (node == nullptr) continue;      // deleted before its update: free
    if (!is_stale(node)) continue;      // superseded/already refreshed: free
    refresh(node);
    return node;
  }
  return nullptr;
}

}  // namespace mdsim

// Lazy Hybrid (LH) metadata management (paper section 3.1.3; Brandt et
// al. 2003).
//
// LH hashes each file's full path name to place metadata, and avoids path
// traversal by storing a *dual-entry access control list* with every file:
// the pre-computed net effect of the whole ancestor permission chain. Two
// events invalidate that stored state for every file nested beneath a
// directory:
//   * chmod on a directory (the effective permissions change), and
//   * rename/move of a directory (the path hash — and hence the metadata
//     *location* — of every nested file changes).
// LH queues this work and applies it lazily: a stale file is fixed up when
// next accessed (paying the full path traversal that LH normally avoids,
// plus one update trip), or by a background drain that amortizes "one
// network trip per affected file".
//
// This class tracks staleness with permission epochs: every directory has
// an epoch counter bumped on chmod/rename; a file's effective epoch is the
// sum over its ancestors. A file is stale while its stored epoch is behind
// its effective epoch.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "fstree/tree.h"

namespace mdsim {

class LazyHybridManager {
 public:
  explicit LazyHybridManager(FsTree& tree) : tree_(tree) {}

  /// A directory's permissions changed or the directory moved: all files
  /// beneath it become stale and are queued for lazy update.
  /// Returns the number of affected (queued) items, i.e. the subtree size.
  std::uint64_t invalidate_subtree(FsNode* dir);

  /// Effective permission epoch of a node (sum of ancestor-dir epochs).
  std::uint64_t effective_epoch(const FsNode* node) const;

  /// True if `node`'s stored dual-entry ACL is out of date.
  bool is_stale(const FsNode* node) const;

  /// Record that `node`'s stored ACL now reflects the current hierarchy
  /// (after an on-access fixup or a background drain step).
  void refresh(const FsNode* node);

  /// Pop the next stale file from the lazy-update queue; nullptr when the
  /// queue is drained. Each call models one background update (one network
  /// trip per affected file). Fresh or deleted entries are skipped for
  /// free, mirroring LH's superseded-update elision.
  FsNode* drain_one();

  /// Outstanding queued updates (upper bound; skips not yet discounted).
  std::size_t pending() const { return queue_.size(); }

  std::uint64_t total_invalidations() const { return total_invalidations_; }
  std::uint64_t total_refreshes() const { return total_refreshes_; }

 private:
  FsTree& tree_;
  std::unordered_map<InodeId, std::uint64_t> dir_epoch_;
  std::unordered_map<InodeId, std::uint64_t> stored_epoch_;
  std::deque<InodeId> queue_;
  std::uint64_t total_invalidations_ = 0;
  std::uint64_t total_refreshes_ = 0;
};

}  // namespace mdsim

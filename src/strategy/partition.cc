#include "strategy/partition.h"

#include <cassert>

namespace mdsim {

StrategyTraits traits_for(StrategyKind kind) {
  StrategyTraits t;
  switch (kind) {
    case StrategyKind::kDynamicSubtree:
      t.whole_directory_io = true;
      t.path_traversal = true;
      t.client_computes_location = false;
      t.load_balancing = true;
      t.traffic_control = true;
      t.dynamic_dirfrag = true;
      break;
    case StrategyKind::kStaticSubtree:
      t.whole_directory_io = true;
      t.path_traversal = true;
      t.client_computes_location = false;
      t.load_balancing = false;
      t.traffic_control = false;
      t.dynamic_dirfrag = false;
      break;
    case StrategyKind::kDirHash:
      t.whole_directory_io = true;
      t.path_traversal = true;
      t.client_computes_location = true;
      t.load_balancing = false;
      t.traffic_control = false;
      t.dynamic_dirfrag = false;
      break;
    case StrategyKind::kFileHash:
      t.whole_directory_io = false;
      t.path_traversal = true;
      t.client_computes_location = true;
      t.load_balancing = false;
      t.traffic_control = false;
      t.dynamic_dirfrag = false;
      break;
    case StrategyKind::kLazyHybrid:
      t.whole_directory_io = false;
      t.path_traversal = false;  // dual-entry ACLs replace traversal
      t.client_computes_location = true;
      t.load_balancing = false;
      t.traffic_control = false;
      t.dynamic_dirfrag = false;
      break;
  }
  return t;
}

// --- SubtreePartition -----------------------------------------------------

SubtreePartition::SubtreePartition(StrategyKind kind, int num_mds)
    : kind_(kind), num_mds_(num_mds) {
  assert(kind == StrategyKind::kDynamicSubtree ||
         kind == StrategyKind::kStaticSubtree);
  assert(num_mds > 0);
}

MdsId SubtreePartition::authority_of(const FsNode* node) const {
  for (const FsNode* n = node; n != nullptr; n = n->parent()) {
    auto it = delegation_.find(n->ino());
    if (it != delegation_.end()) return it->second;
  }
  return 0;  // root default: MDS 0 owns undelegated territory
}

MdsId SubtreePartition::delegate(const FsNode* subtree_root, MdsId to) {
  assert(to >= 0 && to < num_mds_);
  const MdsId prev = authority_of(subtree_root);
  delegation_[subtree_root->ino()] = to;
  nodes_[subtree_root->ino()] = subtree_root;
  return prev;
}

void SubtreePartition::undelegate(const FsNode* subtree_root) {
  if (subtree_root->parent() == nullptr) return;
  delegation_.erase(subtree_root->ino());
  nodes_.erase(subtree_root->ino());
}

bool SubtreePartition::is_delegation_point(const FsNode* node) const {
  return delegation_.count(node->ino()) != 0;
}

MdsId SubtreePartition::delegation_at(InodeId ino) const {
  auto it = delegation_.find(ino);
  return it == delegation_.end() ? kInvalidMds : it->second;
}

std::vector<const FsNode*> SubtreePartition::delegations_of(MdsId mds) const {
  std::vector<const FsNode*> out;
  for (const auto& [ino, holder] : delegation_) {
    if (holder == mds) out.push_back(nodes_.at(ino));
  }
  return out;
}

void SubtreePartition::initialize_by_hashing_top_dirs(const FsTree& tree,
                                                      int depth) {
  // Paper section 5.1: "The initial metadata partition ... is created by
  // hashing directories near the root of the hierarchy." Descend past
  // thin fan-out levels (e.g. /home's group shards) until the frontier is
  // wide enough to spread over the cluster.
  delegation_.clear();
  nodes_.clear();
  std::vector<const FsNode*> frontier{tree.root()};
  const std::size_t want =
      std::max<std::size_t>(4, 2 * static_cast<std::size_t>(num_mds_));
  for (int d = 0; d < depth + 2; ++d) {
    if (d >= depth && frontier.size() >= want) break;
    std::vector<const FsNode*> next;
    for (const FsNode* n : frontier) {
      for (const auto& [_, c] : n->children()) {
        if (c->is_dir()) next.push_back(c.get());
      }
    }
    if (next.empty()) break;
    frontier = std::move(next);
  }
  for (const FsNode* n : frontier) {
    const MdsId mds =
        static_cast<MdsId>(n->path_hash() % static_cast<std::uint64_t>(
                                                num_mds_));
    delegation_[n->ino()] = mds;
    nodes_[n->ino()] = n;
  }
}

// --- HashPartition ----------------------------------------------------------

HashPartition::HashPartition(StrategyKind kind, int num_mds)
    : kind_(kind), num_mds_(num_mds) {
  assert(kind == StrategyKind::kDirHash || kind == StrategyKind::kFileHash ||
         kind == StrategyKind::kLazyHybrid);
  assert(num_mds > 0);
}

MdsId HashPartition::authority_of(const FsNode* node) const {
  const std::uint64_t n = static_cast<std::uint64_t>(num_mds_);
  if (kind_ == StrategyKind::kDirHash) {
    // A dentry (and its embedded inode) lives with its containing
    // directory; the root maps by its own hash.
    const FsNode* dir = node->parent() != nullptr ? node->parent() : node;
    return static_cast<MdsId>(dir->path_hash() % n);
  }
  // File-granularity: hash of the item's own full path.
  return static_cast<MdsId>(node->path_hash() % n);
}

std::unique_ptr<Partitioner> make_partitioner(StrategyKind kind, int num_mds,
                                              const FsTree& tree) {
  switch (kind) {
    case StrategyKind::kDynamicSubtree:
    case StrategyKind::kStaticSubtree: {
      auto p = std::make_unique<SubtreePartition>(kind, num_mds);
      p->initialize_by_hashing_top_dirs(tree);
      return p;
    }
    case StrategyKind::kDirHash:
    case StrategyKind::kFileHash:
    case StrategyKind::kLazyHybrid:
      return std::make_unique<HashPartition>(kind, num_mds);
  }
  return nullptr;
}

}  // namespace mdsim

#include "strategy/partition.h"

#include <cassert>

namespace mdsim {

StrategyTraits traits_for(StrategyKind kind) {
  StrategyTraits t;
  switch (kind) {
    case StrategyKind::kDynamicSubtree:
      t.whole_directory_io = true;
      t.path_traversal = true;
      t.client_computes_location = false;
      t.load_balancing = true;
      t.traffic_control = true;
      t.dynamic_dirfrag = true;
      break;
    case StrategyKind::kStaticSubtree:
      t.whole_directory_io = true;
      t.path_traversal = true;
      t.client_computes_location = false;
      t.load_balancing = false;
      t.traffic_control = false;
      t.dynamic_dirfrag = false;
      break;
    case StrategyKind::kDirHash:
      t.whole_directory_io = true;
      t.path_traversal = true;
      t.client_computes_location = true;
      t.load_balancing = false;
      t.traffic_control = false;
      t.dynamic_dirfrag = false;
      break;
    case StrategyKind::kFileHash:
      t.whole_directory_io = false;
      t.path_traversal = true;
      t.client_computes_location = true;
      t.load_balancing = false;
      t.traffic_control = false;
      t.dynamic_dirfrag = false;
      break;
    case StrategyKind::kLazyHybrid:
      t.whole_directory_io = false;
      t.path_traversal = false;  // dual-entry ACLs replace traversal
      t.client_computes_location = true;
      t.load_balancing = false;
      t.traffic_control = false;
      t.dynamic_dirfrag = false;
      break;
  }
  return t;
}

// --- SubtreePartition -----------------------------------------------------

SubtreePartition::SubtreePartition(StrategyKind kind, int num_mds)
    : kind_(kind), num_mds_(num_mds) {
  assert(kind == StrategyKind::kDynamicSubtree ||
         kind == StrategyKind::kStaticSubtree);
  assert(num_mds > 0);
}

MdsId SubtreePartition::authority_of(const FsNode* node) const {
  for (const FsNode* n = node; n != nullptr; n = n->parent()) {
    const MdsId holder = current(n->ino());
    if (holder >= 0) return holder;
    // kNoRecord or tombstone (folded back into the enclosing
    // delegation): keep walking.
  }
  return 0;  // root default: MDS 0 owns undelegated territory
}

MdsId SubtreePartition::authority_of_at(const FsNode* node,
                                        std::uint64_t epoch) const {
  for (const FsNode* n = node; n != nullptr; n = n->parent()) {
    auto it = delegation_.find(n->ino());
    if (it != delegation_.end()) {
      const auto& recs = it->second;
      for (auto r = recs.rbegin(); r != recs.rend(); ++r) {
        if (r->epoch > epoch) continue;  // newer than the frozen view
        if (r->mds != kInvalidMds) return r->mds;
        break;  // visible tombstone: keep walking up
      }
    }
  }
  return 0;
}

MdsId SubtreePartition::delegate(const FsNode* subtree_root, MdsId to) {
  assert(to >= 0 && to < num_mds_);
  const MdsId prev = authority_of(subtree_root);
  auto& recs = delegation_[subtree_root->ino()];
  if (!recs.empty() && recs.back().epoch == epoch_) {
    recs.back().mds = to;
  } else {
    recs.push_back(Record{epoch_, to});
  }
  set_current(subtree_root->ino(), to);
  nodes_[subtree_root->ino()] = subtree_root;
  return prev;
}

void SubtreePartition::undelegate(const FsNode* subtree_root) {
  if (subtree_root->parent() == nullptr) return;
  auto it = delegation_.find(subtree_root->ino());
  if (it == delegation_.end()) return;
  auto& recs = it->second;
  if (recs.back().epoch == epoch_) recs.pop_back();
  if (recs.empty()) {
    delegation_.erase(it);
    nodes_.erase(subtree_root->ino());
    set_current(subtree_root->ino(), kNoRecord);
    return;
  }
  if (recs.back().mds != kInvalidMds) {
    recs.push_back(Record{epoch_, kInvalidMds});
  }
  set_current(subtree_root->ino(), recs.back().mds);
}

bool SubtreePartition::is_delegation_point(const FsNode* node) const {
  // current_ mirrors back().mds exactly (kNoRecord when absent), so this
  // is one load instead of a hash probe.
  return current(node->ino()) >= 0;
}

MdsId SubtreePartition::delegation_at(InodeId ino) const {
  const MdsId c = current(ino);
  return c >= 0 ? c : kInvalidMds;
}

std::vector<const FsNode*> SubtreePartition::delegations_of(MdsId mds) const {
  std::vector<const FsNode*> out;
  for (const auto& [ino, recs] : delegation_) {
    if (recs.back().mds == mds) out.push_back(nodes_.at(ino));
  }
  return out;
}

std::size_t SubtreePartition::delegation_count() const {
  std::size_t n = 0;
  for (const auto& [ino, recs] : delegation_) {
    if (recs.back().mds != kInvalidMds) ++n;
  }
  return n;
}

std::vector<const FsNode*> SubtreePartition::known_roots() const {
  std::vector<const FsNode*> out;
  out.reserve(nodes_.size());
  for (const auto& [ino, node] : nodes_) out.push_back(node);
  return out;
}

void SubtreePartition::initialize_by_hashing_top_dirs(const FsTree& tree,
                                                      int depth) {
  // Paper section 5.1: "The initial metadata partition ... is created by
  // hashing directories near the root of the hierarchy." Descend past
  // thin fan-out levels (e.g. /home's group shards) until the frontier is
  // wide enough to spread over the cluster.
  delegation_.clear();
  nodes_.clear();
  current_.clear();
  std::vector<const FsNode*> frontier{tree.root()};
  const std::size_t want =
      std::max<std::size_t>(4, 2 * static_cast<std::size_t>(num_mds_));
  for (int d = 0; d < depth + 2; ++d) {
    if (d >= depth && frontier.size() >= want) break;
    std::vector<const FsNode*> next;
    for (const FsNode* n : frontier) {
      for (const auto& [_, c] : n->children()) {
        if (c->is_dir()) next.push_back(c.get());
      }
    }
    if (next.empty()) break;
    frontier = std::move(next);
  }
  for (const FsNode* n : frontier) {
    const MdsId mds =
        static_cast<MdsId>(n->path_hash() % static_cast<std::uint64_t>(
                                                num_mds_));
    delegation_[n->ino()] = {Record{epoch_, mds}};
    set_current(n->ino(), mds);
    nodes_[n->ino()] = n;
  }
}

// --- HashPartition ----------------------------------------------------------

HashPartition::HashPartition(StrategyKind kind, int num_mds)
    : kind_(kind), num_mds_(num_mds) {
  assert(kind == StrategyKind::kDirHash || kind == StrategyKind::kFileHash ||
         kind == StrategyKind::kLazyHybrid);
  assert(num_mds > 0);
}

MdsId HashPartition::authority_of(const FsNode* node) const {
  const std::uint64_t n = static_cast<std::uint64_t>(num_mds_);
  if (kind_ == StrategyKind::kDirHash) {
    // A dentry (and its embedded inode) lives with its containing
    // directory; the root maps by its own hash.
    const FsNode* dir = node->parent() != nullptr ? node->parent() : node;
    return static_cast<MdsId>(dir->path_hash() % n);
  }
  // File-granularity: hash of the item's own full path.
  return static_cast<MdsId>(node->path_hash() % n);
}

std::unique_ptr<Partitioner> make_partitioner(StrategyKind kind, int num_mds,
                                              const FsTree& tree) {
  switch (kind) {
    case StrategyKind::kDynamicSubtree:
    case StrategyKind::kStaticSubtree: {
      auto p = std::make_unique<SubtreePartition>(kind, num_mds);
      p->initialize_by_hashing_top_dirs(tree);
      return p;
    }
    case StrategyKind::kDirHash:
    case StrategyKind::kFileHash:
    case StrategyKind::kLazyHybrid:
      return std::make_unique<HashPartition>(kind, num_mds);
  }
  return nullptr;
}

}  // namespace mdsim

// Metadata partitioning strategies (paper sections 3.1 and 4.1).
//
// A Partitioner answers the single question every MDS asks on every
// request: which node is *authoritative* for this item? The five
// strategies the paper evaluates differ in how that answer is derived and
// in a set of behavioural traits (directory-granularity storage, path
// traversal, client location knowledge, adaptivity) captured by
// StrategyTraits.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "fstree/tree.h"

namespace mdsim {

enum class StrategyKind : std::uint8_t {
  kDynamicSubtree,
  kStaticSubtree,
  kDirHash,
  kFileHash,
  kLazyHybrid,
};

constexpr const char* strategy_name(StrategyKind k) {
  switch (k) {
    case StrategyKind::kDynamicSubtree: return "DynamicSubtree";
    case StrategyKind::kStaticSubtree: return "StaticSubtree";
    case StrategyKind::kDirHash: return "DirHash";
    case StrategyKind::kFileHash: return "FileHash";
    case StrategyKind::kLazyHybrid: return "LazyHybrid";
  }
  return "?";
}

/// Behavioural differences between strategies (paper sections 3 and 5.1:
/// "the hashing and static subtree servers implement subsets of this
/// functionality to accommodate the different partitioning mechanisms").
struct StrategyTraits {
  /// Directory contents (with embedded inodes) are stored and fetched as
  /// one object, enabling whole-directory prefetch (subtree + dirhash).
  bool whole_directory_io = true;
  /// Serving a request requires traversing and caching prefix (ancestor)
  /// inodes (everything except Lazy Hybrid).
  bool path_traversal = true;
  /// Clients can compute metadata locations themselves (hash strategies);
  /// otherwise they learn locations from replies (subtree strategies,
  /// enabling traffic control through client ignorance).
  bool client_computes_location = false;
  /// The partition adapts at runtime (dynamic subtree only).
  bool load_balancing = false;
  /// Popular metadata is replicated and clients redirected (dynamic only).
  bool traffic_control = false;
  /// Directory-granularity delegation may be overridden per-dentry by
  /// dynamic directory fragmentation (dynamic subtree only).
  bool dynamic_dirfrag = false;
};

StrategyTraits traits_for(StrategyKind kind);

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  /// Authoritative MDS for this node's metadata (its dentry + embedded
  /// inode at the primary link).
  virtual MdsId authority_of(const FsNode* node) const = 0;
  /// Incremental form for root-down path walks: authority of `node` given
  /// its parent's already-computed authority. Strategies whose authority
  /// derives from the parent chain (subtree partitions) answer with one
  /// table load instead of re-walking the chain; the default recomputes.
  virtual MdsId authority_step(const FsNode* node, MdsId parent_auth) const {
    (void)parent_auth;
    return authority_of(node);
  }
  virtual StrategyKind kind() const = 0;
};

/// Subtree partition: an explicit map of delegation points. Authority of a
/// node = delegation point nearest to it on its parent chain. The root is
/// always a delegation point. (Paper section 4.1: "delegations may be
/// nested".)
///
/// The map carries a monotonically increasing *epoch* (Ceph MDSMap-style).
/// Normal migrations record their delegations at the current epoch; a
/// failure-driven reconfiguration (takeover, heal) bumps the epoch first,
/// so each delegation point keeps a short history of (epoch, holder)
/// records. A node whose view is frozen at an older epoch (a fenced
/// minority-side MDS) resolves authority *as of its view* via
/// authority_of_at(), which is what makes split-brain observable — and
/// therefore testable — in the simulator even though the map object itself
/// is shared. In healthy runs the epoch stays at 1 and every record vector
/// has length 1.
class SubtreePartition final : public Partitioner {
 public:
  SubtreePartition(StrategyKind kind, int num_mds);

  MdsId authority_of(const FsNode* node) const override;
  MdsId authority_step(const FsNode* node, MdsId parent_auth) const override {
    const MdsId holder = current(node->ino());
    return holder >= 0 ? holder : parent_auth;
  }
  StrategyKind kind() const override { return kind_; }

  /// Authority as seen by a node whose map view is frozen at `epoch`:
  /// records newer than the view are invisible.
  MdsId authority_of_at(const FsNode* node, std::uint64_t epoch) const;

  /// Current map epoch (starts at 1) and the failure-driven bump.
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t bump_epoch() { return ++epoch_; }

  /// Install/replace a delegation point (recorded at the current epoch).
  /// Returns the previous holder of the subtree (its effective authority
  /// before this call).
  MdsId delegate(const FsNode* subtree_root, MdsId to);
  /// Remove a delegation point, folding the subtree back into the
  /// enclosing delegation. No-op on the root.
  void undelegate(const FsNode* subtree_root);
  bool is_delegation_point(const FsNode* node) const;
  MdsId delegation_at(InodeId ino) const;

  /// All delegation points currently assigned to `mds`, with their nodes.
  std::vector<const FsNode*> delegations_of(MdsId mds) const;
  std::size_t delegation_count() const;

  /// Every root that has ever been a delegation point (any epoch) — the
  /// candidate set for single-authority invariant sweeps.
  std::vector<const FsNode*> known_roots() const;

  /// Build the paper's initial partition: "hashing directories near the
  /// root of the hierarchy" — every directory at `depth` (children of the
  /// root's children by default) is delegated by hash.
  void initialize_by_hashing_top_dirs(const FsTree& tree, int depth = 2);

  int num_mds() const { return num_mds_; }

 private:
  /// One holder assignment; mds == kInvalidMds is a tombstone (the point
  /// was undelegated at that epoch).
  struct Record {
    std::uint64_t epoch = 1;
    MdsId mds = kInvalidMds;
  };

  /// Sentinel in `current_` for "no delegation record at all" (distinct
  /// from kInvalidMds, which is a visible tombstone).
  static constexpr MdsId kNoRecord = -2;

  MdsId current(InodeId ino) const {
    return ino < current_.size() ? current_[ino] : kNoRecord;
  }
  void set_current(InodeId ino, MdsId mds) {
    if (ino >= current_.size()) current_.resize(ino + 1, kNoRecord);
    current_[ino] = mds;
  }

  StrategyKind kind_;
  int num_mds_;
  std::uint64_t epoch_ = 1;
  /// Records per delegation point, epoch-ascending; the back() is current.
  std::unordered_map<InodeId, std::vector<Record>> delegation_;
  std::unordered_map<InodeId, const FsNode*> nodes_;
  /// Dense mirror of each point's back() record, indexed by ino: the
  /// authority_of parent-chain walk runs ~1 M times per sharded run and
  /// must not hash-probe per ancestor. kNoRecord where delegation_ has no
  /// entry; kInvalidMds mirrors a tombstoned back() record.
  std::vector<MdsId> current_;
};

/// Hash partition: authority derived from a path hash. In kDirHash mode a
/// dentry lives with its containing directory (directory contents grouped
/// on one node); in kFileHash/kLazyHybrid mode every file hashes
/// independently by its own full path.
class HashPartition final : public Partitioner {
 public:
  HashPartition(StrategyKind kind, int num_mds);

  MdsId authority_of(const FsNode* node) const override;
  StrategyKind kind() const override { return kind_; }

  int num_mds() const { return num_mds_; }

 private:
  StrategyKind kind_;
  int num_mds_;
};

std::unique_ptr<Partitioner> make_partitioner(StrategyKind kind, int num_mds,
                                              const FsTree& tree);

}  // namespace mdsim

#include "workload/flash_crowd.h"

#include <cassert>

namespace mdsim {

FlashCrowdWorkload::FlashCrowdWorkload(FsTree& tree, FsNode* target,
                                       FlashCrowdParams params)
    : tree_(tree), target_(target), params_(params) {
  assert(target_ != nullptr);
}

SimTime FlashCrowdWorkload::next(ClientId c, SimTime now, Rng& rng,
                                 Operation* out) {
  (void)c;
  const SimTime end = params_.start + params_.duration;
  if (params_.base_think == 0 || background_.empty()) {
    // Legacy shape: idle until the crowd, done after it. Draw order must
    // stay exactly as it always was — figure 7 runs are byte-compared.
    if (!tree_.alive(target_)) return kNever;
    if (now >= end) return kNever;

    out->op = OpType::kOpen;
    out->target = target_;
    out->secondary = nullptr;
    out->name.clear();

    if (now < params_.start) {
      // Everyone fires (almost) at once when the crowd begins.
      return params_.start - now + rng.uniform(params_.skew);
    }
    return static_cast<SimTime>(
        rng.exponential(static_cast<double>(params_.think)));
  }

  out->secondary = nullptr;
  out->name.clear();
  if (now >= params_.start && now < end && tree_.alive(target_)) {
    out->op = OpType::kOpen;
    out->target = target_;
    return static_cast<SimTime>(
        rng.exponential(static_cast<double>(params_.think)));
  }

  const auto delay = static_cast<SimTime>(
      rng.exponential(static_cast<double>(params_.base_think)));
  if (now < params_.start && now + delay >= params_.start &&
      tree_.alive(target_)) {
    // The background cadence would overshoot the crowd start: join the
    // crowd instead, with the usual per-client skew.
    out->op = OpType::kOpen;
    out->target = target_;
    return params_.start - now + rng.uniform(params_.skew);
  }

  FsNode* f = background_[rng.uniform(background_.size())];
  if (!tree_.alive(f)) f = tree_.root();
  out->op = (params_.base_write_fraction > 0.0 &&
             rng.uniform_double() < params_.base_write_fraction)
                ? OpType::kSetattr
                : OpType::kStat;
  out->target = f;
  return delay;
}

}  // namespace mdsim

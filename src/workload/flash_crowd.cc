#include "workload/flash_crowd.h"

#include <cassert>

namespace mdsim {

FlashCrowdWorkload::FlashCrowdWorkload(FsTree& tree, FsNode* target,
                                       FlashCrowdParams params)
    : tree_(tree), target_(target), params_(params) {
  assert(target_ != nullptr);
}

SimTime FlashCrowdWorkload::next(ClientId c, SimTime now, Rng& rng,
                                 Operation* out) {
  (void)c;
  if (!tree_.alive(target_)) return kNever;
  if (now >= params_.start + params_.duration) return kNever;

  out->op = OpType::kOpen;
  out->target = target_;
  out->secondary = nullptr;
  out->name.clear();

  if (now < params_.start) {
    // Everyone fires (almost) at once when the crowd begins.
    return params_.start - now + rng.uniform(params_.skew);
  }
  return static_cast<SimTime>(
      rng.exponential(static_cast<double>(params_.think)));
}

}  // namespace mdsim

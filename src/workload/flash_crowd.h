// Flash-crowd workload (paper section 5.4 / figure 7): a large number of
// clients "simultaneously request the same file, a scenario typical of
// many scientific computing workloads". Clients are idle until the crowd
// begins, then re-request the target in a tight closed loop for the burst
// window, then go quiet.
//
// An optional steady background load (base_think > 0 plus a background
// file set) turns the crowd into a *spike on top of a baseline*: clients
// stat random background files before and after the burst window instead
// of idling. That persistent post-spike load is what distinguishes a
// transient hiccup from a metastable collapse — with the default
// base_think = 0 the workload is bit-identical to the legacy shape.
#pragma once

#include <vector>

#include "workload/workload.h"

namespace mdsim {

struct FlashCrowdParams {
  SimTime start = 8 * kSecond;
  SimTime duration = from_millis(250);
  /// Think time between a client's successive requests during the crowd.
  SimTime think = from_millis(2);
  /// Small per-client skew of the first request.
  SimTime skew = from_millis(5);
  /// Mean think time of the background load outside the crowd window.
  /// 0 (default) keeps the legacy shape: idle before, finished after.
  SimTime base_think = 0;
  /// Fraction of background ops that are setattrs (the write admission
  /// class) instead of stats.
  double base_write_fraction = 0.0;
};

class FlashCrowdWorkload final : public Workload {
 public:
  FlashCrowdWorkload(FsTree& tree, FsNode* target,
                     FlashCrowdParams params = {});

  /// Files the background load draws from (only consulted when
  /// base_think > 0). Must be set before clients start.
  void set_background(std::vector<FsNode*> files) {
    background_ = std::move(files);
  }

  SimTime next(ClientId c, SimTime now, Rng& rng, Operation* out) override;
  std::string name() const override { return "flash_crowd"; }

  FsNode* target() const { return target_; }

 private:
  FsTree& tree_;
  FsNode* target_;
  FlashCrowdParams params_;
  std::vector<FsNode*> background_;
};

}  // namespace mdsim

// Flash-crowd workload (paper section 5.4 / figure 7): a large number of
// clients "simultaneously request the same file, a scenario typical of
// many scientific computing workloads". Clients are idle until the crowd
// begins, then re-request the target in a tight closed loop for the burst
// window, then go quiet.
#pragma once

#include "workload/workload.h"

namespace mdsim {

struct FlashCrowdParams {
  SimTime start = 8 * kSecond;
  SimTime duration = from_millis(250);
  /// Think time between a client's successive requests during the crowd.
  SimTime think = from_millis(2);
  /// Small per-client skew of the first request.
  SimTime skew = from_millis(5);
};

class FlashCrowdWorkload final : public Workload {
 public:
  FlashCrowdWorkload(FsTree& tree, FsNode* target,
                     FlashCrowdParams params = {});

  SimTime next(ClientId c, SimTime now, Rng& rng, Operation* out) override;
  std::string name() const override { return "flash_crowd"; }

  FsNode* target() const { return target_; }

 private:
  FsTree& tree_;
  FsNode* target_;
  FlashCrowdParams params_;
};

}  // namespace mdsim

#include "workload/general.h"

#include <cassert>

namespace mdsim {

namespace {
/// Shared scratch for the candidate-collection passes below (drift,
/// rmdir, rename). These run on every generated op; a per-call vector
/// would be one heap round-trip each. Thread-local: each shard worker
/// drives its own workload instance.
std::vector<FsNode*>& scratch_nodes() {
  static thread_local std::vector<FsNode*> v;
  v.clear();
  return v;
}
}  // namespace

GeneralWorkload::GeneralWorkload(FsTree& tree, std::vector<FsNode*> home_roots,
                                 OpMix mix, GeneralWorkloadParams params)
    : tree_(tree),
      homes_(std::move(home_roots)),
      mix_(std::move(mix)),
      params_(params) {
  assert(!homes_.empty());
  home_zipf_ = std::make_unique<ZipfSampler>(homes_.size(),
                                             params_.home_zipf_skew);
}

GeneralWorkload::ClientState& GeneralWorkload::state(ClientId c) {
  if (static_cast<std::size_t>(c) >= clients_.size()) {
    clients_.resize(static_cast<std::size_t>(c) + 1);
  }
  return clients_[static_cast<std::size_t>(c)];
}

const FsNode* GeneralWorkload::region_of(ClientId c) const {
  if (static_cast<std::size_t>(c) >= clients_.size()) return nullptr;
  return clients_[static_cast<std::size_t>(c)].region;
}

FsNode* GeneralWorkload::random_home(ClientId c, Rng& rng) {
  // Mostly the client's own home (permissions always allow it); otherwise
  // a Zipf-popular home — a few homes are cluster-wide hot.
  if (rng.uniform_double() < params_.p_own_home) {
    ClientState& s = state(c);
    if (s.home_override != nullptr && tree_.alive(s.home_override)) {
      return s.home_override;
    }
    return homes_[static_cast<std::size_t>(c) % homes_.size()];
  }
  return homes_[(*home_zipf_)(rng)];
}

FsNode* GeneralWorkload::random_dir_in_region(ClientState& s, Rng& rng) {
  (void)rng;
  return s.region;
}

FsNode* GeneralWorkload::random_file_in(FsNode* dir, Rng& rng) {
  if (dir->children().empty()) return nullptr;
  // Reservoir-pick a file child; directories are skipped.
  FsNode* pick = nullptr;
  std::uint64_t seen = 0;
  for (FsNode* c : dir->children_list()) {
    if (c->is_dir()) continue;
    ++seen;
    if (rng.uniform(seen) == 0) pick = c;
  }
  return pick;
}

void GeneralWorkload::maybe_drift(ClientId c, ClientState& s, Rng& rng) {
  const double r = rng.uniform_double();
  const GeneralWorkloadParams& P = params_;
  if (r < P.p_stay) return;
  if (r < P.p_stay + P.p_move_child) {
    // Descend into a random subdirectory.
    std::vector<FsNode*>& dirs = scratch_nodes();
    for (FsNode* c : s.region->children_list()) {
      if (c->is_dir()) dirs.push_back(c);
    }
    if (!dirs.empty()) s.region = dirs[rng.uniform(dirs.size())];
    return;
  }
  if (r < P.p_stay + P.p_move_child + P.p_move_parent) {
    if (s.region->parent() != nullptr && s.region->depth() > 1) {
      s.region = s.region->parent();
    }
    return;
  }
  if (r < P.p_stay + P.p_move_child + P.p_move_parent + P.p_move_sibling) {
    FsNode* parent = s.region->parent();
    if (parent != nullptr) {
      std::vector<FsNode*>& sibs = scratch_nodes();
      for (FsNode* c : parent->children_list()) {
        if (c->is_dir() && c != s.region) sibs.push_back(c);
      }
      if (!sibs.empty()) s.region = sibs[rng.uniform(sibs.size())];
    }
    return;
  }
  // Jump: fresh home directory (possibly someone else's — Zipf-popular).
  s.region = random_home(c, rng);
}

void GeneralWorkload::clamp_to_override(ClientState& s, Rng& rng) {
  // Shifted clients never wander out of their destination subtree: the
  // figure-5 scenario keeps the migrated load *on* the hot node's
  // territory until the balancer reacts. Re-entry lands on a random
  // subdirectory so the new activity forms a tree, not one flat dir.
  if (s.home_override == nullptr) return;
  if (!tree_.alive(s.home_override)) {
    s.home_override = nullptr;
    return;
  }
  if (!FsTree::is_ancestor_of(s.home_override, s.region)) {
    FsNode* dest = s.home_override;
    std::vector<FsNode*>& subdirs = scratch_nodes();
    for (FsNode* c : dest->children_list()) {
      if (c->is_dir()) subdirs.push_back(c);
    }
    s.region = subdirs.empty() ? dest : subdirs[rng.uniform(subdirs.size())];
  }
}

void GeneralWorkload::maybe_shift(ClientId c, ClientState& s, SimTime now,
                                  Rng& rng) {
  if (!shift_.has_value() || s.shifted) return;
  if (now < shift_->at) return;
  // Deterministic pseudo-random membership with the right density.
  const std::uint64_t h =
      (static_cast<std::uint64_t>(c) + 1) * 0x9e3779b97f4a7c15ULL;
  const bool member =
      static_cast<double>(h >> 40) / static_cast<double>(1ULL << 24) <
      shift_->fraction;
  s.shifted = true;  // decision made either way (no re-checks)
  if (!member || shift_->destinations.empty()) return;
  s.region =
      shift_->destinations[rng.uniform(shift_->destinations.size())];
  s.home_override = s.region;  // shifted clients stay in the new region
}

SimTime GeneralWorkload::next(ClientId c, SimTime now, Rng& rng,
                              Operation* out) {
  ClientState& s = state(c);
  if (!s.started) {
    s.started = true;
    s.region = random_home(c, rng);
    // Clients with out-of-range homes still work (uid mismatch only
    // matters for private dirs).
  }
  // Region may have been deleted under us.
  if (s.region == nullptr || !tree_.alive(s.region)) {
    s.region = random_home(c, rng);
  }
  maybe_shift(c, s, now, rng);

  // Pending sequences first: close-after-open, stats-after-readdir.
  if (s.opened != nullptr) {
    FsNode* f = s.opened;
    s.opened = nullptr;
    if (tree_.alive(f)) {
      out->op = OpType::kClose;
      out->target = f;
      out->secondary = nullptr;
      out->name.clear();
      return static_cast<SimTime>(
          rng.exponential(static_cast<double>(params_.mean_seq_think)));
    }
  }
  while (s.stat_head < s.stat_queue.size()) {
    FsNode* f = s.stat_queue[s.stat_head++];
    if (s.stat_head >= s.stat_queue.size()) {
      s.stat_queue.clear();
      s.stat_head = 0;
    }
    if (!tree_.alive(f)) continue;
    out->op = OpType::kStat;
    out->target = f;
    out->secondary = nullptr;
    out->name.clear();
    return static_cast<SimTime>(
        rng.exponential(static_cast<double>(params_.mean_seq_think)));
  }

  maybe_drift(c, s, rng);
  clamp_to_override(s, rng);
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (generate(c, s, rng, out)) {
      SimTime think = static_cast<SimTime>(
          rng.exponential(static_cast<double>(params_.mean_think)));
      if (!s.started) think += rng.uniform(params_.start_jitter);
      return think;
    }
  }
  // Could not produce an op here (degenerate region): hop and retry later.
  s.region = random_home(c, rng);
  return params_.mean_think;
}

bool GeneralWorkload::generate(ClientId c, ClientState& s, Rng& rng,
                               Operation* out) {
  // Clients that shifted into a destination subtree use the shift mix
  // (create-heavy by default); everyone else the base mix.
  bool in_shift_region = false;
  if (shift_.has_value() && s.shifted && shift_->mix.has_value()) {
    for (FsNode* d : shift_->destinations) {
      if (FsTree::is_ancestor_of(d, s.region)) {
        in_shift_region = true;
        break;
      }
    }
  }
  const OpMix& use = in_shift_region ? *shift_->mix : mix_;

  const OpType op = use.sample(rng);
  out->op = op;
  out->secondary = nullptr;
  out->name.clear();

  FsNode* region = s.region;
  switch (op) {
    case OpType::kStat:
    case OpType::kSetattr:
    case OpType::kChmod: {
      FsNode* f = random_file_in(region, rng);
      if (f == nullptr) {
        // Fall back to stat'ing the directory itself.
        out->op = OpType::kStat;
        out->target = region;
        return true;
      }
      out->target = f;
      return true;
    }
    case OpType::kOpen: {
      FsNode* f = random_file_in(region, rng);
      if (f == nullptr) return false;
      out->target = f;
      s.opened = f;  // close follows
      return true;
    }
    case OpType::kClose: {
      // Un-paired close: treat as open (the pair is modelled via kOpen).
      FsNode* f = random_file_in(region, rng);
      if (f == nullptr) return false;
      out->op = OpType::kStat;
      out->target = f;
      return true;
    }
    case OpType::kReaddir: {
      out->target = region;
      // Queue the characteristic stat burst over directory entries.
      int quota = params_.readdir_stat_burst;
      for (FsNode* child : region->children_list()) {
        if (quota-- <= 0) break;
        s.stat_queue.push_back(child);
      }
      return true;
    }
    case OpType::kCreate:
    case OpType::kMkdir: {
      out->target = region;
      out->name = (op == OpType::kMkdir ? "d" : "f") + std::to_string(c) +
                  "_" + std::to_string(s.name_counter++);
      return true;
    }
    case OpType::kUnlink: {
      FsNode* f = random_file_in(region, rng);
      if (f == nullptr) return false;
      out->target = f;
      return true;
    }
    case OpType::kRmdir: {
      std::vector<FsNode*>& empties = scratch_nodes();
      for (FsNode* child : region->children_list()) {
        if (child->is_dir() && child->child_count() == 0) {
          empties.push_back(child);
        }
      }
      if (empties.empty()) return false;
      out->target = empties[rng.uniform(empties.size())];
      return true;
    }
    case OpType::kRename: {
      FsNode* f = random_file_in(region, rng);
      if (f == nullptr) return false;
      // Mostly rename within the directory; occasionally move a whole
      // subdirectory (the expensive case for hashed strategies).
      if (rng.bernoulli(0.15)) {
        std::vector<FsNode*>& dirs = scratch_nodes();
        for (FsNode* child : region->children_list()) {
          if (child->is_dir()) dirs.push_back(child);
        }
        if (dirs.size() >= 2) {
          out->target = dirs[0];
          out->secondary = dirs[1];
          out->name = "mv" + std::to_string(s.name_counter++);
          return true;
        }
      }
      out->target = f;
      out->secondary = region;
      out->name = "r" + std::to_string(c) + "_" +
                  std::to_string(s.name_counter++);
      return true;
    }
    case OpType::kLink: {
      FsNode* f = random_file_in(region, rng);
      if (f == nullptr) return false;
      out->op = OpType::kLink;
      out->target = region;      // dir receiving the new dentry
      out->secondary = f;        // linked file
      out->name = "ln" + std::to_string(s.name_counter++);
      return true;
    }
  }
  return false;
}

}  // namespace mdsim

// General-purpose workload (paper section 5.2).
//
// Clients exhibit directory locality (Floyd/Ellis): each client works
// inside a *region* (a directory) that drifts slowly — mostly to
// parent/child/sibling directories, occasionally jumping elsewhere.
// Operation types follow the configured OpMix, with the two canonical
// sequences modelled explicitly: an open is followed by a close of the
// same file, and a readdir is followed by a burst of stats on entries of
// that directory.
//
// The same class implements the workload-shift scenario of figures 5/6:
// an optional Shift moves a fraction of the clients into a designated set
// of directories at a given time, switching them to a (typically
// create-heavy) second mix.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "workload/op_mix.h"
#include "workload/workload.h"

namespace mdsim {

struct GeneralWorkloadParams {
  /// Mean think time between operations.
  SimTime mean_think = from_millis(30);
  /// Think time within a sequence (close-after-open, stats-after-readdir).
  SimTime mean_seq_think = from_millis(4);
  /// Per-step region transition probabilities.
  double p_stay = 0.78;
  double p_move_child = 0.10;
  double p_move_parent = 0.05;
  double p_move_sibling = 0.04;
  /// Remaining probability: jump to another home directory.
  /// When jumping, probability the client returns to its *own* home
  /// (whose permissions it always satisfies); otherwise a Zipf-popular
  /// home is chosen (a few homes are cluster-wide hot).
  double p_own_home = 0.7;
  /// After a readdir, stat up to this many entries.
  int readdir_stat_burst = 6;
  /// Zipf skew for cross-client popularity of home directories.
  double home_zipf_skew = 0.8;
  /// Start-up jitter so clients do not tick in lockstep.
  SimTime start_jitter = from_millis(200);
};

struct WorkloadShift {
  SimTime at = 0;
  /// Fraction of clients that migrate.
  double fraction = 0.5;
  /// Directories the migrating clients move into.
  std::vector<FsNode*> destinations;
  /// Mix used by migrated clients (create-heavy by default).
  std::optional<OpMix> mix;
};

class GeneralWorkload final : public Workload {
 public:
  GeneralWorkload(FsTree& tree, std::vector<FsNode*> home_roots,
                  OpMix mix = OpMix::general_purpose(),
                  GeneralWorkloadParams params = {});

  /// Install a workload shift (figures 5/6). Must be set before clients
  /// start.
  void set_shift(WorkloadShift shift) { shift_ = std::move(shift); }

  SimTime next(ClientId c, SimTime now, Rng& rng, Operation* out) override;
  std::string name() const override { return "general"; }

  /// Test hook: the region a client currently works in.
  const FsNode* region_of(ClientId c) const;

 private:
  struct ClientState {
    FsNode* region = nullptr;
    /// After a workload shift, jumps return here instead of the client's
    /// original home (shifted clients *stay* in the new region, fig 5).
    FsNode* home_override = nullptr;
    FsNode* opened = nullptr;  // pending close target
    /// Pending readdir->stat burst: FIFO as (vector, head index) so a
    /// default-constructed state allocates nothing (a deque allocates its
    /// map eagerly — at 10⁶ clients that is 10⁶ startup allocations) and
    /// the buffer's capacity is reused across bursts.
    std::vector<FsNode*> stat_queue;
    std::size_t stat_head = 0;
    bool started = false;
    bool shifted = false;
    std::uint64_t name_counter = 0;
  };

  ClientState& state(ClientId c);
  void clamp_to_override(ClientState& s, Rng& rng);
  void maybe_drift(ClientId c, ClientState& s, Rng& rng);
  void maybe_shift(ClientId c, ClientState& s, SimTime now, Rng& rng);
  FsNode* random_home(ClientId c, Rng& rng);
  FsNode* random_dir_in_region(ClientState& s, Rng& rng);
  FsNode* random_file_in(FsNode* dir, Rng& rng);
  bool generate(ClientId c, ClientState& s, Rng& rng, Operation* out);

  FsTree& tree_;
  std::vector<FsNode*> homes_;
  OpMix mix_;
  GeneralWorkloadParams params_;
  std::optional<WorkloadShift> shift_;
  std::unique_ptr<ZipfSampler> home_zipf_;
  std::vector<ClientState> clients_;
};

}  // namespace mdsim

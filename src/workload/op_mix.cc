#include "workload/op_mix.h"

#include <cassert>

namespace mdsim {

OpMix::OpMix(std::vector<double> weights)
    : weights_(std::move(weights)), table_(weights_) {
  assert(weights_.size() == static_cast<std::size_t>(kNumOpTypes));
}

OpType OpMix::sample(Rng& rng) const {
  return static_cast<OpType>(table_(rng));
}

namespace {
std::vector<double> make_weights(double stat, double open, double close,
                                 double readdir, double create, double mkdir,
                                 double unlink, double rmdir, double rename,
                                 double chmod, double setattr, double link) {
  // Order must match the OpType enum.
  return {stat,  open,  close,  readdir, create, mkdir,
          unlink, rmdir, rename, chmod,   setattr, link};
}
}  // namespace

OpMix OpMix::general_purpose() {
  return OpMix(make_weights(/*stat=*/42.0, /*open=*/18.0, /*close=*/18.0,
                            /*readdir=*/8.0, /*create=*/4.5, /*mkdir=*/0.6,
                            /*unlink=*/3.6, /*rmdir=*/0.3, /*rename=*/0.8,
                            /*chmod=*/0.7, /*setattr=*/2.4, /*link=*/0.1));
}

OpMix OpMix::create_heavy() {
  return OpMix(make_weights(/*stat=*/22.0, /*open=*/10.0, /*close=*/10.0,
                            /*readdir=*/4.0, /*create=*/35.0, /*mkdir=*/3.5,
                            /*unlink=*/9.0, /*rmdir=*/0.2, /*rename=*/0.5,
                            /*chmod=*/0.3, /*setattr=*/5.5, /*link=*/0.0));
}

OpMix OpMix::read_only() {
  return OpMix(make_weights(/*stat=*/50.0, /*open=*/20.0, /*close=*/20.0,
                            /*readdir=*/10.0, /*create=*/0.0, /*mkdir=*/0.0,
                            /*unlink=*/0.0, /*rmdir=*/0.0, /*rename=*/0.0,
                            /*chmod=*/0.0, /*setattr=*/0.0, /*link=*/0.0));
}

OpMix OpMix::restructure_heavy() {
  return OpMix(make_weights(/*stat=*/30.0, /*open=*/12.0, /*close=*/12.0,
                            /*readdir=*/6.0, /*create=*/6.0, /*mkdir=*/1.0,
                            /*unlink=*/4.0, /*rmdir=*/0.5, /*rename=*/12.0,
                            /*chmod=*/14.0, /*setattr=*/2.0, /*link=*/0.5));
}

}  // namespace mdsim

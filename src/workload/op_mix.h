// Metadata operation mixes.
//
// Frequencies follow the paper's workload basis (section 5.2): "the
// metadata operations comprising our generated client workload are based
// primarily on a study of a 1997 trace of a general-purpose workload
// [Roselli et al.]" — a stat/open/close-dominated mix with the
// characteristic open->close and readdir->stat sequences, and rare
// namespace restructuring (rename/chmod), whose rarity Lazy Hybrid's
// viability depends on.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace mdsim {

class OpMix {
 public:
  /// `weights` indexed by OpType (size kNumOpTypes).
  explicit OpMix(std::vector<double> weights);

  OpType sample(Rng& rng) const;
  double weight(OpType t) const {
    return weights_[static_cast<std::size_t>(t)];
  }

  /// General-purpose mix (Roselli-style; metadata ops only).
  static OpMix general_purpose();
  /// Create-heavy mix used by the workload-shift experiment ("clients ...
  /// create new files in portions of the hierarchy served by a single
  /// MDS", figure 5).
  static OpMix create_heavy();
  /// Read-only mix (stat/open/close/readdir).
  static OpMix read_only();
  /// Mix with frequent directory chmod/rename — the LH update-storm
  /// stressor (section 3.1.3's caveat).
  static OpMix restructure_heavy();

 private:
  std::vector<double> weights_;
  AliasTable table_;
};

}  // namespace mdsim

#include "workload/scientific.h"

#include <cassert>

namespace mdsim {

ScientificWorkload::ScientificWorkload(FsTree& tree,
                                       std::vector<FsNode*> run_dirs,
                                       ScientificWorkloadParams params)
    : tree_(tree), run_dirs_(std::move(run_dirs)), params_(params) {
  assert(!run_dirs_.empty());
}

ScientificWorkload::ClientState& ScientificWorkload::state(ClientId c) {
  if (static_cast<std::size_t>(c) >= clients_.size()) {
    clients_.resize(static_cast<std::size_t>(c) + 1);
  }
  return clients_[static_cast<std::size_t>(c)];
}

SimTime ScientificWorkload::next(ClientId c, SimTime now, Rng& rng,
                                 Operation* out) {
  (void)now;
  ClientState& s = state(c);

  if (s.remaining == 0) {
    // Enter the next burst after a compute phase. Burst type and target
    // are functions of the burst *number*, so all clients converge on the
    // same file/directory (the defining property of the workload).
    const std::uint64_t b = s.burst++;
    s.remaining = params_.ops_per_burst;
    // Burst type is a (hashed) function of the burst number so all
    // clients agree on it and the two shapes interleave at the right
    // ratio from the very first burst.
    const std::uint64_t bh = (b + 1) * 0x9e3779b97f4a7c15ULL;
    s.n_to_1 = static_cast<double>(bh >> 40) /
                   static_cast<double>(1ULL << 24) <
               params_.n_to_1_fraction;
    FsNode* dir = run_dirs_[b % run_dirs_.size()];
    if (!tree_.alive(dir)) dir = run_dirs_.front();
    if (s.n_to_1) {
      // Deterministic shared file within the run dir.
      FsNode* shared = nullptr;
      if (!dir->children().empty()) {
        std::uint64_t idx = b % dir->children().size();
        for (const auto& [_, child] : dir->children()) {
          if (idx-- == 0) {
            shared = child.get();
            break;
          }
        }
      }
      s.open_target = shared != nullptr && !shared->is_dir() ? shared : dir;
    } else {
      s.open_target = dir;
    }
    // First op of the burst: compute-phase delay plus a small skew.
    --s.remaining;
    if (s.n_to_1) {
      out->op = OpType::kOpen;
      out->target = s.open_target;
    } else {
      out->op = OpType::kCreate;
      out->target = s.open_target;
      out->name = "ck" + std::to_string(c) + "_" +
                  std::to_string(s.name_counter++);
    }
    out->secondary = nullptr;
    return params_.compute_phase + rng.uniform(params_.burst_skew);
  }

  --s.remaining;
  if (s.open_target == nullptr || !tree_.alive(s.open_target)) {
    s.remaining = 0;
    return next(c, now, rng, out);
  }
  if (s.n_to_1) {
    if (!s.open_target->is_dir() &&
        rng.uniform_double() < params_.n_to_1_write_fraction) {
      // Concurrent writers bumping the shared file's size/mtime.
      out->op = OpType::kSetattr;
      out->target = s.open_target;
      out->secondary = nullptr;
      return static_cast<SimTime>(
          rng.exponential(static_cast<double>(params_.burst_think)));
    }
    // Alternate open/close on the shared file; sprinkle stats.
    const std::uint64_t phase = rng.uniform(4);
    out->op = phase == 0   ? OpType::kOpen
              : phase == 1 ? OpType::kClose
              : OpType::kStat;
    out->target = s.open_target;
  } else {
    out->op = OpType::kCreate;
    out->target = s.open_target;
    out->name =
        "ck" + std::to_string(c) + "_" + std::to_string(s.name_counter++);
  }
  out->secondary = nullptr;
  return static_cast<SimTime>(
      rng.exponential(static_cast<double>(params_.burst_think)));
}

}  // namespace mdsim

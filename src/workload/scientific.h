// Scientific-computing workload (paper section 5.2).
//
// Based on the LLNL 2003 trace analysis the paper cites: "bursts of
// activity for which all the nodes access the same file or a set of files
// in the same directory". Clients cycle through compute phases (quiet)
// and I/O bursts. Two burst shapes alternate:
//   * N-to-1: every client opens (then closes) the same shared file —
//     e.g. a common input deck or restart file;
//   * N-to-N: every client creates its own file in the same run directory
//     — a checkpoint storm (the create hot-spot that motivates dynamic
//     directory fragmentation).
#pragma once

#include <vector>

#include "workload/workload.h"

namespace mdsim {

struct ScientificWorkloadParams {
  /// Quiet compute time between bursts, per client.
  SimTime compute_phase = 4 * kSecond;
  /// Ops each client performs per burst.
  int ops_per_burst = 20;
  /// Think time between ops inside a burst.
  SimTime burst_think = from_millis(2);
  /// Fraction of bursts that are N-to-1 opens (rest are N-to-N creates).
  double n_to_1_fraction = 0.5;
  /// Within an N-to-1 burst, probability that an op is a shared *write*
  /// (setattr on the common file — concurrent writers updating size/mtime,
  /// the GPFS scenario of paper section 4.2) instead of an open/stat.
  double n_to_1_write_fraction = 0.0;
  /// Small desynchronization of burst starts across clients.
  SimTime burst_skew = from_millis(50);
};

class ScientificWorkload final : public Workload {
 public:
  /// `run_dirs`: the project run directories (each containing the shared
  /// files and receiving checkpoint creates).
  ScientificWorkload(FsTree& tree, std::vector<FsNode*> run_dirs,
                     ScientificWorkloadParams params = {});

  SimTime next(ClientId c, SimTime now, Rng& rng, Operation* out) override;
  std::string name() const override { return "scientific"; }

  /// The shared target of burst number `n` (tests).
  FsNode* burst_dir(std::uint64_t n) const {
    return run_dirs_[n % run_dirs_.size()];
  }

 private:
  struct ClientState {
    std::uint64_t burst = 0;     // burst number this client is in/next
    int remaining = 0;           // ops left in the current burst
    FsNode* open_target = nullptr;
    bool n_to_1 = true;
    std::uint64_t name_counter = 0;
  };

  ClientState& state(ClientId c);

  FsTree& tree_;
  std::vector<FsNode*> run_dirs_;
  ScientificWorkloadParams params_;
  std::vector<ClientState> clients_;
};

}  // namespace mdsim

#include "workload/shifting.h"

namespace mdsim {

std::unique_ptr<GeneralWorkload> make_shifting_workload(
    FsTree& tree, std::vector<FsNode*> home_roots,
    const SubtreePartition& partition, ShiftingWorkloadParams params) {
  auto wl = std::make_unique<GeneralWorkload>(
      tree, std::move(home_roots), OpMix::general_purpose(), params.base);

  WorkloadShift shift;
  shift.at = params.shift_at;
  shift.fraction = params.fraction;
  shift.mix = OpMix::create_heavy();
  for (const FsNode* d : partition.delegations_of(params.hot_mds)) {
    shift.destinations.push_back(const_cast<FsNode*>(d));
  }
  if (shift.destinations.empty()) {
    // Degenerate partition: fall back to the first home directory.
    shift.destinations.push_back(tree.root());
  }
  wl->set_shift(std::move(shift));
  return wl;
}

}  // namespace mdsim

// Workload-shift scenario (figures 5 and 6): "after a short time, about
// half of the clients change their local region of activity and create
// new files in portions of the hierarchy served by a single MDS."
//
// Thin factory over GeneralWorkload: picks the destination directories as
// the subtrees initially delegated to one designated MDS and installs a
// create-heavy shift.
#pragma once

#include <memory>

#include "strategy/partition.h"
#include "workload/general.h"

namespace mdsim {

struct ShiftingWorkloadParams {
  GeneralWorkloadParams base;
  SimTime shift_at = 25 * kSecond;
  double fraction = 0.5;
  /// MDS whose initial territory absorbs the shifted clients.
  MdsId hot_mds = 0;
};

/// Build the shifted workload. `partition` must be the run's subtree
/// partition *after* initialization (its delegation map selects the
/// destination subtrees).
std::unique_ptr<GeneralWorkload> make_shifting_workload(
    FsTree& tree, std::vector<FsNode*> home_roots,
    const SubtreePartition& partition, ShiftingWorkloadParams params = {});

}  // namespace mdsim

#include "workload/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mdsim {

int Trace::num_clients() const {
  ClientId max_id = -1;
  for (const TraceEvent& ev : events_) max_id = std::max(max_id, ev.client);
  return static_cast<int>(max_id) + 1;
}

void Trace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Trace::save: cannot open " + path);
  out << "client,think_ns,op,target_ino,secondary_ino,name\n";
  for (const TraceEvent& ev : events_) {
    out << ev.client << ',' << ev.think << ','
        << static_cast<int>(ev.op) << ',' << ev.target << ','
        << ev.secondary << ',' << ev.name << '\n';
  }
}

Trace Trace::load(const std::string& path) {
  Trace trace;
  std::ifstream in(path);
  if (!in) return trace;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    TraceEvent ev;
    char comma;
    int op_int = 0;
    ss >> ev.client >> comma >> ev.think >> comma >> op_int >> comma >>
        ev.target >> comma >> ev.secondary >> comma;
    std::getline(ss, ev.name);
    ev.op = static_cast<OpType>(op_int);
    trace.append(ev);
  }
  return trace;
}

SimTime RecordingWorkload::next(ClientId c, SimTime now, Rng& rng,
                                Operation* out) {
  const SimTime delay = inner_->next(c, now, rng, out);
  if (delay == kNever) return kNever;
  TraceEvent ev;
  ev.client = c;
  ev.think = delay;
  ev.op = out->op;
  ev.target = out->target != nullptr ? out->target->ino() : kInvalidInode;
  ev.secondary =
      out->secondary != nullptr ? out->secondary->ino() : kInvalidInode;
  ev.name = out->name;
  trace_.append(ev);
  return delay;
}

TraceWorkload::TraceWorkload(FsTree& tree, Trace trace)
    : tree_(tree), trace_(std::move(trace)) {
  cursors_.resize(static_cast<std::size_t>(
      std::max(1, trace_.num_clients())));
  for (std::size_t i = 0; i < trace_.events().size(); ++i) {
    const TraceEvent& ev = trace_.events()[i];
    if (ev.client < 0) continue;
    cursors_[static_cast<std::size_t>(ev.client)].events.push_back(i);
  }
}

SimTime TraceWorkload::next(ClientId c, SimTime now, Rng& rng,
                            Operation* out) {
  (void)now;
  (void)rng;
  if (static_cast<std::size_t>(c) >= cursors_.size()) return kNever;
  Cursor& cur = cursors_[static_cast<std::size_t>(c)];
  while (cur.next < cur.events.size()) {
    const TraceEvent& ev = trace_.events()[cur.events[cur.next++]];
    FsNode* target = tree_.by_ino(ev.target);
    if (target == nullptr) {
      // The item was unlinked before this point in the replay (or the
      // snapshot does not match); skip, as trace replayers do.
      ++skipped_;
      continue;
    }
    FsNode* secondary = ev.secondary != kInvalidInode
                            ? tree_.by_ino(ev.secondary)
                            : nullptr;
    if (ev.secondary != kInvalidInode && secondary == nullptr) {
      ++skipped_;
      continue;
    }
    out->op = ev.op;
    out->target = target;
    out->secondary = secondary;
    out->name = ev.name;
    return ev.think;
  }
  return kNever;  // this client's trace is exhausted
}

}  // namespace mdsim

// Workload trace recording and replay.
//
// Paper future work (section 7): "The use of actual workload traces with
// matching file system metadata snapshots would allow us to evaluate
// system behavior based on more realistic workloads." The pieces needed
// for that are a trace format tied to a namespace snapshot and a replay
// engine; both are built here:
//
//  * RecordingWorkload decorates any generator and captures the exact
//    per-client operation stream (with think delays) as it is produced.
//  * A Trace can be saved to / loaded from a CSV file. Operations
//    reference inodes, so a trace is replayable against any FsTree built
//    from the same generator seed (the "matching metadata snapshot").
//  * TraceWorkload replays a trace with the recorded think-time pacing,
//    preserving per-client ordering; operations whose targets have been
//    unlinked meanwhile are skipped, mirroring trace-replay practice.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace mdsim {

struct TraceEvent {
  ClientId client = kInvalidClient;
  SimTime think = 0;  // delay the generator requested before this op
  OpType op = OpType::kStat;
  InodeId target = kInvalidInode;
  InodeId secondary = kInvalidInode;
  std::string name;
};

class Trace {
 public:
  void append(const TraceEvent& ev) { events_.push_back(ev); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Highest client id referenced (+1), i.e. the client count needed.
  int num_clients() const;

  /// CSV persistence. `save` throws std::runtime_error on I/O failure;
  /// `load` returns an empty trace on a missing file.
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

 private:
  std::vector<TraceEvent> events_;
};

/// Wraps a workload and records everything it generates.
class RecordingWorkload final : public Workload {
 public:
  explicit RecordingWorkload(std::unique_ptr<Workload> inner)
      : inner_(std::move(inner)) {}

  SimTime next(ClientId c, SimTime now, Rng& rng, Operation* out) override;
  std::string name() const override {
    return "recording(" + inner_->name() + ")";
  }

  const Trace& trace() const { return trace_; }
  Trace take_trace() { return std::move(trace_); }
  Workload& inner() { return *inner_; }

 private:
  std::unique_ptr<Workload> inner_;
  Trace trace_;
};

/// Replays a trace against a (matching) namespace.
class TraceWorkload final : public Workload {
 public:
  TraceWorkload(FsTree& tree, Trace trace);

  SimTime next(ClientId c, SimTime now, Rng& rng, Operation* out) override;
  std::string name() const override { return "trace_replay"; }

  std::size_t skipped() const { return skipped_; }

 private:
  struct Cursor {
    std::vector<std::size_t> events;  // indices into trace_ for one client
    std::size_t next = 0;
  };

  FsTree& tree_;
  Trace trace_;
  std::vector<Cursor> cursors_;
  std::size_t skipped_ = 0;
};

}  // namespace mdsim

// Workload generator interface.
//
// The paper (section 5.2) generates client workloads from published trace
// *characterizations* rather than raw traces: op-type frequencies follow
// the Roselli et al. general-purpose study; spatial behaviour follows the
// Floyd/Ellis directory-locality results; scientific bursts follow the
// LLNL 2003 analysis. Each concrete workload implements those shapes
// against the ground-truth namespace.
#pragma once

#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "fstree/tree.h"

namespace mdsim {

/// One metadata operation a client is about to issue.
struct Operation {
  OpType op = OpType::kStat;
  /// Existing-item ops: the item. create/mkdir/link: the containing dir.
  FsNode* target = nullptr;
  /// rename: destination dir; link: source file.
  FsNode* secondary = nullptr;
  /// New dentry name (create/mkdir/rename/link).
  std::string name;
};

/// Sentinel delay: the client has no further work.
constexpr SimTime kNever = ~SimTime{0};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Produce the next operation for client `c`. Returns the delay (from
  /// `now`) after which the client should issue it, or kNever if the
  /// client is finished. `out` is only valid for non-kNever returns.
  virtual SimTime next(ClientId c, SimTime now, Rng& rng, Operation* out) = 0;

  virtual std::string name() const = 0;
};

}  // namespace mdsim

// Distributed attribute updates (GPFS-style, paper section 4.2).
#include <gtest/gtest.h>

#include "test_util.h"

namespace mdsim {
namespace {

class AttrUpdateTest : public ::testing::Test {
 protected:
  void build(bool enabled) {
    SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
    cfg.mds.distributed_attr_updates = enabled;
    cfg.mds.replication_threshold = 20.0;  // easy to replicate the file
    cfg.mds.attr_flush_period = 300 * kMillisecond;
    cluster = std::make_unique<ClusterSim>(cfg);
    client.attach(*cluster);
  }

  void run_for(SimTime dt) { cluster->run_until(cluster->sim().now() + dt); }

  /// Hammer a file with stats until traffic control replicates it.
  FsNode* make_replicated_file() {
    FsNode* f = find_world_readable_file(cluster->tree());
    EXPECT_NE(f, nullptr);
    const MdsId auth = cluster->mds(0).authority_for(f);
    for (int i = 0; i < 40; ++i) {
      client.send(auth, OpType::kStat, f);
      run_for(2 * kMillisecond);
    }
    run_for(100 * kMillisecond);
    EXPECT_TRUE(cluster->mds(auth).is_replicated_everywhere(f->ino()));
    return f;
  }

  std::unique_ptr<ClusterSim> cluster;
  TestClient client;
};

TEST_F(AttrUpdateTest, ReplicaAbsorbsWritesAndFlushes) {
  build(true);
  FsNode* f = make_replicated_file();
  const MdsId auth = cluster->mds(0).authority_for(f);
  const MdsId holder = (auth + 1) % cluster->num_mds();
  ASSERT_NE(cluster->mds(holder).cache().peek(f->ino()), nullptr);

  const std::uint64_t size_before = f->inode().size;
  const std::size_t replies_before = client.replies.size();
  for (int i = 0; i < 10; ++i) {
    client.send(holder, OpType::kSetattr, f);
    run_for(5 * kMillisecond);
  }
  // All ten writes answered locally by the holder — no forwarding.
  ASSERT_EQ(client.replies.size(), replies_before + 10);
  for (std::size_t i = replies_before; i < client.replies.size(); ++i) {
    EXPECT_TRUE(client.replies[i].success);
    EXPECT_EQ(client.replies[i].served_by, holder);
    EXPECT_EQ(client.replies[i].hops, 0);
  }
  EXPECT_GE(cluster->mds(holder).stats().attr_local_updates, 10u);
  // The ground truth has not advanced yet (deltas are pending)...
  EXPECT_EQ(f->inode().size, size_before);
  // ...until the periodic flush ships them as one batch.
  run_for(kSecond);
  EXPECT_GE(cluster->mds(auth).stats().attr_flushes_applied, 1u);
  EXPECT_GE(f->inode().size, size_before + 10);
}

TEST_F(AttrUpdateTest, ReadAtAuthorityCallsDeltasIn) {
  build(true);
  FsNode* f = make_replicated_file();
  const MdsId auth = cluster->mds(0).authority_for(f);
  const MdsId holder = (auth + 1) % cluster->num_mds();
  const std::uint64_t size_before = f->inode().size;
  client.send(holder, OpType::kSetattr, f);
  run_for(10 * kMillisecond);  // well inside the flush period
  ASSERT_EQ(f->inode().size, size_before);

  // A stat at the authority must observe the absorbed write.
  client.send(auth, OpType::kStat, f);
  run_for(100 * kMillisecond);
  EXPECT_TRUE(client.last().success);
  EXPECT_GE(cluster->mds(auth).stats().attr_callbacks, 1u);
  EXPECT_GE(f->inode().size, size_before + 1);
}

TEST_F(AttrUpdateTest, DisabledPathForwardsToAuthority) {
  build(false);
  FsNode* f = make_replicated_file();
  const MdsId auth = cluster->mds(0).authority_for(f);
  const MdsId holder = (auth + 1) % cluster->num_mds();
  client.send(holder, OpType::kSetattr, f);
  run_for(100 * kMillisecond);
  EXPECT_TRUE(client.last().success);
  EXPECT_EQ(client.last().served_by, auth);
  EXPECT_EQ(client.last().hops, 1);
  EXPECT_EQ(cluster->mds(holder).stats().attr_local_updates, 0u);
}

TEST_F(AttrUpdateTest, ReadSurvivesDirtyHolderFailure) {
  build(true);
  FsNode* f = make_replicated_file();
  const MdsId auth = cluster->mds(0).authority_for(f);
  const MdsId holder = (auth + 1) % cluster->num_mds();
  client.send(holder, OpType::kSetattr, f);
  run_for(10 * kMillisecond);
  // The holder dies with unflushed deltas; the read must not hang.
  cluster->fail_mds(holder, /*warm_takeover=*/false);
  client.send(auth, OpType::kStat, f);
  run_for(200 * kMillisecond);
  EXPECT_TRUE(client.last().success);
}

TEST_F(AttrUpdateTest, DirectoriesNeverAbsorbLocally) {
  build(true);
  // Replicate a *directory* via traffic control, then setattr it at a
  // holder: directories take the normal authority path.
  FsNode* dir = cluster->namespace_info().user_roots[1];
  const MdsId auth = cluster->mds(0).authority_for(dir);
  for (int i = 0; i < 40; ++i) {
    client.send(auth, OpType::kStat, dir);
    run_for(2 * kMillisecond);
  }
  run_for(100 * kMillisecond);
  const MdsId holder = (auth + 1) % cluster->num_mds();
  if (cluster->mds(holder).cache().peek(dir->ino()) == nullptr) {
    GTEST_SKIP() << "directory not replicated in this layout";
  }
  client.send(holder, OpType::kSetattr, dir);
  run_for(100 * kMillisecond);
  EXPECT_TRUE(client.last().success);
  EXPECT_EQ(cluster->mds(holder).stats().attr_local_updates, 0u);
}

}  // namespace
}  // namespace mdsim

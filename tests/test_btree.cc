#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/btree.h"

namespace mdsim {
namespace {

DirRecord rec(InodeId ino) { return DirRecord{ino, 1, false}; }

std::string key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%06d", i);
  return buf;
}

TEST(BTree, InsertFindErase) {
  DirBTree t(8);
  EXPECT_TRUE(t.insert("a", rec(1), nullptr));
  EXPECT_TRUE(t.insert("b", rec(2), nullptr));
  EXPECT_FALSE(t.insert("a", rec(3), nullptr));  // overwrite
  ASSERT_NE(t.find("a", nullptr), nullptr);
  EXPECT_EQ(t.find("a", nullptr)->ino, 3u);
  EXPECT_EQ(t.find("zzz", nullptr), nullptr);
  EXPECT_TRUE(t.erase("a", nullptr));
  EXPECT_FALSE(t.erase("a", nullptr));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.check_invariants(), "");
}

TEST(BTree, ManyInsertsKeepInvariants) {
  DirBTree t(8);
  for (int i = 0; i < 2000; ++i) {
    t.insert(key(i), rec(static_cast<InodeId>(i + 1)), nullptr);
    if (i % 200 == 0) {
      ASSERT_EQ(t.check_invariants(), "") << "at " << i;
    }
  }
  EXPECT_EQ(t.size(), 2000u);
  EXPECT_GT(t.height(), 2u);
  EXPECT_EQ(t.check_invariants(), "");
  for (int i = 0; i < 2000; ++i) {
    const DirRecord* r = t.find(key(i), nullptr);
    ASSERT_NE(r, nullptr) << key(i);
    EXPECT_EQ(r->ino, static_cast<InodeId>(i + 1));
  }
}

TEST(BTree, ScanIsOrderedAndComplete) {
  DirBTree t(8);
  Rng rng(3);
  std::map<std::string, InodeId> expect;
  for (int i = 0; i < 500; ++i) {
    const std::string k = key(static_cast<int>(rng.uniform(10000)));
    t.insert(k, rec(static_cast<InodeId>(i + 1)), nullptr);
    expect[k] = static_cast<InodeId>(i + 1);
  }
  std::vector<std::string> seen;
  t.scan([&](const std::string& k, const DirRecord& r) {
    seen.push_back(k);
    EXPECT_EQ(r.ino, expect.at(k));
  }, nullptr);
  EXPECT_EQ(seen.size(), expect.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
}

TEST(BTree, EraseEverythingShrinksToEmptyRoot) {
  DirBTree t(6);
  for (int i = 0; i < 300; ++i) t.insert(key(i), rec(1), nullptr);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(t.erase(key(i), nullptr)) << key(i);
    if (i % 50 == 0) {
      ASSERT_EQ(t.check_invariants(), "") << "at " << i;
    }
  }
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.check_invariants(), "");
}

TEST(BTree, FindCostGrowsWithDepth) {
  DirBTree t(8);
  BTreeIoCost small_cost;
  t.insert("x", rec(1), nullptr);
  t.find("x", &small_cost);
  for (int i = 0; i < 5000; ++i) t.insert(key(i), rec(1), nullptr);
  BTreeIoCost big_cost;
  t.find(key(2500), &big_cost);
  EXPECT_GT(big_cost.nodes_read, small_cost.nodes_read);
  EXPECT_EQ(big_cost.nodes_read, t.height());
}

TEST(BTree, InsertCostIncludesSplits) {
  DirBTree t(4);
  std::uint32_t max_writes = 0;
  for (int i = 0; i < 200; ++i) {
    BTreeIoCost c;
    t.insert(key(i), rec(1), &c);
    EXPECT_GE(c.nodes_written, 1u);
    max_writes = std::max(max_writes, c.nodes_written);
  }
  // Splits must have happened at order 4 with 200 keys.
  EXPECT_GT(max_writes, 1u);
}

TEST(BTree, CowEpochChargesCloneOnce) {
  DirBTree t(8);
  for (int i = 0; i < 50; ++i) t.insert(key(i), rec(1), nullptr);
  // Steady state: overwriting a key dirties the leaf (already cloned this
  // epoch at insert time) — 1 write.
  BTreeIoCost warm;
  t.insert(key(10), rec(2), &warm);
  EXPECT_EQ(warm.nodes_written, 1u);
  t.begin_cow_epoch();
  BTreeIoCost first;
  t.insert(key(10), rec(3), &first);
  EXPECT_EQ(first.nodes_written, 2u);  // write + clone
  BTreeIoCost second;
  t.insert(key(10), rec(4), &second);
  EXPECT_EQ(second.nodes_written, 1u);  // already cloned this epoch
}

TEST(BTree, MoveTransfersOwnership) {
  DirBTree a(8);
  for (int i = 0; i < 100; ++i) a.insert(key(i), rec(1), nullptr);
  DirBTree b = std::move(a);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.check_invariants(), "");
  DirBTree c(8);
  c = std::move(b);
  EXPECT_EQ(c.size(), 100u);
}

class BTreeRandomized : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BTreeRandomized, RandomOpsMatchReferenceMap) {
  const std::uint32_t order = GetParam();
  DirBTree t(order);
  std::map<std::string, DirRecord> ref;
  Rng rng(order * 7919);
  for (int step = 0; step < 4000; ++step) {
    const std::string k = key(static_cast<int>(rng.uniform(700)));
    const double action = rng.uniform_double();
    if (action < 0.55) {
      const DirRecord r = rec(rng.uniform(1 << 20) + 1);
      const bool fresh = t.insert(k, r, nullptr);
      EXPECT_EQ(fresh, ref.find(k) == ref.end());
      ref[k] = r;
    } else if (action < 0.85) {
      const bool erased = t.erase(k, nullptr);
      EXPECT_EQ(erased, ref.erase(k) > 0);
    } else {
      const DirRecord* r = t.find(k, nullptr);
      auto it = ref.find(k);
      if (it == ref.end()) {
        EXPECT_EQ(r, nullptr);
      } else {
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(*r, it->second);
      }
    }
    if (step % 500 == 0) {
      ASSERT_EQ(t.check_invariants(), "") << "step " << step;
      ASSERT_EQ(t.size(), ref.size());
    }
  }
  EXPECT_EQ(t.check_invariants(), "");
  EXPECT_EQ(t.size(), ref.size());
  // Full content equality via scan.
  auto it = ref.begin();
  t.scan([&](const std::string& k, const DirRecord& r) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(r, it->second);
    ++it;
  }, nullptr);
  EXPECT_EQ(it, ref.end());
}

INSTANTIATE_TEST_SUITE_P(Orders, BTreeRandomized,
                         ::testing::Values(4u, 6u, 8u, 16u, 32u, 64u));

}  // namespace
}  // namespace mdsim

#include <gtest/gtest.h>

#include <vector>

#include "cache/metadata_cache.h"
#include "common/rng.h"
#include "fstree/tree.h"

namespace mdsim {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() {
    dir_a = tree.mkdir(tree.root(), "a");
    dir_b = tree.mkdir(tree.root(), "b");
    for (int i = 0; i < 20; ++i) {
      files.push_back(tree.create_file(dir_a, "f" + std::to_string(i)));
    }
  }

  /// Insert a node and its ancestors (as prefixes).
  CacheEntry* insert_chain(MetadataCache& c, FsNode* node,
                           InsertKind kind = InsertKind::kDemand,
                           SimTime now = 0) {
    for (FsNode* n : node->ancestry()) {
      if (n == node) return c.insert(n, kind, true, now);
      if (c.peek(n->ino()) == nullptr) {
        c.insert(n, InsertKind::kPrefix, true, now);
      }
    }
    return nullptr;
  }

  FsTree tree;
  FsNode* dir_a;
  FsNode* dir_b;
  std::vector<FsNode*> files;
};

TEST_F(CacheTest, HitAndMissAccounting) {
  MetadataCache c(100);
  insert_chain(c, files[0]);
  EXPECT_NE(c.lookup(files[0]->ino(), 0), nullptr);
  EXPECT_EQ(c.lookup(files[1]->ino(), 0), nullptr);
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.5);
  // Peek and uncounted lookups do not skew the stats.
  c.peek(files[0]->ino());
  c.lookup(files[0]->ino(), 0, /*count_stats=*/false);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST_F(CacheTest, LruEvictsColdestLeaf) {
  MetadataCache c(6);
  for (int i = 0; i < 4; ++i) insert_chain(c, files[i]);
  // Cache: root, a, f0..f3 = 6 entries. Touch f0 so f1 is the coldest.
  c.lookup(files[0]->ino(), 1);
  insert_chain(c, files[4]);
  EXPECT_EQ(c.size(), 6u);
  EXPECT_EQ(c.peek(files[1]->ino()), nullptr);   // evicted
  EXPECT_NE(c.peek(files[0]->ino()), nullptr);   // protected by touch
  EXPECT_NE(c.peek(dir_a->ino()), nullptr);      // prefix pinned by children
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, TreeInvariantProtectsAncestors) {
  MetadataCache c(4);
  insert_chain(c, files[0]);  // root, a, f0
  insert_chain(c, files[1]);  // + f1 -> at capacity
  insert_chain(c, files[2]);  // forces eviction: must take f0 or f1
  EXPECT_NE(c.peek(tree.root()->ino()), nullptr);
  EXPECT_NE(c.peek(dir_a->ino()), nullptr);
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, OnlyLeavesExpire) {
  MetadataCache c(1000);
  for (FsNode* f : files) insert_chain(c, f);
  // dir_a anchors 20 children: erase must refuse.
  EXPECT_FALSE(c.erase(dir_a->ino()));
  EXPECT_TRUE(c.erase(files[0]->ino()));
  EXPECT_EQ(c.peek(files[0]->ino()), nullptr);
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, PinnedEntriesNeverEvicted) {
  MetadataCache c(4);
  CacheEntry* e = insert_chain(c, files[0]);
  c.pin(e);
  for (int i = 1; i < 10; ++i) insert_chain(c, files[i]);
  EXPECT_NE(c.peek(files[0]->ino()), nullptr);
  EXPECT_FALSE(c.erase(files[0]->ino()));
  c.unpin(e);
  EXPECT_TRUE(c.erase(files[0]->ino()));
}

TEST_F(CacheTest, PrefetchedEvictedBeforeDemand) {
  MetadataCache c(7);
  insert_chain(c, files[0]);  // root, a, f0 (demand)
  c.insert(files[1], InsertKind::kPrefetch, true, 0);
  c.insert(files[2], InsertKind::kPrefetch, true, 0);
  c.insert(files[3], InsertKind::kDemand, true, 0);
  // 7 entries; add two more to force evictions.
  c.insert(files[4], InsertKind::kDemand, true, 1);
  c.insert(files[5], InsertKind::kDemand, true, 1);
  // Probation (prefetched, untouched) must go first.
  EXPECT_EQ(c.peek(files[1]->ino()), nullptr);
  EXPECT_NE(c.peek(files[0]->ino()), nullptr);
  EXPECT_NE(c.peek(files[3]->ino()), nullptr);
}

TEST_F(CacheTest, PrefetchHitPromotesToMain) {
  MetadataCache c(7);
  insert_chain(c, files[0]);
  c.insert(files[1], InsertKind::kPrefetch, true, 0);
  c.insert(files[2], InsertKind::kPrefetch, true, 0);
  // Touch the first prefetched entry: it graduates out of probation.
  EXPECT_NE(c.lookup(files[1]->ino(), 1), nullptr);
  c.insert(files[3], InsertKind::kDemand, true, 2);
  c.insert(files[4], InsertKind::kDemand, true, 2);
  c.insert(files[5], InsertKind::kDemand, true, 2);
  // files[2] (still probation) evicted before promoted files[1].
  EXPECT_EQ(c.peek(files[2]->ino()), nullptr);
  EXPECT_NE(c.peek(files[1]->ino()), nullptr);
}

TEST_F(CacheTest, EvictionCallbackFires) {
  MetadataCache c(3);
  std::vector<InodeId> evicted;
  c.set_evict_callback(
      [&](const CacheEntry& e) { evicted.push_back(e.node->ino()); });
  insert_chain(c, files[0]);
  insert_chain(c, files[1]);  // evicts f0 (root+a pinned by tree invariant)
  EXPECT_EQ(evicted, std::vector<InodeId>{files[0]->ino()});
  // erase() is not an eviction: no callback.
  c.erase(files[1]->ino());
  EXPECT_EQ(evicted.size(), 1u);
}

TEST_F(CacheTest, ReplicaAccounting) {
  MetadataCache c(100);
  c.insert(tree.root(), InsertKind::kDemand, false, 0);
  c.insert(dir_a, InsertKind::kPrefix, false, 0);
  EXPECT_EQ(c.replica_count(), 2u);
  // Upgrading to authoritative reduces the replica count.
  c.insert(dir_a, InsertKind::kPrefix, true, 1);
  EXPECT_EQ(c.replica_count(), 1u);
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, PrefixAccountingFollowsDemandAccess) {
  MetadataCache c(100);
  c.insert(tree.root(), InsertKind::kPrefix, true, 0);
  c.insert(dir_a, InsertKind::kPrefix, true, 0);
  EXPECT_EQ(c.prefix_count(), 2u);
  // A demand access on the directory clears its prefix status.
  CacheEntry* e = c.peek(dir_a->ino());
  c.mark_demand_access(e);
  EXPECT_EQ(c.prefix_count(), 1u);
  // Files never count as prefix inodes.
  c.insert(files[0], InsertKind::kPrefetch, true, 0);
  EXPECT_EQ(c.prefix_count(), 1u);
}

TEST_F(CacheTest, PrefixFractionCountsAnchoringDirs) {
  MetadataCache c(100);
  insert_chain(c, files[0]);
  // root + a are anchoring prefixes; f0 is a demand file.
  EXPECT_NEAR(c.prefix_fraction(), 2.0 / 3.0, 1e-9);
}

TEST_F(CacheTest, AnchorParentSurvivesRename) {
  MetadataCache c(100);
  insert_chain(c, files[0]);
  insert_chain(c, dir_b, InsertKind::kDemand);
  // Move the cached file to another directory in the ground truth.
  ASSERT_TRUE(tree.rename(files[0], dir_b, "moved"));
  // The cache still accounts against the old parent; removing the entry
  // must not corrupt the counts.
  EXPECT_TRUE(c.erase(files[0]->ino()));
  EXPECT_EQ(c.check_invariants(), "");
  EXPECT_TRUE(c.erase(dir_a->ino()));  // no children left
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, CapacityShrinkEvicts) {
  MetadataCache c(50);
  for (int i = 0; i < 10; ++i) insert_chain(c, files[i]);
  EXPECT_EQ(c.size(), 12u);
  c.set_capacity(5);
  EXPECT_LE(c.size(), 5u);
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, OverflowWhenEverythingPinned) {
  MetadataCache c(2);
  CacheEntry* r = c.insert(tree.root(), InsertKind::kDemand, true, 0);
  c.pin(r);
  CacheEntry* a = c.insert(dir_a, InsertKind::kDemand, true, 0);
  c.pin(a);
  // Third insert cannot evict anything (root/a pinned, f anchored by its
  // own insertion pin) -> cache temporarily overflows instead of dying.
  CacheEntry* f = c.insert(files[0], InsertKind::kDemand, true, 0);
  EXPECT_NE(f, nullptr);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, LazyHybridModeSkipsTreeInvariant) {
  MetadataCache c(10, /*enforce_tree=*/false);
  // Free-standing insert without ancestors.
  CacheEntry* e = c.insert(files[5], InsertKind::kDemand, true, 0);
  EXPECT_NE(e, nullptr);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.erase(files[5]->ino()));
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, PromotionMovesProbationToMain) {
  MetadataCache c(10);
  insert_chain(c, files[0]);
  CacheEntry* e = c.insert(files[1], InsertKind::kPrefetch, true, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->in_probation);
  CacheEntry* hit = c.lookup(files[1]->ino(), 1);
  EXPECT_EQ(hit, e);  // slab addresses are stable
  EXPECT_FALSE(e->in_probation);
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, EvictCallbackMayInsert) {
  MetadataCache c(3);
  insert_chain(c, files[0]);  // root, a, f0
  bool reentered = false;
  c.set_evict_callback([&](const CacheEntry& e) {
    // The victim is already unlinked: peek must miss, and inserting other
    // entries mid-eviction must be safe.
    EXPECT_EQ(c.peek(e.node->ino()), nullptr);
    if (!reentered && e.node == files[0]) {
      reentered = true;
      c.insert(files[2], InsertKind::kDemand, true, 5);
    }
  });
  insert_chain(c, files[1]);  // overflows: evicts f0, callback adds f2
  EXPECT_TRUE(reentered);
  EXPECT_EQ(c.peek(files[0]->ino()), nullptr);
  EXPECT_NE(c.peek(files[1]->ino()), nullptr);
  EXPECT_LE(c.size(), 3u);
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, EvictCallbackMayErase) {
  MetadataCache c(4);
  insert_chain(c, files[0]);
  insert_chain(c, files[1]);  // root, a, f0, f1
  c.set_evict_callback([&](const CacheEntry& e) {
    if (e.node == files[0]) c.erase(files[1]->ino());
  });
  insert_chain(c, files[2]);  // overflows: evicts f0, callback drops f1
  EXPECT_EQ(c.peek(files[0]->ino()), nullptr);
  EXPECT_EQ(c.peek(files[1]->ino()), nullptr);
  EXPECT_NE(c.peek(files[2]->ino()), nullptr);
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, EraseWhilePinnedRefused) {
  MetadataCache c(10);
  CacheEntry* e = insert_chain(c, files[0]);
  c.pin(e);
  EXPECT_FALSE(c.erase(files[0]->ino()));
  EXPECT_NE(c.peek(files[0]->ino()), nullptr);
  EXPECT_EQ(c.check_invariants(), "");
  c.unpin(e);
  EXPECT_TRUE(c.erase(files[0]->ino()));
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, UnpinUnderflowSurfaces) {
  MetadataCache c(10);
  CacheEntry* e = insert_chain(c, files[0]);
  EXPECT_EQ(c.stats().pin_underflows, 0u);
  // Debug builds trip the assert; release builds count the underflow and
  // leave the pin count uncorrupted instead of wrapping to 2^32-1.
  EXPECT_DEBUG_DEATH(c.unpin(e), "matching pin");
#ifdef NDEBUG
  EXPECT_EQ(c.stats().pin_underflows, 1u);
  EXPECT_EQ(e->pins, 0u);
  EXPECT_TRUE(c.erase(files[0]->ino()));
#endif
}

TEST_F(CacheTest, AuxOutlivesEntry) {
  MetadataCache c(10);
  insert_chain(c, files[0]);
  const InodeId ino = files[0]->ino();
  EntryAux& a = c.aux_ensure(ino);
  a.replica_holders.push_back(2);
  EXPECT_EQ(c.peek(ino)->aux, &a);  // entry linked to its sidecar
  // The replica registry survives the entry being dropped (an authority
  // keeps invalidating holders after shedding its own copy).
  EXPECT_TRUE(c.erase(ino));
  ASSERT_NE(c.aux_peek(ino), nullptr);
  EXPECT_EQ(c.aux_peek(ino)->replica_holders.size(), 1u);
  EXPECT_EQ(c.aux_count(), 1u);
  // Draining the last field reclaims the record.
  c.aux_peek(ino)->replica_holders.clear();
  c.aux_gc(ino);
  EXPECT_EQ(c.aux_peek(ino), nullptr);
  EXPECT_EQ(c.aux_count(), 0u);
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, ReplicatedFlagDiesWithEntry) {
  MetadataCache c(3);
  insert_chain(c, files[0]);
  c.aux_ensure(files[0]->ino()).replicated_everywhere = true;
  insert_chain(c, files[1]);  // evicts f0
  EXPECT_EQ(c.peek(files[0]->ino()), nullptr);
  // replicated-everywhere is a property of the resident copy: cleared on
  // eviction, and the then-empty sidecar is reclaimed.
  EXPECT_EQ(c.aux_peek(files[0]->ino()), nullptr);
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, FetchCoalescing) {
  MetadataCache c(10);
  const InodeId ino = files[0]->ino();
  int calls = 0;
  auto w = [&](CacheEntry*) { ++calls; };
  EXPECT_TRUE(c.add_fetch_waiter(ino, FetchChannel::kDisk, w));
  EXPECT_FALSE(c.add_fetch_waiter(ino, FetchChannel::kDisk, w));
  EXPECT_TRUE(c.fetch_inflight(ino, FetchChannel::kDisk));
  EXPECT_EQ(c.inflight_fetches(FetchChannel::kDisk), 1u);
  // Channels are independent: a replica request can be in flight for the
  // same inode as a disk read.
  EXPECT_TRUE(c.add_fetch_waiter(ino, FetchChannel::kReplica, w));
  auto waiters = c.take_fetch_waiters(ino, FetchChannel::kDisk);
  EXPECT_EQ(waiters.size(), 2u);
  for (auto& fn : waiters) fn(nullptr);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(c.inflight_fetches(FetchChannel::kDisk), 0u);
  EXPECT_TRUE(c.take_fetch_waiters(ino, FetchChannel::kDisk).empty());
  c.clear_fetch_waiters();
  EXPECT_EQ(c.inflight_fetches(FetchChannel::kReplica), 0u);
  EXPECT_EQ(c.aux_count(), 0u);
  EXPECT_EQ(c.check_invariants(), "");
}

TEST_F(CacheTest, PopularityDecays) {
  MetadataCache c(10);
  CacheEntry* e = insert_chain(c, files[0]);
  for (int i = 0; i < 16; ++i) c.lookup(files[0]->ino(), 0);
  const double hot = e->popularity.get(0);
  const double later = e->popularity.get(60 * kSecond);
  EXPECT_GT(hot, 10.0);
  EXPECT_LT(later, 0.01);
}

// Property test: random insert/lookup/erase sequences never violate the
// cache's structural invariants.
class CacheProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheProperty, RandomOpsPreserveInvariants) {
  FsTree tree;
  Rng rng(GetParam());
  // Build a small random hierarchy.
  std::vector<FsNode*> dirs{tree.root()};
  std::vector<FsNode*> nodes;
  for (int i = 0; i < 60; ++i) {
    FsNode* parent = dirs[rng.uniform(dirs.size())];
    if (rng.bernoulli(0.3)) {
      FsNode* d = tree.mkdir(parent, "d" + std::to_string(i));
      if (d != nullptr) {
        dirs.push_back(d);
        nodes.push_back(d);
      }
    } else {
      FsNode* f = tree.create_file(parent, "f" + std::to_string(i));
      if (f != nullptr) nodes.push_back(f);
    }
  }
  MetadataCache c(24);
  SimTime now = 0;
  for (int step = 0; step < 3000; ++step) {
    now += kMillisecond;
    FsNode* n = nodes[rng.uniform(nodes.size())];
    const double action = rng.uniform_double();
    if (action < 0.5) {
      // Insert with full ancestry.
      for (FsNode* a : n->ancestry()) {
        if (a == n) {
          const InsertKind kind =
              rng.bernoulli(0.3) ? InsertKind::kPrefetch : InsertKind::kDemand;
          c.insert(a, kind, rng.bernoulli(0.8), now);
        } else if (c.peek(a->ino()) == nullptr) {
          c.insert(a, InsertKind::kPrefix, rng.bernoulli(0.8), now);
        }
      }
    } else if (action < 0.8) {
      c.lookup(n->ino(), now);
    } else if (action < 0.9) {
      c.erase(n->ino());
    } else {
      // Churn the protocol sidecar alongside the entries.
      EntryAux& a = c.aux_ensure(n->ino());
      if (rng.bernoulli(0.5)) {
        a.replica_holders.push_back(1);
      } else {
        a.replica_holders.clear();
        a.replicated_everywhere = rng.bernoulli(0.3);
      }
      c.aux_gc(n->ino());
    }
    if (step % 250 == 0) {
      ASSERT_EQ(c.check_invariants(), "") << "step " << step;
      ASSERT_LE(c.size(), 24u + 1u);
    }
  }
  EXPECT_EQ(c.check_invariants(), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace mdsim

// Chaos stress: a scripted FaultPlan (crashes, restarts, a flaky link)
// runs against a loaded cluster while invariant sweeps check that the
// failure machinery never corrupts state — a single authority per
// subtree, no leaked frozen/deferred requests, caches structurally sound
// — and that the whole scenario is bit-for-bit reproducible per seed.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/fault_plan.h"
#include "test_util.h"

namespace mdsim {
namespace {

SimConfig chaos_config(std::uint64_t seed) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 4;
  cfg.num_clients = 120;
  cfg.seed = seed;
  cfg.fs.seed = seed;
  cfg.fs.num_users = 32;
  cfg.fs.nodes_per_user = 200;
  cfg.duration = 30 * kSecond;
  cfg.warmup = 2 * kSecond;
  cfg.client_retry.request_timeout = kSecond;
  return cfg;
}

FaultPlan chaos_plan() {
  LinkFault flaky;
  flaky.drop = 0.5;
  flaky.duplicate = 0.5;
  flaky.spike = 0.5;
  flaky.spike_latency = 20 * kMillisecond;

  // Restarts land after the grace-delayed takeovers (~detect + 4s): a
  // node that comes back while its takeover is still pending cancels it,
  // and the incident-lifecycle assertions below expect takeovers to run.
  FaultPlan plan;
  plan.crash(8 * kSecond, 1, /*warm=*/true)
      .restart(18 * kSecond, 1)
      .flaky_link(10 * kSecond, 12 * kSecond, 2, 3, flaky)
      .crash(18 * kSecond, 3, /*warm=*/false)
      .restart(28 * kSecond, 3);
  return plan;
}

void sweep_invariants(ClusterSim& cluster, SimTime at) {
  for (int i = 0; i < cluster.num_mds(); ++i) {
    MdsNode& n = cluster.mds(i);
    EXPECT_EQ(n.cache().check_invariants(), "")
        << "node " << i << " at t=" << to_seconds(at);
    // A frozen subtree exists only inside a double-commit; deferred
    // requests exist only behind a frozen subtree.
    if (n.frozen_subtrees() > 0) {
      EXPECT_TRUE(n.migrating()) << "node " << i << " at t=" << to_seconds(at);
    }
    if (n.deferred_requests() > 0) {
      EXPECT_GT(n.frozen_subtrees(), 0u)
          << "node " << i << " at t=" << to_seconds(at);
    }
  }
}

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, ScriptedFaultsNeverCorruptState) {
  ClusterSim cluster(chaos_config(GetParam()));
  cluster.run_until(0);
  chaos_plan().arm(cluster);

  // Phase boundaries: healthy, post-crash, post-detection, flaky link
  // live, post-restart, second crash, fully recovered, quiesced.
  const SimTime checkpoints[] = {
      5 * kSecond,  9 * kSecond,  13 * kSecond, 16 * kSecond,
      19 * kSecond, 23 * kSecond, 26 * kSecond, 30 * kSecond};
  for (SimTime t : checkpoints) {
    cluster.run_until(t);
    sweep_invariants(cluster, t);
  }
  // Let in-flight double-commits resolve (watchdog horizon), then the
  // terminal state must be fully quiesced.
  cluster.run_until(34 * kSecond);
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_EQ(cluster.mds(i).frozen_subtrees(), 0u) << i;
    EXPECT_EQ(cluster.mds(i).deferred_requests(), 0u) << i;
    EXPECT_FALSE(cluster.mds(i).failed()) << i;
  }

  // Exactly one live authority per delegated subtree.
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster.partition());
  ASSERT_NE(subtree, nullptr);
  for (int i = 0; i < cluster.num_mds(); ++i) {
    for (const FsNode* root : subtree->delegations_of(i)) {
      EXPECT_EQ(subtree->authority_of(root), i);
      EXPECT_FALSE(cluster.mds(i).failed());
    }
  }

  // Both scripted incidents ran their full lifecycle.
  const auto& incidents = cluster.fault_log().incidents();
  ASSERT_EQ(incidents.size(), 2u);
  for (const auto& inc : incidents) {
    EXPECT_TRUE(inc.has(inc.detected_at)) << inc.node;
    EXPECT_TRUE(inc.has(inc.takeover_at)) << inc.node;
    EXPECT_TRUE(inc.has(inc.rejoined_at)) << inc.node;
    EXPECT_TRUE(inc.has(inc.remarked_up_at)) << inc.node;
    EXPECT_FALSE(inc.open) << inc.node;
  }

  // The flaky link actually injected faults, and clients survived them:
  // every issued op either completed or failed — none vanished.
  const auto& fc = cluster.network().fault_counters();
  EXPECT_GT(fc.dropped + fc.duplicated + fc.spiked, 0u);
  std::uint64_t issued = 0, completed = 0, failed = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    const ClientStats& s = cluster.client(c).stats();
    issued += s.ops_issued;
    completed += s.ops_completed;
    failed += s.ops_failed;
  }
  EXPECT_GT(completed, 0u);
  EXPECT_LE(completed, issued);
  EXPECT_LE(failed, issued);
  // Post-recovery the cluster still serves at a healthy clip.
  EXPECT_GT(cluster.metrics().avg_throughput().mean_in(26 * kSecond,
                                                       30 * kSecond),
            100.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Values(1u, 7u, 42u, 99u, 1234u));

// Randomized chaos: FaultPlan::randomize composes a crash/restart pair,
// a fail-slow window, a flaky link and a sustained lossy degrade from
// one seeded stream. Whatever the draw, the invariants must hold at
// every checkpoint, and after the last window closes (4/5 of the
// duration) and the restart rejoins, the cluster must quiesce with no
// request left in limbo: everything a client issued either completed,
// failed, or is the one op legitimately in flight per client.
class RandomChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomChaosSweep, GeneratedPlansNeverCorruptOrLeakRequests) {
  SimConfig cfg = chaos_config(GetParam());
  cfg.num_clients = 90;
  cfg.mds.health.enabled = true;  // detection races injection, by design
  const SimTime dur = cfg.duration;
  ClusterSim cluster(cfg);
  cluster.run_until(0);
  FaultPlan::randomize(GetParam(), cfg.num_mds, dur).arm(cluster);

  for (SimTime t = 5 * kSecond; t <= dur; t += 5 * kSecond) {
    cluster.run_until(t);
    sweep_invariants(cluster, t);
  }
  // Quiesce past the migration watchdog horizon.
  cluster.run_until(dur + 6 * kSecond);
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_EQ(cluster.mds(i).frozen_subtrees(), 0u) << i;
    EXPECT_EQ(cluster.mds(i).deferred_requests(), 0u) << i;
    EXPECT_FALSE(cluster.mds(i).failed()) << i;
    EXPECT_EQ(cluster.mds(i).cpu().service_time_multiplier(), 1.0) << i;
    EXPECT_EQ(cluster.mds(i).disk().service_time_multiplier(), 1.0) << i;
  }
  // No request outlives its deadline unanswered. ops_issued counts every
  // attempt, so each issue must be accounted for by a success (ops_ok),
  // a terminal failure (failure reply or budget-suppressed timeout —
  // ops_failed covers both), a timeout re-issue (retries minus the
  // suppressed ones), a rejection-driven re-issue (bounded by
  // rejected_replies), or the single op a closed-loop client may still
  // have in flight. Nothing vanishes into a dead or degraded node.
  for (int c = 0; c < cluster.num_clients(); ++c) {
    const ClientStats& s = cluster.client(c).stats();
    ASSERT_GE(s.ops_issued, s.ops_ok + s.ops_failed) << c;
    const std::uint64_t unresolved = s.ops_issued - s.ops_ok - s.ops_failed;
    const std::uint64_t reissues =
        (s.retries - s.retries_suppressed) + s.rejected_replies;
    EXPECT_LE(unresolved, reissues + 1) << c;
  }
  // The generated schedule really injected something on every axis it
  // scripts: a crash incident and a fail-slow window are logged.
  EXPECT_FALSE(cluster.fault_log().incidents().empty());
  const auto& fs = cluster.fault_log().fail_slow_incidents();
  ASSERT_FALSE(fs.empty());
  EXPECT_FALSE(fs.front().open);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChaosSweep,
                         ::testing::Values(3u, 11u, 77u));

TEST(Chaos, SameSeedRandomizedPlanIsBitForBitReproducible) {
  auto run = []() {
    SimConfig cfg = chaos_config(11);
    cfg.num_clients = 90;
    cfg.mds.health.enabled = true;
    ClusterSim cluster(cfg);
    cluster.run_until(0);
    FaultPlan::randomize(11, cfg.num_mds, cfg.duration).arm(cluster);
    cluster.run_until(cfg.duration);

    std::uint64_t completed = 0, failed = 0, retries = 0, stale = 0,
                  hedges = 0;
    for (int c = 0; c < cluster.num_clients(); ++c) {
      const ClientStats& s = cluster.client(c).stats();
      completed += s.ops_completed;
      failed += s.ops_failed;
      retries += s.retries;
      stale += s.stale_replies;
      hedges += s.hedges_fired;
    }
    const auto& fc = cluster.network().fault_counters();
    return std::make_tuple(
        completed, failed, retries, stale, hedges, fc.dropped,
        fc.duplicated, fc.spiked, fc.degrade_dropped,
        cluster.fault_log().gray_incidents().size(),
        cluster.fault_log().gray_degraded_seconds(cfg.duration),
        cluster.metrics().total_replies());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(Chaos, SameSeedSamePlanIsBitForBitReproducible) {
  auto run = []() {
    ClusterSim cluster(chaos_config(42));
    cluster.run_until(0);
    chaos_plan().arm(cluster);
    cluster.run_until(30 * kSecond);

    std::vector<double> tput;
    for (const auto& p : cluster.metrics().avg_throughput().points()) {
      tput.push_back(p.value);
    }
    std::uint64_t completed = 0, failed = 0, retries = 0, stale = 0;
    for (int c = 0; c < cluster.num_clients(); ++c) {
      const ClientStats& s = cluster.client(c).stats();
      completed += s.ops_completed;
      failed += s.ops_failed;
      retries += s.retries;
      stale += s.stale_replies;
    }
    const auto& fc = cluster.network().fault_counters();
    return std::make_tuple(
        tput, completed, failed, retries, stale, fc.dropped, fc.duplicated,
        fc.spiked, cluster.metrics().detection_latency_seconds().mean(),
        cluster.metrics().recovery_time_seconds().mean(),
        cluster.metrics().total_replies());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mdsim

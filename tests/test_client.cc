#include <gtest/gtest.h>

#include <map>

#include "client/location_cache.h"

namespace mdsim {
namespace {

class LocationCacheTest : public ::testing::Test {
 protected:
  LocationCacheTest() {
    a = tree.mkdir(tree.root(), "a");
    b = tree.mkdir(a, "b");
    f = tree.create_file(b, "f");
  }

  LocationHint hint(InodeId ino, MdsId auth, bool everywhere = false) {
    LocationHint h;
    h.ino = ino;
    h.authority = auth;
    h.replicated_everywhere = everywhere;
    return h;
  }

  FsTree tree;
  FsNode* a;
  FsNode* b;
  FsNode* f;
  Rng rng{5};
};

TEST_F(LocationCacheTest, UnknownTargetsGoToRandomNodes) {
  LocationCache c;
  std::map<MdsId, int> counts;
  for (int i = 0; i < 4000; ++i) ++counts[c.resolve(f, rng, 4)];
  EXPECT_EQ(counts.size(), 4u);
  for (const auto& [mds, count] : counts) {
    EXPECT_GT(mds, -1);
    EXPECT_NEAR(count, 1000, 150);
  }
}

TEST_F(LocationCacheTest, DeepestKnownPrefixWins) {
  LocationCache c;
  c.learn({hint(tree.root()->ino(), 0), hint(a->ino(), 1)});
  EXPECT_EQ(c.resolve(f, rng, 4), 1);
  c.learn({hint(b->ino(), 2)});
  EXPECT_EQ(c.resolve(f, rng, 4), 2);
  c.learn({hint(f->ino(), 3)});
  EXPECT_EQ(c.resolve(f, rng, 4), 3);
  // Siblings of f still resolve through b.
  FsNode* g = tree.create_file(b, "g");
  EXPECT_EQ(c.resolve(g, rng, 4), 2);
}

TEST_F(LocationCacheTest, ReplicatedPrefixScattersRequests) {
  LocationCache c;
  c.learn({hint(b->ino(), 1, /*everywhere=*/true)});
  std::map<MdsId, int> counts;
  for (int i = 0; i < 4000; ++i) ++counts[c.resolve(f, rng, 4)];
  EXPECT_EQ(counts.size(), 4u);  // spread over all nodes
}

TEST_F(LocationCacheTest, NewerHintsOverwrite) {
  LocationCache c;
  c.learn({hint(b->ino(), 1)});
  EXPECT_EQ(c.resolve(f, rng, 4), 1);
  c.learn({hint(b->ino(), 3)});  // subtree migrated
  EXPECT_EQ(c.resolve(f, rng, 4), 3);
  ASSERT_NE(c.hint_for(b->ino()), nullptr);
  EXPECT_EQ(c.hint_for(b->ino())->authority, 3);
}

TEST_F(LocationCacheTest, CapacityBounded) {
  LocationCache c(10);
  std::vector<LocationHint> hints;
  for (InodeId i = 100; i < 200; ++i) hints.push_back(hint(i, 0));
  c.learn(hints);
  EXPECT_LE(c.size(), 10u);
}

TEST_F(LocationCacheTest, StaleKnowledgeStillResolvesSomewhereValid) {
  LocationCache c;
  c.learn({hint(a->ino(), 2)});
  // The file is renamed far away; resolution by old ancestry still returns
  // a valid node (the cluster will forward) — client code never breaks.
  FsNode* elsewhere = tree.mkdir(tree.root(), "elsewhere");
  ASSERT_TRUE(tree.rename(f, elsewhere, "moved"));
  const MdsId m = c.resolve(f, rng, 4);
  EXPECT_GE(m, 0);
  EXPECT_LT(m, 4);
}

}  // namespace
}  // namespace mdsim

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "test_util.h"

namespace mdsim {
namespace {

SimConfig small_config(StrategyKind strategy, std::uint64_t seed = 42) {
  SimConfig cfg;
  cfg.strategy = strategy;
  cfg.num_mds = 3;
  cfg.num_clients = 90;
  cfg.seed = seed;
  cfg.fs.seed = seed;
  cfg.fs.num_users = 24;
  cfg.fs.nodes_per_user = 200;
  cfg.duration = 6 * kSecond;
  cfg.warmup = 2 * kSecond;
  return cfg;
}

class ClusterEndToEnd : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(ClusterEndToEnd, RunsAndServesLoad) {
  ClusterSim cluster(small_config(GetParam()));
  cluster.run();
  Metrics& m = cluster.metrics();
  const SimTime now = cluster.sim().now();

  EXPECT_GT(m.total_replies(), 1000u);
  EXPECT_GT(m.avg_mds_throughput(now), 100.0);
  EXPECT_LT(m.total_failures(), m.total_replies() / 5);
  EXPECT_GT(m.cluster_hit_rate(), 0.0);
  EXPECT_LE(m.cluster_hit_rate(), 1.0);
  EXPECT_GE(m.overall_forward_fraction(), 0.0);
  EXPECT_LT(m.overall_forward_fraction(), 0.95);
  const Summary latency = m.client_latency();
  EXPECT_GT(latency.count(), 0u);
  EXPECT_GT(latency.mean(), 0.0);
  EXPECT_LT(latency.mean(), 1.0);  // < 1 second on a healthy cluster
}

TEST_P(ClusterEndToEnd, CacheInvariantsHoldAtEnd) {
  ClusterSim cluster(small_config(GetParam()));
  cluster.run();
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_EQ(cluster.mds(i).cache().check_invariants(), "") << "mds " << i;
    EXPECT_LE(cluster.mds(i).cache().size(),
              cluster.mds(i).cache().capacity() + 64)
        << "mds " << i;
  }
}

TEST_P(ClusterEndToEnd, DeterministicForSameSeed) {
  ClusterSim a(small_config(GetParam(), 7));
  a.run();
  ClusterSim b(small_config(GetParam(), 7));
  b.run();
  EXPECT_EQ(a.metrics().total_replies(), b.metrics().total_replies());
  EXPECT_EQ(a.sim().events_executed(), b.sim().events_executed());
  for (int i = 0; i < a.num_mds(); ++i) {
    EXPECT_EQ(a.mds(i).stats().replies_sent, b.mds(i).stats().replies_sent);
    EXPECT_EQ(a.mds(i).cache().size(), b.mds(i).cache().size());
  }
}

TEST_P(ClusterEndToEnd, DifferentSeedsDiffer) {
  ClusterSim a(small_config(GetParam(), 1));
  a.run();
  ClusterSim b(small_config(GetParam(), 2));
  b.run();
  EXPECT_NE(a.metrics().total_replies(), b.metrics().total_replies());
}

TEST_P(ClusterEndToEnd, ReplicaRegistrationsMostlyConsistent) {
  ClusterSim cluster(small_config(GetParam()));
  cluster.run();
  // Every replica entry should be registered at its authority. In-flight
  // invalidations at the cutoff instant allow a small discrepancy.
  std::size_t replicas = 0;
  std::size_t unregistered = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    MdsNode& node = cluster.mds(i);
    node.cache().for_each([&](CacheEntry& e) {
      if (e.authoritative) return;
      ++replicas;
      const MdsId auth = node.authority_for(e.node);
      if (auth == node.id()) return;  // authority drifted (migration)
      if (cluster.mds(auth).replica_holders(e.node->ino()) == 0) {
        ++unregistered;
      }
    });
  }
  if (replicas > 20) {
    EXPECT_LT(unregistered, replicas / 4)
        << unregistered << " of " << replicas;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ClusterEndToEnd,
    ::testing::Values(StrategyKind::kDynamicSubtree,
                      StrategyKind::kStaticSubtree, StrategyKind::kDirHash,
                      StrategyKind::kFileHash, StrategyKind::kLazyHybrid),
    [](const ::testing::TestParamInfo<StrategyKind>& info) {
      return strategy_name(info.param);
    });

TEST(ClusterComparative, SubtreeBeatsFileGranularityUnderPressure) {
  // The paper's core performance claim (figure 2's ordering) at miniature
  // scale: with cache pressure, whole-directory strategies outperform
  // per-file I/O strategies.
  auto pressured = [](StrategyKind k) {
    SimConfig cfg = small_config(k);
    cfg.mds.cache_capacity = 600;  // ~12% of metadata per node
    cfg.mds.journal_capacity = 600;
    cfg.num_clients = 150;
    return cfg;
  };
  const RunResult subtree = run_one(pressured(StrategyKind::kStaticSubtree));
  const RunResult filehash = run_one(pressured(StrategyKind::kFileHash));
  EXPECT_GT(subtree.avg_mds_throughput, filehash.avg_mds_throughput);
  EXPECT_GT(subtree.hit_rate, filehash.hit_rate);
}

TEST(ClusterComparative, HashedStrategiesPayMorePrefixOverhead) {
  auto cfg = [](StrategyKind k) {
    SimConfig c = small_config(k);
    c.mds.cache_capacity = 800;
    return c;
  };
  const RunResult subtree = run_one(cfg(StrategyKind::kStaticSubtree));
  const RunResult filehash = run_one(cfg(StrategyKind::kFileHash));
  EXPECT_GT(filehash.prefix_fraction, subtree.prefix_fraction);
}

TEST(ClusterComparative, LazyHybridHasNoPrefixFootprint) {
  const RunResult lh = run_one(small_config(StrategyKind::kLazyHybrid));
  EXPECT_LT(lh.prefix_fraction, 0.02);
}

TEST(Experiment, BatchRunsAllConfigsInOrder) {
  std::vector<SimConfig> configs;
  for (int mds = 2; mds <= 3; ++mds) {
    SimConfig cfg = small_config(StrategyKind::kStaticSubtree);
    cfg.num_mds = mds;
    cfg.duration = 3 * kSecond;
    cfg.warmup = kSecond;
    configs.push_back(cfg);
  }
  const auto results = run_batch(configs, 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].config.num_mds, 2);
  EXPECT_EQ(results[1].config.num_mds, 3);
  for (const auto& r : results) EXPECT_GT(r.replies, 100u);
}

TEST(Workloads, ScientificClusterRuns) {
  SimConfig cfg = small_config(StrategyKind::kDynamicSubtree);
  cfg.workload = WorkloadKind::kScientific;
  cfg.fs.num_projects = 2;
  cfg.fs.project_dir_files = 300;
  cfg.scientific.compute_phase = kSecond;
  ClusterSim cluster(cfg);
  cluster.run();
  EXPECT_GT(cluster.metrics().total_replies(), 500u);
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_EQ(cluster.mds(i).cache().check_invariants(), "");
  }
}

}  // namespace
}  // namespace mdsim

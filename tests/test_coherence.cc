// Cache-coherence protocol details (paper section 4.2) and the dirfrag
// registry's hashing properties.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_util.h"

namespace mdsim {
namespace {

TEST(DirFragRegistry, DentryAuthorityDeterministicAndSpread) {
  DirFragRegistry reg(8, 6);
  std::map<MdsId, int> counts;
  for (int i = 0; i < 4000; ++i) {
    const std::string name = "entry" + std::to_string(i);
    const MdsId a = reg.dentry_authority(42, name);
    EXPECT_EQ(a, reg.dentry_authority(42, name));  // deterministic
    ASSERT_GE(a, 0);
    ASSERT_LT(a, 8);
    ++counts[a];
  }
  // All nodes get a reasonable share of a fragmented directory.
  for (const auto& [mds, n] : counts) {
    EXPECT_GT(n, 250) << "mds " << mds;
  }
  // Different directories map the same name differently (ino-seeded).
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string name = "entry" + std::to_string(i);
    if (reg.dentry_authority(42, name) != reg.dentry_authority(43, name)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 50);
}

TEST(DirFragRegistry, FragmentUnfragmentLifecycle) {
  DirFragRegistry reg(4, 6);
  EXPECT_FALSE(reg.is_fragmented(7));
  reg.fragment(7, /*home=*/0, /*giga=*/false, /*by_size=*/false,
               /*child_count=*/0, /*seed_temp=*/0.0, /*now=*/0,
               /*half_life=*/kSecond);
  EXPECT_TRUE(reg.is_fragmented(7));
  EXPECT_EQ(reg.fragmented_count(), 1u);
  reg.unfragment(7);
  EXPECT_FALSE(reg.is_fragmented(7));
  EXPECT_EQ(reg.fragmented_count(), 0u);
  reg.unfragment(7);  // idempotent
}

class CoherenceTest : public ::testing::Test {
 protected:
  void build(StrategyKind k = StrategyKind::kDirHash) {
    cluster = std::make_unique<ClusterSim>(manual_config(k));
    client.attach(*cluster);
  }
  void run_for(SimTime dt) { cluster->run_until(cluster->sim().now() + dt); }

  /// Serve a stat for `f` at its authority so prefix replicas appear at
  /// the serving node; returns the (replica dir, its authority) pair of
  /// the deepest cross-node prefix, or {nullptr, -1}.
  std::pair<FsNode*, MdsId> make_prefix_replica(FsNode* f) {
    const MdsId auth = cluster->mds(0).authority_for(f);
    client.send(auth, OpType::kStat, f);
    run_for(kSecond);
    FsNode* repl = nullptr;
    MdsId repl_auth = kInvalidMds;
    for (FsNode* a : f->ancestry()) {
      if (a == f) continue;
      const MdsId a_auth = cluster->mds(0).authority_for(a);
      if (a_auth != auth && a->depth() >= 1) {
        repl = a;
        repl_auth = a_auth;
      }
    }
    return {repl, repl_auth};
  }

  std::unique_ptr<ClusterSim> cluster;
  TestClient client;
};

TEST_F(CoherenceTest, AnchoredReplicaIsRefreshedNotDropped) {
  build();
  FsNode* f = find_world_readable_file(cluster->tree());
  ASSERT_NE(f, nullptr);
  auto [repl, repl_auth] = make_prefix_replica(f);
  if (repl == nullptr) GTEST_SKIP() << "no cross-node prefix";
  const MdsId holder = cluster->mds(0).authority_for(f);
  CacheEntry* e = cluster->mds(holder).cache().peek(repl->ino());
  ASSERT_NE(e, nullptr);
  ASSERT_FALSE(e->authoritative);
  ASSERT_GT(e->cached_children, 0u);  // it anchors the cached file

  // Update the dir at its authority; the anchored replica must be
  // refreshed to the new version (it cannot be dropped while anchoring).
  client.send(repl_auth, OpType::kSetattr, repl);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  e = cluster->mds(holder).cache().peek(repl->ino());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, repl->inode().version);
  // ...and it is still registered for future invalidations.
  EXPECT_GE(cluster->mds(repl_auth).replica_holders(repl->ino()), 1u);
}

TEST_F(CoherenceTest, EvictionSendsReplicaDropAndDeregisters) {
  // Tiny caches force replica eviction; the authority must forget the
  // holder (section 4.2: "it will notify the authority").
  SimConfig cfg = manual_config(StrategyKind::kDirHash);
  cfg.mds.cache_capacity = 64;
  cluster = std::make_unique<ClusterSim>(cfg);
  client.attach(*cluster);

  FsNode* f = find_world_readable_file(cluster->tree());
  ASSERT_NE(f, nullptr);
  auto [repl, repl_auth] = make_prefix_replica(f);
  if (repl == nullptr) GTEST_SKIP() << "no cross-node prefix";
  const std::size_t holders_before =
      cluster->mds(repl_auth).replica_holders(repl->ino());
  ASSERT_GE(holders_before, 1u);

  // Flood the holder with stats of unrelated files to churn its cache.
  const MdsId holder = cluster->mds(0).authority_for(f);
  int sent = 0;
  for (FsNode* other : cluster->tree().files()) {
    if (cluster->mds(0).authority_for(other) != holder) continue;
    if (FsTree::is_ancestor_of(repl, other)) continue;
    client.send(holder, OpType::kStat, other);
    if (++sent >= 300) break;
  }
  run_for(5 * kSecond);
  if (cluster->mds(holder).cache().peek(repl->ino()) != nullptr) {
    GTEST_SKIP() << "replica survived the churn (still anchored)";
  }
  EXPECT_EQ(cluster->mds(repl_auth).replica_holders(repl->ino()), 0u);
}

TEST_F(CoherenceTest, UnsolicitedGrantMarksReplicatedAtReceiver) {
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.replication_threshold = 15.0;
  cluster = std::make_unique<ClusterSim>(cfg);
  client.attach(*cluster);
  FsNode* f = find_world_readable_file(cluster->tree());
  ASSERT_NE(f, nullptr);
  const MdsId auth = cluster->mds(0).authority_for(f);
  for (int i = 0; i < 40; ++i) {
    client.send(auth, OpType::kStat, f);
    run_for(2 * kMillisecond);
  }
  run_for(100 * kMillisecond);
  for (int i = 0; i < cluster->num_mds(); ++i) {
    EXPECT_TRUE(cluster->mds(i).is_replicated_everywhere(f->ino())) << i;
    // And every receiver anchored the pushed item under a valid chain.
    EXPECT_EQ(cluster->mds(i).cache().check_invariants(), "") << i;
  }
}

TEST_F(CoherenceTest, UnlinkInvalidationRemovesChildlessReplicas) {
  build(StrategyKind::kDynamicSubtree);
  // Create a file, replicate it via traffic control, then unlink it: every
  // childless replica must vanish.
  SimConfig cfg = manual_config(StrategyKind::kDynamicSubtree);
  cfg.mds.replication_threshold = 15.0;
  cluster = std::make_unique<ClusterSim>(cfg);
  client.attach(*cluster);
  FsNode* dir = cluster->namespace_info().user_roots[0];
  const MdsId dauth = cluster->mds(0).authority_for(dir);
  client.send(dauth, OpType::kCreate, dir, "hot_then_gone");
  run_for(kSecond);
  FsNode* f = dir->child("hot_then_gone");
  ASSERT_NE(f, nullptr);
  const InodeId ino = f->ino();
  const MdsId fauth = cluster->mds(0).authority_for(f);
  for (int i = 0; i < 40; ++i) {
    client.send(fauth, OpType::kStat, f, "", nullptr,
                dir->inode().perms.uid);
    run_for(2 * kMillisecond);
  }
  run_for(100 * kMillisecond);
  int holders = 0;
  for (int i = 0; i < cluster->num_mds(); ++i) {
    if (cluster->mds(i).cache().peek(ino) != nullptr) ++holders;
  }
  ASSERT_GT(holders, 1);

  client.send(fauth, OpType::kUnlink, f, "", nullptr,
              dir->inode().perms.uid);
  run_for(kSecond);
  ASSERT_TRUE(client.last().success);
  for (int i = 0; i < cluster->num_mds(); ++i) {
    EXPECT_EQ(cluster->mds(i).cache().peek(ino), nullptr) << i;
  }
}

}  // namespace
}  // namespace mdsim

// Same-destination delivery batching (net/network.cc).
//
// The contract under test: with batching enabled, the network may fold
// consecutive same-instant deliveries to one destination into a single
// engine event, but the observable delivery sequence — (from, type,
// arrival time) per endpoint, in order — must be byte-for-byte the
// sequence an unbatched network produces, and the engine's executed-event
// counter must be credited so event counts match too. Batching is an
// engine optimization, never a behavior change.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "core/cluster.h"
#include "net/network.h"

namespace mdsim {
namespace {

using Arrival = std::tuple<NetAddr, MsgType, SimTime>;

/// Default endpoint: records every delivery; batches arrive through the
/// base-class on_message_batch, which unwraps to on_message in order.
struct Recorder : NetEndpoint {
  Simulation* sim = nullptr;
  std::vector<Arrival> arrivals;
  void on_message(NetAddr from, MessagePtr msg) override {
    arrivals.push_back({from, msg->type, sim->now()});
  }
};

/// Endpoint that also counts explicit batch deliveries and their sizes.
struct BatchRecorder final : Recorder {
  std::vector<std::size_t> batch_sizes;
  void on_message_batch(Delivery* items, std::size_t n) override {
    batch_sizes.push_back(n);
    NetEndpoint::on_message_batch(items, n);
  }
};

MessagePtr make(MsgType t) { return std::make_unique<Message>(t); }

struct Rig {
  explicit Rig(bool batching, SimTime jitter = 0) {
    params.base_latency = 100;
    params.jitter_mean = jitter;
    params.delivery_batching = batching;
    net = std::make_unique<Network>(sim, params);
    for (auto& r : nodes) {
      r.sim = &sim;
      addrs.push_back(net->attach(&r));
    }
  }
  Simulation sim;
  NetworkParams params;
  std::unique_ptr<Network> net;
  BatchRecorder nodes[3];
  std::vector<NetAddr> addrs;
};

TEST(DeliveryBatch, SameInstantSameDestFoldIntoOneBatch) {
  Rig r(/*batching=*/true);
  // Three back-to-back sends to node 2, no jitter: identical delivery
  // instant, no intervening engine event — one batch of three.
  r.net->send(r.addrs[0], r.addrs[2], make(MsgType::kHeartbeat));
  r.net->send(r.addrs[1], r.addrs[2], make(MsgType::kClientRequest));
  r.net->send(r.addrs[0], r.addrs[2], make(MsgType::kClientReply));
  r.sim.run();
  ASSERT_EQ(r.nodes[2].batch_sizes.size(), 1u);
  EXPECT_EQ(r.nodes[2].batch_sizes[0], 3u);
  const std::vector<Arrival> want = {{r.addrs[0], MsgType::kHeartbeat, 100},
                                     {r.addrs[1], MsgType::kClientRequest, 100},
                                     {r.addrs[0], MsgType::kClientReply, 100}};
  EXPECT_EQ(r.nodes[2].arrivals, want);
}

TEST(DeliveryBatch, InterveningScheduleSplitsBatch) {
  Rig r(/*batching=*/true);
  r.net->send(r.addrs[0], r.addrs[2], make(MsgType::kHeartbeat));
  // Any engine schedule between two sends — even at the same instant —
  // closes the open batch so exact event interleaving is preserved.
  r.sim.schedule(100, [] {});
  r.net->send(r.addrs[0], r.addrs[2], make(MsgType::kHeartbeat));
  r.sim.run();
  EXPECT_TRUE(r.nodes[2].batch_sizes.empty());  // two singles, no batch
  ASSERT_EQ(r.nodes[2].arrivals.size(), 2u);
  EXPECT_EQ(std::get<2>(r.nodes[2].arrivals[0]), 100u);
  EXPECT_EQ(std::get<2>(r.nodes[2].arrivals[1]), 100u);
}

TEST(DeliveryBatch, AlternatingDestinationsDoNotBatch) {
  Rig r(/*batching=*/true);
  r.net->send(r.addrs[0], r.addrs[2], make(MsgType::kHeartbeat));
  r.net->send(r.addrs[0], r.addrs[1], make(MsgType::kHeartbeat));
  r.net->send(r.addrs[0], r.addrs[2], make(MsgType::kHeartbeat));
  r.sim.run();
  EXPECT_TRUE(r.nodes[1].batch_sizes.empty());
  EXPECT_TRUE(r.nodes[2].batch_sizes.empty());
  EXPECT_EQ(r.nodes[1].arrivals.size(), 1u);
  EXPECT_EQ(r.nodes[2].arrivals.size(), 2u);
}

/// Drive a mixed scenario (fan-in bursts, self-sends, jittered singles)
/// and return the full delivery record of every endpoint plus the
/// engine's executed-event count.
std::pair<std::vector<std::vector<Arrival>>, std::uint64_t> run_scenario(
    bool batching) {
  Rig r(batching, /*jitter=*/40);
  for (int round = 0; round < 20; ++round) {
    const SimTime at = static_cast<SimTime>(round) * 50;
    r.sim.schedule(at, [&r, round] {
      // Fan-in burst to one node; self-send (latency 0, always
      // same-instant); a stray message to break adjacency.
      r.net->send(r.addrs[0], r.addrs[2], make(MsgType::kClientRequest));
      r.net->send(r.addrs[1], r.addrs[2], make(MsgType::kClientRequest));
      r.net->send(r.addrs[2], r.addrs[2], make(MsgType::kHeartbeat));
      if (round % 3 == 0) {
        r.net->send(r.addrs[2], r.addrs[0], make(MsgType::kClientReply));
      }
    });
  }
  r.sim.run();
  std::vector<std::vector<Arrival>> out;
  for (auto& n : r.nodes) out.push_back(n.arrivals);
  return {out, r.sim.events_executed()};
}

TEST(DeliveryBatch, MatchesUnbatchedByteForByte) {
  const auto [batched, ev_on] = run_scenario(true);
  const auto [plain, ev_off] = run_scenario(false);
  // Identical per-endpoint delivery sequences, and the batch-fold credit
  // keeps the executed-event counter identical too.
  EXPECT_EQ(batched, plain);
  EXPECT_EQ(ev_on, ev_off);
}

TEST(DeliveryBatch, DuplicateFaultBypassesBatchingDeterministically) {
  auto run = [](bool batching) {
    Rig r(batching);
    LinkFault f;
    f.duplicate = 1.0;  // every message delivered twice
    r.net->set_link_fault(r.addrs[0], r.addrs[2], f);
    r.net->send(r.addrs[0], r.addrs[2], make(MsgType::kHeartbeat));
    r.net->send(r.addrs[0], r.addrs[2], make(MsgType::kClientRequest));
    r.sim.run();
    return r.nodes[2].arrivals;
  };
  const auto on = run(true);
  const auto off = run(false);
  EXPECT_EQ(on, off);
  EXPECT_EQ(on.size(), 4u);  // two originals + two copies
}

// ---------------------------------------------------------------------------
// Cluster integration: a zero-jitter cluster actually forms batches on the
// client-request fan-in path; tracing and results must not notice.

SimConfig batch_cluster_config(bool batching) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 3;
  cfg.num_clients = 60;
  cfg.fs.num_users = 12;
  cfg.fs.nodes_per_user = 150;
  cfg.duration = 6 * kSecond;
  cfg.warmup = 2 * kSecond;
  // No jitter: same-instant fan-in is common, so the batching path (run
  // splitting, amortized MDS dispatch) really executes.
  cfg.net.jitter_mean = 0;
  cfg.net.delivery_batching = batching;
  cfg.trace.enabled = true;
  return cfg;
}

TEST(DeliveryBatch, ClusterResultsAndTraceTilingUnchangedByBatching) {
  ClusterSim on(batch_cluster_config(true));
  on.run();
  ClusterSim off(batch_cluster_config(false));
  off.run();

  // Simulation-observable results identical.
  EXPECT_GT(on.metrics().total_replies(), 1000u);
  EXPECT_EQ(on.metrics().total_replies(), off.metrics().total_replies());
  EXPECT_EQ(on.metrics().total_failures(), off.metrics().total_failures());
  EXPECT_EQ(on.metrics().cluster_hit_rate(), off.metrics().cluster_hit_rate());
  EXPECT_EQ(on.metrics().client_latency().sum(),
            off.metrics().client_latency().sum());
  EXPECT_EQ(on.sim().events_executed(), off.sim().events_executed());

  // Per-request stage attribution still tiles exactly, and matches the
  // unbatched run stage by stage.
  TraceCollector* ta = on.tracer();
  TraceCollector* tb = off.tracer();
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  EXPECT_EQ(ta->grand_total_ns(), tb->grand_total_ns());
  for (int op = 0; op < kNumOpTypes; ++op) {
    const auto o = static_cast<OpType>(op);
    std::uint64_t stage_sum = 0;
    for (int s = 0; s < kNumTraceStages; ++s) {
      const auto st = static_cast<TraceStage>(s);
      EXPECT_EQ(ta->stage_total_ns(st, o), tb->stage_total_ns(st, o));
      stage_sum += ta->stage_total_ns(st, o);
    }
    EXPECT_EQ(stage_sum, ta->total_ns(o)) << "op " << op_name(o);
  }
}

}  // namespace
}  // namespace mdsim

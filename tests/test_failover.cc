#include <gtest/gtest.h>

#include "test_util.h"

namespace mdsim {
namespace {

SimConfig failover_config(std::uint64_t seed = 42) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 4;
  cfg.num_clients = 120;
  cfg.seed = seed;
  cfg.fs.seed = seed;
  cfg.fs.num_users = 32;
  cfg.fs.nodes_per_user = 200;
  cfg.duration = 30 * kSecond;
  cfg.warmup = 2 * kSecond;
  cfg.client_request_timeout = kSecond;  // fast retries for the test
  return cfg;
}

TEST(Failover, DelegationsRedistributeToSurvivors) {
  ClusterSim cluster(failover_config());
  cluster.run_until(5 * kSecond);
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster.partition());
  ASSERT_NE(subtree, nullptr);
  const MdsId victim = 1;
  const auto owned_before = subtree->delegations_of(victim);
  ASSERT_FALSE(owned_before.empty());

  cluster.fail_mds(victim);
  EXPECT_TRUE(cluster.mds(victim).failed());
  EXPECT_TRUE(cluster.network().is_down(victim));
  EXPECT_TRUE(subtree->delegations_of(victim).empty());
  for (const FsNode* root : owned_before) {
    const MdsId heir = subtree->authority_of(root);
    EXPECT_NE(heir, victim);
    EXPECT_GE(heir, 0);
  }
}

TEST(Failover, ClusterKeepsServingThroughAFailure) {
  ClusterSim cluster(failover_config());
  cluster.run_until(8 * kSecond);
  cluster.fail_mds(1);
  cluster.run_until(20 * kSecond);

  // Clients retried onto survivors; the cluster kept answering.
  Metrics& m = cluster.metrics();
  const double late_tput = m.avg_throughput().mean_in(
      12 * kSecond, 20 * kSecond);
  EXPECT_GT(late_tput, 100.0);
  std::uint64_t retries = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    retries += cluster.client(c).stats().retries;
  }
  EXPECT_GT(retries, 0u);
  EXPECT_GT(cluster.network().dropped_messages(), 0u);
  // The dead node answered nothing after the failure instant.
  EXPECT_EQ(m.per_mds_throughput()[1].mean_in(9 * kSecond, 20 * kSecond),
            0.0);
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_EQ(cluster.mds(i).cache().check_invariants(), "") << i;
  }
}

TEST(Failover, WarmTakeoverPreloadsWorkingSet) {
  ClusterSim cluster(failover_config());
  cluster.run_until(8 * kSecond);

  const MdsId victim = 1;
  const auto working_set = cluster.mds(victim).journal().replay();
  if (working_set.size() < 10) GTEST_SKIP() << "journal barely used";

  cluster.fail_mds(victim, /*warm_takeover=*/true);
  cluster.run_until(9 * kSecond);  // let the log replay complete

  // Items from the dead node's journal that now belong to a survivor must
  // be cached at that survivor without any client having asked for them.
  std::size_t found = 0, relevant = 0;
  for (InodeId ino : working_set) {
    FsNode* n = cluster.tree().by_ino(ino);
    if (n == nullptr) continue;
    const MdsId heir = cluster.mds(0).authority_for(n);
    if (heir == victim) continue;
    ++relevant;
    if (cluster.mds(heir).cache().peek(ino) != nullptr) ++found;
  }
  if (relevant > 0) {
    EXPECT_GT(found, relevant / 2) << found << " of " << relevant;
  }
}

TEST(Failover, ColdTakeoverSkipsLogReplay) {
  // Same seed, warm vs cold: within a short window after the kill, the
  // warm run performs strictly more survivor disk reads (the log replay)
  // than the deterministic-identical cold run.
  auto survivor_reads_shortly_after_kill = [](bool warm) {
    ClusterSim cluster(failover_config(99));
    cluster.run_until(8 * kSecond);
    cluster.fail_mds(1, warm);
    cluster.sim().run_until(cluster.sim().now() + 20 * kMillisecond);
    std::uint64_t reads = 0;
    for (int i = 0; i < cluster.num_mds(); ++i) {
      if (i != 1) reads += cluster.mds(i).disk().reads();
    }
    return reads;
  };
  const std::uint64_t with_warm = survivor_reads_shortly_after_kill(true);
  const std::uint64_t without = survivor_reads_shortly_after_kill(false);
  EXPECT_GT(with_warm, without);
}

TEST(Failover, RecoveryRejoinsAndServesAgain) {
  ClusterSim cluster(failover_config());
  cluster.run_until(6 * kSecond);
  cluster.fail_mds(2);
  cluster.run_until(12 * kSecond);
  cluster.recover_mds(2);
  EXPECT_FALSE(cluster.mds(2).failed());
  EXPECT_FALSE(cluster.network().is_down(2));
  // Cold rejoin: cache nearly empty (root and its anchors survive).
  EXPECT_LT(cluster.mds(2).cache().size(), 16u);
  EXPECT_EQ(cluster.mds(2).cache().check_invariants(), "");

  // Give the balancer time: the rejoined node ends up doing work again.
  cluster.run_until(30 * kSecond);
  const double rejoined_tput =
      cluster.metrics().per_mds_throughput()[2].mean_in(20 * kSecond,
                                                        30 * kSecond);
  EXPECT_GT(rejoined_tput, 0.0);
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_EQ(cluster.mds(i).cache().check_invariants(), "") << i;
  }
}

TEST(Failover, DoubleFailureStillServes) {
  SimConfig cfg = failover_config();
  cfg.num_mds = 5;
  ClusterSim cluster(cfg);
  cluster.run_until(6 * kSecond);
  cluster.fail_mds(1);
  cluster.run_until(8 * kSecond);
  cluster.fail_mds(3);
  cluster.run_until(20 * kSecond);
  const double tput = cluster.metrics().avg_throughput().mean_in(
      12 * kSecond, 20 * kSecond);
  EXPECT_GT(tput, 50.0);
  // No delegation points to dead nodes.
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster.partition());
  EXPECT_TRUE(subtree->delegations_of(1).empty());
  EXPECT_TRUE(subtree->delegations_of(3).empty());
}

}  // namespace
}  // namespace mdsim

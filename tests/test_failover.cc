#include <gtest/gtest.h>

#include "test_util.h"

namespace mdsim {
namespace {

SimConfig failover_config(std::uint64_t seed = 42) {
  SimConfig cfg;
  cfg.strategy = StrategyKind::kDynamicSubtree;
  cfg.num_mds = 4;
  cfg.num_clients = 120;
  cfg.seed = seed;
  cfg.fs.seed = seed;
  cfg.fs.num_users = 32;
  cfg.fs.nodes_per_user = 200;
  cfg.duration = 30 * kSecond;
  cfg.warmup = 2 * kSecond;
  cfg.client_retry.request_timeout = kSecond;  // fast retries for the test
  return cfg;
}

TEST(Failover, DelegationsRedistributeToSurvivors) {
  ClusterSim cluster(failover_config());
  cluster.run_until(5 * kSecond);
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster.partition());
  ASSERT_NE(subtree, nullptr);
  const MdsId victim = 1;
  const auto owned_before = subtree->delegations_of(victim);
  ASSERT_FALSE(owned_before.empty());

  cluster.fail_mds(victim);
  EXPECT_TRUE(cluster.mds(victim).failed());
  EXPECT_TRUE(cluster.network().is_down(victim));
  // Nothing is redistributed at the crash instant: the node merely went
  // silent, and survivors have not missed enough heartbeats yet.
  EXPECT_FALSE(subtree->delegations_of(victim).empty());
  EXPECT_TRUE(cluster.mds(0).peer_alive(victim));

  // After the miss threshold (3 x 1s), every survivor has declared the
  // victim dead; the coordinator then waits out the takeover grace
  // (quorum-gated takeover) before redistributing its territory.
  cluster.run_until(15 * kSecond);
  EXPECT_TRUE(subtree->delegations_of(victim).empty());
  for (const FsNode* root : owned_before) {
    const MdsId heir = subtree->authority_of(root);
    EXPECT_NE(heir, victim);
    EXPECT_GE(heir, 0);
  }
  for (int i = 0; i < cluster.num_mds(); ++i) {
    if (i == victim) continue;
    EXPECT_FALSE(cluster.mds(i).peer_alive(victim)) << i;
    EXPECT_GT(cluster.mds(i).stats().peer_down_detections, 0u) << i;
  }

  // The incident log has the whole story: detection latency sits around
  // the miss horizon (3 heartbeat periods), never instant.
  const auto& incidents = cluster.fault_log().incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].node, victim);
  ASSERT_TRUE(incidents[0].has(incidents[0].detected_at));
  ASSERT_TRUE(incidents[0].has(incidents[0].takeover_at));
  const double latency =
      cluster.metrics().detection_latency_seconds().mean();
  EXPECT_GT(latency, 2.0);
  EXPECT_LE(latency, 5.0);
  EXPECT_GE(cluster.metrics().unavailability_seconds().mean(), latency);
}

TEST(Failover, ClusterKeepsServingThroughAFailure) {
  ClusterSim cluster(failover_config());
  cluster.run_until(8 * kSecond);
  cluster.fail_mds(1);
  cluster.run_until(24 * kSecond);

  // Clients retried onto survivors; the cluster kept answering. The
  // window starts after the grace-delayed takeover (~crash + 8s).
  Metrics& m = cluster.metrics();
  const double late_tput = m.avg_throughput().mean_in(
      17 * kSecond, 24 * kSecond);
  EXPECT_GT(late_tput, 100.0);
  std::uint64_t retries = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    retries += cluster.client(c).stats().retries;
  }
  EXPECT_GT(retries, 0u);
  EXPECT_GT(cluster.network().dropped_messages(), 0u);
  // The dead node answered nothing after the failure instant.
  EXPECT_EQ(m.per_mds_throughput()[1].mean_in(9 * kSecond, 24 * kSecond),
            0.0);
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_EQ(cluster.mds(i).cache().check_invariants(), "") << i;
  }
}

TEST(Failover, WarmTakeoverPreloadsWorkingSet) {
  ClusterSim cluster(failover_config());
  cluster.run_until(8 * kSecond);

  const MdsId victim = 1;
  const auto working_set = cluster.mds(victim).journal().replay();
  if (working_set.size() < 10) GTEST_SKIP() << "journal barely used";

  cluster.fail_mds(victim, /*warm_takeover=*/true);
  // Detection (~3-4s of missed heartbeats) + the quorum takeover grace
  // + the log replay itself.
  cluster.run_until(18 * kSecond);

  std::uint64_t warm_items = 0;
  for (int i = 0; i < cluster.num_mds(); ++i) {
    if (i != victim) warm_items += cluster.mds(i).stats().takeover_warm_items;
  }
  EXPECT_GT(warm_items, 0u);

  // Items from the dead node's journal that now belong to a survivor must
  // be cached at that survivor without any client having asked for them.
  std::size_t found = 0, relevant = 0;
  for (InodeId ino : working_set) {
    FsNode* n = cluster.tree().by_ino(ino);
    if (n == nullptr) continue;
    const MdsId heir = cluster.mds(0).authority_for(n);
    if (heir == victim) continue;
    ++relevant;
    if (cluster.mds(heir).cache().peek(ino) != nullptr) ++found;
  }
  if (relevant > 0) {
    EXPECT_GT(found, relevant / 2) << found << " of " << relevant;
  }
}

TEST(Failover, ColdTakeoverSkipsLogReplay) {
  // Same seed, warm vs cold: the takeover happens in both runs (survivors
  // detect the silence and redistribute), but only the warm run replays
  // the dead node's journal into the heirs' caches.
  auto warm_items_after_takeover = [](bool warm) {
    ClusterSim cluster(failover_config(99));
    cluster.run_until(8 * kSecond);
    cluster.fail_mds(1, warm);
    cluster.run_until(18 * kSecond);
    std::uint64_t takeovers = 0, items = 0;
    for (int i = 0; i < cluster.num_mds(); ++i) {
      if (i == 1) continue;
      takeovers += cluster.mds(i).stats().takeovers;
      items += cluster.mds(i).stats().takeover_warm_items;
    }
    EXPECT_GT(takeovers, 0u);
    return items;
  };
  EXPECT_GT(warm_items_after_takeover(true), 0u);
  EXPECT_EQ(warm_items_after_takeover(false), 0u);
}

TEST(Failover, RecoveryRejoinsAndServesAgain) {
  ClusterSim cluster(failover_config());
  cluster.run_until(6 * kSecond);
  cluster.fail_mds(2);
  // Restart only after the grace-delayed takeover (~detect + 4s) has
  // executed; an earlier restart would cancel the pending takeover.
  cluster.run_until(16 * kSecond);
  cluster.recover_mds(2);
  EXPECT_FALSE(cluster.mds(2).failed());
  EXPECT_FALSE(cluster.network().is_down(2));
  // Cold rejoin: cache nearly empty (root and its anchors survive).
  EXPECT_LT(cluster.mds(2).cache().size(), 16u);
  EXPECT_EQ(cluster.mds(2).cache().check_invariants(), "");

  // Give the balancer time: the rejoined node ends up doing work again.
  cluster.run_until(30 * kSecond);
  const double rejoined_tput =
      cluster.metrics().per_mds_throughput()[2].mean_in(20 * kSecond,
                                                        30 * kSecond);
  EXPECT_GT(rejoined_tput, 0.0);
  for (int i = 0; i < cluster.num_mds(); ++i) {
    EXPECT_EQ(cluster.mds(i).cache().check_invariants(), "") << i;
    if (i != 2) EXPECT_TRUE(cluster.mds(i).peer_alive(2)) << i;
  }

  // The incident traversed its whole lifecycle: crash, detection,
  // takeover, restart, journal-replay rejoin, re-marked up by a peer.
  const auto& incidents = cluster.fault_log().incidents();
  ASSERT_EQ(incidents.size(), 1u);
  const FaultIncident& inc = incidents[0];
  EXPECT_TRUE(inc.has(inc.detected_at));
  EXPECT_TRUE(inc.has(inc.takeover_at));
  EXPECT_TRUE(inc.has(inc.restarted_at));
  EXPECT_TRUE(inc.has(inc.rejoined_at));
  EXPECT_TRUE(inc.has(inc.remarked_up_at));
  EXPECT_FALSE(inc.open);
  EXPECT_FALSE(cluster.mds(2).recovering());
  EXPECT_GT(cluster.metrics().recovery_time_seconds().mean(), 0.0);
}

TEST(Failover, DoubleFailureStillServes) {
  SimConfig cfg = failover_config();
  cfg.num_mds = 5;
  ClusterSim cluster(cfg);
  cluster.run_until(6 * kSecond);
  cluster.fail_mds(1);
  cluster.run_until(8 * kSecond);
  cluster.fail_mds(3);
  cluster.run_until(24 * kSecond);
  const double tput = cluster.metrics().avg_throughput().mean_in(
      17 * kSecond, 24 * kSecond);
  EXPECT_GT(tput, 50.0);
  // No delegation points to dead nodes.
  auto* subtree = dynamic_cast<SubtreePartition*>(&cluster.partition());
  EXPECT_TRUE(subtree->delegations_of(1).empty());
  EXPECT_TRUE(subtree->delegations_of(3).empty());
}

}  // namespace
}  // namespace mdsim

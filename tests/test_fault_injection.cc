// Network fault injection: per-link drop / duplication / latency spikes
// (deterministic chaos harness), plus the zero-cost-when-off guarantee.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mds/messages.h"
#include "net/network.h"

namespace mdsim {
namespace {

struct Recorder final : NetEndpoint {
  struct Arrival {
    NetAddr from;
    MsgType type;
    SimTime at;
    std::uint64_t payload;
  };
  Simulation* sim = nullptr;
  std::vector<Arrival> arrivals;

  void on_message(NetAddr from, MessagePtr msg) override {
    std::uint64_t payload = 0;
    if (msg->type == MsgType::kHeartbeat) {
      payload = static_cast<std::uint64_t>(
          static_cast<HeartbeatMsg&>(*msg).sender);
    }
    arrivals.push_back({from, msg->type, sim->now(), payload});
  }
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() {
    params_.base_latency = 100;
    params_.jitter_mean = 0;
    params_.seed = 7;
    net_ = std::make_unique<Network>(sim_, params_);
    for (auto& r : nodes_) {
      r.sim = &sim_;
      addrs_.push_back(net_->attach(&r));
    }
  }

  MessagePtr heartbeat(MdsId sender) {
    auto m = std::make_unique<HeartbeatMsg>();
    m->sender = sender;
    return m;
  }

  Simulation sim_;
  NetworkParams params_;
  std::unique_ptr<Network> net_;
  Recorder nodes_[3];
  std::vector<NetAddr> addrs_;
};

TEST_F(FaultInjectionTest, DropOneLosesEveryMessageBothWays) {
  LinkFault f;
  f.drop = 1.0;
  net_->set_link_fault(addrs_[0], addrs_[1], f);
  for (int i = 0; i < 10; ++i) {
    net_->send(addrs_[0], addrs_[1], heartbeat(1));
    net_->send(addrs_[1], addrs_[0], heartbeat(2));  // symmetric key
    net_->send(addrs_[0], addrs_[2], heartbeat(3));  // unaffected link
  }
  sim_.run();
  EXPECT_TRUE(nodes_[0].arrivals.empty());
  EXPECT_TRUE(nodes_[1].arrivals.empty());
  EXPECT_EQ(nodes_[2].arrivals.size(), 10u);
  EXPECT_EQ(net_->fault_counters().dropped, 20u);
  EXPECT_EQ(net_->fault_counters().duplicated, 0u);
}

TEST_F(FaultInjectionTest, DuplicateOneDeliversExactlyTwice) {
  LinkFault f;
  f.duplicate = 1.0;
  net_->set_link_fault(addrs_[0], addrs_[1], f);
  for (int i = 0; i < 5; ++i) {
    net_->send(addrs_[0], addrs_[1], heartbeat(static_cast<MdsId>(i)));
  }
  sim_.run();
  // Every message arrives twice, and the clone carries the same payload.
  ASSERT_EQ(nodes_[1].arrivals.size(), 10u);
  std::vector<int> seen(5, 0);
  for (const auto& a : nodes_[1].arrivals) {
    ASSERT_LT(a.payload, 5u);
    ++seen[static_cast<std::size_t>(a.payload)];
  }
  for (int c : seen) EXPECT_EQ(c, 2);
  EXPECT_EQ(net_->fault_counters().duplicated, 5u);
}

TEST_F(FaultInjectionTest, SpikeDelaysAndPreservesFifo) {
  LinkFault f;
  f.spike = 1.0;
  f.spike_latency = 10 * kMillisecond;
  net_->set_link_fault(addrs_[0], addrs_[1], f);
  net_->send(addrs_[0], addrs_[1], heartbeat(0));
  net_->clear_link_fault(addrs_[0], addrs_[1]);
  net_->send(addrs_[0], addrs_[1], heartbeat(1));  // healthy follower
  sim_.run();
  ASSERT_EQ(nodes_[1].arrivals.size(), 2u);
  // The spiked message arrives late; the healthy follower cannot overtake
  // it (TCP-like FIFO: the spike raises the pair's delivery floor).
  EXPECT_EQ(nodes_[1].arrivals[0].payload, 0u);
  EXPECT_GE(nodes_[1].arrivals[0].at, 10 * kMillisecond);
  EXPECT_GE(nodes_[1].arrivals[1].at, nodes_[1].arrivals[0].at);
  EXPECT_EQ(net_->fault_counters().spiked, 1u);
}

TEST_F(FaultInjectionTest, ClearedFaultsRestoreHealthyTimings) {
  // Deliveries after clear_link_faults() are byte-identical to a network
  // that never had a fault installed: the fault rng is a separate stream,
  // so the jitter sequence is unperturbed.
  NetworkParams params = params_;
  params.jitter_mean = from_micros(20);

  auto run = [&](bool with_faults) {
    Simulation sim;
    Network net(sim, params);
    Recorder a, b;
    a.sim = &sim;
    b.sim = &sim;
    const NetAddr aa = net.attach(&a);
    const NetAddr ab = net.attach(&b);
    if (with_faults) {
      LinkFault f;
      f.drop = 1.0;
      net.set_link_fault(aa, ab, f);
      net.clear_link_fault(aa, ab);
    }
    for (int i = 0; i < 50; ++i) {
      auto m = std::make_unique<HeartbeatMsg>();
      m->sender = static_cast<MdsId>(i);
      net.send(aa, ab, std::move(m));
    }
    sim.run();
    std::vector<SimTime> times;
    for (const auto& arr : b.arrivals) times.push_back(arr.at);
    return times;
  };

  EXPECT_EQ(run(false), run(true));
}

TEST_F(FaultInjectionTest, InjectionIsDeterministicPerSeed) {
  auto run = [this]() {
    Simulation sim;
    Network net(sim, params_);
    Recorder a, b;
    a.sim = &sim;
    b.sim = &sim;
    const NetAddr aa = net.attach(&a);
    const NetAddr ab = net.attach(&b);
    LinkFault f;
    f.drop = 0.3;
    f.duplicate = 0.2;
    f.spike = 0.1;
    net.set_link_fault(aa, ab, f);
    for (int i = 0; i < 200; ++i) {
      auto m = std::make_unique<HeartbeatMsg>();
      m->sender = static_cast<MdsId>(i);
      net.send(aa, ab, std::move(m));
    }
    sim.run();
    std::vector<std::pair<SimTime, std::uint64_t>> seq;
    for (const auto& arr : b.arrivals) seq.emplace_back(arr.at, arr.payload);
    return std::make_tuple(seq, net.fault_counters().dropped,
                           net.fault_counters().duplicated,
                           net.fault_counters().spiked);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(std::get<1>(first), 0u);
  EXPECT_GT(std::get<2>(first), 0u);
  EXPECT_GT(std::get<3>(first), 0u);
}

TEST_F(FaultInjectionTest, MixedProbabilitiesRoughlyMatchRates) {
  LinkFault f;
  f.drop = 0.5;
  net_->set_link_fault(addrs_[0], addrs_[1], f);
  const int kSends = 2000;
  for (int i = 0; i < kSends; ++i) {
    net_->send(addrs_[0], addrs_[1], heartbeat(0));
  }
  sim_.run();
  const double delivered = static_cast<double>(nodes_[1].arrivals.size());
  EXPECT_GT(delivered, kSends * 0.4);
  EXPECT_LT(delivered, kSends * 0.6);
  EXPECT_EQ(nodes_[1].arrivals.size() + net_->fault_counters().dropped,
            static_cast<std::size_t>(kSends));
}

}  // namespace
}  // namespace mdsim

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "fstree/generator.h"
#include "fstree/path.h"
#include "fstree/tree.h"

namespace mdsim {
namespace {

TEST(Path, SplitAndJoin) {
  EXPECT_EQ(split_path("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_path("//a///b/"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_path("/"), std::vector<std::string>{});
  EXPECT_EQ(join_path({"a", "b"}), "/a/b");
  EXPECT_EQ(join_path({}), "/");
}

TEST(Path, PrefixCheck) {
  EXPECT_TRUE(path_has_prefix("/a/b/c", "/a/b"));
  EXPECT_TRUE(path_has_prefix("/a/b", "/a/b"));
  EXPECT_TRUE(path_has_prefix("/a/b", "/"));
  EXPECT_FALSE(path_has_prefix("/a/b", "/a/b/c"));
  EXPECT_FALSE(path_has_prefix("/a/bb", "/a/b"));
}

class FsTreeTest : public ::testing::Test {
 protected:
  FsTree tree;
};

TEST_F(FsTreeTest, RootProperties) {
  FsNode* root = tree.root();
  EXPECT_EQ(root->ino(), kRootInode);
  EXPECT_TRUE(root->is_dir());
  EXPECT_EQ(root->depth(), 0u);
  EXPECT_EQ(root->path(), "/");
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST_F(FsTreeTest, CreateAndLookup) {
  FsNode* home = tree.mkdir(tree.root(), "home");
  ASSERT_NE(home, nullptr);
  FsNode* f = tree.create_file(home, "a.txt");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->path(), "/home/a.txt");
  EXPECT_EQ(f->depth(), 2u);
  EXPECT_EQ(tree.lookup("/home/a.txt"), f);
  EXPECT_EQ(tree.lookup("/home"), home);
  EXPECT_EQ(tree.lookup("/nope"), nullptr);
  EXPECT_EQ(tree.by_ino(f->ino()), f);
  EXPECT_EQ(tree.node_count(), 3u);
}

TEST_F(FsTreeTest, DuplicateNamesRejected) {
  FsNode* d = tree.mkdir(tree.root(), "d");
  ASSERT_NE(tree.create_file(d, "x"), nullptr);
  EXPECT_EQ(tree.create_file(d, "x"), nullptr);
  EXPECT_EQ(tree.mkdir(d, "x"), nullptr);
}

TEST_F(FsTreeTest, InodeNumbersUnique) {
  FsNode* d = tree.mkdir(tree.root(), "d");
  std::unordered_set<InodeId> inos{tree.root()->ino(), d->ino()};
  for (int i = 0; i < 100; ++i) {
    FsNode* f = tree.create_file(d, "f" + std::to_string(i));
    EXPECT_TRUE(inos.insert(f->ino()).second);
  }
}

TEST_F(FsTreeTest, SubtreeSizesMaintained) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  FsNode* b = tree.mkdir(a, "b");
  tree.create_file(b, "f1");
  tree.create_file(b, "f2");
  EXPECT_EQ(b->subtree_size(), 3u);
  EXPECT_EQ(a->subtree_size(), 4u);
  EXPECT_EQ(tree.root()->subtree_size(), 5u);
}

TEST_F(FsTreeTest, RemoveFileUpdatesEverything) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  FsNode* f = tree.create_file(a, "f");
  const InodeId ino = f->ino();
  EXPECT_TRUE(tree.remove(f));
  EXPECT_EQ(tree.by_ino(ino), nullptr);
  EXPECT_EQ(a->child_count(), 0u);
  EXPECT_EQ(a->subtree_size(), 1u);
  EXPECT_FALSE(tree.alive(f));
  // Tombstone: the node object is still readable.
  EXPECT_EQ(f->ino(), ino);
}

TEST_F(FsTreeTest, RemoveRefusesNonEmptyDirAndRoot) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  tree.create_file(a, "f");
  EXPECT_FALSE(tree.remove(a));
  EXPECT_FALSE(tree.remove(tree.root()));
}

TEST_F(FsTreeTest, RenameFileBetweenDirs) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  FsNode* b = tree.mkdir(tree.root(), "b");
  FsNode* f = tree.create_file(a, "f");
  ASSERT_TRUE(tree.rename(f, b, "g"));
  EXPECT_EQ(f->path(), "/b/g");
  EXPECT_EQ(f->name(), "g");
  EXPECT_EQ(a->child_count(), 0u);
  EXPECT_EQ(b->child_count(), 1u);
  EXPECT_EQ(a->subtree_size(), 1u);
  EXPECT_EQ(b->subtree_size(), 2u);
  EXPECT_EQ(tree.lookup("/b/g"), f);
}

TEST_F(FsTreeTest, RenameDirFixesDepthsAndHashes) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  FsNode* b = tree.mkdir(tree.root(), "b");
  FsNode* sub = tree.mkdir(a, "sub");
  FsNode* f = tree.create_file(sub, "f");
  const std::uint64_t old_hash = f->path_hash();
  ASSERT_TRUE(tree.rename(sub, b, "sub2"));
  EXPECT_EQ(f->path(), "/b/sub2/f");
  EXPECT_EQ(f->depth(), 3u);
  EXPECT_NE(f->path_hash(), old_hash);
  // A fresh node at the same path would have the same hash.
  FsNode* c = tree.mkdir(tree.root(), "c");
  ASSERT_TRUE(tree.rename(sub, c, "sub"));
  EXPECT_EQ(f->path(), "/c/sub/f");
}

TEST_F(FsTreeTest, RenameIntoOwnSubtreeRejected) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  FsNode* b = tree.mkdir(a, "b");
  EXPECT_FALSE(tree.rename(a, b, "x"));
  EXPECT_FALSE(tree.rename(a, a, "self"));
}

TEST_F(FsTreeTest, PathHashDeterministicAndPositional) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  FsNode* f = tree.create_file(a, "f");
  EXPECT_EQ(f->path_hash(), child_path_hash(a, "f"));
  EXPECT_NE(f->path_hash(), a->path_hash());
  // Same name in a different directory hashes differently.
  FsNode* b = tree.mkdir(tree.root(), "b");
  FsNode* f2 = tree.create_file(b, "f");
  EXPECT_NE(f->path_hash(), f2->path_hash());
}

TEST_F(FsTreeTest, HardLinks) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  FsNode* b = tree.mkdir(tree.root(), "b");
  FsNode* f = tree.create_file(a, "f");
  EXPECT_TRUE(tree.link(f, b, "ln"));
  EXPECT_EQ(f->inode().nlink, 2u);
  EXPECT_EQ(tree.remote_links().size(), 1u);
  // Linked files cannot be removed while links exist.
  EXPECT_FALSE(tree.remove(f));
  // Directories cannot be hard-linked.
  EXPECT_FALSE(tree.link(a, b, "lnd"));
}

TEST_F(FsTreeTest, VersionBumpsOnMutation) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  const std::uint64_t v0 = a->inode().version;
  tree.create_file(a, "f");
  EXPECT_GT(a->inode().version, v0);
  FsNode* f = a->child("f");
  const std::uint64_t fv = f->inode().version;
  tree.touch(f, 100, 5);
  EXPECT_GT(f->inode().version, fv);
  EXPECT_EQ(f->inode().size, 100u);
  Perms p;
  p.mode = 0700;
  const std::uint64_t fv2 = f->inode().version;
  tree.chmod(f, p, 6);
  EXPECT_GT(f->inode().version, fv2);
}

TEST_F(FsTreeTest, SamplingVectorsTrackMembership) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  std::vector<FsNode*> files;
  for (int i = 0; i < 10; ++i) {
    files.push_back(tree.create_file(a, "f" + std::to_string(i)));
  }
  EXPECT_EQ(tree.files().size(), 10u);
  EXPECT_EQ(tree.dirs().size(), 2u);  // root + a
  ASSERT_TRUE(tree.remove(files[3]));
  EXPECT_EQ(tree.files().size(), 9u);
  for (FsNode* f : tree.files()) EXPECT_NE(f, files[3]);
}

TEST_F(FsTreeTest, AncestryAndIsAncestor) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  FsNode* b = tree.mkdir(a, "b");
  FsNode* f = tree.create_file(b, "f");
  const auto chain = f->ancestry();
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0], tree.root());
  EXPECT_EQ(chain[3], f);
  EXPECT_TRUE(FsTree::is_ancestor_of(a, f));
  EXPECT_TRUE(FsTree::is_ancestor_of(f, f));
  EXPECT_FALSE(FsTree::is_ancestor_of(f, a));
}

TEST_F(FsTreeTest, VisitCoversAllNodes) {
  FsNode* a = tree.mkdir(tree.root(), "a");
  tree.create_file(a, "f1");
  tree.create_file(a, "f2");
  std::set<InodeId> seen;
  tree.visit([&](FsNode* n) { seen.insert(n->ino()); });
  EXPECT_EQ(seen.size(), tree.node_count());
}

// --- generator ------------------------------------------------------------

TEST(Generator, DeterministicForSeed) {
  NamespaceParams params;
  params.seed = 77;
  params.num_users = 8;
  params.nodes_per_user = 100;
  FsTree t1, t2;
  generate_namespace(t1, params);
  generate_namespace(t2, params);
  EXPECT_EQ(t1.node_count(), t2.node_count());
  const auto s1 = measure_shape(t1);
  const auto s2 = measure_shape(t2);
  EXPECT_EQ(s1.files, s2.files);
  EXPECT_EQ(s1.dirs, s2.dirs);
  EXPECT_EQ(s1.max_depth, s2.max_depth);
}

TEST(Generator, RespectsShapeKnobs) {
  NamespaceParams params;
  params.num_users = 16;
  params.nodes_per_user = 200;
  params.max_depth = 4;
  FsTree tree;
  NamespaceInfo info = generate_namespace(tree, params);
  EXPECT_EQ(info.user_roots.size(), 16u);
  const NamespaceShape shape = measure_shape(tree);
  // Depth bound: home dirs sit at depth 2, so max is 2 + max_depth + 1.
  EXPECT_LE(shape.max_depth, 2u + 4u + 1u);
  EXPECT_GT(shape.files, 1000u);
  // Budget keeps each user subtree near the target.
  for (FsNode* home : info.user_roots) {
    EXPECT_LE(home->subtree_size(), 220u);
  }
}

TEST(Generator, ScientificProjectsAreLargeFlatDirs) {
  NamespaceParams params;
  params.num_users = 2;
  params.nodes_per_user = 50;
  params.num_projects = 2;
  params.project_runs = 3;
  params.project_dir_files = 500;
  FsTree tree;
  NamespaceInfo info = generate_namespace(tree, params);
  ASSERT_EQ(info.project_roots.size(), 2u);
  const NamespaceShape shape = measure_shape(tree);
  EXPECT_GE(shape.max_dir_size, 500u);
  for (FsNode* proj : info.project_roots) {
    EXPECT_EQ(proj->child_count(), 3u);
  }
}

TEST(Generator, HardLinksSprinkled) {
  NamespaceParams params;
  params.num_users = 8;
  params.nodes_per_user = 300;
  params.hard_link_fraction = 0.01;
  FsTree tree;
  generate_namespace(tree, params);
  EXPECT_GT(tree.remote_links().size(), 0u);
}

}  // namespace
}  // namespace mdsim
